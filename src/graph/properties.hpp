// Structural graph properties used by the overlay-quality analyzer and tests.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"

namespace overmatch::graph {

/// Connected-component labelling result.
struct Components {
  std::vector<std::size_t> label;  ///< label[v] in [0, count)
  std::size_t count = 0;
};

/// BFS-based connected components.
[[nodiscard]] Components connected_components(const Graph& g);

[[nodiscard]] bool is_connected(const Graph& g);

/// Degree summary.
struct DegreeStats {
  std::size_t min = 0;
  std::size_t max = 0;
  double mean = 0.0;
};
[[nodiscard]] DegreeStats degree_stats(const Graph& g);

/// Global clustering coefficient (3 * triangles / wedges); 0 if no wedges.
[[nodiscard]] double clustering_coefficient(const Graph& g);

/// Unweighted single-source shortest path lengths (BFS).
/// Unreachable nodes get SIZE_MAX.
[[nodiscard]] std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source);

/// Mean shortest-path length estimated from `samples` random sources
/// (exact when samples >= n). Ignores unreachable pairs.
[[nodiscard]] double mean_path_length(const Graph& g, std::size_t samples,
                                      std::uint64_t seed);

}  // namespace overmatch::graph
