// Undirected simple graph with stable edge identifiers.
//
// This is the topology substrate for all overlay/matching experiments: nodes
// are peers, edges are *potential* connections (the paper's E). The structure
// is immutable after construction; algorithms annotate it externally (weights,
// matchings) keyed by EdgeId.
//
// Storage is CSR (compressed sparse row): one contiguous adjacency array plus
// an offsets array, frozen at build() time. Compared to per-node
// std::vector<Adjacency> this removes one pointer hop per neighbourhood
// access and keeps all 2m adjacency entries cache-adjacent — the matching
// kernels stream these arrays in their innermost loops. Each node's slice is
// sorted by neighbour id, so find_edge stays a binary search.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace overmatch::util {
class ThreadPool;
}

namespace overmatch::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An undirected edge; endpoints are stored with u < v.
struct Edge {
  NodeId u;
  NodeId v;

  /// The endpoint different from `x`. Requires x ∈ {u, v}.
  [[nodiscard]] NodeId other(NodeId x) const noexcept {
    OM_CHECK(x == u || x == v);
    return x == u ? v : u;
  }
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Adjacency entry: the neighbour and the id of the connecting edge.
struct Adjacency {
  NodeId neighbor;
  EdgeId edge;
};

class Graph;

/// Incremental builder; rejects self-loops and duplicate edges.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_nodes);

  /// Adds edge {u, v}; returns its EdgeId. Duplicates abort (simple graph).
  EdgeId add_edge(NodeId u, NodeId v);

  /// True if {u, v} was already added (O(deg) scan; builder-time only).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Finalize: sorts adjacency lists by neighbour id and freezes the graph.
  /// With a pool the per-node sorts run in parallel; neighbour ids are
  /// unique per node (simple graph), so the sorted CSR is identical for
  /// every pool size including none.
  [[nodiscard]] Graph build(util::ThreadPool* pool = nullptr) &&;

 private:
  friend class Graph;
  std::vector<Edge> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

/// Immutable undirected simple graph in CSR layout.
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return offsets_.empty() ? 0 : offsets_.size() - 1;
  }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    OM_CHECK(e < edges_.size());
    return edges_[e];
  }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId v) const {
    OM_CHECK(v + 1 < offsets_.size());
    return {adj_.data() + offsets_[v], adj_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] std::size_t degree(NodeId v) const {
    OM_CHECK(v + 1 < offsets_.size());
    return offsets_[v + 1] - offsets_[v];
  }
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// CSR offsets (size num_nodes()+1): node v's adjacency occupies
  /// [offsets()[v], offsets()[v+1]) of the flat adjacency array. Exposed so
  /// weight indices can mirror the exact same layout.
  [[nodiscard]] const std::vector<std::size_t>& offsets() const noexcept {
    return offsets_;
  }

  /// EdgeId of {u, v}, or kInvalidEdge (binary search over sorted adjacency).
  [[nodiscard]] EdgeId find_edge(NodeId u, NodeId v) const noexcept;
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept {
    return find_edge(u, v) != kInvalidEdge;
  }

 private:
  friend class GraphBuilder;
  std::vector<Edge> edges_;
  std::vector<std::size_t> offsets_;  ///< size n+1; offsets_[n] == 2m
  std::vector<Adjacency> adj_;        ///< flat, per-node slices sorted by neighbour
};

}  // namespace overmatch::graph
