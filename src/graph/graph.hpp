// Undirected simple graph with stable edge identifiers.
//
// This is the topology substrate for all overlay/matching experiments: nodes
// are peers, edges are *potential* connections (the paper's E). The structure
// is immutable after construction; algorithms annotate it externally (weights,
// matchings) keyed by EdgeId.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "util/check.hpp"

namespace overmatch::graph {

using NodeId = std::uint32_t;
using EdgeId = std::uint32_t;

inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);
inline constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);

/// An undirected edge; endpoints are stored with u < v.
struct Edge {
  NodeId u;
  NodeId v;

  /// The endpoint different from `x`. Requires x ∈ {u, v}.
  [[nodiscard]] NodeId other(NodeId x) const noexcept {
    OM_CHECK(x == u || x == v);
    return x == u ? v : u;
  }
  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Adjacency entry: the neighbour and the id of the connecting edge.
struct Adjacency {
  NodeId neighbor;
  EdgeId edge;
};

class Graph;

/// Incremental builder; rejects self-loops and duplicate edges.
class GraphBuilder {
 public:
  explicit GraphBuilder(std::size_t num_nodes);

  /// Adds edge {u, v}; returns its EdgeId. Duplicates abort (simple graph).
  EdgeId add_edge(NodeId u, NodeId v);

  /// True if {u, v} was already added (O(deg) scan; builder-time only).
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  /// Finalize: sorts adjacency lists by neighbour id and freezes the graph.
  [[nodiscard]] Graph build() &&;

 private:
  friend class Graph;
  std::vector<Edge> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

/// Immutable undirected simple graph.
class Graph {
 public:
  Graph() = default;

  [[nodiscard]] std::size_t num_nodes() const noexcept { return adjacency_.size(); }
  [[nodiscard]] std::size_t num_edges() const noexcept { return edges_.size(); }

  [[nodiscard]] const Edge& edge(EdgeId e) const {
    OM_CHECK(e < edges_.size());
    return edges_[e];
  }
  [[nodiscard]] const std::vector<Edge>& edges() const noexcept { return edges_; }

  [[nodiscard]] std::span<const Adjacency> neighbors(NodeId v) const {
    OM_CHECK(v < adjacency_.size());
    return adjacency_[v];
  }
  [[nodiscard]] std::size_t degree(NodeId v) const {
    OM_CHECK(v < adjacency_.size());
    return adjacency_[v].size();
  }
  [[nodiscard]] std::size_t max_degree() const noexcept;

  /// EdgeId of {u, v}, or kInvalidEdge (binary search over sorted adjacency).
  [[nodiscard]] EdgeId find_edge(NodeId u, NodeId v) const noexcept;
  [[nodiscard]] bool has_edge(NodeId u, NodeId v) const noexcept {
    return find_edge(u, v) != kInvalidEdge;
  }

 private:
  friend class GraphBuilder;
  std::vector<Edge> edges_;
  std::vector<std::vector<Adjacency>> adjacency_;
};

}  // namespace overmatch::graph
