// Random and structured topology generators for overlay experiments.
//
// Every generator is deterministic given the Rng state, and every generated
// graph is simple (no self-loops / multi-edges). Generators that can produce
// disconnected graphs document it; connectivity can be enforced afterwards
// with `connect_components`.
#pragma once

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace overmatch::graph {

/// Erdős–Rényi G(n, p): each of the C(n,2) pairs is an edge with prob. p.
[[nodiscard]] Graph erdos_renyi(std::size_t n, double p, util::Rng& rng);

/// Erdős–Rényi G(n, m): exactly m distinct edges chosen uniformly.
/// Requires m <= C(n,2).
[[nodiscard]] Graph gnm(std::size_t n, std::size_t m, util::Rng& rng);

/// Barabási–Albert preferential attachment: starts from a clique of
/// `attach + 1` nodes; every subsequent node attaches to `attach` distinct
/// existing nodes with probability proportional to their degree.
[[nodiscard]] Graph barabasi_albert(std::size_t n, std::size_t attach, util::Rng& rng);

/// Watts–Strogatz small world: ring lattice with `k` (even) nearest
/// neighbours, each edge rewired with probability `beta`.
[[nodiscard]] Graph watts_strogatz(std::size_t n, std::size_t k, double beta,
                                   util::Rng& rng);

/// Random geometric graph on the unit square: nodes get uniform coordinates;
/// pairs within Euclidean distance `radius` are connected. The coordinates
/// used are returned through `coords_out` when non-null (x0,y0,x1,y1,...).
[[nodiscard]] Graph random_geometric(std::size_t n, double radius, util::Rng& rng,
                                     std::vector<double>* coords_out = nullptr);

/// rows × cols 4-neighbour grid.
[[nodiscard]] Graph grid(std::size_t rows, std::size_t cols);

/// Complete graph K_n.
[[nodiscard]] Graph complete(std::size_t n);

/// Complete bipartite graph K_{a,b} (left nodes 0..a-1, right a..a+b-1).
[[nodiscard]] Graph complete_bipartite(std::size_t a, std::size_t b);

/// Path P_n.
[[nodiscard]] Graph path(std::size_t n);

/// Cycle C_n (n >= 3).
[[nodiscard]] Graph cycle(std::size_t n);

/// Star S_n: node 0 is the hub, nodes 1..n-1 are leaves.
[[nodiscard]] Graph star(std::size_t n);

/// Random d-regular-ish graph via the configuration model with rejection of
/// loops/duplicates (retries until simple). Requires n*d even and d < n.
[[nodiscard]] Graph random_regular(std::size_t n, std::size_t d, util::Rng& rng);

/// Named generator dispatch used by benches: "er", "ba", "ws", "geo", "grid",
/// "complete", "regular". Parameters are chosen so the expected average degree
/// is roughly `avg_degree`.
[[nodiscard]] Graph by_name(const std::string& name, std::size_t n, double avg_degree,
                            util::Rng& rng);
/// Non-aborting variant for CLIs: nullopt on an unknown topology name (print
/// topology_names() and exit 2 — the friendly-error contract).
[[nodiscard]] std::optional<Graph> try_by_name(const std::string& name,
                                               std::size_t n, double avg_degree,
                                               util::Rng& rng);
/// '|'-separated list of the topology names by_name accepts.
[[nodiscard]] const char* topology_names();

/// Adds (arbitrary) bridge edges until the graph is connected; returns the
/// possibly-augmented graph. Used where experiments require connectivity.
[[nodiscard]] Graph connect_components(const Graph& g);

}  // namespace overmatch::graph
