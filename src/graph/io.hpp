// Plain-text edge-list serialization ("n m" header then one "u v" per line).
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace overmatch::graph {

/// Writes "n m\n" followed by one "u v" line per edge.
void write_edge_list(std::ostream& os, const Graph& g);

/// Parses the format produced by write_edge_list. Aborts on malformed input.
[[nodiscard]] Graph read_edge_list(std::istream& is);

/// Convenience round-trips through files.
void save_edge_list(const std::string& path, const Graph& g);
[[nodiscard]] Graph load_edge_list(const std::string& path);

}  // namespace overmatch::graph
