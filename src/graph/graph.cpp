#include "graph/graph.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace overmatch::graph {

GraphBuilder::GraphBuilder(std::size_t num_nodes) : adjacency_(num_nodes) {
  OM_CHECK(num_nodes < static_cast<std::size_t>(kInvalidNode));
}

EdgeId GraphBuilder::add_edge(NodeId u, NodeId v) {
  OM_CHECK(u < adjacency_.size() && v < adjacency_.size());
  OM_CHECK_MSG(u != v, "self-loops are not allowed");
  OM_CHECK_MSG(!has_edge(u, v), "duplicate edge");
  const auto id = static_cast<EdgeId>(edges_.size());
  edges_.push_back(Edge{std::min(u, v), std::max(u, v)});
  adjacency_[u].push_back({v, id});
  adjacency_[v].push_back({u, id});
  return id;
}

bool GraphBuilder::has_edge(NodeId u, NodeId v) const noexcept {
  if (u >= adjacency_.size() || v >= adjacency_.size()) return false;
  const auto& shorter =
      adjacency_[u].size() <= adjacency_[v].size() ? adjacency_[u] : adjacency_[v];
  const NodeId target = adjacency_[u].size() <= adjacency_[v].size() ? v : u;
  for (const auto& a : shorter) {
    if (a.neighbor == target) return true;
  }
  return false;
}

Graph GraphBuilder::build(util::ThreadPool* pool) && {
  Graph g;
  g.edges_ = std::move(edges_);
  g.offsets_.resize(adjacency_.size() + 1, 0);
  for (std::size_t v = 0; v < adjacency_.size(); ++v) {
    g.offsets_[v + 1] = g.offsets_[v] + adjacency_[v].size();
  }
  g.adj_.resize(g.offsets_.back());
  const auto finalize_range = [&](std::size_t begin, std::size_t end) {
    for (std::size_t v = begin; v < end; ++v) {
      auto& adj = adjacency_[v];
      std::sort(adj.begin(), adj.end(), [](const Adjacency& a, const Adjacency& b) {
        return a.neighbor < b.neighbor;
      });
      std::copy(adj.begin(), adj.end(),
                g.adj_.begin() + static_cast<std::ptrdiff_t>(g.offsets_[v]));
    }
  };
  if (pool != nullptr) {
    // Per-node sorts touch disjoint slices; order across nodes is irrelevant.
    pool->parallel_for(adjacency_.size(), finalize_range, /*min_chunk=*/256);
  } else {
    finalize_range(0, adjacency_.size());
  }
  return g;
}

std::size_t Graph::max_degree() const noexcept {
  std::size_t d = 0;
  for (std::size_t v = 0; v + 1 < offsets_.size(); ++v) {
    d = std::max(d, offsets_[v + 1] - offsets_[v]);
  }
  return d;
}

EdgeId Graph::find_edge(NodeId u, NodeId v) const noexcept {
  if (u >= num_nodes() || v >= num_nodes()) return kInvalidEdge;
  const auto adj = neighbors(u);
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), v,
      [](const Adjacency& a, NodeId target) { return a.neighbor < target; });
  if (it != adj.end() && it->neighbor == v) return it->edge;
  return kInvalidEdge;
}

}  // namespace overmatch::graph
