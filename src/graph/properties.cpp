#include "graph/properties.hpp"

#include <algorithm>
#include <limits>
#include <queue>

#include "util/rng.hpp"

namespace overmatch::graph {

Components connected_components(const Graph& g) {
  Components out;
  out.label.assign(g.num_nodes(), std::numeric_limits<std::size_t>::max());
  std::queue<NodeId> q;
  for (NodeId s = 0; s < g.num_nodes(); ++s) {
    if (out.label[s] != std::numeric_limits<std::size_t>::max()) continue;
    out.label[s] = out.count;
    q.push(s);
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (const auto& a : g.neighbors(v)) {
        if (out.label[a.neighbor] == std::numeric_limits<std::size_t>::max()) {
          out.label[a.neighbor] = out.count;
          q.push(a.neighbor);
        }
      }
    }
    ++out.count;
  }
  return out;
}

bool is_connected(const Graph& g) {
  if (g.num_nodes() == 0) return true;
  return connected_components(g).count == 1;
}

DegreeStats degree_stats(const Graph& g) {
  DegreeStats s;
  if (g.num_nodes() == 0) return s;
  s.min = std::numeric_limits<std::size_t>::max();
  std::size_t sum = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const std::size_t d = g.degree(v);
    s.min = std::min(s.min, d);
    s.max = std::max(s.max, d);
    sum += d;
  }
  s.mean = static_cast<double>(sum) / static_cast<double>(g.num_nodes());
  return s;
}

double clustering_coefficient(const Graph& g) {
  std::size_t triangles3 = 0;  // 3 * number of triangles (each counted per wedge apex)
  std::size_t wedges = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto adj = g.neighbors(v);
    const std::size_t d = adj.size();
    if (d < 2) continue;
    wedges += d * (d - 1) / 2;
    for (std::size_t i = 0; i < d; ++i) {
      for (std::size_t j = i + 1; j < d; ++j) {
        if (g.has_edge(adj[i].neighbor, adj[j].neighbor)) ++triangles3;
      }
    }
  }
  if (wedges == 0) return 0.0;
  return static_cast<double>(triangles3) / static_cast<double>(wedges);
}

std::vector<std::size_t> bfs_distances(const Graph& g, NodeId source) {
  std::vector<std::size_t> dist(g.num_nodes(), std::numeric_limits<std::size_t>::max());
  std::queue<NodeId> q;
  dist[source] = 0;
  q.push(source);
  while (!q.empty()) {
    const NodeId v = q.front();
    q.pop();
    for (const auto& a : g.neighbors(v)) {
      if (dist[a.neighbor] == std::numeric_limits<std::size_t>::max()) {
        dist[a.neighbor] = dist[v] + 1;
        q.push(a.neighbor);
      }
    }
  }
  return dist;
}

double mean_path_length(const Graph& g, std::size_t samples, std::uint64_t seed) {
  if (g.num_nodes() < 2) return 0.0;
  util::Rng rng(seed);
  std::vector<NodeId> sources;
  if (samples >= g.num_nodes()) {
    for (NodeId v = 0; v < g.num_nodes(); ++v) sources.push_back(v);
  } else {
    for (const auto i : rng.sample_indices(g.num_nodes(), samples)) {
      sources.push_back(static_cast<NodeId>(i));
    }
  }
  double total = 0.0;
  std::size_t pairs = 0;
  for (const NodeId s : sources) {
    const auto dist = bfs_distances(g, s);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (v == s || dist[v] == std::numeric_limits<std::size_t>::max()) continue;
      total += static_cast<double>(dist[v]);
      ++pairs;
    }
  }
  return pairs > 0 ? total / static_cast<double>(pairs) : 0.0;
}

}  // namespace overmatch::graph
