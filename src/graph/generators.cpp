#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <string_view>
#include <unordered_set>

#include "graph/properties.hpp"

namespace overmatch::graph {
namespace {

/// Packs an (u, v) pair, u < v, into a 64-bit key for dedup sets.
std::uint64_t pair_key(NodeId u, NodeId v) noexcept {
  const auto a = std::min(u, v);
  const auto b = std::max(u, v);
  return (static_cast<std::uint64_t>(a) << 32) | b;
}

}  // namespace

Graph erdos_renyi(std::size_t n, double p, util::Rng& rng) {
  OM_CHECK(p >= 0.0 && p <= 1.0);
  GraphBuilder b(n);
  if (p >= 1.0) {
    for (NodeId u = 0; u < n; ++u) {
      for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
    }
    return std::move(b).build();
  }
  if (p > 0.0 && n >= 2) {
    // Batagelj–Brandes skip sampling (Phys. Rev. E 71, 2005): walk the
    // linearised upper triangle in geometric jumps of mean 1/p instead of
    // testing all n(n-1)/2 pairs — O(n + m), which is what makes the
    // m ~ 10^7 bench rungs buildable in seconds rather than hours.
    const double denom = std::log1p(-p);  // log(1-p) < 0
    std::size_t v = 1;
    std::int64_t w = -1;
    while (v < n) {
      const double r = rng.uniform();  // [0, 1): log1p(-r) is finite
      w += 1 + static_cast<std::int64_t>(std::log1p(-r) / denom);
      while (v < n && w >= static_cast<std::int64_t>(v)) {
        w -= static_cast<std::int64_t>(v);
        ++v;
      }
      if (v < n) b.add_edge(static_cast<NodeId>(v), static_cast<NodeId>(w));
    }
  }
  return std::move(b).build();
}

Graph gnm(std::size_t n, std::size_t m, util::Rng& rng) {
  const std::size_t max_m = n * (n - 1) / 2;
  OM_CHECK(m <= max_m);
  GraphBuilder b(n);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(m * 2);
  while (seen.size() < m) {
    const auto u = static_cast<NodeId>(rng.index(n));
    const auto v = static_cast<NodeId>(rng.index(n));
    if (u == v) continue;
    if (seen.insert(pair_key(u, v)).second) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph barabasi_albert(std::size_t n, std::size_t attach, util::Rng& rng) {
  OM_CHECK(attach >= 1);
  OM_CHECK(n > attach);
  GraphBuilder b(n);
  // `targets` holds one entry per edge endpoint: sampling uniformly from it is
  // sampling proportionally to degree.
  std::vector<NodeId> endpoints;
  endpoints.reserve(2 * attach * n);
  // Seed clique on attach+1 nodes.
  for (NodeId u = 0; u <= attach; ++u) {
    for (NodeId v = u + 1; v <= attach; ++v) {
      b.add_edge(u, v);
      endpoints.push_back(u);
      endpoints.push_back(v);
    }
  }
  for (NodeId w = static_cast<NodeId>(attach) + 1; w < n; ++w) {
    std::unordered_set<NodeId> chosen;
    while (chosen.size() < attach) {
      const NodeId t = endpoints[rng.index(endpoints.size())];
      chosen.insert(t);
    }
    for (const NodeId t : chosen) {
      b.add_edge(w, t);
      endpoints.push_back(w);
      endpoints.push_back(t);
    }
  }
  return std::move(b).build();
}

Graph watts_strogatz(std::size_t n, std::size_t k, double beta, util::Rng& rng) {
  OM_CHECK(k >= 2 && k % 2 == 0);
  OM_CHECK(n > k);
  OM_CHECK(beta >= 0.0 && beta <= 1.0);
  // Collect ring-lattice edges, then rewire each with probability beta.
  std::unordered_set<std::uint64_t> present;
  std::vector<std::pair<NodeId, NodeId>> edges;
  for (NodeId u = 0; u < n; ++u) {
    for (std::size_t j = 1; j <= k / 2; ++j) {
      const auto v = static_cast<NodeId>((u + j) % n);
      edges.emplace_back(u, v);
      present.insert(pair_key(u, v));
    }
  }
  for (auto& [u, v] : edges) {
    if (!rng.chance(beta)) continue;
    // Rewire the far endpoint to a uniformly random non-neighbour.
    for (int tries = 0; tries < 64; ++tries) {
      const auto w = static_cast<NodeId>(rng.index(n));
      if (w == u || present.contains(pair_key(u, w))) continue;
      present.erase(pair_key(u, v));
      present.insert(pair_key(u, w));
      v = w;
      break;
    }
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : edges) b.add_edge(u, v);
  return std::move(b).build();
}

Graph random_geometric(std::size_t n, double radius, util::Rng& rng,
                       std::vector<double>* coords_out) {
  OM_CHECK(radius > 0.0);
  std::vector<double> xs(n);
  std::vector<double> ys(n);
  for (std::size_t i = 0; i < n; ++i) {
    xs[i] = rng.uniform();
    ys[i] = rng.uniform();
  }
  GraphBuilder b(n);
  const double r2 = radius * radius;
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) {
      const double dx = xs[u] - xs[v];
      const double dy = ys[u] - ys[v];
      if (dx * dx + dy * dy <= r2) b.add_edge(u, v);
    }
  }
  if (coords_out != nullptr) {
    coords_out->clear();
    coords_out->reserve(2 * n);
    for (std::size_t i = 0; i < n; ++i) {
      coords_out->push_back(xs[i]);
      coords_out->push_back(ys[i]);
    }
  }
  return std::move(b).build();
}

Graph grid(std::size_t rows, std::size_t cols) {
  GraphBuilder b(rows * cols);
  const auto id = [cols](std::size_t r, std::size_t c) {
    return static_cast<NodeId>(r * cols + c);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(id(r, c), id(r, c + 1));
      if (r + 1 < rows) b.add_edge(id(r, c), id(r + 1, c));
    }
  }
  return std::move(b).build();
}

Graph complete(std::size_t n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v = u + 1; v < n; ++v) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph complete_bipartite(std::size_t a, std::size_t bb) {
  GraphBuilder b(a + bb);
  for (NodeId u = 0; u < a; ++u) {
    for (NodeId v = static_cast<NodeId>(a); v < a + bb; ++v) b.add_edge(u, v);
  }
  return std::move(b).build();
}

Graph path(std::size_t n) {
  GraphBuilder b(n);
  for (NodeId u = 0; u + 1 < n; ++u) b.add_edge(u, u + 1);
  return std::move(b).build();
}

Graph cycle(std::size_t n) {
  OM_CHECK(n >= 3);
  GraphBuilder b(n);
  for (NodeId u = 0; u + 1 < n; ++u) b.add_edge(u, u + 1);
  b.add_edge(static_cast<NodeId>(n - 1), 0);
  return std::move(b).build();
}

Graph star(std::size_t n) {
  OM_CHECK(n >= 1);
  GraphBuilder b(n);
  for (NodeId v = 1; v < n; ++v) b.add_edge(0, v);
  return std::move(b).build();
}

Graph random_regular(std::size_t n, std::size_t d, util::Rng& rng) {
  OM_CHECK(d < n);
  OM_CHECK((n * d) % 2 == 0);
  // Configuration model followed by swap-repair: pair stubs, then fix loops
  // and duplicates by swapping a bad pair against a random other pair (an
  // edge-switch that preserves all degrees).
  std::vector<std::pair<NodeId, NodeId>> pairs;
  pairs.reserve(n * d / 2);
  {
    std::vector<NodeId> stubs;
    stubs.reserve(n * d);
    for (NodeId v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    rng.shuffle(stubs);
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      pairs.emplace_back(stubs[i], stubs[i + 1]);
    }
  }
  auto count_multiset = [&] {
    std::unordered_set<std::uint64_t> seen;
    std::size_t bad = 0;
    for (const auto& [u, v] : pairs) {
      if (u == v || !seen.insert(pair_key(u, v)).second) ++bad;
    }
    return bad;
  };
  std::size_t guard = 0;
  while (count_multiset() > 0) {
    OM_CHECK_MSG(++guard < 200000, "random_regular: repair did not converge");
    // Locate one bad pair (first loop or duplicate in a scan).
    std::unordered_set<std::uint64_t> seen;
    std::size_t bad_idx = pairs.size();
    for (std::size_t k = 0; k < pairs.size(); ++k) {
      const auto& [u, v] = pairs[k];
      if (u == v || !seen.insert(pair_key(u, v)).second) {
        bad_idx = k;
        break;
      }
    }
    OM_CHECK(bad_idx < pairs.size());
    // Swap its second endpoint with a uniformly random other pair's second
    // endpoint (degree-preserving); acceptance is implicit — the outer loop
    // re-checks the whole multiset.
    const std::size_t other = rng.index(pairs.size());
    if (other == bad_idx) continue;
    std::swap(pairs[bad_idx].second, pairs[other].second);
  }
  GraphBuilder b(n);
  for (const auto& [u, v] : pairs) b.add_edge(u, v);
  return std::move(b).build();
}

Graph by_name(const std::string& name, std::size_t n, double avg_degree,
              util::Rng& rng) {
  OM_CHECK(n >= 4);
  const double davg = std::min(avg_degree, static_cast<double>(n - 1));
  if (name == "er") {
    return erdos_renyi(n, davg / static_cast<double>(n - 1), rng);
  }
  if (name == "ba") {
    const auto attach = static_cast<std::size_t>(std::max(1.0, davg / 2.0));
    return barabasi_albert(n, std::min(attach, n - 2), rng);
  }
  if (name == "ws") {
    auto k = static_cast<std::size_t>(davg);
    if (k % 2 == 1) ++k;
    k = std::max<std::size_t>(2, std::min(k, n - 2));
    if (k % 2 == 1) --k;
    return watts_strogatz(n, k, 0.1, rng);
  }
  if (name == "geo") {
    // E[deg] ≈ n * pi * r^2 for interior nodes; solve for r.
    const double r = std::sqrt(davg / (static_cast<double>(n) * 3.14159265358979));
    return random_geometric(n, r, rng);
  }
  if (name == "grid") {
    const auto side = static_cast<std::size_t>(std::ceil(std::sqrt(static_cast<double>(n))));
    return grid(side, side);
  }
  if (name == "complete") return complete(n);
  if (name == "regular") {
    auto d = static_cast<std::size_t>(davg);
    d = std::max<std::size_t>(1, std::min(d, n - 1));
    if ((n * d) % 2 == 1) ++d;
    return random_regular(n, d, rng);
  }
  OM_CHECK_MSG(false, "unknown generator name");
  return Graph{};
}

const char* topology_names() { return "er|ba|ws|geo|grid|complete|regular"; }

std::optional<Graph> try_by_name(const std::string& name, std::size_t n,
                                 double avg_degree, util::Rng& rng) {
  const std::string_view all = topology_names();
  std::size_t pos = 0;
  bool known = false;
  while (pos <= all.size()) {
    const std::size_t bar = all.find('|', pos);
    const std::string_view tok =
        all.substr(pos, bar == std::string_view::npos ? bar : bar - pos);
    if (tok == name) {
      known = true;
      break;
    }
    if (bar == std::string_view::npos) break;
    pos = bar + 1;
  }
  if (!known) return std::nullopt;
  return by_name(name, n, avg_degree, rng);
}

Graph connect_components(const Graph& g) {
  const auto comp = connected_components(g);
  if (comp.count <= 1) {
    // Already connected: rebuild an identical graph (cheap copy path).
    GraphBuilder b(g.num_nodes());
    for (const auto& e : g.edges()) b.add_edge(e.u, e.v);
    return std::move(b).build();
  }
  // Pick one representative per component and chain them.
  std::vector<NodeId> rep(comp.count, kInvalidNode);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (rep[comp.label[v]] == kInvalidNode) rep[comp.label[v]] = v;
  }
  GraphBuilder b(g.num_nodes());
  for (const auto& e : g.edges()) b.add_edge(e.u, e.v);
  for (std::size_t c = 1; c < comp.count; ++c) b.add_edge(rep[c - 1], rep[c]);
  return std::move(b).build();
}

}  // namespace overmatch::graph
