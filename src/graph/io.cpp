#include "graph/io.hpp"

#include <fstream>
#include <ostream>

namespace overmatch::graph {

void write_edge_list(std::ostream& os, const Graph& g) {
  os << g.num_nodes() << ' ' << g.num_edges() << '\n';
  for (const auto& e : g.edges()) os << e.u << ' ' << e.v << '\n';
}

Graph read_edge_list(std::istream& is) {
  std::size_t n = 0;
  std::size_t m = 0;
  OM_CHECK_MSG(static_cast<bool>(is >> n >> m), "edge list: bad header");
  GraphBuilder b(n);
  for (std::size_t i = 0; i < m; ++i) {
    NodeId u = 0;
    NodeId v = 0;
    OM_CHECK_MSG(static_cast<bool>(is >> u >> v), "edge list: truncated");
    b.add_edge(u, v);
  }
  return std::move(b).build();
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream os(path);
  OM_CHECK_MSG(os.good(), "cannot open file for writing");
  write_edge_list(os, g);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream is(path);
  OM_CHECK_MSG(is.good(), "cannot open file for reading");
  return read_edge_list(is);
}

}  // namespace overmatch::graph
