#include "overlay/peer.hpp"

#include <cmath>

namespace overmatch::overlay {

Population Population::random(std::size_t n, std::size_t interest_dims,
                              util::Rng& rng) {
  Population pop;
  pop.peers_.resize(n);
  for (auto& p : pop.peers_) {
    p.x = rng.uniform();
    p.y = rng.uniform();
    p.interests.resize(interest_dims);
    double norm2 = 0.0;
    for (auto& c : p.interests) {
      c = rng.normal();
      norm2 += c * c;
    }
    const double inv = norm2 > 0 ? 1.0 / std::sqrt(norm2) : 0.0;
    for (auto& c : p.interests) c *= inv;
    p.bandwidth = std::exp(rng.normal() * 0.8 + 2.0);  // log-normal, median ≈ 7.4
    p.uptime = 0.05 + 0.95 * rng.uniform();
  }
  pop.tx_.assign(n * n, 0.0);
  // Sparse symmetric history: ~4 interactions per peer on average.
  const std::size_t interactions = 2 * n;
  for (std::size_t k = 0; k < interactions; ++k) {
    const auto a = static_cast<NodeId>(rng.index(n));
    const auto b = static_cast<NodeId>(rng.index(n));
    if (a == b) continue;
    pop.set_transactions(a, b, rng.uniform());
  }
  return pop;
}

double Population::transactions(NodeId a, NodeId b) const {
  OM_CHECK(a < peers_.size() && b < peers_.size());
  return tx_[tx_index(a, b)];
}

void Population::set_transactions(NodeId a, NodeId b, double value) {
  OM_CHECK(a < peers_.size() && b < peers_.size());
  tx_[tx_index(a, b)] = value;
  tx_[tx_index(b, a)] = value;
}

}  // namespace overmatch::overlay
