#include "overlay/metrics.hpp"

#include <cmath>

namespace overmatch::overlay {

const char* metric_name(Metric m) {
  switch (m) {
    case Metric::kProximity: return "proximity";
    case Metric::kInterests: return "interests";
    case Metric::kBandwidth: return "bandwidth";
    case Metric::kUptime: return "uptime";
    case Metric::kTransactions: return "transactions";
    case Metric::kHybrid: return "hybrid";
  }
  return "?";
}

Metric metric_by_name(const std::string& name) {
  if (name == "proximity") return Metric::kProximity;
  if (name == "interests") return Metric::kInterests;
  if (name == "bandwidth") return Metric::kBandwidth;
  if (name == "uptime") return Metric::kUptime;
  if (name == "transactions") return Metric::kTransactions;
  if (name == "hybrid") return Metric::kHybrid;
  OM_CHECK_MSG(false, "unknown metric name");
  return Metric::kProximity;
}

namespace {

double cosine(const std::vector<double>& a, const std::vector<double>& b) {
  OM_CHECK(a.size() == b.size());
  double dot = 0.0;
  for (std::size_t k = 0; k < a.size(); ++k) dot += a[k] * b[k];
  return dot;  // vectors are unit-norm
}

}  // namespace

double metric_score(const Population& pop, Metric m, NodeId i, NodeId j) {
  const Peer& pi = pop.peer(i);
  const Peer& pj = pop.peer(j);
  switch (m) {
    case Metric::kProximity: {
      const double dx = pi.x - pj.x;
      const double dy = pi.y - pj.y;
      return -std::sqrt(dx * dx + dy * dy);
    }
    case Metric::kInterests:
      return cosine(pi.interests, pj.interests);
    case Metric::kBandwidth:
      return pj.bandwidth;
    case Metric::kUptime:
      return pj.uptime;
    case Metric::kTransactions:
      return pop.transactions(i, j);
    case Metric::kHybrid: {
      const double dx = pi.x - pj.x;
      const double dy = pi.y - pj.y;
      const double prox = 1.0 - std::sqrt(dx * dx + dy * dy) / 1.4142135623730951;
      const double sim = 0.5 * (1.0 + cosine(pi.interests, pj.interests));
      const double bw = pj.bandwidth / (pj.bandwidth + 10.0);
      return 0.4 * prox + 0.4 * sim + 0.2 * bw;
    }
  }
  return 0.0;
}

prefs::PreferenceProfile build_profile(const graph::Graph& g, const Population& pop,
                                       const std::vector<Metric>& metrics,
                                       prefs::Quotas quotas) {
  OM_CHECK(metrics.size() == g.num_nodes());
  OM_CHECK(pop.size() == g.num_nodes());
  return prefs::PreferenceProfile::from_scores(
      g, std::move(quotas), [&pop, &metrics](NodeId i, NodeId j) {
        return metric_score(pop, metrics[i], i, j);
      });
}

std::vector<Metric> random_metrics(std::size_t n, util::Rng& rng) {
  static constexpr Metric kAll[] = {Metric::kProximity,    Metric::kInterests,
                                    Metric::kBandwidth,    Metric::kUptime,
                                    Metric::kTransactions, Metric::kHybrid};
  std::vector<Metric> out(n);
  for (auto& m : out) m = kAll[rng.index(std::size(kAll))];
  return out;
}

std::vector<Metric> homogeneous_metrics(std::size_t n, Metric m) {
  return std::vector<Metric>(n, m);
}

}  // namespace overmatch::overlay
