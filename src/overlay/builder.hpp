// End-to-end overlay construction: potential-connection topology + peer
// population + per-node metrics → preference profile → LID run → built
// overlay. This is the pipeline a downstream deployment would use.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "matching/lid.hpp"
#include "overlay/metrics.hpp"
#include "prefs/weights.hpp"
#include "sim/event_sim.hpp"

namespace overmatch::overlay {

struct BuildOptions {
  std::uint32_t quota = 4;  ///< per-node connection quota
  sim::Schedule schedule = sim::Schedule::kRandomOrder;
  std::uint64_t seed = 1;
};

/// Everything the builder produces, kept together so quality analysis and
/// churn can continue from it. Non-movable: profile/weights/matching hold
/// pointers into `potential`, so the aggregate lives on the heap.
class Overlay {
 public:
  Overlay(graph::Graph potential_graph, const Population& pop,
          const std::vector<Metric>& metrics, const BuildOptions& options);
  Overlay(const Overlay&) = delete;
  Overlay& operator=(const Overlay&) = delete;

  /// Candidate-connection graph (the paper's G).
  [[nodiscard]] const graph::Graph& potential() const noexcept { return potential_; }
  /// Private preferences (exposed for evaluation only).
  [[nodiscard]] const prefs::PreferenceProfile& profile() const noexcept {
    return profile_;
  }
  /// The eq.-9 weights the protocol actually exchanged.
  [[nodiscard]] const prefs::EdgeWeights& weights() const noexcept { return weights_; }
  /// Established connections.
  [[nodiscard]] const matching::Matching& matching() const noexcept { return matching_; }
  [[nodiscard]] matching::Matching& mutable_matching() noexcept { return matching_; }
  /// Protocol cost of the build.
  [[nodiscard]] const sim::MessageStats& stats() const noexcept { return stats_; }

 private:
  graph::Graph potential_;
  prefs::PreferenceProfile profile_;
  prefs::EdgeWeights weights_;
  matching::Matching matching_;
  sim::MessageStats stats_;
};

/// Builds an overlay by running LID over the discrete-event network.
[[nodiscard]] std::unique_ptr<Overlay> build_overlay(graph::Graph potential,
                                                     const Population& pop,
                                                     const std::vector<Metric>& metrics,
                                                     const BuildOptions& options);

/// Graph induced by the established connections (for structural analysis).
[[nodiscard]] graph::Graph matched_subgraph(const matching::Matching& m);

}  // namespace overmatch::overlay
