// Individual suitability metrics and preference-profile construction.
//
// The paper's key scenario: *every peer chooses its own metric and never
// discloses it*. We model that with a per-node metric assignment; the
// preference profile (and from it the ΔS̄ values the protocol exchanges) is
// all the matching layer ever sees.
#pragma once

#include <string>
#include <vector>

#include "overlay/peer.hpp"
#include "prefs/preference_profile.hpp"

namespace overmatch::overlay {

/// The metric families from the paper's introduction.
enum class Metric : std::uint8_t {
  kProximity,     ///< closer peers score higher (negative Euclidean distance)
  kInterests,     ///< cosine similarity of interest embeddings
  kBandwidth,     ///< neighbour's available bandwidth
  kUptime,        ///< neighbour's availability
  kTransactions,  ///< shared transaction history (recommendation/trust proxy)
  kHybrid,        ///< fixed blend of proximity, interests and bandwidth
};

[[nodiscard]] const char* metric_name(Metric m);
[[nodiscard]] Metric metric_by_name(const std::string& name);

/// Score of neighbour j from i's point of view under metric m (higher =
/// better). Deterministic; asymmetric in general (e.g. bandwidth looks at
/// j's resources only).
[[nodiscard]] double metric_score(const Population& pop, Metric m, NodeId i, NodeId j);

/// Builds a preference profile where node v ranks its neighbourhood with
/// metrics[v]. metrics.size() must equal the node count.
[[nodiscard]] prefs::PreferenceProfile build_profile(const graph::Graph& g,
                                                     const Population& pop,
                                                     const std::vector<Metric>& metrics,
                                                     prefs::Quotas quotas);

/// Uniformly random per-node metric assignment (heterogeneous interests —
/// the fully distributed scenario).
[[nodiscard]] std::vector<Metric> random_metrics(std::size_t n, util::Rng& rng);

/// All nodes use the same metric (homogeneous baseline).
[[nodiscard]] std::vector<Metric> homogeneous_metrics(std::size_t n, Metric m);

}  // namespace overmatch::overlay
