// Overlay quality analysis: how good is the constructed overlay, both for
// individual peers (satisfaction) and structurally (connectivity, paths).
#pragma once

#include <string>

#include "overlay/builder.hpp"

namespace overmatch::overlay {

struct QualityReport {
  // Satisfaction (eq. 1) distribution over peers.
  double satisfaction_total = 0.0;
  double satisfaction_mean = 0.0;
  double satisfaction_min = 0.0;
  double satisfaction_p10 = 0.0;

  // Resource usage.
  double quota_utilization = 0.0;  ///< Σ load / Σ quota
  std::size_t connections = 0;     ///< established edges

  // Structure of the matched subgraph.
  std::size_t components = 0;
  double clustering = 0.0;
  double mean_path_length = 0.0;  ///< within the largest structure (sampled)

  // Protocol cost.
  std::size_t messages = 0;
};

/// Computes the full report for a built overlay.
[[nodiscard]] QualityReport analyze(const Overlay& overlay);

/// One-paragraph human-readable rendering.
[[nodiscard]] std::string to_string(const QualityReport& r);

}  // namespace overmatch::overlay
