#include "overlay/discovery.hpp"

#include <algorithm>
#include <memory>

#include "sim/event_sim.hpp"

namespace overmatch::overlay {
namespace {

using graph::NodeId;

// Message kinds. PULL asks a peer for a sample of its view; PUSH carries one
// discovered peer id per message (data = id); TICK is the local round timer.
constexpr std::uint32_t kPull = 10;
constexpr std::uint32_t kPush = 11;
constexpr std::uint32_t kTick = 12;

class GossipPeer final : public sim::Agent {
 public:
  GossipPeer(NodeId self, const DiscoveryOptions& opt, util::Rng rng)
      : self_(self), opt_(opt), rng_(rng) {}

  void bootstrap(std::vector<NodeId> contacts) { view_ = std::move(contacts); }

  void on_start(sim::Outbox& out) override {
    if (opt_.rounds > 0 && !view_.empty()) {
      out.send_timer(next_tick_delay(), sim::Message{kTick, 0});
    }
  }

  void on_message(NodeId from, const sim::Message& msg, sim::Outbox& out) override {
    switch (msg.kind) {
      case kTick: {
        if (rounds_done_ >= opt_.rounds || view_.empty()) return;
        ++rounds_done_;
        const NodeId target = view_[rng_.index(view_.size())];
        out.send(target, sim::Message{kPull, 0});
        send_sample(target, out);  // push half of the exchange
        if (rounds_done_ < opt_.rounds) {
          out.send_timer(next_tick_delay(), sim::Message{kTick, 0});
        }
        return;
      }
      case kPull:
        learn(from);
        send_sample(from, out);  // pull half: answer with a sample
        return;
      case kPush:
        learn(from);
        learn(static_cast<NodeId>(msg.data));
        return;
      default:
        OM_CHECK_MSG(false, "gossip: unknown message kind");
    }
  }

  [[nodiscard]] bool terminated() const override { return rounds_done_ >= opt_.rounds; }
  [[nodiscard]] const std::vector<NodeId>& view() const noexcept { return view_; }

 private:
  /// Jittered round spacing so peers don't tick in lockstep.
  [[nodiscard]] double next_tick_delay() { return 3.0 + rng_.uniform(); }

  void learn(NodeId peer) {
    if (peer == self_) return;
    if (std::find(view_.begin(), view_.end(), peer) != view_.end()) return;
    if (view_.size() < opt_.view_size) {
      view_.push_back(peer);
    } else {
      // Bounded view: replace a uniformly random entry (healing churn bias
      // is out of scope; uniform replacement keeps the view a random sample).
      view_[rng_.index(view_.size())] = peer;
    }
  }

  void send_sample(NodeId to, sim::Outbox& out) {
    const std::size_t k = std::min(opt_.gossip_sample, view_.size());
    for (const std::size_t idx : rng_.sample_indices(view_.size(), k)) {
      if (view_[idx] != to) out.send(to, sim::Message{kPush, view_[idx]});
    }
  }

  NodeId self_;
  DiscoveryOptions opt_;
  util::Rng rng_;
  std::vector<NodeId> view_;
  std::size_t rounds_done_ = 0;
};

}  // namespace

DiscoveryResult discover_candidates(std::size_t n, const DiscoveryOptions& options) {
  OM_CHECK(n >= 2);
  OM_CHECK(options.bootstrap_contacts >= 1);
  OM_CHECK(options.view_size >= options.bootstrap_contacts);
  util::Rng rng(options.seed);

  std::vector<std::unique_ptr<GossipPeer>> peers;
  peers.reserve(n);
  for (NodeId v = 0; v < n; ++v) {
    peers.push_back(std::make_unique<GossipPeer>(v, options, rng.split()));
  }
  // Bootstrap: a ring plus random extra contacts, so the knowledge graph is
  // connected from the start (standard bootstrap-server assumption).
  for (NodeId v = 0; v < n; ++v) {
    std::vector<NodeId> contacts{static_cast<NodeId>((v + 1) % n)};
    while (contacts.size() < std::min(options.bootstrap_contacts, n - 1)) {
      const auto c = static_cast<NodeId>(rng.index(n));
      if (c != v && std::find(contacts.begin(), contacts.end(), c) == contacts.end()) {
        contacts.push_back(c);
      }
    }
    peers[v]->bootstrap(std::move(contacts));
  }

  std::vector<sim::Agent*> agents;
  agents.reserve(n);
  for (const auto& p : peers) agents.push_back(p.get());
  sim::EventSimulator sim(std::move(agents), sim::Schedule::kRandomDelay,
                          options.seed ^ 0x9e3779b97f4a7c15ULL);
  auto stats = sim.run();

  // Candidate graph: union of final views.
  graph::GraphBuilder builder(n);
  for (NodeId v = 0; v < n; ++v) {
    for (const NodeId u : peers[v]->view()) {
      if (!builder.has_edge(v, u)) builder.add_edge(v, u);
    }
  }
  return DiscoveryResult{std::move(builder).build(), stats};
}

}  // namespace overmatch::overlay
