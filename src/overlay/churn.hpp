// Churn handling — the paper's stated future-work extension (joins/leaves).
//
// Model: a fixed *universe* of peers and potential edges; nodes go offline
// and come back. Three repair engines answer each event
// (`ChurnOptions::mode`):
//  * kIncremental (default) — the stateful matching::DynamicBSuitor: bidding
//    cascades re-run only from the event's frontier, O(affected degree ·
//    cascade length) per event, and the maintained matching equals the
//    from-scratch greedy (= LIC = b-Suitor) matching of the alive subgraph
//    after every event (DESIGN.md §10).
//  * kGreedyKeep — the legacy stability-first rule: existing connections are
//    kept in place and the matching is greedily completed over still-addable
//    alive edges (one O(m) heaviest-first sweep per event).
//  * kScratch — full from-scratch recomputation per event (the oracle run as
//    the operative engine; the baseline bench E20 measures against).
// An optional per-event oracle comparator (`ChurnOptions::oracle`) runs the
// from-scratch solve alongside any mode and fills ChurnEvent's
// recompute_weight/disruption fields; it is off by default so incremental
// runs don't silently pay an O(m) solve per event.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "matching/dynamic_bsuitor.hpp"
#include "matching/matching.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"
#include "util/rng.hpp"

namespace overmatch::obs {
class Registry;
}
namespace overmatch::util {
class ThreadPool;
}

namespace overmatch::overlay {

using graph::NodeId;

/// Which engine repairs the overlay after each churn event.
enum class ChurnMode : std::uint8_t {
  kIncremental,  ///< DynamicBSuitor localized repair (scratch-quality output)
  kGreedyKeep,   ///< keep existing connections, greedily complete (O(m) sweep)
  kScratch,      ///< from-scratch greedy recomputation per event (baseline)
};

[[nodiscard]] const char* churn_mode_name(ChurnMode m);
/// Aborts on an unknown name; CLI code should prefer try_churn_mode_by_name.
[[nodiscard]] ChurnMode churn_mode_by_name(const std::string& name);
/// nullopt on an unknown name (for callers that want to report, not abort).
[[nodiscard]] std::optional<ChurnMode> try_churn_mode_by_name(
    const std::string& name);
/// All valid mode names, '|'-separated (for CLI error messages).
[[nodiscard]] const char* churn_mode_names();

/// Arrival process for batched churn traffic (ChurnTraffic).
enum class ChurnArrival : std::uint8_t {
  kUniform,     ///< every burst has the same size
  kPoisson,     ///< burst sizes ~ Poisson(mean): independent arrivals
  kFlashCrowd,  ///< Poisson trickle punctuated by correlated mass spikes
};

[[nodiscard]] const char* churn_arrival_name(ChurnArrival a);
[[nodiscard]] std::optional<ChurnArrival> try_churn_arrival_by_name(
    const std::string& name);
/// All valid arrival names, '|'-separated (for CLI error messages).
[[nodiscard]] const char* churn_arrival_names();

/// Inherits the shared run context (core::RunContext): `registry` (optional,
/// caller-owned) receives the `churn.*` series (leaves/joins/edges_removed/
/// edges_added, the `churn.repair_added` histogram, `churn.disruption` when
/// the oracle runs, per-event kChurnLeave/kChurnJoin trace entries) and, in
/// incremental mode, the engine's `dyn.*` series; `pool` (optional,
/// caller-owned, caller participates) runs apply_batch's frontier cascades in
/// incremental mode (per-event repair and the other modes ignore it). `seed`,
/// `threads`, and `budget` are unused by the simulator itself — traffic
/// generators take their own seed.
struct ChurnOptions : core::RunContext {
  ChurnMode mode = ChurnMode::kIncremental;
  /// Run the from-scratch comparator after every event and fill
  /// ChurnEvent::{recompute_weight, disruption}. Costs a full O(m) greedy
  /// solve per event — leave off for latency benchmarks. Implied by
  /// ChurnMode::kScratch (where the recomputation *is* the engine).
  bool oracle = false;
};

struct ChurnEvent {
  bool join = false;  ///< false = leave
  NodeId node = 0;
  std::size_t edges_removed = 0;  ///< connections torn down by the event
  std::size_t edges_added = 0;    ///< connections (re)established by repair
  double incremental_weight = 0.0;
  /// From-scratch greedy weight on the alive subgraph; valid only when the
  /// oracle runs (ChurnOptions::oracle or ChurnMode::kScratch), else 0.
  double recompute_weight = 0.0;
  /// |engine △ from-scratch| edge sets; valid only when the oracle runs.
  std::size_t disruption = 0;
  double satisfaction_total = 0.0;  ///< Σ S_i over alive nodes
  std::uint64_t repair_ns = 0;      ///< wall-clock of this event's repair
};

/// Aggregate result of one batched application (ChurnSimulator::apply_batch).
struct ChurnBatchReport {
  std::size_t events = 0;         ///< raw events in the burst
  std::size_t coalesced = 0;      ///< events cancelled by net-effect dedup
  std::size_t edges_removed = 0;  ///< matched edges torn by the burst
  std::size_t edges_added = 0;    ///< matched edges (re)established by repair
  double incremental_weight = 0.0;
  double satisfaction_total = 0.0;  ///< Σ S_i over alive nodes
  std::uint64_t repair_ns = 0;      ///< wall-clock of the whole batch
  std::size_t workers = 1;          ///< repair threads (1 = sequential)
};

class ChurnSimulator {
 public:
  /// All profile/weight state references objects owned by the caller, which
  /// must outlive the simulator. Every node starts alive; the initial
  /// matching is the greedy (= LIC = b-Suitor) matching of the full graph.
  /// The initial build is not counted in the metric series.
  ChurnSimulator(const prefs::PreferenceProfile& profile,
                 const prefs::EdgeWeights& weights, ChurnOptions options = {});

  /// Takes node v offline: tears down its connections, repairs locally.
  ChurnEvent leave(NodeId v);

  /// Brings node v back online and repairs.
  ChurnEvent join(NodeId v);

  /// Applies a burst of events as one repair. In incremental mode this is
  /// DynamicBSuitor::apply_batch — coalesced, and frontier-parallel when
  /// ChurnOptions::pool is set — and the burst may contain edge events. The
  /// other modes have no batch path: node events replay through leave()/
  /// join() one by one (edge events abort), so results stay comparable
  /// across modes. Events must be valid in order (same rule as the
  /// per-event entry points).
  ChurnBatchReport apply_batch(std::span<const matching::ChurnEvent> events);

  [[nodiscard]] bool alive(NodeId v) const {
    OM_CHECK(v < alive_.size());
    return alive_[v] != 0;
  }
  [[nodiscard]] const matching::Matching& matching() const noexcept {
    return dyn_ != nullptr ? dyn_->matching() : m_;
  }
  [[nodiscard]] ChurnMode mode() const noexcept { return opts_.mode; }
  [[nodiscard]] double total_satisfaction_alive() const;

 private:
  /// Greedy completion over addable alive edges; returns edges added.
  std::size_t repair();
  [[nodiscard]] matching::Matching recompute_from_scratch() const;
  ChurnEvent finish_event(bool join, NodeId v, std::size_t removed,
                          std::size_t added, std::uint64_t repair_ns);
  void refresh_satisfaction(NodeId v);

  const prefs::PreferenceProfile* profile_;
  const prefs::EdgeWeights* w_;
  ChurnOptions opts_;
  std::vector<std::uint8_t> alive_;
  matching::Matching m_;  ///< kGreedyKeep / kScratch engine state
  std::unique_ptr<matching::DynamicBSuitor> dyn_;  ///< kIncremental engine
  /// Incrementally maintained Σ S_i over alive nodes (kIncremental only;
  /// updated from DynamicBSuitor::last_changed_nodes per event).
  std::vector<double> sat_;
  double sat_total_ = 0.0;
};

/// Deterministic churn-traffic generator for batched sessions: draws bursts
/// of sequentially-valid node leave/join events under an arrival process.
///
///  * kUniform — every burst has round(mean) events (at least 1);
///  * kPoisson — burst sizes ~ Poisson(mean), clamped to >= 1: the classic
///    independent-arrivals model;
///  * kFlashCrowd — a Poisson trickle at mean/2, punctuated every
///    kFlashPeriod-th burst by a correlated spike of ~4×mean events pushed
///    in one direction (mass leave when most peers are online, mass rejoin
///    when most are offline) — the "everyone piles in / the ISP dies"
///    pattern overlay papers worry about.
///
/// Outside spikes, ~15% of drawn events are immediately-reversed *flaps*
/// (leave then rejoin of the same node inside the burst) — the empirically
/// dominant churn pattern, and exactly what apply_batch's coalescing
/// eliminates. Everything is deterministic from the seed.
class ChurnTraffic {
 public:
  /// Every spike-period-th burst of flash-crowd traffic is a spike.
  static constexpr std::uint64_t kFlashPeriod = 8;

  ChurnTraffic(std::size_t num_nodes, ChurnArrival arrival, double mean_burst,
               std::uint64_t seed);

  /// The next burst; valid when applied in order starting from the all-alive
  /// state (the generator tracks the resulting alive set itself).
  [[nodiscard]] std::vector<matching::ChurnEvent> next_burst();

  [[nodiscard]] bool alive(NodeId v) const { return alive_[v] != 0; }
  [[nodiscard]] std::size_t online_count() const { return online_.size(); }

 private:
  [[nodiscard]] std::size_t poisson(double mean);
  /// Moves v between the online_/offline_ pools (swap-remove, O(1)).
  void move_node(NodeId v, bool to_online);
  [[nodiscard]] NodeId pick(const std::vector<NodeId>& pool);

  util::Rng rng_;
  ChurnArrival arrival_;
  double mean_;
  std::vector<std::uint8_t> alive_;
  std::vector<NodeId> online_;
  std::vector<NodeId> offline_;
  std::vector<std::uint32_t> pos_;  ///< index of v inside its current pool
  std::uint64_t burst_no_ = 0;
};

}  // namespace overmatch::overlay
