// Churn handling — the paper's stated future-work extension (joins/leaves).
//
// Model: a fixed *universe* of peers and potential edges; nodes go offline
// and come back. Three repair engines answer each event
// (`ChurnOptions::mode`):
//  * kIncremental (default) — the stateful matching::DynamicBSuitor: bidding
//    cascades re-run only from the event's frontier, O(affected degree ·
//    cascade length) per event, and the maintained matching equals the
//    from-scratch greedy (= LIC = b-Suitor) matching of the alive subgraph
//    after every event (DESIGN.md §10).
//  * kGreedyKeep — the legacy stability-first rule: existing connections are
//    kept in place and the matching is greedily completed over still-addable
//    alive edges (one O(m) heaviest-first sweep per event).
//  * kScratch — full from-scratch recomputation per event (the oracle run as
//    the operative engine; the baseline bench E20 measures against).
// An optional per-event oracle comparator (`ChurnOptions::oracle`) runs the
// from-scratch solve alongside any mode and fills ChurnEvent's
// recompute_weight/disruption fields; it is off by default so incremental
// runs don't silently pay an O(m) solve per event.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "matching/dynamic_bsuitor.hpp"
#include "matching/matching.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"

namespace overmatch::obs {
class Registry;
}

namespace overmatch::overlay {

using graph::NodeId;

/// Which engine repairs the overlay after each churn event.
enum class ChurnMode : std::uint8_t {
  kIncremental,  ///< DynamicBSuitor localized repair (scratch-quality output)
  kGreedyKeep,   ///< keep existing connections, greedily complete (O(m) sweep)
  kScratch,      ///< from-scratch greedy recomputation per event (baseline)
};

[[nodiscard]] const char* churn_mode_name(ChurnMode m);
[[nodiscard]] ChurnMode churn_mode_by_name(const std::string& name);

struct ChurnOptions {
  ChurnMode mode = ChurnMode::kIncremental;
  /// Run the from-scratch comparator after every event and fill
  /// ChurnEvent::{recompute_weight, disruption}. Costs a full O(m) greedy
  /// solve per event — leave off for latency benchmarks. Implied by
  /// ChurnMode::kScratch (where the recomputation *is* the engine).
  bool oracle = false;
  /// Optional caller-owned metrics registry: receives the `churn.*` series
  /// (leaves/joins/edges_removed/edges_added, the `churn.repair_added`
  /// histogram, `churn.disruption` when the oracle runs, per-event
  /// kChurnLeave/kChurnJoin trace entries) and, in incremental mode, the
  /// engine's `dyn.*` series.
  obs::Registry* registry = nullptr;
};

struct ChurnEvent {
  bool join = false;  ///< false = leave
  NodeId node = 0;
  std::size_t edges_removed = 0;  ///< connections torn down by the event
  std::size_t edges_added = 0;    ///< connections (re)established by repair
  double incremental_weight = 0.0;
  /// From-scratch greedy weight on the alive subgraph; valid only when the
  /// oracle runs (ChurnOptions::oracle or ChurnMode::kScratch), else 0.
  double recompute_weight = 0.0;
  /// |engine △ from-scratch| edge sets; valid only when the oracle runs.
  std::size_t disruption = 0;
  double satisfaction_total = 0.0;  ///< Σ S_i over alive nodes
  std::uint64_t repair_ns = 0;      ///< wall-clock of this event's repair
};

class ChurnSimulator {
 public:
  /// All profile/weight state references objects owned by the caller, which
  /// must outlive the simulator. Every node starts alive; the initial
  /// matching is the greedy (= LIC = b-Suitor) matching of the full graph.
  /// The initial build is not counted in the metric series.
  ChurnSimulator(const prefs::PreferenceProfile& profile,
                 const prefs::EdgeWeights& weights, ChurnOptions options = {});

  /// Takes node v offline: tears down its connections, repairs locally.
  ChurnEvent leave(NodeId v);

  /// Brings node v back online and repairs.
  ChurnEvent join(NodeId v);

  [[nodiscard]] bool alive(NodeId v) const {
    OM_CHECK(v < alive_.size());
    return alive_[v] != 0;
  }
  [[nodiscard]] const matching::Matching& matching() const noexcept {
    return dyn_ != nullptr ? dyn_->matching() : m_;
  }
  [[nodiscard]] ChurnMode mode() const noexcept { return opts_.mode; }
  [[nodiscard]] double total_satisfaction_alive() const;

 private:
  /// Greedy completion over addable alive edges; returns edges added.
  std::size_t repair();
  [[nodiscard]] matching::Matching recompute_from_scratch() const;
  ChurnEvent finish_event(bool join, NodeId v, std::size_t removed,
                          std::size_t added, std::uint64_t repair_ns);
  void refresh_satisfaction(NodeId v);

  const prefs::PreferenceProfile* profile_;
  const prefs::EdgeWeights* w_;
  ChurnOptions opts_;
  std::vector<std::uint8_t> alive_;
  matching::Matching m_;  ///< kGreedyKeep / kScratch engine state
  std::unique_ptr<matching::DynamicBSuitor> dyn_;  ///< kIncremental engine
  /// Incrementally maintained Σ S_i over alive nodes (kIncremental only;
  /// updated from DynamicBSuitor::last_changed_nodes per event).
  std::vector<double> sat_;
  double sat_total_ = 0.0;
};

}  // namespace overmatch::overlay
