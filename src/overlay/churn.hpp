// Churn handling — the paper's stated future-work extension (joins/leaves).
//
// Model: a fixed *universe* of peers and potential edges; nodes go offline
// and come back. On every event the overlay is repaired *incrementally* with
// the same greedy rule LID uses (locally heaviest first among still-addable
// alive edges), keeping existing connections in place. A from-scratch
// recomputation (what LIC would build on the alive subgraph) is maintained as
// a comparator so the incremental strategy's weight gap and the connection
// churn it avoids are both measurable (bench E11).
#pragma once

#include <vector>

#include "matching/matching.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"

namespace overmatch::obs {
class Registry;
}

namespace overmatch::overlay {

using graph::NodeId;

struct ChurnEvent {
  bool join = false;  ///< false = leave
  NodeId node = 0;
  std::size_t edges_removed = 0;  ///< connections torn down by the event
  std::size_t edges_added = 0;    ///< connections (re)established by repair
  double incremental_weight = 0.0;
  double recompute_weight = 0.0;   ///< LIC-from-scratch on the alive subgraph
  std::size_t disruption = 0;      ///< |incremental △ recompute| edge sets
  double satisfaction_total = 0.0; ///< Σ S_i over alive nodes (incremental)
};

class ChurnSimulator {
 public:
  /// All profile/weight state references objects owned by the caller, which
  /// must outlive the simulator. Every node starts alive; the initial
  /// matching is the greedy (= LIC) matching of the full graph.
  /// `registry` (optional, caller-owned) receives the repair/disruption
  /// series: `churn.leaves`/`churn.joins`/`churn.edges_removed`/
  /// `churn.edges_added`/`churn.disruption` counters, the
  /// `churn.repair_added` histogram, and per-event kChurnLeave/kChurnJoin
  /// trace entries. The initial full-graph build is not counted.
  ChurnSimulator(const prefs::PreferenceProfile& profile,
                 const prefs::EdgeWeights& weights,
                 obs::Registry* registry = nullptr);

  /// Takes node v offline: tears down its connections, repairs locally.
  ChurnEvent leave(NodeId v);

  /// Brings node v back online and repairs.
  ChurnEvent join(NodeId v);

  [[nodiscard]] bool alive(NodeId v) const {
    OM_CHECK(v < alive_.size());
    return alive_[v] != 0;
  }
  [[nodiscard]] const matching::Matching& matching() const noexcept { return m_; }
  [[nodiscard]] double total_satisfaction_alive() const;

 private:
  /// Greedy completion over addable alive edges; returns edges added.
  std::size_t repair();
  [[nodiscard]] matching::Matching recompute_from_scratch() const;
  ChurnEvent finish_event(bool join, NodeId v, std::size_t removed, std::size_t added);

  const prefs::PreferenceProfile* profile_;
  const prefs::EdgeWeights* w_;
  obs::Registry* registry_ = nullptr;
  std::vector<std::uint8_t> alive_;
  std::vector<graph::EdgeId> desc_order_;  ///< all edges, heaviest first
  matching::Matching m_;
};

}  // namespace overmatch::overlay
