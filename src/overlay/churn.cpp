#include "overlay/churn.hpp"

#include <chrono>
#include <cmath>

#include "obs/registry.hpp"
#include "prefs/satisfaction.hpp"
#include "util/thread_pool.hpp"

namespace overmatch::overlay {
namespace {

/// Fixed buckets for the per-event repair size: churn repairs are usually
/// small and local, so the low buckets carry the signal.
const std::vector<double> kRepairBuckets = {0, 1, 2, 4, 8, 16, 32, 64};

[[nodiscard]] std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

const char* churn_mode_name(ChurnMode m) {
  switch (m) {
    case ChurnMode::kIncremental: return "incremental";
    case ChurnMode::kGreedyKeep: return "greedy-keep";
    case ChurnMode::kScratch: return "scratch";
  }
  return "?";
}

std::optional<ChurnMode> try_churn_mode_by_name(const std::string& name) {
  for (const ChurnMode m : {ChurnMode::kIncremental, ChurnMode::kGreedyKeep,
                            ChurnMode::kScratch}) {
    if (name == churn_mode_name(m)) return m;
  }
  return std::nullopt;
}

const char* churn_mode_names() { return "incremental|greedy-keep|scratch"; }

ChurnMode churn_mode_by_name(const std::string& name) {
  const auto m = try_churn_mode_by_name(name);
  OM_CHECK_MSG(m.has_value(), "unknown churn mode name");
  return *m;
}

const char* churn_arrival_name(ChurnArrival a) {
  switch (a) {
    case ChurnArrival::kUniform: return "uniform";
    case ChurnArrival::kPoisson: return "poisson";
    case ChurnArrival::kFlashCrowd: return "flash-crowd";
  }
  return "?";
}

std::optional<ChurnArrival> try_churn_arrival_by_name(const std::string& name) {
  for (const ChurnArrival a : {ChurnArrival::kUniform, ChurnArrival::kPoisson,
                               ChurnArrival::kFlashCrowd}) {
    if (name == churn_arrival_name(a)) return a;
  }
  return std::nullopt;
}

const char* churn_arrival_names() { return "uniform|poisson|flash-crowd"; }

ChurnSimulator::ChurnSimulator(const prefs::PreferenceProfile& profile,
                               const prefs::EdgeWeights& weights,
                               ChurnOptions options)
    : profile_(&profile),
      w_(&weights),
      opts_(options),
      alive_(profile.graph().num_nodes(), 1),
      m_(profile.graph(), profile.quotas()) {
  if (opts_.mode == ChurnMode::kIncremental) {
    dyn_ = std::make_unique<matching::DynamicBSuitor>(weights, profile.quotas(),
                                                      opts_.registry);
    sat_.resize(profile.graph().num_nodes(), 0.0);
    for (NodeId v = 0; v < profile.graph().num_nodes(); ++v) {
      sat_[v] = prefs::satisfaction(profile, v, dyn_->matching().connections(v));
      sat_total_ += sat_[v];
    }
  } else {
    repair();  // initial build == LIC on the full graph
  }
}

std::size_t ChurnSimulator::repair() {
  const auto& g = profile_->graph();
  std::size_t added = 0;
  for (const graph::EdgeId e : w_->by_weight()) {
    const auto& [u, v] = g.edge(e);
    if (alive_[u] == 0 || alive_[v] == 0) continue;
    if (m_.can_add(e)) {
      m_.add(e);
      ++added;
    }
  }
  return added;
}

matching::Matching ChurnSimulator::recompute_from_scratch() const {
  const auto& g = profile_->graph();
  matching::Matching fresh(g, profile_->quotas());
  for (const graph::EdgeId e : w_->by_weight()) {
    const auto& [u, v] = g.edge(e);
    if (alive_[u] == 0 || alive_[v] == 0) continue;
    if (fresh.can_add(e)) fresh.add(e);
  }
  return fresh;
}

void ChurnSimulator::refresh_satisfaction(NodeId v) {
  const double fresh =
      alive_[v] != 0
          ? prefs::satisfaction(*profile_, v, matching().connections(v))
          : 0.0;
  sat_total_ += fresh - sat_[v];
  sat_[v] = fresh;
}

ChurnEvent ChurnSimulator::finish_event(bool join, NodeId v, std::size_t removed,
                                        std::size_t added,
                                        std::uint64_t repair_ns) {
  ChurnEvent ev;
  ev.join = join;
  ev.node = v;
  ev.edges_removed = removed;
  ev.edges_added = added;
  ev.repair_ns = repair_ns;
  const auto& engine = matching();
  ev.incremental_weight =
      dyn_ != nullptr ? dyn_->matched_weight() : engine.total_weight(*w_);
  const bool run_oracle = opts_.oracle || opts_.mode == ChurnMode::kScratch;
  if (run_oracle) {
    if (opts_.mode == ChurnMode::kScratch) {
      // The engine *is* the from-scratch solve: zero gap by construction.
      ev.recompute_weight = ev.incremental_weight;
      ev.disruption = 0;
    } else {
      const auto fresh = recompute_from_scratch();
      ev.recompute_weight = fresh.total_weight(*w_);
      std::size_t diff = 0;
      for (graph::EdgeId e = 0; e < profile_->graph().num_edges(); ++e) {
        if (engine.contains(e) != fresh.contains(e)) ++diff;
      }
      ev.disruption = diff;
    }
  }
  ev.satisfaction_total = total_satisfaction_alive();
  if (opts_.registry != nullptr) {
    obs::Registry& reg = *opts_.registry;
    reg.counter(join ? "churn.joins" : "churn.leaves").inc();
    reg.counter("churn.edges_removed").inc(removed);
    reg.counter("churn.edges_added").inc(added);
    if (run_oracle) reg.counter("churn.disruption").inc(ev.disruption);
    reg.histogram("churn.repair_added", kRepairBuckets)
        .observe(static_cast<double>(added));
    reg.trace(join ? obs::TraceKind::kChurnJoin : obs::TraceKind::kChurnLeave, v,
              static_cast<std::uint32_t>(added));
    reg.trace(obs::TraceKind::kRepairRound, v,
              static_cast<std::uint32_t>(ev.disruption));
  }
  return ev;
}

ChurnEvent ChurnSimulator::leave(NodeId v) {
  OM_CHECK_MSG(alive(v), "leave() of an offline node");
  const auto t0 = std::chrono::steady_clock::now();
  alive_[v] = 0;
  std::size_t removed = 0;
  std::size_t added = 0;
  switch (opts_.mode) {
    case ChurnMode::kIncremental: {
      dyn_->on_node_leave(v);
      const auto& st = dyn_->last_repair();
      removed = st.matched_removed;
      added = st.matched_added;
      for (const NodeId u : dyn_->last_changed_nodes()) refresh_satisfaction(u);
      refresh_satisfaction(v);  // even an unmatched leaver drops to 0
      break;
    }
    case ChurnMode::kGreedyKeep: {
      std::vector<NodeId> partners(m_.connections(v).begin(),
                                   m_.connections(v).end());
      for (const NodeId u : partners) {
        m_.remove(profile_->graph().find_edge(v, u));
      }
      removed = partners.size();
      added = repair();
      break;
    }
    case ChurnMode::kScratch: {
      auto fresh = recompute_from_scratch();
      for (const graph::EdgeId e : m_.edges()) {
        if (!fresh.contains(e)) ++removed;
      }
      for (const graph::EdgeId e : fresh.edges()) {
        if (!m_.contains(e)) ++added;
      }
      m_ = std::move(fresh);
      break;
    }
  }
  return finish_event(false, v, removed, added, elapsed_ns(t0));
}

ChurnEvent ChurnSimulator::join(NodeId v) {
  OM_CHECK_MSG(!alive(v), "join() of an online node");
  const auto t0 = std::chrono::steady_clock::now();
  alive_[v] = 1;
  std::size_t removed = 0;
  std::size_t added = 0;
  switch (opts_.mode) {
    case ChurnMode::kIncremental: {
      dyn_->on_node_join(v);
      const auto& st = dyn_->last_repair();
      removed = st.matched_removed;
      added = st.matched_added;
      for (const NodeId u : dyn_->last_changed_nodes()) refresh_satisfaction(u);
      refresh_satisfaction(v);
      break;
    }
    case ChurnMode::kGreedyKeep:
      added = repair();
      break;
    case ChurnMode::kScratch: {
      auto fresh = recompute_from_scratch();
      for (const graph::EdgeId e : m_.edges()) {
        if (!fresh.contains(e)) ++removed;
      }
      for (const graph::EdgeId e : fresh.edges()) {
        if (!m_.contains(e)) ++added;
      }
      m_ = std::move(fresh);
      break;
    }
  }
  return finish_event(true, v, removed, added, elapsed_ns(t0));
}

ChurnBatchReport ChurnSimulator::apply_batch(
    std::span<const matching::ChurnEvent> events) {
  const auto t0 = std::chrono::steady_clock::now();
  ChurnBatchReport rep;
  rep.events = events.size();
  if (opts_.mode == ChurnMode::kIncremental) {
    dyn_->apply_batch(events, opts_.pool);
    // Sync the simulator's alive view from the engine (net effects only;
    // a coalesced leave+rejoin lands back on its starting value).
    for (const matching::ChurnEvent& ev : events) {
      if (ev.is_node_event()) alive_[ev.u] = dyn_->alive(ev.u) ? 1 : 0;
    }
    const auto& st = dyn_->last_repair();
    const auto& bt = dyn_->last_batch();
    rep.edges_removed = st.matched_removed;
    rep.edges_added = st.matched_added;
    rep.coalesced = bt.coalesced;
    rep.workers = bt.workers;
    for (const NodeId u : dyn_->last_changed_nodes()) refresh_satisfaction(u);
    // Unmatched leavers/joiners still flip their own S_i term.
    for (const matching::ChurnEvent& ev : events) {
      if (ev.is_node_event()) refresh_satisfaction(ev.u);
    }
    rep.incremental_weight = dyn_->matched_weight();
    if (opts_.registry != nullptr) {
      obs::Registry& reg = *opts_.registry;
      reg.counter("churn.edges_removed").inc(rep.edges_removed);
      reg.counter("churn.edges_added").inc(rep.edges_added);
      reg.histogram("churn.repair_added", kRepairBuckets)
          .observe(static_cast<double>(rep.edges_added));
    }
  } else {
    // No batch path in the sweep-based modes: replay node events one by one
    // (each leave()/join() call does its own churn.* accounting).
    for (const matching::ChurnEvent& ev : events) {
      OM_CHECK_MSG(ev.is_node_event(),
                   "edge churn events require ChurnMode::kIncremental");
      const ChurnEvent done = ev.kind == matching::ChurnEvent::Kind::kJoin
                                  ? join(ev.u)
                                  : leave(ev.u);
      rep.edges_removed += done.edges_removed;
      rep.edges_added += done.edges_added;
    }
    rep.incremental_weight = m_.total_weight(*w_);
  }
  rep.satisfaction_total = total_satisfaction_alive();
  rep.repair_ns = elapsed_ns(t0);
  if (opts_.registry != nullptr) {
    obs::Registry& reg = *opts_.registry;
    reg.counter("churn.batches").inc();
    reg.counter("churn.batch_events").inc(rep.events);
    reg.counter("churn.batch_coalesced").inc(rep.coalesced);
  }
  return rep;
}

ChurnTraffic::ChurnTraffic(std::size_t num_nodes, ChurnArrival arrival,
                           double mean_burst, std::uint64_t seed)
    : rng_(seed),
      arrival_(arrival),
      mean_(mean_burst),
      alive_(num_nodes, 1),
      pos_(num_nodes, 0) {
  OM_CHECK_MSG(num_nodes >= 2, "churn traffic needs at least two nodes");
  OM_CHECK_MSG(mean_burst >= 1.0, "mean burst size must be >= 1");
  online_.reserve(num_nodes);
  for (NodeId v = 0; v < num_nodes; ++v) {
    online_.push_back(v);
    pos_[v] = v;
  }
}

std::size_t ChurnTraffic::poisson(double mean) {
  // Knuth's product-of-uniforms sampler; fine for the per-burst means used
  // here (a normal approximation takes over for large means).
  if (mean > 64.0) {
    const double x = mean + std::sqrt(mean) * rng_.normal();
    return x < 1.0 ? 1 : static_cast<std::size_t>(std::llround(x));
  }
  const double limit = std::exp(-mean);
  std::size_t k = 0;
  double p = 1.0;
  do {
    ++k;
    p *= rng_.uniform();
  } while (p > limit);
  return k - 1;
}

void ChurnTraffic::move_node(NodeId v, bool to_online) {
  std::vector<NodeId>& from = to_online ? offline_ : online_;
  std::vector<NodeId>& to = to_online ? online_ : offline_;
  const std::uint32_t i = pos_[v];
  OM_CHECK(from[i] == v);
  from[i] = from.back();
  pos_[from[i]] = i;
  from.pop_back();
  pos_[v] = static_cast<std::uint32_t>(to.size());
  to.push_back(v);
  alive_[v] = to_online ? 1 : 0;
}

NodeId ChurnTraffic::pick(const std::vector<NodeId>& pool) {
  return pool[rng_.index(pool.size())];
}

std::vector<matching::ChurnEvent> ChurnTraffic::next_burst() {
  using matching::ChurnEvent;
  const bool spike = arrival_ == ChurnArrival::kFlashCrowd &&
                     burst_no_ % kFlashPeriod == kFlashPeriod - 1;
  std::size_t target = 1;
  switch (arrival_) {
    case ChurnArrival::kUniform:
      target = static_cast<std::size_t>(std::llround(mean_));
      break;
    case ChurnArrival::kPoisson:
      target = poisson(mean_);
      break;
    case ChurnArrival::kFlashCrowd:
      target = spike ? static_cast<std::size_t>(std::llround(mean_ * 4.0))
                     : poisson(mean_ * 0.5);
      break;
  }
  if (target < 1) target = 1;
  ++burst_no_;
  // A spike pushes in one correlated direction: mass leave while most peers
  // are online, mass rejoin while most are offline.
  const bool spike_join = offline_.size() > alive_.size() / 2;
  std::vector<ChurnEvent> out;
  out.reserve(target + target / 4);
  while (out.size() < target) {
    bool join = spike ? spike_join : rng_.chance(0.5);
    // Never drain a pool completely (events must stay valid in order).
    if (join && offline_.empty()) join = false;
    if (!join && online_.size() <= 1) join = true;
    if (join && offline_.empty()) break;  // everything online, can't join
    const NodeId v = pick(join ? offline_ : online_);
    out.push_back(join ? ChurnEvent::join(v) : ChurnEvent::leave(v));
    move_node(v, join);
    if (!spike && rng_.chance(0.15)) {
      // Flap: immediately reverse — the coalescing fodder.
      out.push_back(join ? ChurnEvent::leave(v) : ChurnEvent::join(v));
      move_node(v, !join);
    }
  }
  return out;
}

double ChurnSimulator::total_satisfaction_alive() const {
  if (dyn_ != nullptr) return sat_total_;
  double total = 0.0;
  for (NodeId v = 0; v < alive_.size(); ++v) {
    if (alive_[v] == 0) continue;
    total += prefs::satisfaction(*profile_, v, m_.connections(v));
  }
  return total;
}

}  // namespace overmatch::overlay
