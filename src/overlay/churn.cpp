#include "overlay/churn.hpp"

#include <chrono>

#include "obs/registry.hpp"
#include "prefs/satisfaction.hpp"

namespace overmatch::overlay {
namespace {

/// Fixed buckets for the per-event repair size: churn repairs are usually
/// small and local, so the low buckets carry the signal.
const std::vector<double> kRepairBuckets = {0, 1, 2, 4, 8, 16, 32, 64};

[[nodiscard]] std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

}  // namespace

const char* churn_mode_name(ChurnMode m) {
  switch (m) {
    case ChurnMode::kIncremental: return "incremental";
    case ChurnMode::kGreedyKeep: return "greedy-keep";
    case ChurnMode::kScratch: return "scratch";
  }
  return "?";
}

ChurnMode churn_mode_by_name(const std::string& name) {
  for (const ChurnMode m : {ChurnMode::kIncremental, ChurnMode::kGreedyKeep,
                            ChurnMode::kScratch}) {
    if (name == churn_mode_name(m)) return m;
  }
  OM_CHECK_MSG(false, "unknown churn mode name");
  return ChurnMode::kIncremental;
}

ChurnSimulator::ChurnSimulator(const prefs::PreferenceProfile& profile,
                               const prefs::EdgeWeights& weights,
                               ChurnOptions options)
    : profile_(&profile),
      w_(&weights),
      opts_(options),
      alive_(profile.graph().num_nodes(), 1),
      m_(profile.graph(), profile.quotas()) {
  if (opts_.mode == ChurnMode::kIncremental) {
    dyn_ = std::make_unique<matching::DynamicBSuitor>(weights, profile.quotas(),
                                                      opts_.registry);
    sat_.resize(profile.graph().num_nodes(), 0.0);
    for (NodeId v = 0; v < profile.graph().num_nodes(); ++v) {
      sat_[v] = prefs::satisfaction(profile, v, dyn_->matching().connections(v));
      sat_total_ += sat_[v];
    }
  } else {
    repair();  // initial build == LIC on the full graph
  }
}

std::size_t ChurnSimulator::repair() {
  const auto& g = profile_->graph();
  std::size_t added = 0;
  for (const graph::EdgeId e : w_->by_weight()) {
    const auto& [u, v] = g.edge(e);
    if (alive_[u] == 0 || alive_[v] == 0) continue;
    if (m_.can_add(e)) {
      m_.add(e);
      ++added;
    }
  }
  return added;
}

matching::Matching ChurnSimulator::recompute_from_scratch() const {
  const auto& g = profile_->graph();
  matching::Matching fresh(g, profile_->quotas());
  for (const graph::EdgeId e : w_->by_weight()) {
    const auto& [u, v] = g.edge(e);
    if (alive_[u] == 0 || alive_[v] == 0) continue;
    if (fresh.can_add(e)) fresh.add(e);
  }
  return fresh;
}

void ChurnSimulator::refresh_satisfaction(NodeId v) {
  const double fresh =
      alive_[v] != 0
          ? prefs::satisfaction(*profile_, v, matching().connections(v))
          : 0.0;
  sat_total_ += fresh - sat_[v];
  sat_[v] = fresh;
}

ChurnEvent ChurnSimulator::finish_event(bool join, NodeId v, std::size_t removed,
                                        std::size_t added,
                                        std::uint64_t repair_ns) {
  ChurnEvent ev;
  ev.join = join;
  ev.node = v;
  ev.edges_removed = removed;
  ev.edges_added = added;
  ev.repair_ns = repair_ns;
  const auto& engine = matching();
  ev.incremental_weight =
      dyn_ != nullptr ? dyn_->matched_weight() : engine.total_weight(*w_);
  const bool run_oracle = opts_.oracle || opts_.mode == ChurnMode::kScratch;
  if (run_oracle) {
    if (opts_.mode == ChurnMode::kScratch) {
      // The engine *is* the from-scratch solve: zero gap by construction.
      ev.recompute_weight = ev.incremental_weight;
      ev.disruption = 0;
    } else {
      const auto fresh = recompute_from_scratch();
      ev.recompute_weight = fresh.total_weight(*w_);
      std::size_t diff = 0;
      for (graph::EdgeId e = 0; e < profile_->graph().num_edges(); ++e) {
        if (engine.contains(e) != fresh.contains(e)) ++diff;
      }
      ev.disruption = diff;
    }
  }
  ev.satisfaction_total = total_satisfaction_alive();
  if (opts_.registry != nullptr) {
    obs::Registry& reg = *opts_.registry;
    reg.counter(join ? "churn.joins" : "churn.leaves").inc();
    reg.counter("churn.edges_removed").inc(removed);
    reg.counter("churn.edges_added").inc(added);
    if (run_oracle) reg.counter("churn.disruption").inc(ev.disruption);
    reg.histogram("churn.repair_added", kRepairBuckets)
        .observe(static_cast<double>(added));
    reg.trace(join ? obs::TraceKind::kChurnJoin : obs::TraceKind::kChurnLeave, v,
              static_cast<std::uint32_t>(added));
    reg.trace(obs::TraceKind::kRepairRound, v,
              static_cast<std::uint32_t>(ev.disruption));
  }
  return ev;
}

ChurnEvent ChurnSimulator::leave(NodeId v) {
  OM_CHECK_MSG(alive(v), "leave() of an offline node");
  const auto t0 = std::chrono::steady_clock::now();
  alive_[v] = 0;
  std::size_t removed = 0;
  std::size_t added = 0;
  switch (opts_.mode) {
    case ChurnMode::kIncremental: {
      dyn_->on_node_leave(v);
      const auto& st = dyn_->last_repair();
      removed = st.matched_removed;
      added = st.matched_added;
      for (const NodeId u : dyn_->last_changed_nodes()) refresh_satisfaction(u);
      refresh_satisfaction(v);  // even an unmatched leaver drops to 0
      break;
    }
    case ChurnMode::kGreedyKeep: {
      std::vector<NodeId> partners(m_.connections(v).begin(),
                                   m_.connections(v).end());
      for (const NodeId u : partners) {
        m_.remove(profile_->graph().find_edge(v, u));
      }
      removed = partners.size();
      added = repair();
      break;
    }
    case ChurnMode::kScratch: {
      auto fresh = recompute_from_scratch();
      for (const graph::EdgeId e : m_.edges()) {
        if (!fresh.contains(e)) ++removed;
      }
      for (const graph::EdgeId e : fresh.edges()) {
        if (!m_.contains(e)) ++added;
      }
      m_ = std::move(fresh);
      break;
    }
  }
  return finish_event(false, v, removed, added, elapsed_ns(t0));
}

ChurnEvent ChurnSimulator::join(NodeId v) {
  OM_CHECK_MSG(!alive(v), "join() of an online node");
  const auto t0 = std::chrono::steady_clock::now();
  alive_[v] = 1;
  std::size_t removed = 0;
  std::size_t added = 0;
  switch (opts_.mode) {
    case ChurnMode::kIncremental: {
      dyn_->on_node_join(v);
      const auto& st = dyn_->last_repair();
      removed = st.matched_removed;
      added = st.matched_added;
      for (const NodeId u : dyn_->last_changed_nodes()) refresh_satisfaction(u);
      refresh_satisfaction(v);
      break;
    }
    case ChurnMode::kGreedyKeep:
      added = repair();
      break;
    case ChurnMode::kScratch: {
      auto fresh = recompute_from_scratch();
      for (const graph::EdgeId e : m_.edges()) {
        if (!fresh.contains(e)) ++removed;
      }
      for (const graph::EdgeId e : fresh.edges()) {
        if (!m_.contains(e)) ++added;
      }
      m_ = std::move(fresh);
      break;
    }
  }
  return finish_event(true, v, removed, added, elapsed_ns(t0));
}

double ChurnSimulator::total_satisfaction_alive() const {
  if (dyn_ != nullptr) return sat_total_;
  double total = 0.0;
  for (NodeId v = 0; v < alive_.size(); ++v) {
    if (alive_[v] == 0) continue;
    total += prefs::satisfaction(*profile_, v, m_.connections(v));
  }
  return total;
}

}  // namespace overmatch::overlay
