#include "overlay/churn.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "prefs/satisfaction.hpp"

namespace overmatch::overlay {
namespace {

/// Fixed buckets for the per-event repair size: churn repairs are usually
/// small and local, so the low buckets carry the signal.
const std::vector<double> kRepairBuckets = {0, 1, 2, 4, 8, 16, 32, 64};

}  // namespace

ChurnSimulator::ChurnSimulator(const prefs::PreferenceProfile& profile,
                               const prefs::EdgeWeights& weights,
                               obs::Registry* registry)
    : profile_(&profile),
      w_(&weights),
      registry_(registry),
      alive_(profile.graph().num_nodes(), 1),
      m_(profile.graph(), profile.quotas()) {
  const auto& g = profile.graph();
  desc_order_.resize(g.num_edges());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) desc_order_[e] = e;
  std::sort(desc_order_.begin(), desc_order_.end(),
            [this](graph::EdgeId a, graph::EdgeId b) { return w_->heavier(a, b); });
  repair();  // initial build == LIC on the full graph
}

std::size_t ChurnSimulator::repair() {
  const auto& g = profile_->graph();
  std::size_t added = 0;
  for (const graph::EdgeId e : desc_order_) {
    const auto& [u, v] = g.edge(e);
    if (alive_[u] == 0 || alive_[v] == 0) continue;
    if (m_.can_add(e)) {
      m_.add(e);
      ++added;
    }
  }
  return added;
}

matching::Matching ChurnSimulator::recompute_from_scratch() const {
  const auto& g = profile_->graph();
  matching::Matching fresh(g, profile_->quotas());
  for (const graph::EdgeId e : desc_order_) {
    const auto& [u, v] = g.edge(e);
    if (alive_[u] == 0 || alive_[v] == 0) continue;
    if (fresh.can_add(e)) fresh.add(e);
  }
  return fresh;
}

ChurnEvent ChurnSimulator::finish_event(bool join, NodeId v, std::size_t removed,
                                        std::size_t added) {
  ChurnEvent ev;
  ev.join = join;
  ev.node = v;
  ev.edges_removed = removed;
  ev.edges_added = added;
  ev.incremental_weight = m_.total_weight(*w_);
  const auto fresh = recompute_from_scratch();
  ev.recompute_weight = fresh.total_weight(*w_);
  // Symmetric difference between the incremental and from-scratch edge sets.
  std::size_t diff = 0;
  for (graph::EdgeId e = 0; e < profile_->graph().num_edges(); ++e) {
    if (m_.contains(e) != fresh.contains(e)) ++diff;
  }
  ev.disruption = diff;
  ev.satisfaction_total = total_satisfaction_alive();
  if (registry_ != nullptr) {
    obs::Registry& reg = *registry_;
    reg.counter(join ? "churn.joins" : "churn.leaves").inc();
    reg.counter("churn.edges_removed").inc(removed);
    reg.counter("churn.edges_added").inc(added);
    reg.counter("churn.disruption").inc(diff);
    reg.histogram("churn.repair_added", kRepairBuckets)
        .observe(static_cast<double>(added));
    reg.trace(join ? obs::TraceKind::kChurnJoin : obs::TraceKind::kChurnLeave, v,
              static_cast<std::uint32_t>(added));
    reg.trace(obs::TraceKind::kRepairRound, v,
              static_cast<std::uint32_t>(diff));
  }
  return ev;
}

ChurnEvent ChurnSimulator::leave(NodeId v) {
  OM_CHECK_MSG(alive(v), "leave() of an offline node");
  alive_[v] = 0;
  // Tear down v's connections.
  std::vector<NodeId> partners(m_.connections(v).begin(), m_.connections(v).end());
  for (const NodeId u : partners) {
    m_.remove(profile_->graph().find_edge(v, u));
  }
  const std::size_t added = repair();
  return finish_event(false, v, partners.size(), added);
}

ChurnEvent ChurnSimulator::join(NodeId v) {
  OM_CHECK_MSG(!alive(v), "join() of an online node");
  alive_[v] = 1;
  const std::size_t added = repair();
  return finish_event(true, v, 0, added);
}

double ChurnSimulator::total_satisfaction_alive() const {
  double total = 0.0;
  for (NodeId v = 0; v < alive_.size(); ++v) {
    if (alive_[v] == 0) continue;
    total += prefs::satisfaction(*profile_, v, m_.connections(v));
  }
  return total;
}

}  // namespace overmatch::overlay
