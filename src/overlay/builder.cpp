#include "overlay/builder.hpp"

namespace overmatch::overlay {

Overlay::Overlay(graph::Graph potential_graph, const Population& pop,
                 const std::vector<Metric>& metrics, const BuildOptions& options)
    // Members initialize in declaration order, so each may reference the ones
    // before it (profile/weights/matching all point into potential_).
    : potential_(std::move(potential_graph)),
      profile_(build_profile(potential_, pop, metrics,
                             prefs::uniform_quotas(potential_, options.quota))),
      weights_(prefs::paper_weights(profile_)),
      matching_(potential_, profile_.quotas()) {
  matching::LidOptions lid_options;
  lid_options.schedule = options.schedule;
  lid_options.seed = options.seed;
  auto result = matching::run_lid(weights_, profile_.quotas(), lid_options);
  matching_ = std::move(result.matching);
  stats_ = result.stats;
}

std::unique_ptr<Overlay> build_overlay(graph::Graph potential, const Population& pop,
                                       const std::vector<Metric>& metrics,
                                       const BuildOptions& options) {
  return std::make_unique<Overlay>(std::move(potential), pop, metrics, options);
}

graph::Graph matched_subgraph(const matching::Matching& m) {
  const auto& g = m.graph();
  graph::GraphBuilder b(g.num_nodes());
  for (const graph::EdgeId e : m.edges()) {
    const auto& edge = g.edge(e);
    b.add_edge(edge.u, edge.v);
  }
  return std::move(b).build();
}

}  // namespace overmatch::overlay
