// Peer attributes — the raw material individual suitability metrics are
// computed from (the paper's motivating examples: distance, interests,
// recommendations/trust, transaction history, available resources).
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace overmatch::overlay {

using graph::NodeId;

/// One peer's attributes.
struct Peer {
  double x = 0.0;  ///< position on the unit square (network proximity proxy)
  double y = 0.0;
  std::vector<double> interests;  ///< unit-norm interest embedding
  double bandwidth = 0.0;         ///< available upload capacity (Mbit/s scale)
  double uptime = 0.0;            ///< fraction of time online, (0, 1]
};

/// A population of peers plus a symmetric pairwise transaction-history score
/// (how much two peers have successfully exchanged before).
class Population {
 public:
  /// Generates n peers with `interest_dims`-dimensional unit interest vectors,
  /// log-normal-ish bandwidths and uniform uptimes, plus a sparse symmetric
  /// transaction history.
  static Population random(std::size_t n, std::size_t interest_dims, util::Rng& rng);

  [[nodiscard]] std::size_t size() const noexcept { return peers_.size(); }
  [[nodiscard]] const Peer& peer(NodeId v) const {
    OM_CHECK(v < peers_.size());
    return peers_[v];
  }

  /// Symmetric transaction score in [0, 1]; 0 when no history.
  [[nodiscard]] double transactions(NodeId a, NodeId b) const;
  void set_transactions(NodeId a, NodeId b, double value);

 private:
  std::vector<Peer> peers_;
  // Dense symmetric matrix (row-major, upper triangle mirrored); populations
  // used in experiments are small enough that density is simpler and faster
  // than hashing.
  std::vector<double> tx_;
  [[nodiscard]] std::size_t tx_index(NodeId a, NodeId b) const noexcept {
    return static_cast<std::size_t>(a) * peers_.size() + b;
  }
};

}  // namespace overmatch::overlay
