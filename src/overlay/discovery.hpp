// Gossip-based peer discovery (peer-sampling service).
//
// The paper assumes every peer already *knows* a set of potential neighbours
// ("peers are able to know part of the overlay"). This substrate produces
// that knowledge the way deployed overlays do: starting from a few bootstrap
// contacts, peers run push-pull gossip rounds over the asynchronous
// simulator — each round a peer asks a random acquaintance for a sample of
// its view and merges the answer into its own bounded view.
//
// The discovered views induce the candidate graph the matching layer then
// runs on; bench E16 measures how overlay quality grows with gossip rounds
// toward the full-knowledge baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "sim/agent.hpp"
#include "util/rng.hpp"

namespace overmatch::overlay {

struct DiscoveryOptions {
  std::size_t bootstrap_contacts = 3;  ///< initial random acquaintances per peer
  std::size_t view_size = 12;          ///< bounded partial view per peer
  std::size_t rounds = 5;              ///< gossip rounds per peer
  std::size_t gossip_sample = 4;       ///< ids shared per exchange
  std::uint64_t seed = 1;
};

struct DiscoveryResult {
  graph::Graph candidates;  ///< union of discovered views (undirected)
  sim::MessageStats stats;  ///< gossip traffic
};

/// Runs the peer-sampling protocol among `n` peers and returns the candidate
/// graph (u—v iff either learned of the other). Deterministic per options.
[[nodiscard]] DiscoveryResult discover_candidates(std::size_t n,
                                                  const DiscoveryOptions& options);

}  // namespace overmatch::overlay
