#include "overlay/quality.hpp"

#include <sstream>

#include "graph/properties.hpp"
#include "matching/metrics.hpp"
#include "util/stats.hpp"

namespace overmatch::overlay {

QualityReport analyze(const Overlay& overlay) {
  QualityReport r;
  const auto sats = matching::node_satisfactions(overlay.profile(), overlay.matching());
  util::StreamingStats ss;
  for (const double s : sats) ss.add(s);
  r.satisfaction_total = ss.sum();
  r.satisfaction_mean = ss.mean();
  r.satisfaction_min = ss.min();
  r.satisfaction_p10 = util::percentile(sats, 10.0);

  std::size_t total_quota = 0;
  std::size_t total_load = 0;
  const auto& m = overlay.matching();
  for (graph::NodeId v = 0; v < m.graph().num_nodes(); ++v) {
    total_quota += m.quota(v);
    total_load += m.load(v);
  }
  r.quota_utilization =
      total_quota > 0 ? static_cast<double>(total_load) / static_cast<double>(total_quota)
                      : 0.0;
  r.connections = m.size();

  const auto sub = matched_subgraph(m);
  r.components = graph::connected_components(sub).count;
  r.clustering = graph::clustering_coefficient(sub);
  r.mean_path_length = graph::mean_path_length(sub, 64, /*seed=*/7);
  r.messages = overlay.stats().total_sent;
  return r;
}

std::string to_string(const QualityReport& r) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(4);
  os << "satisfaction: total=" << r.satisfaction_total << " mean=" << r.satisfaction_mean
     << " min=" << r.satisfaction_min << " p10=" << r.satisfaction_p10
     << "\nconnections: " << r.connections
     << " (quota utilization " << r.quota_utilization << ")"
     << "\nstructure: components=" << r.components << " clustering=" << r.clustering
     << " mean_path=" << r.mean_path_length << "\nmessages: " << r.messages;
  return os.str();
}

}  // namespace overmatch::overlay
