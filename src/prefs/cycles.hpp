// Preference-cycle detection (the destabilizing structure of Lemma 5 and of
// Gai et al.'s acyclic-preference condition).
//
// A *rank cycle* is a node sequence n_0, …, n_{k−1} (k ≥ 3) where every n_i
// strictly prefers n_{i+1} over n_{i−1} (indices mod k) according to its raw
// preference list. With raw ranks such cycles can exist (and make best-reply
// dynamics oscillate); with the symmetric eq.-9 weights they provably cannot
// (paper Lemma 5) — both facts are exercised in tests and benches.
#pragma once

#include <optional>
#include <vector>

#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"

namespace overmatch::prefs {

/// Searches for a rank cycle under the *raw preference lists*. Exhaustive DFS
/// over (prev, cur) states — O(Σ deg²) states, fine for experiment-scale
/// graphs. Returns the cycle's node sequence, or nullopt.
[[nodiscard]] std::optional<std::vector<NodeId>> find_rank_cycle(
    const PreferenceProfile& p);

/// Same search but ordering neighbours by the symmetric edge-weight order
/// instead of raw ranks. By Lemma 5 this must always return nullopt; kept as
/// an executable witness of the lemma.
[[nodiscard]] std::optional<std::vector<NodeId>> find_weight_cycle(
    const EdgeWeights& w);

}  // namespace overmatch::prefs
