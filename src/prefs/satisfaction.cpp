#include "prefs/satisfaction.hpp"

namespace overmatch::prefs {
namespace {

/// Shared validation + rank sum for the closed-form satisfaction formulas.
struct ConnStats {
  double c;      // number of connections
  double b;      // quota
  double L;      // list length
  double sum_r;  // Σ R_i(j)
};

ConnStats conn_stats(const PreferenceProfile& p, NodeId i,
                     std::span<const NodeId> connections) {
  const auto b = p.quota(i);
  const auto L = p.list_size(i);
  OM_CHECK_MSG(connections.size() <= b, "more connections than quota");
  double sum_r = 0.0;
  for (std::size_t a = 0; a < connections.size(); ++a) {
    for (std::size_t bb = a + 1; bb < connections.size(); ++bb) {
      OM_CHECK_MSG(connections[a] != connections[bb], "duplicate connection");
    }
    sum_r += static_cast<double>(p.rank(i, connections[a]));
  }
  return ConnStats{static_cast<double>(connections.size()), static_cast<double>(b),
                   static_cast<double>(L), sum_r};
}

}  // namespace

double satisfaction(const PreferenceProfile& p, NodeId i,
                    std::span<const NodeId> connections) {
  const auto s = conn_stats(p, i, connections);
  if (s.c == 0.0) return 0.0;
  // eq. 1; L > 0 is guaranteed because i has at least one connection.
  return s.c / s.b + s.c * (s.c - 1.0) / (2.0 * s.b * s.L) - s.sum_r / (s.b * s.L);
}

double satisfaction_modified(const PreferenceProfile& p, NodeId i,
                             std::span<const NodeId> connections) {
  const auto s = conn_stats(p, i, connections);
  if (s.c == 0.0) return 0.0;
  return s.c / s.b - s.sum_r / (s.b * s.L);  // eq. 6
}

double delta_s(const PreferenceProfile& p, NodeId i, NodeId j, std::uint32_t c_before) {
  OM_CHECK(c_before < p.quota(i));
  return delta_s_static(p, i, j) + delta_s_dynamic(p, i, c_before);
}

double delta_s_static(const PreferenceProfile& p, NodeId i, NodeId j) {
  // p.rank aborts if j ∉ Γ_i, so L > 0.
  return delta_s_static_at(p.rank(i, j), p.list_size(i), p.quota(i));
}

double delta_s_dynamic(const PreferenceProfile& p, NodeId i, std::uint32_t c_before) {
  const auto b = static_cast<double>(p.quota(i));
  const auto L = static_cast<double>(p.list_size(i));
  OM_CHECK(L > 0.0);
  return static_cast<double>(c_before) / (b * L);
}

SatisfactionParts satisfaction_parts(const PreferenceProfile& p, NodeId i,
                                     std::span<const NodeId> connections) {
  SatisfactionParts out;
  for (const NodeId j : connections) out.static_part += delta_s_static(p, i, j);
  // Σ_{q=0}^{c-1} q / (bL) = c(c−1) / (2bL)
  const auto c = static_cast<double>(connections.size());
  if (c > 0) {
    const auto b = static_cast<double>(p.quota(i));
    const auto L = static_cast<double>(p.list_size(i));
    out.dynamic_part = c * (c - 1.0) / (2.0 * b * L);
  }
  return out;
}

}  // namespace overmatch::prefs
