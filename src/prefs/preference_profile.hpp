// Preference lists, ranks and quotas — the paper's problem model (§2).
//
// Every node i of an overlay graph G keeps a full preference list L_i over its
// neighbourhood Γ_i. R_i(j) ∈ {0, …, |L_i|−1} is j's rank in i's list (0 =
// most desirable) and b_i ≤ |L_i| is i's connection quota. Lists are private
// in the protocol sense: algorithms only ever exchange the derived ΔS̄ values
// (see weights.hpp), never the lists themselves.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace overmatch::util {
class ThreadPool;
}

namespace overmatch::prefs {

using graph::Graph;
using graph::NodeId;

/// Rank value; 0 is the most preferred neighbour.
using Rank = std::uint32_t;

/// Per-node connection quotas b_i.
using Quotas = std::vector<std::uint32_t>;

/// Builds a uniform quota vector b_i = min(b, deg(i)) — the paper's
/// "we can easily take b_i = |L_i|" clamping.
[[nodiscard]] Quotas uniform_quotas(const Graph& g, std::uint32_t b);

/// Random quotas uniform in [1, b_max], clamped to the degree (min 1 so that
/// isolated-node handling stays well-defined; a degree-0 node keeps quota 1
/// but trivially never connects).
[[nodiscard]] Quotas random_quotas(const Graph& g, std::uint32_t b_max, util::Rng& rng);

/// Immutable preference profile: one full, strictly ordered preference list
/// per node plus quotas. Construction validates that every list is a
/// permutation of the node's neighbourhood and quotas are clamped to list
/// lengths.
class PreferenceProfile {
 public:
  /// Score-based construction: node i ranks neighbour j by descending
  /// score(i, j); ties are broken by ascending node id so lists are strict.
  /// This models a peer's private suitability metric (distance, interests,
  /// trust, bandwidth, …). With a pool the per-node rank sorts and the rank
  /// index build run in parallel — `score` is then called concurrently and
  /// must be thread-safe (pure functions are). The profile is identical for
  /// every pool size including none.
  [[nodiscard]] static PreferenceProfile from_scores(
      const Graph& g, Quotas quotas,
      const std::function<double(NodeId, NodeId)>& score,
      util::ThreadPool* pool = nullptr);

  /// Uniformly random strict lists (independent per node). The shuffles
  /// consume one sequential Rng stream and always run single-threaded; a
  /// pool only parallelizes the rank-index construction, so the lists are
  /// identical for every pool size.
  [[nodiscard]] static PreferenceProfile random(const Graph& g, Quotas quotas,
                                                util::Rng& rng,
                                                util::ThreadPool* pool = nullptr);

  /// Explicit lists (tests / tiny examples). lists[i] must be a permutation of
  /// Γ_i, best first.
  [[nodiscard]] static PreferenceProfile from_lists(
      const Graph& g, Quotas quotas, std::vector<std::vector<NodeId>> lists,
      util::ThreadPool* pool = nullptr);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }

  /// Quota b_i (already clamped to |L_i| where |L_i| > 0).
  [[nodiscard]] std::uint32_t quota(NodeId i) const {
    OM_CHECK(i < quotas_.size());
    return quotas_[i];
  }
  [[nodiscard]] const Quotas& quotas() const noexcept { return quotas_; }
  [[nodiscard]] std::uint32_t max_quota() const noexcept;

  /// |L_i| — the preference list length (= deg(i); full lists).
  [[nodiscard]] std::size_t list_size(NodeId i) const { return graph_->degree(i); }

  /// The list itself, best neighbour first.
  [[nodiscard]] std::span<const NodeId> list(NodeId i) const {
    OM_CHECK(i < lists_.size());
    return lists_[i];
  }

  /// R_i(j). Aborts unless j ∈ Γ_i.
  [[nodiscard]] Rank rank(NodeId i, NodeId j) const;

  /// Ranks aligned with the graph adjacency: ranks_by_adjacency(i)[k] is
  /// R_i(neighbors(i)[k].neighbor). Lets construction sweeps read every rank
  /// in O(1) instead of re-running rank()'s binary search per edge.
  [[nodiscard]] std::span<const Rank> ranks_by_adjacency(NodeId i) const {
    OM_CHECK(i < ranks_by_adj_.size());
    return ranks_by_adj_[i];
  }

  /// True if i strictly prefers a over b (both must be neighbours of i).
  [[nodiscard]] bool prefers(NodeId i, NodeId a, NodeId b) const {
    return rank(i, a) < rank(i, b);
  }

 private:
  PreferenceProfile(const Graph& g, Quotas quotas,
                    std::vector<std::vector<NodeId>> lists,
                    util::ThreadPool* pool = nullptr);

  const Graph* graph_ = nullptr;
  Quotas quotas_;
  std::vector<std::vector<NodeId>> lists_;
  // ranks_by_adj_[i][k] = R_i(adjacency(i)[k].neighbor); adjacency is sorted
  // by neighbour id, so rank lookup is a binary search + array read.
  std::vector<std::vector<Rank>> ranks_by_adj_;
};

}  // namespace overmatch::prefs
