#include "prefs/weights.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>

#include "prefs/satisfaction.hpp"
#include "util/parallel_sort.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace overmatch::prefs {
namespace {

/// Monotone map from a weight to a u64 that sorts ascending exactly when the
/// weight sorts *descending* (the heavier order's primary key). −0.0 is
/// collapsed to +0.0 first so exact-zero ties still fall through to the
/// endpoint tie-break, like the sequential `!=`/`>` comparator. NaN has no
/// place in a total order; construction rejects it.
std::uint64_t descending_weight_bits(double w) {
  OM_CHECK_MSG(!std::isnan(w), "edge weights must not be NaN");
  if (w == 0.0) w = 0.0;  // collapse -0.0 onto +0.0
  auto b = std::bit_cast<std::uint64_t>(w);
  // Standard order-preserving transform to ascending-unsigned…
  b = (b >> 63) != 0 ? ~b : (b | 0x8000'0000'0000'0000ULL);
  // …then flip for descending.
  return ~b;
}

/// Sort record for the parallel key sort: 16 bytes of key material plus the
/// edge id. (wkey, uv) ascending ≡ (weight desc, u asc, v asc) — the
/// definitional heavier order — and is strict and total because (u, v) is
/// unique per edge in a simple graph.
struct KeyRec {
  std::uint64_t wkey;
  std::uint64_t uv;
  EdgeId e;
};

/// Shared skeleton for the ablation weight designs: each endpoint
/// contributes one per-side value (read off the adjacency-aligned rank
/// index in O(1)), and a combine step turns the two sides into the edge
/// weight. Every fp expression matches the sequential per-edge loops
/// exactly, so values are bit-identical; the sweep just removes the two
/// rank() binary searches per edge and parallelizes over nodes.
template <typename SideFn, typename CombineFn>
std::vector<double> combine_sides(const PreferenceProfile& p, util::ThreadPool* pool,
                                  const SideFn& side, const CombineFn& combine) {
  const auto& g = p.graph();
  const std::size_t m = g.num_edges();
  std::vector<double> from_u(m), from_v(m);
  const auto sweep = [&](std::size_t begin, std::size_t end) {
    for (NodeId i = static_cast<NodeId>(begin); i < end; ++i) {
      const auto adj = g.neighbors(i);
      const auto ranks = p.ranks_by_adjacency(i);
      const std::size_t list_len = p.list_size(i);
      const std::uint32_t quota = p.quota(i);
      for (std::size_t k = 0; k < adj.size(); ++k) {
        const EdgeId e = adj[k].edge;
        const double val = side(ranks[k], list_len, quota);
        // Each edge has exactly one u-side and one v-side writer.
        (g.edge(e).u == i ? from_u : from_v)[e] = val;
      }
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(g.num_nodes(), sweep, /*min_chunk=*/256);
  } else {
    sweep(0, g.num_nodes());
  }
  std::vector<double> w(m);
  const auto fill = [&](std::size_t begin, std::size_t end) {
    for (EdgeId e = static_cast<EdgeId>(begin); e < end; ++e) {
      w[e] = combine(from_u[e], from_v[e]);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(m, fill, /*min_chunk=*/2048);
  } else {
    fill(0, m);
  }
  return w;
}

double side_delta_s(prefs::Rank r, std::size_t list_len, std::uint32_t quota) {
  return delta_s_static_at(r, list_len, quota);
}
double side_rank_share(prefs::Rank r, std::size_t list_len, std::uint32_t) {
  return static_cast<double>(r) / static_cast<double>(list_len);
}

}  // namespace

EdgeWeights::EdgeWeights(const Graph& g, std::vector<double> w,
                         util::ThreadPool* pool, WeightsBuildStats* stats)
    : graph_(&g), w_(std::move(w)) {
  OM_CHECK(w_.size() == g.num_edges());
  const std::size_t m = w_.size();
  util::WallTimer timer;

  order_.resize(m);
  if (pool == nullptr) {
    // Sequential reference path (unchanged): sort edge ids with the
    // definitional comparator, then invert into dense keys.
    for (EdgeId e = 0; e < m; ++e) order_[e] = e;
    std::sort(order_.begin(), order_.end(), [this](EdgeId a, EdgeId b) {
      if (w_[a] != w_[b]) return w_[a] > w_[b];
      const auto& ea = graph_->edge(a);
      const auto& eb = graph_->edge(b);
      if (ea.u != eb.u) return ea.u < eb.u;
      return ea.v < eb.v;
    });
    if (stats != nullptr) stats->sort_ms = timer.millis();
    timer.reset();
    key_.resize(m);
    for (std::size_t r = 0; r < m; ++r) key_[order_[r]] = static_cast<Key>(r);
    if (stats != nullptr) stats->key_ms = timer.millis();
    timer.reset();

    // Incidence CSR sorted heaviest-first: appending each edge to both
    // endpoints in global heaviest-first order fills every node's slice
    // already sorted — O(n + m), no per-node sorts.
    inc_offsets_ = g.offsets();
    inc_.resize(inc_offsets_.empty() ? 0 : inc_offsets_.back());
    std::vector<std::size_t> fill(inc_offsets_.begin(),
                                  inc_offsets_.end() - (inc_offsets_.empty() ? 0 : 1));
    for (const EdgeId e : order_) {
      const auto& [u, v] = g.edge(e);
      inc_[fill[u]++] = e;
      inc_[fill[v]++] = e;
    }
    if (stats != nullptr) stats->csr_ms = timer.millis();
    return;
  }

  // Parallel path. Stage 1 — key sort over packed POD records: a branchless
  // two-u64 compare instead of a double compare plus two Edge loads per
  // comparison, sorted by the pool-backed merge sort. The (wkey, uv) order
  // is strict and total, so the permutation — and therefore key_, order_
  // and inc_ — is bit-identical to the sequential reference.
  {
    std::vector<KeyRec> recs(m);
    pool->parallel_for(m, [&](std::size_t begin, std::size_t end) {
      for (EdgeId e = static_cast<EdgeId>(begin); e < end; ++e) {
        const auto& [u, v] = g.edge(e);
        recs[e] = KeyRec{descending_weight_bits(w_[e]),
                         (static_cast<std::uint64_t>(u) << 32) | v, e};
      }
    });
    util::parallel_sort(
        recs,
        [](const KeyRec& a, const KeyRec& b) {
          return a.wkey != b.wkey ? a.wkey < b.wkey : a.uv < b.uv;
        },
        pool);
    pool->parallel_for(m, [&](std::size_t begin, std::size_t end) {
      for (std::size_t r = begin; r < end; ++r) order_[r] = recs[r].e;
    });
  }
  if (stats != nullptr) stats->sort_ms = timer.millis();
  timer.reset();

  // Stage 2 — dense-rank key fill: order_ is a permutation, so the
  // scattered writes are disjoint.
  key_.resize(m);
  pool->parallel_for(m, [&](std::size_t begin, std::size_t end) {
    for (std::size_t r = begin; r < end; ++r) key_[order_[r]] = static_cast<Key>(r);
  });
  if (stats != nullptr) stats->key_ms = timer.millis();
  timer.reset();

  // Stage 3 — incidence CSR: two-pass per node. Pass one copies the node's
  // incident edge ids out of the graph CSR (the counting is free: the
  // offsets already are the counts); pass two sorts each slice by key.
  // Ascending key == the global heaviest-first sweep order the sequential
  // path appends in, and keys are unique, so the slices come out identical.
  inc_offsets_ = g.offsets();
  inc_.resize(inc_offsets_.empty() ? 0 : inc_offsets_.back());
  pool->parallel_for(
      g.num_nodes(),
      [&](std::size_t begin, std::size_t end) {
        for (NodeId v = static_cast<NodeId>(begin); v < end; ++v) {
          const auto adj = g.neighbors(v);
          EdgeId* slice = inc_.data() + inc_offsets_[v];
          for (std::size_t k = 0; k < adj.size(); ++k) slice[k] = adj[k].edge;
          std::sort(slice, slice + adj.size(),
                    [this](EdgeId a, EdgeId b) { return key_[a] < key_[b]; });
        }
      },
      /*min_chunk=*/256);
  if (stats != nullptr) stats->csr_ms = timer.millis();
}

double EdgeWeights::total(const std::vector<EdgeId>& edges) const {
  double s = 0.0;
  for (const EdgeId e : edges) s += weight(e);
  return s;
}

std::vector<double> paper_weight_values(const PreferenceProfile& p,
                                        util::ThreadPool* pool) {
  if (pool == nullptr) {
    const auto& g = p.graph();
    std::vector<double> w(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& [u, v] = g.edge(e);
      w[e] = delta_s_static(p, u, v) + delta_s_static(p, v, u);  // eq. 9
    }
    return w;
  }
  return combine_sides(p, pool, side_delta_s,
                       [](double a, double b) { return a + b; });
}

EdgeWeights paper_weights(const PreferenceProfile& p, util::ThreadPool* pool,
                          WeightsBuildStats* stats) {
  return EdgeWeights(p.graph(), paper_weight_values(p, pool), pool, stats);
}

EdgeWeights min_weights(const PreferenceProfile& p, util::ThreadPool* pool) {
  const auto& g = p.graph();
  if (pool == nullptr) {
    std::vector<double> w(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& [u, v] = g.edge(e);
      w[e] = std::min(delta_s_static(p, u, v), delta_s_static(p, v, u));
    }
    return EdgeWeights(g, std::move(w));
  }
  return EdgeWeights(g,
                     combine_sides(p, pool, side_delta_s,
                                   [](double a, double b) { return std::min(a, b); }),
                     pool);
}

EdgeWeights product_weights(const PreferenceProfile& p, util::ThreadPool* pool) {
  const auto& g = p.graph();
  if (pool == nullptr) {
    std::vector<double> w(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& [u, v] = g.edge(e);
      w[e] = delta_s_static(p, u, v) * delta_s_static(p, v, u);
    }
    return EdgeWeights(g, std::move(w));
  }
  return EdgeWeights(g,
                     combine_sides(p, pool, side_delta_s,
                                   [](double a, double b) { return a * b; }),
                     pool);
}

EdgeWeights ranksum_weights(const PreferenceProfile& p, util::ThreadPool* pool) {
  const auto& g = p.graph();
  if (pool == nullptr) {
    std::vector<double> w(g.num_edges());
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      const auto& [u, v] = g.edge(e);
      const double ru = static_cast<double>(p.rank(u, v)) /
                        static_cast<double>(p.list_size(u));
      const double rv = static_cast<double>(p.rank(v, u)) /
                        static_cast<double>(p.list_size(v));
      w[e] = 2.0 - (ru + rv);
    }
    return EdgeWeights(g, std::move(w));
  }
  return EdgeWeights(
      g,
      combine_sides(p, pool, side_rank_share,
                    [](double a, double b) { return 2.0 - (a + b); }),
      pool);
}

EdgeWeights random_weights(const Graph& g, util::Rng& rng, util::ThreadPool* pool) {
  std::vector<double> w(g.num_edges());
  for (auto& x : w) x = 1.0 - rng.uniform();  // (0, 1]; sequential Rng stream
  return EdgeWeights(g, std::move(w), pool);
}

EdgeWeights weights_by_name(const std::string& name, const PreferenceProfile& p,
                            util::ThreadPool* pool) {
  auto w = try_weights_by_name(name, p, pool);
  OM_CHECK_MSG(w.has_value(), "unknown weight design");
  return *std::move(w);
}

std::optional<EdgeWeights> try_weights_by_name(const std::string& name,
                                               const PreferenceProfile& p,
                                               util::ThreadPool* pool) {
  if (name == "paper") return paper_weights(p, pool);
  if (name == "min") return min_weights(p, pool);
  if (name == "product") return product_weights(p, pool);
  if (name == "ranksum") return ranksum_weights(p, pool);
  return std::nullopt;
}

const char* weight_design_names() { return "paper|min|product|ranksum"; }

}  // namespace overmatch::prefs
