#include "prefs/weights.hpp"

#include <algorithm>

#include "prefs/satisfaction.hpp"

namespace overmatch::prefs {

EdgeWeights::EdgeWeights(const Graph& g, std::vector<double> w)
    : graph_(&g), w_(std::move(w)) {
  OM_CHECK(w_.size() == g.num_edges());
  const std::size_t m = w_.size();

  // Dense weight keys: sort all edges once by the strict heavier order
  // (weight desc, then smaller endpoint pair) and record each edge's rank.
  // One O(m log m) sort at construction buys O(1) integer comparators for
  // every greedy run against these weights.
  order_.resize(m);
  for (EdgeId e = 0; e < m; ++e) order_[e] = e;
  std::sort(order_.begin(), order_.end(), [this](EdgeId a, EdgeId b) {
    if (w_[a] != w_[b]) return w_[a] > w_[b];
    const auto& ea = graph_->edge(a);
    const auto& eb = graph_->edge(b);
    if (ea.u != eb.u) return ea.u < eb.u;
    return ea.v < eb.v;
  });
  key_.resize(m);
  for (std::size_t r = 0; r < m; ++r) key_[order_[r]] = static_cast<Key>(r);

  // Incidence CSR sorted heaviest-first: appending each edge to both
  // endpoints in global heaviest-first order fills every node's slice
  // already sorted — O(n + m), no per-node sorts.
  inc_offsets_ = g.offsets();
  inc_.resize(inc_offsets_.empty() ? 0 : inc_offsets_.back());
  std::vector<std::size_t> fill(inc_offsets_.begin(),
                                inc_offsets_.end() - (inc_offsets_.empty() ? 0 : 1));
  for (const EdgeId e : order_) {
    const auto& [u, v] = g.edge(e);
    inc_[fill[u]++] = e;
    inc_[fill[v]++] = e;
  }
}

double EdgeWeights::total(const std::vector<EdgeId>& edges) const {
  double s = 0.0;
  for (const EdgeId e : edges) s += weight(e);
  return s;
}

EdgeWeights paper_weights(const PreferenceProfile& p) {
  const auto& g = p.graph();
  std::vector<double> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    w[e] = delta_s_static(p, u, v) + delta_s_static(p, v, u);  // eq. 9
  }
  return EdgeWeights(g, std::move(w));
}

EdgeWeights min_weights(const PreferenceProfile& p) {
  const auto& g = p.graph();
  std::vector<double> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    w[e] = std::min(delta_s_static(p, u, v), delta_s_static(p, v, u));
  }
  return EdgeWeights(g, std::move(w));
}

EdgeWeights product_weights(const PreferenceProfile& p) {
  const auto& g = p.graph();
  std::vector<double> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    w[e] = delta_s_static(p, u, v) * delta_s_static(p, v, u);
  }
  return EdgeWeights(g, std::move(w));
}

EdgeWeights ranksum_weights(const PreferenceProfile& p) {
  const auto& g = p.graph();
  std::vector<double> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    const double ru = static_cast<double>(p.rank(u, v)) /
                      static_cast<double>(p.list_size(u));
    const double rv = static_cast<double>(p.rank(v, u)) /
                      static_cast<double>(p.list_size(v));
    w[e] = 2.0 - (ru + rv);
  }
  return EdgeWeights(g, std::move(w));
}

EdgeWeights random_weights(const Graph& g, util::Rng& rng) {
  std::vector<double> w(g.num_edges());
  for (auto& x : w) x = 1.0 - rng.uniform();  // (0, 1]
  return EdgeWeights(g, std::move(w));
}

EdgeWeights weights_by_name(const std::string& name, const PreferenceProfile& p) {
  if (name == "paper") return paper_weights(p);
  if (name == "min") return min_weights(p);
  if (name == "product") return product_weights(p);
  if (name == "ranksum") return ranksum_weights(p);
  OM_CHECK_MSG(false, "unknown weight design");
  return paper_weights(p);
}

}  // namespace overmatch::prefs
