#include "prefs/weights.hpp"

#include <algorithm>

#include "prefs/satisfaction.hpp"

namespace overmatch::prefs {

EdgeWeights::EdgeWeights(const Graph& g, std::vector<double> w)
    : graph_(&g), w_(std::move(w)) {
  OM_CHECK(w_.size() == g.num_edges());
}

bool EdgeWeights::heavier(EdgeId a, EdgeId b) const {
  OM_CHECK(a < w_.size() && b < w_.size());
  if (w_[a] != w_[b]) return w_[a] > w_[b];
  const auto& ea = graph_->edge(a);
  const auto& eb = graph_->edge(b);
  if (ea.u != eb.u) return ea.u < eb.u;
  return ea.v < eb.v;
}

double EdgeWeights::total(const std::vector<EdgeId>& edges) const {
  double s = 0.0;
  for (const EdgeId e : edges) s += weight(e);
  return s;
}

EdgeWeights paper_weights(const PreferenceProfile& p) {
  const auto& g = p.graph();
  std::vector<double> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    w[e] = delta_s_static(p, u, v) + delta_s_static(p, v, u);  // eq. 9
  }
  return EdgeWeights(g, std::move(w));
}

EdgeWeights min_weights(const PreferenceProfile& p) {
  const auto& g = p.graph();
  std::vector<double> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    w[e] = std::min(delta_s_static(p, u, v), delta_s_static(p, v, u));
  }
  return EdgeWeights(g, std::move(w));
}

EdgeWeights product_weights(const PreferenceProfile& p) {
  const auto& g = p.graph();
  std::vector<double> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    w[e] = delta_s_static(p, u, v) * delta_s_static(p, v, u);
  }
  return EdgeWeights(g, std::move(w));
}

EdgeWeights ranksum_weights(const PreferenceProfile& p) {
  const auto& g = p.graph();
  std::vector<double> w(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    const double ru = static_cast<double>(p.rank(u, v)) /
                      static_cast<double>(p.list_size(u));
    const double rv = static_cast<double>(p.rank(v, u)) /
                      static_cast<double>(p.list_size(v));
    w[e] = 2.0 - (ru + rv);
  }
  return EdgeWeights(g, std::move(w));
}

EdgeWeights random_weights(const Graph& g, util::Rng& rng) {
  std::vector<double> w(g.num_edges());
  for (auto& x : w) x = 1.0 - rng.uniform();  // (0, 1]
  return EdgeWeights(g, std::move(w));
}

EdgeWeights weights_by_name(const std::string& name, const PreferenceProfile& p) {
  if (name == "paper") return paper_weights(p);
  if (name == "min") return min_weights(p);
  if (name == "product") return product_weights(p);
  if (name == "ranksum") return ranksum_weights(p);
  OM_CHECK_MSG(false, "unknown weight design");
  return paper_weights(p);
}

}  // namespace overmatch::prefs
