// Candidate preselection: bounded preference lists.
//
// The paper keeps full preference lists over the whole neighbourhood. Real
// peers bound their bookkeeping: they shortlist only their k best-scoring
// neighbours. This transform drops every candidate edge that no endpoint
// (`kEither`) — or not both endpoints (`kMutual`) — shortlists, producing a
// smaller candidate graph on the same node set. Preferences are then rebuilt
// on the reduced neighbourhoods.
//
// Bench E17 sweeps k: how much satisfaction and protocol traffic does
// shortlist size buy?
#pragma once

#include "graph/graph.hpp"
#include "prefs/preference_profile.hpp"

namespace overmatch::prefs {

enum class TruncationMode : std::uint8_t {
  kEither,  ///< keep edge if u shortlists v OR v shortlists u
  kMutual,  ///< keep edge only if both shortlist each other
};

/// Reduced candidate graph under top-k shortlists. Node ids are preserved;
/// with k ≥ max degree the graph is unchanged.
[[nodiscard]] graph::Graph truncate_candidates(const PreferenceProfile& p,
                                               std::size_t k, TruncationMode mode);

}  // namespace overmatch::prefs
