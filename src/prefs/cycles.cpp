#include "prefs/cycles.hpp"

#include <functional>

namespace overmatch::prefs {
namespace {

using graph::Edge;
using graph::EdgeId;
using graph::Graph;

// A state is a directed traversal of an edge: (prev → cur). State id:
// 2·edge + dir, dir 0 = (edge.u → edge.v), dir 1 = (edge.v → edge.u).
struct State {
  NodeId prev;
  NodeId cur;
};

State decode(const Graph& g, std::size_t s) {
  const Edge& e = g.edge(static_cast<EdgeId>(s / 2));
  return (s % 2 == 0) ? State{e.u, e.v} : State{e.v, e.u};
}

std::size_t encode(const Graph& g, EdgeId e, NodeId prev) {
  return 2 * static_cast<std::size_t>(e) + (g.edge(e).u == prev ? 0 : 1);
}

/// DFS for a cycle in the state graph; `better` decides whether `cur` would
/// rather talk to `next` (via edge en) than to `prev` (via edge ep).
std::optional<std::vector<NodeId>> find_cycle(
    const Graph& g,
    const std::function<bool(NodeId cur, NodeId next, EdgeId en, NodeId prev, EdgeId ep)>&
        better) {
  const std::size_t num_states = 2 * g.num_edges();
  enum : unsigned char { kWhite, kGray, kBlack };
  std::vector<unsigned char> color(num_states, kWhite);
  std::vector<std::size_t> pos_in_stack(num_states, 0);

  for (std::size_t root = 0; root < num_states; ++root) {
    if (color[root] != kWhite) continue;
    // Iterative DFS frame: state + index into cur's adjacency.
    struct Frame {
      std::size_t state;
      std::size_t next_idx;
    };
    std::vector<Frame> stack;
    stack.push_back({root, 0});
    color[root] = kGray;
    pos_in_stack[root] = 0;
    while (!stack.empty()) {
      auto& frame = stack.back();
      const State st = decode(g, frame.state);
      const auto adj = g.neighbors(st.cur);
      const EdgeId ep = g.find_edge(st.prev, st.cur);
      bool descended = false;
      while (frame.next_idx < adj.size()) {
        const auto& a = adj[frame.next_idx++];
        if (a.neighbor == st.prev) continue;
        if (!better(st.cur, a.neighbor, a.edge, st.prev, ep)) continue;
        const std::size_t succ = encode(g, a.edge, st.cur);
        if (color[succ] == kGray) {
          // Cycle: states stack[pos_in_stack[succ] .. top], then succ closes it.
          std::vector<NodeId> cycle;
          for (std::size_t k = pos_in_stack[succ]; k < stack.size(); ++k) {
            cycle.push_back(decode(g, stack[k].state).cur);
          }
          return cycle;
        }
        if (color[succ] == kWhite) {
          color[succ] = kGray;
          pos_in_stack[succ] = stack.size();
          stack.push_back({succ, 0});
          descended = true;
          break;
        }
      }
      if (!descended && frame.next_idx >= adj.size()) {
        color[frame.state] = kBlack;
        stack.pop_back();
      }
    }
  }
  return std::nullopt;
}

}  // namespace

std::optional<std::vector<NodeId>> find_rank_cycle(const PreferenceProfile& p) {
  return find_cycle(p.graph(),
                    [&p](NodeId cur, NodeId next, EdgeId, NodeId prev, EdgeId) {
                      return p.prefers(cur, next, prev);
                    });
}

std::optional<std::vector<NodeId>> find_weight_cycle(const EdgeWeights& w) {
  return find_cycle(w.graph(), [&w](NodeId, NodeId, EdgeId en, NodeId, EdgeId ep) {
    return w.heavier(en, ep);
  });
}

}  // namespace overmatch::prefs
