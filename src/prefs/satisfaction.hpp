// Node satisfaction — the paper's optimization metric (§3, eqs. 1, 4–6).
//
// For a node i with quota b_i, list length L_i and ordered connection list
// C_i (|C_i| = c_i ≤ b_i, sorted by decreasing preference):
//
//   S_i = c_i/b_i + c_i(c_i−1)/(2 b_i L_i) − (Σ_{j∈C_i} R_i(j)) / (b_i L_i)   (eq. 1)
//
// The per-connection increment when j becomes i's (c_i+1)-th best connection:
//
//   ΔS_ij = (1 − R_i(j)/L_i)/b_i  +  c_i/(b_i L_i)                            (eq. 4)
//            \_____ static _____/    \__ dynamic __/
//
// Dropping the execution-varying (dynamic) term yields the modified metric
// the algorithms optimize (eqs. 5–6):
//
//   ΔS̄_ij = (1 − R_i(j)/L_i)/b_i,     S̄_i = c_i/b_i − (Σ R_i(j))/(b_i L_i)
#pragma once

#include <span>

#include "prefs/preference_profile.hpp"

namespace overmatch::prefs {

/// S_i per eq. 1. `connections` is any set of distinct neighbours of i with
/// |connections| ≤ b_i (order irrelevant; ranks determine the ordered list).
[[nodiscard]] double satisfaction(const PreferenceProfile& p, NodeId i,
                                  std::span<const NodeId> connections);

/// Modified satisfaction S̄_i per eq. 6.
[[nodiscard]] double satisfaction_modified(const PreferenceProfile& p, NodeId i,
                                           std::span<const NodeId> connections);

/// ΔS_ij per eq. 4: the increment when j is added as i's (c_before+1)-th
/// connection. Requires c_before < b_i.
[[nodiscard]] double delta_s(const PreferenceProfile& p, NodeId i, NodeId j,
                             std::uint32_t c_before);

/// Static part of ΔS_ij per eq. 5: (1 − R_i(j)/L_i) / b_i. Strictly positive.
[[nodiscard]] double delta_s_static(const PreferenceProfile& p, NodeId i, NodeId j);

/// Same value from an already-known rank: (1 − r/L)/b. Shared by
/// delta_s_static and the O(1)-rank construction sweeps in weights.cpp so
/// both paths evaluate the identical floating-point expression (the
/// parallel-build determinism contract depends on it).
[[nodiscard]] constexpr double delta_s_static_at(Rank r, std::size_t list_len,
                                                 std::uint32_t quota) noexcept {
  return (1.0 - static_cast<double>(r) / static_cast<double>(list_len)) /
         static_cast<double>(quota);
}

/// Dynamic part of ΔS_ij: c_before / (b_i · L_i).
[[nodiscard]] double delta_s_dynamic(const PreferenceProfile& p, NodeId i,
                                     std::uint32_t c_before);

/// Decomposition S_i = S_i^s + S_i^d used in Lemma 1 (eq. 7).
struct SatisfactionParts {
  double static_part = 0.0;
  double dynamic_part = 0.0;
  [[nodiscard]] double total() const noexcept { return static_part + dynamic_part; }
};
[[nodiscard]] SatisfactionParts satisfaction_parts(const PreferenceProfile& p, NodeId i,
                                                   std::span<const NodeId> connections);

}  // namespace overmatch::prefs
