#include "prefs/preference_profile.hpp"

#include <algorithm>

#include "util/thread_pool.hpp"

namespace overmatch::prefs {

Quotas uniform_quotas(const Graph& g, std::uint32_t b) {
  OM_CHECK(b >= 1);
  Quotas q(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto d = static_cast<std::uint32_t>(g.degree(v));
    q[v] = d == 0 ? 1 : std::min(b, d);
  }
  return q;
}

Quotas random_quotas(const Graph& g, std::uint32_t b_max, util::Rng& rng) {
  OM_CHECK(b_max >= 1);
  Quotas q(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto b = static_cast<std::uint32_t>(rng.uniform_int(1, b_max));
    const auto d = static_cast<std::uint32_t>(g.degree(v));
    q[v] = d == 0 ? 1 : std::min(b, d);
  }
  return q;
}

PreferenceProfile::PreferenceProfile(const Graph& g, Quotas quotas,
                                     std::vector<std::vector<NodeId>> lists,
                                     util::ThreadPool* pool)
    : graph_(&g), quotas_(std::move(quotas)), lists_(std::move(lists)) {
  OM_CHECK(quotas_.size() == g.num_nodes());
  OM_CHECK(lists_.size() == g.num_nodes());
  ranks_by_adj_.resize(g.num_nodes());
  // Per-node validation + rank-index build; nodes are independent, so the
  // range runs in parallel when a pool is supplied (identical result).
  const auto index_range = [&](std::size_t begin, std::size_t end) {
    for (NodeId i = static_cast<NodeId>(begin); i < end; ++i) {
      const auto adj = g.neighbors(i);
      OM_CHECK_MSG(lists_[i].size() == adj.size(),
                   "preference list must cover the whole neighbourhood");
      // Validate permutation and build the adjacency-aligned rank index.
      ranks_by_adj_[i].assign(adj.size(), static_cast<Rank>(-1));
      for (Rank r = 0; r < lists_[i].size(); ++r) {
        const NodeId j = lists_[i][r];
        // Locate j in the (sorted) adjacency.
        const auto it = std::lower_bound(
            adj.begin(), adj.end(), j,
            [](const graph::Adjacency& a, NodeId t) { return a.neighbor < t; });
        OM_CHECK_MSG(it != adj.end() && it->neighbor == j,
                     "preference list contains a non-neighbour");
        const auto k = static_cast<std::size_t>(it - adj.begin());
        OM_CHECK_MSG(ranks_by_adj_[i][k] == static_cast<Rank>(-1),
                     "preference list contains a duplicate");
        ranks_by_adj_[i][k] = r;
      }
      // Clamp quota to list length (paper: b_i <= |L_i|), keep >= 1.
      if (!lists_[i].empty()) {
        quotas_[i] = std::min<std::uint32_t>(
            quotas_[i], static_cast<std::uint32_t>(lists_[i].size()));
      }
      OM_CHECK(quotas_[i] >= 1);
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(g.num_nodes(), index_range, /*min_chunk=*/256);
  } else {
    index_range(0, g.num_nodes());
  }
}

PreferenceProfile PreferenceProfile::from_scores(
    const Graph& g, Quotas quotas, const std::function<double(NodeId, NodeId)>& score,
    util::ThreadPool* pool) {
  std::vector<std::vector<NodeId>> lists(g.num_nodes());
  const auto rank_range = [&](std::size_t begin, std::size_t end) {
    for (NodeId i = static_cast<NodeId>(begin); i < end; ++i) {
      auto& li = lists[i];
      li.reserve(g.degree(i));
      for (const auto& a : g.neighbors(i)) li.push_back(a.neighbor);
      std::sort(li.begin(), li.end(), [&](NodeId a, NodeId b) {
        const double sa = score(i, a);
        const double sb = score(i, b);
        if (sa != sb) return sa > sb;
        return a < b;
      });
    }
  };
  if (pool != nullptr) {
    pool->parallel_for(g.num_nodes(), rank_range, /*min_chunk=*/256);
  } else {
    rank_range(0, g.num_nodes());
  }
  return PreferenceProfile(g, std::move(quotas), std::move(lists), pool);
}

PreferenceProfile PreferenceProfile::random(const Graph& g, Quotas quotas,
                                            util::Rng& rng, util::ThreadPool* pool) {
  std::vector<std::vector<NodeId>> lists(g.num_nodes());
  for (NodeId i = 0; i < g.num_nodes(); ++i) {
    auto& li = lists[i];
    li.reserve(g.degree(i));
    for (const auto& a : g.neighbors(i)) li.push_back(a.neighbor);
    rng.shuffle(li);  // sequential by design: one Rng stream
  }
  return PreferenceProfile(g, std::move(quotas), std::move(lists), pool);
}

PreferenceProfile PreferenceProfile::from_lists(const Graph& g, Quotas quotas,
                                                std::vector<std::vector<NodeId>> lists,
                                                util::ThreadPool* pool) {
  return PreferenceProfile(g, std::move(quotas), std::move(lists), pool);
}

std::uint32_t PreferenceProfile::max_quota() const noexcept {
  std::uint32_t b = 1;
  for (const auto q : quotas_) b = std::max(b, q);
  return b;
}

Rank PreferenceProfile::rank(NodeId i, NodeId j) const {
  OM_CHECK(i < lists_.size());
  const auto adj = graph_->neighbors(i);
  const auto it = std::lower_bound(
      adj.begin(), adj.end(), j,
      [](const graph::Adjacency& a, NodeId t) { return a.neighbor < t; });
  OM_CHECK_MSG(it != adj.end() && it->neighbor == j, "rank() of a non-neighbour");
  return ranks_by_adj_[i][static_cast<std::size_t>(it - adj.begin())];
}

}  // namespace overmatch::prefs
