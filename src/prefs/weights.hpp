// Edge weights connecting the modified b-matching problem to many-to-many
// maximum weighted matching (paper §4, eq. 9), plus ablation weight designs.
//
//   w(i,j) = ΔS̄_ij + ΔS̄_ji = (1 − R_i(j)/L_i)/b_i + (1 − R_j(i)/L_j)/b_j
//
// The paper requires *unique* weights so locally-heaviest edges are
// unambiguous; ties are broken by node identities. We realize that as a
// strict total order on edges: (weight, u, v) compared lexicographically.
#pragma once

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "prefs/preference_profile.hpp"
#include "util/rng.hpp"

namespace overmatch::prefs {

using graph::EdgeId;

/// Edge weights plus the strict total "heavier-than" order all greedy
/// algorithms share.
class EdgeWeights {
 public:
  EdgeWeights(const Graph& g, std::vector<double> w);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] double weight(EdgeId e) const {
    OM_CHECK(e < w_.size());
    return w_[e];
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return w_; }

  /// Strict total order: true iff edge a is heavier than edge b. Ties in
  /// numeric weight are broken by the lexicographically smaller endpoint pair
  /// (the paper's node-identity tie-break).
  [[nodiscard]] bool heavier(EdgeId a, EdgeId b) const;

  /// Total weight of an edge subset.
  [[nodiscard]] double total(const std::vector<EdgeId>& edges) const;

 private:
  const Graph* graph_;
  std::vector<double> w_;
};

/// The paper's weights (eq. 9). Strictly positive.
[[nodiscard]] EdgeWeights paper_weights(const PreferenceProfile& p);

/// Ablation: min of the two static increments (pessimistic aggregation).
[[nodiscard]] EdgeWeights min_weights(const PreferenceProfile& p);

/// Ablation: product of the two static increments.
[[nodiscard]] EdgeWeights product_weights(const PreferenceProfile& p);

/// Ablation: negated rank sum, shifted to be positive:
/// w = 2 − (R_i(j)/L_i + R_j(i)/L_j) — ignores quotas entirely.
[[nodiscard]] EdgeWeights ranksum_weights(const PreferenceProfile& p);

/// Uniform random weights in (0, 1] — baseline for weight-structure ablation.
[[nodiscard]] EdgeWeights random_weights(const Graph& g, util::Rng& rng);

/// Named dispatch used by the ablation bench: "paper", "min", "product",
/// "ranksum".
[[nodiscard]] EdgeWeights weights_by_name(const std::string& name,
                                          const PreferenceProfile& p);

}  // namespace overmatch::prefs
