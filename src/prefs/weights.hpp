// Edge weights connecting the modified b-matching problem to many-to-many
// maximum weighted matching (paper §4, eq. 9), plus ablation weight designs.
//
//   w(i,j) = ΔS̄_ij + ΔS̄_ji = (1 − R_i(j)/L_i)/b_i + (1 − R_j(i)/L_j)/b_j
//
// The paper requires *unique* weights so locally-heaviest edges are
// unambiguous; ties are broken by node identities. We realize that as a
// strict total order on edges: (weight, u, v) compared lexicographically.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "prefs/preference_profile.hpp"
#include "util/rng.hpp"

namespace overmatch::util {
class ThreadPool;
}

namespace overmatch::prefs {

using graph::EdgeId;
using graph::NodeId;

/// Per-stage wall-clock of one EdgeWeights construction (bench_pipeline
/// reads these; zero cost when not requested).
struct WeightsBuildStats {
  double sort_ms = 0.0;  ///< global heaviest-first order (the key sort)
  double key_ms = 0.0;   ///< dense-rank key fill from the sorted order
  double csr_ms = 0.0;   ///< heaviest-first CSR incidence fill
};

/// Edge weights plus the strict total "heavier-than" order all greedy
/// algorithms share.
///
/// Performance architecture (DESIGN.md §7): construction precomputes
///  * one 64-bit totally-ordered *weight key* per edge — the edge's dense
///    rank under (weight desc, u, v) — so every comparator in the greedy
///    kernels is a single integer compare instead of a double compare plus
///    endpoint tie-breaking. Key order ≡ heavier order exactly (smaller key
///    = heavier edge); a property test asserts the equivalence. 64 bits
///    cannot hold the raw weight bits *and* two 32-bit endpoint ids, so the
///    key is the rank of the (weight-bits, u, v) triple rather than a packed
///    encoding — the order is identical.
///  * the global heaviest-first edge order (by_weight), which lic_global
///    sweeps directly instead of re-sorting all edges per run, and
///  * a CSR incidence index mirroring the graph's layout with every node's
///    incident edges pre-sorted heaviest-first (incident), so LIC-local,
///    b-Suitor and the parallel matchers stop building and sorting per-run
///    adjacency copies.
class EdgeWeights {
 public:
  /// 64-bit totally ordered weight key; smaller key = heavier edge.
  using Key = std::uint64_t;

  /// Builds keys, the global order and the incidence CSR from raw weights.
  /// With a pool the three stages run the parallel path (pool-backed key
  /// sort over packed weight-bit records, parallel rank fill, per-node CSR
  /// sorts); without one they run the original sequential path. Both paths
  /// produce bit-identical `key_`, `order_` and `inc_` — the (weight, u, v)
  /// order is strict and total, so the sorted permutation is unique (−0.0 is
  /// collapsed to +0.0 before key packing to keep exact-zero ties on the
  /// endpoint tie-break, matching the sequential comparator; NaN weights are
  /// rejected). `stats`, when non-null, receives per-stage timings.
  EdgeWeights(const Graph& g, std::vector<double> w,
              util::ThreadPool* pool = nullptr, WeightsBuildStats* stats = nullptr);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] double weight(EdgeId e) const {
    OM_CHECK(e < w_.size());
    return w_[e];
  }
  [[nodiscard]] const std::vector<double>& values() const noexcept { return w_; }

  /// The edge's precomputed weight key. key(a) < key(b) ⇔ heavier(a, b).
  [[nodiscard]] Key key(EdgeId e) const {
    OM_CHECK(e < key_.size());
    return key_[e];
  }
  [[nodiscard]] const std::vector<Key>& keys() const noexcept { return key_; }

  /// Strict total order: true iff edge a is heavier than edge b. Ties in
  /// numeric weight are broken by the lexicographically smaller endpoint pair
  /// (the paper's node-identity tie-break). Thin wrapper over the keys.
  [[nodiscard]] bool heavier(EdgeId a, EdgeId b) const {
    OM_CHECK(a < key_.size() && b < key_.size());
    return key_[a] < key_[b];
  }

  /// All edges, heaviest first (the inverse permutation of the keys).
  [[nodiscard]] std::span<const EdgeId> by_weight() const noexcept { return order_; }

  /// Node v's incident edges, heaviest first (CSR slice; no allocation).
  [[nodiscard]] std::span<const EdgeId> incident(NodeId v) const {
    OM_CHECK(v + 1 < inc_offsets_.size());
    return {inc_.data() + inc_offsets_[v], inc_.data() + inc_offsets_[v + 1]};
  }

  /// Total weight of an edge subset.
  [[nodiscard]] double total(const std::vector<EdgeId>& edges) const;

 private:
  const Graph* graph_;
  std::vector<double> w_;
  std::vector<Key> key_;             ///< dense rank under the heavier order
  std::vector<EdgeId> order_;        ///< edge ids, heaviest first
  std::vector<std::size_t> inc_offsets_;  ///< CSR offsets (== graph offsets)
  std::vector<EdgeId> inc_;          ///< per-node incident edges, heaviest first
};

/// The paper's weights (eq. 9). Strictly positive. A pool parallelizes the
/// per-edge weight fill and the EdgeWeights index construction; the values
/// and indices are bit-identical to the sequential build (same fp
/// expressions, evaluated per edge with no reduction-order dependence).
[[nodiscard]] EdgeWeights paper_weights(const PreferenceProfile& p,
                                        util::ThreadPool* pool = nullptr,
                                        WeightsBuildStats* stats = nullptr);

/// The raw eq.-9 weight vector only (no index construction) — the
/// `weight_fill` phase of the pipeline bench.
[[nodiscard]] std::vector<double> paper_weight_values(const PreferenceProfile& p,
                                                      util::ThreadPool* pool = nullptr);

/// Ablation: min of the two static increments (pessimistic aggregation).
[[nodiscard]] EdgeWeights min_weights(const PreferenceProfile& p,
                                      util::ThreadPool* pool = nullptr);

/// Ablation: product of the two static increments.
[[nodiscard]] EdgeWeights product_weights(const PreferenceProfile& p,
                                          util::ThreadPool* pool = nullptr);

/// Ablation: negated rank sum, shifted to be positive:
/// w = 2 − (R_i(j)/L_i + R_j(i)/L_j) — ignores quotas entirely.
[[nodiscard]] EdgeWeights ranksum_weights(const PreferenceProfile& p,
                                          util::ThreadPool* pool = nullptr);

/// Uniform random weights in (0, 1] — baseline for weight-structure ablation.
/// The draws consume one sequential Rng stream; a pool only parallelizes the
/// index construction.
[[nodiscard]] EdgeWeights random_weights(const Graph& g, util::Rng& rng,
                                         util::ThreadPool* pool = nullptr);

/// Named dispatch used by the ablation bench: "paper", "min", "product",
/// "ranksum".
[[nodiscard]] EdgeWeights weights_by_name(const std::string& name,
                                          const PreferenceProfile& p,
                                          util::ThreadPool* pool = nullptr);
/// Non-aborting variant for CLIs: nullopt on an unknown design name (print
/// weight_design_names() and exit 2 — the friendly-error contract).
[[nodiscard]] std::optional<EdgeWeights> try_weights_by_name(
    const std::string& name, const PreferenceProfile& p,
    util::ThreadPool* pool = nullptr);
/// '|'-separated list of the design names weights_by_name accepts.
[[nodiscard]] const char* weight_design_names();

}  // namespace overmatch::prefs
