#include "prefs/truncation.hpp"

namespace overmatch::prefs {

graph::Graph truncate_candidates(const PreferenceProfile& p, std::size_t k,
                                 TruncationMode mode) {
  OM_CHECK(k >= 1);
  const auto& g = p.graph();
  graph::GraphBuilder builder(g.num_nodes());
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    const bool u_shortlists = p.rank(u, v) < k;
    const bool v_shortlists = p.rank(v, u) < k;
    const bool keep = mode == TruncationMode::kEither ? (u_shortlists || v_shortlists)
                                                      : (u_shortlists && v_shortlists);
    if (keep) builder.add_edge(u, v);
  }
  return std::move(builder).build();
}

}  // namespace overmatch::prefs
