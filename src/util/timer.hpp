// Wall-clock timing helper for benches and examples.
#pragma once

#include <chrono>

namespace overmatch::util {

/// Monotonic wall-clock stopwatch; starts on construction.
class WallTimer {
 public:
  WallTimer() noexcept : start_(clock::now()) {}

  void reset() noexcept { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset.
  [[nodiscard]] double seconds() const noexcept {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds.
  [[nodiscard]] double millis() const noexcept { return seconds() * 1e3; }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace overmatch::util
