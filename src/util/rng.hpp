// Deterministic, seedable pseudo-random number generation.
//
// All randomness in the library flows through these generators so every
// experiment row is reproducible from its printed seed.  SplitMix64 is used
// for seeding/stream-splitting; Xoshiro256** is the workhorse generator.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "util/check.hpp"

namespace overmatch::util {

/// SplitMix64: tiny, fast generator used to expand a 64-bit seed into
/// independent streams (Steele, Lea, Flood 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  [[nodiscard]] std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256** 1.0 (Blackman & Vigna): fast, high-quality 64-bit PRNG.
/// Satisfies the subset of UniformRandomBitGenerator we need.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    OM_CHECK(lo <= hi);
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>((*this)());  // full 64-bit range
    // Lemire-style rejection-free-ish bounded draw (multiply-shift with rejection).
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * span;
    auto l = static_cast<std::uint64_t>(m);
    if (l < span) {
      const std::uint64_t t = (0 - span) % span;
      while (l < t) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * span;
        l = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  /// Uniform size_t index in [0, n). Requires n > 0.
  [[nodiscard]] std::size_t index(std::size_t n) noexcept {
    OM_CHECK(n > 0);
    return static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(n) - 1));
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Bernoulli trial with success probability p.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller (no cached spare; simple and adequate).
  [[nodiscard]] double normal() noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[index(i)]);
    }
  }

  /// k distinct indices sampled uniformly from [0, n) (Floyd's algorithm order
  /// is not preserved; result is shuffled). Requires k <= n.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

  /// Derive an independent child generator (for per-node / per-row streams).
  [[nodiscard]] Rng split() noexcept { return Rng((*this)()); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4]{};
};

}  // namespace overmatch::util
