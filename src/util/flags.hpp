// Minimal --key=value command-line parsing for examples and bench binaries.
#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace overmatch::util {

/// Parses `--key=value` and bare `--flag` arguments. Unknown positional
/// arguments are rejected (benches take no positionals).
class Flags {
 public:
  Flags(int argc, const char* const* argv);

  [[nodiscard]] bool has(const std::string& key) const;
  [[nodiscard]] std::string get(const std::string& key, const std::string& def) const;
  [[nodiscard]] std::int64_t get_int(const std::string& key, std::int64_t def) const;
  [[nodiscard]] double get_double(const std::string& key, double def) const;
  [[nodiscard]] bool get_bool(const std::string& key, bool def) const;

 private:
  std::map<std::string, std::string> kv_;
};

}  // namespace overmatch::util
