#include "util/rng.hpp"

#include <cmath>
#include <numbers>
#include <unordered_set>

namespace overmatch::util {

double Rng::normal() noexcept {
  // Box-Muller; u1 is kept away from 0 so log() is finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  OM_CHECK(k <= n);
  std::vector<std::size_t> out;
  out.reserve(k);
  if (k > n / 2) {
    // Dense case: shuffle a full index vector and truncate.
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    shuffle(all);
    all.resize(k);
    return all;
  }
  std::unordered_set<std::size_t> seen;
  seen.reserve(k * 2);
  while (out.size() < k) {
    const std::size_t x = index(n);
    if (seen.insert(x).second) out.push_back(x);
  }
  shuffle(out);
  return out;
}

}  // namespace overmatch::util
