#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "util/check.hpp"

namespace overmatch::util {

namespace {
/// Set while a thread runs inside worker_loop, so run_chunks can detect a
/// nested parallel_for issued from a task or chunk body and execute it
/// inline instead of deadlocking on its own pool.
thread_local const ThreadPool* t_worker_of = nullptr;
}  // namespace

/// One fork-join job. Lives on the issuing thread's stack; workers only ever
/// reach it through fj_ under the pool mutex, and the issuer clears fj_
/// (again under the mutex) after done == chunks and active == 0, so no
/// worker can hold a dangling pointer.
struct ThreadPool::ForkJoin {
  void* ctx;
  ChunkFn invoke;
  std::size_t n;
  std::size_t step;
  std::size_t chunks;
  std::atomic<std::size_t> next{0};  ///< chunk cursor (grabbed lock-free)
  std::size_t done = 0;              ///< executed chunks     (guarded by mu_)
  std::size_t active = 0;            ///< participating workers (guarded by mu_)
};

ThreadPool::ThreadPool(std::size_t threads) {
  OM_CHECK(threads >= 1);
  // hardware_concurrency() may return 0 when unknown; treat that as "trust
  // the caller" rather than collapsing to 1.
  const std::size_t hw = std::thread::hardware_concurrency();
  parallelism_ = hw == 0 ? threads : std::min(threads, hw);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

std::size_t ThreadPool::num_chunks(std::size_t n,
                                   std::size_t min_chunk) const noexcept {
  if (n == 0) return 0;
  const std::size_t by_grain = n / std::max<std::size_t>(min_chunk, 1);
  return std::clamp<std::size_t>(by_grain, 1, parallelism_ * 4);
}

std::size_t ThreadPool::work_on(ForkJoin& fj) {
  std::size_t executed = 0;
  for (;;) {
    const std::size_t c = fj.next.fetch_add(1, std::memory_order_relaxed);
    if (c >= fj.chunks) return executed;
    const std::size_t begin = c * fj.step;
    fj.invoke(fj.ctx, c, begin, std::min(begin + fj.step, fj.n));
    ++executed;
  }
}

void ThreadPool::run_chunks(std::size_t n, std::size_t min_chunk, void* ctx,
                            ChunkFn invoke) {
  if (n == 0) return;
  const std::size_t chunks = num_chunks(n, min_chunk);
  const std::size_t step = (n + chunks - 1) / chunks;
  // Inline when dispatch cannot help or is not safe: a single chunk, a call
  // from one of this pool's own workers (nested parallel loop), or a
  // fork-join already in flight from another thread.
  bool inline_run = chunks <= 1 || t_worker_of == this;
  ForkJoin fj{ctx, invoke, n, step, chunks, {}, 0, 0};
  if (!inline_run) {
    std::lock_guard lk(mu_);
    if (fj_ != nullptr) {
      inline_run = true;
    } else {
      fj_ = &fj;
    }
  }
  if (inline_run) {
    for (std::size_t c = 0, begin = 0; begin < n; begin += step, ++c) {
      invoke(ctx, c, begin, std::min(begin + step, n));
    }
    return;
  }
  // Wake only as many workers as there are chunks left after the caller
  // takes one — on an oversubscribed pool (more workers than cores) a
  // broadcast would stampede every thread through the mutex for nothing.
  const std::size_t wake = std::min(chunks - 1, workers_.size());
  if (wake >= workers_.size()) {
    cv_task_.notify_all();
  } else {
    for (std::size_t i = 0; i < wake; ++i) cv_task_.notify_one();
  }
  const std::size_t mine = work_on(fj);
  std::unique_lock lk(mu_);
  fj.done += mine;
  cv_idle_.wait(lk, [&fj] { return fj.done == fj.chunks && fj.active == 0; });
  fj_ = nullptr;
}

void ThreadPool::worker_loop() {
  t_worker_of = this;
  std::unique_lock lk(mu_);
  for (;;) {
    cv_task_.wait(lk, [this] {
      return stop_ || !queue_.empty() ||
             (fj_ != nullptr &&
              fj_->next.load(std::memory_order_relaxed) < fj_->chunks);
    });
    if (fj_ != nullptr &&
        fj_->next.load(std::memory_order_relaxed) < fj_->chunks) {
      ForkJoin* fj = fj_;
      ++fj->active;
      lk.unlock();
      const std::size_t mine = work_on(*fj);
      lk.lock();
      fj->done += mine;
      --fj->active;
      if (fj->done == fj->chunks && fj->active == 0) cv_idle_.notify_all();
      continue;
    }
    if (!queue_.empty()) {
      auto task = std::move(queue_.front());
      queue_.pop();
      lk.unlock();
      task();
      lk.lock();
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
      continue;
    }
    if (stop_) return;
  }
}

}  // namespace overmatch::util
