#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace overmatch::util {

ThreadPool::ThreadPool(std::size_t threads) {
  OM_CHECK(threads >= 1);
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    queue_.push(std::move(task));
    ++in_flight_;
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return in_flight_ == 0; });
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t, std::size_t)>& fn) {
  parallel_for_chunks(
      n, [&fn](std::size_t, std::size_t begin, std::size_t end) { fn(begin, end); });
}

std::size_t ThreadPool::num_chunks(std::size_t n) const noexcept {
  return std::min(n, workers_.size() * 4);
}

void ThreadPool::parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  const std::size_t chunks = num_chunks(n);
  const std::size_t step = (n + chunks - 1) / chunks;
  std::size_t chunk = 0;
  for (std::size_t begin = 0; begin < n; begin += step, ++chunk) {
    const std::size_t end = std::min(begin + step, n);
    submit([&fn, chunk, begin, end] { fn(chunk, begin, end); });
  }
  wait_idle();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
    {
      std::lock_guard lk(mu_);
      --in_flight_;
      if (in_flight_ == 0) cv_idle_.notify_all();
    }
  }
}

}  // namespace overmatch::util
