#include "util/flags.hpp"

#include <cstdlib>
#include <string_view>

#include "util/check.hpp"

namespace overmatch::util {

Flags::Flags(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view a(argv[i]);
    if (!a.starts_with("--")) continue;  // tolerate foreign args (gtest/benchmark)
    a.remove_prefix(2);
    const auto eq = a.find('=');
    if (eq == std::string_view::npos) {
      kv_[std::string(a)] = "1";
    } else {
      kv_[std::string(a.substr(0, eq))] = std::string(a.substr(eq + 1));
    }
  }
}

bool Flags::has(const std::string& key) const { return kv_.contains(key); }

std::string Flags::get(const std::string& key, const std::string& def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : it->second;
}

std::int64_t Flags::get_int(const std::string& key, std::int64_t def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::get_double(const std::string& key, double def) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? def : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::get_bool(const std::string& key, bool def) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return def;
  return it->second == "1" || it->second == "true" || it->second == "yes";
}

}  // namespace overmatch::util
