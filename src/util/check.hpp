// Lightweight always-on invariant checking.
//
// OM_CHECK aborts with a diagnostic when a library invariant is violated; it is
// kept enabled in release builds because every algorithm in this library is a
// correctness artifact (an approximation guarantee that silently degrades is
// worse than a crash).
#pragma once

#include <cstdio>
#include <cstdlib>

namespace overmatch::util {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const char* msg) {
  std::fprintf(stderr, "OM_CHECK failed: %s\n  at %s:%d\n  %s\n", expr, file, line,
               msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace overmatch::util

#define OM_CHECK(expr)                                                          \
  do {                                                                          \
    if (!(expr)) ::overmatch::util::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (false)

#define OM_CHECK_MSG(expr, msg)                                                   \
  do {                                                                            \
    if (!(expr)) ::overmatch::util::check_failed(#expr, __FILE__, __LINE__, msg); \
  } while (false)
