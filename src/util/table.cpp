#include "util/table.hpp"

#include <cstdio>
#include <sstream>

#include "util/check.hpp"

namespace overmatch::util {

std::string fmt(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  OM_CHECK(!headers_.empty());
}

Table& Table::row() {
  if (!cells_.empty()) {
    OM_CHECK_MSG(cells_.back().size() == headers_.size(),
                 "previous row has wrong number of cells");
  }
  cells_.emplace_back();
  cells_.back().reserve(headers_.size());
  return *this;
}

Table& Table::cell(const std::string& v) {
  OM_CHECK_MSG(!cells_.empty() && cells_.back().size() < headers_.size(),
               "cell() without row() or too many cells");
  cells_.back().push_back(v);
  return *this;
}

Table& Table::cell(const char* v) { return cell(std::string(v)); }
Table& Table::cell(double v, int precision) { return cell(fmt(v, precision)); }
Table& Table::cell(std::int64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(std::uint64_t v) { return cell(std::to_string(v)); }
Table& Table::cell(int v) { return cell(std::to_string(v)); }
Table& Table::cell(bool v) { return cell(std::string(v ? "yes" : "no")); }

std::string Table::markdown() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& r : cells_) {
    for (std::size_t c = 0; c < r.size(); ++c) widths[c] = std::max(widths[c], r[c].size());
  }
  auto pad = [](const std::string& s, std::size_t w) {
    std::string out = s;
    out.append(w - s.size(), ' ');
    return out;
  };
  std::ostringstream os;
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << ' ' << pad(headers_[c], widths[c]) << " |";
  os << "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) os << std::string(widths[c] + 2, '-') << '|';
  os << '\n';
  for (const auto& r : cells_) {
    os << '|';
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << ' ' << pad(c < r.size() ? r[c] : std::string(), widths[c]) << " |";
    }
    os << '\n';
  }
  return os.str();
}

std::string Table::csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) os << ',';
    os << headers_[c];
  }
  os << '\n';
  for (const auto& r : cells_) {
    for (std::size_t c = 0; c < r.size(); ++c) {
      if (c > 0) os << ',';
      os << r[c];
    }
    os << '\n';
  }
  return os.str();
}

void Table::print(const std::string& caption) const {
  std::printf("\n%s\n\n%s\n", caption.c_str(), markdown().c_str());
  std::fflush(stdout);
}

}  // namespace overmatch::util
