#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/check.hpp"

namespace overmatch::util {

void StreamingStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void StreamingStats::merge(const StreamingStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double StreamingStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double StreamingStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> xs, double p) {
  OM_CHECK(!xs.empty());
  OM_CHECK(p >= 0.0 && p <= 100.0);
  std::sort(xs.begin(), xs.end());
  if (xs.size() == 1) return xs[0];
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double mean_of(const std::vector<double>& xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  OM_CHECK(hi > lo);
  OM_CHECK(bins > 0);
}

void Histogram::add(double x) noexcept {
  const double t = (x - lo_) / (hi_ - lo_);
  auto b = static_cast<std::ptrdiff_t>(t * static_cast<double>(counts_.size()));
  b = std::clamp<std::ptrdiff_t>(b, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(b)];
  ++total_;
}

std::size_t Histogram::bin_count(std::size_t b) const {
  OM_CHECK(b < counts_.size());
  return counts_[b];
}

double Histogram::bin_lo(std::size_t b) const {
  OM_CHECK(b < counts_.size());
  return lo_ + (hi_ - lo_) * static_cast<double>(b) / static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t b) const { return bin_lo(b + 1 - 1) + (hi_ - lo_) / static_cast<double>(counts_.size()); }

std::string Histogram::render(std::size_t width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::ostringstream os;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const std::size_t bar = counts_[b] * width / peak;
    os.setf(std::ios::fixed);
    os.precision(3);
    os << "[" << bin_lo(b) << ", " << bin_hi(b) << ") ";
    for (std::size_t i = 0; i < bar; ++i) os << '#';
    os << ' ' << counts_[b] << '\n';
  }
  return os.str();
}

}  // namespace overmatch::util
