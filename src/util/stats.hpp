// Streaming and batch descriptive statistics used by the experiment harness.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace overmatch::util {

/// Welford streaming accumulator: count / mean / variance / min / max in O(1)
/// memory, numerically stable.
class StreamingStats {
 public:
  void add(double x) noexcept;
  /// Merge another accumulator into this one (parallel reduction friendly).
  void merge(const StreamingStats& other) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept;  ///< Sample variance (n-1).
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ > 0 ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ > 0 ? max_ : 0.0; }
  [[nodiscard]] double sum() const noexcept { return mean_ * static_cast<double>(n_); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample (linear interpolation between order statistics).
/// `p` in [0, 100]. The input is copied; the original order is preserved.
[[nodiscard]] double percentile(std::vector<double> xs, double p);

/// Arithmetic mean of a sample; 0 for an empty sample.
[[nodiscard]] double mean_of(const std::vector<double>& xs) noexcept;

/// Fixed-width histogram over [lo, hi] with `bins` buckets; values outside the
/// range are clamped into the edge buckets.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x) noexcept;
  [[nodiscard]] std::size_t bin_count(std::size_t b) const;
  [[nodiscard]] std::size_t bins() const noexcept { return counts_.size(); }
  [[nodiscard]] std::size_t total() const noexcept { return total_; }
  [[nodiscard]] double bin_lo(std::size_t b) const;
  [[nodiscard]] double bin_hi(std::size_t b) const;

  /// Multi-line ASCII rendering (one row per bucket) for bench output.
  [[nodiscard]] std::string render(std::size_t width = 40) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

}  // namespace overmatch::util
