// Fixed-size thread pool used by the parallel matching algorithms, the
// parallel construction pipeline, and the threaded actor runtime helpers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <type_traits>
#include <vector>

namespace overmatch::util {

/// Simple fixed-size pool with two execution paths:
///
///  * a queue of `std::function<void()>` tasks (submit / wait_idle) for
///    irregular work such as the actor-runtime helpers, and
///  * a **no-allocation fork-join fast path** (parallel_for /
///    parallel_for_chunks) for the data-parallel phases of the construction
///    pipeline and the matchers. One type-erased pointer to the caller's
///    callable is shared by every worker; chunks are handed out through an
///    atomic cursor, so dispatching a parallel loop performs zero heap
///    allocations and one condition-variable broadcast regardless of the
///    chunk count (the old implementation wrapped the callable into a fresh
///    std::function per chunk — an allocation and a queue round-trip each).
///
/// The calling thread participates in fork-join work, so a pool of size 1
/// still makes progress even if its worker is busy, and small loops degrade
/// to a plain inline loop (no dispatch at all) once they fit in one chunk.
class ThreadPool {
 public:
  /// Elements per chunk below which parallel dispatch is not worth the
  /// coordination; parallel_for callers can override per call site.
  static constexpr std::size_t kDefaultMinChunk = 1024;

  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task (queue path; allocates the std::function as usual).
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  /// Partition [0, n) into contiguous chunks of at least `min_chunk`
  /// elements, run `fn(begin, end)` across the pool (caller included), and
  /// wait for completion. No heap allocation. When the range fits in one
  /// chunk — or when called from inside one of this pool's workers — the
  /// loop runs inline on the calling thread.
  template <typename F>
  void parallel_for(std::size_t n, F&& fn,
                    std::size_t min_chunk = kDefaultMinChunk) {
    run_chunks(n, min_chunk,
               const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
               [](void* ctx, std::size_t, std::size_t begin, std::size_t end) {
                 (*static_cast<std::remove_reference_t<F>*>(ctx))(begin, end);
               });
  }

  /// Number of chunks parallel_for/parallel_for_chunks splits [0, n) into.
  /// Deterministic for a given (n, pool size, min_chunk) so callers can
  /// preallocate one result slot per chunk and merge without
  /// synchronization. Monotone non-decreasing in n.
  [[nodiscard]] std::size_t num_chunks(
      std::size_t n, std::size_t min_chunk = kDefaultMinChunk) const noexcept;

  /// Like parallel_for but also passes the chunk index: fn(chunk, begin, end)
  /// with chunk ∈ [0, num_chunks(n, min_chunk)). Each chunk index is used
  /// exactly once, so writes to per-chunk slots are race-free by
  /// construction — the lock-free alternative to collecting results under a
  /// mutex.
  template <typename F>
  void parallel_for_chunks(std::size_t n, F&& fn,
                           std::size_t min_chunk = kDefaultMinChunk) {
    run_chunks(n, min_chunk,
               const_cast<void*>(static_cast<const void*>(std::addressof(fn))),
               [](void* ctx, std::size_t chunk, std::size_t begin, std::size_t end) {
                 (*static_cast<std::remove_reference_t<F>*>(ctx))(chunk, begin, end);
               });
  }

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Useful parallelism: worker count capped at the machine's hardware
  /// concurrency. Splitting work wider than the machine adds merge passes
  /// and wakeups without adding throughput, so chunk counts and sort block
  /// counts scale with this instead of size(). On a machine with at least
  /// size() cores the two are equal.
  [[nodiscard]] std::size_t parallelism() const noexcept { return parallelism_; }

 private:
  struct ForkJoin;

  /// Type-erased chunk invoker: invoke(ctx, chunk, begin, end).
  using ChunkFn = void (*)(void*, std::size_t, std::size_t, std::size_t);

  void run_chunks(std::size_t n, std::size_t min_chunk, void* ctx, ChunkFn invoke);
  /// Grab and execute chunks of `fj` until the cursor is exhausted; returns
  /// the number of chunks this thread executed.
  static std::size_t work_on(ForkJoin& fj);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::size_t parallelism_ = 1;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;   ///< queue-path tasks pending/executing
  ForkJoin* fj_ = nullptr;      ///< active fork-join job (guarded by mu_)
  bool stop_ = false;
};

}  // namespace overmatch::util
