// Fixed-size thread pool used by the parallel matching algorithms and the
// threaded actor runtime helpers.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace overmatch::util {

/// Simple fixed-size pool. Tasks are void() callables; completion is observed
/// with wait_idle(). Designed for fork-join phases in the parallel matchers,
/// not for general futures.
class ThreadPool {
 public:
  /// Spawns `threads` workers (>= 1).
  explicit ThreadPool(std::size_t threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue one task.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished executing.
  void wait_idle();

  /// Partition [0, n) into contiguous chunks, run `fn(begin, end)` on the pool,
  /// and wait for completion.
  void parallel_for(std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn);

  /// Number of chunks parallel_for/parallel_for_chunks splits [0, n) into.
  /// Deterministic for a given (n, pool size) so callers can preallocate one
  /// result slot per chunk and merge without synchronization.
  [[nodiscard]] std::size_t num_chunks(std::size_t n) const noexcept;

  /// Like parallel_for but also passes the chunk index: fn(chunk, begin, end)
  /// with chunk ∈ [0, num_chunks(n)). Each chunk index is used exactly once,
  /// so writes to per-chunk slots are race-free by construction — the
  /// lock-free alternative to collecting results under a mutex.
  void parallel_for_chunks(
      std::size_t n,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

}  // namespace overmatch::util
