// Reusable pool-backed sort for the parallel construction pipeline.
//
// Block merge sort over a ThreadPool: the input is cut into a power-of-two
// number of blocks, each block is std::sort-ed as one fork-join item, then
// log2(blocks) parallel merge passes (std::merge into a ping-pong buffer)
// combine them. Below kParallelSortCutoff elements — or without a pool —
// the call is exactly std::sort, so small inputs pay nothing.
//
// Determinism contract: when `comp` induces a *strict total order* (no two
// distinct elements compare equivalent — true for every weight-key order in
// this repo, where numeric ties are broken by endpoint ids), the sorted
// permutation is unique, so the result is bit-identical to std::sort for
// every pool size including none. With equivalent elements the result is
// still a valid sort but the tie order may differ from std::sort's; callers
// needing bit-stable output across thread counts must pass a total order.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <vector>

#include "util/thread_pool.hpp"

namespace overmatch::util {

/// Below this size the parallel path cannot win; plain std::sort runs.
inline constexpr std::size_t kParallelSortCutoff = 1u << 14;

template <typename T, typename Comp = std::less<T>>
void parallel_sort(std::vector<T>& v, Comp comp = {}, ThreadPool* pool = nullptr) {
  const std::size_t n = v.size();
  if (pool == nullptr || pool->size() <= 1 || n < kParallelSortCutoff) {
    std::sort(v.begin(), v.end(), comp);
    return;
  }
  // Power-of-two block count: enough blocks to feed the machine (2× the
  // useful parallelism for load balance, capped at 64), but never blocks
  // smaller than half the cutoff. Scaling with parallelism() rather than
  // size() keeps an oversubscribed pool from paying extra merge passes that
  // no core exists to run.
  std::size_t blocks = 1;
  while (blocks < pool->parallelism() * 2 && blocks < 64 &&
         n / (blocks * 2) >= kParallelSortCutoff / 2) {
    blocks *= 2;
  }
  if (blocks == 1) {
    std::sort(v.begin(), v.end(), comp);
    return;
  }
  std::vector<std::size_t> bound(blocks + 1);
  for (std::size_t i = 0; i <= blocks; ++i) bound[i] = n * i / blocks;

  // Each block sort is one fork-join item (min_chunk 1: the work per item is
  // a whole block, not one element).
  pool->parallel_for(
      blocks,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          std::sort(v.begin() + static_cast<std::ptrdiff_t>(bound[i]),
                    v.begin() + static_cast<std::ptrdiff_t>(bound[i + 1]), comp);
        }
      },
      /*min_chunk=*/1);

  // Merge passes, ping-ponging between v and a scratch buffer. std::merge is
  // stable (left run wins ties), so the pass structure itself is
  // deterministic; see the header comment for the total-order caveat.
  std::vector<T> scratch(n);
  T* src = v.data();
  T* dst = scratch.data();
  for (std::size_t width = 1; width < blocks; width *= 2) {
    const std::size_t pairs = blocks / (width * 2);
    pool->parallel_for(
        pairs,
        [&](std::size_t pb, std::size_t pe) {
          for (std::size_t p = pb; p < pe; ++p) {
            const std::size_t lo = bound[p * 2 * width];
            const std::size_t mid = bound[p * 2 * width + width];
            const std::size_t hi = bound[p * 2 * width + 2 * width];
            std::merge(src + lo, src + mid, src + mid, src + hi, dst + lo, comp);
          }
        },
        /*min_chunk=*/1);
    std::swap(src, dst);
  }
  if (src != v.data()) {
    pool->parallel_for(n, [&](std::size_t b, std::size_t e) {
      std::copy(src + b, src + e, v.data() + b);
    });
  }
}

}  // namespace overmatch::util
