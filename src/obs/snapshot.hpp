// obs:: Snapshot — a plain-value copy of everything a Registry holds, taken
// at a point in time. Snapshots are what results carry (SolveResult::metrics,
// LidResult::metrics) and what the JSON exporter serializes; they have no
// atomics and no back-reference to the registry, so they are freely copyable
// and outlive the run that produced them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace overmatch::obs {

struct Snapshot {
  struct TimerStat {
    std::string name;
    std::uint64_t count = 0;
    double total_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
  };
  struct HistogramStat {
    std::string name;
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 buckets
  };

  /// All series are sorted by name (labels by key), making the snapshot —
  /// and its JSON form — deterministic and git-diffable.
  std::vector<std::pair<std::string, std::string>> labels;
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<TimerStat> timers;
  std::vector<HistogramStat> histograms;

  /// Retained trace window, ordered by (ring, seq), plus the total number of
  /// events ever emitted so ring truncation is visible.
  std::vector<TraceEvent> trace;
  std::uint64_t trace_emitted = 0;

  /// Counter value by name; 0 when absent (counters are monotonic from 0).
  [[nodiscard]] std::uint64_t counter(std::string_view name) const {
    for (const auto& [k, v] : counters) {
      if (k == name) return v;
    }
    return 0;
  }
  [[nodiscard]] bool has_counter(std::string_view name) const {
    for (const auto& [k, v] : counters) {
      if (k == name) return true;
    }
    return false;
  }
  /// Gauge value by name; 0.0 when absent.
  [[nodiscard]] double gauge(std::string_view name) const {
    for (const auto& [k, v] : gauges) {
      if (k == name) return v;
    }
    return 0.0;
  }
  /// Timer stat by name; nullptr when absent.
  [[nodiscard]] const TimerStat* timer(std::string_view name) const {
    for (const auto& t : timers) {
      if (t.name == name) return &t;
    }
    return nullptr;
  }
  [[nodiscard]] bool empty() const noexcept {
    return labels.empty() && counters.empty() && gauges.empty() &&
           timers.empty() && histograms.empty() && trace.empty();
  }
};

}  // namespace overmatch::obs
