#include "obs/registry.hpp"

#include <algorithm>
#include <atomic>

#include "util/check.hpp"

namespace overmatch::obs {
namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

Registry::Registry() : id_(next_registry_id()) {}
Registry::~Registry() = default;

Counter Registry::counter(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::make_unique<detail::CounterCell>())
             .first;
  }
  return Counter(it->second.get());
}

Gauge Registry::gauge(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<detail::GaugeCell>())
             .first;
  }
  return Gauge(it->second.get());
}

Timer Registry::timer(std::string_view name) {
  std::lock_guard lk(mu_);
  auto it = timers_.find(name);
  if (it == timers_.end()) {
    it = timers_.emplace(std::string(name), std::make_unique<detail::TimerCell>())
             .first;
  }
  return Timer(it->second.get());
}

Histogram Registry::histogram(std::string_view name,
                              std::vector<double> upper_bounds) {
  OM_CHECK_MSG(!upper_bounds.empty(), "histogram needs at least one bound");
  OM_CHECK_MSG(std::is_sorted(upper_bounds.begin(), upper_bounds.end()) &&
                   std::adjacent_find(upper_bounds.begin(), upper_bounds.end()) ==
                       upper_bounds.end(),
               "histogram bounds must be strictly ascending");
  std::lock_guard lk(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<detail::HistogramCell>(std::move(upper_bounds)))
             .first;
  }
  return Histogram(it->second.get());
}

void Registry::set_label(std::string_view key, std::string_view value) {
  std::lock_guard lk(mu_);
  labels_[std::string(key)] = std::string(value);
}

TraceRing* Registry::thread_ring() noexcept {
  // Per-thread cache of (registry id → ring). Registry ids are process-unique
  // and never reused, so a stale entry for a destroyed registry can never be
  // matched by a live one. The cache is bounded: threads interact with a
  // handful of live registries at a time, so evicting the oldest entry is
  // harmless (the ring is re-resolved — and found again — under the lock).
  struct CacheEntry {
    std::uint64_t id;
    TraceRing* ring;
  };
  thread_local std::vector<CacheEntry> cache;
  for (const auto& e : cache) {
    if (e.id == id_) return e.ring;
  }
  TraceRing* ring = nullptr;
  {
    std::lock_guard lk(mu_);
    rings_.push_back(std::make_unique<TraceRing>(kTraceCapacityPerThread));
    ring = rings_.back().get();
  }
  constexpr std::size_t kMaxCacheEntries = 16;
  if (cache.size() >= kMaxCacheEntries) cache.erase(cache.begin());
  cache.push_back({id_, ring});
  return ring;
}

void Registry::trace(TraceKind kind, std::uint32_t a, std::uint32_t b) noexcept {
  if (!kObsEnabled) return;
  thread_ring()->emit(kind, a, b);
}

Snapshot Registry::snapshot() const {
  Snapshot s;
  std::lock_guard lk(mu_);
  s.labels.reserve(labels_.size());
  for (const auto& [k, v] : labels_) s.labels.emplace_back(k, v);
  s.counters.reserve(counters_.size());
  for (const auto& [name, cell] : counters_) {
    s.counters.emplace_back(name, cell->value.load(std::memory_order_relaxed));
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, cell] : gauges_) {
    s.gauges.emplace_back(name, cell->value.load(std::memory_order_relaxed));
  }
  s.timers.reserve(timers_.size());
  for (const auto& [name, cell] : timers_) {
    Snapshot::TimerStat t;
    t.name = name;
    t.count = cell->count.load(std::memory_order_relaxed);
    constexpr double kNsToMs = 1e-6;
    t.total_ms =
        static_cast<double>(cell->total_ns.load(std::memory_order_relaxed)) * kNsToMs;
    const auto min_ns = cell->min_ns.load(std::memory_order_relaxed);
    t.min_ms = t.count == 0 ? 0.0 : static_cast<double>(min_ns) * kNsToMs;
    t.max_ms =
        static_cast<double>(cell->max_ns.load(std::memory_order_relaxed)) * kNsToMs;
    s.timers.push_back(std::move(t));
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, cell] : histograms_) {
    Snapshot::HistogramStat h;
    h.name = name;
    h.bounds = cell->bounds;
    h.counts.reserve(cell->counts.size());
    for (const auto& c : cell->counts) {
      h.counts.push_back(c.load(std::memory_order_relaxed));
    }
    s.histograms.push_back(std::move(h));
  }
  // Rings are numbered in registration order; events within a ring are
  // seq-ordered, so the concatenation is already (ring, seq)-sorted.
  for (std::uint32_t r = 0; r < rings_.size(); ++r) {
    s.trace_emitted += rings_[r]->emitted();
    rings_[r]->collect(r, s.trace);
  }
  return s;
}

}  // namespace overmatch::obs
