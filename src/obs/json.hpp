// overmatch-metrics-v1 JSON export for obs::Snapshot.
//
// The document is deterministic and git-diffable: all series are sorted by
// name, keys are emitted one per line, and numeric formats are fixed
// (counters as integers, gauges at 6 decimals, timer milliseconds at 4).
// Validate and diff documents with tools/metrics_diff.py.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "obs/snapshot.hpp"

namespace overmatch::obs {

/// Serializes `s` as an overmatch-metrics-v1 document. `source` names the
/// producing surface (e.g. "overmatch_cli"). At most `max_trace_events`
/// trace events are embedded (oldest first; the emitted/retained totals are
/// always exact regardless of the cap).
[[nodiscard]] std::string to_json(const Snapshot& s, std::string_view source,
                                  std::size_t max_trace_events = 64);

/// to_json + write to `path` (overwrites). Aborts via OM_CHECK on I/O error.
void write_json_file(const Snapshot& s, std::string_view source,
                     const std::string& path, std::size_t max_trace_events = 64);

}  // namespace overmatch::obs
