// obs::Registry — the unified observability layer's root object: a
// thread-safe collection of named counters, gauges, timers and fixed-bucket
// histograms, plus per-thread protocol trace rings.
//
// Usage model (DESIGN.md §9):
//  * A registry is cheap to construct and normally lives for one solve/run.
//    core::solve() owns one per call unless the caller supplies its own via
//    SolveOptions::registry (to aggregate across runs).
//  * Recording sites hold a `Registry*` that may be null — the free helpers
//    below return disengaged handles for null registries, so "metrics off"
//    is a null pointer, not a code path. Name lookup (get-or-create) takes a
//    mutex; call sites therefore resolve handles once per run, never per
//    event, and hot loops accumulate locally and flush at the end.
//  * trace() appends to a per-thread lock-free ring (see trace.hpp); the
//    calling thread's ring is resolved through a thread-local cache, so the
//    steady-state cost is one vector scan + two atomic stores.
//  * snapshot() returns a plain-value copy (snapshot.hpp); json.hpp turns a
//    snapshot into an overmatch-metrics-v1 document.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "obs/trace.hpp"

namespace overmatch::obs {

class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Get-or-create. Handles are valid for the registry's lifetime; repeated
  /// calls with the same name return handles to the same cell.
  [[nodiscard]] Counter counter(std::string_view name);
  [[nodiscard]] Gauge gauge(std::string_view name);
  [[nodiscard]] Timer timer(std::string_view name);
  /// `upper_bounds` must be strictly ascending; a final open bucket is
  /// implicit. Re-registering an existing histogram ignores the bounds and
  /// returns the existing cell (first registration wins).
  [[nodiscard]] Histogram histogram(std::string_view name,
                                    std::vector<double> upper_bounds);

  /// Free-form string metadata attached to snapshots (algorithm, instance
  /// shape, ...). Last write wins.
  void set_label(std::string_view key, std::string_view value);

  /// Append a protocol event to the calling thread's trace ring.
  void trace(TraceKind kind, std::uint32_t a = 0, std::uint32_t b = 0) noexcept;

  /// Point-in-time copy of everything. Safe concurrently with recording;
  /// exact when taken at quiescence (the normal case).
  [[nodiscard]] Snapshot snapshot() const;

  /// Events retained per producing thread before overwrite.
  static constexpr std::size_t kTraceCapacityPerThread = 4096;

 private:
  [[nodiscard]] TraceRing* thread_ring() noexcept;

  mutable std::mutex mu_;
  const std::uint64_t id_;  ///< process-unique, keys the thread-local ring cache
  // Node-based maps: cell addresses are stable across insertions.
  std::map<std::string, std::unique_ptr<detail::CounterCell>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<detail::GaugeCell>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<detail::TimerCell>, std::less<>> timers_;
  std::map<std::string, std::unique_ptr<detail::HistogramCell>, std::less<>>
      histograms_;
  std::map<std::string, std::string, std::less<>> labels_;
  std::vector<std::unique_ptr<TraceRing>> rings_;
};

/// Null-tolerant helpers: a null registry yields disengaged (no-op) handles.
[[nodiscard]] inline Counter counter(Registry* r, std::string_view name) {
  return r != nullptr ? r->counter(name) : Counter{};
}
[[nodiscard]] inline Gauge gauge(Registry* r, std::string_view name) {
  return r != nullptr ? r->gauge(name) : Gauge{};
}
[[nodiscard]] inline Timer timer(Registry* r, std::string_view name) {
  return r != nullptr ? r->timer(name) : Timer{};
}
inline void trace(Registry* r, TraceKind kind, std::uint32_t a = 0,
                  std::uint32_t b = 0) noexcept {
  if (r != nullptr) r->trace(kind, a, b);
}

}  // namespace overmatch::obs
