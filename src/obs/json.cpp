#include "obs/json.hpp"

#include <cstdio>
#include <cstring>

#include "util/check.hpp"

namespace overmatch::obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void append_fmt(std::string& out, const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, fmt, v);
  out += buf;
}

void append_u64(std::string& out, std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(v));
  out += buf;
}

}  // namespace

std::string to_json(const Snapshot& s, std::string_view source,
                    std::size_t max_trace_events) {
  std::string out;
  out.reserve(1024 + 64 * (s.counters.size() + s.gauges.size() + s.timers.size()));
  out += "{\n  \"schema\": \"overmatch-metrics-v1\",\n  \"source\": \"";
  append_escaped(out, source);
  out += "\",\n  \"labels\": {";
  for (std::size_t i = 0; i < s.labels.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_escaped(out, s.labels[i].first);
    out += "\": \"";
    append_escaped(out, s.labels[i].second);
    out += "\"";
  }
  out += s.labels.empty() ? "},\n" : "\n  },\n";

  out += "  \"counters\": {";
  for (std::size_t i = 0; i < s.counters.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_escaped(out, s.counters[i].first);
    out += "\": ";
    append_u64(out, s.counters[i].second);
  }
  out += s.counters.empty() ? "},\n" : "\n  },\n";

  out += "  \"gauges\": {";
  for (std::size_t i = 0; i < s.gauges.size(); ++i) {
    out += i == 0 ? "\n" : ",\n";
    out += "    \"";
    append_escaped(out, s.gauges[i].first);
    out += "\": ";
    append_fmt(out, "%.6f", s.gauges[i].second);
  }
  out += s.gauges.empty() ? "},\n" : "\n  },\n";

  out += "  \"timers\": [";
  for (std::size_t i = 0; i < s.timers.size(); ++i) {
    const auto& t = s.timers[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_escaped(out, t.name);
    out += "\", \"count\": ";
    append_u64(out, t.count);
    out += ", \"total_ms\": ";
    append_fmt(out, "%.4f", t.total_ms);
    out += ", \"min_ms\": ";
    append_fmt(out, "%.4f", t.min_ms);
    out += ", \"max_ms\": ";
    append_fmt(out, "%.4f", t.max_ms);
    out += "}";
  }
  out += s.timers.empty() ? "],\n" : "\n  ],\n";

  out += "  \"histograms\": [";
  for (std::size_t i = 0; i < s.histograms.size(); ++i) {
    const auto& h = s.histograms[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"";
    append_escaped(out, h.name);
    out += "\", \"bounds\": [";
    for (std::size_t j = 0; j < h.bounds.size(); ++j) {
      if (j != 0) out += ", ";
      append_fmt(out, "%g", h.bounds[j]);
    }
    out += "], \"counts\": [";
    for (std::size_t j = 0; j < h.counts.size(); ++j) {
      if (j != 0) out += ", ";
      append_u64(out, h.counts[j]);
    }
    out += "]}";
  }
  out += s.histograms.empty() ? "],\n" : "\n  ],\n";

  const std::size_t embedded =
      s.trace.size() < max_trace_events ? s.trace.size() : max_trace_events;
  out += "  \"trace\": {\n    \"emitted\": ";
  append_u64(out, s.trace_emitted);
  out += ",\n    \"retained\": ";
  append_u64(out, s.trace.size());
  out += ",\n    \"events\": [";
  for (std::size_t i = 0; i < embedded; ++i) {
    const auto& e = s.trace[i];
    out += i == 0 ? "\n" : ",\n";
    out += "      {\"ring\": ";
    append_u64(out, e.ring);
    out += ", \"seq\": ";
    append_u64(out, e.seq);
    out += ", \"kind\": \"";
    out += trace_kind_name(e.kind);
    out += "\", \"a\": ";
    append_u64(out, e.a);
    out += ", \"b\": ";
    append_u64(out, e.b);
    out += "}";
  }
  out += embedded == 0 ? "]\n" : "\n    ]\n";
  out += "  }\n}\n";
  return out;
}

void write_json_file(const Snapshot& s, std::string_view source,
                     const std::string& path, std::size_t max_trace_events) {
  const std::string doc = to_json(s, source, max_trace_events);
  std::FILE* f = std::fopen(path.c_str(), "w");
  OM_CHECK_MSG(f != nullptr, "cannot open metrics json for writing");
  const std::size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  const int rc = std::fclose(f);
  OM_CHECK_MSG(written == doc.size() && rc == 0, "metrics json write failed");
}

}  // namespace overmatch::obs
