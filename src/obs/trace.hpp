// obs:: protocol trace — a per-thread, lock-free ring buffer of protocol
// events (the event taxonomy of DESIGN.md §9).
//
// Each ring has a single producer (the owning thread) and is read only by
// Registry::snapshot(). emit() is two relaxed stores and one release store;
// there is no lock, no allocation, and no contention between threads (each
// thread writes its own ring). The ring overwrites its oldest entries once
// full — traces are a diagnosis window, not an unbounded log — and the total
// emitted count is kept so truncation is always visible.
//
// A concurrent snapshot is race-free (all slot fields are atomics) and
// *consistent per slot* via a per-slot sequence check: a slot is accepted
// only when the sequence stored with the payload matches the expected value,
// so a half-overwritten slot is skipped rather than misreported. Snapshots
// taken at quiescence (after a runtime joined its workers — the normal case)
// are exact.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

namespace overmatch::obs {

/// Protocol event taxonomy. Values are stable (they appear in the JSON
/// export); extend at the end only.
enum class TraceKind : std::uint16_t {
  kMessage = 0,       ///< generic wire message (unclassified kind)
  kProposal = 1,      ///< PROP sent (LID bidding / b-suitor bid)
  kRejection = 2,     ///< REJ sent
  kAck = 3,           ///< reliable-delivery acknowledgement sent
  kLock = 4,          ///< edge locked (mutual proposal)
  kDisplacement = 5,  ///< a bid knocked out a weaker suitor
  kRetransmit = 6,    ///< reliable-delivery retransmission
  kDrop = 7,          ///< message lost by the (lossy) network
  kRepairRound = 8,   ///< churn repair pass (b = edges added)
  kChurnLeave = 9,    ///< node left the overlay
  kChurnJoin = 10,    ///< node (re)joined the overlay
  kTimer = 11,        ///< timer armed (self-delivery scheduled)
};

[[nodiscard]] constexpr const char* trace_kind_name(TraceKind k) noexcept {
  switch (k) {
    case TraceKind::kMessage: return "msg";
    case TraceKind::kProposal: return "prop";
    case TraceKind::kRejection: return "rej";
    case TraceKind::kAck: return "ack";
    case TraceKind::kLock: return "lock";
    case TraceKind::kDisplacement: return "displace";
    case TraceKind::kRetransmit: return "retransmit";
    case TraceKind::kDrop: return "drop";
    case TraceKind::kRepairRound: return "repair";
    case TraceKind::kChurnLeave: return "leave";
    case TraceKind::kChurnJoin: return "join";
    case TraceKind::kTimer: return "timer";
  }
  return "?";
}

/// One collected event. `ring` identifies the producing thread's ring (rings
/// are numbered in registration order); `seq` orders events within a ring.
/// Cross-ring ordering is undefined — real concurrency has no total order.
struct TraceEvent {
  std::uint32_t ring = 0;
  std::uint64_t seq = 0;
  TraceKind kind = TraceKind::kMessage;
  std::uint32_t a = 0;  ///< usually the acting node
  std::uint32_t b = 0;  ///< usually the peer / payload (kind-specific)
};

class TraceRing {
 public:
  /// `capacity` is rounded up to a power of two (minimum 16).
  explicit TraceRing(std::size_t capacity) {
    std::size_t cap = 16;
    while (cap < capacity) cap <<= 1;
    slots_ = std::vector<Slot>(cap);
    mask_ = cap - 1;
  }

  /// Single-producer append (the owning thread only).
  void emit(TraceKind kind, std::uint32_t a, std::uint32_t b) noexcept {
    const std::uint64_t i = head_.load(std::memory_order_relaxed);
    Slot& s = slots_[i & mask_];
    s.ab.store((static_cast<std::uint64_t>(a) << 32) | b,
               std::memory_order_relaxed);
    // seq+1 so an untouched slot (meta == 0) never matches sequence 0.
    s.meta.store(((i + 1) << 16) | static_cast<std::uint16_t>(kind),
                 std::memory_order_release);
    head_.store(i + 1, std::memory_order_release);
  }

  /// Total events ever emitted (including overwritten ones).
  [[nodiscard]] std::uint64_t emitted() const noexcept {
    return head_.load(std::memory_order_acquire);
  }

  /// Appends the retained window (oldest first) to `out`, tagging events
  /// with `ring_index`. Safe concurrently with emit(); racing slots are
  /// skipped (see file comment).
  void collect(std::uint32_t ring_index, std::vector<TraceEvent>& out) const {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t cap = mask_ + 1;
    const std::uint64_t start = head > cap ? head - cap : 0;
    for (std::uint64_t i = start; i < head; ++i) {
      const Slot& s = slots_[i & mask_];
      const std::uint64_t meta = s.meta.load(std::memory_order_acquire);
      if ((meta >> 16) != i + 1) continue;  // overwritten or mid-write
      const std::uint64_t ab = s.ab.load(std::memory_order_relaxed);
      TraceEvent ev;
      ev.ring = ring_index;
      ev.seq = i;
      ev.kind = static_cast<TraceKind>(meta & 0xffff);
      ev.a = static_cast<std::uint32_t>(ab >> 32);
      ev.b = static_cast<std::uint32_t>(ab & 0xffffffffu);
      out.push_back(ev);
    }
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

 private:
  struct Slot {
    std::atomic<std::uint64_t> meta{0};  ///< (seq+1) << 16 | kind
    std::atomic<std::uint64_t> ab{0};    ///< a << 32 | b
  };
  std::vector<Slot> slots_;
  std::uint64_t mask_ = 0;
  std::atomic<std::uint64_t> head_{0};
};

}  // namespace overmatch::obs
