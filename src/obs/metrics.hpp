// obs:: metric primitives — the handle types recording sites hold.
//
// A handle (Counter, Gauge, Timer, Histogram) is a trivially-copyable pointer
// to an atomic cell owned by a Registry. A default-constructed handle is
// *disengaged*: every operation on it is a no-op, so call sites obtained
// through the null-tolerant helpers in registry.hpp need no branching of
// their own. All mutations are relaxed atomics — metrics never order other
// memory operations.
//
// Hot-path discipline (enforced by convention, benchmarked by E19): inner
// loops accumulate into plain locals and flush into a handle once per run or
// per phase. The per-operation cost of the disabled path is therefore a
// handful of null checks per *run*, not per edge or per message.
//
// Compile-out mode: building with -DOVERMATCH_OBS_DISABLED turns every
// recording operation into an empty inline body (handles still exist so call
// sites compile unchanged); registries then produce empty snapshots.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <vector>

namespace overmatch::obs {

#if defined(OVERMATCH_OBS_DISABLED)
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

namespace detail {

struct CounterCell {
  std::atomic<std::uint64_t> value{0};
};

struct GaugeCell {
  std::atomic<double> value{0.0};
};

struct TimerCell {
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> total_ns{0};
  std::atomic<std::uint64_t> min_ns{std::numeric_limits<std::uint64_t>::max()};
  std::atomic<std::uint64_t> max_ns{0};
};

struct HistogramCell {
  explicit HistogramCell(std::vector<double> upper_bounds)
      : bounds(std::move(upper_bounds)), counts(bounds.size() + 1) {}
  const std::vector<double> bounds;  ///< ascending upper bounds; last bucket open
  std::vector<std::atomic<std::uint64_t>> counts;
};

}  // namespace detail

/// Monotonic event count.
class Counter {
 public:
  Counter() = default;
  void inc(std::uint64_t delta = 1) const noexcept {
    if (kObsEnabled && cell_ != nullptr) {
      cell_->value.fetch_add(delta, std::memory_order_relaxed);
    }
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return cell_ != nullptr ? cell_->value.load(std::memory_order_relaxed) : 0;
  }
  [[nodiscard]] bool engaged() const noexcept { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Last-write-wins instantaneous value (peaks, sizes, ratios).
class Gauge {
 public:
  Gauge() = default;
  void set(double v) const noexcept {
    if (kObsEnabled && cell_ != nullptr) {
      cell_->value.store(v, std::memory_order_relaxed);
    }
  }
  void add(double delta) const noexcept {
    if (!kObsEnabled || cell_ == nullptr) return;
    double cur = cell_->value.load(std::memory_order_relaxed);
    while (!cell_->value.compare_exchange_weak(cur, cur + delta,
                                               std::memory_order_relaxed)) {
    }
  }
  /// Raise to `v` if `v` exceeds the stored value (high-water marks).
  void set_max(double v) const noexcept {
    if (!kObsEnabled || cell_ == nullptr) return;
    double cur = cell_->value.load(std::memory_order_relaxed);
    while (cur < v && !cell_->value.compare_exchange_weak(
                          cur, v, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const noexcept {
    return cell_ != nullptr ? cell_->value.load(std::memory_order_relaxed) : 0.0;
  }
  [[nodiscard]] bool engaged() const noexcept { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Accumulated duration spans: count, total, min, max.
class Timer {
 public:
  Timer() = default;
  void record(std::chrono::nanoseconds d) const noexcept {
    if (!kObsEnabled || cell_ == nullptr) return;
    const auto ns = static_cast<std::uint64_t>(d.count() < 0 ? 0 : d.count());
    cell_->count.fetch_add(1, std::memory_order_relaxed);
    cell_->total_ns.fetch_add(ns, std::memory_order_relaxed);
    auto lo = cell_->min_ns.load(std::memory_order_relaxed);
    while (ns < lo && !cell_->min_ns.compare_exchange_weak(
                          lo, ns, std::memory_order_relaxed)) {
    }
    auto hi = cell_->max_ns.load(std::memory_order_relaxed);
    while (ns > hi && !cell_->max_ns.compare_exchange_weak(
                          hi, ns, std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return cell_ != nullptr ? cell_->count.load(std::memory_order_relaxed) : 0;
  }
  [[nodiscard]] bool engaged() const noexcept { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Timer(detail::TimerCell* cell) : cell_(cell) {}
  detail::TimerCell* cell_ = nullptr;
};

/// Fixed-bucket histogram: bucket i counts observations <= bounds[i]; the
/// final bucket is open-ended. Bucket count is fixed at registration.
class Histogram {
 public:
  Histogram() = default;
  void observe(double v) const noexcept {
    if (!kObsEnabled || cell_ == nullptr) return;
    std::size_t i = 0;
    while (i < cell_->bounds.size() && v > cell_->bounds[i]) ++i;
    cell_->counts[i].fetch_add(1, std::memory_order_relaxed);
  }
  [[nodiscard]] bool engaged() const noexcept { return cell_ != nullptr; }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

/// RAII phase span: records the elapsed monotonic time into a Timer on
/// destruction (or on an early stop()). A disengaged Timer makes the whole
/// span a no-op apart from two clock reads.
class ScopedTimer {
 public:
  explicit ScopedTimer(Timer timer) noexcept
      : timer_(timer), start_(std::chrono::steady_clock::now()) {}
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;
  ~ScopedTimer() { stop(); }

  /// Record now instead of at scope exit; idempotent.
  void stop() noexcept {
    if (stopped_) return;
    stopped_ = true;
    timer_.record(std::chrono::duration_cast<std::chrono::nanoseconds>(
        std::chrono::steady_clock::now() - start_));
  }

 private:
  Timer timer_;
  std::chrono::steady_clock::time_point start_;
  bool stopped_ = false;
};

}  // namespace overmatch::obs
