// Approximation certificates: the paper's proven bounds as executable
// numbers, plus per-instance ratio certificates against upper bounds.
#pragma once

#include "matching/matching.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"

namespace overmatch::core {

/// Lemma 1 / Theorem 1 factor: ½ (1 + 1/b_max).
[[nodiscard]] double theorem1_bound(std::uint32_t b_max);

/// Theorem 2 factor for the weighted matching: ½.
[[nodiscard]] constexpr double theorem2_bound() noexcept { return 0.5; }

/// Theorem 3 factor for maximizing satisfaction: ¼ (1 + 1/b_max).
[[nodiscard]] double theorem3_bound(std::uint32_t b_max);

/// Everything needed to audit one solved instance without re-running OPT.
struct Certificate {
  double weight = 0.0;             ///< w(M)
  double upper_bound = 0.0;        ///< min of the weight upper bounds
  double ratio_lower_bound = 0.0;  ///< w(M)/UB ≤ true ratio w(M)/w(M*)
  bool half_certificate = false;   ///< structural ½-approximation witness
  double theorem2 = 0.5;
  double theorem3 = 0.0;           ///< satisfaction bound for this instance
};

/// Builds the certificate for a matching under the paper's weights.
[[nodiscard]] Certificate certify(const prefs::PreferenceProfile& profile,
                                  const prefs::EdgeWeights& w,
                                  const matching::Matching& m);

}  // namespace overmatch::core
