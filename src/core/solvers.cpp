#include "core/solvers.hpp"

#include "obs/registry.hpp"
#include "matching/baselines.hpp"
#include "matching/bsuitor.hpp"
#include "matching/dynamic_bsuitor.hpp"
#include "matching/exact.hpp"
#include "matching/local_search.hpp"
#include "matching/lic.hpp"
#include "matching/lid.hpp"
#include "matching/metrics.hpp"
#include "matching/parallel_bsuitor.hpp"
#include "matching/parallel_local.hpp"
#include "matching/verify.hpp"

namespace overmatch::core {

const char* algorithm_name(Algorithm a) {
  switch (a) {
    case Algorithm::kLidDes: return "lid";
    case Algorithm::kLidThreaded: return "lid-threaded";
    case Algorithm::kLicGlobal: return "lic";
    case Algorithm::kLicLocal: return "lic-local";
    case Algorithm::kParallelLocal: return "parallel";
    case Algorithm::kBSuitor: return "bsuitor";
    case Algorithm::kParallelBSuitor: return "parallel-bsuitor";
    case Algorithm::kDynamicBSuitor: return "dynamic-bsuitor";
    case Algorithm::kLidLocalSearch: return "lid+ls";
    case Algorithm::kRandomGreedy: return "random-greedy";
    case Algorithm::kMutualBest: return "mutual-best";
    case Algorithm::kBestReply: return "best-reply";
    case Algorithm::kExactWeight: return "exact-weight";
    case Algorithm::kExactSat: return "exact-sat";
  }
  return "?";
}

Algorithm algorithm_by_name(const std::string& name) {
  const auto a = try_algorithm_by_name(name);
  OM_CHECK_MSG(a.has_value(), "unknown algorithm name");
  return *a;
}

std::optional<Algorithm> try_algorithm_by_name(const std::string& name) {
  for (const Algorithm a : all_algorithms()) {
    if (name == algorithm_name(a)) return a;
  }
  return std::nullopt;
}

const char* algorithm_names() {
  static const std::string joined = [] {
    std::string s;
    for (const Algorithm a : all_algorithms()) {
      if (!s.empty()) s += '|';
      s += algorithm_name(a);
    }
    return s;
  }();
  return joined.c_str();
}

const std::vector<Algorithm>& all_algorithms() {
  static const std::vector<Algorithm> kAll = {
      Algorithm::kLicGlobal,      Algorithm::kLicLocal,
      Algorithm::kParallelLocal,  Algorithm::kBSuitor,
      Algorithm::kParallelBSuitor, Algorithm::kDynamicBSuitor,
      Algorithm::kLidDes,         Algorithm::kLidThreaded,
      Algorithm::kLidLocalSearch, Algorithm::kRandomGreedy,
      Algorithm::kMutualBest,     Algorithm::kBestReply,
      Algorithm::kExactWeight,    Algorithm::kExactSat,
  };
  return kAll;
}

namespace {

matching::LidOptions lid_options(const SolveOptions& options,
                                 matching::LidRuntime runtime,
                                 obs::Registry& reg) {
  matching::LidOptions lopt;
  // Copy the whole shared context (seed, threads, pool, budget), then point
  // the registry at the solve-level one.
  static_cast<RunContext&>(lopt) = options;
  lopt.runtime = runtime;
  lopt.schedule = options.schedule;
  lopt.loss_rate = options.loss_rate;
  lopt.registry = &reg;
  return lopt;
}

SolveResult solve_impl(const prefs::PreferenceProfile& profile,
                       const prefs::EdgeWeights& w, Algorithm a,
                       const SolveOptions& options, obs::Registry& reg) {
  reg.set_label("algo", algorithm_name(a));
  const auto& quotas = profile.quotas();
  matching::Matching m(profile.graph(), quotas);
  std::size_t messages = 0;
  std::size_t retransmissions = 0;
  bool converged = true;
  BudgetStatus anytime;
  {
    obs::ScopedTimer match_timer(reg.timer("phase.match"));
    switch (a) {
      case Algorithm::kLidDes: {
        auto r = matching::run_lid(
            w, quotas, lid_options(options, matching::LidRuntime::kEventSim, reg));
        m = std::move(r.matching);
        messages = r.stats.total_sent;
        retransmissions = r.retransmissions;
        anytime = {r.rounds_used, r.truncated};
        break;
      }
      case Algorithm::kLidThreaded: {
        auto r = matching::run_lid(
            w, quotas, lid_options(options, matching::LidRuntime::kThreaded, reg));
        m = std::move(r.matching);
        messages = r.stats.total_sent;
        retransmissions = r.retransmissions;
        anytime = {r.rounds_used, r.truncated};
        break;
      }
      case Algorithm::kLicGlobal:
        m = matching::lic_global(w, quotas);
        break;
      case Algorithm::kLicLocal:
        m = matching::lic_local(w, quotas, options.seed, &reg);
        break;
      case Algorithm::kParallelLocal:
        m = options.pool != nullptr
                ? matching::parallel_local_dominant(w, quotas, *options.pool, &reg)
                : matching::parallel_local_dominant(w, quotas, options.threads, &reg);
        break;
      case Algorithm::kBSuitor:
        m = matching::b_suitor(w, quotas, &reg, options.budget, &anytime);
        break;
      case Algorithm::kParallelBSuitor:
        m = options.pool != nullptr
                ? matching::parallel_b_suitor(w, quotas, *options.pool, &reg,
                                              options.budget, &anytime)
                : matching::parallel_b_suitor(w, quotas, options.threads, &reg,
                                              options.budget, &anytime);
        break;
      case Algorithm::kDynamicBSuitor:
        m = matching::DynamicBSuitor(w, quotas, &reg).matching();
        break;
      case Algorithm::kLidLocalSearch: {
        auto r = matching::run_lid(
            w, quotas, lid_options(options, matching::LidRuntime::kEventSim, reg));
        m = std::move(r.matching);
        messages = r.stats.total_sent;
        retransmissions = r.retransmissions;
        anytime = {r.rounds_used, r.truncated};
        // Local search improves any valid b-matching, truncated or not.
        (void)matching::improve_satisfaction(profile, m);
        break;
      }
      case Algorithm::kRandomGreedy:
        m = matching::random_order_greedy(w, quotas, options.seed);
        break;
      case Algorithm::kMutualBest:
        m = matching::rank_mutual_best(profile);
        break;
      case Algorithm::kBestReply: {
        auto r = matching::best_reply_dynamics(profile, options.seed,
                                               options.best_reply_max_steps);
        m = std::move(r.matching);
        converged = r.converged;
        break;
      }
      case Algorithm::kExactWeight:
        m = matching::exact_max_weight_bmatching(w, quotas);
        break;
      case Algorithm::kExactSat:
        m = matching::exact_max_satisfaction(profile);
        break;
    }
  }
  SolveResult out{std::move(m), 0.0, 0.0, 0.0, messages, retransmissions,
                  converged, anytime.truncated, anytime.rounds_used, {}};
  {
    obs::ScopedTimer metrics_timer(reg.timer("phase.metrics"));
    out.weight = out.matching.total_weight(w);
    out.satisfaction = matching::total_satisfaction(profile, out.matching);
    out.satisfaction_modified =
        matching::total_satisfaction_modified(profile, out.matching);
  }
  if (options.budget.limited()) {
    // Anytime gauges (DESIGN.md §14): rounds actually spent, whether the
    // budget bit, the quality reached, and — for truncated runs — how far
    // from the greedy fixed point the partial matching still is. A run that
    // reached its fixed point within budget has zero blocking edges by the
    // greedy post-condition, so the O(m) sweep is only paid when truncated.
    reg.gauge("anytime.rounds_used").set(static_cast<double>(out.rounds_used));
    reg.gauge("anytime.truncated").set(out.truncated ? 1.0 : 0.0);
    reg.gauge("anytime.satisfaction").set(out.satisfaction);
    reg.gauge("anytime.blocking_edges")
        .set(out.truncated ? static_cast<double>(
                                 matching::count_blocking_edges(out.matching, w))
                           : 0.0);
  }
  out.metrics = reg.snapshot();
  return out;
}

}  // namespace

SolveResult solve(const prefs::PreferenceProfile& profile, Algorithm a,
                  const SolveOptions& options, const prefs::EdgeWeights* w) {
  obs::Registry owned;
  obs::Registry& reg = options.registry != nullptr ? *options.registry : owned;
  std::optional<prefs::EdgeWeights> built;
  if (w == nullptr) {
    obs::ScopedTimer build_timer(reg.timer("phase.weights_build"));
    built.emplace(prefs::paper_weights(profile, options.pool));
    w = &*built;
  }
  return solve_impl(profile, *w, a, options, reg);
}

}  // namespace overmatch::core
