#include "core/certificates.hpp"

#include <algorithm>

#include "matching/bounds.hpp"
#include "matching/verify.hpp"

namespace overmatch::core {

double theorem1_bound(std::uint32_t b_max) {
  OM_CHECK(b_max >= 1);
  return 0.5 * (1.0 + 1.0 / static_cast<double>(b_max));
}

double theorem3_bound(std::uint32_t b_max) {
  OM_CHECK(b_max >= 1);
  return 0.25 * (1.0 + 1.0 / static_cast<double>(b_max));
}

Certificate certify(const prefs::PreferenceProfile& profile,
                    const prefs::EdgeWeights& w, const matching::Matching& m) {
  Certificate c;
  c.weight = m.total_weight(w);
  const double ub1 = matching::half_top_quota_bound(w, profile.quotas());
  const double ub2 = matching::top_edges_bound(w, profile.quotas());
  c.upper_bound = std::min(ub1, ub2);
  c.ratio_lower_bound = c.upper_bound > 0.0 ? c.weight / c.upper_bound : 1.0;
  c.half_certificate = matching::has_half_approx_certificate(m, w);
  c.theorem3 = theorem3_bound(profile.max_quota());
  return c;
}

}  // namespace overmatch::core
