// High-level solver facade: one entry point over every algorithm in the
// library, returning the matching together with its quality metrics. This is
// the API the examples and most benches drive.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "matching/matching.hpp"
#include "obs/snapshot.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"
#include "sim/event_sim.hpp"

namespace overmatch::util {
class ThreadPool;
}

namespace overmatch::obs {
class Registry;
}

namespace overmatch::core {

enum class Algorithm : std::uint8_t {
  kLidDes,         ///< distributed LID under the discrete-event simulator
  kLidThreaded,    ///< distributed LID on the threaded actor runtime
  kLicGlobal,      ///< centralized LIC, global-sort engine
  kLicLocal,       ///< centralized LIC, local-dominance engine
  kParallelLocal,  ///< shared-memory parallel local dominance
  kBSuitor,        ///< b-suitor bidding (modern comparator; same output)
  kParallelBSuitor,///< lock-free parallel b-suitor (CAS on packed suitor slots)
  kDynamicBSuitor, ///< stateful dynamic b-suitor engine (static build here;
                   ///< same output — the engine's value is under churn)
  kLidLocalSearch, ///< LID followed by true-objective local search
  kRandomGreedy,   ///< random-order maximal greedy (baseline)
  kMutualBest,     ///< rank-based mutual-best rounds (baseline, Gai et al.)
  kBestReply,      ///< blocking-pair dynamics (baseline, Mathieu)
  kExactWeight,    ///< exact max-weight b-matching (small instances)
  kExactSat,       ///< exact max-satisfaction b-matching (tiny instances)
};

[[nodiscard]] const char* algorithm_name(Algorithm a);
/// Aborts on an unknown name; CLIs should prefer try_algorithm_by_name and
/// print algorithm_names() on failure (the friendly-error contract).
[[nodiscard]] Algorithm algorithm_by_name(const std::string& name);
[[nodiscard]] std::optional<Algorithm> try_algorithm_by_name(
    const std::string& name);
/// '|'-separated list of every registered algorithm name, for error text.
[[nodiscard]] const char* algorithm_names();
/// All algorithms, cheap-to-expensive.
[[nodiscard]] const std::vector<Algorithm>& all_algorithms();

struct SolveOptions {
  std::uint64_t seed = 1;
  sim::Schedule schedule = sim::Schedule::kRandomOrder;
  std::size_t threads = 2;
  std::size_t best_reply_max_steps = 100000;
  /// i.i.d. wire-message drop probability for the distributed LID runtimes
  /// (loss > 0 composes every node with the reliable-delivery adapter).
  /// Ignored by the centralized/shared-memory algorithms.
  double loss_rate = 0.0;
  /// Optional pool for the construction pipeline (weight build in solve())
  /// and the shared-memory parallel engines. nullptr — the default —
  /// preserves the single-threaded construction path exactly; the solver
  /// does not take ownership.
  util::ThreadPool* pool = nullptr;
  /// Optional caller-owned metrics registry. When null the solver owns a
  /// private registry for the duration of the call; either way
  /// SolveResult::metrics carries the final snapshot (phase timers, runtime
  /// message series, matcher counters).
  obs::Registry* registry = nullptr;
};

struct SolveResult {
  matching::Matching matching;
  double weight = 0.0;               ///< Σ eq.-9 weight of selected edges
  double satisfaction = 0.0;         ///< Σ S_i (eq. 1)
  double satisfaction_modified = 0.0;///< Σ S̄_i (eq. 6)
  std::size_t messages = 0;          ///< protocol messages (0 for centralized)
  std::size_t retransmissions = 0;   ///< reliable-adapter resends (lossy LID)
  bool converged = true;             ///< false only for capped best-reply runs
  obs::Snapshot metrics;             ///< always populated (see SolveOptions)
};

/// Runs `a` on (profile, eq.-9 weights) and reports every quality metric.
[[nodiscard]] SolveResult solve(const prefs::PreferenceProfile& profile, Algorithm a,
                                const SolveOptions& options = {});

/// Same, but with caller-supplied weights (for weight-design ablations;
/// exact-satisfaction ignores the weights). Satisfaction metrics always come
/// from `profile`.
[[nodiscard]] SolveResult solve_with_weights(const prefs::PreferenceProfile& profile,
                                             const prefs::EdgeWeights& w, Algorithm a,
                                             const SolveOptions& options = {});

}  // namespace overmatch::core
