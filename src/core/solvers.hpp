// High-level solver facade: one entry point over every algorithm in the
// library, returning the matching together with its quality metrics. This is
// the API the examples and most benches drive.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/budget.hpp"
#include "matching/matching.hpp"
#include "obs/snapshot.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"
#include "sim/event_sim.hpp"

namespace overmatch::util {
class ThreadPool;
}

namespace overmatch::obs {
class Registry;
}

namespace overmatch::core {

enum class Algorithm : std::uint8_t {
  kLidDes,         ///< distributed LID under the discrete-event simulator
  kLidThreaded,    ///< distributed LID on the threaded actor runtime
  kLicGlobal,      ///< centralized LIC, global-sort engine
  kLicLocal,       ///< centralized LIC, local-dominance engine
  kParallelLocal,  ///< shared-memory parallel local dominance
  kBSuitor,        ///< b-suitor bidding (modern comparator; same output)
  kParallelBSuitor,///< lock-free parallel b-suitor (CAS on packed suitor slots)
  kDynamicBSuitor, ///< stateful dynamic b-suitor engine (static build here;
                   ///< same output — the engine's value is under churn)
  kLidLocalSearch, ///< LID followed by true-objective local search
  kRandomGreedy,   ///< random-order maximal greedy (baseline)
  kMutualBest,     ///< rank-based mutual-best rounds (baseline, Gai et al.)
  kBestReply,      ///< blocking-pair dynamics (baseline, Mathieu)
  kExactWeight,    ///< exact max-weight b-matching (small instances)
  kExactSat,       ///< exact max-satisfaction b-matching (tiny instances)
};

[[nodiscard]] const char* algorithm_name(Algorithm a);
/// Aborts on an unknown name; CLIs should prefer try_algorithm_by_name and
/// print algorithm_names() on failure (the friendly-error contract).
[[nodiscard]] Algorithm algorithm_by_name(const std::string& name);
[[nodiscard]] std::optional<Algorithm> try_algorithm_by_name(
    const std::string& name);
/// '|'-separated list of every registered algorithm name, for error text.
[[nodiscard]] const char* algorithm_names();
/// All algorithms, cheap-to-expensive.
[[nodiscard]] const std::vector<Algorithm>& all_algorithms();

/// Solver configuration. The shared execution context — seed, threads, pool,
/// registry, anytime budget — lives in the core::RunContext base (one place
/// for every entry point); the members here are solve()-specific knobs.
///
/// Base-field semantics for solve():
///  * seed      — schedule/loss RNG streams and engine-local randomness;
///  * threads   — worker count for the threaded runtimes / parallel engines;
///  * pool      — optional pool for the construction pipeline (weight build
///                in solve()) and the shared-memory parallel engines;
///                nullptr preserves the single-threaded path exactly, the
///                solver never takes ownership;
///  * registry  — optional caller-owned metrics registry (nullptr = solver-
///                private); SolveResult::metrics carries the final snapshot
///                either way;
///  * budget    — anytime round/deadline budget, honored by the LID runtimes
///                and both b-suitor engines (DESIGN.md §14); the default
///                unlimited budget reproduces the historical behaviour
///                bit-identically.
struct SolveOptions : RunContext {
  sim::Schedule schedule = sim::Schedule::kRandomOrder;
  std::size_t best_reply_max_steps = 100000;
  /// i.i.d. wire-message drop probability for the distributed LID runtimes
  /// (loss > 0 composes every node with the reliable-delivery adapter).
  /// Ignored by the centralized/shared-memory algorithms.
  double loss_rate = 0.0;
};

struct SolveResult {
  matching::Matching matching;
  double weight = 0.0;               ///< Σ eq.-9 weight of selected edges
  double satisfaction = 0.0;         ///< Σ S_i (eq. 1)
  double satisfaction_modified = 0.0;///< Σ S̄_i (eq. 6)
  std::size_t messages = 0;          ///< protocol messages (0 for centralized)
  std::size_t retransmissions = 0;   ///< reliable-adapter resends (lossy LID)
  bool converged = true;             ///< false only for capped best-reply runs
  /// True iff SolveOptions::budget stopped the engine before its fixed
  /// point; the matching is then a valid partial b-matching (DESIGN.md §14)
  /// but carries no approximation certificate.
  bool truncated = false;
  /// Rounds the engine executed, at its own granularity (0 for engines that
  /// ignore the budget). Populated only by the budget-honoring algorithms.
  std::size_t rounds_used = 0;
  obs::Snapshot metrics;             ///< always populated (see SolveOptions)
};

/// Runs `a` on `profile` and reports every quality metric. With `w == nullptr`
/// (the default) the eq.-9 paper weights are built internally; pass caller-
/// supplied weights for weight-design ablations (exact-satisfaction ignores
/// them). Satisfaction metrics always come from `profile`.
[[nodiscard]] SolveResult solve(const prefs::PreferenceProfile& profile, Algorithm a,
                                const SolveOptions& options = {},
                                const prefs::EdgeWeights* w = nullptr);

}  // namespace overmatch::core
