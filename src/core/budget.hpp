// Anytime solving budgets (DESIGN.md §14).
//
// A Budget bounds how much work a solver may spend before returning the
// current partial matching: `max_rounds` caps protocol rounds (LID) or drain
// rounds / worker sweeps (b-suitor), `deadline_ms` caps wall-clock time. An
// unlimited budget — the default — must be *passive*: engines add no RNG
// draws, no clock reads, and no ordering changes, so unbudgeted runs stay
// bit-identical to the pre-anytime behaviour (ctest-enforced).
//
// RunContext is the shared execution-context quadruple (seed, threads, pool,
// registry) plus the budget, embedded by SolveOptions, LidOptions, and
// ChurnOptions so a new knob lands in one place instead of three.
//
// Header-only with no link dependencies: every library in src/ shares the
// include root, so matching/sim/overlay can all see these types without a
// circular library edge.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <limits>

namespace overmatch::util {
class ThreadPool;
}
namespace overmatch::obs {
class Registry;
}

namespace overmatch::core {

/// Sentinel: no round cap.
inline constexpr std::size_t kUnlimitedRounds =
    std::numeric_limits<std::size_t>::max();

/// Round- and wall-clock budget for anytime solving. Default = unlimited
/// (run to the fixed point; identical to the historical behaviour).
struct Budget {
  /// Protocol/drain rounds the engine may execute. 0 is legal and returns
  /// an empty (but valid) matching. The exact granularity is per-engine:
  /// LID counts message rounds (on_start sends are round 1, replies round 2,
  /// …), sequential b-suitor counts work-queue generations, the parallel
  /// b-suitor counts per-worker block sweeps (see DESIGN.md §14).
  std::size_t max_rounds = kUnlimitedRounds;
  /// Wall-clock deadline in milliseconds, measured from the start of the
  /// engine's run; <= 0 disables the deadline. Checked at round/block/batch
  /// granularity, so overruns are bounded by one check interval, not zero.
  double deadline_ms = 0.0;

  [[nodiscard]] bool limits_rounds() const noexcept {
    return max_rounds != kUnlimitedRounds;
  }
  [[nodiscard]] bool has_deadline() const noexcept { return deadline_ms > 0.0; }
  [[nodiscard]] bool limited() const noexcept {
    return limits_rounds() || has_deadline();
  }
};

/// Armed once at run start; expired() polls the monotonic clock. A
/// default-constructed (or no-deadline) Deadline is inert: armed() is false
/// and expired() never reads the clock, keeping unbudgeted runs free of
/// timing syscalls.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  Deadline() = default;
  explicit Deadline(const Budget& b) {
    if (b.has_deadline()) {
      armed_ = true;
      at_ = Clock::now() + std::chrono::nanoseconds(static_cast<std::int64_t>(
                               b.deadline_ms * 1e6));
    }
  }

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] bool expired() const {
    return armed_ && Clock::now() >= at_;
  }

 private:
  bool armed_ = false;
  Clock::time_point at_{};
};

/// What a budgeted engine actually spent / whether it was cut short.
struct BudgetStatus {
  std::size_t rounds_used = 0;  ///< rounds (engine granularity) executed
  bool truncated = false;       ///< true iff the budget stopped the run early
};

/// Shared execution context for every solver entry point. SolveOptions,
/// LidOptions, and ChurnOptions embed this by inheritance, so existing
/// member-assignment call sites (`opt.seed = …`, `opt.pool = …`) compile
/// unchanged and new context knobs are added exactly once.
struct RunContext {
  /// Seeds schedule/loss RNG streams (and any engine-local randomness).
  std::uint64_t seed = 1;
  /// Worker count for threaded engines (ignored by sequential ones).
  std::size_t threads = 2;
  /// Optional shared thread pool (caller-owned, caller participates);
  /// nullptr keeps single-threaded construction/solving paths exact.
  util::ThreadPool* pool = nullptr;
  /// Optional caller-owned metrics registry; nullptr records nothing (or,
  /// for core::solve, a private registry backs the result snapshot).
  obs::Registry* registry = nullptr;
  /// Anytime budget; default unlimited = historical bit-identical behaviour.
  Budget budget;
};

}  // namespace overmatch::core
