// LID — Local Information-based Distributed algorithm for many-to-many
// maximum weighted matchings (paper Algorithm 1).
//
// Protocol, per node i with quota b_i:
//  * i keeps at most b_i outstanding PROP messages, sent to its neighbours in
//    decreasing edge-weight order (weights are the symmetric eq.-9 values, so
//    both endpoints agree on every comparison).
//  * An edge locks when both endpoints have proposed to each other
//    (PROP crossing or PROP answering PROP).
//  * A REJ is sent when a node has filled its quota (to every neighbour it
//    hasn't answered); receiving REJ removes the sender and triggers a
//    proposal to the next-best untried neighbour.
//  * i terminates when U_i = ∅ (everyone answered) or its quota is filled.
//
// The automaton is runtime-agnostic: the same LidNode runs under the
// discrete-event simulator (any schedule) and the threaded actor runtime, and
// by Lemmas 3–6 always produces the matching LIC produces.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/budget.hpp"
#include "matching/matching.hpp"
#include "obs/snapshot.hpp"
#include "prefs/weights.hpp"
#include "sim/agent.hpp"
#include "sim/event_sim.hpp"

namespace overmatch::obs {
class Registry;
}

namespace overmatch::matching {

/// Message kinds used by the protocol.
inline constexpr std::uint32_t kMsgProp = 1;
inline constexpr std::uint32_t kMsgRej = 2;

/// One peer's LID automaton.
class LidNode final : public sim::Agent {
 public:
  /// `self` is this node's id; `w` provides the (shared, symmetric) edge
  /// weights used only for ranking this node's own incident edges — i.e.
  /// exactly the information the paper's initial ΔS̄ exchange provides.
  LidNode(NodeId self, std::uint32_t quota, const prefs::EdgeWeights& w);

  void on_start(sim::Outbox& out) override;
  void on_message(NodeId from, const sim::Message& msg, sim::Outbox& out) override;
  [[nodiscard]] bool terminated() const override { return finished_; }

  /// Locked partners (valid once terminated; stable order of locking).
  [[nodiscard]] const std::vector<NodeId>& locked_partners() const noexcept {
    return locked_;
  }
  [[nodiscard]] NodeId id() const noexcept { return self_; }

 private:
  // Per-neighbour protocol state (paper's U/P/A/K sets, flattened).
  struct NeighborState {
    NodeId node = 0;
    bool in_u = true;       ///< still "available": no answer exchanged
    bool proposed = false;  ///< we sent PROP (set once, never cleared)
    bool outstanding = false;  ///< proposed and not yet answered (P\K membership)
    bool approached = false;   ///< they sent us PROP (set A)
    bool locked = false;       ///< connection established (set K)
  };

  [[nodiscard]] std::size_t local_index(NodeId neighbor) const;
  void top_up_proposals(sim::Outbox& out);
  void try_lock_and_finish(sim::Outbox& out);

  NodeId self_;
  std::uint32_t quota_;
  std::vector<NeighborState> nbr_;       // indexed by local index
  std::vector<NodeId> ids_sorted_;       // neighbour ids, ascending (for lookup)
  std::vector<std::size_t> by_weight_;   // local indices, heaviest edge first
  std::size_t next_candidate_ = 0;       // cursor into by_weight_
  std::uint32_t outstanding_count_ = 0;  // |P \ K|
  std::uint32_t locked_count_ = 0;       // |K|
  std::vector<NodeId> locked_;
  bool finished_ = false;
};

/// Which runtime executes the LID automata.
enum class LidRuntime : std::uint8_t {
  kEventSim,  ///< discrete-event simulator (deterministic per seed/schedule)
  kThreaded,  ///< threaded actor runtime (real OS threads)
};

[[nodiscard]] const char* lid_runtime_name(LidRuntime r);

/// One-entry-point configuration for every LID backend. The defaults
/// reproduce the paper's reliable asynchronous network under the DES.
///
/// Inherits the shared run context (core::RunContext): `seed` drives the DES
/// schedule/loss RNG and the threaded runtime's loss streams, `threads` the
/// kThreaded worker count (ignored by the DES), `registry` receives the
/// runtime's `sim.*` series, the adapter's `reliable.*` series and the
/// `lid.*` matcher counters (LidResult::metrics snapshots it), and `budget`
/// caps message rounds / wall time (DESIGN.md §14). `pool` is unused here
/// (kThreaded spawns its own OS threads).
struct LidOptions : core::RunContext {
  LidRuntime runtime = LidRuntime::kEventSim;
  /// DES message schedule. Lossy DES runs need virtual time for the
  /// retransmission timers, so a non-delay schedule is promoted to
  /// kRandomDelay when loss_rate > 0 (matching the historical lossy path).
  /// Ignored by the threaded runtime (the hardware is the schedule).
  sim::Schedule schedule = sim::Schedule::kRandomOrder;
  /// >0 drops each wire message i.i.d. with this probability and composes
  /// every node with the reliable-delivery adapter (sim/reliable.hpp).
  double loss_rate = 0.0;
  /// Engage the ACK/retransmit adapter even at loss_rate == 0 — isolates the
  /// adapter's overhead (ACK traffic, timers) from actual loss (bench E13).
  bool reliable = false;
};

/// Result of a full distributed run, for every backend.
struct LidResult {
  Matching matching;
  sim::MessageStats stats;           ///< includes ACKs/retransmits when lossy
  std::size_t retransmissions = 0;   ///< reliable-adapter resends (lossy only)
  /// True iff an anytime budget cut the run short; `matching` is then the
  /// partial (still valid, mutually-locked) b-matching reached so far.
  bool truncated = false;
  std::size_t rounds_used = 0;       ///< highest message round delivered
  obs::Snapshot metrics;             ///< populated when a registry was attached
};

/// Runs LID on the backend selected by `options` and extracts the
/// (symmetric) locked matching. By Lemmas 3–6 the matching is identical for
/// every runtime, schedule, seed, thread count, and loss rate.
[[nodiscard]] LidResult run_lid(const prefs::EdgeWeights& w, const Quotas& quotas,
                                const LidOptions& options = {});

}  // namespace overmatch::matching
