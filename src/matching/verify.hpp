// Executable correctness certificates for matchings produced by the library.
#pragma once

#include <string>

#include "matching/matching.hpp"
#include "prefs/weights.hpp"

namespace overmatch::matching {

/// Structural validity: loads within quotas, selected edges consistent with
/// connection lists. (The container enforces this on mutation; this re-checks
/// from scratch so tests don't have to trust the container.)
[[nodiscard]] bool is_valid_bmatching(const Matching& m);

/// The greedy post-condition behind Theorem 2's ½ guarantee: for every
/// unselected edge e there is an endpoint x that is saturated and whose
/// matched edges are all heavier than e (x = whichever endpoint of e
/// saturated first during the run; see Lemma 4). Any matching passing this
/// check is at least a ½-approximation.
[[nodiscard]] bool has_half_approx_certificate(const Matching& m,
                                               const prefs::EdgeWeights& w);

}  // namespace overmatch::matching
