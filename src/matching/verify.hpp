// Executable correctness certificates for matchings produced by the library.
#pragma once

#include <string>

#include "matching/matching.hpp"
#include "prefs/weights.hpp"

namespace overmatch::matching {

/// Structural validity: loads within quotas, selected edges consistent with
/// connection lists. (The container enforces this on mutation; this re-checks
/// from scratch so tests don't have to trust the container.)
[[nodiscard]] bool is_valid_bmatching(const Matching& m);

/// The greedy post-condition behind Theorem 2's ½ guarantee: for every
/// unselected edge e there is an endpoint x that is saturated and whose
/// matched edges are all heavier than e (x = whichever endpoint of e
/// saturated first during the run; see Lemma 4). Any matching passing this
/// check is at least a ½-approximation.
[[nodiscard]] bool has_half_approx_certificate(const Matching& m,
                                               const prefs::EdgeWeights& w);

/// Number of blocking edges: unselected edges wanted by BOTH endpoints (an
/// endpoint wants e when it has a free slot or e is heavier than its weakest
/// matched edge). Zero exactly at the greedy fixed point; for anytime runs
/// (DESIGN.md §14) this is the distance-from-convergence gauge of a
/// truncated partial matching. O(m + n·b) full sweep.
[[nodiscard]] std::size_t count_blocking_edges(const Matching& m,
                                               const prefs::EdgeWeights& w);

}  // namespace overmatch::matching
