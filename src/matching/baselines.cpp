#include "matching/baselines.hpp"

#include <algorithm>

namespace overmatch::matching {

Matching random_order_greedy(const prefs::EdgeWeights& w, const Quotas& quotas,
                             std::uint64_t seed) {
  const auto& g = w.graph();
  Matching m(g, quotas);
  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  util::Rng rng(seed);
  rng.shuffle(order);
  for (const EdgeId e : order) {
    if (m.can_add(e)) m.add(e);
  }
  return m;
}

Matching rank_mutual_best(const prefs::PreferenceProfile& p) {
  const auto& g = p.graph();
  Matching m(g, p.quotas());
  for (;;) {
    // Each node's best still-addable neighbour by raw rank.
    std::vector<NodeId> best(g.num_nodes(), graph::kInvalidNode);
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      if (m.residual(v) == 0) continue;
      for (const NodeId cand : p.list(v)) {  // best-first
        const EdgeId e = g.find_edge(v, cand);
        if (m.can_add(e)) {
          best[v] = cand;
          break;
        }
      }
    }
    bool locked_any = false;
    for (NodeId v = 0; v < g.num_nodes(); ++v) {
      const NodeId u = best[v];
      if (u == graph::kInvalidNode || u < v) continue;  // handle each pair once
      if (best[u] == v) {
        const EdgeId e = g.find_edge(v, u);
        if (m.can_add(e)) {
          m.add(e);
          locked_any = true;
        }
      }
    }
    if (!locked_any) return m;
  }
}

namespace {

/// j's appeal to i given matching m: acceptable if spare quota or j beats
/// i's worst partner; in the latter case the worst partner is evicted.
bool accepts(const prefs::PreferenceProfile& p, const Matching& m, NodeId i, NodeId j) {
  if (m.residual(i) > 0) return true;
  for (const NodeId cur : m.connections(i)) {
    if (p.prefers(i, j, cur)) return true;
  }
  return false;
}

NodeId worst_partner(const prefs::PreferenceProfile& p, const Matching& m, NodeId i) {
  NodeId worst = graph::kInvalidNode;
  for (const NodeId cur : m.connections(i)) {
    if (worst == graph::kInvalidNode || p.prefers(i, worst, cur)) worst = cur;
  }
  return worst;
}

}  // namespace

BestReplyResult best_reply_dynamics(const prefs::PreferenceProfile& p,
                                    std::uint64_t seed, std::size_t max_steps) {
  const auto& g = p.graph();
  util::Rng rng(seed);
  Matching m(g, p.quotas());
  std::size_t steps = 0;
  std::vector<EdgeId> blocking;
  while (steps < max_steps) {
    blocking.clear();
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (m.contains(e)) continue;
      const auto& [u, v] = g.edge(e);
      if (accepts(p, m, u, v) && accepts(p, m, v, u)) blocking.push_back(e);
    }
    if (blocking.empty()) {
      return BestReplyResult{std::move(m), steps, true};
    }
    const EdgeId e = blocking[rng.index(blocking.size())];
    const auto& [u, v] = g.edge(e);
    // Evict worst partners where needed, then satisfy the pair.
    for (const NodeId x : {u, v}) {
      if (m.residual(x) == 0) {
        const NodeId wp = worst_partner(p, m, x);
        m.remove(g.find_edge(x, wp));
      }
    }
    m.add(e);
    ++steps;
  }
  return BestReplyResult{std::move(m), steps, false};
}

}  // namespace overmatch::matching
