#include "matching/dynamic_bsuitor.hpp"

#include <chrono>

#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace overmatch::matching {
namespace {

/// Fixed buckets for the per-event repair latency, 1 µs to 1 s.
const std::vector<double> kRepairNsBuckets = {1e3, 1e4, 1e5, 1e6,
                                              1e7, 1e8, 1e9};

/// Fixed buckets for the events-per-batch histogram (powers of two: typical
/// bursts are tens to hundreds of events).
const std::vector<double> kBatchSizeBuckets = {1,  2,   4,   8,   16,  32,
                                               64, 128, 256, 512, 1024};

}  // namespace

DynamicBSuitor::DynamicBSuitor(const prefs::EdgeWeights& w, const Quotas& quotas,
                               obs::Registry* registry)
    : w_(&w),
      quotas_(&quotas),
      alive_(w.graph().num_nodes(), 1),
      edge_off_(w.graph().num_edges(), 0),
      bid_state_(w.graph().num_edges(), 0),
      suitors_(w, quotas),
      placed_(w, quotas),
      m_(w.graph(), quotas),
      pending_seek_(w.graph().num_nodes(), 0),
      pending_attract_(w.graph().num_nodes(), 0),
      touch_epoch_(w.graph().num_nodes(), 0),
      changed_epoch_(w.graph().num_nodes(), 0),
      edge_changed_epoch_(w.graph().num_edges(), 0),
      node_seen_(w.graph().num_nodes(), 0),
      node_final_(w.graph().num_nodes(), 0),
      edge_seen_(w.graph().num_edges(), 0),
      edge_final_(w.graph().num_edges(), 0),
      events_ctr_(obs::counter(registry, "dyn.events")),
      cascade_ctr_(obs::counter(registry, "dyn.cascade_len")),
      touched_ctr_(obs::counter(registry, "dyn.touched_nodes")),
      bids_ctr_(obs::counter(registry, "dyn.bids")),
      displacements_ctr_(obs::counter(registry, "dyn.displacements")),
      batches_ctr_(obs::counter(registry, "dyn.batches")),
      batch_events_ctr_(obs::counter(registry, "dyn.batch_events")),
      batch_coalesced_ctr_(obs::counter(registry, "dyn.batch_coalesced")),
      batch_parallel_ctr_(obs::counter(registry, "dyn.batch_parallel")) {
  OM_CHECK(quotas.size() == w.graph().num_nodes());
  if (registry != nullptr) {
    repair_ns_hist_ = registry->histogram("dyn.repair_ns", kRepairNsBuckets);
    batch_size_hist_ = registry->histogram("dyn.batch_size", kBatchSizeBuckets);
  }
  // Initial build: every node seeks from an empty state — the static
  // b-Suitor bidding process, so the result is the batch matching.
  begin_event();
  for (NodeId v = 0; v < w.graph().num_nodes(); ++v) queue_seek(v);
  drain();
  finish_event(/*count=*/false);
}

bool DynamicBSuitor::admits(NodeId holder, EdgeId e) const {
  return suitors_.admits(holder, suitors_.word_of(e));
}

bool DynamicBSuitor::wants(NodeId bidder, EdgeId e) const {
  // A slab at capacity deg(v) < b_v reads as "full" where the old size-based
  // check read "deficient", but then *every* incident edge is already placed
  // and no new bid is possible anyway — the divergence is unreachable on the
  // place path and harmless on the seek/attract break path.
  return placed_.admits(bidder, placed_.word_of(e));
}

void DynamicBSuitor::touch(NodeId v) {
  if (touch_epoch_[v] != epoch_) {
    touch_epoch_[v] = epoch_;
    ++last_.touched_nodes;
  }
}

void DynamicBSuitor::note_changed(NodeId v) {
  if (changed_epoch_[v] != epoch_) {
    changed_epoch_[v] = epoch_;
    changed_nodes_.push_back(v);
  }
}

void DynamicBSuitor::note_changed_edge(EdgeId e) {
  if (edge_changed_epoch_[e] != epoch_) {
    edge_changed_epoch_[e] = epoch_;
    changed_edges_.push_back(e);
  }
}

void DynamicBSuitor::matched_add(EdgeId e) {
  m_.add(e);
  weight_ += w_->weight(e);
  ++last_.matched_added;
  note_changed(w_->graph().edge(e).u);
  note_changed(w_->graph().edge(e).v);
  note_changed_edge(e);
}

void DynamicBSuitor::matched_remove(EdgeId e) {
  m_.remove(e);
  weight_ -= w_->weight(e);
  ++last_.matched_removed;
  note_changed(w_->graph().edge(e).u);
  note_changed(w_->graph().edge(e).v);
  note_changed_edge(e);
}

void DynamicBSuitor::detach_bid(NodeId bidder, NodeId holder, EdgeId e) {
  if (bid_state_[e] == (kBidFromU | kBidFromV)) matched_remove(e);
  bid_state_[e] &= static_cast<std::uint8_t>(~bid_bit(e, bidder));
  suitors_.erase(holder, e);
  placed_.erase(bidder, e);
  touch(bidder);
  touch(holder);
}

void DynamicBSuitor::place_bid(NodeId bidder, EdgeId e) {
  const NodeId holder = w_->graph().edge(e).other(bidder);
  touch(bidder);
  touch(holder);
  // One scan admits e and, when the holder is saturated, displaces its
  // weakest held bid (admits() guaranteed e beats it). The loser re-seeks a
  // replacement slot.
  const auto res = suitors_.admit_if(holder, suitors_.word_of(e));
  OM_CHECK_MSG(res.accepted, "place_bid() without admits()");
  if (res.displaced != SuitorSlab::kEmpty) {
    const EdgeId displaced = SuitorSlab::edge_of(res.displaced);
    const NodeId loser = w_->graph().edge(displaced).other(holder);
    if (bid_state_[displaced] == (kBidFromU | kBidFromV)) {
      matched_remove(displaced);
    }
    bid_state_[displaced] &=
        static_cast<std::uint8_t>(~bid_bit(displaced, loser));
    placed_.erase(loser, displaced);
    touch(loser);
    ++last_.cascade_len;
    displacements_ctr_.inc();
    queue_seek(loser);
  }
  const auto put = placed_.admit_if(bidder, placed_.word_of(e));
  OM_CHECK_MSG(put.accepted && put.displaced == SuitorSlab::kEmpty,
               "place_bid() with a saturated bidder");
  bid_state_[e] |= bid_bit(e, bidder);
  ++last_.cascade_len;
  bids_ctr_.inc();
  if (bid_state_[e] == (kBidFromU | kBidFromV)) matched_add(e);
}

void DynamicBSuitor::withdraw(NodeId bidder, EdgeId e) {
  const NodeId holder = w_->graph().edge(e).other(bidder);
  detach_bid(bidder, holder, e);
  ++last_.cascade_len;
  queue_attract(holder);
}

void DynamicBSuitor::seek(NodeId u) {
  if (alive_[u] == 0) return;
  touch(u);
  // Scan is heaviest-first, so once u stops wanting e (saturated and e no
  // heavier than its weakest placed bid) no later candidate can be wanted
  // either: u's weakest placed bid only gets heavier during the scan. Note
  // the break must be on wants(), not on saturation — after churn u can be
  // saturated with a *lighter* surviving bid while heavier candidates are
  // still admissible (the upgrade case, impossible in the monotone static
  // run).
  for (const EdgeId e : w_->incident(u)) {
    if (!wants(u, e)) break;
    const NodeId v = w_->graph().edge(e).other(u);
    if (alive_[v] == 0 || edge_off_[e] != 0 || holds_bid_from(u, e)) continue;
    if (!admits(v, e)) continue;
    if (placed_.full(u)) {
      withdraw(u, SuitorSlab::edge_of(placed_.weakest(u)));
    }
    place_bid(u, e);
  }
}

void DynamicBSuitor::attract(NodeId v) {
  if (alive_[v] == 0) return;
  touch(v);
  // Mirror image of seek(): break on admits() (monotone in the heaviest-
  // first scan — v's weakest held bid only gets heavier), not on a full
  // suitor set, so heavier candidates can still displace a lighter surviving
  // bid.
  for (const EdgeId e : w_->incident(v)) {
    if (!admits(v, e)) break;
    const NodeId x = w_->graph().edge(e).other(v);
    if (alive_[x] == 0 || edge_off_[e] != 0 || holds_bid_from(x, e)) continue;
    if (!wants(x, e)) continue;
    // x bids here; a bid-saturated x upgrades by withdrawing its weakest
    // placed bid first (strictly lighter than e by wants()), freeing a slot
    // at that bid's holder — the cascade continues from there.
    if (placed_.full(x)) {
      withdraw(x, SuitorSlab::edge_of(placed_.weakest(x)));
    }
    place_bid(x, e);
  }
}

void DynamicBSuitor::queue_seek(NodeId u) {
  if (alive_[u] == 0 || pending_seek_[u] != 0) return;
  pending_seek_[u] = 1;
  queue_.push_back({u, /*is_seek=*/true});
}

void DynamicBSuitor::queue_attract(NodeId v) {
  if (alive_[v] == 0 || pending_attract_[v] != 0) return;
  pending_attract_[v] = 1;
  queue_.push_back({v, /*is_seek=*/false});
}

void DynamicBSuitor::drain() { drain(core::Deadline()); }

void DynamicBSuitor::drain(const core::Deadline& deadline) {
  std::size_t processed = 0;
  while (queue_head_ < queue_.size()) {
    // Deadline check amortised over 32 tokens (inert when unarmed). On
    // expiry the unprocessed suffix is *kept* — tokens and their pending
    // flags — so a later drain resumes the deferred cascades; only the
    // processed prefix is compacted away. The matching/weight are valid at
    // every token boundary (each cascade step leaves mutual-bid
    // consistency), just short of the fixed point.
    if (deadline.armed() && (processed & 31) == 0 && deadline.expired()) {
      queue_.erase(queue_.begin(),
                   queue_.begin() + static_cast<std::ptrdiff_t>(queue_head_));
      queue_head_ = 0;
      truncated_ = true;
      return;
    }
    ++processed;
    const Token t = queue_[queue_head_++];
    if (t.is_seek) {
      pending_seek_[t.node] = 0;
      seek(t.node);
    } else {
      pending_attract_[t.node] = 0;
      attract(t.node);
    }
  }
  queue_.clear();
  queue_head_ = 0;
  truncated_ = false;
}

void DynamicBSuitor::begin_event() {
  ++epoch_;
  changed_nodes_.clear();
  changed_edges_.clear();
  last_ = RepairStats{};
}

void DynamicBSuitor::finish_event(bool count) {
  if (!count) return;
  events_ctr_.inc();
  cascade_ctr_.inc(last_.cascade_len);
  touched_ctr_.inc(last_.touched_nodes);
  repair_ns_hist_.observe(static_cast<double>(last_.repair_ns));
}

void DynamicBSuitor::on_node_leave(NodeId v) {
  OM_CHECK_MSG(alive(v), "on_node_leave() of an offline node");
  begin_event();
  const auto t0 = std::chrono::steady_clock::now();
  alive_[v] = 0;
  touch(v);
  note_changed(v);  // alive flip: the leaver's own S_i drops to 0
  // Bids v held: each bidder lost a placed bid and re-seeks.
  std::vector<EdgeId> held;
  suitors_.for_each(v, [&held](EdgeId e) { held.push_back(e); });
  for (const EdgeId e : held) {
    const NodeId x = w_->graph().edge(e).other(v);
    detach_bid(x, v, e);
    ++last_.cascade_len;
    queue_seek(x);
  }
  // Bids v placed: each holder freed a slot and attracts replacements.
  std::vector<EdgeId> out;
  placed_.for_each(v, [&out](EdgeId e) { out.push_back(e); });
  for (const EdgeId e : out) {
    const NodeId y = w_->graph().edge(e).other(v);
    detach_bid(v, y, e);
    ++last_.cascade_len;
    queue_attract(y);
  }
  drain();
  last_.repair_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  finish_event(/*count=*/true);
}

void DynamicBSuitor::on_node_join(NodeId v) {
  OM_CHECK_MSG(!alive(v), "on_node_join() of an online node");
  begin_event();
  const auto t0 = std::chrono::steady_clock::now();
  alive_[v] = 1;
  touch(v);
  note_changed(v);  // alive flip: v re-enters the satisfaction aggregate
  OM_CHECK(suitors_.count(v) == 0 && placed_.count(v) == 0);
  queue_seek(v);     // v starts bidding
  queue_attract(v);  // v's free slots solicit bids (including upgrades)
  drain();
  last_.repair_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  finish_event(/*count=*/true);
}

void DynamicBSuitor::on_edge_change(NodeId i, NodeId j, bool present) {
  const EdgeId e = w_->graph().find_edge(i, j);
  OM_CHECK_MSG(e != graph::kInvalidEdge, "on_edge_change() of a non-edge");
  OM_CHECK_MSG((edge_off_[e] != 0) == present, "edge state unchanged");
  begin_event();
  const auto t0 = std::chrono::steady_clock::now();
  if (!present) {
    edge_off_[e] = 1;
    touch(i);
    touch(j);
    note_changed_edge(e);
    for (const NodeId bidder : {i, j}) {
      if (!holds_bid_from(bidder, e)) continue;
      const NodeId holder = w_->graph().edge(e).other(bidder);
      detach_bid(bidder, holder, e);
      ++last_.cascade_len;
      queue_seek(bidder);
      queue_attract(holder);
    }
  } else {
    edge_off_[e] = 0;
    touch(i);
    touch(j);
    note_changed_edge(e);
    // The only new opportunity is e itself: either endpoint may now want to
    // bid across it (deficient, or upgrading over its weakest placed bid).
    for (const NodeId bidder : {i, j}) {
      const NodeId holder = w_->graph().edge(e).other(bidder);
      if (alive_[bidder] == 0 || alive_[holder] == 0) break;
      if (holds_bid_from(bidder, e)) continue;
      if (!wants(bidder, e) || !admits(holder, e)) continue;
      if (placed_.full(bidder)) {
        withdraw(bidder, SuitorSlab::edge_of(placed_.weakest(bidder)));
      }
      place_bid(bidder, e);
    }
  }
  drain();
  last_.repair_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  finish_event(/*count=*/true);
}

void DynamicBSuitor::batch_coalesce(std::span<const ChurnEvent> events) {
  batch_ = BatchStats{};
  batch_.events = events.size();
  batch_nodes_.clear();
  batch_edges_.clear();
  const auto& g = w_->graph();
  // Pass 1: replay the burst against a shadow of the node/edge flags,
  // enforcing per-event validity exactly as the per-event entry points do
  // (against the state left by the preceding events of the batch).
  for (const ChurnEvent& ev : events) {
    if (ev.is_node_event()) {
      OM_CHECK_MSG(ev.u < alive_.size(), "apply_batch(): node out of range");
      if (node_seen_[ev.u] == 0) {
        node_seen_[ev.u] = 1;
        node_final_[ev.u] = alive_[ev.u];
        batch_nodes_.push_back(ev.u);
      }
      const std::uint8_t want = ev.kind == ChurnEvent::Kind::kJoin ? 1 : 0;
      OM_CHECK_MSG(node_final_[ev.u] != want,
                   ev.kind == ChurnEvent::Kind::kJoin
                       ? "apply_batch(): join of an online node"
                       : "apply_batch(): leave of an offline node");
      node_final_[ev.u] = want;
    } else {
      const EdgeId e = g.find_edge(ev.u, ev.v);
      OM_CHECK_MSG(e != graph::kInvalidEdge,
                   "apply_batch(): edge event on a non-edge");
      if (edge_seen_[e] == 0) {
        edge_seen_[e] = 1;
        edge_final_[e] = edge_off_[e];
        batch_edges_.push_back(e);
      }
      const std::uint8_t want_off =
          ev.kind == ChurnEvent::Kind::kEdgeDown ? 1 : 0;
      OM_CHECK_MSG(edge_final_[e] != want_off,
                   "apply_batch(): edge state unchanged");
      edge_final_[e] = want_off;
    }
  }
  // Pass 2: keep only net transitions. Dropping a node that left and
  // rejoined (or an edge toggled down and back up) is sound because the
  // repaired fixed point depends only on the final (alive, edge-enabled)
  // configuration — and under the strict total weight order that fixed
  // point is unique, so it cannot remember the intermediate states.
  std::size_t kept_nodes = 0;
  for (const NodeId v : batch_nodes_) {
    node_seen_[v] = 0;
    if (node_final_[v] == alive_[v]) continue;
    batch_nodes_[kept_nodes++] = v;
    if (node_final_[v] != 0) {
      ++batch_.net_joins;
    } else {
      ++batch_.net_leaves;
    }
  }
  batch_nodes_.resize(kept_nodes);
  std::size_t kept_edges = 0;
  for (const EdgeId e : batch_edges_) {
    edge_seen_[e] = 0;
    if (edge_final_[e] == edge_off_[e]) continue;
    batch_edges_[kept_edges++] = e;
    if (edge_final_[e] != 0) {
      ++batch_.net_edges_down;
    } else {
      ++batch_.net_edges_up;
    }
  }
  batch_edges_.resize(kept_edges);
  batch_.coalesced = batch_.events - (kept_nodes + kept_edges);
}

void DynamicBSuitor::batch_teardown() {
  const auto& g = w_->graph();
  // Phase 1: leavers and netted-down edges go dark first, so no cascade in
  // this batch can ever route a bid through them.
  for (const NodeId v : batch_nodes_) {
    if (node_final_[v] != 0) continue;
    alive_[v] = 0;
    touch(v);
    note_changed(v);  // alive flip is reader-visible state
  }
  for (const EdgeId e : batch_edges_) {
    if (edge_final_[e] == 0) continue;
    edge_off_[e] = 1;
    touch(g.edge(e).u);
    touch(g.edge(e).v);
    note_changed_edge(e);
  }
  // Phase 2: detach every invalidated bid and queue the union of repair
  // frontiers. Leavers first; a dead edge whose bid went down with a leaver
  // is skipped by the holds_bid_from() re-check (no double detach).
  std::vector<EdgeId> snapshot;
  for (const NodeId v : batch_nodes_) {
    if (node_final_[v] != 0) continue;
    snapshot.clear();
    suitors_.for_each(v, [&snapshot](EdgeId e) { snapshot.push_back(e); });
    for (const EdgeId e : snapshot) {
      const NodeId x = g.edge(e).other(v);
      detach_bid(x, v, e);
      ++last_.cascade_len;
      queue_seek(x);
    }
    snapshot.clear();
    placed_.for_each(v, [&snapshot](EdgeId e) { snapshot.push_back(e); });
    for (const EdgeId e : snapshot) {
      const NodeId y = g.edge(e).other(v);
      detach_bid(v, y, e);
      ++last_.cascade_len;
      queue_attract(y);
    }
  }
  for (const EdgeId e : batch_edges_) {
    if (edge_final_[e] == 0) continue;
    const auto& [i, j] = g.edge(e);
    for (const NodeId bidder : {i, j}) {
      if (!holds_bid_from(bidder, e)) continue;
      const NodeId holder = g.edge(e).other(bidder);
      detach_bid(bidder, holder, e);
      ++last_.cascade_len;
      queue_seek(bidder);
      queue_attract(holder);
    }
  }
  // Phase 3: new capacity comes online. A joiner was offline at batch start
  // (coalescing guarantees a *net* join), so it holds no bids; likewise a
  // netted-up edge was disabled and carries none. Unlike the single-event
  // enable fast path, batch repair just queues both endpoints of a fresh
  // edge: seek/attract are no-ops at the fixed point, so the outcome is the
  // same and the O(degree) scans amortize across the burst.
  for (const NodeId v : batch_nodes_) {
    if (node_final_[v] == 0) continue;
    alive_[v] = 1;
    touch(v);
    note_changed(v);
    OM_CHECK(suitors_.count(v) == 0 && placed_.count(v) == 0);
    queue_seek(v);
    queue_attract(v);
  }
  for (const EdgeId e : batch_edges_) {
    if (edge_final_[e] != 0) continue;
    edge_off_[e] = 0;
    const auto& [i, j] = g.edge(e);
    touch(i);
    touch(j);
    note_changed_edge(e);
    queue_seek(i);
    queue_attract(i);
    queue_seek(j);
    queue_attract(j);
  }
}

void DynamicBSuitor::finish_batch() {
  events_ctr_.inc(batch_.events);
  cascade_ctr_.inc(last_.cascade_len);
  touched_ctr_.inc(last_.touched_nodes);
  repair_ns_hist_.observe(static_cast<double>(last_.repair_ns));
  batches_ctr_.inc();
  batch_events_ctr_.inc(batch_.events);
  batch_coalesced_ctr_.inc(batch_.coalesced);
  if (batch_.workers > 1) batch_parallel_ctr_.inc();
  batch_size_hist_.observe(static_cast<double>(batch_.events));
}

void DynamicBSuitor::apply_batch(std::span<const ChurnEvent> events,
                                 util::ThreadPool* pool,
                                 const core::Deadline& deadline) {
  batch_coalesce(events);
  begin_event();
  const auto t0 = std::chrono::steady_clock::now();
  batch_teardown();
  // Frontier size = distinct queued nodes (reusing the coalesce marks,
  // which batch_coalesce left clear). Includes tokens deferred by an
  // earlier truncated drain — they are this batch's catch-up work.
  for (const Token& t : queue_) {
    if (node_seen_[t.node] == 0) {
      node_seen_[t.node] = 1;
      ++batch_.frontier;
    }
  }
  for (const Token& t : queue_) node_seen_[t.node] = 0;
  if (deadline.armed()) {
    // Deadline-budgeted repair drains sequentially: the frontier-parallel
    // path has no preemption points, and a deterministic cut keeps the
    // deferred suffix well-defined.
    batch_.workers = 1;
    drain(deadline);
  } else if (pool != nullptr && pool->size() > 0 && !queue_.empty()) {
    parallel_drain(*pool);
    truncated_ = false;  // parallel repair always runs to the fixed point
  } else {
    batch_.workers = 1;
    drain();
  }
  last_.repair_ns = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
  finish_batch();
}

}  // namespace overmatch::matching
