// Shared-memory parallel b-matching via mirror-pointer local dominance
// (Manne–Bisseling style), the hpc-parallel counterpart of LIC/LID.
//
// Synchronized rounds: (1) every *active* node computes, in parallel, a
// pointer to its heaviest still-addable incident edge; (2) every edge whose
// two endpoints both point at it (a "mirrored" = locally heaviest edge) is
// selected. Selections per round are endpoint-disjoint by construction, so
// the phase is race-free. Rounds repeat until no pointer is mirrored, which
// happens exactly when the matching is maximal.
//
// Performance architecture (DESIGN.md §7): instead of rescanning all n nodes
// per round, an active-node frontier tracks exactly the nodes whose top
// pointer may have been invalidated by the previous round's selections
// (selection endpoints, plus all neighbours of endpoints that saturated).
// Mirrored picks are collected into per-chunk buffers handed out by
// ThreadPool::parallel_for_chunks and merged sequentially — no pick mutex.
// Candidate edges come pre-sorted from the EdgeWeights incidence index, so
// no per-run adjacency copies or sorts are made.
//
// With unique weights this computes the same matching as LIC and LID
// (verified by tests and bench E5) — an executable witness that the paper's
// locally-heaviest selection rule parallelizes.
#pragma once

#include <cstddef>

#include "matching/matching.hpp"
#include "prefs/weights.hpp"

namespace overmatch::util {
class ThreadPool;
}

namespace overmatch::obs {
class Registry;
}

namespace overmatch::matching {

/// Runs the parallel matcher on `threads` workers (spawns a pool for the
/// call). `registry` (optional, caller-owned) receives the
/// `parallel.rounds` counter (synchronized rounds until fixpoint).
[[nodiscard]] Matching parallel_local_dominant(const prefs::EdgeWeights& w,
                                               const Quotas& quotas,
                                               std::size_t threads,
                                               obs::Registry* registry = nullptr);

/// Same, on a caller-owned pool — lets repeated solves (benches, the
/// pipeline) reuse one set of workers instead of spawning threads per run.
[[nodiscard]] Matching parallel_local_dominant(const prefs::EdgeWeights& w,
                                               const Quotas& quotas,
                                               util::ThreadPool& pool,
                                               obs::Registry* registry = nullptr);

}  // namespace overmatch::matching
