// Upper-bound certificates for the optimal b-matching weight, usable at
// scales where the exact solver is infeasible.
#pragma once

#include "matching/matching.hpp"
#include "prefs/weights.hpp"

namespace overmatch::matching {

/// ½ Σ_v (sum of the b_v heaviest weights incident to v).
///
/// Valid for every b-matching M: each e ∈ M is counted at both endpoints,
/// and M ∩ δ(v) has at most b_v edges, each no heavier than v's top-b_v
/// incident weights. Hence w(M*) ≤ this bound, so
/// w(M)/bound lower-bounds the true approximation ratio on large graphs.
[[nodiscard]] double half_top_quota_bound(const prefs::EdgeWeights& w,
                                          const Quotas& quotas);

/// Sum of the ⌊Σ b_v / 2⌋ heaviest edge weights in the whole graph — a
/// second, usually looser certificate; the caller takes the min.
[[nodiscard]] double top_edges_bound(const prefs::EdgeWeights& w, const Quotas& quotas);

}  // namespace overmatch::matching
