// b-Suitor algorithm for ½-approximate maximum weight b-matching
// (Khan, Pothen et al., adapted): every node repeatedly bids for its best
// remaining neighbours; a bid displaces the target's weakest current suitor
// if the new edge is heavier, and displaced nodes re-bid.
//
// Included as an independent modern comparator for LIC/LID: with unique
// weights the suitor fixed point is exactly the locally-heaviest greedy
// matching, so all engines in this library must agree — a strong cross-check
// executed by tests and bench E5/E9.
#pragma once

#include "core/budget.hpp"
#include "matching/matching.hpp"
#include "prefs/weights.hpp"

namespace overmatch::obs {
class Registry;
}

namespace overmatch::matching {

/// Sequential b-suitor. Returns the mutual-suitor matching (identical to
/// lic_global for strict weight orders). `registry` (optional, caller-owned)
/// receives `bsuitor.proposals` (total bids ≈ message complexity) and
/// `bsuitor.displacements` (bids that knocked out a weaker suitor).
///
/// Anytime (DESIGN.md §14): `budget` caps drain rounds — one round processes
/// every node queued at the round's start (the initial round covers all n
/// nodes; later rounds are displacement-triggered re-bids) — and/or imposes a
/// wall-clock deadline checked every 64 dequeues. A truncated run returns the
/// mutual-suitor matching of the partial suitor state, which is always a
/// valid b-matching. `status` (optional) receives rounds used and the
/// truncation flag. The unlimited default is bit-identical to the historical
/// behaviour.
[[nodiscard]] Matching b_suitor(const prefs::EdgeWeights& w, const Quotas& quotas,
                                obs::Registry* registry = nullptr,
                                const core::Budget& budget = {},
                                core::BudgetStatus* status = nullptr);

}  // namespace overmatch::matching
