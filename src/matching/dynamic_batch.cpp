// Frontier-parallel repair for DynamicBSuitor::apply_batch (DESIGN.md §12).
//
// After the sequential teardown phase has applied a coalesced burst's net
// flags and detached every invalidated bid, the remaining work is a set of
// independent repair cascades rooted at the affected frontier. This engine
// runs them concurrently on the caller's ThreadPool, reusing the two pieces
// of lock-free machinery the static parallel engine (parallel_bsuitor.cpp)
// proved out:
//
//  * SuitorSlab::try_admit — single-CAS admission over packed (key, edge)
//    words; a reject is final while slots only get heavier, and
//  * the 4-state idle/queued/running/rerun per-node serialization — at most
//    one worker owns a node's *bidder side* (its placed_ slots, its scan) at
//    a time, and any thread that perturbs a node mid-lap (displaces or
//    erases one of its bids) flags a rerun, so the lap repeats until its
//    view was stable for one full pass. The acq_rel CAS chain through the
//    state byte hands the owner-only placed_ slots between workers.
//
// Dynamic repair adds one wrinkle the static engine does not have:
// *withdrawals*. An upgrading bidder erases its weakest placed bid, which
// makes a suitor slot weaker and suspends the monotonicity that made
// try_admit rejects final. The engine restores soundness by making every
// erase re-enqueue the weakened holder with its attract flag set: the
// holder's next lap scans for the heaviest willing neighbours (the exact
// sequential attract() rule) and re-enqueues any bidder whose earlier
// reject the erase may have stalely invalidated.
//
// Workers never touch bid_state_/m_/weight_ — they only move slab words and
// log every edge whose slots they perturbed into a per-worker dirty list.
// A sequential post-pass (batch_reconcile) then recomputes the bid-state
// byte of each dirty edge from the slabs and replays matched-edge
// transitions, so the derived state is exact regardless of interleaving.
// Because every replayed transition goes through matched_add/matched_remove,
// the last_changed_nodes/last_changed_edges dirty sets that delta snapshot
// capture consumes (serve, DESIGN.md §15) are complete on this path too —
// the parallel engine needs no dirty-tracking of its own.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "matching/dynamic_bsuitor.hpp"
#include "util/thread_pool.hpp"

namespace overmatch::matching {
namespace {

/// Frontier nodes claimed per cursor bump.
constexpr std::uint32_t kFrontierChunk = 16;
/// Treiber-stack nil; also the low word of an empty (tag, nil) head.
constexpr std::uint32_t kNilNode = 0xFFFF'FFFFu;

/// Per-node scheduling state (same protocol as parallel_bsuitor.cpp: all
/// transitions are acq_rel CAS RMWs, so each node's history is one
/// release-sequence chain handing the owner-only state between workers).
enum NodeState : std::uint8_t {
  kIdle = 0,     ///< not queued, not running
  kQueued = 1,   ///< on the requeue stack
  kRunning = 2,  ///< owned by a worker's repair lap
  kRerun = 3,    ///< running, and perturbed again since the lap began
};

}  // namespace

/// Persistent (across batches) shared state of the frontier-parallel engine,
/// lazily built on the first pooled apply_batch (declared in the header,
/// opaque to every other translation unit).
struct DynBatchRepair {
  /// Per-worker accumulation: no shared counters on the hot path, and the
  /// dirty-edge log that drives the sequential reconcile pass.
  struct Worker {
    std::size_t bids = 0;
    std::size_t displacements = 0;
    std::size_t withdrawals = 0;
    std::vector<EdgeId> dirty;    ///< edges whose slab slots this worker moved
    std::vector<EdgeId> scratch;  ///< placed_ snapshot reused per lap
  };

  explicit DynBatchRepair(std::size_t n, std::size_t m)
      : state(n), attract(n), qnext(n), edge_mark(m, 0) {
    for (auto& s : state) s.store(kIdle, std::memory_order_relaxed);
    for (auto& a : attract) a.store(0, std::memory_order_relaxed);
    for (auto& q : qnext) q.store(kNilNode, std::memory_order_relaxed);
  }

  std::vector<std::atomic<std::uint8_t>> state;
  std::vector<std::atomic<std::uint8_t>> attract;  ///< pending attract pass?
  std::vector<std::atomic<std::uint32_t>> qnext;   ///< Treiber stack links
  std::atomic<std::uint64_t> requeue{(std::uint64_t{0} << 32) | kNilNode};
  std::vector<NodeId> frontier;
  std::atomic<std::uint32_t> fnext{0};  ///< next unclaimed frontier index
  std::atomic<std::size_t> pending{0};  ///< unconsumed work tokens
  std::vector<Worker> workers;
  std::vector<std::uint8_t> edge_mark;  ///< reconcile-pass dedup (cleared)

  // ---- tagged Treiber stack (ABA-proof: tag in the high 32 bits) ---------

  void push(NodeId u) {
    std::uint64_t head = requeue.load(std::memory_order_relaxed);
    for (;;) {
      qnext[u].store(static_cast<std::uint32_t>(head),
                     std::memory_order_relaxed);
      const std::uint64_t next = (((head >> 32) + 1) << 32) | u;
      if (requeue.compare_exchange_weak(head, next, std::memory_order_release,
                                        std::memory_order_relaxed)) {
        return;
      }
    }
  }

  [[nodiscard]] NodeId pop() {
    std::uint64_t head = requeue.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t u = static_cast<std::uint32_t>(head);
      if (u == kNilNode) return kNilNode;
      const std::uint32_t next = qnext[u].load(std::memory_order_relaxed);
      const std::uint64_t nh = (((head >> 32) + 1) << 32) | next;
      if (requeue.compare_exchange_weak(head, nh, std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        return u;
      }
    }
  }

  /// Hand u another look. Never blocks: an idle node goes onto the stack, a
  /// running one gets its lap flagged for a rerun; the queued/rerun no-ops
  /// confirm freshness through a same-value CAS so the perturbation that
  /// precedes this call is published into u's state chain.
  void enqueue(NodeId u) {
    std::uint8_t s = state[u].load(std::memory_order_relaxed);
    for (;;) {
      switch (s) {
        case kIdle:
          if (state[u].compare_exchange_weak(s, kQueued,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
            pending.fetch_add(1, std::memory_order_relaxed);
            push(u);
            return;
          }
          break;
        case kRunning:
          if (state[u].compare_exchange_weak(s, kRerun,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
            return;
          }
          break;
        default:  // kQueued or kRerun: already covered
          if (state[u].compare_exchange_weak(s, s, std::memory_order_acq_rel,
                                             std::memory_order_acquire)) {
            return;
          }
          break;
      }
    }
  }
};

namespace {

/// One repair lap over node u (state == kRunning, this worker owns u's
/// bidder side). Three steps, mirroring the sequential cascade rules:
///
///  1. reconcile: drop placed_ entries whose bid a concurrent admission
///     displaced at the holder (the sequential engine does this inline in
///     place_bid; here the displacer cannot touch the loser's placed_ slots
///     and re-enqueues it instead);
///  2. attract (when flagged): scan heaviest-first for willing neighbours
///     and re-enqueue them — covers both freed slots from the teardown
///     phase and the monotonicity gap a concurrent withdrawal opened;
///  3. seek: bid heaviest-first while wanting more, with CAS admission.
///     placed_.admit_if both places the bid and names the weakest placed
///     bid it bumped — the exact bid the sequential upgrade path withdraws
///     — which try_erase then removes at its holder (or leaves to the
///     concurrent displacer that beat us to it).
class BatchEngine {
 public:
  BatchEngine(const prefs::EdgeWeights& w, SuitorSlab& suitors,
              SuitorSlab& placed, const std::vector<std::uint8_t>& alive,
              const std::vector<std::uint8_t>& edge_off, DynBatchRepair& pr)
      : w_(&w),
        g_(&w.graph()),
        suitors_(&suitors),
        placed_(&placed),
        alive_(&alive),
        edge_off_(&edge_off),
        pr_(&pr) {}

  /// Worker body: drain the requeue stack, then claim frontier chunks,
  /// until no token remains anywhere.
  void run(DynBatchRepair::Worker& wk) {
    DynBatchRepair& pr = *pr_;
    const std::uint32_t fsize = static_cast<std::uint32_t>(pr.frontier.size());
    for (;;) {
      bool did = false;
      for (NodeId u; (u = pr.pop()) != kNilNode;) {
        run_popped(u, wk);
        did = true;
      }
      std::uint32_t i = pr.fnext.load(std::memory_order_relaxed);
      if (i < fsize) {
        const std::uint32_t next = std::min(i + kFrontierChunk, fsize);
        if (pr.fnext.compare_exchange_strong(i, next,
                                             std::memory_order_relaxed)) {
          for (std::uint32_t k = i; k < next; ++k) {
            run_initial(pr.frontier[k], wk);
          }
        }
        did = true;  // progress either way: someone claimed the chunk
      }
      if (!did) {
        if (pr.pending.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
      }
    }
  }

 private:
  void run_popped(NodeId u, DynBatchRepair::Worker& wk) {
    std::uint8_t expect = kQueued;
    const bool claimed = pr_->state[u].compare_exchange_strong(
        expect, kRunning, std::memory_order_acq_rel,
        std::memory_order_acquire);
    OM_CHECK_MSG(claimed, "a popped node is exclusively the popper's");
    process(u, wk);
    pr_->pending.fetch_sub(1, std::memory_order_acq_rel);
  }

  void run_initial(NodeId u, DynBatchRepair::Worker& wk) {
    std::uint8_t expect = kIdle;
    if (pr_->state[u].compare_exchange_strong(expect, kRunning,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
      process(u, wk);
    }
    // Claimed and processed, or already queued/running under a token that
    // covers the remaining work — either way this frontier token is spent.
    pr_->pending.fetch_sub(1, std::memory_order_acq_rel);
  }

  void process(NodeId u, DynBatchRepair::Worker& wk) {
    for (;;) {
      lap(u, wk);
      std::uint8_t expect = kRunning;
      if (pr_->state[u].compare_exchange_strong(expect, kIdle,
                                                std::memory_order_acq_rel,
                                                std::memory_order_acquire)) {
        return;
      }
      // Perturbed mid-lap (kRerun): consume the flag and lap again — the
      // lap rescans from the heaviest candidate, so nothing is missed.
      OM_CHECK(expect == kRerun);
      const bool consumed = pr_->state[u].compare_exchange_strong(
          expect, kRunning, std::memory_order_acq_rel,
          std::memory_order_acquire);
      OM_CHECK_MSG(consumed, "only the owning worker consumes kRerun");
    }
  }

  void lap(NodeId u, DynBatchRepair::Worker& wk) {
    DynBatchRepair& pr = *pr_;
    // (1) Reconcile placed_(u): an entry whose bid is no longer held at the
    // holder was displaced by a concurrent admission (only u itself ever
    // withdraws it, and u is exclusively ours right now).
    wk.scratch.clear();
    placed_->for_each(u, [&wk](EdgeId e) { wk.scratch.push_back(e); });
    for (const EdgeId e : wk.scratch) {
      const NodeId h = g_->edge(e).other(u);
      if (!suitors_->holds(h, e)) {
        placed_->erase(u, e);
        wk.dirty.push_back(e);
      }
    }
    // (2) Attract pass, when flagged. The exchange consumes the flag before
    // the scan; a later withdrawal at u sets it again and re-enqueues u.
    if (pr.attract[u].exchange(0, std::memory_order_acq_rel) != 0 &&
        (*alive_)[u] != 0) {
      for (const EdgeId e : w_->incident(u)) {
        const SuitorSlab::Word word = suitors_->word_of(e);
        if (!suitors_->admits(u, word)) break;
        const NodeId x = g_->edge(e).other(u);
        if ((*alive_)[x] == 0 || (*edge_off_)[e] != 0 ||
            suitors_->holds(u, e)) {
          continue;
        }
        // Racy peek at x's bidder side — safe to be stale in either
        // direction: a false "wants" just costs x a no-op lap, and a false
        // "doesn't want" means x's placed set weakened concurrently, which
        // only happens under a displacement that independently re-enqueues
        // x for a full re-seek.
        if (!placed_->admits(x, word)) continue;
        pr.enqueue(x);
      }
    }
    // (3) Seek pass: the sequential seek() loop with CAS admission.
    if ((*alive_)[u] == 0) return;
    for (const EdgeId e : w_->incident(u)) {
      const SuitorSlab::Word word = suitors_->word_of(e);
      // Owner-exact wants(): only this worker mutates placed_(u).
      if (!placed_->admits(u, word)) break;
      const NodeId v = g_->edge(e).other(u);
      if ((*alive_)[v] == 0 || (*edge_off_)[e] != 0 || placed_->holds(u, e)) {
        continue;
      }
      const auto res = suitors_->try_admit(v, word);
      if (!res.accepted) continue;  // final while v's slots only get heavier
      wk.dirty.push_back(e);
      ++wk.bids;
      const auto put = placed_->admit_if(u, word);
      OM_CHECK_MSG(put.accepted, "batch seek placed a bid it does not want");
      if (put.displaced != SuitorSlab::kEmpty) {
        // Upgrade: admit_if bumped u's weakest placed bid — the exact bid
        // the sequential path withdraws first. Erase it at its holder; on a
        // CAS miss a concurrent displacement got there first and owns the
        // follow-up. Admit-then-withdraw order keeps placed_(u) full, so a
        // concurrent attract peek never sees a transient deficit.
        const EdgeId we = SuitorSlab::edge_of(put.displaced);
        const NodeId h = g_->edge(we).other(u);
        wk.dirty.push_back(we);
        if (suitors_->try_erase(h, put.displaced)) {
          ++wk.withdrawals;
          // The erase weakened h's slots: flag + re-enqueue so h's attract
          // lap gives stale-rejected bidders another look (see header).
          pr.attract[h].store(1, std::memory_order_release);
          pr.enqueue(h);
        }
      }
      if (res.displaced != SuitorSlab::kEmpty) {
        const EdgeId d = SuitorSlab::edge_of(res.displaced);
        wk.dirty.push_back(d);
        ++wk.displacements;
        pr.enqueue(g_->edge(d).other(v));  // the loser re-seeks
      }
    }
  }

  const prefs::EdgeWeights* w_;
  const graph::Graph* g_;
  SuitorSlab* suitors_;
  SuitorSlab* placed_;
  const std::vector<std::uint8_t>* alive_;
  const std::vector<std::uint8_t>* edge_off_;
  DynBatchRepair* pr_;
};

}  // namespace

DynamicBSuitor::~DynamicBSuitor() = default;  // DynBatchRepair complete here

void DynamicBSuitor::DynBatchRepairDeleter::operator()(
    DynBatchRepair* p) const noexcept {
  delete p;
}

void DynamicBSuitor::parallel_drain(util::ThreadPool& pool) {
  if (par_ == nullptr) {
    par_.reset(new DynBatchRepair(w_->graph().num_nodes(),
                                  w_->graph().num_edges()));
  }
  DynBatchRepair& pr = *par_;
  // Convert the sequential token queue into the parallel frontier: one
  // entry per distinct node, attract requests carried by the atomic flag.
  pr.frontier.clear();
  for (std::size_t i = queue_head_; i < queue_.size(); ++i) {
    const NodeId u = queue_[i].node;
    if (pending_seek_[u] == 0 && pending_attract_[u] == 0) continue;
    if (pending_attract_[u] != 0) {
      pr.attract[u].store(1, std::memory_order_relaxed);
    }
    pending_seek_[u] = 0;
    pending_attract_[u] = 0;
    pr.frontier.push_back(u);
  }
  queue_.clear();
  queue_head_ = 0;
  pr.fnext.store(0, std::memory_order_relaxed);
  pr.pending.store(pr.frontier.size(), std::memory_order_relaxed);
  const std::size_t workers = pool.size() + 1;
  batch_.workers = workers;
  pr.workers.resize(workers);
  for (auto& wk : pr.workers) {
    wk.bids = wk.displacements = wk.withdrawals = 0;
    wk.dirty.clear();
  }
  BatchEngine eng(*w_, suitors_, placed_, alive_, edge_off_, pr);
  // The caller is worker 0 (the run uses exactly pool.size() + 1 threads);
  // the pool's submit/wait_idle mutex publishes the teardown-phase writes
  // (alive_, edge_off_, slab state) to every worker.
  for (std::size_t tid = 1; tid < workers; ++tid) {
    auto* wk = &pr.workers[tid];
    pool.submit([&eng, wk] { eng.run(*wk); });
  }
  eng.run(pr.workers[0]);
  pool.wait_idle();
  batch_reconcile(workers);
}

void DynamicBSuitor::batch_reconcile(std::size_t workers) {
  DynBatchRepair& pr = *par_;
  const auto& g = w_->graph();
  constexpr std::uint8_t kMutual = kBidFromU | kBidFromV;
  for (const NodeId u : pr.frontier) touch(u);
  // Additions are replayed after every removal: a node that swapped partners
  // inside the batch would otherwise transiently exceed its quota when its
  // new edge is visited before its old one.
  std::vector<EdgeId> became_mutual;
  for (std::size_t tid = 0; tid < workers; ++tid) {
    const auto& wk = pr.workers[tid];
    last_.cascade_len += wk.bids + wk.withdrawals + wk.displacements;
    bids_ctr_.inc(wk.bids);
    displacements_ctr_.inc(wk.displacements);
    for (const EdgeId e : wk.dirty) {
      if (pr.edge_mark[e] != 0) continue;
      pr.edge_mark[e] = 1;
      const auto& [a, b] = g.edge(e);
      touch(a);
      touch(b);
      // Recompute the bid-state byte from the slabs (the ground truth the
      // workers maintained) and replay the matched-edge transition.
      const std::uint8_t ns =
          static_cast<std::uint8_t>((suitors_.holds(b, e) ? kBidFromU : 0) |
                                    (suitors_.holds(a, e) ? kBidFromV : 0));
      OM_CHECK_MSG(((ns & kBidFromU) != 0) == placed_.holds(a, e),
                   "batch repair left a one-sided bid record");
      OM_CHECK_MSG(((ns & kBidFromV) != 0) == placed_.holds(b, e),
                   "batch repair left a one-sided bid record");
      const std::uint8_t os = bid_state_[e];
      if (os == ns) continue;
      if (os == kMutual) matched_remove(e);
      bid_state_[e] = ns;
      if (ns == kMutual) became_mutual.push_back(e);
    }
  }
  for (const EdgeId e : became_mutual) matched_add(e);
  // Clear the dedup marks (O(dirty), keeping the engine allocation-stable).
  for (std::size_t tid = 0; tid < workers; ++tid) {
    for (const EdgeId e : pr.workers[tid].dirty) pr.edge_mark[e] = 0;
  }
}

}  // namespace overmatch::matching
