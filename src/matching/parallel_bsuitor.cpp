#include "matching/parallel_bsuitor.hpp"

#include <atomic>
#include <thread>
#include <vector>

#include "obs/registry.hpp"

namespace overmatch::matching {
namespace {

using prefs::EdgeWeights;

struct ParallelBSuitorInfo {
  std::size_t proposals = 0;      ///< accepted bids across all threads
  std::size_t displacements = 0;  ///< bids that knocked out a weaker suitor
  std::size_t range_claims = 0;   ///< node ranges claimed from the shared counter
};

/// Minimal test-and-set spinlock. Contention is rare (two threads touching
/// the same node), so spinning with a yield beats a futex round-trip.
class SpinLock {
 public:
  void lock() noexcept {
    while (flag_.test_and_set(std::memory_order_acquire)) {
      std::this_thread::yield();
    }
  }
  void unlock() noexcept { flag_.clear(std::memory_order_release); }

 private:
  std::atomic_flag flag_ = ATOMIC_FLAG_INIT;
};

/// Concurrent suitor heaps for all nodes in one slab. Node v's heap lives in
/// heap_[off_[v] .. off_[v] + count_[v]) with the *weakest* suitor (largest
/// key) at the root; all per-node operations must run under that node's
/// suitor lock.
class SuitorHeaps {
 public:
  SuitorHeaps(const EdgeWeights& w, const Quotas& quotas)
      : w_(&w), off_(w.graph().num_nodes() + 1, 0) {
    const auto& g = w.graph();
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      // A node can hold at most min(quota, degree) suitors.
      off_[v + 1] = off_[v] + std::min<std::size_t>(quotas[v], g.degree(v));
    }
    heap_.assign(off_.back(), graph::kInvalidEdge);
    count_.assign(g.num_nodes(), 0);
  }

  /// Would v admit e right now? One integer compare once the heap is full.
  [[nodiscard]] bool admits(NodeId v, EdgeId e, std::uint32_t quota) const {
    if (count_[v] < quota && count_[v] < capacity(v)) return true;
    if (capacity(v) == 0) return false;
    return w_->key(e) < w_->key(heap_[off_[v]]);  // beats the weakest (root)
  }

  /// Admit e at v; returns the displaced edge or kInvalidEdge. Caller must
  /// have checked admits() under the same lock acquisition.
  EdgeId admit(NodeId v, EdgeId e) {
    EdgeId* h = heap_.data() + off_[v];
    std::size_t& cnt = count_[v];
    if (cnt < capacity(v)) {
      h[cnt] = e;
      sift_up(h, cnt);
      ++cnt;
      return graph::kInvalidEdge;
    }
    const EdgeId out = h[0];
    h[0] = e;
    sift_down(h, cnt, 0);
    return out;
  }

  [[nodiscard]] bool holds(NodeId v, EdgeId e) const {
    const EdgeId* h = heap_.data() + off_[v];
    for (std::size_t i = 0; i < count_[v]; ++i) {
      if (h[i] == e) return true;
    }
    return false;
  }

 private:
  [[nodiscard]] std::size_t capacity(NodeId v) const { return off_[v + 1] - off_[v]; }
  // Max-heap on key (weakest edge = largest key at the root).
  [[nodiscard]] bool above(EdgeId a, EdgeId b) const {
    return w_->key(a) > w_->key(b);
  }
  void sift_up(EdgeId* h, std::size_t i) const {
    while (i > 0) {
      const std::size_t parent = (i - 1) / 2;
      if (!above(h[i], h[parent])) break;
      std::swap(h[i], h[parent]);
      i = parent;
    }
  }
  void sift_down(EdgeId* h, std::size_t n, std::size_t i) const {
    for (;;) {
      std::size_t best = i;
      const std::size_t l = 2 * i + 1;
      const std::size_t r = 2 * i + 2;
      if (l < n && above(h[l], h[best])) best = l;
      if (r < n && above(h[r], h[best])) best = r;
      if (best == i) return;
      std::swap(h[i], h[best]);
      i = best;
    }
  }

  const EdgeWeights* w_;
  std::vector<std::size_t> off_;
  std::vector<EdgeId> heap_;
  std::vector<std::size_t> count_;
};

Matching parallel_b_suitor_impl(const prefs::EdgeWeights& w, const Quotas& quotas,
                                std::size_t threads, ParallelBSuitorInfo& out_stats) {
  const auto& g = w.graph();
  const std::size_t n = g.num_nodes();
  OM_CHECK(quotas.size() == n);
  OM_CHECK(threads >= 1);

  SuitorHeaps suitors(w, quotas);
  std::vector<SpinLock> suitor_lock(n);
  std::vector<SpinLock> bid_lock(n);
  // cursor[u] is only touched while holding bid_lock[u]; bids_held is
  // mutated lock-free by displacing threads.
  std::vector<std::size_t> cursor(n, 0);
  std::vector<std::atomic<std::uint32_t>> bids_held(n);
  for (auto& b : bids_held) b.store(0, std::memory_order_relaxed);

  // Work-stealing over node ranges: threads repeatedly claim the next chunk
  // of nodes from a shared counter, so load imbalance (hub nodes, displaced
  // cascades) self-corrects without a scheduler.
  constexpr std::size_t kChunk = 128;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> total_proposals{0};
  std::atomic<std::size_t> total_displacements{0};
  std::atomic<std::size_t> total_claims{0};

  const auto worker = [&] {
    std::size_t proposals = 0;
    std::size_t displacements = 0;
    std::size_t claims = 0;
    std::vector<NodeId> pending;  // displaced losers, processed locally

    const auto process = [&](NodeId u) {
      bid_lock[u].lock();
      const auto candidates = w.incident(u);
      const std::uint32_t qu = quotas[u];
      while (bids_held[u].load(std::memory_order_relaxed) < qu &&
             cursor[u] < candidates.size()) {
        const EdgeId e = candidates[cursor[u]];
        const NodeId v = g.edge(e).other(u);
        // Check + admit under one suitor-lock acquisition (no TOCTOU).
        EdgeId displaced = graph::kInvalidEdge;
        bool accepted = false;
        suitor_lock[v].lock();
        if (suitors.admits(v, e, quotas[v])) {
          displaced = suitors.admit(v, e);
          accepted = true;
        }
        suitor_lock[v].unlock();
        ++cursor[u];
        if (!accepted) continue;  // v's suitors only get heavier: skip for good
        ++proposals;
        bids_held[u].fetch_add(1, std::memory_order_relaxed);
        if (displaced != graph::kInvalidEdge) {
          ++displacements;
          const NodeId loser = g.edge(displaced).other(v);
          bids_held[loser].fetch_sub(1, std::memory_order_relaxed);
          pending.push_back(loser);  // re-bid for a replacement slot
        }
      }
      bid_lock[u].unlock();
    };

    for (;;) {
      if (!pending.empty()) {
        const NodeId u = pending.back();
        pending.pop_back();
        process(u);
        continue;
      }
      const std::size_t begin = next.fetch_add(kChunk, std::memory_order_relaxed);
      if (begin >= n) break;
      ++claims;
      const std::size_t end = std::min(begin + kChunk, n);
      for (std::size_t v = begin; v < end; ++v) process(static_cast<NodeId>(v));
    }
    total_proposals.fetch_add(proposals, std::memory_order_relaxed);
    total_displacements.fetch_add(displacements, std::memory_order_relaxed);
    total_claims.fetch_add(claims, std::memory_order_relaxed);
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (std::size_t t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }

  // Matched edges are mutual suitor relationships (read-only post-pass; all
  // workers have joined, so no locks are needed).
  Matching m(g, quotas);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    if (suitors.holds(u, e) && suitors.holds(v, e)) m.add(e);
  }
  out_stats.proposals = total_proposals.load();
  out_stats.displacements = total_displacements.load();
  out_stats.range_claims = total_claims.load();
  return m;
}

}  // namespace

Matching parallel_b_suitor(const prefs::EdgeWeights& w, const Quotas& quotas,
                           std::size_t threads, obs::Registry* registry) {
  ParallelBSuitorInfo stats;
  Matching m = parallel_b_suitor_impl(w, quotas, threads, stats);
  if (registry != nullptr) {
    registry->counter("pbsuitor.proposals").inc(stats.proposals);
    registry->counter("pbsuitor.displacements").inc(stats.displacements);
    registry->counter("pbsuitor.range_claims").inc(stats.range_claims);
  }
  return m;
}

}  // namespace overmatch::matching
