#include "matching/parallel_bsuitor.hpp"

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "matching/suitor_slab.hpp"
#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace overmatch::matching {
namespace {

using prefs::EdgeWeights;

/// Nodes per scheduler block. A multiple of 64 so the per-node byte/word
/// arrays (state, displaced-counters, stack links) of two different blocks
/// never share a cache line — block-local processing touches block-local
/// lines only, which is the false-sharing fix for the per-node metadata
/// (padding every 1-byte state to a line would cost 64× the memory).
constexpr std::uint32_t kBlockNodes = 4096;
/// Initial-range nodes claimed per cursor bump.
constexpr std::uint32_t kInitChunk = 64;
/// Treiber-stack nil. Also the value of an empty (tag, nil) head's low word.
constexpr std::uint32_t kNilNode = 0xFFFF'FFFFu;

/// Per-node scheduling state. All transitions are CAS RMWs (acq_rel on
/// success), so the per-node history forms one release-sequence chain: any
/// thread that wins a transition observes everything published before every
/// earlier transition — that chain is what hands the non-atomic cursor and
/// accept count from owner to owner, and what makes a displacer's counter
/// increment visible to whichever lap processes it.
enum NodeState : std::uint8_t {
  kIdle = 0,     ///< not queued, not running
  kQueued = 1,   ///< on its home block's requeue stack
  kRunning = 2,  ///< owned by a worker's bidding lap
  kRerun = 3,    ///< running, and displaced again since the lap began
};

struct Tally {
  std::size_t proposals = 0;      ///< accept events (incl. later-displaced)
  std::size_t displacements = 0;  ///< admitted bids knocked out
  std::size_t range_claims = 0;   ///< initial-range chunks claimed
  std::size_t steals = 0;         ///< drains of a non-owned block
  std::size_t sweeps = 0;         ///< productive block-set sweeps (anytime rounds)
};

/// One scheduler block: an initial node range claimed in chunks through an
/// atomic cursor, plus a tagged Treiber stack of requeued (displaced) nodes.
/// Cache-line aligned and padded so two blocks' hot atomics never share a
/// line (the spinlock-era `vector<SpinLock>` packed ~64 locks per line).
struct alignas(64) Block {
  std::uint32_t begin = 0;
  std::uint32_t end = 0;
  std::atomic<std::uint32_t> init_next{0};
  std::atomic<std::uint64_t> requeue{(std::uint64_t{0} << 32) | kNilNode};
};

class Engine {
 public:
  Engine(const EdgeWeights& w, const Quotas& quotas, const core::Budget& budget)
      : w_(&w),
        g_(&w.graph()),
        quotas_(&quotas),
        budget_(budget),
        deadline_(budget),
        slab_(w, quotas),
        cursor_(g_->num_nodes(), 0),
        accepts_(g_->num_nodes(), 0),
        displaced_(g_->num_nodes()),
        state_(g_->num_nodes()),
        qnext_(g_->num_nodes()),
        pending_(g_->num_nodes()) {
    OM_CHECK(quotas.size() == g_->num_nodes());
    for (auto& d : displaced_) d.store(0, std::memory_order_relaxed);
    for (auto& s : state_) s.store(kIdle, std::memory_order_relaxed);
    for (auto& q : qnext_) q.store(kNilNode, std::memory_order_relaxed);
    const std::uint32_t n = static_cast<std::uint32_t>(g_->num_nodes());
    blocks_ = std::vector<Block>((n + kBlockNodes - 1) / kBlockNodes);
    for (std::size_t b = 0; b < blocks_.size(); ++b) {
      blocks_[b].begin = static_cast<std::uint32_t>(b) * kBlockNodes;
      blocks_[b].end = std::min(blocks_[b].begin + kBlockNodes, n);
      blocks_[b].init_next.store(blocks_[b].begin, std::memory_order_relaxed);
    }
  }

  /// Worker body: drain owned blocks (requeue stacks first, then initial
  /// ranges), steal from any block when dry, exit when no tokens remain.
  /// Anytime budgets halt the whole engine: the first worker past its sweep
  /// cap or the deadline raises `halt_`; everyone returns at the next block
  /// boundary, leaving a partial (but mutually-consistent) suitor slab.
  void run(std::size_t tid, std::size_t nworkers, Tally& t) {
    const std::size_t nblocks = blocks_.size();
    for (;;) {
      if (halt_.load(std::memory_order_acquire)) return;
      if (budget_.limits_rounds() && t.sweeps >= budget_.max_rounds) {
        halt_.store(true, std::memory_order_release);
        return;
      }
      if (deadline_.armed() && deadline_.expired()) {
        halt_.store(true, std::memory_order_release);
        return;
      }
      bool did = false;
      for (std::size_t b = tid; b < nblocks; b += nworkers) {
        did |= drain_block(blocks_[b], t);
      }
      if (!did) {
        for (std::size_t i = 0; i < nblocks; ++i) {
          const std::size_t b = (tid + i) % nblocks;
          if (drain_block(blocks_[b], t)) {
            // Crediting any hit during the sweep as a steal over-counts a
            // worker's own blocks slightly; the sweep only runs when those
            // were dry a moment ago, so the signal stays honest.
            ++t.steals;
            did = true;
            break;
          }
        }
      }
      if (did) {
        ++t.sweeps;
      } else {
        if (pending_.load(std::memory_order_acquire) == 0) return;
        std::this_thread::yield();
      }
    }
  }

  void merge(const Tally& t) {
    proposals_.fetch_add(t.proposals, std::memory_order_relaxed);
    displacements_.fetch_add(t.displacements, std::memory_order_relaxed);
    range_claims_.fetch_add(t.range_claims, std::memory_order_relaxed);
    steals_.fetch_add(t.steals, std::memory_order_relaxed);
    std::size_t s = sweeps_max_.load(std::memory_order_relaxed);
    while (s < t.sweeps &&
           !sweeps_max_.compare_exchange_weak(s, t.sweeps,
                                              std::memory_order_relaxed)) {
    }
  }

  /// Valid after all workers merged: the budget cut the run short iff a halt
  /// was raised while tokens (queued/running/unclaimed-initial) remained.
  [[nodiscard]] core::BudgetStatus budget_status() const {
    core::BudgetStatus s;
    s.rounds_used = sweeps_max_.load(std::memory_order_relaxed);
    s.truncated = halt_.load(std::memory_order_relaxed) &&
                  pending_.load(std::memory_order_relaxed) > 0;
    return s;
  }

  /// Matched edges are mutual suitor relationships (read-only post-pass; all
  /// workers have finished, so plain reads suffice).
  [[nodiscard]] Matching extract() const {
    Matching m(*g_, *quotas_);
    for (EdgeId e = 0; e < g_->num_edges(); ++e) {
      const auto& [u, v] = g_->edge(e);
      if (slab_.holds(u, e) && slab_.holds(v, e)) m.add(e);
    }
    return m;
  }

  [[nodiscard]] Tally totals() const {
    return {proposals_.load(), displacements_.load(), range_claims_.load(),
            steals_.load()};
  }

 private:
  [[nodiscard]] Block& home_block(NodeId u) { return blocks_[u / kBlockNodes]; }

  void push(Block& b, NodeId u) {
    std::uint64_t head = b.requeue.load(std::memory_order_relaxed);
    for (;;) {
      qnext_[u].store(static_cast<std::uint32_t>(head),
                      std::memory_order_relaxed);
      const std::uint64_t next = (((head >> 32) + 1) << 32) | u;
      if (b.requeue.compare_exchange_weak(head, next, std::memory_order_release,
                                          std::memory_order_relaxed)) {
        return;
      }
    }
  }

  [[nodiscard]] NodeId pop(Block& b) {
    std::uint64_t head = b.requeue.load(std::memory_order_acquire);
    for (;;) {
      const std::uint32_t u = static_cast<std::uint32_t>(head);
      if (u == kNilNode) return kNilNode;
      // qnext_[u] may be stale if `head` is; the tag (high 32 bits, bumped by
      // every push and pop) makes the CAS fail in that case — classic
      // ABA-proof Treiber pop.
      const std::uint32_t next = qnext_[u].load(std::memory_order_relaxed);
      const std::uint64_t nh = (((head >> 32) + 1) << 32) | next;
      if (b.requeue.compare_exchange_weak(head, nh, std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
        return u;
      }
    }
  }

  /// Requeue a displaced loser. Never blocks: an idle loser goes onto its
  /// home block's stack, a running one gets its lap flagged for a rerun.
  /// Every branch resolves through a CAS — including the same-value confirm
  /// for the queued/rerun no-ops — so the decision is always taken against
  /// the *current* state and the displaced-counter increment that precedes
  /// this call is published into the node's state chain.
  void enqueue(NodeId u) {
    std::uint8_t s = state_[u].load(std::memory_order_relaxed);
    for (;;) {
      switch (s) {
        case kIdle:
          if (state_[u].compare_exchange_weak(s, kQueued,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            pending_.fetch_add(1, std::memory_order_relaxed);
            push(home_block(u), u);
            return;
          }
          break;
        case kRunning:
          if (state_[u].compare_exchange_weak(s, kRerun,
                                              std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            return;
          }
          break;
        default:  // kQueued or kRerun: already covered — confirm freshness
          if (state_[u].compare_exchange_weak(s, s, std::memory_order_acq_rel,
                                              std::memory_order_acquire)) {
            return;
          }
          break;
      }
    }
  }

  /// Bidding laps for an owned node (state == kRunning). u bids heaviest-
  /// first until it holds quota-many accepted bids or runs out of candidates
  /// it could still win; the lap repeats while displacements flag a rerun.
  void process(NodeId u, Tally& t) {
    const auto candidates = w_->incident(u);
    const std::uint32_t qu = (*quotas_)[u];
    for (;;) {
      std::uint32_t cur = cursor_[u];
      while (cur < candidates.size()) {
        // Relaxed is enough mid-lap: a stale (small) displaced count can only
        // stop the lap early, and any pending displacement has also flagged
        // kRerun — the commit CAS below catches it and laps again.
        const std::uint32_t held =
            accepts_[u] - displaced_[u].load(std::memory_order_relaxed);
        if (held >= qu) break;
        const EdgeId e = candidates[cur];
        const NodeId v = g_->edge(e).other(u);
        const auto res = slab_.try_admit(v, slab_.word_of(e));
        ++cur;
        if (!res.accepted) continue;  // v's suitors only get heavier: skip for good
        ++accepts_[u];
        ++t.proposals;
        if (res.displaced != SuitorSlab::kEmpty) {
          ++t.displacements;
          const EdgeId d = SuitorSlab::edge_of(res.displaced);
          const NodeId loser = g_->edge(d).other(v);
          displaced_[loser].fetch_add(1, std::memory_order_relaxed);
          enqueue(loser);  // re-bid for a replacement slot
        }
      }
      cursor_[u] = cur;
      std::uint8_t expect = kRunning;
      if (state_[u].compare_exchange_strong(expect, kIdle,
                                            std::memory_order_acq_rel,
                                            std::memory_order_acquire)) {
        return;
      }
      // Displaced mid-lap (kRerun): consume the flag and lap again. The
      // cursor never rewinds — a displaced bid's edge was already passed, so
      // re-bidding continues at the next candidate, exactly the sequential
      // re-bid rule.
      OM_CHECK(expect == kRerun);
      const bool consumed = state_[u].compare_exchange_strong(
          expect, kRunning, std::memory_order_acq_rel,
          std::memory_order_acquire);
      OM_CHECK_MSG(consumed, "only the owning worker consumes kRerun");
    }
  }

  void run_popped(NodeId u, Tally& t) {
    std::uint8_t expect = kQueued;
    const bool claimed = state_[u].compare_exchange_strong(
        expect, kRunning, std::memory_order_acq_rel, std::memory_order_acquire);
    OM_CHECK_MSG(claimed, "a popped node is exclusively the popper's");
    process(u, t);
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }

  void run_initial(NodeId u, Tally& t) {
    std::uint8_t expect = kIdle;
    if (state_[u].compare_exchange_strong(expect, kRunning,
                                          std::memory_order_acq_rel,
                                          std::memory_order_acquire)) {
      process(u, t);
    }
    // Claimed and processed, or already queued/running under a displacement
    // token that covers the remaining work — either way this initial token
    // is spent.
    pending_.fetch_sub(1, std::memory_order_acq_rel);
  }

  /// Drain one block: requeued losers first (hot, small), then a chunk of
  /// the initial range, alternating until both are dry. Returns whether any
  /// node was processed.
  bool drain_block(Block& b, Tally& t) {
    bool did = false;
    for (;;) {
      // Halt promptly mid-drain (relaxed: the raiser rechecks pending_ after
      // join); the deadline is re-checked here so a long drain of one block
      // cannot overshoot it by a whole block's worth of work.
      if (halt_.load(std::memory_order_relaxed)) return did;
      if (deadline_.armed() && deadline_.expired()) {
        halt_.store(true, std::memory_order_release);
        return did;
      }
      bool round = false;
      for (NodeId u; (u = pop(b)) != kNilNode;) {
        run_popped(u, t);
        round = true;
      }
      std::uint32_t i = b.init_next.load(std::memory_order_relaxed);
      if (i < b.end) {
        const std::uint32_t next = std::min(i + kInitChunk, b.end);
        if (b.init_next.compare_exchange_strong(i, next,
                                                std::memory_order_relaxed)) {
          ++t.range_claims;
          for (std::uint32_t u = i; u < next; ++u) run_initial(u, t);
          round = true;
        }
      }
      if (!round) return did;
      did = true;
    }
  }

  const EdgeWeights* w_;
  const graph::Graph* g_;
  const Quotas* quotas_;
  core::Budget budget_;
  core::Deadline deadline_;  // armed at engine construction
  std::atomic<bool> halt_{false};
  std::atomic<std::size_t> sweeps_max_{0};
  SuitorSlab slab_;

  // Owner-only per-node state, handed between workers by the state chain.
  std::vector<std::uint32_t> cursor_;   ///< next candidate in incident(u)
  std::vector<std::uint32_t> accepts_;  ///< bids of u ever admitted
  // Written by displacing threads; held(u) = accepts_[u] − displaced_[u].
  std::vector<std::atomic<std::uint32_t>> displaced_;
  std::vector<std::atomic<std::uint8_t>> state_;
  std::vector<std::atomic<std::uint32_t>> qnext_;  ///< Treiber stack links
  std::vector<Block> blocks_;
  std::atomic<std::size_t> pending_;  ///< queued/running/unclaimed-initial tokens

  std::atomic<std::size_t> proposals_{0};
  std::atomic<std::size_t> displacements_{0};
  std::atomic<std::size_t> range_claims_{0};
  std::atomic<std::size_t> steals_{0};
};

void emit(obs::Registry* registry, const Tally& t) {
  if (registry == nullptr) return;
  registry->counter("pbsuitor.proposals").inc(t.proposals);
  registry->counter("pbsuitor.displacements").inc(t.displacements);
  // Net bids still placed at quiescence. Unlike the two event counters —
  // whose split is interleaving-dependent — this difference is determined by
  // the unique fixed point (see DESIGN.md §7).
  registry->counter("pbsuitor.bids_placed").inc(t.proposals - t.displacements);
  registry->counter("pbsuitor.range_claims").inc(t.range_claims);
  registry->counter("pbsuitor.steals").inc(t.steals);
}

Matching run_engine(const EdgeWeights& w, const Quotas& quotas,
                    util::ThreadPool* pool, std::size_t workers,
                    obs::Registry* registry, const core::Budget& budget,
                    core::BudgetStatus* status) {
  Engine eng(w, quotas, budget);
  if (workers <= 1 || pool == nullptr) {
    Tally t;
    eng.run(0, 1, t);
    eng.merge(t);
  } else {
    for (std::size_t tid = 1; tid < workers; ++tid) {
      pool->submit([&eng, tid, workers] {
        Tally t;
        eng.run(tid, workers, t);
        eng.merge(t);
      });
    }
    Tally t;
    eng.run(0, workers, t);
    eng.merge(t);
    pool->wait_idle();
  }
  if (status != nullptr) *status = eng.budget_status();
  emit(registry, eng.totals());
  return eng.extract();
}

}  // namespace

Matching parallel_b_suitor(const prefs::EdgeWeights& w, const Quotas& quotas,
                           std::size_t threads, obs::Registry* registry,
                           const core::Budget& budget,
                           core::BudgetStatus* status) {
  OM_CHECK(threads >= 1);
  if (threads == 1) {
    return run_engine(w, quotas, nullptr, 1, registry, budget, status);
  }
  // Transient pool of threads−1 workers; the caller is worker 0, so the run
  // uses exactly `threads` threads. Callers that solve repeatedly should use
  // the pool overload and pay thread startup once.
  util::ThreadPool pool(threads - 1);
  return run_engine(w, quotas, &pool, threads, registry, budget, status);
}

Matching parallel_b_suitor(const prefs::EdgeWeights& w, const Quotas& quotas,
                           util::ThreadPool& pool, obs::Registry* registry,
                           const core::Budget& budget,
                           core::BudgetStatus* status) {
  return run_engine(w, quotas, &pool, pool.size() + 1, registry, budget,
                    status);
}

}  // namespace overmatch::matching
