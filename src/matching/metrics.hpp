// Satisfaction and stability metrics of a complete matching.
#pragma once

#include <vector>

#include "matching/matching.hpp"
#include "prefs/satisfaction.hpp"

namespace overmatch::matching {

/// Per-node satisfaction S_i (eq. 1) under the profile.
[[nodiscard]] std::vector<double> node_satisfactions(const prefs::PreferenceProfile& p,
                                                     const Matching& m);

/// Σ_i S_i — the objective of the maximizing-satisfaction b-matching problem.
[[nodiscard]] double total_satisfaction(const prefs::PreferenceProfile& p,
                                        const Matching& m);

/// Σ_i S̄_i (eq. 6) — the modified problem's objective. By Lemma 2 a matching
/// maximizing edge weight also maximizes this.
[[nodiscard]] double total_satisfaction_modified(const prefs::PreferenceProfile& p,
                                                 const Matching& m);

/// A blocking pair of a b-matching with preferences: an unmatched edge (i,j)
/// where both endpoints would switch to each other — i.e. each side either
/// has spare quota or prefers the other over its worst current partner.
/// A matching with zero blocking pairs is *stable* (stable fixtures sense).
[[nodiscard]] std::size_t count_blocking_pairs(const prefs::PreferenceProfile& p,
                                               const Matching& m);

}  // namespace overmatch::matching
