// SuitorSlab — struct-of-arrays suitor storage shared by every b-Suitor
// engine (sequential `b_suitor`, lock-free `parallel_b_suitor`, stateful
// `DynamicBSuitor`).
//
// Each node v owns a fixed run of min(b_v, deg(v)) *slots* inside one flat
// slab. A slot is a single 64-bit word packing (weight-key << 32 | edge-id);
// because `EdgeWeights::Key` is the edge's dense rank under the strict
// heavier-than order (smaller = heavier) and both the key and the edge id fit
// in 32 bits, plain integer order on packed words *is* the weight order:
// smaller word = heavier suitor, and the all-ones word `kEmpty` (an empty
// slot) is weaker than every real bid. One unsigned compare therefore answers
// "free slot or beats the weakest?" with no branches on emptiness.
//
// The monotonicity invariant that makes the layout safe to share with the
// concurrent engine: a slot's word only ever *decreases* (bids get heavier —
// admission replaces the weakest slot with a strictly smaller word). Under
// that invariant `try_admit` needs no lock: scan for the maximum word, CAS it
// down, rescan on failure. A stale scan can only overestimate the weakest
// word, so a reject is final (exactly the sequential "skip for good" rule)
// and a failed CAS means another, heavier bid landed first — progress was
// made globally, and the retry count per call is bounded by the node's
// capacity times the admissions that can still beat it.
//
// The sequential API uses the same slots through relaxed atomic accesses
// (compiled to plain loads/stores); engines that never share the slab across
// threads pay no synchronization. See DESIGN.md §11.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "prefs/weights.hpp"

namespace overmatch::matching {

using graph::EdgeId;
using graph::NodeId;
using prefs::Quotas;

class SuitorSlab {
 public:
  using Word = std::uint64_t;
  using Key = prefs::EdgeWeights::Key;

  /// Empty-slot sentinel; weaker than any packed bid.
  static constexpr Word kEmpty = ~Word{0};

  /// Capacity per node is min(quota, degree): a node can never hold more
  /// suitors than incident edges, so the slab stays O(Σ min(b_v, deg_v)).
  SuitorSlab(const prefs::EdgeWeights& w, const Quotas& quotas);

  [[nodiscard]] static constexpr Word pack(Key key, EdgeId e) noexcept {
    return (key << 32) | Word{e};
  }
  [[nodiscard]] static constexpr EdgeId edge_of(Word word) noexcept {
    return static_cast<EdgeId>(word & 0xFFFF'FFFFu);
  }
  /// The packed word for edge e under this slab's weight order.
  [[nodiscard]] Word word_of(EdgeId e) const { return pack(w_->key(e), e); }

  [[nodiscard]] std::size_t capacity(NodeId v) const {
    return off_[v + 1] - off_[v];
  }
  /// Non-empty slots at v (O(capacity) scan; capacities are tiny).
  [[nodiscard]] std::size_t count(NodeId v) const;

  /// Result of an admission attempt. `displaced` is kEmpty when the bid
  /// landed in a free slot (or when rejected).
  struct Admit {
    bool accepted = false;
    Word displaced = kEmpty;
  };

  // ---- sequential API (single-owner access; relaxed = plain memory ops) ---

  /// Would v admit `word` right now? True iff v has a free slot or `word`
  /// beats v's weakest suitor. Capacity-0 nodes admit nothing.
  [[nodiscard]] bool admits(NodeId v, Word word) const {
    const std::size_t cap = capacity(v);
    return cap != 0 && word < max_word(v, cap);
  }

  /// Check-and-admit in one scan: on success the weakest slot (or a free
  /// one) now holds `word` and the displaced bid, if any, is returned.
  Admit admit_if(NodeId v, Word word);

  /// Remove edge e's bid from v's slots. Pre: holds(v, e).
  void erase(NodeId v, EdgeId e);

  [[nodiscard]] bool holds(NodeId v, EdgeId e) const;

  /// v's weakest *current* bid (largest non-empty word), or kEmpty when v
  /// holds none. Distinct from the admission bound, which treats free slots
  /// as weakest-of-all.
  [[nodiscard]] Word weakest(NodeId v) const;

  /// All slots taken (a capacity-0 node is vacuously full).
  [[nodiscard]] bool full(NodeId v) const {
    const std::size_t cap = capacity(v);
    return cap == 0 || max_word(v, cap) != kEmpty;
  }

  /// Visit every held bid at v: f(EdgeId). Order is slot order, not weight
  /// order.
  template <typename F>
  void for_each(NodeId v, F&& f) const {
    const std::atomic<Word>* s = slots_.data() + off_[v];
    const std::size_t cap = capacity(v);
    for (std::size_t i = 0; i < cap; ++i) {
      const Word word = s[i].load(std::memory_order_relaxed);
      if (word != kEmpty) f(edge_of(word));
    }
  }

  // ---- concurrent API (parallel_b_suitor) --------------------------------

  /// Lock-free admission: CAS `word` over the weakest slot, rescanning while
  /// other bids land. A reject is final under the monotone-slot invariant
  /// (slots only get heavier), exactly matching the sequential rule; the
  /// retry loop is bounded by the admissions that can still occur at v.
  Admit try_admit(NodeId v, Word word);

  /// Lock-free withdrawal for the dynamic batch engine: CAS the slot holding
  /// exactly `word` back to kEmpty. Returns false when the bid is no longer
  /// there — i.e. a concurrent try_admit displaced it first, in which case
  /// the displacer owns the follow-up and the caller must do nothing. Safe
  /// because a given bid occupies at most one slot and only its bidder ever
  /// withdraws it, so success and displacement are mutually exclusive.
  ///
  /// NOTE: a successful erase makes a slot *weaker*, which suspends the
  /// monotone-slot invariant that makes try_admit rejects final. Callers must
  /// therefore re-examine v (the batch engine re-enqueues v with its attract
  /// flag set) so bidders whose rejects predate the erase get another look.
  bool try_erase(NodeId v, Word word);

 private:
  /// Max over *all* slot words (empties = kEmpty, i.e. weakest). This is the
  /// admission bound. Pre: cap > 0.
  [[nodiscard]] Word max_word(NodeId v, std::size_t cap) const {
    const std::atomic<Word>* s = slots_.data() + off_[v];
    Word m = s[0].load(std::memory_order_relaxed);
    for (std::size_t i = 1; i < cap; ++i) {
      const Word word = s[i].load(std::memory_order_relaxed);
      if (word > m) m = word;
    }
    return m;
  }

  const prefs::EdgeWeights* w_;
  std::vector<std::size_t> off_;          ///< per-node slot offsets (CSR)
  std::vector<std::atomic<Word>> slots_;  ///< packed (key, edge) words
};

}  // namespace overmatch::matching
