// LIC — Local Information-based Centralized greedy for many-to-many maximum
// weighted matchings (paper Algorithm 2, Theorem 2: ½-approximation).
//
// Pseudocode erratum handled here: Algorithm 2 line 2 initializes
// counter(v) := d_v; the proofs require the *quota*, so we use
// counter(v) := min(b_v, d_v) (see DESIGN.md).
//
// Two interchangeable engines are provided:
//  * lic_global  — sort all edges by the strict heavier-than order and sweep
//                  (the globally heaviest available edge is trivially locally
//                  heaviest).
//  * lic_local   — repeatedly select *any* locally heaviest edge, scanning in
//                  an arbitrary (seeded) order.
// With unique weights the greedy outcome is order-independent, so both
// engines — and the distributed LID — produce the *same* matching; tests and
// bench E5 verify this.
#pragma once

#include <cstdint>

#include "matching/matching.hpp"
#include "prefs/weights.hpp"
#include "util/rng.hpp"

namespace overmatch::obs {
class Registry;
}

namespace overmatch::matching {

/// Global-sort engine. O(m log m).
[[nodiscard]] Matching lic_global(const prefs::EdgeWeights& w, const Quotas& quotas);

/// Local-dominance engine: seeds a candidate queue with every node's top
/// available edge (visiting nodes in a seeded arbitrary order) and selects
/// an edge whenever it is the heaviest *available* edge at both endpoints
/// (= locally heaviest, eq. 13's recursive definition). Selections re-enqueue
/// the fresh tops around both endpoints, so no dominant edge is ever missed.
/// Each edge appears in the candidate queue at most once at a time.
///
/// `registry` (optional, caller-owned) receives the queue-discipline series:
/// `lic.pops` (candidates dequeued) and the `lic.peak_queue` high-water gauge
/// (the in-queue dedup guarantees peak_queue <= m).
[[nodiscard]] Matching lic_local(const prefs::EdgeWeights& w, const Quotas& quotas,
                                 std::uint64_t scan_seed,
                                 obs::Registry* registry = nullptr);

}  // namespace overmatch::matching
