#include "matching/exact.hpp"

#include <algorithm>
#include <cmath>
#include <functional>

#include "prefs/satisfaction.hpp"

namespace overmatch::matching {
namespace {

/// Shared branch & bound over an edge sequence with per-edge gains.
///
/// The searcher enumerates include/exclude decisions over `order` (gains
/// descending). `gain(e, loads)` is the exact objective increment of adding e
/// given current loads; `optimistic[k]` upper-bounds the gain edge order[k]
/// could ever contribute. Both objectives used here (weight; satisfaction)
/// fit this shape.
class BnB {
 public:
  BnB(const graph::Graph& g, const Quotas& quotas, std::vector<EdgeId> order,
      std::vector<double> optimistic,
      std::function<double(EdgeId, const std::vector<std::uint32_t>&)> gain)
      : g_(g),
        quotas_(quotas),
        order_(std::move(order)),
        optimistic_(std::move(optimistic)),
        gain_(std::move(gain)),
        load_(g.num_nodes(), 0) {
    // Suffix prefix-sums of optimistic gains for the top-K bound.
    suffix_.assign(order_.size() + 1, 0.0);
    for (std::size_t k = order_.size(); k > 0; --k) {
      suffix_[k - 1] = suffix_[k] + optimistic_[k - 1];
    }
    total_residual_ = 0;
    for (const auto q : quotas_) total_residual_ += q;
  }

  [[nodiscard]] std::pair<std::vector<EdgeId>, std::size_t> solve() {
    dfs(0, 0.0);
    return {best_set_, explored_};
  }

 private:
  /// Upper bound on additional gain from edges order_[k..]: at most
  /// ⌊residual/2⌋ more edges can be added, and they are a subset of the
  /// remaining suffix (optimistic gains are sorted descending).
  [[nodiscard]] double suffix_bound(std::size_t k) const {
    const std::size_t budget = total_residual_ / 2;
    const std::size_t take = std::min(budget, order_.size() - k);
    // First `take` optimistic gains of the suffix = heaviest of the suffix.
    return suffix_[k] - suffix_[k + take];
  }

  void dfs(std::size_t k, double current) {
    ++explored_;
    if (current > best_) {
      best_ = current;
      best_set_ = stack_;
    }
    if (k >= order_.size()) return;
    if (current + suffix_bound(k) <= best_ + 1e-12) return;
    const EdgeId e = order_[k];
    const auto& [u, v] = g_.edge(e);
    // Include branch first: descending gains make greedy-ish incumbents early.
    if (load_[u] < quotas_[u] && load_[v] < quotas_[v]) {
      const double dg = gain_(e, load_);
      ++load_[u];
      ++load_[v];
      total_residual_ -= 2;
      stack_.push_back(e);
      dfs(k + 1, current + dg);
      stack_.pop_back();
      total_residual_ += 2;
      --load_[u];
      --load_[v];
    }
    dfs(k + 1, current);
  }

  const graph::Graph& g_;
  const Quotas& quotas_;
  std::vector<EdgeId> order_;
  std::vector<double> optimistic_;
  std::function<double(EdgeId, const std::vector<std::uint32_t>&)> gain_;
  std::vector<std::uint32_t> load_;
  std::vector<double> suffix_;
  std::size_t total_residual_ = 0;

  double best_ = 0.0;
  std::vector<EdgeId> best_set_;
  std::vector<EdgeId> stack_;
  std::size_t explored_ = 0;
};

Matching to_matching(const graph::Graph& g, const Quotas& quotas,
                     const std::vector<EdgeId>& edges) {
  Matching m(g, quotas);
  for (const EdgeId e : edges) m.add(e);
  return m;
}

}  // namespace

Matching exact_max_weight_bmatching(const prefs::EdgeWeights& w, const Quotas& quotas,
                                    ExactInfo* info) {
  const auto& g = w.graph();
  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(),
            [&w](EdgeId a, EdgeId b) { return w.heavier(a, b); });
  std::vector<double> optimistic(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) optimistic[k] = w.weight(order[k]);
  BnB bnb(g, quotas, std::move(order), std::move(optimistic),
          [&w](EdgeId e, const std::vector<std::uint32_t>&) { return w.weight(e); });
  auto [edges, explored] = bnb.solve();
  if (info != nullptr) info->nodes_explored = explored;
  return to_matching(g, quotas, edges);
}

Matching exact_max_satisfaction(const prefs::PreferenceProfile& p, ExactInfo* info) {
  const auto& g = p.graph();
  const auto& quotas = p.quotas();
  // Optimistic per-edge gain: static parts (eq. 9 weight) plus the maximum
  // possible dynamic contribution (b−1)/(bL) on each side (eq. 4 with
  // c = b−1).
  std::vector<double> opt_gain(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    const double bu = p.quota(u);
    const double lu = static_cast<double>(p.list_size(u));
    const double bv = p.quota(v);
    const double lv = static_cast<double>(p.list_size(v));
    opt_gain[e] = prefs::delta_s_static(p, u, v) + prefs::delta_s_static(p, v, u) +
                  (bu - 1.0) / (bu * lu) + (bv - 1.0) / (bv * lv);
  }
  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(),
            [&opt_gain](EdgeId a, EdgeId b) { return opt_gain[a] > opt_gain[b]; });
  std::vector<double> optimistic(order.size());
  for (std::size_t k = 0; k < order.size(); ++k) optimistic[k] = opt_gain[order[k]];

  BnB bnb(g, quotas, std::move(order), std::move(optimistic),
          [&p, &g](EdgeId e, const std::vector<std::uint32_t>& load) {
            // Exact increment: ΔS_uv + ΔS_vu with the current connection
            // counts (eq. 4). Order-independent for a fixed final set.
            const auto& [u, v] = g.edge(e);
            return prefs::delta_s(p, u, v, load[u]) + prefs::delta_s(p, v, u, load[v]);
          });
  auto [edges, explored] = bnb.solve();
  if (info != nullptr) info->nodes_explored = explored;
  return to_matching(g, quotas, edges);
}

}  // namespace overmatch::matching
