// Shared-memory parallel b-Suitor (Khan–Pothen style) for ½-approximate
// maximum weight b-matching — lock-free admission over a packed-word
// `SuitorSlab`, block-partitioned scheduling, pool-backed execution.
//
// Admission is a CAS on the weakest suitor slot: each slot is one 64-bit
// (weight-key, edge-id) word whose integer order equals the heavier order,
// and slot words only ever decrease (bids get heavier), so a scan-then-CAS
// loop needs no per-node lock and a reject is final — exactly the sequential
// "skip for good" rule. There are no spinlocks anywhere on the bidding path.
//
// Scheduling partitions the node range into cache-line-aligned blocks
// (kBlockNodes is a multiple of 64, so the per-node byte/word arrays of two
// blocks never share a cache line). Each worker owns the blocks congruent to
// its index and drains them: first the block's *requeue stack* (a tagged
// Treiber stack of displaced losers — displacements push the loser back to
// its home block, keeping its cursor/slab lines on their home thread), then
// the block's initial node range, claimed in small chunks from an atomic
// cursor. A worker whose own blocks run dry steals from other blocks; an
// atomic token count detects termination. Per-node bidding is serialized by
// a 4-state word (idle/queued/running/rerun): a displacer never waits for a
// running owner — it flags a rerun and moves on.
//
// Because the weight order is a strict total order, the b-Suitor fixed point
// is unique: every thread count and interleaving produces the *identical*
// matching to sequential `b_suitor` (and LIC/LID) — ctest-enforced, including
// a ≥2× four-thread speedup gate on multicore hosts. See DESIGN.md §11.
#pragma once

#include <cstddef>

#include "core/budget.hpp"
#include "matching/matching.hpp"
#include "prefs/weights.hpp"

namespace overmatch::obs {
class Registry;
}

namespace overmatch::util {
class ThreadPool;
}

namespace overmatch::matching {

/// Runs the parallel b-suitor on `threads` workers total (the calling thread
/// is one of them; a transient pool supplies the rest). Produces the same
/// matching as sequential b_suitor for any thread count and interleaving.
///
/// `registry` (optional, caller-owned) receives:
///  * `pbsuitor.proposals`     — accept events (bids admitted, including
///                               those later displaced);
///  * `pbsuitor.displacements` — admitted bids knocked out by heavier ones;
///  * `pbsuitor.bids_placed`   — net bids still placed at quiescence, i.e.
///                               proposals − displacements (see DESIGN.md §7);
///  * `pbsuitor.range_claims`  — initial-range chunks claimed from the
///                               per-block cursors;
///  * `pbsuitor.steals`        — work taken from a non-owned block.
///
/// Anytime (DESIGN.md §14): `budget` caps per-worker productive sweeps over
/// the block set (the parallel analogue of sequential drain rounds) and/or
/// imposes a wall-clock deadline. The first worker past its cap raises a
/// shared halt flag; all workers return at their next block boundary and the
/// mutual-suitor matching of the partial slab — always a valid b-matching —
/// is extracted. `status` (optional) receives sweeps used and the truncation
/// flag. Note the truncated *partial* result is interleaving-dependent; only
/// the completed fixed point is unique.
[[nodiscard]] Matching parallel_b_suitor(const prefs::EdgeWeights& w,
                                         const Quotas& quotas, std::size_t threads,
                                         obs::Registry* registry = nullptr,
                                         const core::Budget& budget = {},
                                         core::BudgetStatus* status = nullptr);

/// Pool-backed variant: workers run as `pool` tasks plus the calling thread,
/// so one pool serves the whole solve (`SolveOptions::pool` / `--threads`)
/// instead of spawning fresh threads per call. Uses pool.size() + 1 workers.
[[nodiscard]] Matching parallel_b_suitor(const prefs::EdgeWeights& w,
                                         const Quotas& quotas,
                                         util::ThreadPool& pool,
                                         obs::Registry* registry = nullptr,
                                         const core::Budget& budget = {},
                                         core::BudgetStatus* status = nullptr);

}  // namespace overmatch::matching
