// Shared-memory parallel b-Suitor (Khan–Pothen style) for ½-approximate
// maximum weight b-matching.
//
// Threads claim contiguous node ranges from a shared atomic counter
// (work-stealing over ranges: a fast thread simply claims more ranges) and
// run the bidding loop for each claimed node. Per-node state is protected by
// two arrays of spinlocks:
//  * a *suitor* lock guarding node v's suitor heap — held only for the O(log b)
//    admit check + insertion, never while acquiring another lock;
//  * a *bid* lock serializing the bidding loop of a single node (a node can be
//    displaced concurrently from two different partners and must not be
//    re-processed by two threads at once).
// Lock acquisition order is bid(u) → suitor(v) with suitor locks never
// nested, so the wait-for graph is acyclic and deadlock-free. Displaced
// losers go to the displacing thread's local stack — work is conserved
// without any global queue or mutex.
//
// Each node's suitor set is a small binary heap keyed by the precomputed
// 64-bit weight keys with the *weakest* suitor at the root, so the
// admit-or-reject decision is one integer compare and displacement is
// O(log b). Because the weight order is a strict total order, the b-Suitor
// fixed point is unique: the parallel run produces the *identical* matching
// to the sequential `b_suitor` (and to LIC/LID) regardless of thread
// interleaving — tests and the TSan stress suite verify this.
#pragma once

#include <cstddef>

#include "matching/matching.hpp"
#include "prefs/weights.hpp"

namespace overmatch::obs {
class Registry;
}

namespace overmatch::matching {

/// Runs the parallel b-suitor on `threads` workers. Produces the same
/// matching as sequential b_suitor for any thread count and interleaving.
/// `registry` (optional, caller-owned) receives `pbsuitor.proposals`,
/// `pbsuitor.displacements`, and `pbsuitor.range_claims` (node ranges
/// claimed from the shared work-stealing counter).
[[nodiscard]] Matching parallel_b_suitor(const prefs::EdgeWeights& w,
                                         const Quotas& quotas, std::size_t threads,
                                         obs::Registry* registry = nullptr);

}  // namespace overmatch::matching
