#include "matching/lic.hpp"

#include <algorithm>
#include <deque>

namespace overmatch::matching {

Matching lic_global(const prefs::EdgeWeights& w, const Quotas& quotas) {
  const auto& g = w.graph();
  Matching m(g, quotas);
  std::vector<EdgeId> order(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) order[e] = e;
  std::sort(order.begin(), order.end(),
            [&w](EdgeId a, EdgeId b) { return w.heavier(a, b); });
  for (const EdgeId e : order) {
    if (m.can_add(e)) m.add(e);
  }
  return m;
}

namespace {

/// Incident-edge index: for every node, its edges sorted heaviest-first with
/// a head cursor that skips edges that became unavailable.
class IncidenceIndex {
 public:
  IncidenceIndex(const prefs::EdgeWeights& w, const Matching& m)
      : w_(&w), m_(&m), sorted_(w.graph().num_nodes()), head_(w.graph().num_nodes(), 0) {
    const auto& g = w.graph();
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      auto& s = sorted_[v];
      s.reserve(g.degree(v));
      for (const auto& a : g.neighbors(v)) s.push_back(a.edge);
      std::sort(s.begin(), s.end(),
                [&w](EdgeId x, EdgeId y) { return w.heavier(x, y); });
    }
  }

  /// Heaviest edge at v that is still addable, or kInvalidEdge.
  [[nodiscard]] EdgeId top(graph::NodeId v) {
    auto& h = head_[v];
    const auto& s = sorted_[v];
    while (h < s.size() && !m_->can_add(s[h])) ++h;
    return h < s.size() ? s[h] : graph::kInvalidEdge;
  }

 private:
  const prefs::EdgeWeights* w_;
  const Matching* m_;
  std::vector<std::vector<EdgeId>> sorted_;
  std::vector<std::size_t> head_;
};

}  // namespace

Matching lic_local(const prefs::EdgeWeights& w, const Quotas& quotas,
                   std::uint64_t scan_seed, LicLocalStats* stats) {
  const auto& g = w.graph();
  Matching m(g, quotas);
  IncidenceIndex index(w, m);

  // Candidate pool seeded with every edge in a shuffled order; an edge is
  // selected when it is the top available edge of both endpoints. Selections
  // can promote other edges to local dominance, so endpoints' new tops are
  // re-enqueued after every change. The queued[] flag keeps each edge in the
  // queue at most once: every neighbour scan promotes the same top edge, and
  // without the flag the queue balloons to O(edges × rounds) duplicates.
  std::vector<EdgeId> pool(g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) pool[e] = e;
  util::Rng rng(scan_seed);
  rng.shuffle(pool);
  std::deque<EdgeId> candidates(pool.begin(), pool.end());
  std::vector<char> queued(g.num_edges(), 1);

  LicLocalStats local_stats;
  local_stats.peak_queue = candidates.size();
  const auto enqueue = [&](EdgeId e) {
    if (e == graph::kInvalidEdge || queued[e] != 0) return;
    queued[e] = 1;
    candidates.push_back(e);
    local_stats.peak_queue = std::max(local_stats.peak_queue, candidates.size());
  };

  while (!candidates.empty()) {
    const EdgeId e = candidates.front();
    candidates.pop_front();
    queued[e] = 0;
    ++local_stats.pops;
    if (!m.can_add(e)) continue;
    const auto& [u, v] = g.edge(e);
    if (index.top(u) != e || index.top(v) != e) continue;  // not locally heaviest now
    m.add(e);
    // Availability changed around u and v: their (and their neighbours')
    // current tops are fresh candidates.
    for (const graph::NodeId x : {u, v}) {
      enqueue(index.top(x));
      for (const auto& a : g.neighbors(x)) enqueue(index.top(a.neighbor));
    }
  }
  OM_CHECK_MSG(m.is_maximal(), "lic_local must produce a maximal b-matching");
  if (stats != nullptr) *stats = local_stats;
  return m;
}

}  // namespace overmatch::matching
