#include "matching/lic.hpp"

#include <algorithm>

#include "obs/registry.hpp"

namespace overmatch::matching {

Matching lic_global(const prefs::EdgeWeights& w, const Quotas& quotas) {
  const auto& g = w.graph();
  Matching m(g, quotas);
  // The heaviest-first order is precomputed at EdgeWeights construction; the
  // old per-run O(m log m) sort is gone.
  for (const EdgeId e : w.by_weight()) {
    if (m.can_add(e)) m.add(e);
  }
  return m;
}

namespace {

struct LicLocalStats {
  std::size_t pops = 0;        ///< candidates dequeued over the whole run
  std::size_t peak_queue = 0;  ///< high-water mark of the candidate queue
};

/// Incident-edge cursors over the EdgeWeights CSR incidence index: for every
/// node, a head cursor into its pre-sorted (heaviest-first) incident edges
/// that skips edges that became unavailable.
class IncidenceIndex {
 public:
  IncidenceIndex(const prefs::EdgeWeights& w, const Matching& m)
      : w_(&w), m_(&m), head_(w.graph().num_nodes(), 0) {}

  /// Heaviest edge at v that is still addable, or kInvalidEdge.
  [[nodiscard]] EdgeId top(graph::NodeId v) {
    auto& h = head_[v];
    const auto s = w_->incident(v);
    while (h < s.size() && !m_->can_add(s[h])) ++h;
    return h < s.size() ? s[h] : graph::kInvalidEdge;
  }

 private:
  const prefs::EdgeWeights* w_;
  const Matching* m_;
  std::vector<std::size_t> head_;
};

Matching lic_local_impl(const prefs::EdgeWeights& w, const Quotas& quotas,
                        std::uint64_t scan_seed, LicLocalStats& out_stats) {
  const auto& g = w.graph();
  Matching m(g, quotas);
  IncidenceIndex index(w, m);

  // Candidate queue seeded with every node's top available edge, visiting
  // nodes in a seeded arbitrary order. A locally-dominant edge is by
  // definition the top of both endpoints, so seeding with tops (rather than
  // the full edge set) loses no candidate and cuts the initial queue from m
  // to ≤ n entries. An edge is selected when it is the top available edge of
  // both endpoints. Selections can promote other edges to local dominance,
  // so endpoints' new tops are re-enqueued after every change. The queued[]
  // flag keeps each edge in the queue at most once: every neighbour scan
  // promotes the same top edge, and without the flag the queue balloons to
  // O(edges × rounds) duplicates. The queue is a flat vector with a head
  // cursor — total enqueues are bounded, and pop is one index increment.
  std::vector<EdgeId> candidates;
  candidates.reserve(g.num_nodes());
  std::size_t head = 0;
  std::vector<char> queued(g.num_edges(), 0);

  LicLocalStats local_stats;
  const auto enqueue = [&](EdgeId e) {
    if (e == graph::kInvalidEdge || queued[e] != 0) return;
    queued[e] = 1;
    candidates.push_back(e);
    local_stats.peak_queue =
        std::max(local_stats.peak_queue, candidates.size() - head);
  };

  std::vector<graph::NodeId> order(g.num_nodes());
  for (graph::NodeId v = 0; v < g.num_nodes(); ++v) order[v] = v;
  util::Rng rng(scan_seed);
  rng.shuffle(order);
  for (const graph::NodeId v : order) enqueue(index.top(v));

  while (head < candidates.size()) {
    const EdgeId e = candidates[head++];
    queued[e] = 0;
    ++local_stats.pops;
    if (!m.can_add(e)) continue;
    const auto& [u, v] = g.edge(e);
    if (index.top(u) != e || index.top(v) != e) continue;  // not locally heaviest now
    m.add(e);
    // Availability changed around u and v: their own tops advance past e, and
    // a *neighbour's* top can only have changed if its head edge became
    // unavailable — which requires the far endpoint to have just saturated
    // (selecting e blocks no edge other than e itself). Each node saturates
    // at most once, so the neighbour rescans total O(m) over the whole run
    // instead of O(m·b). Same rule as the parallel frontier re-activation.
    for (const graph::NodeId x : {u, v}) {
      enqueue(index.top(x));
      if (m.load(x) == m.quota(x)) {
        for (const auto& a : g.neighbors(x)) enqueue(index.top(a.neighbor));
      }
    }
  }
  OM_CHECK_MSG(m.is_maximal(), "lic_local must produce a maximal b-matching");
  out_stats = local_stats;
  return m;
}

}  // namespace

Matching lic_local(const prefs::EdgeWeights& w, const Quotas& quotas,
                   std::uint64_t scan_seed, obs::Registry* registry) {
  LicLocalStats stats;
  Matching m = lic_local_impl(w, quotas, scan_seed, stats);
  if (registry != nullptr) {
    registry->counter("lic.pops").inc(stats.pops);
    registry->gauge("lic.peak_queue").set_max(static_cast<double>(stats.peak_queue));
  }
  return m;
}

}  // namespace overmatch::matching
