// Exact maximum-cardinality matching machinery.
//
// * blossom_max_matching — Edmonds' blossom algorithm (unweighted, general
//   graphs, O(V³)): the classic substrate.
// * max_cardinality_bmatching — exact maximum number of connections any
//   b-matching can establish, via the Tutte–Gabow gadget reduction: each
//   node v becomes b_v copies; each edge e=(u,v) becomes a 2-node gadget
//   a_e—b_e with a_e adjacent to u's copies and b_e to v's copies. A maximum
//   matching of the gadget graph has size m + k*, where k* is the optimum
//   b-matching cardinality.
//
// Gives the library an *optimal utilization* baseline: how many of the
// Σ b_v / 2 possible connections the greedy/LID matching actually realizes
// versus the best possible (bench E14).
#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "matching/matching.hpp"

namespace overmatch::matching {

/// Edmonds blossom maximum-cardinality matching. Returns mate[v] (partner or
/// graph::kInvalidNode).
[[nodiscard]] std::vector<graph::NodeId> blossom_max_matching(const graph::Graph& g);

/// Number of matched pairs in a mate vector.
[[nodiscard]] std::size_t matching_size(const std::vector<graph::NodeId>& mate);

/// Exact maximum cardinality over all b-matchings of (g, quotas).
[[nodiscard]] std::size_t max_cardinality_bmatching(const graph::Graph& g,
                                                    const Quotas& quotas);

}  // namespace overmatch::matching
