#include "matching/dp_matcher.hpp"

#include <bit>
#include <vector>

namespace overmatch::matching {

Matching exact_mwm_dp(const prefs::EdgeWeights& w) {
  const auto& g = w.graph();
  const std::size_t n = g.num_nodes();
  OM_CHECK_MSG(n <= 22, "exact_mwm_dp supports at most 22 nodes");
  const std::size_t full = std::size_t{1} << n;

  // dp[mask] = best weight when only the nodes in `mask` remain undecided.
  // choice[mask] = partner matched with the lowest set bit (or n = skip).
  std::vector<double> dp(full, 0.0);
  std::vector<std::uint8_t> choice(full, 0);
  for (std::size_t mask = 1; mask < full; ++mask) {
    const auto i = static_cast<NodeId>(std::countr_zero(mask));
    const std::size_t without_i = mask & (mask - 1);
    dp[mask] = dp[without_i];  // leave i unmatched
    choice[mask] = static_cast<std::uint8_t>(n);
    for (const auto& a : g.neighbors(i)) {
      const NodeId j = a.neighbor;
      if ((mask >> j & 1U) == 0) continue;
      const double cand = w.weight(a.edge) + dp[mask & ~(std::size_t{1} << j) & (mask - 1)];
      if (cand > dp[mask]) {
        dp[mask] = cand;
        choice[mask] = static_cast<std::uint8_t>(j);
      }
    }
  }

  Matching m(g, prefs::Quotas(n, 1));
  std::size_t mask = full - 1;
  while (mask != 0) {
    const auto i = static_cast<NodeId>(std::countr_zero(mask));
    const auto j = static_cast<NodeId>(choice[mask]);
    if (j == n) {
      mask &= mask - 1;
      continue;
    }
    m.add(g.find_edge(i, j));
    mask &= ~(std::size_t{1} << j);
    mask &= mask - 1;
  }
  return m;
}

}  // namespace overmatch::matching
