#include "matching/suitor_slab.hpp"

#include <algorithm>

namespace overmatch::matching {

SuitorSlab::SuitorSlab(const prefs::EdgeWeights& w, const Quotas& quotas)
    : w_(&w), off_(w.graph().num_nodes() + 1, 0) {
  const auto& g = w.graph();
  // Packing needs key and edge id in 32 bits each; the key is the edge's
  // dense rank, so both are < num_edges. Far beyond any in-memory instance.
  OM_CHECK_MSG(g.num_edges() < 0xFFFF'FFFFull,
               "SuitorSlab packs (key, edge) into 64 bits: m must be < 2^32-1");
  OM_CHECK(quotas.size() == g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    off_[v + 1] = off_[v] + std::min<std::size_t>(quotas[v], g.degree(v));
  }
  slots_ = std::vector<std::atomic<Word>>(off_.back());
  for (auto& s : slots_) s.store(kEmpty, std::memory_order_relaxed);
}

std::size_t SuitorSlab::count(NodeId v) const {
  const std::atomic<Word>* s = slots_.data() + off_[v];
  const std::size_t cap = capacity(v);
  std::size_t n = 0;
  for (std::size_t i = 0; i < cap; ++i) {
    if (s[i].load(std::memory_order_relaxed) != kEmpty) ++n;
  }
  return n;
}

SuitorSlab::Admit SuitorSlab::admit_if(NodeId v, Word word) {
  std::atomic<Word>* s = slots_.data() + off_[v];
  const std::size_t cap = capacity(v);
  if (cap == 0) return {};
  std::size_t mi = 0;
  Word mw = s[0].load(std::memory_order_relaxed);
  for (std::size_t i = 1; i < cap; ++i) {
    const Word wi = s[i].load(std::memory_order_relaxed);
    if (wi > mw) {
      mw = wi;
      mi = i;
    }
  }
  if (word >= mw) return {};
  s[mi].store(word, std::memory_order_relaxed);
  return {true, mw == kEmpty ? kEmpty : mw};
}

void SuitorSlab::erase(NodeId v, EdgeId e) {
  std::atomic<Word>* s = slots_.data() + off_[v];
  const std::size_t cap = capacity(v);
  const Word word = word_of(e);
  for (std::size_t i = 0; i < cap; ++i) {
    if (s[i].load(std::memory_order_relaxed) == word) {
      s[i].store(kEmpty, std::memory_order_relaxed);
      return;
    }
  }
  OM_CHECK_MSG(false, "SuitorSlab::erase of a bid not held");
}

bool SuitorSlab::holds(NodeId v, EdgeId e) const {
  const std::atomic<Word>* s = slots_.data() + off_[v];
  const std::size_t cap = capacity(v);
  const Word word = word_of(e);
  for (std::size_t i = 0; i < cap; ++i) {
    if (s[i].load(std::memory_order_relaxed) == word) return true;
  }
  return false;
}

SuitorSlab::Word SuitorSlab::weakest(NodeId v) const {
  const std::atomic<Word>* s = slots_.data() + off_[v];
  const std::size_t cap = capacity(v);
  Word weakest = kEmpty;
  for (std::size_t i = 0; i < cap; ++i) {
    const Word word = s[i].load(std::memory_order_relaxed);
    if (word == kEmpty) continue;
    if (weakest == kEmpty || word > weakest) weakest = word;
  }
  return weakest;
}

SuitorSlab::Admit SuitorSlab::try_admit(NodeId v, Word word) {
  std::atomic<Word>* s = slots_.data() + off_[v];
  const std::size_t cap = capacity(v);
  if (cap == 0) return {};
  for (;;) {
    // Find the weakest slot. Relaxed loads are safe: slot words only
    // decrease, so a stale read can only *overstate* the weakest word — the
    // CAS below re-validates before anything is admitted, and a reject
    // computed from an overstated bound is still a reject against every
    // current (heavier) value.
    std::size_t mi = 0;
    Word mw = s[0].load(std::memory_order_relaxed);
    for (std::size_t i = 1; i < cap; ++i) {
      const Word wi = s[i].load(std::memory_order_relaxed);
      if (wi > mw) {
        mw = wi;
        mi = i;
      }
    }
    if (word >= mw) return {};  // final: v's suitors only get heavier
    if (s[mi].compare_exchange_weak(mw, word, std::memory_order_acq_rel,
                                    std::memory_order_relaxed)) {
      return {true, mw == kEmpty ? kEmpty : mw};
    }
    // Lost the race: a heavier bid took the slot. Rescan — each failure
    // means some admission succeeded, so retries are bounded by the
    // admissions still possible at v.
  }
}

bool SuitorSlab::try_erase(NodeId v, Word word) {
  std::atomic<Word>* s = slots_.data() + off_[v];
  const std::size_t cap = capacity(v);
  for (std::size_t i = 0; i < cap; ++i) {
    if (s[i].load(std::memory_order_relaxed) != word) continue;
    Word expect = word;
    // acq_rel so the erase joins the slot's modification order cleanly; a
    // failed CAS means a heavier bid displaced `word` between the scan and
    // here — the displacer already handles the loser.
    return s[i].compare_exchange_strong(expect, kEmpty,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed);
  }
  return false;  // already displaced by a concurrent admission
}

}  // namespace overmatch::matching
