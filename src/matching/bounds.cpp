#include "matching/bounds.hpp"

#include <algorithm>

namespace overmatch::matching {

double half_top_quota_bound(const prefs::EdgeWeights& w, const Quotas& quotas) {
  const auto& g = w.graph();
  OM_CHECK(quotas.size() == g.num_nodes());
  double total = 0.0;
  std::vector<double> incident;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    incident.clear();
    for (const auto& a : g.neighbors(v)) incident.push_back(w.weight(a.edge));
    const std::size_t k = std::min<std::size_t>(quotas[v], incident.size());
    std::partial_sort(incident.begin(), incident.begin() + static_cast<std::ptrdiff_t>(k),
                      incident.end(), std::greater<>());
    for (std::size_t i = 0; i < k; ++i) total += incident[i];
  }
  return total / 2.0;
}

double top_edges_bound(const prefs::EdgeWeights& w, const Quotas& quotas) {
  std::size_t budget = 0;
  for (const auto q : quotas) budget += q;
  budget /= 2;
  std::vector<double> ws = w.values();
  const std::size_t k = std::min(budget, ws.size());
  std::partial_sort(ws.begin(), ws.begin() + static_cast<std::ptrdiff_t>(k), ws.end(),
                    std::greater<>());
  double total = 0.0;
  for (std::size_t i = 0; i < k; ++i) total += ws[i];
  return total;
}

}  // namespace overmatch::matching
