// Comparator algorithms for the evaluation benches.
//
// * random_order_greedy — maximal b-matching in a random edge order; isolates
//   the value of *locally-heaviest* ordering (ablation E9).
// * rank_mutual_best — decentralized mutual-best-by-rank locking in rounds,
//   the natural dynamics for *acyclic* preference systems (Gai et al. [3]);
//   can stall with unfilled quotas when preferences contain rank cycles.
// * best_reply_dynamics — repeatedly satisfy a blocking pair, dropping worst
//   partners when full (stable b-matching dynamics, Mathieu [13]); converges
//   to a stable matching when it converges, but may cycle forever under
//   cyclic preferences — the failure mode motivating the paper's
//   optimization-based reformulation.
#pragma once

#include <cstdint>

#include "matching/matching.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"
#include "util/rng.hpp"

namespace overmatch::matching {

/// Maximal b-matching built by scanning edges in a seeded random order.
[[nodiscard]] Matching random_order_greedy(const prefs::EdgeWeights& w,
                                           const Quotas& quotas, std::uint64_t seed);

/// Round-synchronous mutual-best locking on raw preference ranks. Terminates
/// when a round produces no lock (always, since locks are monotone).
[[nodiscard]] Matching rank_mutual_best(const prefs::PreferenceProfile& p);

struct BestReplyResult {
  Matching matching;
  std::size_t steps = 0;
  bool converged = false;  ///< true iff no blocking pair remains
};

/// Random blocking-pair dynamics with per-side worst-partner eviction.
/// Stops at convergence (stable matching) or after `max_steps`.
[[nodiscard]] BestReplyResult best_reply_dynamics(const prefs::PreferenceProfile& p,
                                                  std::uint64_t seed,
                                                  std::size_t max_steps);

}  // namespace overmatch::matching
