// Exact maximum-weight one-to-one matching by bitmask dynamic programming.
//
// Independent cross-check for the branch & bound solver on the b ≡ 1 case:
// a completely different algorithm (O(2ⁿ·n) subset DP) that must agree with
// it to machine precision. Limited to n ≤ 22 nodes.
#pragma once

#include "matching/matching.hpp"
#include "prefs/weights.hpp"

namespace overmatch::matching {

/// Exact maximum-weight matching with all quotas = 1. Requires n ≤ 22.
[[nodiscard]] Matching exact_mwm_dp(const prefs::EdgeWeights& w);

}  // namespace overmatch::matching
