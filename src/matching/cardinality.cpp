#include "matching/cardinality.hpp"

#include <algorithm>
#include <queue>

namespace overmatch::matching {

using graph::kInvalidNode;
using graph::NodeId;

namespace {

/// Edmonds blossom algorithm state for one graph (adjacency copied into flat
/// vectors once; the augmenting BFS with blossom contraction is the textbook
/// O(V³) version).
class Blossom {
 public:
  explicit Blossom(const graph::Graph& g)
      : g_(&g),
        n_(g.num_nodes()),
        mate_(n_, kInvalidNode),
        parent_(n_, kInvalidNode),
        base_(n_, 0),
        in_queue_(n_, 0),
        in_blossom_(n_, 0) {}

  std::vector<NodeId> solve() {
    for (NodeId v = 0; v < n_; ++v) {
      if (mate_[v] == kInvalidNode) {
        if (const NodeId u = find_augmenting_path(v); u != kInvalidNode) {
          augment(u);
        }
      }
    }
    return mate_;
  }

 private:
  /// Lowest common ancestor of a and b in the alternating forest, walking
  /// through blossom bases.
  NodeId lca(NodeId a, NodeId b) {
    std::vector<std::uint8_t> used(n_, 0);
    for (NodeId x = a;;) {
      x = base_[x];
      used[x] = 1;
      if (mate_[x] == kInvalidNode) break;
      x = parent_[mate_[x]];
    }
    for (NodeId y = b;;) {
      y = base_[y];
      if (used[y]) return y;
      y = parent_[mate_[y]];
    }
  }

  /// Mark the path from v up to the blossom base `b`, setting parents toward
  /// `child` so the contracted blossom stays traversable.
  void mark_path(NodeId v, NodeId b, NodeId child) {
    while (base_[v] != b) {
      in_blossom_[base_[v]] = 1;
      in_blossom_[base_[mate_[v]]] = 1;
      parent_[v] = child;
      child = mate_[v];
      v = parent_[mate_[v]];
    }
  }

  void contract(NodeId v, NodeId u, std::queue<NodeId>& q) {
    const NodeId b = lca(v, u);
    std::fill(in_blossom_.begin(), in_blossom_.end(), 0);
    mark_path(v, b, u);
    mark_path(u, b, v);
    for (NodeId x = 0; x < n_; ++x) {
      if (in_blossom_[base_[x]]) {
        base_[x] = b;
        if (!in_queue_[x]) {
          in_queue_[x] = 1;
          q.push(x);
        }
      }
    }
  }

  /// BFS from an exposed root; returns the endpoint of an augmenting path,
  /// or kInvalidNode.
  NodeId find_augmenting_path(NodeId root) {
    std::fill(parent_.begin(), parent_.end(), kInvalidNode);
    std::fill(in_queue_.begin(), in_queue_.end(), 0);
    for (NodeId v = 0; v < n_; ++v) base_[v] = v;

    std::queue<NodeId> q;
    q.push(root);
    in_queue_[root] = 1;
    while (!q.empty()) {
      const NodeId v = q.front();
      q.pop();
      for (const auto& a : g_->neighbors(v)) {
        const NodeId u = a.neighbor;
        if (base_[v] == base_[u] || mate_[v] == u) continue;
        if (u == root || (mate_[u] != kInvalidNode &&
                          parent_[mate_[u]] != kInvalidNode)) {
          // Odd cycle: contract the blossom.
          contract(v, u, q);
        } else if (parent_[u] == kInvalidNode) {
          parent_[u] = v;
          if (mate_[u] == kInvalidNode) {
            return u;  // augmenting path found
          }
          if (!in_queue_[mate_[u]]) {
            in_queue_[mate_[u]] = 1;
            q.push(mate_[u]);
          }
        }
      }
    }
    return kInvalidNode;
  }

  void augment(NodeId u) {
    while (u != kInvalidNode) {
      const NodeId pv = parent_[u];
      const NodeId ppv = mate_[pv];
      mate_[u] = pv;
      mate_[pv] = u;
      u = ppv;
    }
  }

  const graph::Graph* g_;
  std::size_t n_;
  std::vector<NodeId> mate_;
  std::vector<NodeId> parent_;
  std::vector<NodeId> base_;
  std::vector<std::uint8_t> in_queue_;
  std::vector<std::uint8_t> in_blossom_;
};

}  // namespace

std::vector<NodeId> blossom_max_matching(const graph::Graph& g) {
  std::vector<NodeId> mate = Blossom(g).solve();
  // Sanity: the mate relation must be symmetric.
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (mate[v] != kInvalidNode) {
      OM_CHECK(mate[mate[v]] == v);
      OM_CHECK(g.has_edge(v, mate[v]));
    }
  }
  return mate;
}

std::size_t matching_size(const std::vector<NodeId>& mate) {
  std::size_t matched = 0;
  for (const NodeId m : mate) {
    if (m != kInvalidNode) ++matched;
  }
  return matched / 2;
}

std::size_t max_cardinality_bmatching(const graph::Graph& g, const Quotas& quotas) {
  OM_CHECK(quotas.size() == g.num_nodes());
  // Gadget graph: copies of each node followed by 2 gadget nodes per edge.
  std::vector<NodeId> first_copy(g.num_nodes());
  NodeId next = 0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    first_copy[v] = next;
    next += quotas[v];
  }
  const NodeId gadget_base = next;
  const std::size_t total =
      static_cast<std::size_t>(next) + 2 * g.num_edges();

  graph::GraphBuilder builder(total);
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    const NodeId a_e = gadget_base + 2 * e;
    const NodeId b_e = a_e + 1;
    builder.add_edge(a_e, b_e);
    for (std::uint32_t i = 0; i < quotas[u]; ++i) builder.add_edge(first_copy[u] + i, a_e);
    for (std::uint32_t j = 0; j < quotas[v]; ++j) builder.add_edge(first_copy[v] + j, b_e);
  }
  const auto h = std::move(builder).build();
  const std::size_t mm = matching_size(blossom_max_matching(h));
  // |M_H| = m + k*  ⇒  k* = |M_H| − m.
  OM_CHECK(mm >= g.num_edges());
  return mm - g.num_edges();
}

}  // namespace overmatch::matching
