// Local-search post-processing on the true satisfaction objective (eq. 1).
//
// LID optimizes the *modified* objective (edge weights); the dropped dynamic
// term leaves satisfaction on the table. This pass hill-climbs the original
// objective with two move types until no move improves:
//   * add  — select an addable edge (always improves: ΔS > 0);
//   * swap — replace a selected edge e by an unselected edge f that shares an
//            endpoint and is blocked only by e's capacity use.
// A centralized refinement (each move needs the exact satisfaction delta of
// two nodes), included as the E15 ablation: how much satisfaction does the
// paper's modified-objective shortcut actually give up, and how much of it
// can a cheap post-pass recover?
#pragma once

#include "matching/matching.hpp"
#include "prefs/preference_profile.hpp"

namespace overmatch::matching {

struct LocalSearchInfo {
  std::size_t adds = 0;
  std::size_t swaps = 0;
  double satisfaction_before = 0.0;
  double satisfaction_after = 0.0;
};

/// Improves `m` in place; returns move statistics. Terminates: total
/// satisfaction strictly increases per move and is bounded by n.
LocalSearchInfo improve_satisfaction(const prefs::PreferenceProfile& p, Matching& m);

}  // namespace overmatch::matching
