#include "matching/lid.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "sim/reliable.hpp"
#include "sim/threaded_runtime.hpp"

namespace overmatch::matching {

const char* lid_runtime_name(LidRuntime r) {
  switch (r) {
    case LidRuntime::kEventSim: return "event-sim";
    case LidRuntime::kThreaded: return "threaded";
  }
  return "?";
}

LidNode::LidNode(NodeId self, std::uint32_t quota, const prefs::EdgeWeights& w)
    : self_(self), quota_(quota) {
  const auto& g = w.graph();
  const auto adj = g.neighbors(self);
  nbr_.reserve(adj.size());
  ids_sorted_.reserve(adj.size());
  std::vector<graph::EdgeId> edge_of(adj.size());
  for (std::size_t k = 0; k < adj.size(); ++k) {
    NeighborState st;
    st.node = adj[k].neighbor;
    nbr_.push_back(st);
    ids_sorted_.push_back(adj[k].neighbor);  // adjacency is id-sorted already
    edge_of[k] = adj[k].edge;
  }
  by_weight_.resize(nbr_.size());
  for (std::size_t k = 0; k < nbr_.size(); ++k) by_weight_[k] = k;
  std::sort(by_weight_.begin(), by_weight_.end(),
            [&](std::size_t a, std::size_t b) { return w.heavier(edge_of[a], edge_of[b]); });
}

std::size_t LidNode::local_index(NodeId neighbor) const {
  const auto it = std::lower_bound(ids_sorted_.begin(), ids_sorted_.end(), neighbor);
  OM_CHECK_MSG(it != ids_sorted_.end() && *it == neighbor,
               "LID: message from a non-neighbour");
  return static_cast<std::size_t>(it - ids_sorted_.begin());
}

void LidNode::top_up_proposals(sim::Outbox& out) {
  // Keep |P| = locked + outstanding topped up to the quota while untried
  // candidates remain (Algorithm 1 lines 2–3 and 9–11).
  while (!finished_ && locked_count_ + outstanding_count_ < quota_ &&
         next_candidate_ < by_weight_.size()) {
    auto& st = nbr_[by_weight_[next_candidate_++]];
    if (!st.in_u) continue;  // already answered us with REJ meanwhile
    st.proposed = true;
    st.outstanding = true;
    ++outstanding_count_;
    out.send(st.node, sim::Message{kMsgProp, 0});
  }
}

void LidNode::try_lock_and_finish(sim::Outbox& out) {
  // Lock every mutual proposal (line 12–14): v ∈ (P\K) ∩ A.
  for (auto& st : nbr_) {
    if (st.outstanding && st.approached && !st.locked) {
      st.locked = true;
      st.outstanding = false;
      --outstanding_count_;
      ++locked_count_;
      st.in_u = false;
      st.approached = false;
      locked_.push_back(st.node);
      OM_CHECK(locked_count_ <= quota_);
    }
  }
  if (finished_) return;
  // Line 15–16: quota satisfied and nothing outstanding → reject everyone
  // still unanswered. (With no candidates left and nothing outstanding, U is
  // already empty and the node is done.)
  if (outstanding_count_ == 0 &&
      (locked_count_ == quota_ || next_candidate_ >= by_weight_.size())) {
    for (auto& st : nbr_) {
      if (st.in_u) {
        st.in_u = false;
        out.send(st.node, sim::Message{kMsgRej, 0});
      }
    }
    finished_ = true;
  }
}

void LidNode::on_start(sim::Outbox& out) {
  top_up_proposals(out);
  try_lock_and_finish(out);  // degree-0 / quota-0 corner: finish immediately
}

void LidNode::on_message(NodeId from, const sim::Message& msg, sim::Outbox& out) {
  const std::size_t k = local_index(from);
  auto& st = nbr_[k];
  if (msg.kind == kMsgProp) {
    st.approached = true;
    if (finished_ || !st.in_u) {
      // We already answered this neighbour (broadcast REJ at finish crossed
      // their PROP on the wire). The earlier REJ stands; nothing to do.
      return;
    }
    try_lock_and_finish(out);
    return;
  }
  OM_CHECK(msg.kind == kMsgRej);
  OM_CHECK_MSG(!st.locked, "LID: REJ from a locked partner");
  st.in_u = false;
  if (st.outstanding) {
    st.outstanding = false;
    --outstanding_count_;
  }
  if (!finished_) {
    top_up_proposals(out);
    try_lock_and_finish(out);
  }
}

namespace {

LidResult extract_result(const prefs::EdgeWeights& w, const Quotas& quotas,
                         const std::vector<std::unique_ptr<LidNode>>& nodes,
                         sim::MessageStats stats) {
  const auto& g = w.graph();
  // Truncated runs (anytime budget, DESIGN.md §14) leave some automata
  // unfinished and can leave one-sided locks: a node locks on a crossing
  // PROP whose counterpart was suppressed in flight. Extraction is then
  // lenient — only mutual locks become edges (a valid b-matching, since
  // locks respect quotas on both sides) — where a completed run asserts
  // termination and lock symmetry as hard invariants.
  const bool truncated = stats.truncated;
  Matching m(g, quotas);
  for (const auto& node : nodes) {
    OM_CHECK_MSG(truncated || node->terminated(), "LID: node did not terminate");
    for (const NodeId v : node->locked_partners()) {
      // Add each locked edge once; verify the lock is symmetric.
      const auto& partner = nodes[v];
      const auto& pl = partner->locked_partners();
      const bool mutual =
          std::find(pl.begin(), pl.end(), node->id()) != pl.end();
      OM_CHECK_MSG(truncated || mutual, "LID: asymmetric lock");
      if (mutual && node->id() < v) {
        const graph::EdgeId e = g.find_edge(node->id(), v);
        OM_CHECK(e != graph::kInvalidEdge);
        m.add(e);
      }
    }
  }
  LidResult r{std::move(m), std::move(stats), 0, truncated, 0, {}};
  r.rounds_used = r.stats.rounds_used;
  return r;
}

std::vector<std::unique_ptr<LidNode>> make_nodes(const prefs::EdgeWeights& w,
                                                 const Quotas& quotas) {
  const auto& g = w.graph();
  OM_CHECK(quotas.size() == g.num_nodes());
  std::vector<std::unique_ptr<LidNode>> nodes;
  nodes.reserve(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    nodes.push_back(std::make_unique<LidNode>(v, quotas[v], w));
  }
  return nodes;
}

}  // namespace

LidResult run_lid(const prefs::EdgeWeights& w, const Quotas& quotas,
                  const LidOptions& options) {
  OM_CHECK_MSG(options.loss_rate >= 0.0 && options.loss_rate < 1.0,
               "LID loss_rate must be in [0, 1)");
  auto nodes = make_nodes(w, quotas);
  const bool lossy = options.loss_rate > 0.0 || options.reliable;

  // Lossy runs compose every node with the reliable-delivery adapter. The
  // retransmit interval (virtual-time units) exceeds the max DES round trip
  // (link delays are in [0.5, 1.5]); the threaded runtime maps one unit to
  // Options::time_unit of real time, so 4.0 units dwarf an in-process hop.
  constexpr double kRetransmitInterval = 4.0;
  std::vector<std::unique_ptr<sim::ReliableAgent>> wrappers;
  std::vector<sim::Agent*> agents;
  agents.reserve(nodes.size());
  if (lossy) {
    wrappers.reserve(nodes.size());
    for (NodeId v = 0; v < nodes.size(); ++v) {
      wrappers.push_back(std::make_unique<sim::ReliableAgent>(
          v, nodes[v].get(), kRetransmitInterval, options.registry));
      agents.push_back(wrappers.back().get());
    }
  } else {
    for (const auto& n : nodes) agents.push_back(n.get());
  }

  sim::MessageStats stats;
  switch (options.runtime) {
    case LidRuntime::kEventSim: {
      // Retransmission timers need virtual time, so lossy runs promote a
      // non-delay schedule to kRandomDelay (the historical lossy behaviour).
      sim::Schedule schedule = options.schedule;
      if (lossy && schedule != sim::Schedule::kRandomDelay &&
          schedule != sim::Schedule::kAdversarialDelay) {
        schedule = sim::Schedule::kRandomDelay;
      }
      sim::EventSimulator es(std::move(agents), schedule, options.seed);
      es.set_registry(options.registry);
      es.set_budget(options.budget);
      if (options.loss_rate > 0.0) es.set_loss_probability(options.loss_rate);
      stats = es.run();
      break;
    }
    case LidRuntime::kThreaded: {
      sim::ThreadedRuntime::Options rt_options;
      rt_options.loss_probability = options.loss_rate;
      rt_options.seed = options.seed;
      rt_options.registry = options.registry;
      rt_options.budget = options.budget;
      sim::ThreadedRuntime rt(std::move(agents), options.threads, rt_options);
      stats = rt.run();
      break;
    }
  }
  for (const auto& wrapper : wrappers) {
    // Truncated runs legitimately leave suppressed messages unacked.
    OM_CHECK_MSG(stats.truncated || wrapper->terminated(),
                 "lossy LID: unacked messages remain");
  }

  auto result = extract_result(w, quotas, nodes, std::move(stats));
  LidResult out{std::move(result.matching), std::move(result.stats), 0,
                result.truncated, result.rounds_used, {}};
  for (const auto& wrapper : wrappers) {
    out.retransmissions += wrapper->retransmissions();
  }
  if (options.registry != nullptr) {
    obs::Registry& reg = *options.registry;
    reg.counter("lid.prop_sent").inc(out.stats.kind_count(kMsgProp));
    reg.counter("lid.rej_sent").inc(out.stats.kind_count(kMsgRej));
    reg.counter("lid.locked_edges").inc(out.matching.size());
    if (lossy) reg.counter("lid.retransmissions").inc(out.retransmissions);
    out.metrics = reg.snapshot();
  }
  return out;
}

}  // namespace overmatch::matching
