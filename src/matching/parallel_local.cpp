#include "matching/parallel_local.hpp"

#include <algorithm>
#include <mutex>

#include "util/thread_pool.hpp"

namespace overmatch::matching {

Matching parallel_local_dominant(const prefs::EdgeWeights& w, const Quotas& quotas,
                                 std::size_t threads, ParallelRunInfo* info_out) {
  const auto& g = w.graph();
  Matching m(g, quotas);

  // Per-node incident edges, heaviest first, with a head cursor.
  std::vector<std::vector<EdgeId>> sorted(g.num_nodes());
  std::vector<std::size_t> head(g.num_nodes(), 0);
  {
    util::ThreadPool pool(threads);
    pool.parallel_for(g.num_nodes(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t v = begin; v < end; ++v) {
        auto& s = sorted[v];
        s.reserve(g.degree(static_cast<NodeId>(v)));
        for (const auto& a : g.neighbors(static_cast<NodeId>(v))) s.push_back(a.edge);
        std::sort(s.begin(), s.end(),
                  [&w](EdgeId x, EdgeId y) { return w.heavier(x, y); });
      }
    });

    std::vector<EdgeId> top(g.num_nodes(), graph::kInvalidEdge);
    std::mutex pick_mu;
    std::vector<EdgeId> picked;
    std::size_t rounds = 0;
    for (;;) {
      ++rounds;
      // Phase 1: pointer computation. Each node is written by exactly one
      // task; `m` is only read.
      pool.parallel_for(g.num_nodes(), [&](std::size_t begin, std::size_t end) {
        for (std::size_t v = begin; v < end; ++v) {
          auto& h = head[v];
          const auto& s = sorted[v];
          while (h < s.size() && !m.can_add(s[h])) ++h;
          top[v] = h < s.size() ? s[h] : graph::kInvalidEdge;
        }
      });
      // Phase 2: mirrored pointers are locally heaviest edges. Reads only;
      // picks are collected under a lock (short critical sections).
      picked.clear();
      pool.parallel_for(g.num_nodes(), [&](std::size_t begin, std::size_t end) {
        std::vector<EdgeId> local;
        for (std::size_t v = begin; v < end; ++v) {
          const EdgeId e = top[v];
          if (e == graph::kInvalidEdge) continue;
          const auto& edge = g.edge(e);
          // Claim from the smaller endpoint so each mirrored edge is picked once.
          if (edge.u != static_cast<NodeId>(v)) continue;
          if (top[edge.v] == e) local.push_back(e);
        }
        if (!local.empty()) {
          std::lock_guard lk(pick_mu);
          picked.insert(picked.end(), local.begin(), local.end());
        }
      });
      if (picked.empty()) break;
      // Sequential commit: mirrored edges are endpoint-disjoint, so each add
      // is independently valid.
      for (const EdgeId e : picked) m.add(e);
    }
    if (info_out != nullptr) info_out->rounds = rounds;
  }
  OM_CHECK_MSG(m.is_maximal(), "parallel matcher must produce a maximal b-matching");
  return m;
}

}  // namespace overmatch::matching
