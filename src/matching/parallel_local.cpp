#include "matching/parallel_local.hpp"

#include <algorithm>

#include "obs/registry.hpp"
#include "util/thread_pool.hpp"

namespace overmatch::matching {
namespace {

struct ParallelRunInfo {
  std::size_t rounds = 0;
};

Matching parallel_local_impl(const prefs::EdgeWeights& w, const Quotas& quotas,
                             util::ThreadPool& pool, ParallelRunInfo& info) {
  const auto& g = w.graph();
  const std::size_t n = g.num_nodes();
  Matching m(g, quotas);

  // Head cursors into the EdgeWeights incidence index (pre-sorted heaviest
  // first at weight-construction time — no per-run copies or sorts).
  std::vector<std::size_t> head(n, 0);
  std::vector<EdgeId> top(n, graph::kInvalidEdge);

  // Active-node frontier. A node leaves the frontier when its top pointer is
  // confirmed unmirrored; it re-enters only when an adjacent selection can
  // have invalidated its top: it gained a matched edge itself, or a
  // neighbour saturated (erasing edges from under the pointer). Exhausted
  // nodes (top == kInvalidEdge) never re-enter — availability only shrinks.
  std::vector<NodeId> frontier(n);
  for (std::size_t v = 0; v < n; ++v) frontier[v] = static_cast<NodeId>(v);
  std::vector<char> in_frontier(n, 1);
  std::vector<NodeId> next_frontier;
  std::vector<char> in_next(n, 0);

  // Per-chunk pick buffers: parallel_for_chunks hands every task a distinct
  // chunk slot, so phase 2 collects mirrored edges without any lock. The
  // fork-join fast path dispatches both phases with zero allocations, and
  // small frontiers (the long tail of late rounds) collapse to one chunk
  // that runs inline on this thread — no wakeup, no handoff.
  std::vector<std::vector<EdgeId>> picks(std::max<std::size_t>(pool.num_chunks(n), 1));

  std::size_t rounds = 0;
  while (!frontier.empty()) {
    ++rounds;
    // Phase 1: recompute top pointers for frontier nodes only. Each node is
    // written by exactly one task; `m` is only read.
    pool.parallel_for(frontier.size(), [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        const NodeId v = frontier[i];
        auto& h = head[v];
        const auto s = w.incident(v);
        while (h < s.size() && !m.can_add(s[h])) ++h;
        top[v] = h < s.size() ? s[h] : graph::kInvalidEdge;
      }
    });
    // Phase 2: mirrored pointers are locally heaviest edges. Reads only;
    // each task appends to its own chunk buffer (no pick mutex). An edge
    // can newly mirror only if at least one endpoint is in the frontier, so
    // scanning frontier nodes is exhaustive; when both endpoints are in the
    // frontier the smaller one claims, otherwise the frontier one does —
    // each mirrored edge is emitted exactly once.
    const std::size_t nchunks = pool.num_chunks(frontier.size());
    for (std::size_t c = 0; c < nchunks; ++c) picks[c].clear();
    pool.parallel_for_chunks(
        frontier.size(), [&](std::size_t chunk, std::size_t begin, std::size_t end) {
          auto& local = picks[chunk];
          for (std::size_t i = begin; i < end; ++i) {
            const NodeId v = frontier[i];
            const EdgeId e = top[v];
            if (e == graph::kInvalidEdge) continue;
            const auto& edge = g.edge(e);
            const NodeId other = edge.other(v);
            if (top[other] != e) continue;
            if (v != edge.u && in_frontier[edge.u] != 0) continue;
            local.push_back(e);
          }
        });

    // Commit + frontier construction (sequential; mirrored edges are
    // endpoint-disjoint because each node has a unique top pointer).
    next_frontier.clear();
    const auto activate = [&](NodeId x) {
      if (in_next[x] != 0) return;
      // Skip permanently exhausted nodes.
      if (head[x] >= w.incident(x).size() && top[x] == graph::kInvalidEdge) return;
      in_next[x] = 1;
      next_frontier.push_back(x);
    };
    std::size_t committed = 0;
    for (std::size_t c = 0; c < nchunks; ++c) {
      for (const EdgeId e : picks[c]) {
        m.add(e);
        ++committed;
        const auto& edge = g.edge(e);
        for (const NodeId p : {edge.u, edge.v}) {
          activate(p);
          // A saturated endpoint erases its remaining edges from every
          // neighbour's candidate list: wake the neighbours whose top now
          // dangles. Each node saturates at most once, so this extra wake
          // work is O(m) over the whole run.
          if (m.residual(p) == 0) {
            for (const auto& a : g.neighbors(p)) activate(a.neighbor);
          }
        }
      }
    }
    if (committed == 0) break;
    frontier.swap(next_frontier);
    // Clear the old frontier's flags first: a node can be in both rounds.
    for (const NodeId v : next_frontier) in_frontier[v] = 0;
    for (const NodeId v : frontier) {
      in_next[v] = 0;
      in_frontier[v] = 1;
    }
  }
  info.rounds = rounds;
  OM_CHECK_MSG(m.is_maximal(), "parallel matcher must produce a maximal b-matching");
  return m;
}

}  // namespace

Matching parallel_local_dominant(const prefs::EdgeWeights& w, const Quotas& quotas,
                                 std::size_t threads, obs::Registry* registry) {
  util::ThreadPool pool(threads);
  return parallel_local_dominant(w, quotas, pool, registry);
}

Matching parallel_local_dominant(const prefs::EdgeWeights& w, const Quotas& quotas,
                                 util::ThreadPool& pool, obs::Registry* registry) {
  ParallelRunInfo info;
  Matching m = parallel_local_impl(w, quotas, pool, info);
  if (registry != nullptr) registry->counter("parallel.rounds").inc(info.rounds);
  return m;
}

}  // namespace overmatch::matching
