#include "matching/verify.hpp"

#include <algorithm>

namespace overmatch::matching {

bool is_valid_bmatching(const Matching& m) {
  const auto& g = m.graph();
  std::vector<std::uint32_t> load(g.num_nodes(), 0);
  std::vector<std::uint8_t> seen(g.num_edges(), 0);
  for (const EdgeId e : m.edges()) {
    if (e >= g.num_edges()) return false;
    if (seen[e] != 0) return false;  // duplicate
    seen[e] = 1;
    const auto& [u, v] = g.edge(e);
    ++load[u];
    ++load[v];
  }
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (load[v] > m.quota(v)) return false;
    if (load[v] != m.load(v)) return false;
    // Connection lists must mirror the selected edges.
    auto conns = m.connections(v);
    if (conns.size() != load[v]) return false;
    for (const NodeId u : conns) {
      const EdgeId e = g.find_edge(v, u);
      if (e == graph::kInvalidEdge || !m.contains(e)) return false;
    }
  }
  return true;
}

bool has_half_approx_certificate(const Matching& m, const prefs::EdgeWeights& w) {
  const auto& g = m.graph();
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (m.contains(e)) continue;
    const auto& [u, v] = g.edge(e);
    bool covered = false;
    for (const NodeId x : {u, v}) {
      if (m.residual(x) != 0) continue;
      bool all_heavier = true;
      for (const NodeId partner : m.connections(x)) {
        const EdgeId f = g.find_edge(x, partner);
        if (!w.heavier(f, e)) {
          all_heavier = false;
          break;
        }
      }
      if (all_heavier) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

std::size_t count_blocking_edges(const Matching& m, const prefs::EdgeWeights& w) {
  const auto& g = m.graph();
  // Precompute each node's weakest matched edge once (kInvalidEdge when the
  // node has a free slot — then every unselected incident edge is wanted).
  std::vector<EdgeId> weakest(g.num_nodes(), graph::kInvalidEdge);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    if (m.residual(v) != 0) continue;  // free slot: wants everything
    EdgeId wk = graph::kInvalidEdge;
    for (const NodeId partner : m.connections(v)) {
      const EdgeId f = g.find_edge(v, partner);
      if (wk == graph::kInvalidEdge || w.heavier(wk, f)) wk = f;
    }
    // A saturated node with quota 0 wants nothing; mark with a sentinel the
    // wants() lambda below treats as "never wanted".
    weakest[v] = wk;
  }
  const auto wants = [&](NodeId x, EdgeId e) {
    if (m.residual(x) != 0) return true;
    if (m.quota(x) == 0) return false;  // saturated at zero capacity
    return w.heavier(e, weakest[x]);
  };
  std::size_t blocking = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (m.contains(e)) continue;
    const auto& [u, v] = g.edge(e);
    if (wants(u, e) && wants(v, e)) ++blocking;
  }
  return blocking;
}

}  // namespace overmatch::matching
