// Exact solvers (small instances) — the OPT baselines for Theorems 2 and 3.
//
// * exact_max_weight_bmatching: branch & bound over edges in descending
//   weight order with two admissible bounds (global top-K prefix bound and a
//   per-node capacity-truncated half-sum bound). Exact for experiment-scale
//   graphs (≈ m ≤ 60 with pruning).
// * exact_max_satisfaction: the *original* maximizing-satisfaction objective
//   (eq. 1) is not edge-separable (the dynamic term depends on the final
//   degree), so it gets its own DFS with an optimistic per-edge gain bound.
//   Intended for tiny instances (m ≤ ~24).
#pragma once

#include <cstddef>

#include "matching/matching.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"

namespace overmatch::matching {

struct ExactInfo {
  std::size_t nodes_explored = 0;
};

/// Maximum-weight b-matching by branch & bound. Exact.
[[nodiscard]] Matching exact_max_weight_bmatching(const prefs::EdgeWeights& w,
                                                  const Quotas& quotas,
                                                  ExactInfo* info = nullptr);

/// Maximum total satisfaction (eq. 1) b-matching by branch & bound. Exact.
[[nodiscard]] Matching exact_max_satisfaction(const prefs::PreferenceProfile& p,
                                              ExactInfo* info = nullptr);

}  // namespace overmatch::matching
