#include "matching/local_search.hpp"

#include "matching/metrics.hpp"
#include "prefs/satisfaction.hpp"

namespace overmatch::matching {
namespace {

/// Satisfaction contribution of one node under the current matching.
double node_sat(const prefs::PreferenceProfile& p, const Matching& m, NodeId v) {
  return prefs::satisfaction(p, v, m.connections(v));
}

}  // namespace

LocalSearchInfo improve_satisfaction(const prefs::PreferenceProfile& p, Matching& m) {
  const auto& g = p.graph();
  LocalSearchInfo info;
  info.satisfaction_before = total_satisfaction(p, m);

  bool improved = true;
  while (improved) {
    improved = false;
    // Adds: any addable edge strictly helps (eq. 4 increments are positive).
    for (EdgeId e = 0; e < g.num_edges(); ++e) {
      if (m.can_add(e)) {
        m.add(e);
        ++info.adds;
        improved = true;
      }
    }
    // Swaps: for every unselected edge f = (u, v), try evicting one selected
    // edge at a saturated endpoint; keep the swap iff the exact two-to-four
    // node satisfaction delta is positive.
    for (EdgeId f = 0; f < g.num_edges(); ++f) {
      if (m.contains(f)) continue;
      const auto& [u, v] = g.edge(f);
      // Collect eviction candidates: one incident selected edge per saturated
      // endpoint (evicting from an unsaturated endpoint is never needed).
      for (const NodeId x : {u, v}) {
        if (m.residual(x) > 0) continue;
        // Try each selected edge at x as the eviction victim.
        const std::vector<NodeId> partners(m.connections(x).begin(),
                                           m.connections(x).end());
        bool swapped = false;
        for (const NodeId y : partners) {
          const EdgeId e = g.find_edge(x, y);
          if (e == f) continue;
          // Evicting e frees capacity at x only, so f's other endpoint must
          // already have a spare slot (y ≠ other because e ≠ f).
          const NodeId other = g.edge(f).other(x);
          if (m.residual(other) == 0) continue;
          const double before = node_sat(p, m, x) + node_sat(p, m, y) +
                                node_sat(p, m, other);
          m.remove(e);
          if (!m.can_add(f)) {  // some other constraint still blocks f
            m.add(e);
            continue;
          }
          m.add(f);
          const double after = node_sat(p, m, x) + node_sat(p, m, y) +
                               node_sat(p, m, other);
          if (after > before + 1e-12) {
            ++info.swaps;
            improved = true;
            swapped = true;
            break;
          }
          m.remove(f);
          m.add(e);
        }
        if (swapped) break;
      }
    }
  }
  info.satisfaction_after = total_satisfaction(p, m);
  return info;
}

}  // namespace overmatch::matching
