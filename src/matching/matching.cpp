#include "matching/matching.hpp"

#include <algorithm>

namespace overmatch::matching {

Matching::Matching(const Graph& g, Quotas quotas)
    : graph_(&g),
      quotas_(std::move(quotas)),
      selected_(g.num_edges(), 0),
      load_(g.num_nodes(), 0),
      conns_(g.num_nodes()) {
  OM_CHECK(quotas_.size() == g.num_nodes());
}

bool Matching::can_add(EdgeId e) const {
  OM_CHECK(e < selected_.size());
  if (selected_[e] != 0) return false;
  const auto& [u, v] = graph_->edge(e);
  return load_[u] < quotas_[u] && load_[v] < quotas_[v];
}

void Matching::add(EdgeId e) {
  OM_CHECK_MSG(can_add(e), "Matching::add violates quota or duplicates an edge");
  const auto& [u, v] = graph_->edge(e);
  selected_[e] = 1;
  ++load_[u];
  ++load_[v];
  conns_[u].push_back(v);
  conns_[v].push_back(u);
  edges_.push_back(e);
}

void Matching::remove(EdgeId e) {
  OM_CHECK(e < selected_.size());
  OM_CHECK_MSG(selected_[e] != 0, "Matching::remove of unselected edge");
  const auto& [u, v] = graph_->edge(e);
  selected_[e] = 0;
  --load_[u];
  --load_[v];
  std::erase(conns_[u], v);
  std::erase(conns_[v], u);
  std::erase(edges_, e);
}

double Matching::total_weight(const prefs::EdgeWeights& w) const {
  return w.total(edges_);
}

bool Matching::is_maximal() const {
  for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
    if (can_add(e)) return false;
  }
  return true;
}

bool Matching::same_edges(const Matching& other) const {
  // Edge ids are only meaningful relative to a graph: comparing bitmaps
  // across distinct Graph objects requires them to be structurally identical
  // (same nodes, same edge list in the same id order). Equal edge *counts*
  // are not enough — edge e may join different endpoints in each graph.
  if (graph_ != other.graph_) {
    if (graph_->num_nodes() != other.graph_->num_nodes() ||
        graph_->num_edges() != other.graph_->num_edges()) {
      return false;
    }
    for (EdgeId e = 0; e < graph_->num_edges(); ++e) {
      const auto& [au, av] = graph_->edge(e);
      const auto& [bu, bv] = other.graph_->edge(e);
      if (au != bu || av != bv) return false;
    }
  }
  if (edges_.size() != other.edges_.size()) return false;
  for (EdgeId e = 0; e < selected_.size(); ++e) {
    if (selected_[e] != other.selected_[e]) return false;
  }
  return true;
}

}  // namespace overmatch::matching
