#include "matching/bsuitor.hpp"

#include <algorithm>
#include <deque>

#include "obs/registry.hpp"

namespace overmatch::matching {
namespace {

struct BSuitorInfo {
  std::size_t proposals = 0;     ///< total bids made (≈ message complexity)
  std::size_t displacements = 0; ///< bids that knocked out a weaker suitor
};

/// Suitor sets: per node, the ≤ b_v current suitor edges, with the weakest
/// *cached* so the admits/admit pair on the same node costs one O(b) scan
/// instead of two (b is small in all our workloads, but the pair runs on
/// every proposal). The cache is invalidated on any mutation and rebuilt
/// lazily on the next weakest() query.
class SuitorState {
 public:
  SuitorState(const prefs::EdgeWeights& w, const Quotas& quotas)
      : w_(&w), quotas_(&quotas), suitors_(w.graph().num_nodes()),
        weakest_idx_(w.graph().num_nodes(), kNoCache) {}

  /// Does `e` beat v's weakest suitor (or does v have a free slot)?
  [[nodiscard]] bool admits(NodeId v, EdgeId e) const {
    const auto& s = suitors_[v];
    if (s.size() < (*quotas_)[v]) return true;
    if (s.empty()) return false;  // quota-0 node: admits nothing
    return w_->heavier(e, s[weakest_index(v)]);
  }

  /// Admit edge e at node v; returns the displaced edge or kInvalidEdge.
  EdgeId admit(NodeId v, EdgeId e) {
    auto& s = suitors_[v];
    if (s.size() < (*quotas_)[v]) {
      s.push_back(e);
      weakest_idx_[v] = kNoCache;
      return graph::kInvalidEdge;
    }
    const std::size_t idx = weakest_index(v);
    const EdgeId out = s[idx];
    s[idx] = e;
    weakest_idx_[v] = kNoCache;
    return out;
  }

  [[nodiscard]] bool holds(NodeId v, EdgeId e) const {
    const auto& s = suitors_[v];
    return std::find(s.begin(), s.end(), e) != s.end();
  }

 private:
  static constexpr std::size_t kNoCache = static_cast<std::size_t>(-1);

  /// Index of v's weakest suitor; cached until the suitor set mutates.
  [[nodiscard]] std::size_t weakest_index(NodeId v) const {
    const auto& s = suitors_[v];
    OM_CHECK(!s.empty());
    std::size_t idx = weakest_idx_[v];
    if (idx != kNoCache) return idx;
    idx = 0;
    for (std::size_t i = 1; i < s.size(); ++i) {
      if (w_->heavier(s[idx], s[i])) idx = i;
    }
    weakest_idx_[v] = idx;
    return idx;
  }

  const prefs::EdgeWeights* w_;
  const Quotas* quotas_;
  std::vector<std::vector<EdgeId>> suitors_;
  mutable std::vector<std::size_t> weakest_idx_;  ///< kNoCache when stale
};

Matching b_suitor_impl(const prefs::EdgeWeights& w, const Quotas& quotas,
                       BSuitorInfo& out_stats) {
  const auto& g = w.graph();
  OM_CHECK(quotas.size() == g.num_nodes());
  SuitorState suitors(w, quotas);

  // Per-node candidate cursor over the EdgeWeights incidence index (already
  // heaviest-first; no per-run copies or sorts).
  std::vector<std::size_t> cursor(g.num_nodes(), 0);
  std::vector<std::uint32_t> bids_held(g.num_nodes(), 0);  // my accepted bids

  BSuitorInfo stats;
  std::deque<NodeId> work;
  for (NodeId v = 0; v < g.num_nodes(); ++v) work.push_back(v);
  while (!work.empty()) {
    const NodeId u = work.front();
    work.pop_front();
    // u keeps bidding until it holds quota-many accepted bids or runs out of
    // candidates it could still win.
    const auto candidates = w.incident(u);
    while (bids_held[u] < quotas[u] && cursor[u] < candidates.size()) {
      const EdgeId e = candidates[cursor[u]];
      const NodeId v = g.edge(e).other(u);
      if (!suitors.admits(v, e)) {
        ++cursor[u];
        continue;  // v will never admit a lighter bid later — skip for good
      }
      ++stats.proposals;
      const EdgeId displaced = suitors.admit(v, e);
      ++bids_held[u];
      ++cursor[u];
      if (displaced != graph::kInvalidEdge) {
        ++stats.displacements;
        const NodeId loser = g.edge(displaced).other(v);
        OM_CHECK(bids_held[loser] > 0);
        --bids_held[loser];
        work.push_back(loser);  // re-bid for a replacement slot
      }
    }
  }

  // Matched edges are mutual suitor relationships.
  Matching m(g, quotas);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    if (suitors.holds(u, e) && suitors.holds(v, e)) m.add(e);
  }
  out_stats = stats;
  return m;
}

}  // namespace

Matching b_suitor(const prefs::EdgeWeights& w, const Quotas& quotas,
                  obs::Registry* registry) {
  BSuitorInfo stats;
  Matching m = b_suitor_impl(w, quotas, stats);
  if (registry != nullptr) {
    registry->counter("bsuitor.proposals").inc(stats.proposals);
    registry->counter("bsuitor.displacements").inc(stats.displacements);
  }
  return m;
}

}  // namespace overmatch::matching
