#include "matching/bsuitor.hpp"

#include <algorithm>
#include <deque>

namespace overmatch::matching {
namespace {

/// Suitor sets: per node, the ≤ b_v current suitor edges, with the weakest
/// tracked for O(b) displacement checks (b is small in all our workloads).
class SuitorState {
 public:
  SuitorState(const prefs::EdgeWeights& w, const Quotas& quotas)
      : w_(&w), quotas_(&quotas), suitors_(w.graph().num_nodes()) {}

  /// Does `e` beat v's weakest suitor (or does v have a free slot)?
  [[nodiscard]] bool admits(NodeId v, EdgeId e) const {
    const auto& s = suitors_[v];
    if (s.size() < (*quotas_)[v]) return true;
    return w_->heavier(e, weakest(v));
  }

  /// Admit edge e at node v; returns the displaced edge or kInvalidEdge.
  EdgeId admit(NodeId v, EdgeId e) {
    auto& s = suitors_[v];
    if (s.size() < (*quotas_)[v]) {
      s.push_back(e);
      return graph::kInvalidEdge;
    }
    const EdgeId out = weakest(v);
    *std::find(s.begin(), s.end(), out) = e;
    return out;
  }

  [[nodiscard]] bool holds(NodeId v, EdgeId e) const {
    const auto& s = suitors_[v];
    return std::find(s.begin(), s.end(), e) != s.end();
  }

 private:
  [[nodiscard]] EdgeId weakest(NodeId v) const {
    const auto& s = suitors_[v];
    OM_CHECK(!s.empty());
    EdgeId out = s.front();
    for (const EdgeId e : s) {
      if (w_->heavier(out, e)) out = e;
    }
    return out;
  }

  const prefs::EdgeWeights* w_;
  const Quotas* quotas_;
  std::vector<std::vector<EdgeId>> suitors_;
};

}  // namespace

Matching b_suitor(const prefs::EdgeWeights& w, const Quotas& quotas,
                  BSuitorInfo* info) {
  const auto& g = w.graph();
  OM_CHECK(quotas.size() == g.num_nodes());
  SuitorState suitors(w, quotas);

  // Per-node candidate cursor over incident edges, heaviest first.
  std::vector<std::vector<EdgeId>> sorted(g.num_nodes());
  std::vector<std::size_t> cursor(g.num_nodes(), 0);
  std::vector<std::uint32_t> bids_held(g.num_nodes(), 0);  // my accepted bids
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    auto& s = sorted[v];
    s.reserve(g.degree(v));
    for (const auto& a : g.neighbors(v)) s.push_back(a.edge);
    std::sort(s.begin(), s.end(), [&w](EdgeId x, EdgeId y) { return w.heavier(x, y); });
  }

  BSuitorInfo stats;
  std::deque<NodeId> work;
  for (NodeId v = 0; v < g.num_nodes(); ++v) work.push_back(v);
  while (!work.empty()) {
    const NodeId u = work.front();
    work.pop_front();
    // u keeps bidding until it holds quota-many accepted bids or runs out of
    // candidates it could still win.
    while (bids_held[u] < quotas[u] && cursor[u] < sorted[u].size()) {
      const EdgeId e = sorted[u][cursor[u]];
      const NodeId v = g.edge(e).other(u);
      if (!suitors.admits(v, e)) {
        ++cursor[u];
        continue;  // v will never admit a lighter bid later — skip for good
      }
      ++stats.proposals;
      const EdgeId displaced = suitors.admit(v, e);
      ++bids_held[u];
      ++cursor[u];
      if (displaced != graph::kInvalidEdge) {
        ++stats.displacements;
        const NodeId loser = g.edge(displaced).other(v);
        OM_CHECK(bids_held[loser] > 0);
        --bids_held[loser];
        work.push_back(loser);  // re-bid for a replacement slot
      }
    }
  }

  // Matched edges are mutual suitor relationships.
  Matching m(g, quotas);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    if (suitors.holds(u, e) && suitors.holds(v, e)) m.add(e);
  }
  if (info != nullptr) *info = stats;
  return m;
}

}  // namespace overmatch::matching
