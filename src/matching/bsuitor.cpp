#include "matching/bsuitor.hpp"

#include <deque>

#include "matching/suitor_slab.hpp"
#include "obs/registry.hpp"

namespace overmatch::matching {
namespace {

struct BSuitorInfo {
  std::size_t proposals = 0;     ///< total bids made (≈ message complexity)
  std::size_t displacements = 0; ///< bids that knocked out a weaker suitor
};

Matching b_suitor_impl(const prefs::EdgeWeights& w, const Quotas& quotas,
                       const core::Budget& budget, core::BudgetStatus& status,
                       BSuitorInfo& out_stats) {
  const auto& g = w.graph();
  OM_CHECK(quotas.size() == g.num_nodes());
  // Suitor sets live in a SuitorSlab: one packed (key, edge) word per slot,
  // so the admits/admit pair is a single O(b) scan of one cache-dense run
  // with one unsigned compare per slot (no weight lookups, no weakest cache).
  SuitorSlab suitors(w, quotas);

  // Per-node candidate cursor over the EdgeWeights incidence index (already
  // heaviest-first; no per-run copies or sorts).
  std::vector<std::size_t> cursor(g.num_nodes(), 0);
  std::vector<std::uint32_t> bids_held(g.num_nodes(), 0);  // my accepted bids

  BSuitorInfo stats;
  std::deque<NodeId> work;
  for (NodeId v = 0; v < g.num_nodes(); ++v) work.push_back(v);
  // Anytime round structure (DESIGN.md §14): round 1 is the initial sweep of
  // all n nodes; the nodes a round pushes back (displaced re-bidders) form
  // the next round. `round_left` counts this round's remaining dequeues. The
  // unlimited default only pays integer compares — no clock, no RNG — so it
  // stays bit-identical.
  const core::Deadline deadline(budget);
  std::size_t round = 1;
  std::size_t round_left = work.size();
  std::size_t dequeued = 0;
  while (!work.empty()) {
    if (budget.limits_rounds() && round > budget.max_rounds) {
      status.truncated = true;
      break;
    }
    if (deadline.armed() && (dequeued & 63) == 0 && deadline.expired()) {
      status.truncated = true;
      break;
    }
    ++dequeued;
    const NodeId u = work.front();
    work.pop_front();
    status.rounds_used = round;
    // The round boundary is crossed only after u's displacements are pushed,
    // so the next round's size is recomputed below, once u is processed.
    const bool last_of_round = (--round_left == 0);
    // u keeps bidding until it holds quota-many accepted bids or runs out of
    // candidates it could still win.
    const auto candidates = w.incident(u);
    while (bids_held[u] < quotas[u] && cursor[u] < candidates.size()) {
      const EdgeId e = candidates[cursor[u]];
      const NodeId v = g.edge(e).other(u);
      const auto res = suitors.admit_if(v, suitors.word_of(e));
      ++cursor[u];
      if (!res.accepted) {
        continue;  // v will never admit a lighter bid later — skip for good
      }
      ++stats.proposals;
      ++bids_held[u];
      if (res.displaced != SuitorSlab::kEmpty) {
        ++stats.displacements;
        const EdgeId displaced = SuitorSlab::edge_of(res.displaced);
        const NodeId loser = g.edge(displaced).other(v);
        OM_CHECK(bids_held[loser] > 0);
        --bids_held[loser];
        work.push_back(loser);  // re-bid for a replacement slot
      }
    }
    if (last_of_round) {
      ++round;
      round_left = work.size();  // everything queued now is next round's work
    }
  }

  // Matched edges are mutual suitor relationships.
  Matching m(g, quotas);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    if (suitors.holds(u, e) && suitors.holds(v, e)) m.add(e);
  }
  out_stats = stats;
  return m;
}

}  // namespace

Matching b_suitor(const prefs::EdgeWeights& w, const Quotas& quotas,
                  obs::Registry* registry, const core::Budget& budget,
                  core::BudgetStatus* status) {
  BSuitorInfo stats;
  core::BudgetStatus local;
  Matching m = b_suitor_impl(w, quotas, budget, local, stats);
  if (status != nullptr) *status = local;
  if (registry != nullptr) {
    registry->counter("bsuitor.proposals").inc(stats.proposals);
    registry->counter("bsuitor.displacements").inc(stats.displacements);
  }
  return m;
}

}  // namespace overmatch::matching
