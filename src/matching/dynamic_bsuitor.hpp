// DynamicBSuitor — fully-dynamic ½-approximate maximum weight b-matching
// under churn (node joins/leaves, edge enable/disable), via localized
// suitor-state repair instead of from-scratch recomputation.
//
// The engine keeps the b-Suitor bidding state (per-node held-bid sets, i.e.
// the suitor relation) alive *between* events. An event invalidates only a
// local piece of that state — a leaver's held and placed bids, a joiner's
// empty neighbourhood — and repair re-runs proposal cascades from exactly
// that frontier:
//  * a node that lost a *placed* bid re-seeks replacement bids (heaviest
//    admitting candidate first, the static bidding rule);
//  * a node that lost a *held* bid gained a free slot and attracts the
//    heaviest willing neighbour (including saturated neighbours that upgrade
//    by withdrawing their weakest placed bid — withdrawal frees a slot
//    elsewhere and the cascade continues).
// Displaced bidders re-seek, exactly as in the static algorithm. Each step
// replaces held bids with strictly heavier ones (in the precomputed 64-bit
// key order), so cascades terminate; at quiescence no alive enabled edge is
// simultaneously wanted by one endpoint and admissible at the other — the
// suitor fixed point. Because the weight order is a strict total order that
// fixed point is unique and its mutual-bid set *is* the locally-heaviest
// greedy matching (= LIC = batch b-Suitor) of the alive subgraph, so the
// maintained matching is bit-identical to a from-scratch recomputation and
// inherits Theorem 2's ½-approximation bound after every event. Cost per
// event is O(affected degree · cascade length), not O(m). (Fully-dynamic
// suitor repair follows Brandt-Tumescheit, Gerharz & Meyerhenke 2024; see
// PAPERS.md and DESIGN.md §10.)
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/budget.hpp"
#include "matching/matching.hpp"
#include "matching/suitor_slab.hpp"
#include "obs/metrics.hpp"
#include "prefs/weights.hpp"

namespace overmatch::obs {
class Registry;
}
namespace overmatch::util {
class ThreadPool;
}

namespace overmatch::matching {

/// Shared state of the frontier-parallel batch repair engine; defined in
/// dynamic_batch.cpp and opaque everywhere else.
struct DynBatchRepair;

/// One churn event for batched application (DynamicBSuitor::apply_batch).
/// Node events use `u` only; edge events name the endpoints of a candidate
/// edge. Events in a batch must be valid *in order* — the same rule the
/// per-event entry points enforce (no leave of an offline node, no join of
/// an online one, no same-state edge toggle), evaluated against the state
/// left by the preceding events of the batch.
struct ChurnEvent {
  enum class Kind : std::uint8_t {
    kLeave,     ///< node u goes offline
    kJoin,      ///< node u comes online
    kEdgeDown,  ///< candidate edge {u, v} disabled
    kEdgeUp,    ///< candidate edge {u, v} enabled
  };
  Kind kind = Kind::kLeave;
  NodeId u = 0;
  NodeId v = 0;

  [[nodiscard]] static ChurnEvent leave(NodeId n) noexcept {
    return {Kind::kLeave, n, n};
  }
  [[nodiscard]] static ChurnEvent join(NodeId n) noexcept {
    return {Kind::kJoin, n, n};
  }
  [[nodiscard]] static ChurnEvent edge_down(NodeId i, NodeId j) noexcept {
    return {Kind::kEdgeDown, i, j};
  }
  [[nodiscard]] static ChurnEvent edge_up(NodeId i, NodeId j) noexcept {
    return {Kind::kEdgeUp, i, j};
  }
  [[nodiscard]] bool is_node_event() const noexcept {
    return kind == Kind::kLeave || kind == Kind::kJoin;
  }
};

class DynamicBSuitor {
 public:
  /// Per-event repair telemetry (the last event's numbers; also accumulated
  /// into the registry's `dyn.*` series).
  struct RepairStats {
    std::size_t touched_nodes = 0;   ///< distinct nodes whose state was read/written
    std::size_t cascade_len = 0;     ///< bids placed + withdrawn + displaced
    std::size_t matched_removed = 0; ///< matched edges torn by the event
    std::size_t matched_added = 0;   ///< matched edges (re)established by repair
    std::uint64_t repair_ns = 0;     ///< wall-clock of the repair cascade
  };

  /// Builds the initial matching with every node alive and every edge
  /// enabled (identical to batch b_suitor / LIC on the full graph; the
  /// initial build is not counted in the `dyn.*` event series). `w` and
  /// `quotas` are caller-owned and must outlive the engine; `registry`
  /// (optional, caller-owned) receives `dyn.events`, `dyn.cascade_len`,
  /// `dyn.touched_nodes`, `dyn.bids`, `dyn.displacements` counters and the
  /// `dyn.repair_ns` per-event latency histogram.
  DynamicBSuitor(const prefs::EdgeWeights& w, const Quotas& quotas,
                 obs::Registry* registry = nullptr);
  ~DynamicBSuitor();  // out of line: ParallelRepair is incomplete here

  /// Per-batch telemetry for apply_batch (also accumulated into the
  /// registry's `dyn.batch_*` series and the `dyn.batch_size` histogram).
  struct BatchStats {
    std::size_t events = 0;     ///< raw events handed to apply_batch
    std::size_t coalesced = 0;  ///< events cancelled by net-effect dedup
    std::size_t net_leaves = 0;
    std::size_t net_joins = 0;
    std::size_t net_edges_down = 0;
    std::size_t net_edges_up = 0;
    std::size_t frontier = 0;  ///< distinct repair start nodes
    std::size_t workers = 1;   ///< 1 = sequential fallback
  };

  /// Applies a burst of churn events as one repair. The burst is first
  /// *coalesced*: a node that leaves and rejoins (or an edge toggled down
  /// and back up) inside the batch nets out to no change and is dropped;
  /// every node/edge is reduced to its net start-vs-end transition. Then
  /// all invalidated bids are detached at once and repair cascades run from
  /// the union of the affected frontiers — sequentially when `pool` is
  /// null, or frontier-parallel on the pool (caller participates, so
  /// pool->size() + 1 workers) reusing the SuitorSlab CAS admission and the
  /// 4-state node serialization of the parallel engine (DESIGN.md §12).
  ///
  /// Both paths land on the same state as applying the events one-by-one
  /// through on_node_leave/on_node_join/on_edge_change: the repaired fixed
  /// point depends only on the final (alive, edge-enabled) configuration,
  /// and under the strict total weight order it is unique — so the matching
  /// is bit-identical at every thread count.
  ///
  /// Anytime (DESIGN.md §14): an armed `deadline` bounds the repair drain.
  /// Teardown and coalescing always complete (the configuration flags and
  /// detached bids are consistent), but repair tokens still queued when the
  /// deadline expires are *deferred*, not dropped: the matching/weight stay
  /// valid (just short of the fixed point), truncated() flips true, and the
  /// next apply_batch or per-event call resumes the deferred cascades first.
  /// A deadline-armed batch drains sequentially (the frontier-parallel path
  /// has no preemption points), so pool is ignored while armed.
  void apply_batch(std::span<const ChurnEvent> events,
                   util::ThreadPool* pool = nullptr,
                   const core::Deadline& deadline = {});
  [[nodiscard]] const BatchStats& last_batch() const noexcept {
    return batch_;
  }

  /// True iff the last drain was cut short by a deadline and deferred repair
  /// tokens remain queued. Cleared by the next drain that runs to the fixed
  /// point (any per-event call, or an apply_batch — possibly with an empty
  /// event span — whose deadline does not expire first).
  [[nodiscard]] bool truncated() const noexcept { return truncated_; }
  /// Deferred repair tokens still queued (0 unless truncated()).
  [[nodiscard]] std::size_t pending_repairs() const noexcept {
    return queue_.size() - queue_head_;
  }

  /// Takes node v offline: voids its held and placed bids, repairs from the
  /// freed slots and orphaned bidders. Aborts if v is already offline.
  void on_node_leave(NodeId v);

  /// Brings node v online: v starts bidding and its free slots attract
  /// neighbours. Aborts if v is already online.
  void on_node_join(NodeId v);

  /// Enables (`present`) or disables the candidate edge {i, j}; a disabled
  /// edge is treated exactly like an edge whose endpoint is offline. Aborts
  /// if {i, j} is not a candidate edge or the state would not change.
  void on_edge_change(NodeId i, NodeId j, bool present);

  [[nodiscard]] bool alive(NodeId v) const {
    OM_CHECK(v < alive_.size());
    return alive_[v] != 0;
  }
  [[nodiscard]] bool edge_present(EdgeId e) const {
    OM_CHECK(e < edge_off_.size());
    return edge_off_[e] == 0;
  }

  /// Whole-configuration views (1 = alive / edge disabled), for snapshot
  /// export (serve::MatchingSnapshot::capture copies the configuration the
  /// maintained matching is the fixed point of). Valid between events.
  [[nodiscard]] std::span<const std::uint8_t> alive_flags() const noexcept {
    return alive_;
  }
  [[nodiscard]] std::span<const std::uint8_t> edge_off_flags() const noexcept {
    return edge_off_;
  }

  /// The maintained matching (mutual bids). Valid between events.
  [[nodiscard]] const Matching& matching() const noexcept { return m_; }
  /// Σ weight of matching(), maintained incrementally (O(1) per query).
  [[nodiscard]] double matched_weight() const noexcept { return weight_; }
  /// Nodes whose reader-visible per-node state changed during the last
  /// event (deduplicated): a matched-connection change *or* an alive flip.
  /// Lets callers update per-node derived state (satisfaction caches, delta
  /// snapshot pages) without an O(n) sweep.
  [[nodiscard]] const std::vector<NodeId>& last_changed_nodes() const noexcept {
    return changed_nodes_;
  }
  /// Edges whose reader-visible per-edge state changed during the last
  /// event (deduplicated): matched-set membership or the enabled flag —
  /// the per-edge dirty set delta snapshot capture rebuilds pages from
  /// (serve::MatchingSnapshot::capture_delta, DESIGN.md §15). Every matched
  /// transition funnels through matched_add/matched_remove — including the
  /// frontier-parallel path, which replays transitions sequentially in
  /// batch_reconcile — so the set is complete at every thread count.
  [[nodiscard]] const std::vector<EdgeId>& last_changed_edges() const noexcept {
    return changed_edges_;
  }
  [[nodiscard]] const RepairStats& last_repair() const noexcept { return last_; }

 private:
  static constexpr std::uint8_t kBidFromU = 1;  ///< placed by edge.u, held at edge.v
  static constexpr std::uint8_t kBidFromV = 2;  ///< placed by edge.v, held at edge.u

  [[nodiscard]] std::uint8_t bid_bit(EdgeId e, NodeId bidder) const {
    return w_->graph().edge(e).u == bidder ? kBidFromU : kBidFromV;
  }
  [[nodiscard]] bool holds_bid_from(NodeId bidder, EdgeId e) const {
    return (bid_state_[e] & bid_bit(e, bidder)) != 0;
  }

  /// Does holder admit e (free slot, or e beats its weakest held bid)?
  [[nodiscard]] bool admits(NodeId holder, EdgeId e) const;
  /// Would bidder gain by placing e (deficient, or e beats its weakest
  /// placed bid)?
  [[nodiscard]] bool wants(NodeId bidder, EdgeId e) const;

  /// Place bidder's bid e; displaces the holder's weakest held bid if
  /// saturated (the loser re-seeks). Updates the matching when e is mutual.
  void place_bid(NodeId bidder, EdgeId e);
  /// Remove bidder's placed bid e from its holder; frees a slot there
  /// (holder queued to attract).
  void withdraw(NodeId bidder, EdgeId e);
  void detach_bid(NodeId bidder, NodeId holder, EdgeId e);

  void seek(NodeId u);     ///< u bids until satisfied or out of candidates
  void attract(NodeId v);  ///< v fills free slots with willing neighbours
  void queue_seek(NodeId u);
  void queue_attract(NodeId v);
  void drain();
  void drain(const core::Deadline& deadline);

  void begin_event();
  void finish_event(bool count);
  void touch(NodeId v);
  void matched_add(EdgeId e);
  void matched_remove(EdgeId e);
  void note_changed(NodeId v);
  void note_changed_edge(EdgeId e);

  // ---- batched application (apply_batch) --------------------------------
  /// Validates the burst in order and reduces it to net per-node/per-edge
  /// transitions (fills batch_ and the batch_nodes_/batch_edges_ lists).
  void batch_coalesce(std::span<const ChurnEvent> events);
  /// Applies the net flags, detaches every invalidated bid, and queues the
  /// union of repair frontiers.
  void batch_teardown();
  void finish_batch();
  // Defined in dynamic_batch.cpp (the frontier-parallel repair engine).
  // The out-of-line deleter keeps DynBatchRepair an incomplete type here.
  struct DynBatchRepairDeleter {
    void operator()(DynBatchRepair* p) const noexcept;
  };
  void parallel_drain(util::ThreadPool& pool);
  void batch_reconcile(std::size_t workers);

  const prefs::EdgeWeights* w_;
  const Quotas* quotas_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> edge_off_;
  std::vector<std::uint8_t> bid_state_;  ///< per edge, kBidFrom* bits
  // Both bid relations live in SuitorSlabs (the storage shared with the
  // batch and parallel engines): admits/wants are one packed-word scan, and
  // admit_if folds the displace-weakest step into the admission itself, so
  // the weakest-index caches the vector-of-vectors design needed are gone.
  SuitorSlab suitors_;  ///< bids I hold
  SuitorSlab placed_;   ///< my bids that are held

  Matching m_;
  double weight_ = 0.0;

  // Work queue (seek/attract tokens) with pending flags for dedup.
  struct Token {
    NodeId node;
    bool is_seek;
  };
  std::vector<Token> queue_;
  std::size_t queue_head_ = 0;
  std::vector<std::uint8_t> pending_seek_;
  std::vector<std::uint8_t> pending_attract_;
  bool truncated_ = false;  ///< deferred tokens remain after a deadline cut

  // Per-event accounting.
  std::uint64_t epoch_ = 0;
  std::vector<std::uint64_t> touch_epoch_;
  std::vector<std::uint64_t> changed_epoch_;
  std::vector<NodeId> changed_nodes_;
  std::vector<std::uint64_t> edge_changed_epoch_;
  std::vector<EdgeId> changed_edges_;
  RepairStats last_;

  // Batch scratch: `seen` marks are cleared after each batch by walking the
  // touched lists, so coalescing costs O(batch), not O(n + m).
  std::vector<std::uint8_t> node_seen_;
  std::vector<std::uint8_t> node_final_;  ///< net end-state: alive?
  std::vector<std::uint8_t> edge_seen_;
  std::vector<std::uint8_t> edge_final_;  ///< net end-state: off?
  std::vector<NodeId> batch_nodes_;  ///< nodes with a net transition
  std::vector<EdgeId> batch_edges_;  ///< edges with a net transition
  BatchStats batch_;
  /// Lazily built on the first pooled apply_batch.
  std::unique_ptr<DynBatchRepair, DynBatchRepairDeleter> par_;

  // Registry handles resolved once (hot-path discipline, DESIGN.md §9).
  obs::Counter events_ctr_;
  obs::Counter cascade_ctr_;
  obs::Counter touched_ctr_;
  obs::Counter bids_ctr_;
  obs::Counter displacements_ctr_;
  obs::Counter batches_ctr_;
  obs::Counter batch_events_ctr_;
  obs::Counter batch_coalesced_ctr_;
  obs::Counter batch_parallel_ctr_;
  obs::Histogram repair_ns_hist_;
  obs::Histogram batch_size_hist_;
};

}  // namespace overmatch::matching
