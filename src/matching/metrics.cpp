#include "matching/metrics.hpp"

namespace overmatch::matching {

std::vector<double> node_satisfactions(const prefs::PreferenceProfile& p,
                                       const Matching& m) {
  const auto& g = p.graph();
  std::vector<double> out(g.num_nodes());
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    out[v] = prefs::satisfaction(p, v, m.connections(v));
  }
  return out;
}

double total_satisfaction(const prefs::PreferenceProfile& p, const Matching& m) {
  double s = 0.0;
  for (const double x : node_satisfactions(p, m)) s += x;
  return s;
}

double total_satisfaction_modified(const prefs::PreferenceProfile& p,
                                   const Matching& m) {
  const auto& g = p.graph();
  double s = 0.0;
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    s += prefs::satisfaction_modified(p, v, m.connections(v));
  }
  return s;
}

namespace {

/// True if node i would accept a new partner j: spare quota, or j beats
/// i's worst current partner.
bool would_accept(const prefs::PreferenceProfile& p, const Matching& m, NodeId i,
                  NodeId j) {
  if (m.residual(i) > 0) return true;
  for (const NodeId cur : m.connections(i)) {
    if (p.prefers(i, j, cur)) return true;
  }
  return false;
}

}  // namespace

std::size_t count_blocking_pairs(const prefs::PreferenceProfile& p, const Matching& m) {
  const auto& g = p.graph();
  std::size_t count = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (m.contains(e)) continue;
    const auto& [u, v] = g.edge(e);
    if (would_accept(p, m, u, v) && would_accept(p, m, v, u)) ++count;
  }
  return count;
}

}  // namespace overmatch::matching
