// Many-to-many matching (b-matching) container.
//
// A b-matching is an edge subset where every node v is incident to at most
// quota(v) selected edges (the paper's connection quotas). This container
// enforces the capacity invariant on insertion and offers the per-node
// connection lists C_i that satisfaction is computed from.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"

namespace overmatch::matching {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;
using prefs::Quotas;

class Matching {
 public:
  /// Empty matching on g with the given quotas.
  Matching(const Graph& g, Quotas quotas);

  [[nodiscard]] const Graph& graph() const noexcept { return *graph_; }
  [[nodiscard]] std::uint32_t quota(NodeId v) const {
    OM_CHECK(v < quotas_.size());
    return quotas_[v];
  }

  /// Selected edges, in insertion order.
  [[nodiscard]] const std::vector<EdgeId>& edges() const noexcept { return edges_; }
  [[nodiscard]] std::size_t size() const noexcept { return edges_.size(); }

  [[nodiscard]] bool contains(EdgeId e) const {
    OM_CHECK(e < selected_.size());
    return selected_[e] != 0;
  }

  /// Number of selected edges incident to v (c_v).
  [[nodiscard]] std::uint32_t load(NodeId v) const {
    OM_CHECK(v < load_.size());
    return load_[v];
  }
  /// quota(v) − load(v).
  [[nodiscard]] std::uint32_t residual(NodeId v) const { return quota(v) - load(v); }

  /// True iff e is not selected and both endpoints have residual capacity.
  [[nodiscard]] bool can_add(EdgeId e) const;

  /// Select e; aborts if can_add(e) is false.
  void add(EdgeId e);

  /// Remove a selected edge (used by dynamics baselines and churn).
  void remove(EdgeId e);

  /// Matched partners of v (unordered; ranks define the ordered list C_v).
  [[nodiscard]] std::span<const NodeId> connections(NodeId v) const {
    OM_CHECK(v < conns_.size());
    return conns_[v];
  }

  /// Σ weight over selected edges.
  [[nodiscard]] double total_weight(const prefs::EdgeWeights& w) const;

  /// True iff no further edge can be added (maximal b-matching).
  [[nodiscard]] bool is_maximal() const;

  /// Edge-set equality (order-insensitive).
  [[nodiscard]] bool same_edges(const Matching& other) const;

 private:
  const Graph* graph_;
  Quotas quotas_;
  std::vector<EdgeId> edges_;
  std::vector<std::uint8_t> selected_;
  std::vector<std::uint32_t> load_;
  std::vector<std::vector<NodeId>> conns_;
};

}  // namespace overmatch::matching
