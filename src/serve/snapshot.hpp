// MatchingSnapshot — an immutable, self-contained view of the overlay
// matching at one writer epoch, built for concurrent readers.
//
// The serving layer (DESIGN.md §13) never hands readers the live
// DynamicBSuitor state: the writer captures a plain-value snapshot after
// each repaired churn burst and publishes it through the MatchingStore's
// epoch-pinned pointer swap. A snapshot carries everything a query needs
// with zero back-references to mutable state:
//  * the matched neighbour lists in CSR layout,
//  * per-node satisfaction S_i and the Σ S_i total,
//  * the matched edge set (sorted) and its total weight,
//  * the alive/edge-disabled configuration the matching is the fixed point
//    of (what consistency checks recompute from), and
//  * a point-in-time obs::Snapshot of the service registry.
//
// Storage is *paged with structural sharing* (DESIGN.md §15): the per-node
// arrays live in fixed-size refcounted NodePages (16 nodes: satisfaction,
// alive flags, a local CSR of matched partners) and the per-edge arrays in
// EdgePages (64 edges: disabled flags plus the page's sorted matched-edge
// list). A snapshot is two page-pointer tables plus aggregates. Full
// capture builds every page; *delta* capture (capture_delta) clones only
// the pages containing nodes/edges the engine dirtied since the
// predecessor snapshot and shares every clean page with it — O(touched)
// instead of O(n + m) on the writer's critical path. Both paths construct
// each page with the same builder over the same engine state, so a delta
// snapshot is bit-identical to a full capture of the same epoch (the
// twin-capture test matrix in tests/serve/test_delta.cpp asserts this).
//
// Page lifetime: pages are freed by snapshot destruction when their
// refcount drops to zero — i.e. when the last snapshot referencing them
// retires through the MatchingStore protocol. Page refcounts are plain
// (non-atomic) integers: they are only touched at capture time and at
// snapshot destruction, and both happen exclusively on the writer thread
// (the store's single-writer publish/reclaim contract). Readers pin whole
// snapshots via the store's atomic protocol and never see a page refcount.
//
// Staleness is safe by construction: under the strict total weight order
// the greedy fixed point of a given (alive, enabled) configuration is
// unique (DESIGN.md §10), so a reader holding an older epoch sees *the*
// correct matching of a recent configuration — never a torn or partially
// repaired state. The `blocking_edges` field makes that checkable: it is 0
// for every snapshot exported from the repaired fixed point.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "obs/snapshot.hpp"
#include "util/check.hpp"

namespace overmatch::prefs {
class PreferenceProfile;
class EdgeWeights;
}  // namespace overmatch::prefs

namespace overmatch::matching {
class DynamicBSuitor;
}
namespace overmatch::util {
class ThreadPool;
}

namespace overmatch::serve {

using graph::EdgeId;
using graph::NodeId;

/// Page geometry. Pages are deliberately small: a burst of b churn events
/// dirties O(b · cascade) *scattered* nodes regardless of n, so large pages
/// would be almost all dirty at serving burst sizes and delta capture would
/// degenerate to a rebuild. 16-node / 64-edge pages keep the dirty page
/// count proportional to the dirty element count.
inline constexpr std::size_t kNodePageShift = 4;
inline constexpr std::size_t kNodePageSize = std::size_t{1} << kNodePageShift;
inline constexpr std::size_t kEdgePageShift = 6;
inline constexpr std::size_t kEdgePageSize = std::size_t{1} << kEdgePageShift;

namespace detail {

/// One 16-node slice of the per-node snapshot state. Immutable once built;
/// shared across snapshots via `refs` (writer-thread-only, see file top).
struct NodePage {
  double sat[kNodePageSize] = {};
  /// Local CSR offsets into `partners`; slot s of this page owns
  /// [loff[s], loff[s+1]). Partner lists are sorted ascending by partner id
  /// (the canonical order both capture paths produce).
  std::uint32_t loff[kNodePageSize + 1] = {};
  std::uint8_t alive[kNodePageSize] = {};
  std::uint32_t online = 0;  ///< Σ alive over the page's nodes
  /// Neumaier-compensated Σ sat over the page, in slot order. The global
  /// satisfaction_total combines these per-page sums in page order, so the
  /// total is bit-identical whether a page was rebuilt or shared.
  double sat_sum = 0.0;
  std::uint32_t refs = 0;  ///< writer-thread only (capture / destruction)
  std::vector<NodeId> partners;
};

/// One 64-edge slice: disabled flags + the page's matched edges (ascending;
/// the global sorted matched-edge list is the concatenation over pages, so
/// delta capture never re-sorts anything outside dirtied pages).
struct EdgePage {
  std::uint8_t off[kEdgePageSize] = {};  ///< 1 = disabled
  std::uint32_t refs = 0;                ///< writer-thread only
  std::vector<EdgeId> matched;
};

/// Live page counts (all snapshots, all stores) — the leak oracle for the
/// page-sharing tests: zero after every store is torn down.
[[nodiscard]] std::size_t live_node_pages() noexcept;
[[nodiscard]] std::size_t live_edge_pages() noexcept;

}  // namespace detail

/// Total live pages across the process; 0 once every snapshot is destroyed.
[[nodiscard]] inline std::size_t live_page_count() noexcept {
  return detail::live_node_pages() + detail::live_edge_pages();
}

class MatchingSnapshot {
 public:
  /// Captures the current state of `dyn` as epoch `epoch`, building every
  /// page (full capture — the first epoch and the delta fallback).
  /// `satisfaction` must hold per-node S_i for every node (offline nodes
  /// contribute 0); the writer maintains it incrementally from
  /// last_changed_nodes so the capture itself is a copy, not an
  /// O(n · quota) recompute. `metrics` is moved in (pass {} when no
  /// registry is attached). Heap-allocated because the intrusive refcount
  /// pins the object's address for life.
  static std::unique_ptr<MatchingSnapshot> capture(
      const matching::DynamicBSuitor& dyn, std::span<const double> satisfaction,
      std::uint64_t epoch, obs::Snapshot metrics);

  /// Incremental capture: rebuilds only the pages containing `dirty_nodes` /
  /// `dirty_edges` (the engine's last_changed_nodes / last_changed_edges —
  /// every node whose partner list, alive flag, or satisfaction changed and
  /// every edge whose enabled flag or matched membership changed since
  /// `prev` was captured) and shares all other pages with `prev`. Returns
  /// nullptr — having built nothing — when more than `max_dirty_pages`
  /// pages would need rebuilding; the caller then falls back to capture().
  /// Must run on the writer thread while `prev` is still the store's
  /// current snapshot (page refcounts are non-atomic; see file top).
  static std::unique_ptr<MatchingSnapshot> capture_delta(
      const MatchingSnapshot& prev, const matching::DynamicBSuitor& dyn,
      std::span<const double> satisfaction, std::span<const NodeId> dirty_nodes,
      std::span<const EdgeId> dirty_edges, std::uint64_t epoch,
      obs::Snapshot metrics, std::size_t max_dirty_pages);

  ~MatchingSnapshot();

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept { return n_; }
  [[nodiscard]] std::size_t num_edges() const noexcept { return m_; }

  /// Matched partners of v, ascending by partner id (the neighbour-list
  /// query; a slice of v's page-local CSR).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    OM_CHECK(v < n_);
    const detail::NodePage& p = *node_pages_[v >> kNodePageShift];
    const std::size_t s = v & (kNodePageSize - 1);
    return {p.partners.data() + p.loff[s], p.partners.data() + p.loff[s + 1]};
  }
  [[nodiscard]] std::uint32_t load(NodeId v) const {
    OM_CHECK(v < n_);
    const detail::NodePage& p = *node_pages_[v >> kNodePageShift];
    const std::size_t s = v & (kNodePageSize - 1);
    return p.loff[s + 1] - p.loff[s];
  }
  [[nodiscard]] double satisfaction(NodeId v) const {
    OM_CHECK(v < n_);
    return node_pages_[v >> kNodePageShift]->sat[v & (kNodePageSize - 1)];
  }
  [[nodiscard]] double satisfaction_total() const noexcept { return sat_total_; }
  [[nodiscard]] double matched_weight() const noexcept { return weight_; }
  [[nodiscard]] std::size_t matched_count() const noexcept {
    return matched_count_;
  }

  /// Matched edge ids, ascending (set semantics; the consistency oracle
  /// compares this against a from-scratch solve of the same configuration).
  /// Materialized lazily from the per-page lists on first call (thread-safe;
  /// concurrent readers block only on the one-time flatten, never on the
  /// writer) — the epoch-rate queries below stay wait-free.
  [[nodiscard]] const std::vector<EdgeId>& matched_edges() const;

  /// The configuration this matching is the fixed point of.
  [[nodiscard]] bool alive(NodeId v) const {
    OM_CHECK(v < n_);
    return node_pages_[v >> kNodePageShift]->alive[v & (kNodePageSize - 1)] != 0;
  }
  [[nodiscard]] bool edge_enabled(EdgeId e) const {
    OM_CHECK(e < m_);
    return edge_pages_[e >> kEdgePageShift]->off[e & (kEdgePageSize - 1)] == 0;
  }
  /// True iff edge e is matched (binary search in e's page-local matched
  /// list, ≤ 64 entries).
  [[nodiscard]] bool edge_matched(EdgeId e) const;
  [[nodiscard]] std::size_t online_count() const noexcept { return online_; }

  /// Blocking-edge count of this snapshot: 0 when exported from the
  /// repaired fixed point (set by the writer; see count_blocking_edges).
  [[nodiscard]] std::size_t blocking_edges() const noexcept {
    return blocking_edges_;
  }

  /// Pages rebuilt by capture_delta (0 for a full capture). Telemetry only.
  [[nodiscard]] std::size_t delta_pages() const noexcept { return delta_pages_; }
  /// Total pages (node + edge) backing this snapshot.
  [[nodiscard]] std::size_t page_count() const noexcept {
    return node_pages_.size() + edge_pages_.size();
  }

  [[nodiscard]] const obs::Snapshot& metrics() const noexcept { return metrics_; }

 private:
  friend class MatchingStore;
  friend class SnapshotRef;
  friend class ServiceLoop;
  friend std::size_t count_blocking_edges_impl(const prefs::EdgeWeights&,
                                               const prefs::PreferenceProfile&,
                                               const MatchingSnapshot&,
                                               struct BlockingScratch&,
                                               util::ThreadPool*);
  MatchingSnapshot() = default;

  std::uint64_t epoch_ = 0;
  std::size_t n_ = 0;  ///< nodes
  std::size_t m_ = 0;  ///< candidate edges
  std::vector<detail::NodePage*> node_pages_;
  std::vector<detail::EdgePage*> edge_pages_;
  std::size_t online_ = 0;
  std::size_t matched_count_ = 0;
  double sat_total_ = 0.0;
  double weight_ = 0.0;
  std::size_t blocking_edges_ = 0;
  std::size_t delta_pages_ = 0;
  obs::Snapshot metrics_;

  /// Lazy flatten of the per-page matched lists (see matched_edges()).
  mutable std::once_flag edges_once_;
  mutable std::vector<EdgeId> edges_flat_;

  /// Intrusive reference count owned by the MatchingStore protocol: 1 store
  /// reference while current, +1 per outstanding SnapshotRef. Mutable so
  /// readers can pin through a const snapshot.
  mutable std::atomic<std::uint32_t> refs_{0};
};

/// Caller-owned scratch for count_blocking_edges: reused across calls so
/// the audit allocates nothing after its first use (the vectors are
/// assign()-reset, which reuses capacity).
struct BlockingScratch {
  std::vector<std::uint64_t> weakest;  ///< weakest matched key per node
  std::vector<std::uint32_t> load;     ///< matched load per node
  std::vector<std::size_t> chunk_counts;  ///< pooled-sweep partials
};

/// Counts blocking edges of `snap` under `w`/quotas from `profile`: enabled
/// edges between online endpoints that are unmatched yet wanted on both
/// sides (each endpoint has a free slot or the edge beats its weakest
/// matched edge in the strict key order). One O(m + n·b) sweep over the
/// edge pages; with a non-null `pool` the sweep runs chunked across the
/// pool (caller participates) — the truncated-epoch audit path, where the
/// count is on the writer's publish path. The result is an exact integer
/// either way. The greedy fixed point has none — tests and the optional
/// per-publish audit (ServeOptions::count_blocking) assert 0.
[[nodiscard]] std::size_t count_blocking_edges(const prefs::EdgeWeights& w,
                                               const prefs::PreferenceProfile& profile,
                                               const MatchingSnapshot& snap,
                                               BlockingScratch& scratch,
                                               util::ThreadPool* pool = nullptr);

/// Convenience overload with internal scratch (tests / one-off audits).
[[nodiscard]] std::size_t count_blocking_edges(const prefs::EdgeWeights& w,
                                               const prefs::PreferenceProfile& profile,
                                               const MatchingSnapshot& snap);

}  // namespace overmatch::serve
