// MatchingSnapshot — an immutable, self-contained view of the overlay
// matching at one writer epoch, built for concurrent readers.
//
// The serving layer (DESIGN.md §13) never hands readers the live
// DynamicBSuitor state: the writer captures a plain-value snapshot after
// each repaired churn burst and publishes it through the MatchingStore's
// epoch-pinned pointer swap. A snapshot therefore carries everything a
// query needs with zero back-references to mutable state:
//  * the matched neighbour lists in CSR layout (one offsets array + one
//    flat partner array — the same cache-adjacent shape the Graph uses),
//  * per-node satisfaction S_i and the Σ S_i total,
//  * the matched edge set (sorted) and its total weight,
//  * the alive/edge-disabled configuration the matching is the fixed point
//    of (what consistency checks recompute from), and
//  * a point-in-time obs::Snapshot of the service registry.
//
// Staleness is safe by construction: under the strict total weight order
// the greedy fixed point of a given (alive, enabled) configuration is
// unique (DESIGN.md §10), so a reader holding an older epoch sees *the*
// correct matching of a recent configuration — never a torn or partially
// repaired state. The `blocking_edges` field makes that checkable: it is 0
// for every snapshot exported from the repaired fixed point.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "obs/snapshot.hpp"
#include "util/check.hpp"

namespace overmatch::prefs {
class PreferenceProfile;
class EdgeWeights;
}  // namespace overmatch::prefs

namespace overmatch::matching {
class DynamicBSuitor;
}

namespace overmatch::serve {

using graph::EdgeId;
using graph::NodeId;

class MatchingSnapshot {
 public:
  /// Captures the current state of `dyn` as epoch `epoch`. `satisfaction`
  /// must hold per-node S_i for every node (offline nodes contribute 0);
  /// the writer maintains it incrementally from last_changed_nodes so the
  /// capture itself is a copy, not an O(n · quota) recompute. `metrics`
  /// is moved in (pass {} when no registry is attached). Heap-allocated
  /// because the intrusive refcount pins the object's address for life.
  static std::unique_ptr<MatchingSnapshot> capture(
      const matching::DynamicBSuitor& dyn, std::span<const double> satisfaction,
      std::uint64_t epoch, obs::Snapshot metrics);

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t num_nodes() const noexcept {
    return offsets_.size() - 1;
  }

  /// Matched partners of v (the neighbour-list query; CSR slice).
  [[nodiscard]] std::span<const NodeId> neighbors(NodeId v) const {
    OM_CHECK(v + 1 < offsets_.size());
    return {partners_.data() + offsets_[v], partners_.data() + offsets_[v + 1]};
  }
  [[nodiscard]] std::uint32_t load(NodeId v) const {
    OM_CHECK(v + 1 < offsets_.size());
    return offsets_[v + 1] - offsets_[v];
  }
  [[nodiscard]] double satisfaction(NodeId v) const {
    OM_CHECK(v < satisfaction_.size());
    return satisfaction_[v];
  }
  [[nodiscard]] double satisfaction_total() const noexcept { return sat_total_; }
  [[nodiscard]] double matched_weight() const noexcept { return weight_; }

  /// Matched edge ids, ascending (set semantics; the consistency oracle
  /// compares this against a from-scratch solve of the same configuration).
  [[nodiscard]] const std::vector<EdgeId>& matched_edges() const noexcept {
    return edges_;
  }

  /// The configuration this matching is the fixed point of.
  [[nodiscard]] bool alive(NodeId v) const {
    OM_CHECK(v < alive_.size());
    return alive_[v] != 0;
  }
  [[nodiscard]] bool edge_enabled(EdgeId e) const {
    OM_CHECK(e < edge_off_.size());
    return edge_off_[e] == 0;
  }
  [[nodiscard]] std::size_t online_count() const noexcept { return online_; }

  /// Blocking-edge count of this snapshot: 0 when exported from the
  /// repaired fixed point (set by the writer; see count_blocking_edges).
  [[nodiscard]] std::size_t blocking_edges() const noexcept {
    return blocking_edges_;
  }

  [[nodiscard]] const obs::Snapshot& metrics() const noexcept { return metrics_; }

 private:
  friend class MatchingStore;
  friend class SnapshotRef;
  friend class ServiceLoop;
  MatchingSnapshot() = default;

  std::uint64_t epoch_ = 0;
  std::vector<std::uint32_t> offsets_;  ///< size n+1
  std::vector<NodeId> partners_;        ///< flat matched-partner slices
  std::vector<double> satisfaction_;
  std::vector<EdgeId> edges_;  ///< matched edges, ascending
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> edge_off_;
  std::size_t online_ = 0;
  double sat_total_ = 0.0;
  double weight_ = 0.0;
  std::size_t blocking_edges_ = 0;
  obs::Snapshot metrics_;

  /// Intrusive reference count owned by the MatchingStore protocol: 1 store
  /// reference while current, +1 per outstanding SnapshotRef. Mutable so
  /// readers can pin through a const snapshot.
  mutable std::atomic<std::uint32_t> refs_{0};
};

/// Counts blocking edges of `snap` under `w`/quotas from `profile`: enabled
/// edges between online endpoints that are unmatched yet wanted on both
/// sides (each endpoint has a free slot or the edge beats its weakest
/// matched edge in the strict key order). One O(m + n·b) sweep. The greedy
/// fixed point has none — tests and the optional per-publish audit
/// (ServeOptions::count_blocking) assert 0.
[[nodiscard]] std::size_t count_blocking_edges(const prefs::EdgeWeights& w,
                                               const prefs::PreferenceProfile& profile,
                                               const MatchingSnapshot& snap);

}  // namespace overmatch::serve
