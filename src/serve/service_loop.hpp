// ServiceLoop — the long-running overlay matching service (DESIGN.md §13).
//
// Owns the live engine side of the serving subsystem: a DynamicBSuitor
// maintaining the greedy fixed point under churn, a ChurnTraffic generator
// (or caller-supplied bursts), an incrementally-maintained per-node
// satisfaction cache, and the MatchingStore the repaired state is published
// through. One writer thread drives apply()/step()/run_for(); any number of
// reader threads query via store().acquire() and never block on repair.
//
// Per burst the writer: applies the batch through
// DynamicBSuitor::apply_batch (coalesced, frontier-parallel on
// ServeOptions::pool), refreshes S_i for the changed nodes only, captures
// an immutable MatchingSnapshot, and publishes it. Readers that acquired
// the previous snapshot keep serving it — by fixed-point uniqueness it is
// the exact matching of the configuration one burst ago, never a torn
// intermediate (see snapshot.hpp).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <span>

#include "matching/dynamic_bsuitor.hpp"
#include "overlay/churn.hpp"
#include "serve/store.hpp"

namespace overmatch::serve {

/// How each epoch's snapshot is captured (DESIGN.md §15).
enum class DeltaPublish {
  kOff,   ///< full O(n + m) capture every epoch (the pre-delta behavior)
  kOn,    ///< delta capture whenever a predecessor exists, however dirty
  kAuto,  ///< delta capture with an adaptive fall-back to full capture when
          ///< the dirty page count makes a rebuild cheaper (default)
};

struct ServeOptions {
  /// Burst arrival process and mean size for the built-in traffic source
  /// (run_for / step; apply() takes caller bursts and ignores these).
  overlay::ChurnArrival arrival = overlay::ChurnArrival::kPoisson;
  double churn_batch_mean = 64.0;
  std::uint64_t seed = 1;
  /// Optional pool for frontier-parallel batch repair (caller-owned;
  /// caller participates). Null = sequential repair.
  util::ThreadPool* pool = nullptr;
  /// Optional caller-owned registry: receives the engine's `dyn.*` series
  /// and the service's `serve.*` series (reads/snapshots/batches/events/
  /// coalesced counters, `serve.read_ns` + `serve.publish_ns` + the
  /// apply-latency `serve.apply_ns` histograms, `serve.epoch` gauge).
  obs::Registry* registry = nullptr;
  std::size_t max_readers = MatchingStore::kDefaultMaxReaders;
  /// Audit every published snapshot with an O(m) blocking-edge sweep
  /// (aborts unless 0). Debug/test aid; leave off in latency runs.
  bool count_blocking = false;
  /// Snapshot capture mode. kAuto publishes O(touched) delta snapshots and
  /// falls back to a full rebuild on the first epoch and whenever the
  /// dirty-page count exceeds the adaptive break-even estimate (maintained
  /// from observed full-capture and per-dirty-page delta costs).
  DeltaPublish delta_publish = DeltaPublish::kAuto;
  /// Per-epoch publish deadline in milliseconds (0 = none). When repair of a
  /// burst overruns, the epoch publishes the *partial* matching anyway — a
  /// valid b-matching with its honest blocking-edge gauge — instead of
  /// stalling readers; deferred repair resumes on the next burst (DESIGN.md
  /// §14). Deadline-armed batches repair sequentially (`pool` is bypassed
  /// for that epoch).
  double epoch_deadline_ms = 0.0;
};

class ServiceLoop {
 public:
  /// Builds the initial matching over the full graph and publishes epoch 1,
  /// so readers registered before the first burst already see a snapshot.
  /// `profile` and `weights` are caller-owned and must outlive the loop.
  ServiceLoop(const prefs::PreferenceProfile& profile,
              const prefs::EdgeWeights& weights, ServeOptions options = {});

  /// Per-burst writer telemetry.
  struct StepStats {
    std::uint64_t epoch = 0;       ///< epoch of the published snapshot
    std::size_t events = 0;        ///< raw events in the burst
    std::size_t coalesced = 0;     ///< events cancelled by net-effect dedup
    std::uint64_t apply_ns = 0;    ///< repair (apply_batch) wall-clock
    std::uint64_t publish_ns = 0;  ///< snapshot capture + publish wall-clock
    bool truncated = false;        ///< epoch published before repair finished
    std::size_t pending_repairs = 0;  ///< repair tokens deferred to later epochs
    bool delta = false;            ///< epoch published via delta capture
    std::size_t dirty_pages = 0;   ///< pages rebuilt by a delta capture
  };

  /// Applies one caller-supplied burst and publishes the repaired state.
  /// Events must be valid in order against the live configuration (the
  /// DynamicBSuitor rule); node *and* edge events are accepted.
  StepStats apply(std::span<const matching::ChurnEvent> events);

  /// Draws the next burst from the built-in traffic source and applies it.
  StepStats step();

  /// Aggregate of a run_for session.
  struct RunStats {
    std::size_t batches = 0;
    std::size_t events = 0;
    std::size_t coalesced = 0;
    double wall_ms = 0.0;
  };

  /// Runs step() on the calling thread until `duration` elapses or another
  /// thread calls request_stop(). The stop flag is rearmed on entry.
  RunStats run_for(std::chrono::nanoseconds duration);
  void request_stop() noexcept { stop_.store(true, std::memory_order_release); }

  /// The read side. Reader threads register a handle and acquire snapshots;
  /// both operations are safe concurrently with the writer.
  [[nodiscard]] MatchingStore& store() noexcept { return store_; }
  [[nodiscard]] const MatchingStore& store() const noexcept { return store_; }

  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] const matching::DynamicBSuitor& engine() const noexcept {
    return dyn_;
  }
  [[nodiscard]] overlay::ChurnTraffic& traffic() noexcept { return traffic_; }

  /// Adjusts the per-epoch publish deadline at runtime (0 disables). An
  /// `apply()` with an empty burst then drains any deferred repair — the
  /// catch-up path after truncated epochs.
  void set_epoch_deadline_ms(double ms) noexcept {
    opts_.epoch_deadline_ms = ms;
  }

 private:
  void refresh_satisfaction(NodeId v);
  void publish_current();
  [[nodiscard]] std::size_t delta_page_budget() const noexcept;

  const prefs::PreferenceProfile* profile_;
  const prefs::EdgeWeights* w_;
  ServeOptions opts_;
  matching::DynamicBSuitor dyn_;
  overlay::ChurnTraffic traffic_;
  MatchingStore store_;
  std::vector<double> sat_;  ///< per-node S_i, refreshed from changed nodes
  std::uint64_t epoch_ = 0;
  std::atomic<bool> stop_{false};
  std::uint64_t last_publish_ns_ = 0;
  bool last_delta_ = false;
  std::size_t last_dirty_pages_ = 0;
  /// Predecessor of the next capture: the snapshot the store currently
  /// serves (this loop is its only publisher). Raw pointer is safe — the
  /// store keeps it alive until the next publish, and any pages the next
  /// delta capture shares are pinned by their own refcounts after that.
  const MatchingSnapshot* last_snap_ = nullptr;
  /// Adaptive delta-vs-full estimates (EWMA, ns): a delta capture is
  /// declined once its predicted cost (dirty pages × per-page cost) exceeds
  /// the predicted full-capture cost. See delta_page_budget().
  double ewma_full_ns_ = 0.0;
  double ewma_delta_page_ns_ = 0.0;
  BlockingScratch blocking_scratch_;  ///< reused by the per-publish audits

  obs::Counter batches_ctr_;
  obs::Counter events_ctr_;
  obs::Counter coalesced_ctr_;
  obs::Counter truncated_epochs_ctr_;
  obs::Counter delta_publishes_ctr_;
  obs::Counter full_publishes_ctr_;
  obs::Counter dirty_pages_ctr_;
  obs::Gauge epoch_gauge_;
  obs::Gauge pending_repairs_gauge_;
  obs::Histogram apply_ns_hist_;
  obs::Histogram publish_ns_hist_;
};

}  // namespace overmatch::serve
