#include "serve/service_loop.hpp"

#include "obs/registry.hpp"
#include "prefs/satisfaction.hpp"

namespace overmatch::serve {
namespace {

[[nodiscard]] std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Publish cost is dominated by the O(n + matched) snapshot capture;
/// buckets span cache-resident small overlays to the n = 10^6 rung.
const std::vector<double> kPublishNsBuckets = {1e4, 1e5, 5e5, 1e6, 5e6,
                                               1e7, 5e7, 1e8, 1e9};
const std::vector<double> kApplyNsBuckets = {1e3, 1e4, 1e5, 5e5, 1e6,
                                             5e6, 1e7, 1e8, 1e9};

}  // namespace

ServiceLoop::ServiceLoop(const prefs::PreferenceProfile& profile,
                         const prefs::EdgeWeights& weights, ServeOptions options)
    : profile_(&profile),
      w_(&weights),
      opts_(options),
      dyn_(weights, profile.quotas(), options.registry),
      traffic_(profile.graph().num_nodes(), options.arrival,
               options.churn_batch_mean, options.seed ^ 0x5851f42d4c957f2dULL),
      store_(options.max_readers, options.registry),
      sat_(profile.graph().num_nodes(), 0.0),
      batches_ctr_(obs::counter(options.registry, "serve.batches")),
      events_ctr_(obs::counter(options.registry, "serve.events")),
      coalesced_ctr_(obs::counter(options.registry, "serve.coalesced")),
      truncated_epochs_ctr_(
          obs::counter(options.registry, "serve.truncated_epochs")),
      epoch_gauge_(obs::gauge(options.registry, "serve.epoch")),
      pending_repairs_gauge_(
          obs::gauge(options.registry, "serve.pending_repairs")) {
  if (opts_.registry != nullptr) {
    apply_ns_hist_ = opts_.registry->histogram("serve.apply_ns", kApplyNsBuckets);
    publish_ns_hist_ =
        opts_.registry->histogram("serve.publish_ns", kPublishNsBuckets);
  }
  for (NodeId v = 0; v < profile.graph().num_nodes(); ++v) {
    refresh_satisfaction(v);
  }
  publish_current();  // epoch 1: readers always find a snapshot
}

void ServiceLoop::refresh_satisfaction(NodeId v) {
  sat_[v] = dyn_.alive(v) ? prefs::satisfaction(*profile_, v,
                                                dyn_.matching().connections(v))
                          : 0.0;
}

void ServiceLoop::publish_current() {
  const auto t0 = std::chrono::steady_clock::now();
  ++epoch_;
  auto snap = MatchingSnapshot::capture(
      dyn_, sat_, epoch_,
      opts_.registry != nullptr ? opts_.registry->snapshot() : obs::Snapshot{});
  if (dyn_.truncated()) {
    // Truncated epoch (publish deadline hit): the snapshot is a valid
    // b-matching short of the fixed point, so the zero-blocking audit does
    // not apply — publish the honest distance-from-convergence gauge
    // instead. The O(m) sweep is paid only on overrun epochs, and readers
    // are never stalled either way.
    snap->blocking_edges_ = count_blocking_edges(*w_, *profile_, *snap);
  } else if (opts_.count_blocking) {
    snap->blocking_edges_ = count_blocking_edges(*w_, *profile_, *snap);
    OM_CHECK_MSG(snap->blocking_edges_ == 0,
                 "published snapshot is not the greedy fixed point");
  }
  store_.publish(std::move(snap));
  last_publish_ns_ = elapsed_ns(t0);
  publish_ns_hist_.observe(static_cast<double>(last_publish_ns_));
  epoch_gauge_.set(static_cast<double>(epoch_));
}

ServiceLoop::StepStats ServiceLoop::apply(
    std::span<const matching::ChurnEvent> events) {
  const auto t0 = std::chrono::steady_clock::now();
  // The publish deadline covers the repair drain; teardown always completes,
  // so the configuration the epoch publishes is the post-burst one even when
  // repair is cut short.
  core::Budget budget;
  budget.deadline_ms = opts_.epoch_deadline_ms;
  dyn_.apply_batch(events, opts_.pool, core::Deadline(budget));
  const std::uint64_t apply_ns = elapsed_ns(t0);

  for (const NodeId v : dyn_.last_changed_nodes()) refresh_satisfaction(v);
  // Node events flip the leaver/joiner's own S_i even when unmatched.
  for (const matching::ChurnEvent& ev : events) {
    if (ev.is_node_event()) refresh_satisfaction(ev.u);
  }
  publish_current();

  StepStats st;
  st.epoch = epoch_;
  st.events = events.size();
  st.coalesced = dyn_.last_batch().coalesced;
  st.apply_ns = apply_ns;
  st.publish_ns = last_publish_ns_;
  st.truncated = dyn_.truncated();
  st.pending_repairs = dyn_.pending_repairs();
  batches_ctr_.inc();
  events_ctr_.inc(st.events);
  coalesced_ctr_.inc(st.coalesced);
  if (st.truncated) truncated_epochs_ctr_.inc();
  pending_repairs_gauge_.set(static_cast<double>(st.pending_repairs));
  apply_ns_hist_.observe(static_cast<double>(apply_ns));
  return st;
}

ServiceLoop::StepStats ServiceLoop::step() {
  const auto burst = traffic_.next_burst();
  return apply(burst);
}

ServiceLoop::RunStats ServiceLoop::run_for(std::chrono::nanoseconds duration) {
  stop_.store(false, std::memory_order_release);
  const auto deadline = std::chrono::steady_clock::now() + duration;
  const auto t0 = std::chrono::steady_clock::now();
  RunStats run;
  while (!stop_.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    const StepStats st = step();
    ++run.batches;
    run.events += st.events;
    run.coalesced += st.coalesced;
  }
  run.wall_ms = static_cast<double>(elapsed_ns(t0)) / 1e6;
  return run;
}

}  // namespace overmatch::serve
