#include "serve/service_loop.hpp"

#include <limits>

#include "obs/registry.hpp"
#include "prefs/satisfaction.hpp"

namespace overmatch::serve {
namespace {

[[nodiscard]] std::uint64_t elapsed_ns(std::chrono::steady_clock::time_point t0) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - t0)
          .count());
}

/// Publish cost is O(dirty pages) on the delta path and O(n + m) on the
/// full-capture path; buckets span both regimes up to the n = 10^6 rung.
const std::vector<double> kPublishNsBuckets = {1e4, 1e5, 5e5, 1e6, 5e6,
                                               1e7, 5e7, 1e8, 1e9};

/// EWMA step for the adaptive delta-vs-full cost estimates: slow enough to
/// ride out scheduler noise, fast enough to track load shifts.
constexpr double kCostEwmaAlpha = 0.2;

[[nodiscard]] double ewma(double prev, double x) noexcept {
  return prev == 0.0 ? x : (1.0 - kCostEwmaAlpha) * prev + kCostEwmaAlpha * x;
}
const std::vector<double> kApplyNsBuckets = {1e3, 1e4, 1e5, 5e5, 1e6,
                                             5e6, 1e7, 1e8, 1e9};

}  // namespace

ServiceLoop::ServiceLoop(const prefs::PreferenceProfile& profile,
                         const prefs::EdgeWeights& weights, ServeOptions options)
    : profile_(&profile),
      w_(&weights),
      opts_(options),
      dyn_(weights, profile.quotas(), options.registry),
      traffic_(profile.graph().num_nodes(), options.arrival,
               options.churn_batch_mean, options.seed ^ 0x5851f42d4c957f2dULL),
      store_(options.max_readers, options.registry),
      sat_(profile.graph().num_nodes(), 0.0),
      batches_ctr_(obs::counter(options.registry, "serve.batches")),
      events_ctr_(obs::counter(options.registry, "serve.events")),
      coalesced_ctr_(obs::counter(options.registry, "serve.coalesced")),
      truncated_epochs_ctr_(
          obs::counter(options.registry, "serve.truncated_epochs")),
      delta_publishes_ctr_(
          obs::counter(options.registry, "serve.delta_publishes")),
      full_publishes_ctr_(
          obs::counter(options.registry, "serve.full_publishes")),
      dirty_pages_ctr_(obs::counter(options.registry, "serve.dirty_pages")),
      epoch_gauge_(obs::gauge(options.registry, "serve.epoch")),
      pending_repairs_gauge_(
          obs::gauge(options.registry, "serve.pending_repairs")) {
  if (opts_.registry != nullptr) {
    apply_ns_hist_ = opts_.registry->histogram("serve.apply_ns", kApplyNsBuckets);
    publish_ns_hist_ =
        opts_.registry->histogram("serve.publish_ns", kPublishNsBuckets);
  }
  for (NodeId v = 0; v < profile.graph().num_nodes(); ++v) {
    refresh_satisfaction(v);
  }
  publish_current();  // epoch 1: readers always find a snapshot
}

void ServiceLoop::refresh_satisfaction(NodeId v) {
  sat_[v] = dyn_.alive(v) ? prefs::satisfaction(*profile_, v,
                                                dyn_.matching().connections(v))
                          : 0.0;
}

std::size_t ServiceLoop::delta_page_budget() const noexcept {
  switch (opts_.delta_publish) {
    case DeltaPublish::kOff:
      return 0;
    case DeltaPublish::kOn:
      return std::numeric_limits<std::size_t>::max();
    case DeltaPublish::kAuto:
      break;
  }
  // Break-even estimate: a delta capture costs ~dirty_pages × per-page
  // cost, a rebuild ~ewma_full_ns_. Until both estimates exist (the first
  // epoch seeds the full cost, the first delta the per-page cost), admit up
  // to 85% dirty pages — delta's per-page work is the same page builder the
  // rebuild runs, so it stays cheaper until the dirty fraction nears 1.
  if (ewma_full_ns_ > 0.0 && ewma_delta_page_ns_ > 0.0) {
    const double pages = ewma_full_ns_ / ewma_delta_page_ns_;
    return pages < 1.0 ? 1 : static_cast<std::size_t>(pages);
  }
  const std::size_t total =
      last_snap_ != nullptr ? last_snap_->page_count() : 0;
  return (total * 85) / 100;
}

void ServiceLoop::publish_current() {
  const auto t0 = std::chrono::steady_clock::now();
  ++epoch_;
  obs::Snapshot metrics =
      opts_.registry != nullptr ? opts_.registry->snapshot() : obs::Snapshot{};
  std::unique_ptr<MatchingSnapshot> snap;
  if (last_snap_ != nullptr && opts_.delta_publish != DeltaPublish::kOff) {
    // `metrics` is passed by copy: a declined delta (nullptr) must leave it
    // intact for the full-capture fallback.
    snap = MatchingSnapshot::capture_delta(
        *last_snap_, dyn_, sat_, dyn_.last_changed_nodes(),
        dyn_.last_changed_edges(), epoch_, metrics, delta_page_budget());
  }
  last_delta_ = snap != nullptr;
  if (!last_delta_) {
    snap = MatchingSnapshot::capture(dyn_, sat_, epoch_, std::move(metrics));
  }
  const std::uint64_t capture_ns = elapsed_ns(t0);
  last_dirty_pages_ = snap->delta_pages();
  if (last_delta_) {
    delta_publishes_ctr_.inc();
    dirty_pages_ctr_.inc(last_dirty_pages_);
    if (last_dirty_pages_ > 0) {
      ewma_delta_page_ns_ =
          ewma(ewma_delta_page_ns_, static_cast<double>(capture_ns) /
                                        static_cast<double>(last_dirty_pages_));
    }
  } else {
    full_publishes_ctr_.inc();
    ewma_full_ns_ = ewma(ewma_full_ns_, static_cast<double>(capture_ns));
  }
  if (dyn_.truncated()) {
    // Truncated epoch (publish deadline hit): the snapshot is a valid
    // b-matching short of the fixed point, so the zero-blocking audit does
    // not apply — publish the honest distance-from-convergence gauge
    // instead. The O(m) sweep is paid only on overrun epochs (on the repair
    // pool when one is attached), and readers are never stalled either way.
    snap->blocking_edges_ = count_blocking_edges(*w_, *profile_, *snap,
                                                 blocking_scratch_, opts_.pool);
  } else if (opts_.count_blocking) {
    snap->blocking_edges_ = count_blocking_edges(*w_, *profile_, *snap,
                                                 blocking_scratch_, opts_.pool);
    OM_CHECK_MSG(snap->blocking_edges_ == 0,
                 "published snapshot is not the greedy fixed point");
  }
  last_snap_ = snap.get();
  store_.publish(std::move(snap));
  last_publish_ns_ = elapsed_ns(t0);
  publish_ns_hist_.observe(static_cast<double>(last_publish_ns_));
  epoch_gauge_.set(static_cast<double>(epoch_));
}

ServiceLoop::StepStats ServiceLoop::apply(
    std::span<const matching::ChurnEvent> events) {
  const auto t0 = std::chrono::steady_clock::now();
  // The publish deadline covers the repair drain; teardown always completes,
  // so the configuration the epoch publishes is the post-burst one even when
  // repair is cut short.
  core::Budget budget;
  budget.deadline_ms = opts_.epoch_deadline_ms;
  dyn_.apply_batch(events, opts_.pool, core::Deadline(budget));
  const std::uint64_t apply_ns = elapsed_ns(t0);

  // last_changed_nodes covers every node whose S_i can have moved: matched
  // connection changes *and* alive flips (the engine notes leavers/joiners
  // itself, so unmatched node events need no separate pass here). The same
  // set drives which node pages the delta capture below rebuilds — the
  // satisfaction refresh and the dirty-page set stay in lockstep by
  // construction.
  for (const NodeId v : dyn_.last_changed_nodes()) refresh_satisfaction(v);
  publish_current();

  StepStats st;
  st.epoch = epoch_;
  st.events = events.size();
  st.coalesced = dyn_.last_batch().coalesced;
  st.apply_ns = apply_ns;
  st.publish_ns = last_publish_ns_;
  st.truncated = dyn_.truncated();
  st.pending_repairs = dyn_.pending_repairs();
  st.delta = last_delta_;
  st.dirty_pages = last_dirty_pages_;
  batches_ctr_.inc();
  events_ctr_.inc(st.events);
  coalesced_ctr_.inc(st.coalesced);
  if (st.truncated) truncated_epochs_ctr_.inc();
  pending_repairs_gauge_.set(static_cast<double>(st.pending_repairs));
  apply_ns_hist_.observe(static_cast<double>(apply_ns));
  return st;
}

ServiceLoop::StepStats ServiceLoop::step() {
  const auto burst = traffic_.next_burst();
  return apply(burst);
}

ServiceLoop::RunStats ServiceLoop::run_for(std::chrono::nanoseconds duration) {
  stop_.store(false, std::memory_order_release);
  const auto deadline = std::chrono::steady_clock::now() + duration;
  const auto t0 = std::chrono::steady_clock::now();
  RunStats run;
  while (!stop_.load(std::memory_order_acquire) &&
         std::chrono::steady_clock::now() < deadline) {
    const StepStats st = step();
    ++run.batches;
    run.events += st.events;
    run.coalesced += st.coalesced;
  }
  run.wall_ms = static_cast<double>(elapsed_ns(t0)) / 1e6;
  return run;
}

}  // namespace overmatch::serve
