#include "serve/snapshot.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <type_traits>

#include "matching/dynamic_bsuitor.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"
#include "util/thread_pool.hpp"

namespace overmatch::serve {
namespace detail {
namespace {

/// Process-wide live-page counters (atomic only because the leak tests read
/// them from the test thread while stores on other threads may exist).
std::atomic<std::size_t> g_live_node_pages{0};
std::atomic<std::size_t> g_live_edge_pages{0};

/// Neumaier-compensated running sum. Both capture paths fold satisfaction
/// through this accumulator in the same order (slot order within a page,
/// page order across pages), which is what makes the delta-captured
/// satisfaction_total bit-identical to a full capture's.
struct NeumaierSum {
  double s = 0.0;
  double c = 0.0;
  void add(double x) noexcept {
    const double t = s + x;
    if (std::abs(s) >= std::abs(x)) {
      c += (s - t) + x;
    } else {
      c += (x - t) + s;
    }
    s = t;
  }
  [[nodiscard]] double value() const noexcept { return s + c; }
};

/// Builds the NodePage covering nodes [page·16, min(page·16 + 16, n)) from
/// the engine's current state. The ONLY producer of node pages — full and
/// delta capture both call it, so a rebuilt page is bit-identical to the
/// page a full capture would have produced.
NodePage* build_node_page(const matching::DynamicBSuitor& dyn,
                          std::span<const double> satisfaction,
                          std::size_t page) {
  const matching::Matching& m = dyn.matching();
  const std::size_t n = satisfaction.size();
  const std::size_t base = page << kNodePageShift;
  const std::size_t end = std::min(base + kNodePageSize, n);
  const auto alive = dyn.alive_flags();

  auto* p = new NodePage();
  g_live_node_pages.fetch_add(1, std::memory_order_relaxed);
  std::size_t total = 0;
  for (std::size_t v = base; v < end; ++v) total += m.load(static_cast<NodeId>(v));
  p->partners.reserve(total);
  NeumaierSum sat_sum;
  for (std::size_t v = base; v < end; ++v) {
    const std::size_t s = v - base;
    p->loff[s] = static_cast<std::uint32_t>(p->partners.size());
    const auto conns = m.connections(static_cast<NodeId>(v));
    p->partners.insert(p->partners.end(), conns.begin(), conns.end());
    // Canonical partner order: ascending by partner id (connections() is
    // insertion-ordered and must not leak execution history into the
    // reader-visible snapshot).
    std::sort(p->partners.begin() + p->loff[s], p->partners.end());
    p->alive[s] = alive[v];
    p->online += alive[v];
    p->sat[s] = satisfaction[v];
    sat_sum.add(satisfaction[v]);
  }
  for (std::size_t s = end - base; s <= kNodePageSize; ++s) {
    p->loff[s] = static_cast<std::uint32_t>(p->partners.size());
  }
  p->sat_sum = sat_sum.value();
  return p;
}

/// Builds the EdgePage covering edges [page·64, min(page·64 + 64, m)). The
/// page's matched list is produced by scanning the id range in order, so it
/// is sorted by construction — the global sorted matched-edge list is the
/// page concatenation and no capture ever sorts more than a dirty page.
EdgePage* build_edge_page(const matching::DynamicBSuitor& dyn,
                          std::size_t page) {
  const matching::Matching& m = dyn.matching();
  const std::size_t num_edges = dyn.edge_off_flags().size();
  const std::size_t base = page << kEdgePageShift;
  const std::size_t end = std::min(base + kEdgePageSize, num_edges);
  const auto off = dyn.edge_off_flags();

  auto* p = new EdgePage();
  g_live_edge_pages.fetch_add(1, std::memory_order_relaxed);
  std::memcpy(p->off, off.data() + base, end - base);
  for (std::size_t e = base; e < end; ++e) {
    if (m.contains(static_cast<EdgeId>(e))) {
      p->matched.push_back(static_cast<EdgeId>(e));
    }
  }
  return p;
}

void release(NodePage* p) noexcept {
  if (--p->refs == 0) {
    delete p;
    g_live_node_pages.fetch_sub(1, std::memory_order_relaxed);
  }
}

void release(EdgePage* p) noexcept {
  if (--p->refs == 0) {
    delete p;
    g_live_edge_pages.fetch_sub(1, std::memory_order_relaxed);
  }
}

/// Distinct page indices covering `ids`, ascending. `scratch` is reused.
template <typename Id>
void dirty_pages_of(std::span<const Id> ids, std::size_t shift,
                    std::vector<std::uint32_t>& scratch) {
  scratch.clear();
  scratch.reserve(ids.size());
  for (const Id id : ids) {
    scratch.push_back(static_cast<std::uint32_t>(id >> shift));
  }
  std::sort(scratch.begin(), scratch.end());
  scratch.erase(std::unique(scratch.begin(), scratch.end()), scratch.end());
}

}  // namespace

std::size_t live_node_pages() noexcept {
  return g_live_node_pages.load(std::memory_order_acquire);
}
std::size_t live_edge_pages() noexcept {
  return g_live_edge_pages.load(std::memory_order_acquire);
}

}  // namespace detail

namespace {

/// Global aggregates from the page tables, in page order (see NeumaierSum).
/// Shared by full capture (sole source) and delta capture (bit-identity of
/// satisfaction_total, plus the debug cross-check of the incrementally
/// maintained integer aggregates). O(#pages) = O(n/16 + m/64) — float adds,
/// not element copies, so it is never the dominant capture term.
struct PageAggregates {
  std::size_t online = 0;
  std::size_t matched = 0;
  double sat_total = 0.0;
};

PageAggregates combine_pages(const std::vector<detail::NodePage*>& node_pages,
                             const std::vector<detail::EdgePage*>& edge_pages) {
  PageAggregates agg;
  detail::NeumaierSum sat;
  for (const detail::NodePage* p : node_pages) {
    agg.online += p->online;
    sat.add(p->sat_sum);
  }
  agg.sat_total = sat.value();
  for (const detail::EdgePage* p : edge_pages) agg.matched += p->matched.size();
  return agg;
}

}  // namespace

MatchingSnapshot::~MatchingSnapshot() {
  for (detail::NodePage* p : node_pages_) detail::release(p);
  for (detail::EdgePage* p : edge_pages_) detail::release(p);
}

std::unique_ptr<MatchingSnapshot> MatchingSnapshot::capture(
    const matching::DynamicBSuitor& dyn, std::span<const double> satisfaction,
    std::uint64_t epoch, obs::Snapshot metrics) {
  const matching::Matching& m = dyn.matching();
  const graph::Graph& g = m.graph();
  const std::size_t n = g.num_nodes();
  OM_CHECK_MSG(satisfaction.size() == n, "satisfaction span must cover all nodes");

  auto out = std::unique_ptr<MatchingSnapshot>(new MatchingSnapshot());
  MatchingSnapshot& snap = *out;
  snap.epoch_ = epoch;
  snap.metrics_ = std::move(metrics);
  snap.n_ = n;
  snap.m_ = g.num_edges();
  snap.weight_ = dyn.matched_weight();

  const std::size_t node_pages = (n + kNodePageSize - 1) >> kNodePageShift;
  const std::size_t edge_pages =
      (snap.m_ + kEdgePageSize - 1) >> kEdgePageShift;
  snap.node_pages_.reserve(node_pages);
  snap.edge_pages_.reserve(edge_pages);
  for (std::size_t p = 0; p < node_pages; ++p) {
    detail::NodePage* np = detail::build_node_page(dyn, satisfaction, p);
    np->refs = 1;
    snap.node_pages_.push_back(np);
  }
  for (std::size_t p = 0; p < edge_pages; ++p) {
    detail::EdgePage* ep = detail::build_edge_page(dyn, p);
    ep->refs = 1;
    snap.edge_pages_.push_back(ep);
  }

  const PageAggregates agg = combine_pages(snap.node_pages_, snap.edge_pages_);
  snap.online_ = agg.online;
  snap.matched_count_ = agg.matched;
  snap.sat_total_ = agg.sat_total;
  return out;
}

std::unique_ptr<MatchingSnapshot> MatchingSnapshot::capture_delta(
    const MatchingSnapshot& prev, const matching::DynamicBSuitor& dyn,
    std::span<const double> satisfaction, std::span<const NodeId> dirty_nodes,
    std::span<const EdgeId> dirty_edges, std::uint64_t epoch,
    obs::Snapshot metrics, std::size_t max_dirty_pages) {
  OM_CHECK_MSG(satisfaction.size() == prev.n_,
               "satisfaction span must cover all nodes");
  // Dirty page sets first — the decline check must run before anything is
  // built or any refcount moves, so a nullptr return leaves no trace.
  std::vector<std::uint32_t> dirty_np;
  std::vector<std::uint32_t> dirty_ep;
  detail::dirty_pages_of(dirty_nodes, kNodePageShift, dirty_np);
  detail::dirty_pages_of(dirty_edges, kEdgePageShift, dirty_ep);
  if (dirty_np.size() + dirty_ep.size() > max_dirty_pages) return nullptr;

  auto out = std::unique_ptr<MatchingSnapshot>(new MatchingSnapshot());
  MatchingSnapshot& snap = *out;
  snap.epoch_ = epoch;
  snap.metrics_ = std::move(metrics);
  snap.n_ = prev.n_;
  snap.m_ = prev.m_;
  snap.weight_ = dyn.matched_weight();
  snap.delta_pages_ = dirty_np.size() + dirty_ep.size();

  // Share every page with the predecessor, then swap in rebuilt copies of
  // the dirty ones. The integer aggregates are maintained incrementally
  // from the per-page deltas (exact — no float drift possible).
  snap.node_pages_ = prev.node_pages_;
  snap.edge_pages_ = prev.edge_pages_;
  for (detail::NodePage* p : snap.node_pages_) ++p->refs;
  for (detail::EdgePage* p : snap.edge_pages_) ++p->refs;
  snap.online_ = prev.online_;
  snap.matched_count_ = prev.matched_count_;
  for (const std::uint32_t pi : dirty_np) {
    detail::NodePage* np = detail::build_node_page(dyn, satisfaction, pi);
    np->refs = 1;
    detail::NodePage* old = snap.node_pages_[pi];
    snap.online_ -= old->online;
    snap.online_ += np->online;
    snap.node_pages_[pi] = np;
    detail::release(old);
  }
  for (const std::uint32_t pi : dirty_ep) {
    detail::EdgePage* ep = detail::build_edge_page(dyn, pi);
    ep->refs = 1;
    detail::EdgePage* old = snap.edge_pages_[pi];
    snap.matched_count_ -= old->matched.size();
    snap.matched_count_ += ep->matched.size();
    snap.edge_pages_[pi] = ep;
    detail::release(old);
  }
  // satisfaction_total is *combined*, not incremented: compensated page
  // sums re-folded in page order are bit-identical to the full-capture
  // fold, which an incremental subtract/add of a compensated total is not.
  detail::NeumaierSum sat;
  for (const detail::NodePage* p : snap.node_pages_) sat.add(p->sat_sum);
  snap.sat_total_ = sat.value();

#ifndef NDEBUG
  // Debug cross-check: the incrementally maintained aggregates must equal a
  // full recompute over the page tables.
  const PageAggregates agg = combine_pages(snap.node_pages_, snap.edge_pages_);
  OM_CHECK_MSG(agg.online == snap.online_,
               "delta capture drifted from the page online count");
  OM_CHECK_MSG(agg.matched == snap.matched_count_,
               "delta capture drifted from the page matched count");
  OM_CHECK(agg.sat_total == snap.sat_total_);
#endif
  return out;
}

const std::vector<EdgeId>& MatchingSnapshot::matched_edges() const {
  std::call_once(edges_once_, [this] {
    edges_flat_.reserve(matched_count_);
    for (const detail::EdgePage* p : edge_pages_) {
      edges_flat_.insert(edges_flat_.end(), p->matched.begin(),
                         p->matched.end());
    }
  });
  return edges_flat_;
}

bool MatchingSnapshot::edge_matched(EdgeId e) const {
  OM_CHECK(e < m_);
  const detail::EdgePage& p = *edge_pages_[e >> kEdgePageShift];
  return std::binary_search(p.matched.begin(), p.matched.end(), e);
}

std::size_t count_blocking_edges_impl(const prefs::EdgeWeights& w,
                                      const prefs::PreferenceProfile& profile,
                                      const MatchingSnapshot& snap,
                                      BlockingScratch& scratch,
                                      util::ThreadPool* pool) {
  static_assert(std::is_same_v<prefs::EdgeWeights::Key, std::uint64_t>,
                "BlockingScratch::weakest mirrors EdgeWeights::Key");
  const graph::Graph& g = w.graph();
  const std::size_t n = g.num_nodes();
  OM_CHECK(snap.num_nodes() == n);

  // Weakest matched key per node (max key = lightest edge; kNone when the
  // node has a free slot, which admits anything). assign() reuses the
  // scratch capacity — no allocation after the first call.
  constexpr auto kNone = std::numeric_limits<prefs::EdgeWeights::Key>::max();
  scratch.weakest.assign(n, kNone);
  scratch.load.assign(n, 0);
  for (const detail::EdgePage* p : snap.edge_pages_) {
    for (const EdgeId e : p->matched) {
      const auto& [u, v] = g.edge(e);
      for (const NodeId x : {u, v}) {
        ++scratch.load[x];
        if (scratch.weakest[x] == kNone || w.key(e) > scratch.weakest[x]) {
          scratch.weakest[x] = w.key(e);
        }
      }
    }
  }
  const auto wants = [&](NodeId x, EdgeId e) {
    if (scratch.load[x] < profile.quota(x)) return true;
    return profile.quota(x) > 0 && w.key(e) < scratch.weakest[x];
  };
  // Matched edges are skipped with a merge walk over each page's sorted
  // matched list — the per-call O(m) matched bitmap is gone.
  const auto sweep_page = [&](const detail::EdgePage& p, std::size_t base,
                              std::size_t end) {
    std::size_t blocking = 0;
    std::size_t mi = 0;
    for (std::size_t e = base; e < end; ++e) {
      const auto id = static_cast<EdgeId>(e);
      if (mi < p.matched.size() && p.matched[mi] == id) {
        ++mi;
        continue;
      }
      if (p.off[e - base] != 0) continue;
      const auto& [u, v] = g.edge(id);
      if (!snap.alive(u) || !snap.alive(v)) continue;
      if (wants(u, id) && wants(v, id)) ++blocking;
    }
    return blocking;
  };

  const std::size_t pages = snap.edge_pages_.size();
  if (pool == nullptr || pool->size() == 0 || pages < 4) {
    std::size_t blocking = 0;
    for (std::size_t pi = 0; pi < pages; ++pi) {
      const std::size_t base = pi << kEdgePageShift;
      blocking += sweep_page(*snap.edge_pages_[pi], base,
                             std::min(base + kEdgePageSize, snap.num_edges()));
    }
    return blocking;
  }
  // Pooled sweep for the truncated-epoch audit: per-chunk partial counts,
  // summed on the caller — an exact integer regardless of chunking.
  constexpr std::size_t kMinPagesPerChunk = 16;
  scratch.chunk_counts.assign(pool->num_chunks(pages, kMinPagesPerChunk), 0);
  pool->parallel_for_chunks(
      pages,
      [&](std::size_t chunk, std::size_t first, std::size_t last) {
        std::size_t blocking = 0;
        for (std::size_t pi = first; pi < last; ++pi) {
          const std::size_t base = pi << kEdgePageShift;
          blocking +=
              sweep_page(*snap.edge_pages_[pi], base,
                         std::min(base + kEdgePageSize, snap.num_edges()));
        }
        scratch.chunk_counts[chunk] = blocking;
      },
      kMinPagesPerChunk);
  std::size_t blocking = 0;
  for (const std::size_t c : scratch.chunk_counts) blocking += c;
  return blocking;
}

std::size_t count_blocking_edges(const prefs::EdgeWeights& w,
                                 const prefs::PreferenceProfile& profile,
                                 const MatchingSnapshot& snap,
                                 BlockingScratch& scratch,
                                 util::ThreadPool* pool) {
  return count_blocking_edges_impl(w, profile, snap, scratch, pool);
}

std::size_t count_blocking_edges(const prefs::EdgeWeights& w,
                                 const prefs::PreferenceProfile& profile,
                                 const MatchingSnapshot& snap) {
  BlockingScratch scratch;
  return count_blocking_edges_impl(w, profile, snap, scratch, nullptr);
}

}  // namespace overmatch::serve
