#include "serve/snapshot.hpp"

#include <algorithm>
#include <limits>

#include "matching/dynamic_bsuitor.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"

namespace overmatch::serve {

std::unique_ptr<MatchingSnapshot> MatchingSnapshot::capture(
    const matching::DynamicBSuitor& dyn, std::span<const double> satisfaction,
    std::uint64_t epoch, obs::Snapshot metrics) {
  const matching::Matching& m = dyn.matching();
  const graph::Graph& g = m.graph();
  const std::size_t n = g.num_nodes();
  OM_CHECK_MSG(satisfaction.size() == n, "satisfaction span must cover all nodes");

  auto out = std::unique_ptr<MatchingSnapshot>(new MatchingSnapshot());
  MatchingSnapshot& snap = *out;
  snap.epoch_ = epoch;
  snap.metrics_ = std::move(metrics);
  snap.weight_ = dyn.matched_weight();

  const auto alive = dyn.alive_flags();
  const auto edge_off = dyn.edge_off_flags();
  snap.alive_.assign(alive.begin(), alive.end());
  snap.edge_off_.assign(edge_off.begin(), edge_off.end());
  snap.online_ = static_cast<std::size_t>(
      std::count(snap.alive_.begin(), snap.alive_.end(), std::uint8_t{1}));

  snap.edges_.assign(m.edges().begin(), m.edges().end());
  std::sort(snap.edges_.begin(), snap.edges_.end());

  // Matched neighbour lists in CSR: one prefix-sum over loads, one fill.
  snap.offsets_.resize(n + 1, 0);
  for (NodeId v = 0; v < n; ++v) {
    snap.offsets_[v + 1] = snap.offsets_[v] + m.load(v);
  }
  snap.partners_.resize(snap.offsets_[n]);
  std::vector<std::uint32_t> cursor(snap.offsets_.begin(),
                                    snap.offsets_.end() - 1);
  for (const EdgeId e : snap.edges_) {
    const auto& [u, v] = g.edge(e);
    snap.partners_[cursor[u]++] = v;
    snap.partners_[cursor[v]++] = u;
  }

  snap.satisfaction_.assign(satisfaction.begin(), satisfaction.end());
  snap.sat_total_ = 0.0;
  for (const double s : snap.satisfaction_) snap.sat_total_ += s;
  return out;
}

std::size_t count_blocking_edges(const prefs::EdgeWeights& w,
                                 const prefs::PreferenceProfile& profile,
                                 const MatchingSnapshot& snap) {
  const graph::Graph& g = w.graph();
  const std::size_t n = g.num_nodes();
  OM_CHECK(snap.num_nodes() == n);

  // Weakest matched key per node (max key = lightest edge; kNone when the
  // node has a free slot, which admits anything).
  constexpr auto kNone = std::numeric_limits<prefs::EdgeWeights::Key>::max();
  std::vector<prefs::EdgeWeights::Key> weakest(n, kNone);
  std::vector<std::uint32_t> load(n, 0);
  for (const EdgeId e : snap.matched_edges()) {
    const auto& [u, v] = g.edge(e);
    for (const NodeId x : {u, v}) {
      ++load[x];
      if (weakest[x] == kNone || w.key(e) > weakest[x]) weakest[x] = w.key(e);
    }
  }
  const auto wants = [&](NodeId x, EdgeId e) {
    if (load[x] < profile.quota(x)) return true;
    return profile.quota(x) > 0 && w.key(e) < weakest[x];
  };

  std::vector<std::uint8_t> matched(g.num_edges(), 0);
  for (const EdgeId e : snap.matched_edges()) matched[e] = 1;

  std::size_t blocking = 0;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    if (matched[e] != 0 || !snap.edge_enabled(e)) continue;
    const auto& [u, v] = g.edge(e);
    if (!snap.alive(u) || !snap.alive(v)) continue;
    if (wants(u, e) && wants(v, e)) ++blocking;
  }
  return blocking;
}

}  // namespace overmatch::serve
