#include "serve/store.hpp"

#include <chrono>

#include "obs/registry.hpp"

namespace overmatch::serve {
namespace {

/// Acquire latency is tens of nanoseconds; buckets resolve the tail where a
/// reader raced a publish or took a cache miss on the slot line.
const std::vector<double> kReadNsBuckets = {50,   100,  250,   500,  1000,
                                            2500, 5000, 10000, 50000};

}  // namespace

MatchingStore::MatchingStore(std::size_t max_readers, obs::Registry* registry)
    : slots_(max_readers),
      reads_ctr_(obs::counter(registry, "serve.reads")),
      snapshots_ctr_(obs::counter(registry, "serve.snapshots")),
      retired_gauge_(obs::gauge(registry, "serve.retired_peak")) {
  OM_CHECK_MSG(max_readers >= 1, "store needs at least one reader slot");
  if (registry != nullptr) {
    read_ns_hist_ = registry->histogram("serve.read_ns", kReadNsBuckets);
  }
}

MatchingStore::~MatchingStore() {
  // Shutdown contract: all readers have unregistered and released. Every
  // retired epoch has therefore drained, and the current snapshot holds
  // only the store's own reference.
  (void)reclaim();
  OM_CHECK_MSG(retired_.empty(), "store destroyed with pinned retired snapshots");
  const MatchingSnapshot* cur = current_.exchange(nullptr);
  if (cur != nullptr) {
    OM_CHECK_MSG(cur->refs_.load(std::memory_order_acquire) == 1,
                 "store destroyed with pinned current snapshot");
    delete cur;
  }
}

MatchingStore::ReaderHandle& MatchingStore::ReaderHandle::operator=(
    ReaderHandle&& o) noexcept {
  if (this != &o) {
    if (store_ != nullptr) store_->unregister(slot_);
    store_ = o.store_;
    slot_ = o.slot_;
    o.store_ = nullptr;
  }
  return *this;
}

MatchingStore::ReaderHandle::~ReaderHandle() {
  if (store_ != nullptr) store_->unregister(slot_);
}

MatchingStore::ReaderHandle MatchingStore::register_reader() {
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    std::uint8_t expected = 0;
    if (slots_[i].claimed.compare_exchange_strong(expected, 1,
                                                  std::memory_order_acq_rel)) {
      slots_[i].epoch.store(kQuiescent, std::memory_order_release);
      return {this, i};
    }
  }
  OM_CHECK_MSG(false, "all reader slots claimed (raise max_readers)");
  return {};
}

void MatchingStore::unregister(std::size_t slot) noexcept {
  slots_[slot].epoch.store(kQuiescent, std::memory_order_release);
  slots_[slot].claimed.store(0, std::memory_order_release);
}

SnapshotRef MatchingStore::acquire(const ReaderHandle& reader) {
  OM_CHECK_MSG(reader.valid() && reader.store_ == this,
               "acquire with a foreign or empty reader handle");
  const bool timed = read_ns_hist_.engaged();
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};

  Slot& slot = slots_[reader.slot_];
  // Announce, then load — both seq_cst so the writer's "announced epoch
  // >= retire epoch" test proves this load saw the post-swap pointer.
  slot.epoch.store(epoch_.load(std::memory_order_seq_cst),
                   std::memory_order_seq_cst);
  const MatchingSnapshot* snap = current_.load(std::memory_order_seq_cst);
  OM_CHECK_MSG(snap != nullptr, "acquire before the first publish");
  snap->refs_.fetch_add(1, std::memory_order_acquire);
  slot.epoch.store(kQuiescent, std::memory_order_release);

  reads_ctr_.inc();
  if (timed) {
    read_ns_hist_.observe(static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count()));
  }
  return SnapshotRef{snap};
}

void MatchingStore::publish(std::unique_ptr<MatchingSnapshot> snap) {
  OM_CHECK_MSG(snap != nullptr, "publish of a null snapshot");
  snap->refs_.store(1, std::memory_order_relaxed);  // the store's reference
  const MatchingSnapshot* old =
      current_.exchange(snap.release(), std::memory_order_seq_cst);
  const std::uint64_t retire_epoch =
      epoch_.fetch_add(1, std::memory_order_seq_cst) + 1;
  ++published_;
  snapshots_ctr_.inc();
  if (old != nullptr) {
    old->refs_.fetch_sub(1, std::memory_order_acq_rel);
    retired_.push_back({old, retire_epoch});
  }
  retired_gauge_.set_max(static_cast<double>(retired_.size()));
  (void)reclaim();
}

std::size_t MatchingStore::reclaim() {
  if (retired_.empty()) return 0;
  // Oldest announced epoch across claimed slots; kQuiescent when none are
  // inside the two-instruction acquire window.
  std::uint64_t min_active = kQuiescent;
  for (const Slot& s : slots_) {
    const std::uint64_t e = s.epoch.load(std::memory_order_seq_cst);
    if (e < min_active) min_active = e;
  }
  // Check the slots *before* the refcounts: a reader still inside the
  // window for a retired snapshot shows an announcement < retire_epoch; a
  // reader that already counted itself shows refs > 0. New entrants
  // announce >= the current epoch and cannot reach retired snapshots.
  std::size_t kept = 0;
  for (const Retired& r : retired_) {
    const bool drained = min_active >= r.retire_epoch &&
                         r.snap->refs_.load(std::memory_order_acquire) == 0;
    if (drained) {
      // ~MatchingSnapshot drops one reference on each shared page and frees
      // those no successor still holds. Writer thread only, so the page
      // refcounts stay plain integers.
      delete r.snap;
    } else {
      retired_[kept++] = r;
    }
  }
  retired_.resize(kept);
  return kept;
}

}  // namespace overmatch::serve
