// MatchingStore — single-writer / many-reader snapshot publication with
// epoch-pinned, refcounted reclamation (RCU-style; DESIGN.md §13).
//
// The store owns the *current* MatchingSnapshot behind one atomic pointer.
// Readers never block on the writer and never touch a lock:
//
//   acquire:  announce the global epoch in the reader's slot  (1 store)
//             load the current snapshot pointer                (1 load)
//             increment the snapshot's intrusive refcount      (1 RMW)
//             clear the announcement                           (1 store)
//
// The announcement closes the classic load-then-refcount race: between the
// pointer load and the refcount increment the reader holds a raw pointer
// with no reference, so the writer must not free it. Instead of hazard
// pointers or a grace-period scheme, the writer reasons with epochs:
//
//   publish:  swap the current pointer, bump the global epoch to R, drop
//             the store's reference on the old snapshot and push it onto
//             the retired list tagged R.
//   reclaim:  a retired snapshot tagged R is freed once (a) its refcount
//             is 0 and (b) every announced reader epoch is >= R (or the
//             slot is quiescent). All epoch/pointer operations are seq_cst,
//             so a reader announcing an epoch >= R read the epoch *after*
//             the writer's bump, hence after the pointer swap, hence its
//             pointer load cannot return the retired snapshot. Any reader
//             that could still produce a stale reference therefore shows an
//             announcement < R and blocks reclamation exactly while its
//             two-instruction window is open. Epochs only grow, so the
//             condition is monotone: once a retired epoch drains it stays
//             drained, and the writer reclaims opportunistically on each
//             publish (plus on demand via reclaim()).
//
// Reader slots are fixed at construction (cache-line-aligned, claimed by
// CAS), so registration is the only operation with any contention and the
// hot path indexes a private slot. The writer side is single-threaded by
// contract: publish()/reclaim() calls must come from one thread at a time.
//
// Reclamation extends through the snapshots' shared pages (DESIGN.md §15):
// deleting a drained snapshot runs ~MatchingSnapshot, which drops one
// reference on each of its pages and frees those that hit zero. Every
// snapshot deletion happens here, on the writer thread — which is exactly
// why page refcounts can be plain (non-atomic) integers. Readers pin whole
// snapshots via the protocol above and never touch page refcounts.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/metrics.hpp"
#include "serve/snapshot.hpp"

namespace overmatch::obs {
class Registry;
}

namespace overmatch::serve {

class MatchingStore;

/// RAII pin on one published snapshot. Move-only; releases the reference on
/// destruction. Dereference like a pointer.
class SnapshotRef {
 public:
  SnapshotRef() = default;
  SnapshotRef(SnapshotRef&& o) noexcept : snap_(o.snap_) { o.snap_ = nullptr; }
  SnapshotRef& operator=(SnapshotRef&& o) noexcept {
    if (this != &o) {
      release();
      snap_ = o.snap_;
      o.snap_ = nullptr;
    }
    return *this;
  }
  SnapshotRef(const SnapshotRef&) = delete;
  SnapshotRef& operator=(const SnapshotRef&) = delete;
  ~SnapshotRef() { release(); }

  [[nodiscard]] const MatchingSnapshot* operator->() const noexcept {
    return snap_;
  }
  [[nodiscard]] const MatchingSnapshot& operator*() const noexcept {
    return *snap_;
  }
  [[nodiscard]] const MatchingSnapshot* get() const noexcept { return snap_; }
  [[nodiscard]] explicit operator bool() const noexcept {
    return snap_ != nullptr;
  }
  void release() noexcept {
    if (snap_ != nullptr) {
      snap_->refs_.fetch_sub(1, std::memory_order_acq_rel);
      snap_ = nullptr;
    }
  }

 private:
  friend class MatchingStore;
  explicit SnapshotRef(const MatchingSnapshot* s) noexcept : snap_(s) {}
  const MatchingSnapshot* snap_ = nullptr;
};

class MatchingStore {
 public:
  static constexpr std::size_t kDefaultMaxReaders = 64;

  /// `registry` (optional, caller-owned) receives the `serve.reads` /
  /// `serve.snapshots` counters, the `serve.read_ns` acquire-latency
  /// histogram, and the `serve.retired` high-water gauge.
  explicit MatchingStore(std::size_t max_readers = kDefaultMaxReaders,
                         obs::Registry* registry = nullptr);
  /// Requires quiescence: no outstanding SnapshotRef and no concurrent
  /// acquire (OM_CHECK-enforced where checkable).
  ~MatchingStore();
  MatchingStore(const MatchingStore&) = delete;
  MatchingStore& operator=(const MatchingStore&) = delete;

  /// A registered reader identity: the index of a private announcement
  /// slot. Move-only; unregisters on destruction.
  class ReaderHandle {
   public:
    ReaderHandle() = default;
    ReaderHandle(ReaderHandle&& o) noexcept : store_(o.store_), slot_(o.slot_) {
      o.store_ = nullptr;
    }
    ReaderHandle& operator=(ReaderHandle&& o) noexcept;
    ReaderHandle(const ReaderHandle&) = delete;
    ReaderHandle& operator=(const ReaderHandle&) = delete;
    ~ReaderHandle();
    [[nodiscard]] bool valid() const noexcept { return store_ != nullptr; }

   private:
    friend class MatchingStore;
    ReaderHandle(MatchingStore* s, std::size_t slot) : store_(s), slot_(slot) {}
    MatchingStore* store_ = nullptr;
    std::size_t slot_ = 0;
  };

  /// Claims a free announcement slot; aborts when all max_readers slots are
  /// taken. Thread-safe (CAS claim); each handle is then single-threaded.
  [[nodiscard]] ReaderHandle register_reader();

  /// Pins and returns the current snapshot. Wait-free: one seq_cst store,
  /// two loads, one fetch_add — never blocks on publish/repair. Requires a
  /// first publish() to have happened.
  [[nodiscard]] SnapshotRef acquire(const ReaderHandle& reader);

  /// Publishes `snap` as the new current snapshot and retires the previous
  /// one; opportunistically reclaims drained retirees. Single writer.
  void publish(std::unique_ptr<MatchingSnapshot> snap);

  /// Frees every retired snapshot whose epoch has drained; returns how many
  /// remain retired. Called by publish(); exposed for tests and shutdown.
  std::size_t reclaim();

  [[nodiscard]] std::uint64_t published_count() const noexcept {
    return published_;
  }
  [[nodiscard]] std::size_t retired_count() const noexcept {
    return retired_.size();
  }
  /// Epoch of the current snapshot (0 before the first publish).
  [[nodiscard]] std::uint64_t current_epoch() const noexcept {
    const MatchingSnapshot* cur = current_.load(std::memory_order_acquire);
    return cur != nullptr ? cur->epoch() : 0;
  }

 private:
  static constexpr std::uint64_t kQuiescent = ~std::uint64_t{0};

  struct alignas(64) Slot {
    std::atomic<std::uint64_t> epoch{kQuiescent};
    std::atomic<std::uint8_t> claimed{0};
  };

  void unregister(std::size_t slot) noexcept;

  std::vector<Slot> slots_;
  std::atomic<const MatchingSnapshot*> current_{nullptr};
  std::atomic<std::uint64_t> epoch_{1};

  struct Retired {
    const MatchingSnapshot* snap;
    std::uint64_t retire_epoch;
  };
  std::vector<Retired> retired_;  ///< writer-thread only
  std::uint64_t published_ = 0;   ///< writer-thread only

  obs::Counter reads_ctr_;
  obs::Counter snapshots_ctr_;
  obs::Histogram read_ns_hist_;
  obs::Gauge retired_gauge_;
};

}  // namespace overmatch::serve
