// Message-passing agent abstraction shared by the discrete-event simulator
// and the threaded actor runtime.
//
// The paper's LID algorithm assumes an asynchronous overlay: peers exchange
// messages with unbounded but finite delays and no global clock. We simulate
// that environment (no physical testbed is required for this reproduction);
// an Agent is a deterministic automaton reacting to single-message deliveries,
// so the *same* algorithm object runs unchanged under both runtimes and under
// adversarial schedules.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "obs/trace.hpp"

namespace overmatch::sim {

using graph::NodeId;

/// Maps a wire message kind onto the obs:: protocol-event taxonomy. Kinds
/// 1/2 are the library-wide PROP/REJ convention (matching/lid.hpp declares
/// them; the reliable adapter preserves inner kinds on the wire) and 63 is
/// the adapter's ACK (sim/reliable.hpp). Anything else traces as a generic
/// message.
[[nodiscard]] constexpr obs::TraceKind trace_kind_for_wire(
    std::uint32_t kind) noexcept {
  switch (kind) {
    case 1: return obs::TraceKind::kProposal;
    case 2: return obs::TraceKind::kRejection;
    case 63: return obs::TraceKind::kAck;
    default: return obs::TraceKind::kMessage;
  }
}

/// A small POD message. `kind` is algorithm-defined (e.g. PROP/REJ); `data`
/// carries an optional payload word.
struct Message {
  std::uint32_t kind = 0;
  std::uint64_t data = 0;
};

/// Collects the sends an agent performs during one activation. The runtime
/// drains it after every callback.
class Outbox {
 public:
  struct Send {
    NodeId to;
    Message msg;
  };
  struct Timer {
    double delay;
    Message msg;
  };

  void send(NodeId to, Message msg) { sends_.push_back({to, msg}); }

  /// Schedule a self-delivery after `delay` units of virtual time. Timers are
  /// local bookkeeping and are never lost. The discrete-event simulator fires
  /// them in virtual time (delay-based schedules only); the threaded runtime
  /// fires them on a real monotonic clock, mapping one virtual-time unit to
  /// `ThreadedRuntime::Options::time_unit`.
  void send_timer(double delay, Message msg) { timers_.push_back({delay, msg}); }

  [[nodiscard]] const std::vector<Send>& sends() const noexcept { return sends_; }
  [[nodiscard]] const std::vector<Timer>& timers() const noexcept { return timers_; }
  void clear() noexcept {
    sends_.clear();
    timers_.clear();
  }

 private:
  std::vector<Send> sends_;
  std::vector<Timer> timers_;
};

/// Deterministic reactive automaton. Runtimes guarantee: (1) on_start is
/// invoked exactly once before any delivery, (2) callbacks for one agent are
/// never concurrent, (3) every sent message is eventually delivered exactly
/// once.
class Agent {
 public:
  virtual ~Agent() = default;

  /// One-time initialization; may send initial messages.
  virtual void on_start(Outbox& out) = 0;

  /// Deliver one message from `from`.
  virtual void on_message(NodeId from, const Message& msg, Outbox& out) = 0;

  /// True once the agent will never send again regardless of future input.
  [[nodiscard]] virtual bool terminated() const = 0;
};

/// Message accounting shared by both runtimes.
struct MessageStats {
  std::size_t total_sent = 0;
  /// Actual handler invocations: message deliveries plus timer firings. Both
  /// runtimes count real `on_message` calls — this is measured, not inferred
  /// from `total_sent`.
  std::size_t total_delivered = 0;
  std::size_t total_dropped = 0;  ///< lost by the (lossy) network
  /// Suppressed by an anytime budget (core::Budget): sends/timers beyond the
  /// round cap, plus deliveries discarded after the deadline expired.
  /// Disjoint from total_dropped (loss) — a suppressed message was counted
  /// sent but never put on the wire.
  std::size_t total_suppressed = 0;
  /// Indexed by message kind (kinds are small integers by convention).
  std::vector<std::size_t> sent_by_kind;
  /// Completion time: DES reports the last virtual delivery timestamp;
  /// the threaded runtime reports elapsed wall-clock seconds.
  double completion_time = 0.0;
  /// Highest message round delivered (on_start sends are round 1; sends made
  /// while delivering a round-r message are round r+1). 0 when nothing was
  /// delivered.
  std::size_t rounds_used = 0;
  /// True iff an anytime budget (round cap or deadline) cut the run short.
  bool truncated = false;

  void count_send(std::uint32_t kind) {
    ++total_sent;
    if (kind >= sent_by_kind.size()) sent_by_kind.resize(kind + 1, 0);
    ++sent_by_kind[kind];
  }
  [[nodiscard]] std::size_t kind_count(std::uint32_t kind) const {
    return kind < sent_by_kind.size() ? sent_by_kind[kind] : 0;
  }
};

}  // namespace overmatch::sim
