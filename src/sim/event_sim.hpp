// Discrete-event simulator for asynchronous message-passing algorithms.
//
// Scheduling policies model different network behaviours:
//   * kFifo        — global FIFO: messages delivered in send order (a fair,
//                    synchronous-looking schedule).
//   * kRandomOrder — at every step a uniformly random pending message is
//                    delivered (classic asynchronous adversary with fairness).
//   * kRandomDelay — every message is assigned an i.i.d. random latency and
//                    delivered in timestamp order (models jittery links).
//   * kAdversarialDelay — per-link deterministic delays drawn once, spanning
//                    two orders of magnitude, so some links are consistently
//                    ~100× slower (models a pathological WAN).
//
// The paper's guarantees are schedule-independent; benches/tests run the same
// algorithm under all policies and verify identical outcomes.
#pragma once

#include <cstdint>
#include <memory>
#include <queue>
#include <string>
#include <vector>

#include "core/budget.hpp"
#include "sim/agent.hpp"
#include "util/rng.hpp"

namespace overmatch::obs {
class Registry;
}

namespace overmatch::sim {

enum class Schedule : std::uint8_t {
  kFifo,
  kRandomOrder,
  kRandomDelay,
  kAdversarialDelay,
};

/// Parses "fifo" | "random" | "delay" | "adversarial".
[[nodiscard]] Schedule schedule_by_name(const std::string& name);
[[nodiscard]] const char* schedule_name(Schedule s);

/// Runs a set of agents to quiescence (no pending messages).
class EventSimulator {
 public:
  /// `agents[v]` is node v's automaton; ownership stays with the caller.
  EventSimulator(std::vector<Agent*> agents, Schedule schedule, std::uint64_t seed);

  /// Drop each (non-timer) message independently with probability `p`.
  /// Requires a delay-based schedule (timers need virtual time to make
  /// retransmission meaningful). Algorithms must then run behind a
  /// reliable-delivery adapter (see reliable.hpp) to still terminate.
  void set_loss_probability(double p);

  /// Attach a metrics registry (caller-owned, may be null): every send is
  /// traced (PROP/REJ/ACK/drop/timer) and `sim.*` counters are recorded at
  /// the end of run(). Null — the default — records nothing.
  void set_registry(obs::Registry* registry) noexcept { registry_ = registry; }

  /// Attach an anytime budget (core::Budget; DESIGN.md §14). Rounds are
  /// message generations: on_start sends are round 1, and a send made while
  /// delivering a round-r message is round r+1. A send whose round exceeds
  /// `budget.max_rounds` is suppressed at enqueue; once the deadline expires
  /// the remaining queue is discarded undelivered. Both outcomes set
  /// MessageStats::truncated. The default unlimited budget is passive: no
  /// extra RNG draws, no clock reads — runs are bit-identical to a
  /// budget-free simulator.
  void set_budget(const core::Budget& budget) noexcept { budget_ = budget; }

  /// Executes on_start for every node, then delivers messages until none are
  /// pending. Returns accumulated statistics. Aborts if `max_deliveries`
  /// is exceeded (non-termination guard; default effectively unbounded).
  MessageStats run(std::size_t max_deliveries = static_cast<std::size_t>(-1));

 private:
  struct Envelope {
    double time = 0.0;     // delivery timestamp (delay-based schedules)
    std::uint64_t seq = 0; // tiebreak / FIFO order
    NodeId from = 0;
    NodeId to = 0;
    std::size_t round = 1; // message generation (see set_budget)
    Message msg;
  };

  void enqueue(NodeId from, const Outbox& out);
  [[nodiscard]] double link_delay(NodeId from, NodeId to);

  std::vector<Agent*> agents_;
  Schedule schedule_;
  util::Rng rng_;
  obs::Registry* registry_ = nullptr;
  double loss_probability_ = 0.0;
  std::uint64_t next_seq_ = 0;
  double now_ = 0.0;
  MessageStats stats_;
  core::Budget budget_;
  std::size_t delivering_round_ = 0;  // 0 during the on_start phase

  // Priority queue ordered by (time, seq).
  struct EnvelopeLater {
    bool operator()(const Envelope& a, const Envelope& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Envelope, std::vector<Envelope>, EnvelopeLater> pq_;
  std::vector<Envelope> bag_;  // kRandomOrder storage
};

}  // namespace overmatch::sim
