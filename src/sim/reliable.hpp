// Reliable-delivery adapter: runs any duplicate-tolerant Agent over a lossy
// network using per-message acknowledgements and periodic retransmission.
//
// Wire format (transparent to the inner agent):
//   DATA: kind = inner kind, data = (seq << 32) | (inner data & 0xffffffff)
//   ACK:  kind = kAckKind,   data = seq of the acknowledged DATA
// Every DATA is acknowledged on receipt (including duplicates); unacked DATA
// is retransmitted on a periodic virtual timer. Inner payloads must therefore
// fit in 32 bits — LID's do (PROP/REJ carry no payload).
//
// Duplicates can still reach the inner agent when a retransmission crosses an
// ACK; the adapter suppresses them with a per-sender seq filter, so the inner
// agent observes exactly-once delivery over an at-least-once channel.
//
// This extends the paper's reliable-network assumption: LID composed with
// this adapter terminates with the *same matching* under heavy message loss
// (bench E13).
#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "obs/registry.hpp"
#include "sim/agent.hpp"

namespace overmatch::sim {

/// Message kind reserved for acknowledgements (inner agents must not use it).
inline constexpr std::uint32_t kAckKind = 63;

/// Message kind reserved for the adapter's retransmission timer tick (a
/// self-delivery; never on the wire from peers). Inner agents must not use it.
inline constexpr std::uint32_t kTickKind = 62;

class ReliableAgent final : public Agent {
 public:
  /// Wraps `inner` (caller-owned). `self` is this node's id;
  /// `retransmit_interval` is in virtual-time units and should exceed the
  /// typical round-trip (2× max link delay works well). `registry` (optional,
  /// caller-owned) receives `reliable.*` counters and retransmit traces.
  ReliableAgent(NodeId self, Agent* inner, double retransmit_interval,
                obs::Registry* registry = nullptr);

  void on_start(Outbox& out) override;
  void on_message(NodeId from, const Message& msg, Outbox& out) override;
  [[nodiscard]] bool terminated() const override;

  /// Retransmissions performed (for cost accounting in benches).
  [[nodiscard]] std::size_t retransmissions() const noexcept { return retransmissions_; }

 private:
  struct Pending {
    NodeId to;
    Message wire;  // already-encoded DATA message
    /// First tick (see ticks_seen_) at which this entry is old enough to be
    /// retransmitted: a (re)send must survive one full `interval_` before the
    /// timer touches it, so an entry sent moments before a tick is skipped.
    std::uint64_t eligible_tick;
  };

  void wrap_and_send(Outbox& inner_out, Outbox& out);
  void arm_timer(Outbox& out);

  NodeId self_;
  Agent* inner_;
  double interval_;
  obs::Registry* registry_ = nullptr;
  obs::Counter retransmit_counter_;  ///< shared "reliable.retransmissions" cell
  obs::Counter duplicate_counter_;   ///< shared "reliable.duplicates" cell
  std::uint64_t next_seq_ = 0;
  std::uint64_t ticks_seen_ = 0;  ///< timer firings so far (a coarse clock)
  std::vector<Pending> unacked_;
  std::unordered_set<std::uint64_t> seen_;  // (from << 32) | seq of delivered DATA
  bool timer_armed_ = false;
  std::size_t retransmissions_ = 0;
};

}  // namespace overmatch::sim
