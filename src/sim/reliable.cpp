#include "sim/reliable.hpp"

#include "util/check.hpp"

namespace overmatch::sim {
namespace {

std::uint64_t dedup_key(NodeId from, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(from) << 32) | (seq & 0xffffffffULL);
}

}  // namespace

ReliableAgent::ReliableAgent(NodeId self, Agent* inner, double retransmit_interval,
                             obs::Registry* registry)
    : self_(self),
      inner_(inner),
      interval_(retransmit_interval),
      registry_(registry),
      retransmit_counter_(obs::counter(registry, "reliable.retransmissions")),
      duplicate_counter_(obs::counter(registry, "reliable.duplicates")) {
  OM_CHECK(inner_ != nullptr);
  OM_CHECK(interval_ > 0.0);
}

void ReliableAgent::wrap_and_send(Outbox& inner_out, Outbox& out) {
  for (const auto& s : inner_out.sends()) {
    OM_CHECK_MSG(s.msg.kind != kAckKind && s.msg.kind != kTickKind,
                 "inner agent uses a reserved message kind");
    OM_CHECK_MSG(s.msg.data <= 0xffffffffULL,
                 "reliable adapter supports 32-bit inner payloads only");
    OM_CHECK_MSG(s.to != self_, "inner agent must not send to itself");
    const std::uint64_t seq = next_seq_++ & 0xffffffffULL;
    Message wire{s.msg.kind, (seq << 32) | s.msg.data};
    // If this entry arms the (previously idle) timer, the next tick is a full
    // interval away — retransmittable then. If the timer is already armed the
    // next tick may fire at any moment, so the entry only becomes eligible at
    // the tick after it (guaranteeing at least one full interval of age).
    const std::uint64_t eligible = ticks_seen_ + (timer_armed_ ? 2 : 1);
    unacked_.push_back({s.to, wire, eligible});
    out.send(s.to, wire);
  }
  arm_timer(out);
}

void ReliableAgent::arm_timer(Outbox& out) {
  if (!timer_armed_ && !unacked_.empty()) {
    out.send_timer(interval_, Message{kTickKind, 0});
    timer_armed_ = true;
  }
}

void ReliableAgent::on_start(Outbox& out) {
  Outbox inner_out;
  inner_->on_start(inner_out);
  wrap_and_send(inner_out, out);
}

void ReliableAgent::on_message(NodeId from, const Message& msg, Outbox& out) {
  if (from == self_ && msg.kind == kTickKind) {
    timer_armed_ = false;
    ++ticks_seen_;
    for (auto& p : unacked_) {
      if (p.eligible_tick > ticks_seen_) continue;  // younger than interval_
      out.send(p.to, p.wire);
      ++retransmissions_;
      retransmit_counter_.inc();
      obs::trace(registry_, obs::TraceKind::kRetransmit, self_, p.to);
      p.eligible_tick = ticks_seen_ + 1;  // pace retransmits an interval apart
    }
    arm_timer(out);
    return;
  }
  if (msg.kind == kAckKind) {
    const std::uint64_t seq = msg.data;
    std::erase_if(unacked_, [&](const Pending& p) {
      return p.to == from && (p.wire.data >> 32) == seq;
    });
    return;
  }
  // DATA: always acknowledge (the sender may be retransmitting because our
  // previous ACK was lost), deliver to the inner agent once.
  const std::uint64_t seq = msg.data >> 32;
  out.send(from, Message{kAckKind, seq});
  if (!seen_.insert(dedup_key(from, seq)).second) {  // duplicate: suppressed
    duplicate_counter_.inc();
    return;
  }
  Outbox inner_out;
  inner_->on_message(from, Message{msg.kind, msg.data & 0xffffffffULL}, inner_out);
  wrap_and_send(inner_out, out);
}

bool ReliableAgent::terminated() const {
  return inner_->terminated() && unacked_.empty();
}

}  // namespace overmatch::sim
