// Threaded actor runtime: runs the same Agent automata on real OS threads.
//
// Each node owns a locked MPSC mailbox; nodes are partitioned across worker
// threads (node v belongs to thread v mod T), so callbacks of one agent are
// never concurrent while different agents genuinely race. Quiescence is
// detected with an in-flight message counter: a message increments it at send
// time and decrements only after its handler (and the enqueues it caused)
// completed, so counter == 0 implies global quiescence.
//
// This runtime exists to demonstrate, on actual hardware concurrency, the
// schedule-independence that the paper proves: LID must produce the same
// matching here as under any discrete-event schedule.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "sim/agent.hpp"

namespace overmatch::sim {

class ThreadedRuntime {
 public:
  /// `agents[v]` is node v's automaton (caller-owned). `threads` >= 1.
  ThreadedRuntime(std::vector<Agent*> agents, std::size_t threads);

  /// Runs all agents to quiescence and returns message statistics.
  MessageStats run();

 private:
  struct Envelope {
    NodeId from;
    Message msg;
  };
  struct Mailbox {
    std::mutex mu;
    std::deque<Envelope> q;
  };

  void deliver_outbox(NodeId from, const Outbox& out);
  void worker(std::size_t worker_id);

  std::vector<Agent*> agents_;
  std::size_t threads_;
  std::vector<Mailbox> mailboxes_;
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::size_t> initialized_{0};
  std::atomic<bool> stop_{false};
  // Per-kind send counters (fixed small kind space; grown under lock).
  std::mutex stats_mu_;
  MessageStats stats_;
};

}  // namespace overmatch::sim
