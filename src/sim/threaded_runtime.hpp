// Threaded actor runtime: runs the same Agent automata on real OS threads.
//
// Architecture (see DESIGN.md §6 for the full discussion):
//  * Nodes are partitioned across T workers (node v belongs to worker v mod T),
//    so callbacks of one agent are never concurrent while different agents
//    genuinely race.
//  * Mailboxes are sharded per *worker*, not per node: a worker drains its
//    shard by swapping the whole queue out under the lock (one lock
//    acquisition per batch instead of one per envelope) and then processes the
//    batch lock-free.
//  * Message statistics are accumulated in per-worker counters and merged once
//    after the workers join — there is no global stats lock on the hot path.
//    `total_delivered` counts actual handler invocations (messages and timer
//    firings), never an assumption.
//  * Timers are supported: `Outbox::send_timer(delay, msg)` arms an entry in
//    the owning worker's local min-heap, with `delay` virtual-time units
//    mapped to real time via `Options::time_unit` on a monotonic clock. Timer
//    callbacks run on the node's owner worker like any other delivery, so the
//    per-agent serialization guarantee is preserved. Timers are never lost.
//  * Optional i.i.d. message loss (`Options::loss_probability`) drops DATA
//    messages at send time — timers are exempt — which lets ReliableAgent
//    wrapped automata (and therefore lossy LID) run on real threads.
//  * Quiescence is detected with an in-flight counter covering both messages
//    and armed timers: increment at send/arm time, decrement only after the
//    handler (and the enqueues it caused) completed, so counter == 0 implies
//    global quiescence. Idle workers back off exponentially (yield, then
//    capped sleeps) instead of spinning.
//
// This runtime exists to demonstrate, on actual hardware concurrency, the
// schedule-independence that the paper proves: LID must produce the same
// matching here as under any discrete-event schedule — even over lossy links.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <mutex>
#include <queue>
#include <vector>

#include "core/budget.hpp"
#include "sim/agent.hpp"
#include "util/rng.hpp"

namespace overmatch::obs {
class Registry;
}

namespace overmatch::sim {

class ThreadedRuntime {
 public:
  struct Options {
    /// Drop each non-timer message independently with this probability.
    /// Requires agents that tolerate loss (e.g. behind ReliableAgent).
    double loss_probability = 0.0;
    /// Seeds the per-worker loss RNG streams (only used when lossy).
    std::uint64_t seed = 0;
    /// Real duration of one virtual-time unit; `send_timer(d, ...)` fires
    /// `d * time_unit` after arming, measured on the monotonic clock.
    std::chrono::microseconds time_unit{100};
    /// Optional metrics registry (caller-owned, may be null). Workers trace
    /// every send into their own per-thread rings and record `sim.*`
    /// counters (sent/delivered/dropped, timer fires, idle backoff) at exit.
    obs::Registry* registry = nullptr;
    /// Anytime budget (core::Budget; DESIGN.md §14). Rounds are message
    /// generations exactly as in EventSimulator: on_start sends are round 1,
    /// sends made while handling a round-r delivery are round r+1. Sends
    /// beyond `max_rounds` are suppressed at enqueue (never incrementing the
    /// in-flight counter, so quiescence detection is untouched); once the
    /// deadline expires, workers discard queued envelopes and armed timers
    /// without invoking handlers until quiescence. The unlimited default is
    /// passive — no extra RNG draws or clock reads on the hot path.
    core::Budget budget;
  };

  /// `agents[v]` is node v's automaton (caller-owned). `threads` >= 1.
  ThreadedRuntime(std::vector<Agent*> agents, std::size_t threads);
  ThreadedRuntime(std::vector<Agent*> agents, std::size_t threads,
                  Options options);

  /// Runs all agents to quiescence and returns merged message statistics
  /// (`completion_time` is wall-clock seconds). Single-shot: agents carry
  /// protocol state across calls, so reuse would rerun on_start on finished
  /// automata — a second call aborts.
  MessageStats run();

 private:
  struct Envelope {
    NodeId from;
    NodeId to;
    Message msg;
    std::size_t round = 1;  // message generation (see Options::budget)
  };
  /// One mailbox per worker; padded so neighbouring shards' locks do not
  /// false-share a cache line.
  struct alignas(64) Shard {
    std::mutex mu;
    std::deque<Envelope> q;
  };
  struct TimerEntry {
    std::chrono::steady_clock::time_point deadline;
    std::uint64_t seq = 0;  // arm order: deterministic pop order on ties
    NodeId node = 0;
    Message msg;
    std::size_t round = 1;  // message generation (see Options::budget)
  };
  struct TimerLater {
    bool operator()(const TimerEntry& a, const TimerEntry& b) const {
      if (a.deadline != b.deadline) return a.deadline > b.deadline;
      return a.seq > b.seq;
    }
  };
  /// Worker-private state: lives on the worker's stack during run(), so the
  /// hot path touches no shared cache lines except the in-flight counter and
  /// destination shards.
  struct WorkerContext {
    MessageStats stats;
    util::Rng loss_rng{0};
    std::priority_queue<TimerEntry, std::vector<TimerEntry>, TimerLater> timers;
    std::uint64_t timer_seq = 0;
    // Observability tallies, flushed into the registry once at worker exit.
    std::uint64_t timer_fires = 0;
    std::uint64_t backoff_yields = 0;
    std::uint64_t backoff_sleeps = 0;
  };

  /// `send_round` is the generation of the messages in `out` (delivered
  /// round + 1; 1 for on_start sends).
  void deliver_outbox(NodeId from, const Outbox& out, WorkerContext& ctx,
                      std::size_t send_round);
  void worker(std::size_t worker_id);

  std::vector<Agent*> agents_;
  std::size_t threads_;
  Options options_;
  std::vector<Shard> shards_;               // one per worker
  std::vector<MessageStats> worker_stats_;  // filled at worker exit, merged in run()
  std::atomic<std::int64_t> in_flight_{0};
  std::atomic<std::size_t> initialized_{0};
  std::atomic<bool> stop_{false};
  core::Deadline deadline_;          // armed in run() iff budget has a deadline
  std::atomic<bool> expired_{false}; // first worker past the deadline sets it
  bool ran_ = false;
};

}  // namespace overmatch::sim
