#include "sim/event_sim.hpp"

#include <cmath>
#include <string>

#include "obs/registry.hpp"

namespace overmatch::sim {

Schedule schedule_by_name(const std::string& name) {
  if (name == "fifo") return Schedule::kFifo;
  if (name == "random") return Schedule::kRandomOrder;
  if (name == "delay") return Schedule::kRandomDelay;
  if (name == "adversarial") return Schedule::kAdversarialDelay;
  OM_CHECK_MSG(false, "unknown schedule name");
  return Schedule::kFifo;
}

const char* schedule_name(Schedule s) {
  switch (s) {
    case Schedule::kFifo: return "fifo";
    case Schedule::kRandomOrder: return "random";
    case Schedule::kRandomDelay: return "delay";
    case Schedule::kAdversarialDelay: return "adversarial";
  }
  return "?";
}

EventSimulator::EventSimulator(std::vector<Agent*> agents, Schedule schedule,
                               std::uint64_t seed)
    : agents_(std::move(agents)), schedule_(schedule), rng_(seed) {
  for (const auto* a : agents_) OM_CHECK(a != nullptr);
}

double EventSimulator::link_delay(NodeId from, NodeId to) {
  switch (schedule_) {
    case Schedule::kFifo:
    case Schedule::kRandomOrder:
      return 0.0;  // ordering handled elsewhere
    case Schedule::kRandomDelay:
      return rng_.uniform(0.5, 1.5);
    case Schedule::kAdversarialDelay: {
      // Deterministic per-(from,to) delay spanning two orders of magnitude:
      // a hash of the link picks a delay in [1, 100]. Messages on a link stay
      // FIFO (same delay), but cross-link interleavings are extreme.
      util::SplitMix64 h((static_cast<std::uint64_t>(from) << 32) ^ to ^ 0xabcdef);
      const double unit = static_cast<double>(h.next() % 1000) / 999.0;  // [0,1]
      return std::pow(10.0, 2.0 * unit);                                 // [1,100]
    }
  }
  return 0.0;
}

void EventSimulator::set_loss_probability(double p) {
  OM_CHECK(p >= 0.0 && p < 1.0);
  OM_CHECK_MSG(schedule_ == Schedule::kRandomDelay ||
                   schedule_ == Schedule::kAdversarialDelay,
               "message loss requires a delay-based schedule (timers)");
  loss_probability_ = p;
}

void EventSimulator::enqueue(NodeId from, const Outbox& out) {
  // Sends made while delivering a round-r message belong to round r+1;
  // on_start sends (delivering_round_ == 0) are round 1.
  const std::size_t round = delivering_round_ + 1;
  for (const auto& s : out.sends()) {
    OM_CHECK(s.to < agents_.size());
    stats_.count_send(s.msg.kind);
    obs::trace(registry_, trace_kind_for_wire(s.msg.kind), from, s.to);
    // Round-budget suppression happens before the loss draw: budgeted runs
    // may consume a different RNG stream, but the unlimited default takes
    // this branch never and stays bit-identical.
    if (budget_.limits_rounds() && round > budget_.max_rounds) {
      ++stats_.total_suppressed;
      stats_.truncated = true;
      continue;
    }
    if (loss_probability_ > 0.0 && rng_.chance(loss_probability_)) {
      ++stats_.total_dropped;
      obs::trace(registry_, obs::TraceKind::kDrop, from, s.to);
      continue;
    }
    Envelope env;
    env.from = from;
    env.to = s.to;
    env.msg = s.msg;
    env.seq = next_seq_++;
    env.time = now_ + link_delay(from, s.to);
    env.round = round;
    if (schedule_ == Schedule::kRandomOrder) {
      bag_.push_back(env);
    } else {
      pq_.push(env);
    }
  }
  for (const auto& t : out.timers()) {
    OM_CHECK_MSG(schedule_ != Schedule::kFifo && schedule_ != Schedule::kRandomOrder,
                 "timers require a delay-based schedule");
    if (budget_.limits_rounds() && round > budget_.max_rounds) {
      ++stats_.total_suppressed;
      stats_.truncated = true;
      continue;
    }
    obs::trace(registry_, obs::TraceKind::kTimer, from, from);
    Envelope env;
    env.from = from;
    env.to = from;  // self-delivery
    env.msg = t.msg;
    env.seq = next_seq_++;
    env.time = now_ + t.delay;
    env.round = round;
    pq_.push(env);
  }
}

MessageStats EventSimulator::run(std::size_t max_deliveries) {
  Outbox out;
  for (NodeId v = 0; v < agents_.size(); ++v) {
    out.clear();
    agents_[v]->on_start(out);
    enqueue(v, out);
  }
  std::size_t delivered = 0;
  const core::Deadline deadline(budget_);  // inert (no clock reads) unless armed
  for (;;) {
    // Deadline check amortised over 64 deliveries so the unarmed/common path
    // stays branch-cheap. On expiry the remaining queue is discarded
    // undelivered: monotone-lock algorithms leave a valid partial state.
    if (deadline.armed() && (delivered & 63) == 0 && deadline.expired()) {
      const std::size_t leftover =
          schedule_ == Schedule::kRandomOrder ? bag_.size() : pq_.size();
      if (leftover > 0) {
        stats_.total_suppressed += leftover;
        stats_.truncated = true;
        bag_.clear();
        pq_ = {};
      }
      break;
    }
    Envelope env;
    if (schedule_ == Schedule::kRandomOrder) {
      if (bag_.empty()) break;
      const std::size_t k = rng_.index(bag_.size());
      env = bag_[k];
      bag_[k] = bag_.back();
      bag_.pop_back();
    } else {
      if (pq_.empty()) break;
      env = pq_.top();
      pq_.pop();
      now_ = env.time;
    }
    OM_CHECK_MSG(++delivered <= max_deliveries,
                 "EventSimulator: delivery budget exceeded (non-termination?)");
    delivering_round_ = env.round;
    if (env.round > stats_.rounds_used) stats_.rounds_used = env.round;
    out.clear();
    agents_[env.to]->on_message(env.from, env.msg, out);
    enqueue(env.to, out);
  }
  stats_.total_delivered = delivered;
  stats_.completion_time = now_;
  if (registry_ != nullptr) {
    registry_->counter("sim.sent").inc(stats_.total_sent);
    registry_->counter("sim.delivered").inc(stats_.total_delivered);
    registry_->counter("sim.dropped").inc(stats_.total_dropped);
    registry_->gauge("sim.virtual_time").set(now_);
    if (budget_.limited()) {
      registry_->counter("sim.suppressed").inc(stats_.total_suppressed);
    }
  }
  return stats_;
}

}  // namespace overmatch::sim
