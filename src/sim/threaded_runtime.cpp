#include "sim/threaded_runtime.hpp"

#include <algorithm>
#include <thread>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace overmatch::sim {
namespace {

using Clock = std::chrono::steady_clock;

/// Exponential idle backoff: a few polite yields, then sleeps doubling from
/// 1us up to this cap. The cap bounds both the wake-up latency for messages
/// that arrive while asleep and the shutdown latency after stop_ is set.
constexpr auto kMaxSleep = std::chrono::microseconds(128);
constexpr unsigned kYieldsBeforeSleep = 8;

void backoff(unsigned idle_rounds, Clock::duration until_next_timer) {
  if (idle_rounds < kYieldsBeforeSleep) {
    std::this_thread::yield();
    return;
  }
  const unsigned shift =
      std::min(idle_rounds - kYieldsBeforeSleep, 7u);  // 1us << 7 == 128us
  Clock::duration sleep = std::chrono::microseconds(1u << shift);
  sleep = std::min({sleep, Clock::duration(kMaxSleep), until_next_timer});
  if (sleep <= Clock::duration::zero()) return;  // a timer is already due
  std::this_thread::sleep_for(sleep);
}

}  // namespace

ThreadedRuntime::ThreadedRuntime(std::vector<Agent*> agents, std::size_t threads)
    : ThreadedRuntime(std::move(agents), threads, Options()) {}

ThreadedRuntime::ThreadedRuntime(std::vector<Agent*> agents, std::size_t threads,
                                 Options options)
    : agents_(std::move(agents)),
      threads_(threads),
      options_(options),
      shards_(threads),
      worker_stats_(threads) {
  OM_CHECK(threads_ >= 1);
  OM_CHECK(options_.loss_probability >= 0.0 && options_.loss_probability < 1.0);
  OM_CHECK(options_.time_unit.count() > 0);
  for (const auto* a : agents_) OM_CHECK(a != nullptr);
}

void ThreadedRuntime::deliver_outbox(NodeId from, const Outbox& out,
                                     WorkerContext& ctx,
                                     std::size_t send_round) {
  const bool over_budget = options_.budget.limits_rounds() &&
                           send_round > options_.budget.max_rounds;
  for (const auto& s : out.sends()) {
    OM_CHECK(s.to < agents_.size());
    ctx.stats.count_send(s.msg.kind);
    obs::trace(options_.registry, trace_kind_for_wire(s.msg.kind), from, s.to);
    // Suppressed sends never touch in_flight_, so quiescence detection is
    // oblivious to the budget (checked before the loss draw, mirroring the
    // discrete-event simulator).
    if (over_budget) {
      ++ctx.stats.total_suppressed;
      ctx.stats.truncated = true;
      continue;
    }
    if (options_.loss_probability > 0.0 &&
        ctx.loss_rng.chance(options_.loss_probability)) {
      ++ctx.stats.total_dropped;
      obs::trace(options_.registry, obs::TraceKind::kDrop, from, s.to);
      continue;
    }
    // Increment before the envelope becomes visible so in_flight_ == 0 can
    // never be observed while a message is queued.
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    auto& shard = shards_[s.to % threads_];
    {
      std::lock_guard lk(shard.mu);
      shard.q.push_back({from, s.to, s.msg, send_round});
    }
  }
  // Timers are self-deliveries and this worker owns `from`, so the heap is
  // worker-local — no lock. Timers are never lost (loss applies to DATA only).
  for (const auto& t : out.timers()) {
    OM_CHECK_MSG(t.delay >= 0.0, "ThreadedRuntime: negative timer delay");
    if (over_budget) {
      ++ctx.stats.total_suppressed;
      ctx.stats.truncated = true;
      continue;
    }
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    const auto delay = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::micro>(
            t.delay * static_cast<double>(options_.time_unit.count())));
    ctx.timers.push({Clock::now() + delay, ctx.timer_seq++, from, t.msg,
                     send_round});
  }
}

void ThreadedRuntime::worker(std::size_t worker_id) {
  WorkerContext ctx;
  ctx.loss_rng.reseed(options_.seed ^
                      (0x9e3779b97f4a7c15ULL * (worker_id + 1)));
  Outbox out;
  // Initialization: each worker starts its own nodes (serialized per node).
  for (NodeId v = static_cast<NodeId>(worker_id); v < agents_.size();
       v += static_cast<NodeId>(threads_)) {
    out.clear();
    agents_[v]->on_start(out);
    deliver_outbox(v, out, ctx, /*send_round=*/1);
  }
  initialized_.fetch_add(1, std::memory_order_acq_rel);

  std::deque<Envelope> batch;
  unsigned idle_rounds = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    bool progressed = false;
    // Deadline handling: the first worker to notice expiry raises the shared
    // flag; from then on every worker discards queued envelopes and armed
    // timers without invoking handlers, still decrementing in_flight_ so the
    // run drains to quiescence instead of stalling. armed() is a plain bool,
    // so the unbudgeted path never reads the clock here.
    bool discarding = false;
    if (deadline_.armed()) {
      discarding = expired_.load(std::memory_order_acquire);
      if (!discarding && deadline_.expired()) {
        expired_.store(true, std::memory_order_release);
        discarding = true;
      }
    }
    if (discarding) {
      while (!ctx.timers.empty()) {
        ctx.timers.pop();
        ++ctx.stats.total_suppressed;
        ctx.stats.truncated = true;
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        progressed = true;
      }
    }
    // Fire due timers (owner-local heap; deliveries count like messages).
    while (!ctx.timers.empty() && ctx.timers.top().deadline <= Clock::now()) {
      const TimerEntry t = ctx.timers.top();
      ctx.timers.pop();
      out.clear();
      agents_[t.node]->on_message(t.node, t.msg, out);
      ++ctx.stats.total_delivered;
      ++ctx.timer_fires;
      if (t.round > ctx.stats.rounds_used) ctx.stats.rounds_used = t.round;
      deliver_outbox(t.node, out, ctx, t.round + 1);
      // Decrement only after the causal consequences are enqueued, so
      // in_flight_ == 0 really means quiescence.
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      progressed = true;
    }
    // Batched dequeue: swap the whole shard out under one lock acquisition,
    // then process the batch without holding anything.
    batch.clear();
    {
      std::lock_guard lk(shards_[worker_id].mu);
      shards_[worker_id].q.swap(batch);
    }
    for (const Envelope& env : batch) {
      if (discarding) {
        ++ctx.stats.total_suppressed;
        ctx.stats.truncated = true;
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        continue;
      }
      out.clear();
      agents_[env.to]->on_message(env.from, env.msg, out);
      ++ctx.stats.total_delivered;
      if (env.round > ctx.stats.rounds_used) ctx.stats.rounds_used = env.round;
      deliver_outbox(env.to, out, ctx, env.round + 1);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    }
    progressed |= !batch.empty();
    if (progressed) {
      idle_rounds = 0;
      continue;
    }
    // Quiescence only counts once every worker finished its on_start phase;
    // otherwise a late initializer could still inject messages. Armed timers
    // hold in_flight_ > 0, so quiescence also implies no timer will ever fire.
    if (initialized_.load(std::memory_order_acquire) == threads_ &&
        in_flight_.load(std::memory_order_acquire) == 0) {
      stop_.store(true, std::memory_order_release);
      break;
    }
    const auto until_next_timer = ctx.timers.empty()
                                      ? Clock::duration(kMaxSleep)
                                      : ctx.timers.top().deadline - Clock::now();
    if (idle_rounds < kYieldsBeforeSleep) {
      ++ctx.backoff_yields;
    } else {
      ++ctx.backoff_sleeps;
    }
    backoff(idle_rounds++, until_next_timer);
  }
  if (options_.registry != nullptr) {
    // Counters are atomic cells — concurrent flushes from exiting workers
    // are fine; the once-per-worker granularity keeps this off the hot path.
    options_.registry->counter("sim.timer_fires").inc(ctx.timer_fires);
    options_.registry->counter("sim.backoff_yields").inc(ctx.backoff_yields);
    options_.registry->counter("sim.backoff_sleeps").inc(ctx.backoff_sleeps);
  }
  worker_stats_[worker_id] = std::move(ctx.stats);
}

MessageStats ThreadedRuntime::run() {
  OM_CHECK_MSG(!ran_, "ThreadedRuntime::run() is single-shot; build a new "
                      "runtime (and fresh agents) to run again");
  ran_ = true;
  // Arm the deadline (if any) relative to run() start, before workers spawn.
  deadline_ = core::Deadline(options_.budget);
  const auto wall_start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads_);
  for (std::size_t t = 0; t < threads_; ++t) {
    pool.emplace_back([this, t] { worker(t); });
  }
  for (auto& th : pool) th.join();
  // Every undropped send and every armed timer was eventually processed.
  OM_CHECK(in_flight_.load() == 0);
  // Merge the per-worker counters (workers have joined: no concurrency here).
  MessageStats stats;
  for (const MessageStats& ws : worker_stats_) {
    stats.total_sent += ws.total_sent;
    stats.total_delivered += ws.total_delivered;
    stats.total_dropped += ws.total_dropped;
    stats.total_suppressed += ws.total_suppressed;
    stats.truncated = stats.truncated || ws.truncated;
    if (ws.rounds_used > stats.rounds_used) stats.rounds_used = ws.rounds_used;
    if (ws.sent_by_kind.size() > stats.sent_by_kind.size()) {
      stats.sent_by_kind.resize(ws.sent_by_kind.size(), 0);
    }
    for (std::size_t k = 0; k < ws.sent_by_kind.size(); ++k) {
      stats.sent_by_kind[k] += ws.sent_by_kind[k];
    }
  }
  stats.completion_time =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  if (options_.registry != nullptr) {
    options_.registry->counter("sim.sent").inc(stats.total_sent);
    options_.registry->counter("sim.delivered").inc(stats.total_delivered);
    options_.registry->counter("sim.dropped").inc(stats.total_dropped);
    options_.registry->gauge("sim.wall_seconds").set(stats.completion_time);
    if (options_.budget.limited()) {
      options_.registry->counter("sim.suppressed").inc(stats.total_suppressed);
    }
  }
  return stats;
}

}  // namespace overmatch::sim
