#include "sim/threaded_runtime.hpp"

#include <algorithm>
#include <thread>

#include "obs/registry.hpp"
#include "util/check.hpp"

namespace overmatch::sim {
namespace {

using Clock = std::chrono::steady_clock;

/// Exponential idle backoff: a few polite yields, then sleeps doubling from
/// 1us up to this cap. The cap bounds both the wake-up latency for messages
/// that arrive while asleep and the shutdown latency after stop_ is set.
constexpr auto kMaxSleep = std::chrono::microseconds(128);
constexpr unsigned kYieldsBeforeSleep = 8;

void backoff(unsigned idle_rounds, Clock::duration until_next_timer) {
  if (idle_rounds < kYieldsBeforeSleep) {
    std::this_thread::yield();
    return;
  }
  const unsigned shift =
      std::min(idle_rounds - kYieldsBeforeSleep, 7u);  // 1us << 7 == 128us
  Clock::duration sleep = std::chrono::microseconds(1u << shift);
  sleep = std::min({sleep, Clock::duration(kMaxSleep), until_next_timer});
  if (sleep <= Clock::duration::zero()) return;  // a timer is already due
  std::this_thread::sleep_for(sleep);
}

}  // namespace

ThreadedRuntime::ThreadedRuntime(std::vector<Agent*> agents, std::size_t threads)
    : ThreadedRuntime(std::move(agents), threads, Options()) {}

ThreadedRuntime::ThreadedRuntime(std::vector<Agent*> agents, std::size_t threads,
                                 Options options)
    : agents_(std::move(agents)),
      threads_(threads),
      options_(options),
      shards_(threads),
      worker_stats_(threads) {
  OM_CHECK(threads_ >= 1);
  OM_CHECK(options_.loss_probability >= 0.0 && options_.loss_probability < 1.0);
  OM_CHECK(options_.time_unit.count() > 0);
  for (const auto* a : agents_) OM_CHECK(a != nullptr);
}

void ThreadedRuntime::deliver_outbox(NodeId from, const Outbox& out,
                                     WorkerContext& ctx) {
  for (const auto& s : out.sends()) {
    OM_CHECK(s.to < agents_.size());
    ctx.stats.count_send(s.msg.kind);
    obs::trace(options_.registry, trace_kind_for_wire(s.msg.kind), from, s.to);
    if (options_.loss_probability > 0.0 &&
        ctx.loss_rng.chance(options_.loss_probability)) {
      ++ctx.stats.total_dropped;
      obs::trace(options_.registry, obs::TraceKind::kDrop, from, s.to);
      continue;
    }
    // Increment before the envelope becomes visible so in_flight_ == 0 can
    // never be observed while a message is queued.
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    auto& shard = shards_[s.to % threads_];
    {
      std::lock_guard lk(shard.mu);
      shard.q.push_back({from, s.to, s.msg});
    }
  }
  // Timers are self-deliveries and this worker owns `from`, so the heap is
  // worker-local — no lock. Timers are never lost (loss applies to DATA only).
  for (const auto& t : out.timers()) {
    OM_CHECK_MSG(t.delay >= 0.0, "ThreadedRuntime: negative timer delay");
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    const auto delay = std::chrono::duration_cast<Clock::duration>(
        std::chrono::duration<double, std::micro>(
            t.delay * static_cast<double>(options_.time_unit.count())));
    ctx.timers.push({Clock::now() + delay, ctx.timer_seq++, from, t.msg});
  }
}

void ThreadedRuntime::worker(std::size_t worker_id) {
  WorkerContext ctx;
  ctx.loss_rng.reseed(options_.seed ^
                      (0x9e3779b97f4a7c15ULL * (worker_id + 1)));
  Outbox out;
  // Initialization: each worker starts its own nodes (serialized per node).
  for (NodeId v = static_cast<NodeId>(worker_id); v < agents_.size();
       v += static_cast<NodeId>(threads_)) {
    out.clear();
    agents_[v]->on_start(out);
    deliver_outbox(v, out, ctx);
  }
  initialized_.fetch_add(1, std::memory_order_acq_rel);

  std::deque<Envelope> batch;
  unsigned idle_rounds = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    bool progressed = false;
    // Fire due timers (owner-local heap; deliveries count like messages).
    while (!ctx.timers.empty() && ctx.timers.top().deadline <= Clock::now()) {
      const TimerEntry t = ctx.timers.top();
      ctx.timers.pop();
      out.clear();
      agents_[t.node]->on_message(t.node, t.msg, out);
      ++ctx.stats.total_delivered;
      ++ctx.timer_fires;
      deliver_outbox(t.node, out, ctx);
      // Decrement only after the causal consequences are enqueued, so
      // in_flight_ == 0 really means quiescence.
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
      progressed = true;
    }
    // Batched dequeue: swap the whole shard out under one lock acquisition,
    // then process the batch without holding anything.
    batch.clear();
    {
      std::lock_guard lk(shards_[worker_id].mu);
      shards_[worker_id].q.swap(batch);
    }
    for (const Envelope& env : batch) {
      out.clear();
      agents_[env.to]->on_message(env.from, env.msg, out);
      ++ctx.stats.total_delivered;
      deliver_outbox(env.to, out, ctx);
      in_flight_.fetch_sub(1, std::memory_order_acq_rel);
    }
    progressed |= !batch.empty();
    if (progressed) {
      idle_rounds = 0;
      continue;
    }
    // Quiescence only counts once every worker finished its on_start phase;
    // otherwise a late initializer could still inject messages. Armed timers
    // hold in_flight_ > 0, so quiescence also implies no timer will ever fire.
    if (initialized_.load(std::memory_order_acquire) == threads_ &&
        in_flight_.load(std::memory_order_acquire) == 0) {
      stop_.store(true, std::memory_order_release);
      break;
    }
    const auto until_next_timer = ctx.timers.empty()
                                      ? Clock::duration(kMaxSleep)
                                      : ctx.timers.top().deadline - Clock::now();
    if (idle_rounds < kYieldsBeforeSleep) {
      ++ctx.backoff_yields;
    } else {
      ++ctx.backoff_sleeps;
    }
    backoff(idle_rounds++, until_next_timer);
  }
  if (options_.registry != nullptr) {
    // Counters are atomic cells — concurrent flushes from exiting workers
    // are fine; the once-per-worker granularity keeps this off the hot path.
    options_.registry->counter("sim.timer_fires").inc(ctx.timer_fires);
    options_.registry->counter("sim.backoff_yields").inc(ctx.backoff_yields);
    options_.registry->counter("sim.backoff_sleeps").inc(ctx.backoff_sleeps);
  }
  worker_stats_[worker_id] = std::move(ctx.stats);
}

MessageStats ThreadedRuntime::run() {
  OM_CHECK_MSG(!ran_, "ThreadedRuntime::run() is single-shot; build a new "
                      "runtime (and fresh agents) to run again");
  ran_ = true;
  const auto wall_start = Clock::now();
  std::vector<std::thread> pool;
  pool.reserve(threads_);
  for (std::size_t t = 0; t < threads_; ++t) {
    pool.emplace_back([this, t] { worker(t); });
  }
  for (auto& th : pool) th.join();
  // Every undropped send and every armed timer was eventually processed.
  OM_CHECK(in_flight_.load() == 0);
  // Merge the per-worker counters (workers have joined: no concurrency here).
  MessageStats stats;
  for (const MessageStats& ws : worker_stats_) {
    stats.total_sent += ws.total_sent;
    stats.total_delivered += ws.total_delivered;
    stats.total_dropped += ws.total_dropped;
    if (ws.sent_by_kind.size() > stats.sent_by_kind.size()) {
      stats.sent_by_kind.resize(ws.sent_by_kind.size(), 0);
    }
    for (std::size_t k = 0; k < ws.sent_by_kind.size(); ++k) {
      stats.sent_by_kind[k] += ws.sent_by_kind[k];
    }
  }
  stats.completion_time =
      std::chrono::duration<double>(Clock::now() - wall_start).count();
  if (options_.registry != nullptr) {
    options_.registry->counter("sim.sent").inc(stats.total_sent);
    options_.registry->counter("sim.delivered").inc(stats.total_delivered);
    options_.registry->counter("sim.dropped").inc(stats.total_dropped);
    options_.registry->gauge("sim.wall_seconds").set(stats.completion_time);
  }
  return stats;
}

}  // namespace overmatch::sim
