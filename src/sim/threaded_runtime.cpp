#include "sim/threaded_runtime.hpp"

#include <thread>

#include "util/check.hpp"

namespace overmatch::sim {

ThreadedRuntime::ThreadedRuntime(std::vector<Agent*> agents, std::size_t threads)
    : agents_(std::move(agents)),
      threads_(threads),
      mailboxes_(agents_.size()) {
  OM_CHECK(threads_ >= 1);
  for (const auto* a : agents_) OM_CHECK(a != nullptr);
}

void ThreadedRuntime::deliver_outbox(NodeId from, const Outbox& out) {
  OM_CHECK_MSG(out.timers().empty(),
               "ThreadedRuntime does not support virtual timers");
  if (out.sends().empty()) return;
  {
    std::lock_guard lk(stats_mu_);
    for (const auto& s : out.sends()) stats_.count_send(s.msg.kind);
  }
  for (const auto& s : out.sends()) {
    OM_CHECK(s.to < agents_.size());
    in_flight_.fetch_add(1, std::memory_order_acq_rel);
    {
      std::lock_guard lk(mailboxes_[s.to].mu);
      mailboxes_[s.to].q.push_back({from, s.msg});
    }
  }
}

void ThreadedRuntime::worker(std::size_t worker_id) {
  Outbox out;
  // Initialization: each worker starts its own nodes (serialized per node).
  for (NodeId v = static_cast<NodeId>(worker_id); v < agents_.size();
       v += static_cast<NodeId>(threads_)) {
    out.clear();
    agents_[v]->on_start(out);
    deliver_outbox(v, out);
  }
  initialized_.fetch_add(1, std::memory_order_acq_rel);
  // Delivery loop: drain owned mailboxes until globally quiescent.
  while (!stop_.load(std::memory_order_acquire)) {
    bool progressed = false;
    for (NodeId v = static_cast<NodeId>(worker_id); v < agents_.size();
         v += static_cast<NodeId>(threads_)) {
      for (;;) {
        Envelope env;
        {
          std::lock_guard lk(mailboxes_[v].mu);
          if (mailboxes_[v].q.empty()) break;
          env = mailboxes_[v].q.front();
          mailboxes_[v].q.pop_front();
        }
        out.clear();
        agents_[v]->on_message(env.from, env.msg, out);
        deliver_outbox(v, out);
        // Decrement only after the causal consequences are enqueued, so
        // in_flight_ == 0 really means quiescence.
        in_flight_.fetch_sub(1, std::memory_order_acq_rel);
        progressed = true;
      }
    }
    if (!progressed) {
      // Quiescence only counts once every worker finished its on_start phase;
      // otherwise a late initializer could still inject messages.
      if (initialized_.load(std::memory_order_acquire) == threads_ &&
          in_flight_.load(std::memory_order_acquire) == 0) {
        stop_.store(true, std::memory_order_release);
        return;
      }
      std::this_thread::yield();
    }
  }
}

MessageStats ThreadedRuntime::run() {
  stop_.store(false, std::memory_order_release);
  std::vector<std::thread> pool;
  pool.reserve(threads_);
  for (std::size_t t = 0; t < threads_; ++t) {
    pool.emplace_back([this, t] { worker(t); });
  }
  for (auto& th : pool) th.join();
  // Every send was eventually processed.
  OM_CHECK(in_flight_.load() == 0);
  stats_.total_delivered = stats_.total_sent;
  return stats_;
}

}  // namespace overmatch::sim
