// WAN deployment scenario: the full stack under realistic adversity.
//
// 1. Peers discover candidates by gossip (nobody knows the whole network).
// 2. Preferences come from a hybrid metric over generated peer attributes.
// 3. LID runs over a *lossy* wide-area network (every message dropped with
//    probability p) behind the ACK/retransmit adapter.
// 4. The result is audited: same matching as the centralized reference,
//    approximation certificate, quality report.
//
//   ./wan_deployment [--n=120] [--quota=3] [--rounds=4] [--loss=0.2] [--seed=2]
#include <cstdio>

#include "core/certificates.hpp"
#include "matching/lic.hpp"
#include "matching/lid.hpp"
#include "matching/metrics.hpp"
#include "overlay/discovery.hpp"
#include "overlay/metrics.hpp"
#include "sim/reliable.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"

int main(int argc, char** argv) {
  using namespace overmatch;
  const util::Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 120));
  const auto quota = static_cast<std::uint32_t>(flags.get_int("quota", 3));
  const auto rounds = static_cast<std::size_t>(flags.get_int("rounds", 4));
  const double loss = flags.get_double("loss", 0.2);
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 2));

  // Phase 1: discovery.
  overlay::DiscoveryOptions d;
  d.rounds = rounds;
  d.seed = seed;
  const auto disc = overlay::discover_candidates(n, d);
  std::printf("phase 1 — discovery: %zu peers, %zu candidate links learned "
              "(%zu gossip messages)\n",
              n, disc.candidates.num_edges(), disc.stats.total_sent);

  // Phase 2: private preferences over the discovered candidates.
  util::Rng rng(seed);
  const auto pop = overlay::Population::random(n, 8, rng);
  const auto metrics = overlay::random_metrics(n, rng);
  const auto profile = overlay::build_profile(
      disc.candidates, pop, metrics, prefs::uniform_quotas(disc.candidates, quota));
  const auto weights = prefs::paper_weights(profile);
  std::printf("phase 2 — preferences: per-peer private metrics assigned "
              "(quota %u)\n", quota);

  // Phase 3: distributed matching over the lossy WAN.
  matching::LidOptions lid_opt;
  lid_opt.seed = seed;
  lid_opt.loss_rate = loss;
  lid_opt.reliable = true;
  const auto r = matching::run_lid(weights, profile.quotas(), lid_opt);
  std::printf(
      "phase 3 — LID over %.0f%% loss: %zu connections established\n"
      "          wire traffic %zu msgs (%zu dropped, %zu retransmitted, "
      "%zu ACKs), virtual time %.1f\n",
      100.0 * loss, r.matching.size(), r.stats.total_sent, r.stats.total_dropped,
      r.retransmissions, r.stats.kind_count(sim::kAckKind),
      r.stats.completion_time);

  // Phase 4: audit.
  const auto reference = matching::lic_global(weights, profile.quotas());
  const auto cert = core::certify(profile, weights, r.matching);
  const auto sats = matching::node_satisfactions(profile, r.matching);
  util::StreamingStats ss;
  for (const double s : sats) ss.add(s);
  std::printf(
      "phase 4 — audit: matches centralized reference: %s\n"
      "          satisfaction mean %.3f (min %.3f), certified weight ratio ≥ %.3f,\n"
      "          ½-certificate %s, satisfaction ≥ %.3f × optimum (Theorem 3)\n",
      r.matching.same_edges(reference) ? "YES" : "NO — BUG", ss.mean(), ss.min(),
      cert.ratio_lower_bound, cert.half_certificate ? "present" : "absent",
      cert.theorem3);
  return r.matching.same_edges(reference) ? 0 : 1;
}
