// Churn adaptation — the paper's future-work extension, runnable.
//
// Builds an overlay, then replays a churn trace (Poisson-ish leaves and
// rejoins). After every event the overlay repairs itself with the selected
// engine (default: the incremental DynamicBSuitor, which restores the exact
// greedy matching by localized bidding cascades); the example prints the
// satisfaction trajectory, per-event repair latency, and the gap/disruption
// versus a full from-scratch recomputation.
//
//   ./churn_adaptation [--n=150] [--quota=3] [--events=30] [--seed=11]
//                      [--mode=incremental|greedy-keep|scratch]
#include <cstdio>

#include "graph/generators.hpp"
#include "overlay/churn.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace overmatch;
  const util::Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 150));
  const auto quota = static_cast<std::uint32_t>(flags.get_int("quota", 3));
  const auto events = static_cast<std::size_t>(flags.get_int("events", 30));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 11));
  const auto mode =
      overlay::churn_mode_by_name(flags.get("mode", "incremental"));

  util::Rng rng(seed);
  static graph::Graph g;
  g = graph::barabasi_albert(n, 4, rng);
  const auto profile =
      prefs::PreferenceProfile::random(g, prefs::uniform_quotas(g, quota), rng);
  const auto weights = prefs::paper_weights(profile);

  overlay::ChurnOptions churn_opt;
  churn_opt.mode = mode;
  churn_opt.oracle = true;
  overlay::ChurnSimulator churn(profile, weights, churn_opt);
  std::printf(
      "initial overlay (%s repair): %zu connections, weight %.3f, "
      "satisfaction %.3f\n\n",
      overlay::churn_mode_name(mode), churn.matching().size(),
      churn.matching().total_weight(weights), churn.total_satisfaction_alive());

  util::Table t({"#", "event", "node", "torn", "added", "satisfaction",
                 "repair us", "weight gap to recompute %", "disruption"});
  std::vector<graph::NodeId> offline;
  util::StreamingStats gaps;
  util::StreamingStats disruptions;
  for (std::size_t k = 1; k <= events; ++k) {
    overlay::ChurnEvent ev;
    if (!offline.empty() && rng.chance(0.5)) {
      const auto idx = rng.index(offline.size());
      ev = churn.join(offline[idx]);
      offline.erase(offline.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      graph::NodeId v;
      do {
        v = static_cast<graph::NodeId>(rng.index(n));
      } while (!churn.alive(v));
      ev = churn.leave(v);
      offline.push_back(v);
    }
    const double gap = 100.0 * (ev.recompute_weight - ev.incremental_weight) /
                       ev.recompute_weight;
    gaps.add(gap);
    disruptions.add(static_cast<double>(ev.disruption));
    t.row()
        .cell(std::uint64_t{k})
        .cell(ev.join ? "join" : "leave")
        .cell(std::int64_t{ev.node})
        .cell(std::uint64_t{ev.edges_removed})
        .cell(std::uint64_t{ev.edges_added})
        .cell(ev.satisfaction_total, 3)
        .cell(static_cast<double>(ev.repair_ns) / 1e3, 1)
        .cell(gap, 2)
        .cell(std::uint64_t{ev.disruption});
  }
  t.print("Churn trace:");

  std::printf(
      "\n%s repair stayed within %.2f%% (mean) of full recomputation with a\n"
      "mean edge-set disruption of %.1f connections per event.\n",
      overlay::churn_mode_name(mode), gaps.mean(), disruptions.mean());
  return 0;
}
