// Overlay construction with heterogeneous private metrics — the paper's
// motivating scenario.
//
// A population of peers with positions, interests, bandwidth, uptime and
// transaction history builds an overlay. Every peer privately picks its own
// suitability metric (latency-sensitive peers rank by proximity, content
// peers by interests, …) and never discloses it; only the derived ΔS̄ values
// cross the wire. The example prints the resulting overlay's quality report
// and its approximation certificate.
//
//   ./overlay_construction [--n=200] [--topology=ba] [--degree=10]
//                          [--quota=4] [--seed=1]
#include <cstdio>

#include "core/certificates.hpp"
#include "graph/generators.hpp"
#include "overlay/quality.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace overmatch;
  const util::Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 200));
  const auto topology = flags.get("topology", "ba");
  const double degree = flags.get_double("degree", 10.0);
  const auto quota = static_cast<std::uint32_t>(flags.get_int("quota", 4));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));

  util::Rng rng(seed);
  auto g = graph::by_name(topology, n, degree, rng);
  auto pop = overlay::Population::random(n, 16, rng);
  const auto metrics = overlay::random_metrics(n, rng);

  // Count the metric mix so the heterogeneity is visible.
  util::Table mix({"metric", "peers"});
  for (const auto m :
       {overlay::Metric::kProximity, overlay::Metric::kInterests,
        overlay::Metric::kBandwidth, overlay::Metric::kUptime,
        overlay::Metric::kTransactions, overlay::Metric::kHybrid}) {
    std::int64_t count = 0;
    for (const auto x : metrics) {
      if (x == m) ++count;
    }
    mix.row().cell(overlay::metric_name(m)).cell(count);
  }
  mix.print("Private metric choices across the population:");

  overlay::BuildOptions opt;
  opt.quota = quota;
  opt.seed = seed;
  const auto ov = overlay::build_overlay(std::move(g), pop, metrics, opt);

  const auto report = overlay::analyze(*ov);
  std::printf("\n--- overlay quality ---\n%s\n", overlay::to_string(report).c_str());

  const auto cert = core::certify(ov->profile(), ov->weights(), ov->matching());
  std::printf(
      "\n--- approximation certificate ---\n"
      "matching weight          : %.4f\n"
      "weight upper bound       : %.4f\n"
      "certified ratio          : ≥ %.3f (theorem floor: %.3f)\n"
      "structural ½-certificate : %s\n"
      "satisfaction guarantee   : ≥ %.3f × optimum (Theorem 3)\n",
      cert.weight, cert.upper_bound, cert.ratio_lower_bound, cert.theorem2,
      cert.half_certificate ? "present" : "MISSING", cert.theorem3);
  return 0;
}
