// Interest communities: preference-driven overlays cluster like-minded peers.
//
// The population is planted with K interest communities (orthogonal basis
// vectors plus noise). All peers rank neighbours by interest similarity; the
// example measures how strongly the matched overlay respects the planted
// communities (homophily) compared to a preference-blind random matching —
// the paper's "interest heterogeneity" story made quantitative.
//
//   ./interest_groups [--n=180] [--groups=6] [--quota=3] [--seed=3]
#include <cmath>
#include <cstdio>

#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "matching/baselines.hpp"
#include "overlay/metrics.hpp"
#include "util/flags.hpp"
#include "util/table.hpp"

namespace {

using namespace overmatch;

/// Fraction of matched edges whose endpoints share a planted community.
double homophily(const matching::Matching& m, const std::vector<int>& community) {
  if (m.size() == 0) return 0.0;
  std::size_t same = 0;
  for (const auto e : m.edges()) {
    const auto& edge = m.graph().edge(e);
    if (community[edge.u] == community[edge.v]) ++same;
  }
  return static_cast<double>(same) / static_cast<double>(m.size());
}

}  // namespace

int main(int argc, char** argv) {
  const util::Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 180));
  const auto groups = static_cast<std::size_t>(flags.get_int("groups", 6));
  const auto quota = static_cast<std::uint32_t>(flags.get_int("quota", 3));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 3));

  util::Rng rng(seed);
  const auto g = graph::erdos_renyi(n, 16.0 / static_cast<double>(n - 1), rng);

  // Plant communities: interest vector = e_k + noise, renormalized.
  auto pop = overlay::Population::random(n, groups, rng);
  std::vector<int> community(n);
  {
    std::vector<overlay::Peer> peers;
    for (graph::NodeId v = 0; v < n; ++v) {
      community[v] = static_cast<int>(v % groups);
    }
    // Rebuild interests in place through the metric layer: we cannot mutate
    // Population peers directly, so regenerate deterministic planted vectors
    // through a local score function instead (see below).
  }
  // Planted-similarity score: high iff same community, plus a small random
  // tie-breaking jitter (deterministic per pair).
  const auto score = [&community](graph::NodeId i, graph::NodeId j) {
    util::SplitMix64 h((static_cast<std::uint64_t>(i) << 32) ^ j);
    const double jitter = static_cast<double>(h.next() % 1000) / 10000.0;
    return (community[i] == community[j] ? 1.0 : 0.0) + jitter;
  };
  const auto profile = prefs::PreferenceProfile::from_scores(
      g, prefs::uniform_quotas(g, quota), score);

  const auto lid = core::solve(profile, core::Algorithm::kLidDes);
  core::SolveOptions opt;
  opt.seed = seed;
  const auto random_m = core::solve(profile, core::Algorithm::kRandomGreedy, opt);

  // Baseline homophily of the candidate graph itself.
  std::size_t same_candidates = 0;
  for (graph::EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& edge = g.edge(e);
    if (community[edge.u] == community[edge.v]) ++same_candidates;
  }
  const double candidate_homophily =
      static_cast<double>(same_candidates) / static_cast<double>(g.num_edges());

  util::Table t({"matching", "edges", "homophily", "total satisfaction"});
  t.row().cell("candidate graph (no selection)")
      .cell(std::uint64_t{g.num_edges()})
      .cell(candidate_homophily, 3)
      .cell("-");
  t.row().cell("preference-blind random greedy")
      .cell(std::uint64_t{random_m.matching.size()})
      .cell(homophily(random_m.matching, community), 3)
      .cell(random_m.satisfaction, 3);
  t.row().cell("LID (interest preferences)")
      .cell(std::uint64_t{lid.matching.size()})
      .cell(homophily(lid.matching, community), 3)
      .cell(lid.satisfaction, 3);
  t.print("Planted " + std::to_string(groups) + "-community instance, n = " +
          std::to_string(n) + ", quota " + std::to_string(quota) + ":");

  std::printf(
      "\nLID concentrates connections inside communities (homophily %.0f%% vs "
      "%.0f%% baseline)\nwhile spending %zu messages and keeping every "
      "guarantee of the paper.\n",
      100.0 * homophily(lid.matching, community), 100.0 * candidate_homophily,
      lid.messages);
  return 0;
}
