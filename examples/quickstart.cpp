// Quickstart: the smallest end-to-end use of the library.
//
// Eight peers, a random candidate graph, private random preference lists,
// quota 2 each. Run the distributed LID algorithm, print who connected to
// whom and how satisfied everyone is, and verify the paper's guarantee
// against the exact optimum (tiny instance, so we can afford it).
//
//   ./quickstart [--n=8] [--quota=2] [--seed=7]
#include <cstdio>

#include "core/certificates.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "matching/exact.hpp"
#include "matching/metrics.hpp"
#include "util/flags.hpp"

int main(int argc, char** argv) {
  using namespace overmatch;
  const util::Flags flags(argc, argv);
  const auto n = static_cast<std::size_t>(flags.get_int("n", 8));
  const auto quota = static_cast<std::uint32_t>(flags.get_int("quota", 2));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 7));

  // 1. A candidate-connection graph: who *could* talk to whom.
  util::Rng rng(seed);
  const auto g = graph::erdos_renyi(n, 0.5, rng);
  std::printf("candidate graph: %zu peers, %zu potential connections\n",
              g.num_nodes(), g.num_edges());

  // 2. Private preferences: every peer ranks its neighbourhood (here:
  //    uniformly at random; see overlay_construction.cpp for real metrics).
  const auto profile =
      prefs::PreferenceProfile::random(g, prefs::uniform_quotas(g, quota), rng);

  // 3. Run the distributed algorithm (simulated asynchronous network).
  const auto result = core::solve(profile, core::Algorithm::kLidDes);

  std::printf("\nestablished connections (%zu):\n", result.matching.size());
  for (const auto e : result.matching.edges()) {
    const auto& edge = g.edge(e);
    std::printf("  %u -- %u   (rank %u in %u's list, rank %u in %u's list)\n",
                edge.u, edge.v, profile.rank(edge.u, edge.v), edge.u,
                profile.rank(edge.v, edge.u), edge.v);
  }

  std::printf("\nper-peer satisfaction (eq. 1):\n");
  const auto sats = matching::node_satisfactions(profile, result.matching);
  for (graph::NodeId v = 0; v < n; ++v) {
    std::printf("  peer %u: %.3f  (%u/%u slots used)\n", v, sats[v],
                result.matching.load(v), profile.quota(v));
  }
  std::printf("total satisfaction: %.3f, protocol messages: %zu\n",
              result.satisfaction, result.messages);

  // 4. Audit the guarantee: LID ≥ ¼(1+1/b_max) of the satisfaction optimum.
  const auto opt = matching::exact_max_satisfaction(profile);
  const double best = matching::total_satisfaction(profile, opt);
  const double bound = core::theorem3_bound(profile.max_quota());
  std::printf("\nexact optimum: %.3f  → achieved ratio %.3f (guaranteed ≥ %.3f)\n",
              best, best > 0 ? result.satisfaction / best : 1.0, bound);
  return 0;
}
