// Cross-module integration: the full pipeline a deployment would run, from
// peer attributes to analyzed overlay, exercised end to end.
#include <gtest/gtest.h>

#include <sstream>

#include "core/certificates.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "matching/metrics.hpp"
#include "overlay/churn.hpp"
#include "overlay/quality.hpp"
#include "prefs/cycles.hpp"

namespace overmatch {
namespace {

using overlay::BuildOptions;
using overlay::Metric;
using overlay::Population;

TEST(EndToEnd, HeterogeneousMetricsOverlayPipeline) {
  util::Rng rng(42);
  auto g = graph::barabasi_albert(60, 3, rng);
  auto pop = Population::random(60, 8, rng);
  const auto metrics = overlay::random_metrics(60, rng);
  BuildOptions opt;
  opt.quota = 3;
  opt.seed = 42;
  const auto ov = overlay::build_overlay(std::move(g), pop, metrics, opt);
  const auto report = overlay::analyze(*ov);
  EXPECT_GT(report.satisfaction_mean, 0.2);
  EXPECT_GT(report.quota_utilization, 0.5);
  // Certificate: the distributed build carries the ½-approx witness.
  const auto cert = core::certify(ov->profile(), ov->weights(), ov->matching());
  EXPECT_TRUE(cert.half_certificate);
}

TEST(EndToEnd, GraphIoThenSolve) {
  util::Rng rng(7);
  const auto g = graph::erdos_renyi(25, 0.3, rng);
  std::stringstream ss;
  graph::write_edge_list(ss, g);
  static graph::Graph loaded;
  loaded = graph::read_edge_list(ss);
  auto profile = prefs::PreferenceProfile::random(
      loaded, prefs::uniform_quotas(loaded, 2), rng);
  const auto r = core::solve(profile, core::Algorithm::kLidDes);
  EXPECT_TRUE(r.matching.is_maximal());
}

TEST(EndToEnd, CyclicPreferencesStillTerminate) {
  // Build an instance certain to carry rank cycles; LID must still finish and
  // match LIC (the paper's headline robustness claim vs. [3]).
  util::Rng rng(11);
  static graph::Graph g;
  g = graph::complete(12);
  for (int trial = 0; trial < 5; ++trial) {
    auto p = prefs::PreferenceProfile::random(g, prefs::uniform_quotas(g, 3), rng);
    if (!prefs::find_rank_cycle(p).has_value()) continue;
    const auto lic = core::solve(p, core::Algorithm::kLicGlobal);
    const auto lid = core::solve(p, core::Algorithm::kLidDes);
    EXPECT_TRUE(lic.matching.same_edges(lid.matching));
    return;  // one cyclic witness suffices
  }
  FAIL() << "no cyclic instance found in 5 random trials (wildly unlikely)";
}

TEST(EndToEnd, ChurnSessionKeepsQualityReasonable) {
  util::Rng rng(13);
  static graph::Graph g;
  g = graph::erdos_renyi(40, 0.3, rng);
  auto profile = prefs::PreferenceProfile::random(g, prefs::uniform_quotas(g, 3), rng);
  const auto weights = prefs::paper_weights(profile);
  overlay::ChurnSimulator churn(profile, weights);
  const double initial = churn.matching().total_weight(weights);

  // 15 random leaves and joins.
  std::vector<graph::NodeId> offline;
  for (int i = 0; i < 15; ++i) {
    if (!offline.empty() && rng.chance(0.5)) {
      const auto idx = rng.index(offline.size());
      churn.join(offline[idx]);
      offline.erase(offline.begin() + static_cast<std::ptrdiff_t>(idx));
    } else {
      graph::NodeId v;
      do {
        v = static_cast<graph::NodeId>(rng.index(g.num_nodes()));
      } while (!churn.alive(v));
      churn.leave(v);
      offline.push_back(v);
    }
  }
  // Bring everyone back: quality must recover to within 10% of the initial
  // greedy weight (greedy completion of a maximal remainder).
  for (const auto v : offline) churn.join(v);
  EXPECT_GT(churn.matching().total_weight(weights), 0.9 * initial);
}

TEST(EndToEnd, HomogeneousVsHeterogeneousMetrics) {
  // Homogeneous symmetric metrics (proximity) produce aligned preferences and
  // hence higher average satisfaction than clashing heterogeneous ones.
  util::Rng rng(17);
  auto pop = Population::random(50, 6, rng);
  const BuildOptions opt{3, sim::Schedule::kRandomOrder, 17};

  util::Rng g1(99);
  auto ov_homo = overlay::build_overlay(
      graph::erdos_renyi(50, 0.3, g1), pop,
      overlay::homogeneous_metrics(50, Metric::kProximity), opt);
  util::Rng g2(99);
  auto ov_het = overlay::build_overlay(
      graph::erdos_renyi(50, 0.3, g2), pop, overlay::random_metrics(50, rng), opt);

  const auto q_homo = overlay::analyze(*ov_homo);
  const auto q_het = overlay::analyze(*ov_het);
  // Not a theorem — but with a symmetric metric mutual top choices abound.
  EXPECT_GT(q_homo.satisfaction_mean, q_het.satisfaction_mean - 0.15);
  EXPECT_GT(q_het.satisfaction_mean, 0.0);
}

TEST(EndToEnd, SolveFacadeAgreesWithOverlayBuilder) {
  util::Rng rng(23);
  auto g = graph::erdos_renyi(30, 0.3, rng);
  auto pop = Population::random(30, 6, rng);
  const auto metrics = overlay::random_metrics(30, rng);
  BuildOptions opt;
  opt.quota = 2;
  opt.seed = 5;
  const auto ov = overlay::build_overlay(std::move(g), pop, metrics, opt);
  // The facade, run on the same profile, must reproduce the overlay matching.
  const auto r = core::solve(ov->profile(), core::Algorithm::kLicGlobal);
  EXPECT_TRUE(r.matching.same_edges(ov->matching()));
  EXPECT_NEAR(r.satisfaction,
              matching::total_satisfaction(ov->profile(), ov->matching()), 1e-9);
}

}  // namespace
}  // namespace overmatch
