// Every quantitative claim of the paper as a test: Lemma 1 (eq. 8), Lemma 5,
// Theorem 1, Theorem 2, Theorem 3. These are the reproduction's ground truth;
// the benches print the same quantities as tables.
#include <gtest/gtest.h>

#include "core/certificates.hpp"
#include "core/solvers.hpp"
#include "matching/exact.hpp"
#include "matching/lic.hpp"
#include "matching/lid.hpp"
#include "matching/metrics.hpp"
#include "prefs/cycles.hpp"
#include "prefs/satisfaction.hpp"
#include "tests/matching/common.hpp"

namespace overmatch {
namespace {

using matching::testing::Instance;

/// Lemma 1 / eq. 8 worst case: node with quota b whose connections sit at the
/// bottom of its length-L list. The static share must be exactly ½(1+1/b).
TEST(Lemma1, WorstCaseRatioExact) {
  for (const std::uint32_t b : {1u, 2u, 3u, 4u, 8u}) {
    const std::size_t L = 2 * b + 3;
    static graph::Graph g;
    g = graph::star(L + 1);  // hub 0, leaves 1..L
    std::vector<std::vector<graph::NodeId>> lists(L + 1);
    for (graph::NodeId leaf = 1; leaf <= L; ++leaf) {
      lists[0].push_back(leaf);  // identity order
      lists[leaf] = {0};
    }
    prefs::Quotas q(L + 1, 1);
    q[0] = b;
    auto p = prefs::PreferenceProfile::from_lists(g, q, std::move(lists));
    // Bottom-b connections.
    std::vector<graph::NodeId> conns;
    for (std::size_t k = L - b + 1; k <= L; ++k) {
      conns.push_back(static_cast<graph::NodeId>(k));
    }
    const auto parts = prefs::satisfaction_parts(p, 0, conns);
    const double ratio = parts.static_part / parts.total();
    EXPECT_NEAR(ratio, core::theorem1_bound(b), 1e-12) << "b=" << b;
  }
}

/// Lemma 1 as an inequality on arbitrary instances: the static share of any
/// node's satisfaction is at least ½(1+1/b_i).
TEST(Lemma1, StaticShareNeverBelowBound) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto inst = Instance::random_quotas("er", 20, 5.0, 4, seed * 29 + 1);
    const auto r = core::solve(*inst->profile, core::Algorithm::kLidDes);
    for (graph::NodeId v = 0; v < inst->g.num_nodes(); ++v) {
      const auto conns = r.matching.connections(v);
      if (conns.empty()) continue;
      const auto parts = prefs::satisfaction_parts(*inst->profile, v, conns);
      const double bound = core::theorem1_bound(inst->profile->quota(v));
      EXPECT_GE(parts.static_part / parts.total(), bound - 1e-9);
    }
  }
}

/// Theorem 1: satisfaction of the weight-optimal matching is at least
/// ½(1+1/b_max) of the satisfaction optimum.
TEST(Theorem1, WeightOptimumApproximatesSatisfactionOptimum) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto inst = Instance::random_quotas("er", 9, 3.0, 3, seed * 37 + 5);
    const auto opt_w = matching::exact_max_weight_bmatching(*inst->weights,
                                                            inst->profile->quotas());
    const auto opt_s = matching::exact_max_satisfaction(*inst->profile);
    const double ss = matching::total_satisfaction(*inst->profile, opt_s);
    if (ss <= 0) continue;
    const double sw = matching::total_satisfaction(*inst->profile, opt_w);
    EXPECT_GE(sw / ss, core::theorem1_bound(inst->profile->max_quota()) - 1e-9)
        << "seed=" << seed;
  }
}

/// Theorem 2: LIC (and so LID) reaches at least half the optimal weight.
TEST(Theorem2, GreedyWithinHalfOfExact) {
  for (const char* topology : {"er", "ba", "geo"}) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      auto inst = Instance::random_quotas(topology, 14, 4.0, 3, seed * 41 + 3);
      const auto greedy = matching::lic_global(*inst->weights,
                                               inst->profile->quotas());
      const auto opt = matching::exact_max_weight_bmatching(*inst->weights,
                                                            inst->profile->quotas());
      const double ow = opt.total_weight(*inst->weights);
      if (ow <= 0) continue;
      EXPECT_GE(greedy.total_weight(*inst->weights) / ow, 0.5 - 1e-9)
          << topology << " seed=" << seed;
    }
  }
}

/// Theorem 3: LID satisfaction ≥ ¼(1+1/b_max) of the satisfaction optimum.
TEST(Theorem3, LidSatisfactionWithinBound) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto inst = Instance::random_quotas("er", 9, 3.0, 3, seed * 43 + 7);
    const auto lid = core::solve(*inst->profile, core::Algorithm::kLidDes);
    const auto opt_s = matching::exact_max_satisfaction(*inst->profile);
    const double ss = matching::total_satisfaction(*inst->profile, opt_s);
    if (ss <= 0) continue;
    EXPECT_GE(lid.satisfaction / ss,
              core::theorem3_bound(inst->profile->max_quota()) - 1e-9)
        << "seed=" << seed;
  }
}

/// Lemma 5 companions: LID terminates under every schedule (the simulator
/// would abort on its delivery budget otherwise), and the weight order never
/// contains a communication cycle.
TEST(Lemma5, TerminatesUnderAllSchedulesAndNoWeightCycles) {
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    auto inst = Instance::random("ws", 24, 6.0, 3, seed * 47 + 9);
    EXPECT_FALSE(prefs::find_weight_cycle(*inst->weights).has_value());
    for (const auto s : {sim::Schedule::kFifo, sim::Schedule::kRandomOrder,
                         sim::Schedule::kRandomDelay,
                         sim::Schedule::kAdversarialDelay}) {
      matching::LidOptions opt;
      opt.seed = seed + 1;
      opt.schedule = s;
      const auto r =
          matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
      EXPECT_TRUE(r.matching.is_maximal());
    }
  }
}

/// Lemmas 3/4/6 at integration scale: one large instance, LID == LIC ==
/// parallel across runtimes.
TEST(Lemmas346, AllEnginesOneLargeInstance) {
  auto inst = Instance::random_quotas("ba", 120, 8.0, 4, 1001);
  const auto lic = matching::lic_global(*inst->weights, inst->profile->quotas());
  matching::LidOptions des_opt;
  des_opt.seed = 5;
  des_opt.schedule = sim::Schedule::kAdversarialDelay;
  const auto lid =
      matching::run_lid(*inst->weights, inst->profile->quotas(), des_opt);
  EXPECT_TRUE(lic.same_edges(lid.matching));
  matching::LidOptions thr_opt;
  thr_opt.threads = 4;
  thr_opt.runtime = matching::LidRuntime::kThreaded;
  const auto lidt =
      matching::run_lid(*inst->weights, inst->profile->quotas(), thr_opt);
  EXPECT_TRUE(lic.same_edges(lidt.matching));
}

}  // namespace
}  // namespace overmatch
