// obs::Registry correctness and thread-safety. The hammer tests run the
// full handle surface (counters, gauges, timers, histograms, trace rings)
// from many threads at once and require exact totals at quiescence; under
// -DOVERMATCH_SANITIZE=thread they are the data-race proof for the whole
// observability layer.
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

namespace overmatch::obs {
namespace {

TEST(Registry, DisengagedHandlesAreNoOps) {
  Registry* none = nullptr;
  counter(none, "c").inc();
  gauge(none, "g").set(3.0);
  timer(none, "t").record(std::chrono::milliseconds(1));
  trace(none, TraceKind::kMessage, 1, 2);
  EXPECT_FALSE(Counter{}.engaged());
  EXPECT_EQ(Counter{}.value(), 0u);
  EXPECT_FALSE(Gauge{}.engaged());
  EXPECT_EQ(Gauge{}.value(), 0.0);
  EXPECT_FALSE(Timer{}.engaged());
  EXPECT_FALSE(Histogram{}.engaged());
  // ScopedTimer over a disengaged timer is two clock reads and nothing else.
  { ScopedTimer span{Timer{}}; }
}

TEST(Registry, HandlesAliasTheSameCell) {
  Registry r;
  const Counter a = r.counter("x");
  const Counter b = r.counter("x");
  a.inc(3);
  b.inc(4);
  EXPECT_EQ(r.counter("x").value(), 7u);
  EXPECT_EQ(r.snapshot().counter("x"), 7u);
}

TEST(Registry, GaugeSetAddMax) {
  Registry r;
  const Gauge g = r.gauge("g");
  g.set(2.0);
  g.add(0.5);
  g.set_max(1.0);  // below current → no change
  EXPECT_EQ(g.value(), 2.5);
  g.set_max(9.0);
  EXPECT_EQ(r.snapshot().gauge("g"), 9.0);
}

TEST(Registry, HistogramBucketPlacement) {
  Registry r;
  const Histogram h = r.histogram("h", {1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0 (≤ 1)
  h.observe(1.0);   // bucket 0 (boundary is inclusive)
  h.observe(1.5);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(100.0); // open bucket
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.histograms.size(), 1u);
  const auto& hs = snap.histograms[0];
  EXPECT_EQ(hs.bounds, (std::vector<double>{1.0, 2.0, 4.0}));
  EXPECT_EQ(hs.counts, (std::vector<std::uint64_t>{2, 1, 1, 1}));
  // Re-registering ignores new bounds; first registration wins.
  const Histogram again = r.histogram("h", {7.0});
  again.observe(0.1);
  EXPECT_EQ(r.snapshot().histograms[0].counts[0], 3u);
}

TEST(Registry, SnapshotIsSortedByName) {
  Registry r;
  r.counter("zz").inc();
  r.counter("aa").inc();
  r.set_label("z", "1");
  r.set_label("a", "2");
  r.set_label("z", "3");  // last write wins
  const auto snap = r.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  EXPECT_EQ(snap.counters[0].first, "aa");
  EXPECT_EQ(snap.counters[1].first, "zz");
  ASSERT_EQ(snap.labels.size(), 2u);
  EXPECT_EQ(snap.labels[0].first, "a");
  EXPECT_EQ(snap.labels[1].first, "z");
  EXPECT_EQ(snap.labels[1].second, "3");
  EXPECT_FALSE(snap.has_counter("absent"));
  EXPECT_EQ(snap.counter("absent"), 0u);
}

TEST(RegistryHammer, ConcurrentRecordingIsExactAtQuiescence) {
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kReps = 20000;
  Registry r;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([&r, t] {
      // Resolve handles once (the prescribed call-site discipline), then
      // hammer: shared counter, per-thread counter, gauge high-water,
      // histogram, timer, and the per-thread trace ring.
      const Counter shared = r.counter("shared");
      const Counter mine = r.counter("thread." + std::to_string(t));
      const Gauge peak = r.gauge("peak");
      const Histogram h = r.histogram("h", {0.25, 0.5, 0.75});
      const Timer timer = r.timer("span");
      for (std::size_t i = 0; i < kReps; ++i) {
        shared.inc();
        mine.inc(2);
        peak.set_max(static_cast<double>(t * kReps + i));
        h.observe(static_cast<double>(i) / kReps);
        if (i % 1000 == 0) {
          timer.record(std::chrono::microseconds(1));
        }
        r.trace(TraceKind::kProposal, static_cast<std::uint32_t>(t),
                static_cast<std::uint32_t>(i));
      }
    });
  }
  // Concurrent snapshots must be race-free (values may be mid-flight).
  std::thread reader([&r] {
    for (int i = 0; i < 50; ++i) {
      const auto live = r.snapshot();
      EXPECT_LE(live.counter("shared"), kThreads * kReps);
    }
  });
  for (auto& w : workers) w.join();
  reader.join();

  const auto snap = r.snapshot();
  EXPECT_EQ(snap.counter("shared"), kThreads * kReps);
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.counter("thread." + std::to_string(t)), 2 * kReps);
  }
  EXPECT_EQ(snap.gauge("peak"), static_cast<double>(kThreads * kReps - 1));
  ASSERT_EQ(snap.histograms.size(), 1u);
  std::uint64_t histo_total = 0;
  for (const auto c : snap.histograms[0].counts) histo_total += c;
  EXPECT_EQ(histo_total, kThreads * kReps);
  const auto* span = snap.timer("span");
  ASSERT_NE(span, nullptr);
  EXPECT_EQ(span->count, kThreads * (kReps / 1000));
  EXPECT_LE(span->min_ms, span->max_ms);
  // Every emit is counted even after ring overwrite; the retained window is
  // bounded by capacity × producing threads.
  EXPECT_EQ(snap.trace_emitted, kThreads * kReps);
  EXPECT_LE(snap.trace.size(), kThreads * Registry::kTraceCapacityPerThread);
  EXPECT_FALSE(snap.trace.empty());
}

TEST(RegistryHammer, TraceRingOverwritesOldestAndKeepsOrder) {
  Registry r;
  const std::size_t total = 3 * Registry::kTraceCapacityPerThread;
  for (std::size_t i = 0; i < total; ++i) {
    r.trace(TraceKind::kMessage, 0, static_cast<std::uint32_t>(i));
  }
  const auto snap = r.snapshot();
  EXPECT_EQ(snap.trace_emitted, total);
  EXPECT_LE(snap.trace.size(), Registry::kTraceCapacityPerThread);
  ASSERT_GE(snap.trace.size(), 2u);
  // Single ring → strictly increasing sequence, oldest first, and the window
  // is the *latest* events (the payload carries the emit index).
  for (std::size_t i = 1; i < snap.trace.size(); ++i) {
    EXPECT_EQ(snap.trace[i].ring, snap.trace[0].ring);
    EXPECT_LT(snap.trace[i - 1].seq, snap.trace[i].seq);
    EXPECT_LT(snap.trace[i - 1].b, snap.trace[i].b);
  }
  EXPECT_EQ(snap.trace.back().b, static_cast<std::uint32_t>(total - 1));
}

}  // namespace
}  // namespace overmatch::obs
