// overmatch-metrics-v1 exporter: a byte-exact golden document (the format is
// deterministic by design — sorted series, fixed numeric formats), plus the
// envelope rules tools/metrics_diff.py enforces (escaping, trace cap,
// emitted ≥ retained ≥ embedded).
#include "obs/json.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "obs/registry.hpp"

namespace overmatch::obs {
namespace {

std::size_t count_occurrences(const std::string& doc, const std::string& needle) {
  std::size_t n = 0;
  for (std::size_t pos = doc.find(needle); pos != std::string::npos;
       pos = doc.find(needle, pos + needle.size())) {
    ++n;
  }
  return n;
}

TEST(MetricsJson, GoldenDocument) {
  // Timers are excluded: they carry wall-clock readings and would make the
  // document non-reproducible. Everything else is byte-stable.
  Registry r;
  r.set_label("algo", "lid");
  r.set_label("topology", "er");
  r.counter("b.count").inc(2);
  r.counter("a.count").inc(41);
  r.counter("a.count").inc();
  r.gauge("ratio").set(0.5);
  const Histogram h = r.histogram("h", {1.0, 4.0});
  h.observe(0.5);
  h.observe(2.0);
  h.observe(9.0);
  const std::string doc = to_json(r.snapshot(), "test");
  const std::string golden =
      "{\n"
      "  \"schema\": \"overmatch-metrics-v1\",\n"
      "  \"source\": \"test\",\n"
      "  \"labels\": {\n"
      "    \"algo\": \"lid\",\n"
      "    \"topology\": \"er\"\n"
      "  },\n"
      "  \"counters\": {\n"
      "    \"a.count\": 42,\n"
      "    \"b.count\": 2\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"ratio\": 0.500000\n"
      "  },\n"
      "  \"timers\": [],\n"
      "  \"histograms\": [\n"
      "    {\"name\": \"h\", \"bounds\": [1, 4], \"counts\": [1, 1, 1]}\n"
      "  ],\n"
      "  \"trace\": {\n"
      "    \"emitted\": 0,\n"
      "    \"retained\": 0,\n"
      "    \"events\": []\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(doc, golden);
}

TEST(MetricsJson, EmptySnapshotIsStillAValidEnvelope) {
  Registry r;
  const std::string doc = to_json(r.snapshot(), "empty");
  EXPECT_EQ(doc,
            "{\n"
            "  \"schema\": \"overmatch-metrics-v1\",\n"
            "  \"source\": \"empty\",\n"
            "  \"labels\": {},\n"
            "  \"counters\": {},\n"
            "  \"gauges\": {},\n"
            "  \"timers\": [],\n"
            "  \"histograms\": [],\n"
            "  \"trace\": {\n"
            "    \"emitted\": 0,\n"
            "    \"retained\": 0,\n"
            "    \"events\": []\n"
            "  }\n"
            "}\n");
}

TEST(MetricsJson, EscapesControlAndQuoteCharacters) {
  Registry r;
  r.set_label("note", "a \"quoted\"\nline\tand\x01tail");
  const std::string doc = to_json(r.snapshot(), "esc\\src");
  EXPECT_NE(doc.find("\"esc\\\\src\""), std::string::npos);
  EXPECT_NE(doc.find("a \\\"quoted\\\"\\nline\\tand\\u0001tail"),
            std::string::npos);
}

TEST(MetricsJson, TimersCarryCountAndMillisecondStats) {
  Registry r;
  r.timer("t").record(std::chrono::milliseconds(2));
  r.timer("t").record(std::chrono::milliseconds(4));
  const auto snap = r.snapshot();
  const auto* t = snap.timer("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->count, 2u);
  EXPECT_NEAR(t->total_ms, 6.0, 1.0);
  EXPECT_LE(t->min_ms, t->max_ms);
  const std::string doc = to_json(snap, "test");
  EXPECT_NE(doc.find("{\"name\": \"t\", \"count\": 2, \"total_ms\": "),
            std::string::npos);
}

TEST(MetricsJson, TraceCapEmbedsOldestAndKeepsTotalsExact) {
  Registry r;
  for (std::uint32_t i = 0; i < 5; ++i) r.trace(TraceKind::kLock, i, i + 100);
  const std::string doc = to_json(r.snapshot(), "test", /*max_trace_events=*/2);
  EXPECT_NE(doc.find("\"emitted\": 5"), std::string::npos);
  EXPECT_NE(doc.find("\"retained\": 5"), std::string::npos);
  EXPECT_EQ(count_occurrences(doc, "\"kind\": \"lock\""), 2u);
  // Oldest-first embedding: payloads 100 and 101 survive the cap.
  EXPECT_NE(doc.find("\"b\": 100"), std::string::npos);
  EXPECT_NE(doc.find("\"b\": 101"), std::string::npos);
  EXPECT_EQ(doc.find("\"b\": 104"), std::string::npos);
}

TEST(MetricsJson, WriteJsonFileRoundTrips) {
  Registry r;
  r.counter("k").inc(7);
  const std::string path = ::testing::TempDir() + "overmatch_metrics_rt.json";
  write_json_file(r.snapshot(), "test", path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::string read_back;
  char buf[4096];
  for (std::size_t got; (got = std::fread(buf, 1, sizeof buf, f)) > 0;) {
    read_back.append(buf, got);
  }
  std::fclose(f);
  std::remove(path.c_str());
  EXPECT_EQ(read_back, to_json(r.snapshot(), "test"));
}

}  // namespace
}  // namespace overmatch::obs
