#include "prefs/weights.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "prefs/satisfaction.hpp"

namespace overmatch::prefs {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

TEST(PaperWeights, MatchesEquationNine) {
  static Graph g = graph::complete(5);
  util::Rng rng(1);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 2), rng);
  const auto w = paper_weights(p);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    const double expected = delta_s_static(p, u, v) + delta_s_static(p, v, u);
    EXPECT_NEAR(w.weight(e), expected, 1e-15);
  }
}

TEST(PaperWeights, StrictlyPositive) {
  static Graph g = graph::complete(8);
  util::Rng rng(2);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 3), rng);
  const auto w = paper_weights(p);
  for (const double x : w.values()) EXPECT_GT(x, 0.0);
}

TEST(PaperWeights, BoundedByTwo) {
  // Each static increment is at most 1/b ≤ 1.
  static Graph g = graph::complete(6);
  util::Rng rng(3);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 1), rng);
  const auto w = paper_weights(p);
  for (const double x : w.values()) EXPECT_LE(x, 2.0);
}

TEST(EdgeWeights, HeavierIsStrictTotalOrder) {
  static Graph g = graph::complete(6);
  util::Rng rng(4);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 2), rng);
  const auto w = paper_weights(p);
  for (EdgeId a = 0; a < g.num_edges(); ++a) {
    EXPECT_FALSE(w.heavier(a, a));  // irreflexive
    for (EdgeId b = 0; b < g.num_edges(); ++b) {
      if (a == b) continue;
      EXPECT_NE(w.heavier(a, b), w.heavier(b, a));  // total + antisymmetric
      for (EdgeId c = 0; c < g.num_edges(); ++c) {
        if (w.heavier(a, b) && w.heavier(b, c)) {
          EXPECT_TRUE(w.heavier(a, c));  // transitive
        }
      }
    }
  }
}

TEST(EdgeWeights, TieBreakByNodeIdentity) {
  // A 4-cycle with symmetric preferences gives equal weights on all edges;
  // the order must still be strict, lexicographic on endpoints.
  static Graph g = graph::cycle(4);
  auto p = PreferenceProfile::from_scores(
      g, uniform_quotas(g, 1), [](NodeId, NodeId) { return 1.0; });
  const auto w = paper_weights(p);
  // Edge {0,1} beats {0,3} beats {1,2} beats {2,3} — all weights equal is not
  // guaranteed here, so restrict the check to genuinely tied pairs.
  for (EdgeId a = 0; a < g.num_edges(); ++a) {
    for (EdgeId b = 0; b < g.num_edges(); ++b) {
      if (a == b || w.weight(a) != w.weight(b)) continue;
      const auto& ea = g.edge(a);
      const auto& eb = g.edge(b);
      const bool lex = ea.u < eb.u || (ea.u == eb.u && ea.v < eb.v);
      EXPECT_EQ(w.heavier(a, b), lex);
    }
  }
}

TEST(EdgeWeights, TotalSums) {
  static Graph g = graph::path(4);
  auto p = PreferenceProfile::from_scores(
      g, uniform_quotas(g, 1), [](NodeId, NodeId j) { return double(j); });
  const auto w = paper_weights(p);
  const double t = w.total({0, 2});
  EXPECT_NEAR(t, w.weight(0) + w.weight(2), 1e-15);
  EXPECT_DOUBLE_EQ(w.total({}), 0.0);
}

TEST(EdgeWeights, SymmetricByConstruction) {
  // The weight of (u,v) must not depend on orientation — it is stored per
  // undirected edge, and both endpoints compute the same value (Lemma 5's
  // key assumption). Recompute from both sides.
  static Graph g = graph::complete(5);
  util::Rng rng(6);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 2), rng);
  const auto w = paper_weights(p);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    EXPECT_NEAR(w.weight(e),
                delta_s_static(p, v, u) + delta_s_static(p, u, v), 1e-15);
  }
}

TEST(AblationWeights, AllDesignsPositive) {
  static Graph g = graph::complete(6);
  util::Rng rng(7);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 2), rng);
  for (const char* name : {"paper", "min", "product", "ranksum"}) {
    const auto w = weights_by_name(name, p);
    for (const double x : w.values()) EXPECT_GT(x, 0.0) << name;
  }
}

TEST(AblationWeights, MinBelowPaper) {
  static Graph g = graph::complete(6);
  util::Rng rng(8);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 2), rng);
  const auto wp = paper_weights(p);
  const auto wm = min_weights(p);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LT(wm.weight(e), wp.weight(e));
  }
}

TEST(RandomWeights, InUnitIntervalAndDeterministic) {
  static Graph g = graph::complete(7);
  util::Rng r1(9);
  util::Rng r2(9);
  const auto w1 = random_weights(g, r1);
  const auto w2 = random_weights(g, r2);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GT(w1.weight(e), 0.0);
    EXPECT_LE(w1.weight(e), 1.0);
    EXPECT_DOUBLE_EQ(w1.weight(e), w2.weight(e));
  }
}

/// Independent re-implementation of the documented order: weight descending,
/// ties by lexicographically smaller endpoint pair. The production comparator
/// is a precomputed-key compare; this is the definitional ground truth.
bool reference_heavier(const Graph& g, const std::vector<double>& w, EdgeId a,
                       EdgeId b) {
  if (w[a] != w[b]) return w[a] > w[b];
  const auto& ea = g.edge(a);
  const auto& eb = g.edge(b);
  if (ea.u != eb.u) return ea.u < eb.u;
  return ea.v < eb.v;
}

TEST(WeightKeys, KeyOrderEqualsHeavierOrderOnRandomProfilesWithTies) {
  // Fuzz over random graphs with weights drawn from a tiny discrete set so
  // exact ties are dense — the regime where key construction could diverge
  // from the definitional tie-break.
  for (std::uint64_t trial = 0; trial < 40; ++trial) {
    util::Rng rng(trial * 23 + 1);
    static Graph g;
    g = graph::erdos_renyi(3 + rng.index(12), rng.uniform(0.2, 0.9), rng);
    std::vector<double> vals(g.num_edges());
    const int levels = 1 + static_cast<int>(rng.index(4));  // 1..4 distinct weights
    for (auto& x : vals) x = 0.25 * (1.0 + static_cast<double>(rng.index(levels)));
    const EdgeWeights w(g, vals);
    for (EdgeId a = 0; a < g.num_edges(); ++a) {
      for (EdgeId b = 0; b < g.num_edges(); ++b) {
        const bool ref = reference_heavier(g, vals, a, b);
        ASSERT_EQ(w.heavier(a, b), ref) << "trial " << trial << " a=" << a << " b=" << b;
        ASSERT_EQ(w.key(a) < w.key(b), ref) << "trial " << trial;
      }
    }
  }
}

TEST(WeightKeys, KeysAreDenseAndUnique) {
  util::Rng rng(5);
  static Graph g = graph::complete(7);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 2), rng);
  const auto w = paper_weights(p);
  std::vector<bool> seen(g.num_edges(), false);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    ASSERT_LT(w.key(e), g.num_edges());
    ASSERT_FALSE(seen[w.key(e)]) << "duplicate key";
    seen[w.key(e)] = true;
  }
}

TEST(WeightKeys, ByWeightIsHeaviestFirst) {
  util::Rng rng(6);
  static Graph g;
  g = graph::erdos_renyi(30, 0.3, rng);
  const auto w = random_weights(g, rng);
  const auto order = w.by_weight();
  ASSERT_EQ(order.size(), g.num_edges());
  for (std::size_t i = 1; i < order.size(); ++i) {
    EXPECT_TRUE(w.heavier(order[i - 1], order[i]));
  }
}

TEST(WeightKeys, IncidentListsAreCompleteAndHeaviestFirst) {
  util::Rng rng(7);
  static Graph g;
  g = graph::erdos_renyi(40, 0.2, rng);
  const auto w = random_weights(g, rng);
  for (NodeId v = 0; v < g.num_nodes(); ++v) {
    const auto inc = w.incident(v);
    ASSERT_EQ(inc.size(), g.degree(v));
    for (std::size_t i = 0; i < inc.size(); ++i) {
      const auto& e = g.edge(inc[i]);
      EXPECT_TRUE(e.u == v || e.v == v);
      if (i > 0) EXPECT_TRUE(w.heavier(inc[i - 1], inc[i]));
    }
  }
}

TEST(EdgeWeightsDeathTest, WrongSizeAborts) {
  static Graph g = graph::complete(4);
  EXPECT_DEATH((void)EdgeWeights(g, std::vector<double>{1.0}), "");
}

}  // namespace
}  // namespace overmatch::prefs
