#include "prefs/weights.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "prefs/satisfaction.hpp"

namespace overmatch::prefs {
namespace {

using graph::EdgeId;
using graph::Graph;
using graph::NodeId;

TEST(PaperWeights, MatchesEquationNine) {
  static Graph g = graph::complete(5);
  util::Rng rng(1);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 2), rng);
  const auto w = paper_weights(p);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    const double expected = delta_s_static(p, u, v) + delta_s_static(p, v, u);
    EXPECT_NEAR(w.weight(e), expected, 1e-15);
  }
}

TEST(PaperWeights, StrictlyPositive) {
  static Graph g = graph::complete(8);
  util::Rng rng(2);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 3), rng);
  const auto w = paper_weights(p);
  for (const double x : w.values()) EXPECT_GT(x, 0.0);
}

TEST(PaperWeights, BoundedByTwo) {
  // Each static increment is at most 1/b ≤ 1.
  static Graph g = graph::complete(6);
  util::Rng rng(3);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 1), rng);
  const auto w = paper_weights(p);
  for (const double x : w.values()) EXPECT_LE(x, 2.0);
}

TEST(EdgeWeights, HeavierIsStrictTotalOrder) {
  static Graph g = graph::complete(6);
  util::Rng rng(4);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 2), rng);
  const auto w = paper_weights(p);
  for (EdgeId a = 0; a < g.num_edges(); ++a) {
    EXPECT_FALSE(w.heavier(a, a));  // irreflexive
    for (EdgeId b = 0; b < g.num_edges(); ++b) {
      if (a == b) continue;
      EXPECT_NE(w.heavier(a, b), w.heavier(b, a));  // total + antisymmetric
      for (EdgeId c = 0; c < g.num_edges(); ++c) {
        if (w.heavier(a, b) && w.heavier(b, c)) {
          EXPECT_TRUE(w.heavier(a, c));  // transitive
        }
      }
    }
  }
}

TEST(EdgeWeights, TieBreakByNodeIdentity) {
  // A 4-cycle with symmetric preferences gives equal weights on all edges;
  // the order must still be strict, lexicographic on endpoints.
  static Graph g = graph::cycle(4);
  auto p = PreferenceProfile::from_scores(
      g, uniform_quotas(g, 1), [](NodeId, NodeId) { return 1.0; });
  const auto w = paper_weights(p);
  // Edge {0,1} beats {0,3} beats {1,2} beats {2,3} — all weights equal is not
  // guaranteed here, so restrict the check to genuinely tied pairs.
  for (EdgeId a = 0; a < g.num_edges(); ++a) {
    for (EdgeId b = 0; b < g.num_edges(); ++b) {
      if (a == b || w.weight(a) != w.weight(b)) continue;
      const auto& ea = g.edge(a);
      const auto& eb = g.edge(b);
      const bool lex = ea.u < eb.u || (ea.u == eb.u && ea.v < eb.v);
      EXPECT_EQ(w.heavier(a, b), lex);
    }
  }
}

TEST(EdgeWeights, TotalSums) {
  static Graph g = graph::path(4);
  auto p = PreferenceProfile::from_scores(
      g, uniform_quotas(g, 1), [](NodeId, NodeId j) { return double(j); });
  const auto w = paper_weights(p);
  const double t = w.total({0, 2});
  EXPECT_NEAR(t, w.weight(0) + w.weight(2), 1e-15);
  EXPECT_DOUBLE_EQ(w.total({}), 0.0);
}

TEST(EdgeWeights, SymmetricByConstruction) {
  // The weight of (u,v) must not depend on orientation — it is stored per
  // undirected edge, and both endpoints compute the same value (Lemma 5's
  // key assumption). Recompute from both sides.
  static Graph g = graph::complete(5);
  util::Rng rng(6);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 2), rng);
  const auto w = paper_weights(p);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& [u, v] = g.edge(e);
    EXPECT_NEAR(w.weight(e),
                delta_s_static(p, v, u) + delta_s_static(p, u, v), 1e-15);
  }
}

TEST(AblationWeights, AllDesignsPositive) {
  static Graph g = graph::complete(6);
  util::Rng rng(7);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 2), rng);
  for (const char* name : {"paper", "min", "product", "ranksum"}) {
    const auto w = weights_by_name(name, p);
    for (const double x : w.values()) EXPECT_GT(x, 0.0) << name;
  }
}

TEST(AblationWeights, MinBelowPaper) {
  static Graph g = graph::complete(6);
  util::Rng rng(8);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 2), rng);
  const auto wp = paper_weights(p);
  const auto wm = min_weights(p);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_LT(wm.weight(e), wp.weight(e));
  }
}

TEST(RandomWeights, InUnitIntervalAndDeterministic) {
  static Graph g = graph::complete(7);
  util::Rng r1(9);
  util::Rng r2(9);
  const auto w1 = random_weights(g, r1);
  const auto w2 = random_weights(g, r2);
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_GT(w1.weight(e), 0.0);
    EXPECT_LE(w1.weight(e), 1.0);
    EXPECT_DOUBLE_EQ(w1.weight(e), w2.weight(e));
  }
}

TEST(EdgeWeightsDeathTest, WrongSizeAborts) {
  static Graph g = graph::complete(4);
  EXPECT_DEATH((void)EdgeWeights(g, std::vector<double>{1.0}), "");
}

}  // namespace
}  // namespace overmatch::prefs
