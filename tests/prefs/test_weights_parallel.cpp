// Determinism contract of the parallel construction pipeline: every artifact
// built with a ThreadPool — EdgeWeights (all four weight designs, raw weight
// vectors with dense exact ties), PreferenceProfile rank indices, and the
// graph CSR — must be byte-identical to the sequential reference at every
// pool size. These are the property tests behind DESIGN.md §8.
#include "prefs/weights.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.hpp"
#include "prefs/preference_profile.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace overmatch::prefs {
namespace {

constexpr std::size_t kPoolSizes[] = {1, 2, 4, 8};

struct Instance {
  graph::Graph g;
  Quotas quotas;
  std::unique_ptr<PreferenceProfile> profile;

  static Instance make(const std::string& topology, std::size_t n, double degree,
                       std::uint32_t quota, std::uint64_t seed) {
    Instance inst;
    util::Rng rng(seed);
    inst.g = graph::by_name(topology, n, degree, rng);
    inst.quotas = uniform_quotas(inst.g, quota);
    inst.profile = std::make_unique<PreferenceProfile>(
        PreferenceProfile::random(inst.g, inst.quotas, rng));
    return inst;
  }
};

void expect_identical(const EdgeWeights& ref, const EdgeWeights& par,
                      std::size_t pool_size) {
  // values/keys/order are exact element-wise comparisons — bit-identity, not
  // tolerance. The incidence index must agree slice by slice.
  EXPECT_EQ(ref.values(), par.values()) << "pool=" << pool_size;
  EXPECT_EQ(ref.keys(), par.keys()) << "pool=" << pool_size;
  ASSERT_EQ(ref.by_weight().size(), par.by_weight().size());
  for (std::size_t i = 0; i < ref.by_weight().size(); ++i) {
    ASSERT_EQ(ref.by_weight()[i], par.by_weight()[i])
        << "order diverges at position " << i << " pool=" << pool_size;
  }
  for (graph::NodeId v = 0; v < ref.graph().num_nodes(); ++v) {
    const auto a = ref.incident(v);
    const auto b = par.incident(v);
    ASSERT_EQ(a.size(), b.size()) << "node " << v << " pool=" << pool_size;
    for (std::size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], b[i]) << "node " << v << " slot " << i
                            << " pool=" << pool_size;
    }
  }
}

using Factory = EdgeWeights (*)(const PreferenceProfile&, util::ThreadPool*);

class ParallelWeightsEquality
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint32_t>> {};

TEST_P(ParallelWeightsEquality, AllDesignsMatchSequentialAtEveryPoolSize) {
  const auto [topology, quota] = GetParam();
  const std::pair<const char*, Factory> designs[] = {
      {"paper", [](const PreferenceProfile& p, util::ThreadPool* pool) {
         return paper_weights(p, pool);
       }},
      {"min", [](const PreferenceProfile& p, util::ThreadPool* pool) {
         return min_weights(p, pool);
       }},
      {"product", [](const PreferenceProfile& p, util::ThreadPool* pool) {
         return product_weights(p, pool);
       }},
      {"ranksum", [](const PreferenceProfile& p, util::ThreadPool* pool) {
         return ranksum_weights(p, pool);
       }},
  };
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const auto inst = Instance::make(topology, 120, 7.0, quota, seed * 31);
    for (const auto& [name, make] : designs) {
      const auto ref = make(*inst.profile, nullptr);
      for (const std::size_t ps : kPoolSizes) {
        util::ThreadPool pool(ps);
        const auto par = make(*inst.profile, &pool);
        SCOPED_TRACE(::testing::Message() << name << " " << topology << " b="
                                          << quota << " seed=" << seed);
        expect_identical(ref, par, ps);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, ParallelWeightsEquality,
                         ::testing::Combine(::testing::Values("er", "ba", "ws"),
                                            ::testing::Values<std::uint32_t>(1, 3)));

TEST(ParallelWeightsEquality, DenseExactTiesSortDeterministically) {
  // Raw weights with only 7 distinct values: almost every comparison is a
  // primary-key tie, so the (u, v) tiebreak carries the whole order. Any
  // instability in the parallel sort or a wrong descending-bits transform
  // shows up here immediately.
  const auto inst = Instance::make("er", 400, 9.0, 2, 77);
  std::vector<double> w(inst.g.num_edges());
  for (std::size_t e = 0; e < w.size(); ++e) {
    w[e] = static_cast<double>(e % 7) / 7.0;
  }
  const EdgeWeights ref(inst.g, w);
  for (const std::size_t ps : kPoolSizes) {
    util::ThreadPool pool(ps);
    const EdgeWeights par(inst.g, w, &pool);
    expect_identical(ref, par, ps);
  }
}

TEST(ParallelWeightsEquality, ZeroAndNegativeZeroCollapse) {
  // The old comparator ordered by `>`, under which -0.0 and +0.0 tie and the
  // (u, v) tiebreak decides. The bit-key transform must reproduce that: a
  // graph whose weights mix the two zero signs still sorts identically.
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(2, 3);
  const auto g = std::move(b).build();
  const std::vector<double> w = {0.0, -0.0, -0.0, 0.0};
  const EdgeWeights ref(g, w);
  for (const std::size_t ps : kPoolSizes) {
    util::ThreadPool pool(ps);
    const EdgeWeights par(g, w, &pool);
    expect_identical(ref, par, ps);
  }
}

TEST(ParallelProfileEquality, FromScoresMatchesSequential) {
  util::Rng rng(5);
  const auto g = graph::by_name("ws", 200, 8.0, rng);
  const auto quotas = uniform_quotas(g, 3);
  const auto score = [](graph::NodeId i, graph::NodeId j) {
    return static_cast<double>((i * 2654435761u) ^ (j * 40503u));
  };
  const auto ref = PreferenceProfile::from_scores(g, quotas, score);
  for (const std::size_t ps : kPoolSizes) {
    util::ThreadPool pool(ps);
    const auto par = PreferenceProfile::from_scores(g, quotas, score, &pool);
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      const auto a = ref.list(v);
      const auto b = par.list(v);
      ASSERT_EQ(std::vector<graph::NodeId>(a.begin(), a.end()),
                std::vector<graph::NodeId>(b.begin(), b.end()))
          << "node " << v << " pool=" << ps;
      for (const auto& adj : g.neighbors(v)) {
        ASSERT_EQ(ref.rank(v, adj.neighbor), par.rank(v, adj.neighbor));
      }
    }
  }
}

TEST(ParallelGraphEquality, BuildMatchesSequentialCsr) {
  util::Rng rng(11);
  const auto ref = graph::by_name("ba", 300, 10.0, rng);
  for (const std::size_t ps : kPoolSizes) {
    graph::GraphBuilder b(ref.num_nodes());
    for (const auto& e : ref.edges()) b.add_edge(e.u, e.v);
    util::ThreadPool pool(ps);
    const auto par = std::move(b).build(&pool);
    ASSERT_EQ(ref.edges(), par.edges());
    for (graph::NodeId v = 0; v < ref.num_nodes(); ++v) {
      const auto a = ref.neighbors(v);
      const auto c = par.neighbors(v);
      ASSERT_EQ(a.size(), c.size()) << "node " << v << " pool=" << ps;
      for (std::size_t i = 0; i < a.size(); ++i) {
        ASSERT_EQ(a[i].neighbor, c[i].neighbor);
        ASSERT_EQ(a[i].edge, c[i].edge);
      }
    }
  }
}

}  // namespace
}  // namespace overmatch::prefs
