#include "prefs/preference_profile.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace overmatch::prefs {
namespace {

using graph::Graph;
using graph::GraphBuilder;

Graph triangle() {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  return std::move(b).build();
}

TEST(UniformQuotas, ClampsToDegree) {
  const Graph g = graph::star(5);  // hub degree 4, leaves degree 1
  const auto q = uniform_quotas(g, 3);
  EXPECT_EQ(q[0], 3u);
  for (graph::NodeId v = 1; v < 5; ++v) EXPECT_EQ(q[v], 1u);
}

TEST(UniformQuotas, IsolatedNodeGetsOne) {
  const Graph g = GraphBuilder(2).build();
  const auto q = uniform_quotas(g, 4);
  EXPECT_EQ(q[0], 1u);
}

TEST(RandomQuotas, WithinRange) {
  util::Rng rng(1);
  const Graph g = graph::complete(10);
  const auto q = random_quotas(g, 5, rng);
  for (const auto b : q) {
    EXPECT_GE(b, 1u);
    EXPECT_LE(b, 5u);
  }
}

TEST(PreferenceProfile, FromListsRanks) {
  const Graph g = triangle();
  auto p = PreferenceProfile::from_lists(g, uniform_quotas(g, 1),
                                         {{2, 1}, {0, 2}, {1, 0}});
  EXPECT_EQ(p.rank(0, 2), 0u);
  EXPECT_EQ(p.rank(0, 1), 1u);
  EXPECT_EQ(p.rank(1, 0), 0u);
  EXPECT_EQ(p.rank(2, 1), 0u);
  EXPECT_TRUE(p.prefers(0, 2, 1));
  EXPECT_FALSE(p.prefers(0, 1, 2));
}

TEST(PreferenceProfile, FromScoresOrdersDescending) {
  const Graph g = triangle();
  auto p = PreferenceProfile::from_scores(
      g, uniform_quotas(g, 2),
      [](graph::NodeId, graph::NodeId j) { return static_cast<double>(j); });
  // Everyone prefers higher node ids.
  EXPECT_EQ(p.rank(0, 2), 0u);
  EXPECT_EQ(p.rank(0, 1), 1u);
  EXPECT_EQ(p.rank(1, 2), 0u);
}

TEST(PreferenceProfile, ScoreTiesBrokenByNodeId) {
  const Graph g = triangle();
  auto p = PreferenceProfile::from_scores(
      g, uniform_quotas(g, 1), [](graph::NodeId, graph::NodeId) { return 1.0; });
  EXPECT_EQ(p.rank(0, 1), 0u);  // lower id wins ties
  EXPECT_EQ(p.rank(0, 2), 1u);
  EXPECT_EQ(p.rank(2, 0), 0u);
}

TEST(PreferenceProfile, RandomIsPermutationOfNeighborhood) {
  util::Rng rng(7);
  const Graph g = graph::complete(8);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 3), rng);
  for (graph::NodeId v = 0; v < 8; ++v) {
    const auto list = p.list(v);
    ASSERT_EQ(list.size(), 7u);
    std::vector<bool> seen(8, false);
    for (const auto u : list) {
      EXPECT_NE(u, v);
      EXPECT_FALSE(seen[u]);
      seen[u] = true;
    }
    // Rank lookups are consistent with positions.
    for (Rank r = 0; r < list.size(); ++r) EXPECT_EQ(p.rank(v, list[r]), r);
  }
}

TEST(PreferenceProfile, QuotaClampedToListLength) {
  const Graph g = graph::path(3);  // middle node degree 2, ends degree 1
  auto p = PreferenceProfile::from_scores(
      g, Quotas{5, 5, 5}, [](graph::NodeId, graph::NodeId j) { return -double(j); });
  EXPECT_EQ(p.quota(0), 1u);
  EXPECT_EQ(p.quota(1), 2u);
  EXPECT_EQ(p.quota(2), 1u);
}

TEST(PreferenceProfile, MaxQuota) {
  const Graph g = graph::complete(5);
  auto p = PreferenceProfile::from_scores(
      g, Quotas{1, 2, 3, 1, 2}, [](graph::NodeId, graph::NodeId j) { return double(j); });
  EXPECT_EQ(p.max_quota(), 3u);
}

TEST(PreferenceProfile, ListSizeIsDegree) {
  const Graph g = graph::star(4);
  auto p = PreferenceProfile::from_scores(
      g, uniform_quotas(g, 2), [](graph::NodeId, graph::NodeId j) { return double(j); });
  EXPECT_EQ(p.list_size(0), 3u);
  EXPECT_EQ(p.list_size(1), 1u);
}

TEST(PreferenceProfileDeathTest, RankOfNonNeighborAborts) {
  const Graph g = graph::path(3);
  auto p = PreferenceProfile::from_scores(
      g, uniform_quotas(g, 1), [](graph::NodeId, graph::NodeId j) { return double(j); });
  EXPECT_DEATH((void)p.rank(0, 2), "non-neighbour");
}

TEST(PreferenceProfileDeathTest, ListWithNonNeighborAborts) {
  const Graph g = graph::path(3);
  EXPECT_DEATH((void)PreferenceProfile::from_lists(g, uniform_quotas(g, 1),
                                                   {{2}, {0, 2}, {1}}),
               "non-neighbour");
}

TEST(PreferenceProfileDeathTest, DuplicateInListAborts) {
  const Graph g = triangle();
  EXPECT_DEATH((void)PreferenceProfile::from_lists(g, uniform_quotas(g, 1),
                                                   {{1, 1}, {0, 2}, {1, 0}}),
               "duplicate");
}

TEST(PreferenceProfileDeathTest, IncompleteListAborts) {
  const Graph g = triangle();
  EXPECT_DEATH((void)PreferenceProfile::from_lists(g, uniform_quotas(g, 1),
                                                   {{1}, {0, 2}, {1, 0}}),
               "whole neighbourhood");
}

}  // namespace
}  // namespace overmatch::prefs
