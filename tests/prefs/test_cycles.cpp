#include "prefs/cycles.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace overmatch::prefs {
namespace {

using graph::Graph;
using graph::NodeId;

/// The canonical destabilizing instance: a triangle where each node prefers
/// its clockwise neighbour — 0 prefers 1, 1 prefers 2, 2 prefers 0.
PreferenceProfile cyclic_triangle(Graph& g) {
  g = graph::cycle(3);
  return PreferenceProfile::from_lists(g, uniform_quotas(g, 1),
                                       {{1, 2}, {2, 0}, {0, 1}});
}

TEST(RankCycle, DetectsCyclicTriangle) {
  Graph g;
  auto p = cyclic_triangle(g);
  const auto cycle = find_rank_cycle(p);
  ASSERT_TRUE(cycle.has_value());
  EXPECT_GE(cycle->size(), 3u);
  // Verify the witness: every node strictly prefers its successor over its
  // predecessor.
  const auto& c = *cycle;
  for (std::size_t i = 0; i < c.size(); ++i) {
    const NodeId prev = c[(i + c.size() - 1) % c.size()];
    const NodeId cur = c[i];
    const NodeId next = c[(i + 1) % c.size()];
    EXPECT_TRUE(p.prefers(cur, next, prev));
  }
}

TEST(RankCycle, AbsentUnderGlobalScores) {
  // A globally consistent metric (same score function, symmetric) admits no
  // rank cycle: preferences follow one global potential.
  static Graph g = graph::complete(6);
  auto p = PreferenceProfile::from_scores(
      g, uniform_quotas(g, 2),
      [](NodeId i, NodeId j) { return -std::abs(double(i) - double(j)); });
  // Distances are symmetric; strictness comes from the id tie-break, which
  // can itself create cycles in rare constructions — verify none here.
  const auto cycle = find_rank_cycle(p);
  if (cycle.has_value()) {
    // If a cycle is reported it must at least be a valid witness.
    const auto& c = *cycle;
    for (std::size_t i = 0; i < c.size(); ++i) {
      const NodeId prev = c[(i + c.size() - 1) % c.size()];
      const NodeId cur = c[i];
      const NodeId next = c[(i + 1) % c.size()];
      EXPECT_TRUE(p.prefers(cur, next, prev));
    }
  }
}

TEST(RankCycle, RandomProfilesOftenCyclic) {
  // Cyclic preferences are the *common* case for random lists — this is the
  // paper's motivation for abandoning strict stabilization.
  util::Rng rng(3);
  static Graph g = graph::complete(8);
  int cyclic = 0;
  for (int trial = 0; trial < 20; ++trial) {
    auto p = PreferenceProfile::random(g, uniform_quotas(g, 2), rng);
    if (find_rank_cycle(p).has_value()) ++cyclic;
  }
  EXPECT_GT(cyclic, 10);
}

TEST(WeightCycle, NeverExistsForSymmetricWeights) {
  // Lemma 5 as an executable property: the eq.-9 weight order admits no
  // communication cycle, even when the raw ranks do.
  util::Rng rng(5);
  static Graph g;
  for (int trial = 0; trial < 20; ++trial) {
    g = graph::erdos_renyi(10, 0.5, rng);
    auto p = PreferenceProfile::random(g, uniform_quotas(g, 3), rng);
    const auto w = paper_weights(p);
    EXPECT_FALSE(find_weight_cycle(w).has_value());
  }
}

TEST(WeightCycle, CyclicTriangleRanksButNoWeightCycle) {
  Graph g;
  auto p = cyclic_triangle(g);
  ASSERT_TRUE(find_rank_cycle(p).has_value());
  const auto w = paper_weights(p);
  EXPECT_FALSE(find_weight_cycle(w).has_value());
}

TEST(RankCycle, NoCycleInTree) {
  // Trees admit no cycles at all, so no rank cycle regardless of lists.
  util::Rng rng(7);
  static Graph g = graph::star(7);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 2), rng);
  EXPECT_FALSE(find_rank_cycle(p).has_value());
}

}  // namespace
}  // namespace overmatch::prefs
