#include "prefs/truncation.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace overmatch::prefs {
namespace {

using graph::Graph;
using graph::NodeId;

struct Fixture {
  Graph g;
  std::unique_ptr<PreferenceProfile> p;

  explicit Fixture(std::uint64_t seed, std::size_t n = 20) {
    util::Rng rng(seed);
    g = graph::erdos_renyi(n, 0.5, rng);
    p = std::make_unique<PreferenceProfile>(
        PreferenceProfile::random(g, uniform_quotas(g, 3), rng));
  }
};

TEST(Truncation, LargeKKeepsEverything) {
  Fixture f(1);
  const auto t = truncate_candidates(*f.p, f.g.max_degree(), TruncationMode::kEither);
  EXPECT_EQ(t.num_edges(), f.g.num_edges());
}

TEST(Truncation, MutualSubsetOfEither) {
  Fixture f(2);
  for (const std::size_t k : {1u, 2u, 4u}) {
    const auto either = truncate_candidates(*f.p, k, TruncationMode::kEither);
    const auto mutual = truncate_candidates(*f.p, k, TruncationMode::kMutual);
    EXPECT_LE(mutual.num_edges(), either.num_edges());
    for (graph::EdgeId e = 0; e < mutual.num_edges(); ++e) {
      const auto& edge = mutual.edge(e);
      EXPECT_TRUE(either.has_edge(edge.u, edge.v));
    }
  }
}

TEST(Truncation, MonotoneInK) {
  Fixture f(3);
  std::size_t prev = 0;
  for (std::size_t k = 1; k <= f.g.max_degree(); ++k) {
    const auto t = truncate_candidates(*f.p, k, TruncationMode::kEither);
    EXPECT_GE(t.num_edges(), prev);
    prev = t.num_edges();
  }
  EXPECT_EQ(prev, f.g.num_edges());
}

TEST(Truncation, KeptEdgesAreActuallyShortlisted) {
  Fixture f(4);
  const std::size_t k = 2;
  const auto t = truncate_candidates(*f.p, k, TruncationMode::kEither);
  for (graph::EdgeId e = 0; e < t.num_edges(); ++e) {
    const auto& edge = t.edge(e);
    EXPECT_TRUE(f.p->rank(edge.u, edge.v) < k || f.p->rank(edge.v, edge.u) < k);
  }
  // And dropped edges are shortlisted by neither.
  for (graph::EdgeId e = 0; e < f.g.num_edges(); ++e) {
    const auto& edge = f.g.edge(e);
    if (t.has_edge(edge.u, edge.v)) continue;
    EXPECT_GE(f.p->rank(edge.u, edge.v), k);
    EXPECT_GE(f.p->rank(edge.v, edge.u), k);
  }
}

TEST(Truncation, EitherWithKOneKeepsEveryTopChoice) {
  Fixture f(5);
  const auto t = truncate_candidates(*f.p, 1, TruncationMode::kEither);
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
    if (f.g.degree(v) == 0) continue;
    const NodeId top = f.p->list(v)[0];
    EXPECT_TRUE(t.has_edge(v, top));
  }
}

TEST(Truncation, PreservesNodeCount) {
  Fixture f(6);
  const auto t = truncate_candidates(*f.p, 1, TruncationMode::kMutual);
  EXPECT_EQ(t.num_nodes(), f.g.num_nodes());
}

}  // namespace
}  // namespace overmatch::prefs
