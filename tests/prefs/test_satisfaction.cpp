#include "prefs/satisfaction.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace overmatch::prefs {
namespace {

using graph::Graph;
using graph::NodeId;

/// Node 0 in K8 with quota 4 and identity preferences (node j has rank j−1):
/// the reconstruction of the paper's Figure 1 at smaller scale happens in the
/// dedicated test below.
PreferenceProfile identity_k(std::size_t n, std::uint32_t b) {
  static Graph g;  // keep alive across the returned profile
  g = graph::complete(n);
  return PreferenceProfile::from_scores(
      g, uniform_quotas(g, b),
      [](NodeId, NodeId j) { return -static_cast<double>(j); });
}

TEST(Satisfaction, EmptyConnectionsIsZero) {
  auto p = identity_k(6, 3);
  EXPECT_DOUBLE_EQ(satisfaction(p, 0, {}), 0.0);
  EXPECT_DOUBLE_EQ(satisfaction_modified(p, 0, {}), 0.0);
}

TEST(Satisfaction, TopQuotaConnectionsGiveOne) {
  auto p = identity_k(6, 3);
  // Node 0's top-3: nodes 1, 2, 3 (scores −1 > −2 > −3 ... wait: −1 is the
  // largest, so node 1 has rank 0). Top-3 connections = full satisfaction.
  const std::vector<NodeId> conns{1, 2, 3};
  EXPECT_NEAR(satisfaction(p, 0, conns), 1.0, 1e-12);
}

TEST(Satisfaction, PaperFigure1Reconstruction) {
  // Figure 1: b=4, L=7, connections at preference ranks {0,1,3,5} → 0.893.
  static Graph g = graph::star(8);  // hub 0 with 7 leaves
  auto p = PreferenceProfile::from_lists(
      g, Quotas{4, 1, 1, 1, 1, 1, 1, 1},
      {{1, 2, 3, 4, 5, 6, 7}, {0}, {0}, {0}, {0}, {0}, {0}, {0}});
  // Ranks: node 1→0, 2→1, 4→3, 6→5 (the paper's 2, 5, 32, 28 stand-ins).
  const std::vector<NodeId> conns{1, 2, 4, 6};
  const double s = satisfaction(p, 0, conns);
  EXPECT_NEAR(s, 25.0 / 28.0, 1e-12);
  EXPECT_NEAR(s, 0.893, 5e-4);
}

TEST(Satisfaction, MatchesClosedFormAgainstIncrements) {
  auto p = identity_k(8, 4);
  const std::vector<NodeId> conns{2, 5, 7, 3};
  // Incremental accumulation (eq. 4, adding best-first) equals eq. 1.
  std::vector<NodeId> sorted = conns;
  std::sort(sorted.begin(), sorted.end(), [&p](NodeId a, NodeId b) {
    return p.rank(0, a) < p.rank(0, b);
  });
  double inc = 0.0;
  for (std::uint32_t c = 0; c < sorted.size(); ++c) inc += delta_s(p, 0, sorted[c], c);
  EXPECT_NEAR(inc, satisfaction(p, 0, conns), 1e-12);
}

TEST(Satisfaction, OrderOfConnectionSpanIrrelevant) {
  auto p = identity_k(8, 4);
  EXPECT_DOUBLE_EQ(satisfaction(p, 0, std::vector<NodeId>{2, 5, 7, 3}),
                   satisfaction(p, 0, std::vector<NodeId>{7, 2, 3, 5}));
}

TEST(Satisfaction, AlwaysInUnitInterval) {
  util::Rng rng(3);
  static Graph g = graph::complete(9);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 4), rng);
  // All 4-subsets of node 0's neighbours.
  std::vector<NodeId> nbrs{1, 2, 3, 4, 5, 6, 7, 8};
  for (std::size_t a = 0; a < 8; ++a) {
    for (std::size_t b = a + 1; b < 8; ++b) {
      for (std::size_t c = b + 1; c < 8; ++c) {
        for (std::size_t d = c + 1; d < 8; ++d) {
          const std::vector<NodeId> conns{nbrs[a], nbrs[b], nbrs[c], nbrs[d]};
          const double s = satisfaction(p, 0, conns);
          EXPECT_GE(s, 0.0);
          EXPECT_LE(s, 1.0 + 1e-12);
        }
      }
    }
  }
}

TEST(Satisfaction, WorstCaseBottomOfList) {
  // b connections drawn from the bottom of the list: S = (b+1)/(2L) · ... —
  // verify against the closed form used in Lemma 1's proof:
  // static part = (b+1)/(2L), dynamic part = (b−1)/(2L).
  const std::uint32_t b = 3;
  auto p = identity_k(10, b);  // L = 9
  const std::vector<NodeId> conns{7, 8, 9};  // ranks 6, 7, 8 (bottom three)
  const auto parts = satisfaction_parts(p, 0, conns);
  const double L = 9.0;
  EXPECT_NEAR(parts.static_part, (b + 1.0) / (2.0 * L), 1e-12);
  EXPECT_NEAR(parts.dynamic_part, (b - 1.0) / (2.0 * L), 1e-12);
  EXPECT_NEAR(parts.total(), satisfaction(p, 0, conns), 1e-12);
}

TEST(DeltaS, StaticPlusDynamicEqualsTotal) {
  auto p = identity_k(7, 3);
  for (std::uint32_t c = 0; c < 3; ++c) {
    const double total = delta_s(p, 0, 4, c);
    const double split = delta_s_static(p, 0, 4) + delta_s_dynamic(p, 0, c);
    EXPECT_NEAR(total, split, 1e-15);
  }
}

TEST(DeltaS, StaticIsPositiveAndMonotoneInRank) {
  auto p = identity_k(7, 3);
  // Node 0's list: 1 (rank 0) … 6 (rank 5); static ΔS̄ strictly decreases.
  double prev = 1e9;
  for (NodeId j = 1; j < 7; ++j) {
    const double s = delta_s_static(p, 0, j);
    EXPECT_GT(s, 0.0);
    EXPECT_LT(s, prev);
    prev = s;
  }
}

TEST(DeltaS, DynamicGrowsWithConnections) {
  auto p = identity_k(7, 3);
  EXPECT_DOUBLE_EQ(delta_s_dynamic(p, 0, 0), 0.0);
  EXPECT_LT(delta_s_dynamic(p, 0, 1), delta_s_dynamic(p, 0, 2));
}

TEST(SatisfactionModified, EqualsStaticSum) {
  auto p = identity_k(9, 4);
  const std::vector<NodeId> conns{2, 4, 8};
  double stat = 0.0;
  for (const NodeId j : conns) stat += delta_s_static(p, 0, j);
  EXPECT_NEAR(satisfaction_modified(p, 0, conns), stat, 1e-12);
}

TEST(SatisfactionModified, NeverExceedsOriginal) {
  // S̄ drops the (non-negative) dynamic part, so S̄ ≤ S for the same set.
  util::Rng rng(5);
  static Graph g = graph::complete(8);
  auto p = PreferenceProfile::random(g, uniform_quotas(g, 3), rng);
  const std::vector<NodeId> conns{1, 4, 6};
  EXPECT_LE(satisfaction_modified(p, 0, conns), satisfaction(p, 0, conns) + 1e-12);
}

TEST(SatisfactionDeathTest, TooManyConnectionsAborts) {
  auto p = identity_k(6, 2);
  EXPECT_DEATH((void)satisfaction(p, 0, std::vector<NodeId>{1, 2, 3}), "quota");
}

TEST(SatisfactionDeathTest, DuplicateConnectionAborts) {
  auto p = identity_k(6, 3);
  EXPECT_DEATH((void)satisfaction(p, 0, std::vector<NodeId>{1, 1}), "duplicate");
}

}  // namespace
}  // namespace overmatch::prefs
