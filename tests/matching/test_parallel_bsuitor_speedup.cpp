// Scaling gate for the lock-free parallel b-Suitor (ISSUE 6 acceptance):
// at m ≈ 10⁶ the 4-thread run must be ≥ 2× faster than 1-thread, and 8
// threads must not regress against 4. Own binary so the timed section is not
// interleaved with other suites.
//
// The gate only means something with real cores: on hosts with fewer than 4
// hardware threads (the reference container is single-core, DESIGN.md §7)
// the test SKIPs rather than measuring scheduler noise. Bit-identity of the
// outputs is asserted unconditionally — it is the cheap half of the
// guarantee and holds on any host.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <thread>
#include <vector>

#include "matching/bsuitor.hpp"
#include "matching/parallel_bsuitor.hpp"
#include "tests/matching/common.hpp"
#include "util/thread_pool.hpp"

namespace overmatch::matching {
namespace {

std::uint64_t median_run_ms(const prefs::EdgeWeights& w, const Quotas& quotas,
                            std::size_t threads, const Matching& reference) {
  constexpr int kReps = 3;
  std::vector<std::uint64_t> ms;
  ms.reserve(kReps);
  for (int rep = 0; rep < kReps; ++rep) {
    const auto t0 = std::chrono::steady_clock::now();
    const auto m = parallel_b_suitor(w, quotas, threads);
    const auto t1 = std::chrono::steady_clock::now();
    EXPECT_TRUE(reference.same_edges(m)) << "threads=" << threads;
    ms.push_back(static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::milliseconds>(t1 - t0)
            .count()));
  }
  std::sort(ms.begin(), ms.end());
  return ms[kReps / 2];
}

TEST(ParallelBSuitorSpeedup, FourThreadsTwiceAsFastAsOne) {
  if (std::thread::hardware_concurrency() < 4) {
    // Run the cheap half — bit-identity across the ladder — on a mid-size
    // instance, then skip the timing so a single-core host doesn't spend a
    // minute measuring scheduler noise.
    auto small = testing::Instance::random("er", 40'000, 8.0, 3, 42);
    const auto& sq = small->profile->quotas();
    const auto ref = b_suitor(*small->weights, sq);
    for (const std::size_t threads : {2u, 4u, 8u}) {
      const auto m = parallel_b_suitor(*small->weights, sq, threads);
      ASSERT_TRUE(ref.same_edges(m)) << "threads=" << threads;
    }
    GTEST_SKIP() << "needs >= 4 hardware threads to measure scaling "
                 << "(hardware_concurrency="
                 << std::thread::hardware_concurrency() << ")";
  }

  auto inst = testing::Instance::random("er", 250'000, 8.0, 3, 42);
  const auto& quotas = inst->profile->quotas();
  const auto reference = b_suitor(*inst->weights, quotas);

  const std::uint64_t t1 = median_run_ms(*inst->weights, quotas, 1, reference);
  const std::uint64_t t4 = median_run_ms(*inst->weights, quotas, 4, reference);
  const std::uint64_t t8 = median_run_ms(*inst->weights, quotas, 8, reference);

  EXPECT_GE(static_cast<double>(t1), 2.0 * static_cast<double>(t4))
      << "4-thread speedup below 2x: t1=" << t1 << "ms t4=" << t4 << "ms";
  // 8 threads may not beat 4 (memory-bound tail), but must not regress
  // beyond noise.
  EXPECT_LE(static_cast<double>(t8), 1.10 * static_cast<double>(t4))
      << "8-thread regression over 4: t4=" << t4 << "ms t8=" << t8 << "ms";
}

}  // namespace
}  // namespace overmatch::matching
