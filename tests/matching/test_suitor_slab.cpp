#include "matching/suitor_slab.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "graph/graph.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

/// A star: node 0 is the hub, edge i connects 0 — (i+1).
graph::Graph star(std::size_t leaves) {
  graph::GraphBuilder b(leaves + 1);
  for (std::size_t i = 0; i < leaves; ++i) {
    b.add_edge(0, static_cast<NodeId>(i + 1));
  }
  return std::move(b).build();
}

TEST(SuitorSlab, PackedOrderIsWeightOrder) {
  const graph::Graph g = star(3);
  const prefs::EdgeWeights w(g, std::vector<double>{1.0, 5.0, 2.0});
  const SuitorSlab slab(w, Quotas(4, 1));
  // Heavier edge = smaller key = smaller packed word; kEmpty is weakest.
  EXPECT_LT(slab.word_of(1), slab.word_of(2));
  EXPECT_LT(slab.word_of(2), slab.word_of(0));
  EXPECT_LT(slab.word_of(0), SuitorSlab::kEmpty);
  for (EdgeId e = 0; e < 3; ++e) {
    EXPECT_EQ(SuitorSlab::edge_of(slab.word_of(e)), e);
  }
}

TEST(SuitorSlab, CapacityIsQuotaCappedByDegree) {
  const graph::Graph g = star(4);
  const prefs::EdgeWeights w(g, std::vector<double>{4.0, 3.0, 2.0, 1.0});
  const SuitorSlab slab(w, Quotas(5, 2));
  EXPECT_EQ(slab.capacity(0), 2u);  // hub: min(2, 4)
  EXPECT_EQ(slab.capacity(1), 1u);  // leaf: min(2, 1)
}

TEST(SuitorSlab, AdmitDisplacesWeakestAndRejectsLighter) {
  const graph::Graph g = star(4);
  const prefs::EdgeWeights w(g, std::vector<double>{4.0, 3.0, 2.0, 1.0});
  SuitorSlab slab(w, Quotas(5, 2));

  // Fill the hub with the two lightest bids.
  EXPECT_TRUE(slab.admit_if(0, slab.word_of(3)).accepted);
  EXPECT_TRUE(slab.admit_if(0, slab.word_of(2)).accepted);
  EXPECT_TRUE(slab.full(0));
  EXPECT_EQ(slab.count(0), 2u);
  EXPECT_EQ(SuitorSlab::edge_of(slab.weakest(0)), 3u);

  // A heavier bid displaces the weakest; re-offering a held bid is rejected.
  const auto res = slab.admit_if(0, slab.word_of(0));
  EXPECT_TRUE(res.accepted);
  EXPECT_EQ(SuitorSlab::edge_of(res.displaced), 3u);
  EXPECT_FALSE(slab.holds(0, 3));
  EXPECT_TRUE(slab.holds(0, 0));
  EXPECT_TRUE(slab.holds(0, 2));
  EXPECT_FALSE(slab.admits(0, slab.word_of(3)));

  // Erase reopens a slot.
  slab.erase(0, 2);
  EXPECT_FALSE(slab.full(0));
  EXPECT_TRUE(slab.admits(0, slab.word_of(3)));
  const auto back = slab.admit_if(0, slab.word_of(3));
  EXPECT_TRUE(back.accepted);
  EXPECT_EQ(back.displaced, SuitorSlab::kEmpty);  // free slot, no loser
}

TEST(SuitorSlab, QuotaZeroNodeAdmitsNothing) {
  const graph::Graph g = star(2);
  const prefs::EdgeWeights w(g, std::vector<double>{2.0, 1.0});
  SuitorSlab slab(w, Quotas(3, 0));
  EXPECT_EQ(slab.capacity(0), 0u);
  EXPECT_TRUE(slab.full(0));
  EXPECT_FALSE(slab.admits(0, slab.word_of(0)));
  EXPECT_FALSE(slab.admit_if(0, slab.word_of(0)).accepted);
  EXPECT_FALSE(slab.try_admit(0, slab.word_of(0)).accepted);
  EXPECT_EQ(slab.weakest(0), SuitorSlab::kEmpty);
}

TEST(SuitorSlab, ForEachVisitsExactlyHeldBids) {
  const graph::Graph g = star(5);
  const prefs::EdgeWeights w(g, std::vector<double>{5.0, 4.0, 3.0, 2.0, 1.0});
  SuitorSlab slab(w, Quotas(6, 3));
  for (const EdgeId e : {4, 1, 2}) {
    ASSERT_TRUE(slab.admit_if(0, slab.word_of(e)).accepted);
  }
  std::vector<EdgeId> seen;
  slab.for_each(0, [&seen](EdgeId e) { seen.push_back(e); });
  std::sort(seen.begin(), seen.end());
  EXPECT_EQ(seen, (std::vector<EdgeId>{1, 2, 4}));
}

/// Concurrency hammer (the TSan target for the lock-free admission path):
/// many threads race try_admit over one hub node. Because slots are monotone
/// and admission is scan-max-then-CAS, the final slot set must be exactly
/// the capacity(v) heaviest words ever offered — deterministically, for any
/// interleaving. Run under -DOVERMATCH_SANITIZE=thread to make this the race
/// detector for SuitorSlab.
TEST(SuitorSlabHammer, ConcurrentAdmissionsKeepHeaviestBids) {
  constexpr std::size_t kLeaves = 4096;
  constexpr std::uint32_t kQuota = 7;
  constexpr std::size_t kThreads = 8;

  const graph::Graph g = star(kLeaves);
  std::vector<double> weights(kLeaves);
  // Dense ties: only 5 distinct weights, so the (u, v) tie-break inside the
  // key order does real work.
  for (std::size_t i = 0; i < kLeaves; ++i) {
    weights[i] = static_cast<double>(i % 5);
  }
  const prefs::EdgeWeights w(g, weights);

  for (int round = 0; round < 3; ++round) {
    SuitorSlab slab(w, Quotas(kLeaves + 1, kQuota));
    std::vector<std::thread> threads;
    threads.reserve(kThreads);
    for (std::size_t t = 0; t < kThreads; ++t) {
      threads.emplace_back([&slab, t] {
        // Interleaved partition: thread t offers edges t, t+kThreads, ...
        for (std::size_t e = t; e < kLeaves; e += kThreads) {
          slab.try_admit(0, slab.word_of(static_cast<EdgeId>(e)));
        }
      });
    }
    for (auto& th : threads) th.join();

    std::vector<SuitorSlab::Word> expect;
    expect.reserve(kLeaves);
    for (EdgeId e = 0; e < kLeaves; ++e) expect.push_back(slab.word_of(e));
    std::sort(expect.begin(), expect.end());
    expect.resize(kQuota);  // the heaviest (smallest) kQuota words

    std::vector<SuitorSlab::Word> got;
    slab.for_each(0, [&](EdgeId e) { got.push_back(slab.word_of(e)); });
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got, expect) << "round " << round;
  }
}

}  // namespace
}  // namespace overmatch::matching
