#include "matching/parallel_bsuitor.hpp"
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include "matching/bsuitor.hpp"
#include "matching/lic.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"
#include "util/thread_pool.hpp"

namespace overmatch::matching {
namespace {

TEST(ParallelBSuitor, MatchesSequentialOnHandInstance) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const graph::Graph g = std::move(b).build();
  const prefs::EdgeWeights w(g, std::vector<double>{1.0, 5.0, 2.0});
  const auto seq = b_suitor(w, Quotas(4, 1));
  const auto par = parallel_b_suitor(w, Quotas(4, 1), 2);
  EXPECT_TRUE(seq.same_edges(par));
}

class ParallelBSuitorEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint32_t,
                                                 std::size_t>> {};

TEST_P(ParallelBSuitorEquivalence, IdenticalToSequentialBSuitor) {
  const auto [topology, quota, threads] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto inst = testing::Instance::random(topology, 40, 6.0, quota, seed * 31);
    const auto seq = b_suitor(*inst->weights, inst->profile->quotas());
    const auto par =
        parallel_b_suitor(*inst->weights, inst->profile->quotas(), threads);
    EXPECT_TRUE(seq.same_edges(par))
        << topology << " b=" << quota << " threads=" << threads << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelBSuitorEquivalence,
    ::testing::Combine(::testing::Values("er", "ba", "ws"),
                       ::testing::Values<std::uint32_t>(1, 2, 4),
                       ::testing::Values<std::size_t>(1, 2, 4, 8)));

// Bit-identity matrix with *dense-tie* weights: only a handful of distinct
// weight values, so almost every comparison is decided by the (u, v)
// tie-break inside the key order — the regime where an engine that compared
// raw weights (instead of packed keys) would diverge between interleavings.
// Quotas cover 1, 3 and heterogeneous; threads go to 16 (2× the sweep above)
// to force claim contention and cross-block steals on small blocks.
class ParallelBSuitorTieMatrix
    : public ::testing::TestWithParam<
          std::tuple<const char*, std::uint32_t, std::size_t>> {};

TEST_P(ParallelBSuitorTieMatrix, BitIdenticalUnderDenseTies) {
  const auto [topology, quota, threads] = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    const bool hetero = quota == 0;  // sentinel: random quotas in [1, 4]
    auto inst = hetero
                    ? testing::Instance::random_quotas(topology, 48, 7.0, 4,
                                                       seed * 131)
                    : testing::Instance::random(topology, 48, 7.0, quota,
                                                seed * 131);
    std::vector<double> ties(inst->g.num_edges());
    for (std::size_t e = 0; e < ties.size(); ++e) {
      ties[e] = static_cast<double>(e % 3);
    }
    const prefs::EdgeWeights w(inst->g, ties);
    const auto& quotas = inst->profile->quotas();
    const auto seq = b_suitor(w, quotas);
    const auto par = parallel_b_suitor(w, quotas, threads);
    EXPECT_TRUE(seq.same_edges(par))
        << topology << " b=" << quota << " threads=" << threads
        << " seed=" << seed;
    EXPECT_TRUE(is_valid_bmatching(par));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelBSuitorTieMatrix,
    ::testing::Combine(::testing::Values("er", "ba", "ws"),
                       ::testing::Values<std::uint32_t>(1, 3, 0),
                       ::testing::Values<std::size_t>(1, 2, 4, 8, 16)));

TEST(ParallelBSuitor, PoolOverloadMatchesTransientThreads) {
  util::ThreadPool pool(3);  // 4 workers total: pool + calling thread
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto inst = testing::Instance::random_quotas("ba", 80, 6.0, 3, seed * 17);
    const auto seq = b_suitor(*inst->weights, inst->profile->quotas());
    const auto par =
        parallel_b_suitor(*inst->weights, inst->profile->quotas(), pool);
    EXPECT_TRUE(seq.same_edges(par)) << "seed=" << seed;
  }
}

TEST(ParallelBSuitor, HeterogeneousQuotasMatchLicGlobal) {
  // With the unique total order the suitor fixed point is the locally
  // heaviest greedy matching — cross-check against the LIC engine too.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto inst = testing::Instance::random_quotas("geo", 36, 5.0, 4, seed + 2);
    const auto lic = lic_global(*inst->weights, inst->profile->quotas());
    const auto par =
        parallel_b_suitor(*inst->weights, inst->profile->quotas(), 3);
    EXPECT_TRUE(lic.same_edges(par));
    EXPECT_TRUE(is_valid_bmatching(par));
  }
}

TEST(ParallelBSuitor, EmptyGraph) {
  const graph::Graph g = graph::GraphBuilder(4).build();
  const prefs::EdgeWeights w(g, {});
  const auto m = parallel_b_suitor(w, Quotas(4, 2), 4);
  EXPECT_EQ(m.size(), 0u);
}

TEST(ParallelBSuitor, ReportsWorkCounters) {
  auto inst = testing::Instance::random("er", 60, 8.0, 3, 11);
  obs::Registry registry;
  const auto m =
      parallel_b_suitor(*inst->weights, inst->profile->quotas(), 2, &registry);
  const auto snap = registry.snapshot();
  EXPECT_GT(m.size(), 0u);
  EXPECT_GT(snap.counter("pbsuitor.proposals"), 0u);
  EXPECT_GE(snap.counter("pbsuitor.range_claims"), 1u);
  // Every matched edge required at least one accepted bid.
  EXPECT_GE(snap.counter("pbsuitor.proposals"), m.size());
  // bids_placed is the *net* count: accepts minus displacements, i.e. the
  // bids still held at quiescence. A matched edge is a mutual bid, so the
  // net count is at least 2 per matched edge.
  EXPECT_EQ(snap.counter("pbsuitor.bids_placed"),
            snap.counter("pbsuitor.proposals") -
                snap.counter("pbsuitor.displacements"));
  EXPECT_GE(snap.counter("pbsuitor.bids_placed"), 2 * m.size());
}

TEST(ParallelBSuitor, NetBidsPlacedIsThreadCountInvariant) {
  // The raw proposal/displacement split depends on the interleaving, but
  // their difference is fixed by the unique suitor fixed point — it must not
  // move with the thread count.
  auto inst = testing::Instance::random_quotas("ws", 120, 8.0, 3, 5);
  std::vector<std::size_t> net;
  for (const std::size_t threads : {1u, 4u, 8u}) {
    obs::Registry registry;
    const auto m = parallel_b_suitor(*inst->weights, inst->profile->quotas(),
                                     threads, &registry);
    EXPECT_GT(m.size(), 0u);
    net.push_back(registry.snapshot().counter("pbsuitor.bids_placed"));
  }
  EXPECT_EQ(net[0], net[1]);
  EXPECT_EQ(net[0], net[2]);
}

// Stress test at ≥ 8 threads on a dense-ish instance with displacement
// cascades. Under -DOVERMATCH_SANITIZE=thread this is the race detector for
// the CAS admission path, the node-state handoff and the Treiber requeue
// stacks; in a plain build it still verifies determinism of the fixed point
// across thread counts.
TEST(ParallelBSuitorStress, EightThreadsDeterministicUnderContention) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto inst = testing::Instance::random_quotas("er", 600, 16.0, 4, seed * 97);
    const auto seq = b_suitor(*inst->weights, inst->profile->quotas());
    for (const std::size_t threads : {8u, 12u}) {
      const auto par =
          parallel_b_suitor(*inst->weights, inst->profile->quotas(), threads);
      ASSERT_TRUE(seq.same_edges(par)) << "threads=" << threads << " seed=" << seed;
      ASSERT_TRUE(is_valid_bmatching(par));
    }
  }
}

}  // namespace
}  // namespace overmatch::matching
