#include "matching/parallel_bsuitor.hpp"
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include "matching/bsuitor.hpp"
#include "matching/lic.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

TEST(ParallelBSuitor, MatchesSequentialOnHandInstance) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const graph::Graph g = std::move(b).build();
  const prefs::EdgeWeights w(g, std::vector<double>{1.0, 5.0, 2.0});
  const auto seq = b_suitor(w, Quotas(4, 1));
  const auto par = parallel_b_suitor(w, Quotas(4, 1), 2);
  EXPECT_TRUE(seq.same_edges(par));
}

class ParallelBSuitorEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint32_t,
                                                 std::size_t>> {};

TEST_P(ParallelBSuitorEquivalence, IdenticalToSequentialBSuitor) {
  const auto [topology, quota, threads] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto inst = testing::Instance::random(topology, 40, 6.0, quota, seed * 31);
    const auto seq = b_suitor(*inst->weights, inst->profile->quotas());
    const auto par =
        parallel_b_suitor(*inst->weights, inst->profile->quotas(), threads);
    EXPECT_TRUE(seq.same_edges(par))
        << topology << " b=" << quota << " threads=" << threads << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelBSuitorEquivalence,
    ::testing::Combine(::testing::Values("er", "ba", "ws"),
                       ::testing::Values<std::uint32_t>(1, 2, 4),
                       ::testing::Values<std::size_t>(1, 2, 4, 8)));

TEST(ParallelBSuitor, HeterogeneousQuotasMatchLicGlobal) {
  // With the unique total order the suitor fixed point is the locally
  // heaviest greedy matching — cross-check against the LIC engine too.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto inst = testing::Instance::random_quotas("geo", 36, 5.0, 4, seed + 2);
    const auto lic = lic_global(*inst->weights, inst->profile->quotas());
    const auto par =
        parallel_b_suitor(*inst->weights, inst->profile->quotas(), 3);
    EXPECT_TRUE(lic.same_edges(par));
    EXPECT_TRUE(is_valid_bmatching(par));
  }
}

TEST(ParallelBSuitor, EmptyGraph) {
  const graph::Graph g = graph::GraphBuilder(4).build();
  const prefs::EdgeWeights w(g, {});
  const auto m = parallel_b_suitor(w, Quotas(4, 2), 4);
  EXPECT_EQ(m.size(), 0u);
}

TEST(ParallelBSuitor, ReportsWorkCounters) {
  auto inst = testing::Instance::random("er", 60, 8.0, 3, 11);
  obs::Registry registry;
  const auto m =
      parallel_b_suitor(*inst->weights, inst->profile->quotas(), 2, &registry);
  const auto snap = registry.snapshot();
  EXPECT_GT(m.size(), 0u);
  EXPECT_GT(snap.counter("pbsuitor.proposals"), 0u);
  EXPECT_GE(snap.counter("pbsuitor.range_claims"), 1u);
  // Every matched edge required at least one accepted bid.
  EXPECT_GE(snap.counter("pbsuitor.proposals"), m.size());
}

// Stress test at ≥ 8 threads on a dense-ish instance with displacement
// cascades. Under -DOVERMATCH_SANITIZE=thread this is the race detector for
// the spinlocked suitor heaps and the work-stealing loop; in a plain build
// it still verifies determinism of the fixed point across thread counts.
TEST(ParallelBSuitorStress, EightThreadsDeterministicUnderContention) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto inst = testing::Instance::random_quotas("er", 600, 16.0, 4, seed * 97);
    const auto seq = b_suitor(*inst->weights, inst->profile->quotas());
    for (const std::size_t threads : {8u, 12u}) {
      const auto par =
          parallel_b_suitor(*inst->weights, inst->profile->quotas(), threads);
      ASSERT_TRUE(seq.same_edges(par)) << "threads=" << threads << " seed=" << seed;
      ASSERT_TRUE(is_valid_bmatching(par));
    }
  }
}

}  // namespace
}  // namespace overmatch::matching
