#include "matching/exact.hpp"

#include <gtest/gtest.h>

#include "matching/dp_matcher.hpp"
#include "matching/lic.hpp"
#include "matching/metrics.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

using graph::Graph;
using graph::GraphBuilder;

TEST(ExactWeight, TrivialInstances) {
  // Single edge.
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  const prefs::EdgeWeights w(g, {3.0});
  const auto m = exact_max_weight_bmatching(w, Quotas(2, 1));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_NEAR(m.total_weight(w), 3.0, 1e-12);
}

TEST(ExactWeight, GreedyIsSuboptimalOnPath) {
  // Path with weights 3 - 4 - 3: greedy takes the middle (4); OPT takes the
  // two sides (6). The classic ½-approximation witness.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  const prefs::EdgeWeights w(g, std::vector<double>{3.0, 4.0, 3.0});
  const auto greedy = lic_global(w, Quotas(4, 1));
  const auto opt = exact_max_weight_bmatching(w, Quotas(4, 1));
  EXPECT_NEAR(greedy.total_weight(w), 4.0, 1e-12);
  EXPECT_NEAR(opt.total_weight(w), 6.0, 1e-12);
}

TEST(ExactWeight, AgreesWithBitmaskDpForQuotaOne) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    auto inst = testing::Instance::random("er", 12, 4.0, 1, seed * 5 + 1);
    const auto bnb = exact_max_weight_bmatching(*inst->weights,
                                                inst->profile->quotas());
    const auto dp = exact_mwm_dp(*inst->weights);
    EXPECT_NEAR(bnb.total_weight(*inst->weights), dp.total_weight(*inst->weights),
                1e-9)
        << "seed=" << seed;
  }
}

TEST(ExactWeight, NeverBelowGreedy) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto inst = testing::Instance::random_quotas("er", 14, 4.0, 3, seed + 21);
    const auto greedy = lic_global(*inst->weights, inst->profile->quotas());
    const auto opt =
        exact_max_weight_bmatching(*inst->weights, inst->profile->quotas());
    EXPECT_GE(opt.total_weight(*inst->weights),
              greedy.total_weight(*inst->weights) - 1e-9);
    EXPECT_TRUE(is_valid_bmatching(opt));
  }
}

TEST(ExactWeight, GreedyWithinHalfOfOptimal) {
  // Theorem 2, verified against true OPT on small instances.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto inst = testing::Instance::random("geo", 16, 4.0, 2, seed * 9 + 2);
    const auto greedy = lic_global(*inst->weights, inst->profile->quotas());
    const auto opt =
        exact_max_weight_bmatching(*inst->weights, inst->profile->quotas());
    const double ow = opt.total_weight(*inst->weights);
    if (ow > 0) {
      EXPECT_GE(greedy.total_weight(*inst->weights) / ow, 0.5 - 1e-9);
    }
  }
}

TEST(ExactWeight, RespectsQuotas) {
  auto inst = testing::Instance::random_quotas("complete", 9, 8.0, 3, 4);
  const auto opt = exact_max_weight_bmatching(*inst->weights, inst->profile->quotas());
  EXPECT_TRUE(is_valid_bmatching(opt));
}

TEST(ExactWeight, ReportsExploration) {
  auto inst = testing::Instance::random("er", 12, 3.0, 2, 8);
  ExactInfo info;
  (void)exact_max_weight_bmatching(*inst->weights, inst->profile->quotas(), &info);
  EXPECT_GT(info.nodes_explored, 0u);
}

TEST(ExactSatisfaction, SingleEdgePicksIt) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  static Graph g = std::move(b).build();
  auto p = prefs::PreferenceProfile::from_lists(g, prefs::Quotas{1, 1}, {{1}, {0}});
  const auto m = exact_max_satisfaction(p);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_NEAR(total_satisfaction(p, m), 2.0, 1e-12);  // both nodes fully satisfied
}

TEST(ExactSatisfaction, BeatsOrMatchesAllGreedyVariants) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto inst = testing::Instance::random("er", 10, 3.0, 2, seed * 3 + 17);
    const auto opt_sat = exact_max_satisfaction(*inst->profile);
    const double best = total_satisfaction(*inst->profile, opt_sat);
    const auto greedy = lic_global(*inst->weights, inst->profile->quotas());
    EXPECT_GE(best, total_satisfaction(*inst->profile, greedy) - 1e-9);
    const auto opt_w =
        exact_max_weight_bmatching(*inst->weights, inst->profile->quotas());
    EXPECT_GE(best, total_satisfaction(*inst->profile, opt_w) - 1e-9);
  }
}

TEST(ExactSatisfaction, ExhaustiveCrossCheckTiny) {
  // Brute force over all edge subsets on a tiny instance.
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto inst = testing::Instance::random("er", 7, 2.5, 2, seed + 40);
    const auto& g = inst->g;
    if (g.num_edges() > 14) continue;
    double brute_best = 0.0;
    const std::size_t subsets = std::size_t{1} << g.num_edges();
    for (std::size_t mask = 0; mask < subsets; ++mask) {
      Matching m(g, inst->profile->quotas());
      bool ok = true;
      for (graph::EdgeId e = 0; e < g.num_edges() && ok; ++e) {
        if ((mask >> e & 1U) == 0) continue;
        if (m.can_add(e)) {
          m.add(e);
        } else {
          ok = false;
        }
      }
      if (!ok) continue;
      brute_best = std::max(brute_best, total_satisfaction(*inst->profile, m));
    }
    const auto opt = exact_max_satisfaction(*inst->profile);
    EXPECT_NEAR(total_satisfaction(*inst->profile, opt), brute_best, 1e-9)
        << "seed=" << seed;
  }
}

TEST(ExactSatisfaction, WeightOptimumWithinLemma1Factor) {
  // Theorem 1: the weight-optimal matching achieves at least
  // ½(1+1/b_max) of the satisfaction optimum.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto inst = testing::Instance::random("er", 9, 3.0, 2, seed * 11 + 5);
    const auto opt_w =
        exact_max_weight_bmatching(*inst->weights, inst->profile->quotas());
    const auto opt_s = exact_max_satisfaction(*inst->profile);
    const double sw = total_satisfaction(*inst->profile, opt_w);
    const double ss = total_satisfaction(*inst->profile, opt_s);
    if (ss > 0) {
      const double bound = 0.5 * (1.0 + 1.0 / inst->profile->max_quota());
      EXPECT_GE(sw / ss, bound - 1e-9) << "seed=" << seed;
    }
  }
}

}  // namespace
}  // namespace overmatch::matching
