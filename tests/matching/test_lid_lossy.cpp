#include <gtest/gtest.h>

#include "matching/lic.hpp"
#include "matching/lid.hpp"
#include "matching/verify.hpp"
#include "sim/reliable.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

TEST(LidLossy, ZeroLossMatchesLic) {
  auto inst = testing::Instance::random("er", 20, 4.0, 2, 1);
  const auto lic = lic_global(*inst->weights, inst->profile->quotas());
  const auto r = run_lid(*inst->weights, inst->profile->quotas(),
                         {.loss_rate = 0.0, .reliable = true});
  EXPECT_TRUE(lic.same_edges(r.matching));
  EXPECT_EQ(r.stats.total_dropped, 0u);
}

class LidLossSweep : public ::testing::TestWithParam<double> {};

TEST_P(LidLossSweep, SameMatchingUnderLoss) {
  const double loss = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto inst = testing::Instance::random_quotas("er", 24, 5.0, 3, seed * 61 + 1);
    const auto lic = lic_global(*inst->weights, inst->profile->quotas());
    LidOptions opt;
    opt.seed = seed;
    opt.loss_rate = loss;
    opt.reliable = true;
    const auto r = run_lid(*inst->weights, inst->profile->quotas(), opt);
    EXPECT_TRUE(lic.same_edges(r.matching)) << "loss=" << loss << " seed=" << seed;
    EXPECT_TRUE(is_valid_bmatching(r.matching));
    if (loss > 0.0) {
      EXPECT_GT(r.stats.total_dropped, 0u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sweep, LidLossSweep,
                         ::testing::Values(0.05, 0.2, 0.4, 0.6),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return "loss" +
                                  std::to_string(static_cast<int>(info.param * 100));
                         });

TEST(LidLossy, RetransmissionsGrowWithLoss) {
  auto inst = testing::Instance::random("ba", 30, 4.0, 2, 9);
  LidOptions opt;
  opt.seed = 2;
  opt.loss_rate = 0.05;
  const auto low = run_lid(*inst->weights, inst->profile->quotas(), opt);
  opt.loss_rate = 0.5;
  const auto high = run_lid(*inst->weights, inst->profile->quotas(), opt);
  EXPECT_LT(low.retransmissions, high.retransmissions);
}

TEST(LidLossyThreaded, MatchesLicUnderLossAcrossWorkerCounts) {
  // The acceptance bar for the threaded path: terminates with zero unacked
  // messages at loss <= 0.3 (enforced by an internal OM_CHECK) and produces
  // the exact symmetric-lock LIC matching on real threads.
  for (const double loss : {0.0, 0.1, 0.3}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
      auto inst = testing::Instance::random_quotas("er", 24, 5.0, 3, 91);
      const auto lic = lic_global(*inst->weights, inst->profile->quotas());
      LidOptions opt;
      opt.seed = 5;
      opt.threads = threads;
      opt.runtime = LidRuntime::kThreaded;
      opt.loss_rate = loss;
      opt.reliable = true;
      const auto r = run_lid(*inst->weights, inst->profile->quotas(), opt);
      EXPECT_TRUE(lic.same_edges(r.matching))
          << "loss=" << loss << " threads=" << threads;
      EXPECT_TRUE(is_valid_bmatching(r.matching));
      if (loss > 0.0) {
        EXPECT_GT(r.stats.total_dropped, 0u) << "loss=" << loss;
      } else {
        EXPECT_EQ(r.stats.total_dropped, 0u);
      }
      // Honest delivery accounting: every surviving wire message was handled
      // (timer firings can only add to the delivered count).
      EXPECT_GE(r.stats.total_delivered,
                r.stats.total_sent - r.stats.total_dropped);
    }
  }
}

TEST(LidLossyThreaded, RetransmissionsRecoverDroppedMessages) {
  auto inst = testing::Instance::random("ba", 30, 4.0, 2, 9);
  const auto lic = lic_global(*inst->weights, inst->profile->quotas());
  LidOptions opt;
  opt.seed = 3;
  opt.threads = 4;
  opt.runtime = LidRuntime::kThreaded;
  opt.loss_rate = 0.3;
  const auto r = run_lid(*inst->weights, inst->profile->quotas(), opt);
  EXPECT_TRUE(lic.same_edges(r.matching));
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_GT(r.stats.kind_count(sim::kAckKind), 0u);
}

TEST(LidLossy, AcksAccountedInStats) {
  auto inst = testing::Instance::random("er", 16, 4.0, 2, 5);
  LidOptions opt;
  opt.seed = 3;
  opt.loss_rate = 0.1;
  const auto r = run_lid(*inst->weights, inst->profile->quotas(), opt);
  // One ACK attempt per received DATA: ACK traffic must be substantial.
  EXPECT_GT(r.stats.kind_count(sim::kAckKind), 0u);
}

}  // namespace
}  // namespace overmatch::matching
