#include "matching/bounds.hpp"

#include <gtest/gtest.h>

#include "matching/exact.hpp"
#include "matching/lic.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

TEST(Bounds, DominateExactOptimum) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto inst = testing::Instance::random_quotas("er", 14, 4.0, 3, seed * 7 + 1);
    const auto opt =
        exact_max_weight_bmatching(*inst->weights, inst->profile->quotas());
    const double ow = opt.total_weight(*inst->weights);
    EXPECT_GE(half_top_quota_bound(*inst->weights, inst->profile->quotas()),
              ow - 1e-9);
    EXPECT_GE(top_edges_bound(*inst->weights, inst->profile->quotas()), ow - 1e-9);
  }
}

TEST(Bounds, TightOnStarWithQuotaOne) {
  // Star, quota 1 everywhere: OPT takes the single heaviest spoke; the
  // top-edges bound equals exactly that.
  const graph::Graph g = graph::star(5);
  const prefs::EdgeWeights w(g, std::vector<double>{1.0, 4.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(top_edges_bound(w, Quotas(5, 1)), 4.0 + 3.0);  // ⌊5/2⌋ = 2 edges
  // half_top_quota: ½(hub top1 + each leaf's only edge) = ½(4 + 1+4+2+3) = 7.
  EXPECT_DOUBLE_EQ(half_top_quota_bound(w, Quotas(5, 1)), 7.0);
  const auto opt = exact_max_weight_bmatching(w, Quotas(5, 1));
  EXPECT_DOUBLE_EQ(opt.total_weight(w), 4.0);
}

TEST(Bounds, GreedyAtLeastHalfOfEitherBoundHalf) {
  // w(greedy) ≥ ½·OPT ≥ ½·(bound is ≥ OPT, so nothing direct) — instead check
  // the usable inequality: greedy/bound is a conservative ratio estimate,
  // never above 1 and, for these instances, above 0.3.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto inst = testing::Instance::random("ba", 40, 6.0, 2, seed * 5 + 3);
    const auto m = lic_global(*inst->weights, inst->profile->quotas());
    const double ub =
        std::min(half_top_quota_bound(*inst->weights, inst->profile->quotas()),
                 top_edges_bound(*inst->weights, inst->profile->quotas()));
    const double ratio = m.total_weight(*inst->weights) / ub;
    EXPECT_LE(ratio, 1.0 + 1e-9);
    EXPECT_GT(ratio, 0.3);
  }
}

TEST(Bounds, ZeroOnEmptyGraph) {
  const graph::Graph g = graph::GraphBuilder(3).build();
  const prefs::EdgeWeights w(g, {});
  EXPECT_DOUBLE_EQ(half_top_quota_bound(w, Quotas(3, 2)), 0.0);
  EXPECT_DOUBLE_EQ(top_edges_bound(w, Quotas(3, 2)), 0.0);
}

}  // namespace
}  // namespace overmatch::matching
