// Timed gate for the batched churn path: on a machine with >= 4 hardware
// threads, batched + parallel apply_batch must sustain >= 5x the per-event
// incremental event throughput at burst sizes >= 64 (ISSUE acceptance). Own
// binary so the timed section never shares a machine with the parallel test
// shuffle. On smaller machines (the reference container is single-core) the
// timing half skips — but the bit-identity half runs unconditionally.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "matching/dynamic_bsuitor.hpp"
#include "overlay/churn.hpp"
#include "tests/matching/common.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace overmatch::matching {
namespace {

using testing::Instance;

/// Pre-draws `total` events of Poisson(burst) traffic as a burst list.
std::vector<std::vector<ChurnEvent>> draw_traffic(std::size_t n,
                                                  std::size_t burst,
                                                  std::size_t total) {
  overlay::ChurnTraffic traffic(n, overlay::ChurnArrival::kPoisson,
                                static_cast<double>(burst), 4242);
  std::vector<std::vector<ChurnEvent>> bursts;
  std::size_t events = 0;
  while (events < total) {
    bursts.push_back(traffic.next_burst());
    events += bursts.back().size();
  }
  return bursts;
}

double run_per_event_ms(const prefs::EdgeWeights& w, const Quotas& quotas,
                        const std::vector<std::vector<ChurnEvent>>& bursts) {
  DynamicBSuitor dyn(w, quotas);
  util::WallTimer t;
  for (const auto& burst : bursts) {
    for (const ChurnEvent& ev : burst) {
      if (ev.kind == ChurnEvent::Kind::kJoin) {
        dyn.on_node_join(ev.u);
      } else {
        dyn.on_node_leave(ev.u);
      }
    }
  }
  return t.millis();
}

double run_batched_ms(const prefs::EdgeWeights& w, const Quotas& quotas,
                      const std::vector<std::vector<ChurnEvent>>& bursts,
                      util::ThreadPool* pool) {
  DynamicBSuitor dyn(w, quotas);
  util::WallTimer t;
  for (const auto& burst : bursts) dyn.apply_batch(burst, pool);
  return t.millis();
}

// Unconditional half: at a size where parallel cascades genuinely overlap,
// the batched matching equals the per-event one at every thread count.
TEST(ApplyBatchSpeedup, BitIdenticalAtEveryThreadCount) {
  auto inst = Instance::random("ba", 40000, 8.0, 3, 91);
  const auto& quotas = inst->profile->quotas();
  const auto bursts = draw_traffic(inst->g.num_nodes(), 128, 1024);

  DynamicBSuitor reference(*inst->weights, quotas);
  for (const auto& burst : bursts) reference.apply_batch(burst);

  for (const std::size_t threads : {2u, 4u, 8u}) {
    util::ThreadPool pool(threads - 1);
    DynamicBSuitor dyn(*inst->weights, quotas);
    for (const auto& burst : bursts) dyn.apply_batch(burst, &pool);
    ASSERT_TRUE(dyn.matching().same_edges(reference.matching()))
        << "threads " << threads;
    ASSERT_NEAR(dyn.matched_weight(), reference.matched_weight(), 1e-9);
  }
}

TEST(ApplyBatchSpeedup, BatchedParallelBeatsPerEventFiveFold) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads to measure batched scaling "
                    "(reference container is single-core)";
  }
  auto inst = Instance::random("ba", 200000, 8.0, 3, 93);
  const auto& quotas = inst->profile->quotas();
  const auto bursts = draw_traffic(inst->g.num_nodes(), 128, 8192);

  // Median of 3 reps each, fresh engine per rep (same discipline as
  // test_parallel_bsuitor_speedup).
  auto median3 = [](double a, double b, double c) {
    return std::max(std::min(a, b), std::min(std::max(a, b), c));
  };
  const double per_event_ms =
      median3(run_per_event_ms(*inst->weights, quotas, bursts),
              run_per_event_ms(*inst->weights, quotas, bursts),
              run_per_event_ms(*inst->weights, quotas, bursts));
  util::ThreadPool pool(3);  // 4 workers with the caller
  const double batched_ms =
      median3(run_batched_ms(*inst->weights, quotas, bursts, &pool),
              run_batched_ms(*inst->weights, quotas, bursts, &pool),
              run_batched_ms(*inst->weights, quotas, bursts, &pool));

  std::printf("per-event %.1f ms, batched(4t) %.1f ms, speedup %.2fx\n",
              per_event_ms, batched_ms, per_event_ms / batched_ms);
  EXPECT_GE(per_event_ms / batched_ms, 5.0)
      << "batched+parallel apply_batch must be >= 5x per-event at burst >= 64";
}

}  // namespace
}  // namespace overmatch::matching
