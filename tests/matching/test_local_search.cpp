#include "matching/local_search.hpp"

#include <gtest/gtest.h>

#include "matching/exact.hpp"
#include "matching/lic.hpp"
#include "matching/metrics.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

TEST(LocalSearch, NeverDecreasesSatisfaction) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto inst = testing::Instance::random_quotas("er", 24, 5.0, 3, seed * 11 + 1);
    auto m = lic_global(*inst->weights, inst->profile->quotas());
    const double before = total_satisfaction(*inst->profile, m);
    const auto info = improve_satisfaction(*inst->profile, m);
    EXPECT_GE(info.satisfaction_after, before - 1e-12);
    EXPECT_NEAR(info.satisfaction_before, before, 1e-12);
    EXPECT_NEAR(info.satisfaction_after, total_satisfaction(*inst->profile, m), 1e-12);
    EXPECT_TRUE(is_valid_bmatching(m));
  }
}

TEST(LocalSearch, FillsEmptyMatchingByAdds) {
  auto inst = testing::Instance::random("er", 20, 4.0, 2, 3);
  Matching m(inst->g, inst->profile->quotas());
  const auto info = improve_satisfaction(*inst->profile, m);
  EXPECT_GT(info.adds, 0u);
  EXPECT_TRUE(m.is_maximal());
}

TEST(LocalSearch, KeepsMatchingMaximal) {
  // Starting from the (maximal) greedy matching, swaps may free capacity and
  // enable follow-up adds, but the final matching must be maximal again.
  auto inst = testing::Instance::random("ba", 24, 4.0, 2, 5);
  auto m = lic_global(*inst->weights, inst->profile->quotas());
  ASSERT_TRUE(m.is_maximal());
  (void)improve_satisfaction(*inst->profile, m);
  EXPECT_TRUE(m.is_maximal());
}

TEST(LocalSearch, FindsKnownBeneficialSwap) {
  // Path 0-1-2: node 1 matched to its worse neighbour; swapping to the better
  // one strictly improves total satisfaction.
  static graph::Graph g = graph::path(3);
  auto p = prefs::PreferenceProfile::from_lists(g, prefs::Quotas{1, 1, 1},
                                                {{1}, {2, 0}, {1}});
  Matching m(g, prefs::Quotas{1, 1, 1});
  m.add(g.find_edge(0, 1));  // node 1's second choice
  const auto info = improve_satisfaction(p, m);
  // The swap (0,1) → (1,2) helps node 1 (rank 1 → 0) more than it hurts node
  // 0 vs. node 2 (both end/start unmatched, symmetric L=1).
  EXPECT_TRUE(m.contains(g.find_edge(1, 2)));
  EXPECT_GE(info.swaps, 1u);
}

TEST(LocalSearch, NeverExceedsExactOptimum) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto inst = testing::Instance::random("er", 9, 3.0, 2, seed * 7 + 13);
    auto m = lic_global(*inst->weights, inst->profile->quotas());
    (void)improve_satisfaction(*inst->profile, m);
    const auto opt = exact_max_satisfaction(*inst->profile);
    EXPECT_LE(total_satisfaction(*inst->profile, m),
              total_satisfaction(*inst->profile, opt) + 1e-9);
  }
}

TEST(LocalSearch, ClosesPartOfTheGapOnAverage) {
  double gap_before = 0.0;
  double gap_after = 0.0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto inst = testing::Instance::random("er", 10, 3.0, 2, seed * 29 + 3);
    auto m = lic_global(*inst->weights, inst->profile->quotas());
    const auto opt = exact_max_satisfaction(*inst->profile);
    const double best = total_satisfaction(*inst->profile, opt);
    gap_before += best - total_satisfaction(*inst->profile, m);
    (void)improve_satisfaction(*inst->profile, m);
    gap_after += best - total_satisfaction(*inst->profile, m);
  }
  EXPECT_LE(gap_after, gap_before + 1e-12);
}

TEST(LocalSearch, IdempotentAtLocalOptimum) {
  auto inst = testing::Instance::random("geo", 20, 4.0, 2, 17);
  auto m = lic_global(*inst->weights, inst->profile->quotas());
  (void)improve_satisfaction(*inst->profile, m);
  const auto second = improve_satisfaction(*inst->profile, m);
  EXPECT_EQ(second.adds, 0u);
  EXPECT_EQ(second.swaps, 0u);
}

}  // namespace
}  // namespace overmatch::matching
