#include "matching/verify.hpp"

#include <gtest/gtest.h>

#include "matching/lic.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

using graph::Graph;
using graph::GraphBuilder;

TEST(IsValidBMatching, EmptyIsValid) {
  const Graph g = graph::path(4);
  const Matching m(g, Quotas(4, 1));
  EXPECT_TRUE(is_valid_bmatching(m));
}

TEST(IsValidBMatching, GreedyResultsValid) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto inst = testing::Instance::random_quotas("ba", 30, 4.0, 3, seed);
    EXPECT_TRUE(is_valid_bmatching(
        lic_global(*inst->weights, inst->profile->quotas())));
  }
}

TEST(HalfCertificate, HoldsForGreedyNotForBadMatching) {
  // Path 3 - 4 - 3, quota 1: greedy = middle edge → certificate holds.
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  const prefs::EdgeWeights w(g, std::vector<double>{3.0, 4.0, 3.0});

  const auto greedy = lic_global(w, Quotas(4, 1));
  EXPECT_TRUE(has_half_approx_certificate(greedy, w));

  // A deliberately bad matching: select the lightest side edge only. The
  // middle edge is unselected, node 1 saturated by a *lighter* edge,
  // node 2 free → no certificate.
  Matching bad(g, Quotas(4, 1));
  bad.add(0);  // weight 3, blocks the weight-4 middle edge at node 1
  EXPECT_FALSE(has_half_approx_certificate(bad, w));
}

TEST(HalfCertificate, NonMaximalMatchingFails) {
  // An addable edge has two unsaturated endpoints → certificate must fail.
  const Graph g = graph::path(2 + 1);  // 3 nodes, 2 edges
  const prefs::EdgeWeights w(g, std::vector<double>{1.0, 2.0});
  const Matching empty(g, Quotas(3, 1));
  EXPECT_FALSE(has_half_approx_certificate(empty, w));
}

TEST(HalfCertificate, PerfectMatchingTriviallyCertified) {
  // All edges selected → no unselected edge to certify.
  const Graph g = graph::path(4);
  const prefs::EdgeWeights w(g, std::vector<double>{1.0, 2.0, 3.0});
  Matching m(g, Quotas(4, 2));
  for (graph::EdgeId e = 0; e < 3; ++e) m.add(e);
  EXPECT_TRUE(has_half_approx_certificate(m, w));
}

TEST(HalfCertificate, RandomGreedyOftenLacksIt) {
  // Random-order greedy is maximal but picks non-locally-heaviest edges; on
  // enough seeds at least one instance must violate the certificate.
  int violations = 0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto inst = testing::Instance::random("er", 24, 6.0, 2, seed * 3 + 1);
    Matching m(inst->g, inst->profile->quotas());
    util::Rng rng(seed);
    std::vector<graph::EdgeId> order(inst->g.num_edges());
    for (graph::EdgeId e = 0; e < inst->g.num_edges(); ++e) order[e] = e;
    rng.shuffle(order);
    for (const auto e : order) {
      if (m.can_add(e)) m.add(e);
    }
    if (!has_half_approx_certificate(m, *inst->weights)) ++violations;
  }
  EXPECT_GT(violations, 0);
}

}  // namespace
}  // namespace overmatch::matching
