#include "matching/baselines.hpp"

#include <gtest/gtest.h>

#include "matching/lic.hpp"
#include "matching/metrics.hpp"
#include "matching/verify.hpp"
#include "prefs/cycles.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

using graph::Graph;
using graph::NodeId;

TEST(RandomOrderGreedy, ValidAndMaximal) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto inst = testing::Instance::random("er", 30, 5.0, 2, seed + 3);
    const auto m = random_order_greedy(*inst->weights, inst->profile->quotas(), seed);
    EXPECT_TRUE(is_valid_bmatching(m));
    EXPECT_TRUE(m.is_maximal());
  }
}

TEST(RandomOrderGreedy, DeterministicPerSeed) {
  auto inst = testing::Instance::random("er", 20, 4.0, 2, 9);
  const auto a = random_order_greedy(*inst->weights, inst->profile->quotas(), 5);
  const auto b = random_order_greedy(*inst->weights, inst->profile->quotas(), 5);
  EXPECT_TRUE(a.same_edges(b));
}

TEST(RandomOrderGreedy, UsuallyLighterThanLic) {
  // Not an invariant per instance, but true in aggregate — the ordering ablation.
  double greedy_total = 0.0;
  double random_total = 0.0;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto inst = testing::Instance::random("er", 30, 6.0, 2, seed * 7 + 1);
    greedy_total +=
        lic_global(*inst->weights, inst->profile->quotas()).total_weight(*inst->weights);
    random_total += random_order_greedy(*inst->weights, inst->profile->quotas(), seed)
                        .total_weight(*inst->weights);
  }
  EXPECT_GT(greedy_total, random_total);
}

TEST(RankMutualBest, PerfectOnMutuallyAlignedPreferences) {
  // Two nodes each other's top choice lock in round one.
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  static Graph g = std::move(b).build();
  auto p = prefs::PreferenceProfile::from_lists(
      g, prefs::Quotas{1, 1, 1, 1}, {{1}, {0, 2}, {3, 1}, {2}});
  const auto m = rank_mutual_best(p);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(m.contains(g.find_edge(0, 1)));
  EXPECT_TRUE(m.contains(g.find_edge(2, 3)));
  EXPECT_EQ(count_blocking_pairs(p, m), 0u);
}

TEST(RankMutualBest, CanStallOnCyclicTriangle) {
  // 0→1→2→0 cyclic top choices: no mutual best exists, nothing locks.
  static Graph g = graph::cycle(3);
  auto p = prefs::PreferenceProfile::from_lists(g, prefs::Quotas{1, 1, 1},
                                                {{1, 2}, {2, 0}, {0, 1}});
  ASSERT_TRUE(prefs::find_rank_cycle(p).has_value());
  const auto m = rank_mutual_best(p);
  EXPECT_EQ(m.size(), 0u);  // the stall the paper's reformulation avoids
}

TEST(RankMutualBest, AlwaysValid) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto inst = testing::Instance::random_quotas("er", 24, 5.0, 3, seed * 13 + 2);
    const auto m = rank_mutual_best(*inst->profile);
    EXPECT_TRUE(is_valid_bmatching(m));
  }
}

TEST(BestReply, ConvergesOnAlignedInstance) {
  static Graph g = graph::path(4);
  auto p = prefs::PreferenceProfile::from_lists(
      g, prefs::Quotas{1, 1, 1, 1}, {{1}, {0, 2}, {3, 1}, {2}});
  const auto r = best_reply_dynamics(p, 1, 10000);
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(count_blocking_pairs(p, r.matching), 0u);
}

TEST(BestReply, StableWhenConverged) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto inst = testing::Instance::random("er", 16, 4.0, 2, seed * 23 + 7);
    const auto r = best_reply_dynamics(*inst->profile, seed, 200000);
    EXPECT_TRUE(is_valid_bmatching(r.matching));
    if (r.converged) {
      EXPECT_EQ(count_blocking_pairs(*inst->profile, r.matching), 0u);
    }
  }
}

TEST(BestReply, StepCapRespected) {
  auto inst = testing::Instance::random("complete", 10, 9.0, 3, 3);
  const auto r = best_reply_dynamics(*inst->profile, 1, 5);
  EXPECT_LE(r.steps, 5u);
}

TEST(BlockingPairs, FullQuotaNoBetterMeansStable) {
  // LIC result on weight order is not necessarily rank-stable; but the
  // counter itself must agree with a hand computation on a tiny case.
  static Graph g = graph::path(3);
  auto p = prefs::PreferenceProfile::from_lists(g, prefs::Quotas{1, 1, 1},
                                                {{1}, {2, 0}, {1}});
  Matching m(g, prefs::Quotas{1, 1, 1});
  m.add(g.find_edge(0, 1));
  // Node 1 prefers 2 over 0; node 2 is free → (1,2) blocks.
  EXPECT_EQ(count_blocking_pairs(p, m), 1u);
  Matching better(g, prefs::Quotas{1, 1, 1});
  better.add(g.find_edge(1, 2));
  EXPECT_EQ(count_blocking_pairs(p, better), 0u);
}

}  // namespace
}  // namespace overmatch::matching
