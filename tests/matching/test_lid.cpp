#include "matching/lid.hpp"

#include <gtest/gtest.h>

#include "matching/lic.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

using graph::Graph;
using graph::GraphBuilder;

TEST(Lid, SingleEdgeLocks) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  const prefs::EdgeWeights w(g, {1.0});
  const auto r = run_lid(w, Quotas(2, 1), {.schedule = sim::Schedule::kFifo});
  EXPECT_EQ(r.matching.size(), 1u);
  // Exactly two PROPs, no REJ needed.
  EXPECT_EQ(r.stats.kind_count(kMsgProp), 2u);
  EXPECT_EQ(r.stats.kind_count(kMsgRej), 0u);
}

TEST(Lid, PathQuotaOneNeedsRejections) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  const prefs::EdgeWeights w(g, std::vector<double>{1.0, 5.0, 2.0});
  const auto r = run_lid(w, Quotas(4, 1), {.schedule = sim::Schedule::kFifo});
  // Middle edge locks; ends get rejected and stay unmatched (their only other
  // candidates are exhausted).
  EXPECT_EQ(r.matching.size(), 1u);
  EXPECT_TRUE(r.matching.contains(1));
  EXPECT_GT(r.stats.kind_count(kMsgRej), 0u);
}

TEST(Lid, IsolatedNodesTerminate) {
  const Graph g = GraphBuilder(3).build();
  const prefs::EdgeWeights w(g, {});
  const auto r = run_lid(w, Quotas(3, 1), {.schedule = sim::Schedule::kFifo});
  EXPECT_EQ(r.matching.size(), 0u);
  EXPECT_EQ(r.stats.total_sent, 0u);
}

TEST(Lid, StarQuotaLimitsHub) {
  const Graph g = graph::star(6);
  // All edges equal weight: hub locks its first two by tie-break order.
  const prefs::EdgeWeights w(g, std::vector<double>(5, 1.0));
  Quotas q(6, 1);
  q[0] = 2;
  LidOptions opt;
  opt.seed = 42;
  const auto r = run_lid(w, q, opt);
  EXPECT_EQ(r.matching.size(), 2u);
  EXPECT_EQ(r.matching.load(0), 2u);
}

/// The headline equivalence (Lemmas 3, 4, 6): LID == LIC regardless of
/// topology, quota, schedule and seed.
class LidEqualsLic
    : public ::testing::TestWithParam<std::tuple<const char*, std::size_t, std::uint32_t,
                                                 sim::Schedule>> {};

TEST_P(LidEqualsLic, SameMatching) {
  const auto [topology, n, quota, schedule] = GetParam();
  for (std::uint64_t seed = 1; seed <= 4; ++seed) {
    auto inst = testing::Instance::random(topology, n, 5.0, quota, seed * 13);
    const auto lic = lic_global(*inst->weights, inst->profile->quotas());
    LidOptions opt;
    opt.seed = seed;
    opt.schedule = schedule;
    const auto lid = run_lid(*inst->weights, inst->profile->quotas(), opt);
    EXPECT_TRUE(lic.same_edges(lid.matching))
        << topology << " n=" << n << " b=" << quota
        << " sched=" << sim::schedule_name(schedule) << " seed=" << seed;
    EXPECT_TRUE(is_valid_bmatching(lid.matching));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LidEqualsLic,
    ::testing::Combine(::testing::Values("er", "ba", "geo"),
                       ::testing::Values<std::size_t>(16, 28),
                       ::testing::Values<std::uint32_t>(1, 2, 4),
                       ::testing::Values(sim::Schedule::kFifo,
                                         sim::Schedule::kRandomOrder,
                                         sim::Schedule::kRandomDelay,
                                         sim::Schedule::kAdversarialDelay)));

TEST(Lid, ScheduleIndependentOutcome) {
  // One instance, many adversarial seeds: matching never changes.
  auto inst = testing::Instance::random("er", 30, 6.0, 2, 777);
  LidOptions ref_opt;
  ref_opt.seed = 0;
  ref_opt.schedule = sim::Schedule::kFifo;
  const auto reference =
      run_lid(*inst->weights, inst->profile->quotas(), ref_opt);
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    LidOptions opt;
    opt.seed = seed;
    const auto r = run_lid(*inst->weights, inst->profile->quotas(), opt);
    EXPECT_TRUE(reference.matching.same_edges(r.matching)) << seed;
  }
}

TEST(Lid, ThreadedMatchesDes) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto inst = testing::Instance::random("er", 24, 5.0, 2, seed * 7);
    const auto des = run_lid(*inst->weights, inst->profile->quotas(),
                            {.schedule = sim::Schedule::kFifo});
    for (const std::size_t threads : {1u, 2u, 4u}) {
      LidOptions opt;
      opt.threads = threads;
      opt.runtime = LidRuntime::kThreaded;
      const auto thr =
          run_lid(*inst->weights, inst->profile->quotas(), opt);
      EXPECT_TRUE(des.matching.same_edges(thr.matching))
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

TEST(Lid, MessageCountLinearInEdges) {
  // Every node sends at most one PROP and at most one REJ per neighbour:
  // total ≤ 4m (the paper's local-communication claim, made concrete).
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto inst = testing::Instance::random("er", 40, 6.0, 3, seed + 5);
    LidOptions opt;
    opt.seed = seed;
    const auto r = run_lid(*inst->weights, inst->profile->quotas(), opt);
    EXPECT_LE(r.stats.total_sent, 4 * inst->g.num_edges());
    EXPECT_EQ(r.stats.total_delivered, r.stats.total_sent);
  }
}

TEST(Lid, PropsBoundedByEdgeDirections) {
  // A node proposes to a given neighbour at most once → at most 2m PROPs.
  auto inst = testing::Instance::random("ba", 30, 4.0, 2, 3);
  LidOptions opt;
  opt.seed = 9;
  opt.schedule = sim::Schedule::kAdversarialDelay;
  const auto r = run_lid(*inst->weights, inst->profile->quotas(), opt);
  EXPECT_LE(r.stats.kind_count(kMsgProp), 2 * inst->g.num_edges());
  EXPECT_LE(r.stats.kind_count(kMsgRej), 2 * inst->g.num_edges());
}

TEST(Lid, HeterogeneousQuotasStillEquivalent) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto inst = testing::Instance::random_quotas("er", 26, 5.0, 4, seed * 3 + 11);
    const auto lic = lic_global(*inst->weights, inst->profile->quotas());
    LidOptions opt;
    opt.seed = seed;
    const auto lid = run_lid(*inst->weights, inst->profile->quotas(), opt);
    EXPECT_TRUE(lic.same_edges(lid.matching));
  }
}

TEST(Lid, CompleteGraphHighQuota) {
  auto inst = testing::Instance::random("complete", 10, 9.0, 5, 2);
  const auto lic = lic_global(*inst->weights, inst->profile->quotas());
  LidOptions opt;
  opt.seed = 4;
  opt.schedule = sim::Schedule::kRandomDelay;
  const auto lid = run_lid(*inst->weights, inst->profile->quotas(), opt);
  EXPECT_TRUE(lic.same_edges(lid.matching));
  // Dense graph, high quota: the greedy matching must be maximal and close to
  // the 25-edge capacity bound (Σb/2), though maximality alone does not force
  // full saturation.
  EXPECT_TRUE(lid.matching.is_maximal());
  EXPECT_GE(lid.matching.size(), 20u);
}

}  // namespace
}  // namespace overmatch::matching
