#include "matching/cardinality.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/dp_matcher.hpp"
#include "matching/exact.hpp"
#include "matching/lic.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::kInvalidNode;
using graph::NodeId;

TEST(Blossom, PathGraphs) {
  // P_n has a maximum matching of ⌊n/2⌋.
  for (std::size_t n = 2; n <= 9; ++n) {
    const auto mate = blossom_max_matching(graph::path(n));
    EXPECT_EQ(matching_size(mate), n / 2) << "n=" << n;
  }
}

TEST(Blossom, OddCycleNeedsBlossom) {
  // C_5: maximum matching 2 — forces blossom contraction.
  const auto mate = blossom_max_matching(graph::cycle(5));
  EXPECT_EQ(matching_size(mate), 2u);
}

TEST(Blossom, PetersenLikeOddStructures) {
  // Two triangles joined by a bridge: perfect matching exists (3 edges).
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(3, 5);
  const auto mate = blossom_max_matching(std::move(b).build());
  EXPECT_EQ(matching_size(mate), 3u);
}

TEST(Blossom, CompleteGraphs) {
  for (std::size_t n = 2; n <= 10; ++n) {
    const auto mate = blossom_max_matching(graph::complete(n));
    EXPECT_EQ(matching_size(mate), n / 2) << "n=" << n;
  }
}

TEST(Blossom, StarMatchesOne) {
  EXPECT_EQ(matching_size(blossom_max_matching(graph::star(7))), 1u);
}

TEST(Blossom, EmptyAndEdgeless) {
  EXPECT_EQ(matching_size(blossom_max_matching(GraphBuilder(0).build())), 0u);
  EXPECT_EQ(matching_size(blossom_max_matching(GraphBuilder(5).build())), 0u);
}

TEST(Blossom, AgreesWithDpOnRandomGraphs) {
  // Cardinality == max weight under unit weights; the subset DP is the oracle.
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    util::Rng rng(seed * 3 + 1);
    static Graph g;
    g = graph::erdos_renyi(14, 0.25, rng);
    const prefs::EdgeWeights unit(g, std::vector<double>(g.num_edges(), 1.0));
    const auto dp = exact_mwm_dp(unit);
    const auto mate = blossom_max_matching(g);
    EXPECT_EQ(matching_size(mate), dp.size()) << "seed=" << seed;
  }
}

TEST(MaxCardinalityBMatching, QuotaOneEqualsBlossom) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    util::Rng rng(seed + 50);
    static Graph g;
    g = graph::erdos_renyi(16, 0.3, rng);
    const auto direct = matching_size(blossom_max_matching(g));
    EXPECT_EQ(max_cardinality_bmatching(g, Quotas(16, 1)), direct) << seed;
  }
}

TEST(MaxCardinalityBMatching, HighQuotaTakesAllEdges) {
  // Quotas ≥ degree: every edge can be selected.
  util::Rng rng(3);
  static Graph g;
  g = graph::erdos_renyi(12, 0.4, rng);
  Quotas q(12);
  for (NodeId v = 0; v < 12; ++v) {
    q[v] = std::max<std::uint32_t>(1, static_cast<std::uint32_t>(g.degree(v)));
  }
  EXPECT_EQ(max_cardinality_bmatching(g, q), g.num_edges());
}

TEST(MaxCardinalityBMatching, AgreesWithBnBUnderUnitWeights) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto inst = testing::Instance::random_quotas("er", 12, 3.5, 3, seed * 19 + 7);
    const prefs::EdgeWeights unit(inst->g,
                                  std::vector<double>(inst->g.num_edges(), 1.0));
    const auto opt = exact_max_weight_bmatching(unit, inst->profile->quotas());
    EXPECT_EQ(max_cardinality_bmatching(inst->g, inst->profile->quotas()),
              opt.size())
        << "seed=" << seed;
  }
}

TEST(MaxCardinalityBMatching, GreedyWithinHalf) {
  // Any maximal b-matching has at least half the optimal cardinality.
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto inst = testing::Instance::random_quotas("ba", 30, 4.0, 3, seed * 23 + 5);
    const auto greedy = lic_global(*inst->weights, inst->profile->quotas());
    const auto best = max_cardinality_bmatching(inst->g, inst->profile->quotas());
    EXPECT_GE(2 * greedy.size(), best) << "seed=" << seed;
    EXPECT_LE(greedy.size(), best);
  }
}

TEST(MaxCardinalityBMatching, StarWithHubQuota) {
  // Star S_6: hub quota k allows exactly k connections.
  const Graph g = graph::star(6);
  for (std::uint32_t k = 1; k <= 5; ++k) {
    Quotas q(6, 1);
    q[0] = k;
    EXPECT_EQ(max_cardinality_bmatching(g, q), k);
  }
}

}  // namespace
}  // namespace overmatch::matching
