#include "matching/bsuitor.hpp"

#include <gtest/gtest.h>

#include "matching/lic.hpp"
#include "obs/registry.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

TEST(BSuitor, SingleEdge) {
  graph::GraphBuilder b(2);
  b.add_edge(0, 1);
  const graph::Graph g = std::move(b).build();
  const prefs::EdgeWeights w(g, {1.0});
  const auto m = b_suitor(w, Quotas(2, 1));
  EXPECT_EQ(m.size(), 1u);
}

TEST(BSuitor, PathPicksLocallyHeaviest) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const graph::Graph g = std::move(b).build();
  const prefs::EdgeWeights w(g, std::vector<double>{1.0, 5.0, 2.0});
  const auto m = b_suitor(w, Quotas(4, 1));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.contains(1));
}

TEST(BSuitor, DisplacementChainResolves) {
  // Star where later bids displace earlier ones: hub quota 1, leaves bid in
  // arbitrary order, heaviest spoke must win.
  const graph::Graph g = graph::star(5);
  const prefs::EdgeWeights w(g, std::vector<double>{1.0, 4.0, 2.0, 3.0});
  obs::Registry registry;
  const auto m = b_suitor(w, Quotas(5, 1), &registry);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.contains(1));  // weight 4 spoke
  // Bids that would lose against a full suitor set are skipped without being
  // sent, so only the winning spoke and the hub's own bid are guaranteed.
  EXPECT_GE(registry.snapshot().counter("bsuitor.proposals"), 2u);
}

class BSuitorEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint32_t>> {};

TEST_P(BSuitorEquivalence, EqualsLicEverywhere) {
  const auto [topology, quota] = GetParam();
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    auto inst = testing::Instance::random_quotas(topology, 36, 6.0, quota,
                                                 seed * 53 + quota);
    const auto lic = lic_global(*inst->weights, inst->profile->quotas());
    const auto bs = b_suitor(*inst->weights, inst->profile->quotas());
    EXPECT_TRUE(lic.same_edges(bs))
        << topology << " b=" << quota << " seed=" << seed;
    EXPECT_TRUE(is_valid_bmatching(bs));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BSuitorEquivalence,
    ::testing::Combine(::testing::Values("er", "ba", "ws", "geo", "complete"),
                       ::testing::Values<std::uint32_t>(1, 2, 4)));

TEST(BSuitor, ProposalsBoundedByEdgeDirections) {
  auto inst = testing::Instance::random("er", 60, 8.0, 3, 7);
  obs::Registry registry;
  (void)b_suitor(*inst->weights, inst->profile->quotas(), &registry);
  const auto snap = registry.snapshot();
  // Each node walks its incident list at most once → ≤ 2m bids.
  EXPECT_LE(snap.counter("bsuitor.proposals"), 2 * inst->g.num_edges());
  EXPECT_LE(snap.counter("bsuitor.displacements"), snap.counter("bsuitor.proposals"));
}

TEST(BSuitor, EmptyGraph) {
  const graph::Graph g = graph::GraphBuilder(3).build();
  const prefs::EdgeWeights w(g, {});
  EXPECT_EQ(b_suitor(w, Quotas(3, 2)).size(), 0u);
}

TEST(BSuitor, TiedWeightsStillDeterministicAndEqualToLic) {
  const graph::Graph g = graph::complete(8);
  const prefs::EdgeWeights w(g, std::vector<double>(g.num_edges(), 1.0));
  const auto lic = lic_global(w, Quotas(8, 2));
  const auto bs = b_suitor(w, Quotas(8, 2));
  EXPECT_TRUE(lic.same_edges(bs));
}

}  // namespace
}  // namespace overmatch::matching
