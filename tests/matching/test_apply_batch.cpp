// DynamicBSuitor::apply_batch correctness: a batched application must land
// on exactly the state of applying the same events one-by-one through the
// per-event entry points — bit-identical matching (unique fixed point of the
// final alive/enabled configuration, DESIGN.md §12) — at every thread count,
// across topologies, quota shapes, batch sizes, coalescing patterns
// (leave-then-rejoin flaps, double edge toggles, all-no-op bursts), quota-0
// and isolated frontier nodes, and a many-thread hammer for TSan.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "matching/bsuitor.hpp"
#include "matching/dynamic_bsuitor.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"
#include "util/thread_pool.hpp"

namespace overmatch::matching {
namespace {

using testing::Instance;

/// Draws bursts of sequentially-valid mixed node/edge churn events against a
/// shadow alive/edge state (~70% node events with ~20% immediate flap pairs,
/// ~30% edge toggles with occasional double toggles — the coalescing fodder).
class BurstGen {
 public:
  BurstGen(const graph::Graph& g, std::uint64_t seed)
      : g_(&g), rng_(seed), alive_(g.num_nodes(), 1), off_(g.num_edges(), 0) {}

  std::vector<ChurnEvent> burst(std::size_t target) {
    std::vector<ChurnEvent> out;
    out.reserve(target + target / 2);
    while (out.size() < target) {
      if (g_->num_edges() > 0 && rng_.chance(0.3)) {
        const auto e = static_cast<EdgeId>(rng_.index(g_->num_edges()));
        const auto& [i, j] = g_->edge(e);
        toggle(out, e, i, j);
        if (rng_.chance(0.25)) toggle(out, e, i, j);  // double toggle: no-op
      } else {
        const auto v = static_cast<NodeId>(rng_.index(g_->num_nodes()));
        flip(out, v);
        if (rng_.chance(0.2)) flip(out, v);  // flap: leave+rejoin, no-op
      }
    }
    return out;
  }

  [[nodiscard]] const std::vector<std::uint8_t>& alive() const { return alive_; }
  [[nodiscard]] const std::vector<std::uint8_t>& edge_off() const { return off_; }

 private:
  void flip(std::vector<ChurnEvent>& out, NodeId v) {
    if (alive_[v] != 0) {
      alive_[v] = 0;
      out.push_back(ChurnEvent::leave(v));
    } else {
      alive_[v] = 1;
      out.push_back(ChurnEvent::join(v));
    }
  }
  void toggle(std::vector<ChurnEvent>& out, EdgeId e, NodeId i, NodeId j) {
    if (off_[e] != 0) {
      off_[e] = 0;
      out.push_back(ChurnEvent::edge_up(i, j));
    } else {
      off_[e] = 1;
      out.push_back(ChurnEvent::edge_down(i, j));
    }
  }

  const graph::Graph* g_;
  util::Rng rng_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::uint8_t> off_;
};

/// Replays one burst through the per-event entry points.
void replay_per_event(DynamicBSuitor& dyn, const std::vector<ChurnEvent>& burst) {
  for (const ChurnEvent& ev : burst) {
    switch (ev.kind) {
      case ChurnEvent::Kind::kLeave:
        dyn.on_node_leave(ev.u);
        break;
      case ChurnEvent::Kind::kJoin:
        dyn.on_node_join(ev.u);
        break;
      case ChurnEvent::Kind::kEdgeDown:
        dyn.on_edge_change(ev.u, ev.v, false);
        break;
      case ChurnEvent::Kind::kEdgeUp:
        dyn.on_edge_change(ev.u, ev.v, true);
        break;
    }
  }
}

/// The core twin-engine property: `batched` applies each burst as one
/// apply_batch (on `pool`), `reference` replays it event-by-event; the
/// matchings must be bit-identical after every burst.
void run_twin(const prefs::EdgeWeights& w, const Quotas& quotas,
              util::ThreadPool* pool, std::uint64_t seed,
              std::size_t batch_size, std::size_t bursts) {
  DynamicBSuitor batched(w, quotas);
  DynamicBSuitor reference(w, quotas);
  BurstGen gen(w.graph(), seed);
  for (std::size_t b = 0; b < bursts; ++b) {
    const auto burst = gen.burst(batch_size);
    batched.apply_batch(burst, pool);
    replay_per_event(reference, burst);
    ASSERT_TRUE(is_valid_bmatching(batched.matching())) << "burst " << b;
    ASSERT_TRUE(batched.matching().same_edges(reference.matching()))
        << "burst " << b << " batch_size " << batch_size;
    ASSERT_NEAR(batched.matched_weight(), reference.matched_weight(), 1e-9)
        << "burst " << b;
    for (NodeId v = 0; v < w.graph().num_nodes(); ++v) {
      ASSERT_EQ(batched.alive(v), gen.alive()[v] != 0) << "node " << v;
    }
  }
}

// The ISSUE's acceptance matrix: er/ba/ws x quotas {1, 3, hetero} x threads
// {1, 2, 4, 8} x batch sizes {1, 16, 256}; batched == per-event replay,
// bit-identical, after every burst.
TEST(ApplyBatch, MatchesPerEventReplayAcrossTheMatrix) {
  for (const char* topology : {"er", "ba", "ws"}) {
    for (const std::uint32_t quota : {1u, 3u, 0u}) {  // 0 = heterogeneous
      const auto inst =
          quota == 0 ? Instance::random_quotas(topology, 120, 6.0, 4, 77)
                     : Instance::random(topology, 120, 6.0, quota, 77);
      const auto& quotas = inst->profile->quotas();
      for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
        std::unique_ptr<util::ThreadPool> pool =
            threads > 1 ? std::make_unique<util::ThreadPool>(threads - 1)
                        : nullptr;
        for (const std::size_t batch : {1u, 16u, 256u}) {
          ASSERT_NO_FATAL_FAILURE(run_twin(*inst->weights, quotas, pool.get(),
                                           1000 + threads * 10 + batch, batch,
                                           batch >= 256 ? 2 : 4))
              << topology << " quota " << quota << " threads " << threads
              << " batch " << batch;
        }
      }
    }
  }
}

TEST(ApplyBatch, LeaveThenRejoinSameNodeCoalescesToNoOp) {
  auto inst = Instance::random("er", 60, 6.0, 3, 5);
  DynamicBSuitor dyn(*inst->weights, inst->profile->quotas());
  const Matching initial = dyn.matching();
  const double w0 = dyn.matched_weight();

  const std::vector<ChurnEvent> burst = {
      ChurnEvent::leave(7), ChurnEvent::join(7),
      ChurnEvent::leave(12), ChurnEvent::join(12)};
  dyn.apply_batch(burst);
  const auto& st = dyn.last_batch();
  EXPECT_EQ(st.events, 4u);
  EXPECT_EQ(st.coalesced, 4u);  // both pairs net out
  EXPECT_EQ(st.net_leaves, 0u);
  EXPECT_EQ(st.net_joins, 0u);
  EXPECT_EQ(st.frontier, 0u);  // nothing to repair
  EXPECT_TRUE(dyn.matching().same_edges(initial));
  EXPECT_NEAR(dyn.matched_weight(), w0, 1e-12);
  EXPECT_TRUE(dyn.alive(7));
  EXPECT_TRUE(dyn.alive(12));
}

TEST(ApplyBatch, DoubleToggleSameEdgeCoalescesToNoOp) {
  auto inst = Instance::random("ba", 50, 5.0, 2, 9);
  DynamicBSuitor dyn(*inst->weights, inst->profile->quotas());
  const Matching initial = dyn.matching();
  const auto& [i, j] = inst->g.edge(3);

  const std::vector<ChurnEvent> burst = {ChurnEvent::edge_down(i, j),
                                         ChurnEvent::edge_up(i, j)};
  dyn.apply_batch(burst);
  EXPECT_EQ(dyn.last_batch().coalesced, 2u);
  EXPECT_EQ(dyn.last_batch().net_edges_down, 0u);
  EXPECT_EQ(dyn.last_batch().frontier, 0u);
  EXPECT_TRUE(dyn.edge_present(3));
  EXPECT_TRUE(dyn.matching().same_edges(initial));

  // And a toggle mixed into a real burst still nets out while the rest of
  // the burst takes effect.
  const auto& [p, q] = inst->g.edge(8);
  const std::vector<ChurnEvent> mixed = {
      ChurnEvent::edge_down(p, q), ChurnEvent::leave(4),
      ChurnEvent::edge_up(p, q)};
  dyn.apply_batch(mixed);
  EXPECT_EQ(dyn.last_batch().coalesced, 2u);
  EXPECT_EQ(dyn.last_batch().net_leaves, 1u);
  EXPECT_TRUE(dyn.edge_present(8));
  EXPECT_FALSE(dyn.alive(4));
}

TEST(ApplyBatch, AllNoOpBatchLeavesEverythingUntouched) {
  auto inst = Instance::random("ws", 40, 4.0, 3, 13);
  DynamicBSuitor dyn(*inst->weights, inst->profile->quotas());
  const Matching initial = dyn.matching();

  std::vector<ChurnEvent> burst;
  for (NodeId v = 0; v < 10; ++v) {
    burst.push_back(ChurnEvent::leave(v));
    burst.push_back(ChurnEvent::join(v));
  }
  for (EdgeId e = 0; e < 5; ++e) {
    const auto& [i, j] = inst->g.edge(e);
    burst.push_back(ChurnEvent::edge_down(i, j));
    burst.push_back(ChurnEvent::edge_up(i, j));
  }
  // Parallel path too: an empty frontier must not deadlock the workers.
  util::ThreadPool pool(3);
  dyn.apply_batch(burst, &pool);
  EXPECT_EQ(dyn.last_batch().events, 30u);
  EXPECT_EQ(dyn.last_batch().coalesced, 30u);
  EXPECT_EQ(dyn.last_batch().frontier, 0u);
  EXPECT_EQ(dyn.last_repair().matched_removed, 0u);
  EXPECT_EQ(dyn.last_repair().matched_added, 0u);
  EXPECT_TRUE(dyn.matching().same_edges(initial));
}

TEST(ApplyBatch, QuotaZeroAndIsolatedNodesInTheFrontier) {
  // Node 5 is isolated (no candidate edges); nodes 0 and 3 have quota 0.
  graph::GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  b.add_edge(0, 4);
  graph::Graph g = std::move(b).build();
  util::Rng rng(17);
  const auto w = prefs::random_weights(g, rng);
  Quotas quotas(g.num_nodes(), 2);
  quotas[0] = 0;
  quotas[3] = 0;

  DynamicBSuitor batched(w, quotas);
  DynamicBSuitor reference(w, quotas);
  util::ThreadPool pool(3);
  // One burst that puts the quota-0 nodes AND the isolated node into the
  // repair frontier, alongside a real transition next to them.
  const std::vector<ChurnEvent> burst = {
      ChurnEvent::leave(0), ChurnEvent::leave(5), ChurnEvent::leave(1),
      ChurnEvent::join(0),  ChurnEvent::join(5)};
  batched.apply_batch(burst, &pool);
  replay_per_event(reference, burst);
  EXPECT_TRUE(batched.matching().same_edges(reference.matching()));
  EXPECT_EQ(batched.matching().load(0), 0u);
  EXPECT_EQ(batched.matching().load(3), 0u);
  EXPECT_EQ(batched.matching().load(5), 0u);

  // Rejoin everyone; the unique fixed point restores the initial matching.
  const std::vector<ChurnEvent> back = {ChurnEvent::join(1)};
  batched.apply_batch(back, &pool);
  replay_per_event(reference, back);
  EXPECT_TRUE(batched.matching().same_edges(reference.matching()));
}

// Many threads, bigger graph, long bursts: the TSan target for the 4-state
// serialization and the CAS admission/erase protocol (run under the `tsan`
// CMake preset; under the default build it is still a correctness check).
TEST(ApplyBatch, EightThreadHammerStaysBitIdentical) {
  auto inst = Instance::random_quotas("ba", 600, 8.0, 4, 29);
  const auto& quotas = inst->profile->quotas();
  util::ThreadPool pool(7);  // 8 workers with the caller
  DynamicBSuitor batched(*inst->weights, quotas);
  DynamicBSuitor reference(*inst->weights, quotas);
  BurstGen gen(inst->g, 31);
  for (std::size_t b = 0; b < 6; ++b) {
    const auto burst = gen.burst(192);
    batched.apply_batch(burst, &pool);
    EXPECT_GE(batched.last_batch().workers, 2u);
    replay_per_event(reference, burst);
    ASSERT_TRUE(batched.matching().same_edges(reference.matching()))
        << "burst " << b;
    ASSERT_NEAR(batched.matched_weight(), reference.matched_weight(), 1e-9);
  }
}

TEST(ApplyBatch, SequentialFallbackUsedWithoutPool) {
  auto inst = Instance::random("er", 50, 5.0, 3, 37);
  DynamicBSuitor dyn(*inst->weights, inst->profile->quotas());
  dyn.apply_batch(std::vector<ChurnEvent>{ChurnEvent::leave(2)});
  EXPECT_EQ(dyn.last_batch().workers, 1u);
}

TEST(ApplyBatchDeathTest, InvalidEventInBatchAborts) {
  auto inst = Instance::random("er", 20, 4.0, 2, 41);
  DynamicBSuitor dyn(*inst->weights, inst->profile->quotas());
  // join of an online node — invalid even mid-batch.
  const std::vector<ChurnEvent> bad = {ChurnEvent::leave(1),
                                       ChurnEvent::join(2)};
  EXPECT_DEATH(dyn.apply_batch(bad), "online");
}

}  // namespace
}  // namespace overmatch::matching
