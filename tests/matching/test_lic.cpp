#include "matching/lic.hpp"
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include "matching/verify.hpp"
#include "prefs/satisfaction.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

using graph::Graph;
using graph::GraphBuilder;
using graph::NodeId;

/// Hand instance: path 0-1-2-3 with explicit weights 1-2-... set through
/// explicit preference lists so the heaviest edge is the middle one.
struct PathInstance {
  Graph g;
  std::unique_ptr<prefs::EdgeWeights> w;

  PathInstance() {
    GraphBuilder b(4);
    b.add_edge(0, 1);  // e0
    b.add_edge(1, 2);  // e1
    b.add_edge(2, 3);  // e2
    g = std::move(b).build();
    w = std::make_unique<prefs::EdgeWeights>(g, std::vector<double>{1.0, 5.0, 2.0});
  }
};

TEST(LicGlobal, PicksHeaviestFirstOnPath) {
  PathInstance pi;
  // With quota 1 the middle edge wins; the two side edges become blocked.
  const auto m = lic_global(*pi.w, Quotas(4, 1));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_TRUE(m.contains(1));
}

TEST(LicGlobal, QuotaTwoTakesEverythingOnPath) {
  PathInstance pi;
  const auto m = lic_global(*pi.w, Quotas(4, 2));
  EXPECT_EQ(m.size(), 3u);
}

TEST(LicGlobal, ProducesMaximalValidMatching) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto inst = testing::Instance::random("er", 30, 5.0, 3, seed);
    const auto m = lic_global(*inst->weights, inst->profile->quotas());
    EXPECT_TRUE(is_valid_bmatching(m));
    EXPECT_TRUE(m.is_maximal());
  }
}

TEST(LicGlobal, HasHalfApproxCertificate) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    auto inst = testing::Instance::random("ba", 24, 4.0, 2, seed + 100);
    const auto m = lic_global(*inst->weights, inst->profile->quotas());
    EXPECT_TRUE(has_half_approx_certificate(m, *inst->weights));
  }
}

TEST(LicLocal, EqualsGlobalOnHandInstance) {
  PathInstance pi;
  const auto mg = lic_global(*pi.w, Quotas(4, 1));
  for (std::uint64_t scan = 0; scan < 8; ++scan) {
    const auto ml = lic_local(*pi.w, Quotas(4, 1), scan);
    EXPECT_TRUE(mg.same_edges(ml));
  }
}

// The uniqueness property behind Lemma 6: with strict weights the
// locally-heaviest greedy matching does not depend on the processing order.
class LicEquivalence : public ::testing::TestWithParam<
                           std::tuple<const char*, std::size_t, std::uint32_t>> {};

TEST_P(LicEquivalence, LocalScanOrderIrrelevant) {
  const auto [topology, n, quota] = GetParam();
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto inst = testing::Instance::random(topology, n, 5.0, quota, seed * 31 + 1);
    const auto mg = lic_global(*inst->weights, inst->profile->quotas());
    for (std::uint64_t scan = 0; scan < 4; ++scan) {
      const auto ml = lic_local(*inst->weights, inst->profile->quotas(), scan * 17 + 3);
      EXPECT_TRUE(mg.same_edges(ml))
          << topology << " n=" << n << " b=" << quota << " seed=" << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Topologies, LicEquivalence,
    ::testing::Values(std::make_tuple("er", 20, 1u), std::make_tuple("er", 20, 2u),
                      std::make_tuple("er", 24, 3u), std::make_tuple("ba", 24, 2u),
                      std::make_tuple("ws", 24, 2u), std::make_tuple("geo", 24, 2u),
                      std::make_tuple("grid", 25, 2u),
                      std::make_tuple("complete", 12, 3u)));

TEST(LicLocal, HeterogeneousQuotas) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    auto inst = testing::Instance::random_quotas("er", 22, 5.0, 4, seed + 7);
    const auto mg = lic_global(*inst->weights, inst->profile->quotas());
    const auto ml = lic_local(*inst->weights, inst->profile->quotas(), seed);
    EXPECT_TRUE(mg.same_edges(ml));
    EXPECT_TRUE(has_half_approx_certificate(mg, *inst->weights));
  }
}

TEST(LicLocal, CandidateQueueNeverExceedsEdgeCount) {
  // Regression: every neighbour scan used to re-enqueue the same top edge, so
  // the candidate queue ballooned past m with duplicates (O(edges × rounds)).
  // With the in-queue flag each edge appears at most once at a time, so the
  // queue's high-water mark is exactly bounded by the edge count — and the
  // output is still the unique locally-heaviest matching. Since the queue is
  // now seeded with node tops (≤ n entries) instead of all m edges, pops must
  // also stay well below m on dense graphs while still covering every
  // selected edge (each selection is one pop).
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto inst = testing::Instance::random("complete", 16, 15.0, 3, seed + 11);
    const auto mg = lic_global(*inst->weights, inst->profile->quotas());
    obs::Registry registry;
    const auto ml =
        lic_local(*inst->weights, inst->profile->quotas(), seed, &registry);
    const auto snap = registry.snapshot();
    EXPECT_TRUE(mg.same_edges(ml)) << "seed=" << seed;
    EXPECT_LE(snap.gauge("lic.peak_queue"), static_cast<double>(inst->g.num_edges()))
        << "seed=" << seed;
    EXPECT_GE(snap.counter("lic.pops"), ml.size()) << "seed=" << seed;
    EXPECT_LT(snap.counter("lic.pops"), inst->g.num_edges()) << "seed=" << seed;
  }
}

TEST(LicGlobal, EmptyGraph) {
  const Graph g = GraphBuilder(3).build();
  const prefs::EdgeWeights w(g, {});
  const auto m = lic_global(w, Quotas(3, 1));
  EXPECT_EQ(m.size(), 0u);
}

TEST(LicGlobal, SingleEdge) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  const Graph g = std::move(b).build();
  const prefs::EdgeWeights w(g, {1.0});
  const auto m = lic_global(w, Quotas(2, 1));
  EXPECT_EQ(m.size(), 1u);
}

TEST(LicGlobal, TieBreakDeterminism) {
  // All-equal weights: the id tie-break must make the result deterministic.
  const Graph g = graph::complete(6);
  const prefs::EdgeWeights w(g, std::vector<double>(g.num_edges(), 1.0));
  const auto m1 = lic_global(w, Quotas(6, 1));
  const auto m2 = lic_global(w, Quotas(6, 1));
  EXPECT_TRUE(m1.same_edges(m2));
  EXPECT_EQ(m1.size(), 3u);  // perfect matching of K6
  // And the local engine agrees even on fully tied weights.
  for (std::uint64_t scan = 0; scan < 6; ++scan) {
    EXPECT_TRUE(m1.same_edges(lic_local(w, Quotas(6, 1), scan)));
  }
}

}  // namespace
}  // namespace overmatch::matching
