// The unified run_lid(w, quotas, LidOptions) entry point must reproduce each
// legacy wrapper bit-for-bit at fixed seeds: identical edge sets, identical
// wire statistics (DES runs are deterministic per seed/schedule), identical
// retransmission counts. The wrappers are forwarders, so these tests pin the
// option mapping — schedule promotion, the `reliable` flag, the RNG streams —
// against drift while the deprecated surface is still in its grace cycle.
#include "matching/lid.hpp"

#include <gtest/gtest.h>

#include "sim/reliable.hpp"
#include "tests/matching/common.hpp"

// The whole point of this file is calling the deprecated wrappers.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wdeprecated-declarations"

namespace overmatch::matching {
namespace {

void expect_same_wire_stats(const sim::MessageStats& a,
                            const sim::MessageStats& b) {
  EXPECT_EQ(a.total_sent, b.total_sent);
  EXPECT_EQ(a.total_delivered, b.total_delivered);
  EXPECT_EQ(a.total_dropped, b.total_dropped);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.kind_count(kMsgProp), b.kind_count(kMsgProp));
  EXPECT_EQ(a.kind_count(kMsgRej), b.kind_count(kMsgRej));
  EXPECT_EQ(a.kind_count(sim::kAckKind), b.kind_count(sim::kAckKind));
}

TEST(LidUnified, ReproducesScheduleSeedWrapperExactly) {
  const sim::Schedule schedules[] = {
      sim::Schedule::kFifo, sim::Schedule::kRandomOrder,
      sim::Schedule::kRandomDelay, sim::Schedule::kAdversarialDelay};
  for (const auto schedule : schedules) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto inst = testing::Instance::random_quotas("ws", 30, 5.0, 3, seed * 7 + 1);
      const auto legacy =
          run_lid(*inst->weights, inst->profile->quotas(), schedule, seed);
      const auto unified = run_lid(*inst->weights, inst->profile->quotas(),
                                   {.schedule = schedule, .seed = seed});
      EXPECT_TRUE(legacy.matching.same_edges(unified.matching))
          << sim::schedule_name(schedule) << " seed=" << seed;
      expect_same_wire_stats(legacy.stats, unified.stats);
      EXPECT_EQ(unified.retransmissions, 0u);
    }
  }
}

TEST(LidUnified, ReproducesThreadedWrapperMatching) {
  // The threaded runtime's interleaving (and thus its message counts) is
  // nondeterministic; the matching is the invariant (Lemmas 3–6).
  auto inst = testing::Instance::random("er", 60, 6.0, 3, 11);
  const auto legacy =
      run_lid_threaded(*inst->weights, inst->profile->quotas(), 4);
  const auto unified =
      run_lid(*inst->weights, inst->profile->quotas(),
              {.runtime = LidRuntime::kThreaded, .threads = 4});
  EXPECT_TRUE(legacy.matching.same_edges(unified.matching));
  EXPECT_EQ(unified.stats.total_delivered, unified.stats.total_sent);
}

TEST(LidUnified, ReproducesLossyWrapperExactly) {
  for (const double loss : {0.1, 0.3}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto inst = testing::Instance::random("er", 30, 5.0, 2, seed * 13 + 2);
      const auto legacy =
          run_lid_lossy(*inst->weights, inst->profile->quotas(), loss, seed);
      const auto unified =
          run_lid(*inst->weights, inst->profile->quotas(),
                  {.loss_rate = loss, .reliable = true, .seed = seed});
      EXPECT_TRUE(legacy.matching.same_edges(unified.matching))
          << "loss=" << loss << " seed=" << seed;
      expect_same_wire_stats(legacy.stats, unified.stats);
      EXPECT_EQ(legacy.retransmissions, unified.retransmissions);
    }
  }
}

TEST(LidUnified, LossyWrapperAtZeroLossStillEngagesTheAdapter) {
  // Historical contract: run_lid_lossy(w, q, 0.0, seed) measured the pure
  // ACK overhead of the reliability layer. The unified mapping is
  // {.loss_rate = 0.0, .reliable = true} — and it must still promote the
  // schedule and carry ACK traffic, unlike a plain lossless run.
  auto inst = testing::Instance::random("er", 24, 4.0, 2, 5);
  const auto legacy =
      run_lid_lossy(*inst->weights, inst->profile->quotas(), 0.0, 9);
  const auto unified = run_lid(*inst->weights, inst->profile->quotas(),
                               {.loss_rate = 0.0, .reliable = true, .seed = 9});
  EXPECT_TRUE(legacy.matching.same_edges(unified.matching));
  expect_same_wire_stats(legacy.stats, unified.stats);
  EXPECT_GT(unified.stats.kind_count(sim::kAckKind), 0u);
  EXPECT_EQ(unified.retransmissions, legacy.retransmissions);

  const auto plain = run_lid(*inst->weights, inst->profile->quotas(),
                             {.schedule = sim::Schedule::kRandomDelay, .seed = 9});
  EXPECT_EQ(plain.stats.kind_count(sim::kAckKind), 0u);
  EXPECT_TRUE(plain.matching.same_edges(unified.matching));
}

TEST(LidUnified, ReproducesLossyThreadedWrapperMatching) {
  auto inst = testing::Instance::random("er", 40, 5.0, 2, 21);
  const auto legacy = run_lid_lossy_threaded(*inst->weights,
                                             inst->profile->quotas(), 0.2, 3, 4);
  const auto unified = run_lid(*inst->weights, inst->profile->quotas(),
                               {.runtime = LidRuntime::kThreaded,
                                .loss_rate = 0.2,
                                .reliable = true,
                                .seed = 3,
                                .threads = 4});
  EXPECT_TRUE(legacy.matching.same_edges(unified.matching));
  // Wire accounting under loss is interleaving-dependent (retransmissions
  // are delivered without re-counting as sends); only require that loss and
  // recovery actually happened.
  EXPECT_GT(unified.stats.total_dropped, 0u);
  EXPECT_GT(unified.retransmissions, 0u);
}

TEST(LidUnified, DefaultOptionsAreTheReliableDes) {
  auto inst = testing::Instance::random("ba", 30, 4.0, 2, 4);
  const auto by_default = run_lid(*inst->weights, inst->profile->quotas());
  const auto spelled_out =
      run_lid(*inst->weights, inst->profile->quotas(),
              {.runtime = LidRuntime::kEventSim,
               .schedule = sim::Schedule::kRandomOrder,
               .loss_rate = 0.0,
               .seed = 1});
  EXPECT_TRUE(by_default.matching.same_edges(spelled_out.matching));
  expect_same_wire_stats(by_default.stats, spelled_out.stats);
  EXPECT_EQ(by_default.stats.kind_count(sim::kAckKind), 0u);
}

}  // namespace
}  // namespace overmatch::matching

#pragma GCC diagnostic pop
