// Behavioural pins for the unified run_lid(w, quotas, LidOptions) entry
// point (the legacy wrapper overloads are gone): DES determinism per
// seed/schedule, the `reliable` flag's contract at zero loss (ACK traffic +
// schedule promotion), lossy-run recovery, threaded/DES agreement, and the
// documented defaults.
#include "matching/lid.hpp"

#include <gtest/gtest.h>

#include "sim/reliable.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

void expect_same_wire_stats(const sim::MessageStats& a,
                            const sim::MessageStats& b) {
  EXPECT_EQ(a.total_sent, b.total_sent);
  EXPECT_EQ(a.total_delivered, b.total_delivered);
  EXPECT_EQ(a.total_dropped, b.total_dropped);
  EXPECT_EQ(a.completion_time, b.completion_time);
  EXPECT_EQ(a.kind_count(kMsgProp), b.kind_count(kMsgProp));
  EXPECT_EQ(a.kind_count(kMsgRej), b.kind_count(kMsgRej));
  EXPECT_EQ(a.kind_count(sim::kAckKind), b.kind_count(sim::kAckKind));
}

TEST(LidUnified, DesRunsAreDeterministicPerSeedAndSchedule) {
  const sim::Schedule schedules[] = {
      sim::Schedule::kFifo, sim::Schedule::kRandomOrder,
      sim::Schedule::kRandomDelay, sim::Schedule::kAdversarialDelay};
  for (const auto schedule : schedules) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto inst = testing::Instance::random_quotas("ws", 30, 5.0, 3, seed * 7 + 1);
      LidOptions opt;
      opt.seed = seed;
      opt.schedule = schedule;
      const auto a = run_lid(*inst->weights, inst->profile->quotas(), opt);
      const auto b = run_lid(*inst->weights, inst->profile->quotas(), opt);
      EXPECT_TRUE(a.matching.same_edges(b.matching))
          << sim::schedule_name(schedule) << " seed=" << seed;
      expect_same_wire_stats(a.stats, b.stats);
      EXPECT_EQ(a.retransmissions, 0u);
    }
  }
}

TEST(LidUnified, ScheduleChangesWireTrafficNotTheMatching) {
  auto inst = testing::Instance::random_quotas("ws", 30, 5.0, 3, 17);
  LidOptions opt;
  opt.seed = 2;
  opt.schedule = sim::Schedule::kFifo;
  const auto fifo = run_lid(*inst->weights, inst->profile->quotas(), opt);
  opt.schedule = sim::Schedule::kAdversarialDelay;
  const auto adv = run_lid(*inst->weights, inst->profile->quotas(), opt);
  EXPECT_TRUE(fifo.matching.same_edges(adv.matching));
}

TEST(LidUnified, ThreadedRuntimeMatchesTheDes) {
  // The threaded runtime's interleaving (and thus its message counts) is
  // nondeterministic; the matching is the invariant (Lemmas 3–6).
  auto inst = testing::Instance::random("er", 60, 6.0, 3, 11);
  LidOptions des_opt;
  des_opt.seed = 1;
  const auto des = run_lid(*inst->weights, inst->profile->quotas(), des_opt);
  LidOptions thr_opt;
  thr_opt.threads = 4;
  thr_opt.runtime = LidRuntime::kThreaded;
  const auto threaded =
      run_lid(*inst->weights, inst->profile->quotas(), thr_opt);
  EXPECT_TRUE(des.matching.same_edges(threaded.matching));
  EXPECT_EQ(threaded.stats.total_delivered, threaded.stats.total_sent);
}

TEST(LidUnified, LossyRunsRecoverTheLosslessMatching) {
  for (const double loss : {0.1, 0.3}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto inst = testing::Instance::random("er", 30, 5.0, 2, seed * 13 + 2);
      LidOptions opt;
      opt.seed = seed;
      const auto lossless =
          run_lid(*inst->weights, inst->profile->quotas(), opt);
      opt.loss_rate = loss;
      opt.reliable = true;
      const auto lossy = run_lid(*inst->weights, inst->profile->quotas(), opt);
      EXPECT_TRUE(lossless.matching.same_edges(lossy.matching))
          << "loss=" << loss << " seed=" << seed;
      EXPECT_GT(lossy.stats.total_dropped, 0u);
      EXPECT_GT(lossy.retransmissions, 0u);
    }
  }
}

TEST(LidUnified, ReliableFlagAtZeroLossStillEngagesTheAdapter) {
  // {.loss_rate = 0.0, .reliable = true} measures the pure ACK overhead of
  // the reliability layer: it must promote the schedule to virtual time and
  // carry ACK traffic, unlike a plain lossless run — while retransmitting
  // nothing (no message is ever dropped).
  auto inst = testing::Instance::random("er", 24, 4.0, 2, 5);
  LidOptions reliable_opt;
  reliable_opt.seed = 9;
  reliable_opt.loss_rate = 0.0;
  reliable_opt.reliable = true;
  const auto reliable =
      run_lid(*inst->weights, inst->profile->quotas(), reliable_opt);
  EXPECT_GT(reliable.stats.kind_count(sim::kAckKind), 0u);
  EXPECT_EQ(reliable.retransmissions, 0u);
  EXPECT_EQ(reliable.stats.total_dropped, 0u);

  LidOptions plain_opt;
  plain_opt.seed = 9;
  plain_opt.schedule = sim::Schedule::kRandomDelay;
  const auto plain =
      run_lid(*inst->weights, inst->profile->quotas(), plain_opt);
  EXPECT_EQ(plain.stats.kind_count(sim::kAckKind), 0u);
  EXPECT_TRUE(plain.matching.same_edges(reliable.matching));
}

TEST(LidUnified, LossyThreadedRunRecovers) {
  auto inst = testing::Instance::random("er", 40, 5.0, 2, 21);
  LidOptions des_opt;
  des_opt.seed = 1;
  const auto des = run_lid(*inst->weights, inst->profile->quotas(), des_opt);
  LidOptions lossy_opt;
  lossy_opt.seed = 3;
  lossy_opt.threads = 4;
  lossy_opt.runtime = LidRuntime::kThreaded;
  lossy_opt.loss_rate = 0.2;
  lossy_opt.reliable = true;
  const auto lossy = run_lid(*inst->weights, inst->profile->quotas(), lossy_opt);
  EXPECT_TRUE(des.matching.same_edges(lossy.matching));
  // Wire accounting under loss is interleaving-dependent (retransmissions
  // are delivered without re-counting as sends); only require that loss and
  // recovery actually happened.
  EXPECT_GT(lossy.stats.total_dropped, 0u);
  EXPECT_GT(lossy.retransmissions, 0u);
}

TEST(LidUnified, DefaultOptionsAreTheReliableDes) {
  auto inst = testing::Instance::random("ba", 30, 4.0, 2, 4);
  const auto by_default = run_lid(*inst->weights, inst->profile->quotas());
  LidOptions opt;
  opt.seed = 1;
  opt.runtime = LidRuntime::kEventSim;
  opt.schedule = sim::Schedule::kRandomOrder;
  opt.loss_rate = 0.0;
  const auto spelled_out =
      run_lid(*inst->weights, inst->profile->quotas(), opt);
  EXPECT_TRUE(by_default.matching.same_edges(spelled_out.matching));
  expect_same_wire_stats(by_default.stats, spelled_out.stats);
  EXPECT_EQ(by_default.stats.kind_count(sim::kAckKind), 0u);
}

}  // namespace
}  // namespace overmatch::matching
