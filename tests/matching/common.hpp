// Shared fixtures for the matching test suite: random instances with graph,
// profile and weights whose lifetimes are tied together.
#pragma once

#include <memory>
#include <string>

#include "graph/generators.hpp"
#include "prefs/preference_profile.hpp"
#include "prefs/weights.hpp"

namespace overmatch::matching::testing {

/// Owns a random instance end to end (graph must outlive profile/weights).
struct Instance {
  graph::Graph g;
  std::unique_ptr<prefs::PreferenceProfile> profile;
  std::unique_ptr<prefs::EdgeWeights> weights;

  static std::unique_ptr<Instance> random(const std::string& topology, std::size_t n,
                                          double avg_degree, std::uint32_t quota,
                                          std::uint64_t seed) {
    auto inst = std::make_unique<Instance>();
    util::Rng rng(seed);
    inst->g = graph::by_name(topology, n, avg_degree, rng);
    inst->profile = std::make_unique<prefs::PreferenceProfile>(
        prefs::PreferenceProfile::random(inst->g,
                                         prefs::uniform_quotas(inst->g, quota), rng));
    inst->weights =
        std::make_unique<prefs::EdgeWeights>(prefs::paper_weights(*inst->profile));
    return inst;
  }

  /// Random quotas in [1, quota_max] instead of uniform.
  static std::unique_ptr<Instance> random_quotas(const std::string& topology,
                                                 std::size_t n, double avg_degree,
                                                 std::uint32_t quota_max,
                                                 std::uint64_t seed) {
    auto inst = std::make_unique<Instance>();
    util::Rng rng(seed);
    inst->g = graph::by_name(topology, n, avg_degree, rng);
    inst->profile = std::make_unique<prefs::PreferenceProfile>(
        prefs::PreferenceProfile::random(
            inst->g, prefs::random_quotas(inst->g, quota_max, rng), rng));
    inst->weights =
        std::make_unique<prefs::EdgeWeights>(prefs::paper_weights(*inst->profile));
    return inst;
  }
};

}  // namespace overmatch::matching::testing
