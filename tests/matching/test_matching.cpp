#include "matching/matching.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

using graph::Graph;
using graph::GraphBuilder;

Graph square() {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 0);
  return std::move(b).build();
}

TEST(Matching, StartsEmpty) {
  const Graph g = square();
  const Matching m(g, Quotas(4, 1));
  EXPECT_EQ(m.size(), 0u);
  for (graph::NodeId v = 0; v < 4; ++v) {
    EXPECT_EQ(m.load(v), 0u);
    EXPECT_EQ(m.residual(v), 1u);
    EXPECT_TRUE(m.connections(v).empty());
  }
}

TEST(Matching, AddUpdatesEverything) {
  const Graph g = square();
  Matching m(g, Quotas(4, 2));
  m.add(0);  // {0,1}
  EXPECT_TRUE(m.contains(0));
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(m.load(0), 1u);
  EXPECT_EQ(m.load(1), 1u);
  EXPECT_EQ(m.residual(0), 1u);
  ASSERT_EQ(m.connections(0).size(), 1u);
  EXPECT_EQ(m.connections(0)[0], 1u);
  EXPECT_EQ(m.connections(1)[0], 0u);
}

TEST(Matching, CanAddRespectsQuota) {
  const Graph g = square();
  Matching m(g, Quotas(4, 1));
  EXPECT_TRUE(m.can_add(0));
  m.add(0);             // {0,1}
  EXPECT_FALSE(m.can_add(0));  // already selected
  EXPECT_FALSE(m.can_add(1));  // node 1 full
  EXPECT_FALSE(m.can_add(3));  // node 0 full
  EXPECT_TRUE(m.can_add(2));   // {2,3} free
}

TEST(Matching, RemoveRestoresCapacity) {
  const Graph g = square();
  Matching m(g, Quotas(4, 1));
  m.add(0);
  m.remove(0);
  EXPECT_EQ(m.size(), 0u);
  EXPECT_EQ(m.load(0), 0u);
  EXPECT_TRUE(m.can_add(0));
  EXPECT_TRUE(m.connections(1).empty());
}

TEST(Matching, IsMaximalDetectsAddableEdge) {
  const Graph g = square();
  Matching m(g, Quotas(4, 1));
  m.add(0);
  EXPECT_FALSE(m.is_maximal());
  m.add(2);
  EXPECT_TRUE(m.is_maximal());
}

TEST(Matching, SameEdgesIgnoresInsertionOrder) {
  const Graph g = square();
  Matching a(g, Quotas(4, 1));
  Matching b(g, Quotas(4, 1));
  a.add(0);
  a.add(2);
  b.add(2);
  b.add(0);
  EXPECT_TRUE(a.same_edges(b));
  Matching c(g, Quotas(4, 1));
  c.add(1);
  EXPECT_FALSE(a.same_edges(c));
}

TEST(Matching, SameEdgesRejectsDifferentGraphWithEqualEdgeCount) {
  // Regression: the guard used to pass whenever the two graphs merely had the
  // same number of edges, so matchings over unrelated graphs with identical
  // selection bitmaps compared equal.
  const Graph g1 = square();  // 0-1, 1-2, 2-3, 3-0
  GraphBuilder b(4);          // same node/edge counts, different edges
  b.add_edge(0, 2);
  b.add_edge(1, 3);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  const Graph g2 = std::move(b).build();
  Matching m1(g1, Quotas(4, 2));
  Matching m2(g2, Quotas(4, 2));
  m1.add(0);  // {0,1} in g1
  m2.add(0);  // {0,2} in g2 — same bitmap, different edge
  EXPECT_FALSE(m1.same_edges(m2));
  EXPECT_FALSE(m2.same_edges(m1));
}

TEST(Matching, SameEdgesAcceptsStructurallyIdenticalGraphCopies) {
  // Two independently built but identical graphs (e.g. the same generator
  // seed run twice) must still be comparable edge-by-edge.
  const Graph g1 = square();
  const Graph g2 = square();
  Matching m1(g1, Quotas(4, 1));
  Matching m2(g2, Quotas(4, 1));
  m1.add(0);
  m2.add(0);
  EXPECT_TRUE(m1.same_edges(m2));
  m2.remove(0);
  m2.add(2);
  EXPECT_FALSE(m1.same_edges(m2));
}

TEST(Matching, TotalWeight) {
  auto inst = testing::Instance::random("er", 12, 4.0, 2, 5);
  Matching m(inst->g, inst->profile->quotas());
  double expected = 0.0;
  for (graph::EdgeId e = 0; e < inst->g.num_edges() && m.size() < 3; ++e) {
    if (m.can_add(e)) {
      m.add(e);
      expected += inst->weights->weight(e);
    }
  }
  EXPECT_NEAR(m.total_weight(*inst->weights), expected, 1e-12);
}

TEST(Matching, QuotaTwoAllowsTwoPartners) {
  const Graph g = graph::star(4);
  Matching m(g, Quotas{2, 1, 1, 1});
  m.add(0);
  m.add(1);
  EXPECT_EQ(m.load(0), 2u);
  EXPECT_FALSE(m.can_add(2));  // hub full
  ASSERT_EQ(m.connections(0).size(), 2u);
}

TEST(MatchingDeathTest, AddBeyondQuotaAborts) {
  const Graph g = graph::star(4);
  Matching m(g, Quotas{1, 1, 1, 1});
  m.add(0);
  EXPECT_DEATH(m.add(1), "quota");
}

TEST(MatchingDeathTest, DoubleAddAborts) {
  const Graph g = square();
  Matching m(g, Quotas(4, 2));
  m.add(0);
  EXPECT_DEATH(m.add(0), "quota");
}

TEST(MatchingDeathTest, RemoveUnselectedAborts) {
  const Graph g = square();
  Matching m(g, Quotas(4, 1));
  EXPECT_DEATH(m.remove(0), "unselected");
}

}  // namespace
}  // namespace overmatch::matching
