// DynamicBSuitor correctness: the maintained matching must equal the
// from-scratch greedy (= batch b-Suitor = LIC) matching of the *alive,
// enabled* subgraph after every single event — which also hands it
// Theorem 2's ½-approximation bound — across long randomized churn traces,
// edge toggles, quota-0 nodes, isolated nodes, and leave/rejoin cycles.
#include "matching/dynamic_bsuitor.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "matching/bsuitor.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

using testing::Instance;

/// From-scratch greedy (locally heaviest first) restricted to alive nodes
/// and enabled edges — the oracle every repair is checked against.
Matching greedy_on_alive(const prefs::EdgeWeights& w, const Quotas& quotas,
                         const std::vector<std::uint8_t>& alive,
                         const std::vector<std::uint8_t>& edge_off) {
  const auto& g = w.graph();
  Matching m(g, quotas);
  for (const EdgeId e : w.by_weight()) {
    if (edge_off[e] != 0) continue;
    const auto& [u, v] = g.edge(e);
    if (alive[u] == 0 || alive[v] == 0) continue;
    if (m.can_add(e)) m.add(e);
  }
  return m;
}

/// Asserts the engine is exactly at the greedy fixed point of its
/// alive/enabled subgraph, with a consistent incrementally-maintained weight.
void expect_at_fixed_point(const DynamicBSuitor& dyn, const prefs::EdgeWeights& w,
                           const Quotas& quotas,
                           const std::vector<std::uint8_t>& alive,
                           const std::vector<std::uint8_t>& edge_off,
                           const char* context) {
  const Matching scratch = greedy_on_alive(w, quotas, alive, edge_off);
  EXPECT_TRUE(is_valid_bmatching(dyn.matching())) << context;
  EXPECT_TRUE(dyn.matching().same_edges(scratch)) << context;
  const double scratch_weight = scratch.total_weight(w);
  // The ISSUE's acceptance bound — trivially implied by edge-set equality,
  // asserted explicitly so a future repair relaxation still has a contract.
  EXPECT_GE(dyn.matched_weight(), 0.5 * scratch_weight - 1e-9) << context;
  EXPECT_NEAR(dyn.matched_weight(), dyn.matching().total_weight(w), 1e-6)
      << context;
}

/// Drives `events` random leave/join events, checking the fixed point after
/// every single one.
void run_node_churn(Instance& inst, std::uint64_t seed, std::size_t events) {
  const auto& quotas = inst.profile->quotas();
  DynamicBSuitor dyn(*inst.weights, quotas);
  std::vector<std::uint8_t> alive(inst.g.num_nodes(), 1);
  const std::vector<std::uint8_t> edge_off(inst.g.num_edges(), 0);
  expect_at_fixed_point(dyn, *inst.weights, quotas, alive, edge_off, "initial");

  util::Rng rng(seed);
  for (std::size_t k = 0; k < events; ++k) {
    const auto v = static_cast<NodeId>(rng.index(inst.g.num_nodes()));
    if (alive[v] != 0) {
      alive[v] = 0;
      dyn.on_node_leave(v);
      EXPECT_EQ(dyn.matching().load(v), 0u);
    } else {
      alive[v] = 1;
      dyn.on_node_join(v);
    }
    ASSERT_NO_FATAL_FAILURE(expect_at_fixed_point(
        dyn, *inst.weights, quotas, alive, edge_off, "node churn"))
        << "event " << k;
  }
}

TEST(DynamicBSuitor, InitialBuildMatchesBatchBSuitor) {
  for (const char* topology : {"er", "ba", "ws"}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      auto inst = Instance::random_quotas(topology, 40, 5.0, 3, seed * 11 + 1);
      DynamicBSuitor dyn(*inst->weights, inst->profile->quotas());
      const auto batch = b_suitor(*inst->weights, inst->profile->quotas());
      EXPECT_TRUE(dyn.matching().same_edges(batch)) << topology << " " << seed;
      EXPECT_NEAR(dyn.matched_weight(),
                  batch.total_weight(*inst->weights), 1e-6);
    }
  }
}

// The ISSUE's acceptance property: >= 10^3 randomized churn events per seed,
// engine vs from-scratch checked after every event.
TEST(DynamicBSuitor, ThousandRandomNodeEventsStayAtFixedPoint) {
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    auto inst = Instance::random("er", 60, 6.0, 3, seed * 17 + 3);
    run_node_churn(*inst, seed, 1000);
  }
}

TEST(DynamicBSuitor, RandomQuotasChurnStaysAtFixedPoint) {
  auto inst = Instance::random_quotas("ba", 50, 5.0, 4, 23);
  run_node_churn(*inst, 7, 300);
}

TEST(DynamicBSuitor, EdgeTogglesTrackFromScratch) {
  auto inst = Instance::random("ws", 40, 5.0, 2, 31);
  const auto& quotas = inst->profile->quotas();
  DynamicBSuitor dyn(*inst->weights, quotas);
  const std::vector<std::uint8_t> alive(inst->g.num_nodes(), 1);
  std::vector<std::uint8_t> edge_off(inst->g.num_edges(), 0);

  util::Rng rng(5);
  for (std::size_t k = 0; k < 400; ++k) {
    const auto e = static_cast<EdgeId>(rng.index(inst->g.num_edges()));
    const auto& [i, j] = inst->g.edge(e);
    const bool enable = edge_off[e] != 0;
    edge_off[e] = enable ? 0 : 1;
    dyn.on_edge_change(i, j, enable);
    EXPECT_EQ(dyn.edge_present(e), enable ? true : false);
    ASSERT_NO_FATAL_FAILURE(expect_at_fixed_point(
        dyn, *inst->weights, quotas, alive, edge_off, "edge toggle"))
        << "event " << k;
  }
}

TEST(DynamicBSuitor, MixedNodeAndEdgeChurn) {
  auto inst = Instance::random("er", 40, 5.0, 3, 41);
  const auto& quotas = inst->profile->quotas();
  DynamicBSuitor dyn(*inst->weights, quotas);
  std::vector<std::uint8_t> alive(inst->g.num_nodes(), 1);
  std::vector<std::uint8_t> edge_off(inst->g.num_edges(), 0);

  util::Rng rng(6);
  for (std::size_t k = 0; k < 500; ++k) {
    if (rng.chance(0.5)) {
      const auto v = static_cast<NodeId>(rng.index(inst->g.num_nodes()));
      if (alive[v] != 0) {
        alive[v] = 0;
        dyn.on_node_leave(v);
      } else {
        alive[v] = 1;
        dyn.on_node_join(v);
      }
    } else {
      const auto e = static_cast<EdgeId>(rng.index(inst->g.num_edges()));
      const auto& [i, j] = inst->g.edge(e);
      const bool enable = edge_off[e] != 0;
      edge_off[e] = enable ? 0 : 1;
      dyn.on_edge_change(i, j, enable);
    }
    ASSERT_NO_FATAL_FAILURE(expect_at_fixed_point(
        dyn, *inst->weights, quotas, alive, edge_off, "mixed churn"))
        << "event " << k;
  }
}

TEST(DynamicBSuitor, QuotaZeroNodesNeverMatchAndSurviveChurn) {
  util::Rng rng(9);
  graph::Graph g = graph::by_name("er", 30, 5.0, rng);
  const auto w = prefs::random_weights(g, rng);
  Quotas quotas(g.num_nodes(), 2);
  quotas[0] = 0;
  quotas[7] = 0;
  quotas[13] = 0;

  DynamicBSuitor dyn(w, quotas);
  std::vector<std::uint8_t> alive(g.num_nodes(), 1);
  const std::vector<std::uint8_t> edge_off(g.num_edges(), 0);
  expect_at_fixed_point(dyn, w, quotas, alive, edge_off, "quota-0 initial");
  for (const NodeId z : {0u, 7u, 13u}) EXPECT_EQ(dyn.matching().load(z), 0u);

  // Leave/join of a quota-0 node is a structural no-op for the matching.
  const double before = dyn.matched_weight();
  alive[7] = 0;
  dyn.on_node_leave(7);
  EXPECT_EQ(dyn.last_repair().matched_removed, 0u);
  EXPECT_NEAR(dyn.matched_weight(), before, 1e-12);
  alive[7] = 1;
  dyn.on_node_join(7);
  EXPECT_NEAR(dyn.matched_weight(), before, 1e-12);

  // And a full churn storm around them never assigns them an edge.
  for (std::size_t k = 0; k < 200; ++k) {
    const auto v = static_cast<NodeId>(rng.index(g.num_nodes()));
    if (alive[v] != 0) {
      alive[v] = 0;
      dyn.on_node_leave(v);
    } else {
      alive[v] = 1;
      dyn.on_node_join(v);
    }
    for (const NodeId z : {0u, 7u, 13u}) EXPECT_EQ(dyn.matching().load(z), 0u);
    ASSERT_NO_FATAL_FAILURE(
        expect_at_fixed_point(dyn, w, quotas, alive, edge_off, "quota-0 churn"))
        << "event " << k;
  }
}

TEST(DynamicBSuitor, IsolatedNodeJoinAndLeaveAreNoOps) {
  // Node n-1 has no candidate edges at all.
  graph::GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  b.add_edge(3, 4);
  graph::Graph g = std::move(b).build();
  util::Rng rng(3);
  const auto w = prefs::random_weights(g, rng);
  const Quotas quotas(g.num_nodes(), 1);

  DynamicBSuitor dyn(w, quotas);
  const double before = dyn.matched_weight();
  dyn.on_node_leave(5);
  EXPECT_EQ(dyn.last_repair().matched_removed, 0u);
  EXPECT_EQ(dyn.last_repair().matched_added, 0u);
  EXPECT_NEAR(dyn.matched_weight(), before, 1e-12);
  dyn.on_node_join(5);
  EXPECT_NEAR(dyn.matched_weight(), before, 1e-12);
  EXPECT_FALSE(dyn.matching().edges().empty());
}

TEST(DynamicBSuitor, LeaveOfUnmatchedNodeKeepsMatching) {
  // Triangle with quota 1: exactly one node ends up unmatched.
  graph::GraphBuilder b(3);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  graph::Graph g = std::move(b).build();
  util::Rng rng(4);
  const auto w = prefs::random_weights(g, rng);
  const Quotas quotas(g.num_nodes(), 1);

  DynamicBSuitor dyn(w, quotas);
  ASSERT_EQ(dyn.matching().size(), 1u);
  NodeId unmatched = 3;
  for (NodeId v = 0; v < 3; ++v) {
    if (dyn.matching().load(v) == 0) unmatched = v;
  }
  ASSERT_LT(unmatched, 3u);
  const double before = dyn.matched_weight();
  dyn.on_node_leave(unmatched);
  EXPECT_EQ(dyn.last_repair().matched_removed, 0u);
  EXPECT_NEAR(dyn.matched_weight(), before, 1e-12);
  EXPECT_EQ(dyn.matching().size(), 1u);
}

TEST(DynamicBSuitor, LeaveThenRejoinRestoresTheExactMatching) {
  auto inst = Instance::random("ba", 40, 4.0, 2, 51);
  const auto& quotas = inst->profile->quotas();
  DynamicBSuitor dyn(*inst->weights, quotas);
  const Matching initial = dyn.matching();
  const double initial_weight = dyn.matched_weight();
  for (NodeId v = 0; v < 10; ++v) {
    dyn.on_node_leave(v);
    dyn.on_node_join(v);
    // Same alive set as at t=0 and a unique fixed point: bit-identical state.
    EXPECT_TRUE(dyn.matching().same_edges(initial)) << "node " << v;
    EXPECT_NEAR(dyn.matched_weight(), initial_weight, 1e-9);
  }
}

TEST(DynamicBSuitor, RepairIsLocalOnAPath) {
  // 200-node path, quota 1: a mid-path leave can only cascade down an
  // alternating chain, and with random weights it dies off almost
  // immediately — nowhere near the O(n) a from-scratch rebuild touches.
  constexpr std::size_t kN = 200;
  graph::GraphBuilder b(kN);
  for (NodeId v = 0; v + 1 < kN; ++v) b.add_edge(v, v + 1);
  graph::Graph g = std::move(b).build();
  util::Rng rng(8);
  const auto w = prefs::random_weights(g, rng);
  const Quotas quotas(g.num_nodes(), 1);

  DynamicBSuitor dyn(w, quotas);
  dyn.on_node_leave(kN / 2);
  const auto& st = dyn.last_repair();
  EXPECT_GT(st.touched_nodes, 0u);
  EXPECT_LE(st.touched_nodes, 32u);  // localized, not O(n)
  std::vector<std::uint8_t> alive(kN, 1);
  alive[kN / 2] = 0;
  const std::vector<std::uint8_t> edge_off(g.num_edges(), 0);
  expect_at_fixed_point(dyn, w, quotas, alive, edge_off, "path leave");
}

TEST(DynamicBSuitor, LastChangedNodesCoversTheMatchingDiff) {
  auto inst = Instance::random("er", 40, 5.0, 3, 61);
  const auto& quotas = inst->profile->quotas();
  DynamicBSuitor dyn(*inst->weights, quotas);
  util::Rng rng(10);
  std::vector<std::uint8_t> alive(inst->g.num_nodes(), 1);
  for (std::size_t k = 0; k < 100; ++k) {
    std::vector<std::uint32_t> load_before(inst->g.num_nodes());
    std::vector<std::vector<NodeId>> conns_before(inst->g.num_nodes());
    for (NodeId v = 0; v < inst->g.num_nodes(); ++v) {
      load_before[v] = dyn.matching().load(v);
      const auto c = dyn.matching().connections(v);
      conns_before[v].assign(c.begin(), c.end());
    }
    const auto v = static_cast<NodeId>(rng.index(inst->g.num_nodes()));
    if (alive[v] != 0) {
      alive[v] = 0;
      dyn.on_node_leave(v);
    } else {
      alive[v] = 1;
      dyn.on_node_join(v);
    }
    const std::set<NodeId> changed(dyn.last_changed_nodes().begin(),
                                   dyn.last_changed_nodes().end());
    for (NodeId u = 0; u < inst->g.num_nodes(); ++u) {
      const auto c = dyn.matching().connections(u);
      std::vector<NodeId> now(c.begin(), c.end());
      std::sort(now.begin(), now.end());
      std::sort(conns_before[u].begin(), conns_before[u].end());
      if (now != conns_before[u]) {
        EXPECT_TRUE(changed.count(u) != 0) << "node " << u << " event " << k;
      }
    }
  }
}

TEST(DynamicBSuitorDeathTest, DoubleLeaveAborts) {
  auto inst = Instance::random("er", 10, 3.0, 2, 71);
  DynamicBSuitor dyn(*inst->weights, inst->profile->quotas());
  dyn.on_node_leave(2);
  EXPECT_DEATH(dyn.on_node_leave(2), "offline");
}

TEST(DynamicBSuitorDeathTest, JoinOnlineAborts) {
  auto inst = Instance::random("er", 10, 3.0, 2, 73);
  DynamicBSuitor dyn(*inst->weights, inst->profile->quotas());
  EXPECT_DEATH(dyn.on_node_join(2), "online");
}

TEST(DynamicBSuitorDeathTest, NoOpEdgeChangeAborts) {
  auto inst = Instance::random("er", 10, 3.0, 2, 79);
  DynamicBSuitor dyn(*inst->weights, inst->profile->quotas());
  const auto& [i, j] = inst->g.edge(0);
  EXPECT_DEATH(dyn.on_edge_change(i, j, true), "unchanged");
}

}  // namespace
}  // namespace overmatch::matching
