// Model-based fuzzing: random operation sequences against naive reference
// implementations, plus a mass equivalence sweep over hundreds of tiny random
// instances (where edge cases — isolated nodes, bridges, ties — concentrate).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "matching/bsuitor.hpp"
#include "matching/exact.hpp"
#include "matching/parallel_bsuitor.hpp"
#include "matching/lic.hpp"
#include "matching/lid.hpp"
#include "matching/matching.hpp"
#include "matching/metrics.hpp"
#include "matching/parallel_local.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::matching {
namespace {

/// Naive reference model of a b-matching: a set of edges, with loads
/// recomputed from scratch on every query.
class ReferenceModel {
 public:
  ReferenceModel(const graph::Graph& g, const Quotas& q) : g_(&g), q_(&q) {}

  [[nodiscard]] bool can_add(graph::EdgeId e) const {
    if (edges_.contains(e)) return false;
    const auto& [u, v] = g_->edge(e);
    return load(u) < (*q_)[u] && load(v) < (*q_)[v];
  }
  void add(graph::EdgeId e) { edges_.insert(e); }
  void remove(graph::EdgeId e) { edges_.erase(e); }
  [[nodiscard]] bool contains(graph::EdgeId e) const { return edges_.contains(e); }
  [[nodiscard]] std::uint32_t load(graph::NodeId v) const {
    std::uint32_t c = 0;
    for (const auto e : edges_) {
      const auto& edge = g_->edge(e);
      if (edge.u == v || edge.v == v) ++c;
    }
    return c;
  }
  [[nodiscard]] std::set<graph::NodeId> partners(graph::NodeId v) const {
    std::set<graph::NodeId> out;
    for (const auto e : edges_) {
      const auto& edge = g_->edge(e);
      if (edge.u == v) out.insert(edge.v);
      if (edge.v == v) out.insert(edge.u);
    }
    return out;
  }

 private:
  const graph::Graph* g_;
  const Quotas* q_;
  std::set<graph::EdgeId> edges_;
};

TEST(FuzzMatchingContainer, RandomOpsAgreeWithReference) {
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    util::Rng rng(trial * 7 + 1);
    static graph::Graph g;
    g = graph::erdos_renyi(12, 0.4, rng);
    if (g.num_edges() == 0) continue;
    Quotas q = prefs::random_quotas(g, 3, rng);
    Matching m(g, q);
    ReferenceModel ref(g, q);
    for (int op = 0; op < 300; ++op) {
      const auto e = static_cast<graph::EdgeId>(rng.index(g.num_edges()));
      ASSERT_EQ(m.can_add(e), ref.can_add(e)) << "trial " << trial << " op " << op;
      if (m.contains(e) && rng.chance(0.4)) {
        m.remove(e);
        ref.remove(e);
      } else if (m.can_add(e)) {
        m.add(e);
        ref.add(e);
      }
      // Spot-check a random node's state.
      const auto v = static_cast<graph::NodeId>(rng.index(g.num_nodes()));
      ASSERT_EQ(m.load(v), ref.load(v));
      const auto conns = m.connections(v);
      ASSERT_EQ(std::set<graph::NodeId>(conns.begin(), conns.end()), ref.partners(v));
    }
    EXPECT_TRUE(is_valid_bmatching(m));
  }
}

TEST(FuzzEngines, MassEquivalenceOnTinyInstances) {
  // Tiny graphs concentrate corner cases: empty neighbourhoods, single edges,
  // complete ties, quota > degree. Every engine must agree on all of them.
  std::size_t instances = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    util::Rng rng(seed * 13 + 5);
    const std::size_t n = 2 + rng.index(9);  // 2..10 nodes
    static graph::Graph g;
    g = graph::erdos_renyi(n, rng.uniform(0.1, 0.9), rng);
    Quotas q = prefs::random_quotas(g, 4, rng);
    // Random weights (not eq. 9) — the equivalence is a property of strict
    // orders, not of the weight design.
    const auto w = prefs::random_weights(g, rng);
    const auto lic = lic_global(w, q);
    ASSERT_TRUE(lic.same_edges(lic_local(w, q, seed))) << seed;
    ASSERT_TRUE(lic.same_edges(b_suitor(w, q))) << seed;
    ASSERT_TRUE(lic.same_edges(parallel_b_suitor(w, q, 2))) << seed;
    ASSERT_TRUE(lic.same_edges(parallel_local_dominant(w, q, 2))) << seed;
    LidOptions lid_opt;
    lid_opt.seed = seed;
    ASSERT_TRUE(lic.same_edges(run_lid(w, q, lid_opt).matching)) << seed;
    ASSERT_TRUE(is_valid_bmatching(lic));
    ASSERT_TRUE(lic.is_maximal());
    ++instances;
  }
  EXPECT_EQ(instances, 200u);
}

TEST(FuzzExact, GreedyNeverBeatsExactOnRandomTinyInstances) {
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    util::Rng rng(seed * 17 + 3);
    const std::size_t n = 4 + rng.index(7);  // 4..10
    static graph::Graph g;
    g = graph::erdos_renyi(n, rng.uniform(0.2, 0.8), rng);
    Quotas q = prefs::random_quotas(g, 3, rng);
    const auto w = prefs::random_weights(g, rng);
    const auto greedy = lic_global(w, q);
    const auto opt = exact_max_weight_bmatching(w, q);
    ASSERT_LE(greedy.total_weight(w), opt.total_weight(w) + 1e-9) << seed;
    ASSERT_GE(greedy.total_weight(w), 0.5 * opt.total_weight(w) - 1e-9) << seed;
  }
}

TEST(FuzzBlockingPairs, CounterAgreesWithDefinitionalScan) {
  // Independent re-implementation of the blocking-pair definition.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    auto inst = testing::Instance::random_quotas("er", 14, 4.0, 3, seed * 19 + 11);
    const auto m = lic_global(*inst->weights, inst->profile->quotas());
    const auto& p = *inst->profile;
    std::size_t expected = 0;
    for (graph::EdgeId e = 0; e < inst->g.num_edges(); ++e) {
      if (m.contains(e)) continue;
      const auto& [u, v] = inst->g.edge(e);
      auto wants = [&](graph::NodeId a, graph::NodeId b) {
        if (m.load(a) < m.quota(a)) return true;
        for (const auto cur : m.connections(a)) {
          if (p.rank(a, b) < p.rank(a, cur)) return true;
        }
        return false;
      };
      if (wants(u, v) && wants(v, u)) ++expected;
    }
    EXPECT_EQ(count_blocking_pairs(p, m), expected) << seed;
  }
}

}  // namespace
}  // namespace overmatch::matching
