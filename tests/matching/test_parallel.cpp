#include "matching/parallel_local.hpp"
#include "obs/registry.hpp"

#include <gtest/gtest.h>

#include "matching/lic.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"
#include "util/thread_pool.hpp"

namespace overmatch::matching {
namespace {

TEST(ParallelLocal, MatchesLicOnHandInstance) {
  graph::GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(2, 3);
  const graph::Graph g = std::move(b).build();
  const prefs::EdgeWeights w(g, std::vector<double>{1.0, 5.0, 2.0});
  const auto seq = lic_global(w, Quotas(4, 1));
  const auto par = parallel_local_dominant(w, Quotas(4, 1), 2);
  EXPECT_TRUE(seq.same_edges(par));
}

class ParallelEquivalence
    : public ::testing::TestWithParam<std::tuple<const char*, std::uint32_t,
                                                 std::size_t>> {};

TEST_P(ParallelEquivalence, EqualsSequentialGreedy) {
  const auto [topology, quota, threads] = GetParam();
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto inst = testing::Instance::random(topology, 40, 6.0, quota, seed * 19);
    const auto seq = lic_global(*inst->weights, inst->profile->quotas());
    const auto par =
        parallel_local_dominant(*inst->weights, inst->profile->quotas(), threads);
    EXPECT_TRUE(seq.same_edges(par))
        << topology << " b=" << quota << " threads=" << threads << " seed=" << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ParallelEquivalence,
    ::testing::Combine(::testing::Values("er", "ba", "ws"),
                       ::testing::Values<std::uint32_t>(1, 2, 4),
                       ::testing::Values<std::size_t>(1, 2, 4)));

TEST(ParallelLocal, HeterogeneousQuotas) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto inst = testing::Instance::random_quotas("geo", 36, 5.0, 4, seed + 2);
    const auto seq = lic_global(*inst->weights, inst->profile->quotas());
    const auto par =
        parallel_local_dominant(*inst->weights, inst->profile->quotas(), 3);
    EXPECT_TRUE(seq.same_edges(par));
  }
}

TEST(ParallelLocal, ReportsRounds) {
  auto inst = testing::Instance::random("er", 40, 6.0, 2, 5);
  obs::Registry registry;
  const auto m = parallel_local_dominant(*inst->weights, inst->profile->quotas(),
                                         2, &registry);
  EXPECT_GT(registry.snapshot().counter("parallel.rounds"), 0u);
  EXPECT_TRUE(m.is_maximal());
}

TEST(ParallelLocal, RoundsBoundedByEdges) {
  // Each non-final round selects at least one edge.
  auto inst = testing::Instance::random("ba", 50, 4.0, 2, 6);
  obs::Registry registry;
  const auto m = parallel_local_dominant(*inst->weights, inst->profile->quotas(),
                                         4, &registry);
  EXPECT_LE(registry.snapshot().counter("parallel.rounds"), m.size() + 1);
}

TEST(ParallelLocal, EmptyGraph) {
  const graph::Graph g = graph::GraphBuilder(4).build();
  const prefs::EdgeWeights w(g, {});
  const auto m = parallel_local_dominant(w, Quotas(4, 1), 2);
  EXPECT_EQ(m.size(), 0u);
}

TEST(ParallelLocal, ExternalPoolMatchesOwnedPool) {
  // The pool overload must compute the same matching as the spawn-per-call
  // version, and reusing one pool across runs must not leak state between
  // them.
  auto inst = testing::Instance::random("er", 60, 7.0, 3, 12);
  util::ThreadPool pool(4);
  const auto seq = lic_global(*inst->weights, inst->profile->quotas());
  for (int run = 0; run < 3; ++run) {
    const auto par =
        parallel_local_dominant(*inst->weights, inst->profile->quotas(), pool);
    EXPECT_TRUE(seq.same_edges(par)) << "run " << run;
  }
}

TEST(ParallelLocal, StressLargeInstanceAcrossPoolSizes) {
  // Big enough that every code path is exercised with real multi-chunk
  // dispatch (frontier > chunk cutoff in early rounds, inline single-chunk
  // rounds in the tail). Under -DOVERMATCH_SANITIZE=thread this is the data
  //-race stress for the whole pipeline: parallel weight build + matcher.
  auto inst = testing::Instance::random("er", 3000, 10.0, 3, 99);
  const auto seq = lic_global(*inst->weights, inst->profile->quotas());
  for (const std::size_t threads : {std::size_t{2}, std::size_t{4}}) {
    util::ThreadPool pool(threads);
    const auto pw = prefs::paper_weights(*inst->profile, &pool);
    EXPECT_EQ(pw.keys(), inst->weights->keys());
    const auto par = parallel_local_dominant(pw, inst->profile->quotas(), pool);
    EXPECT_TRUE(seq.same_edges(par)) << "threads=" << threads;
  }
}

TEST(ParallelLocal, CertificateHolds) {
  auto inst = testing::Instance::random("er", 40, 8.0, 3, 7);
  const auto m =
      parallel_local_dominant(*inst->weights, inst->profile->quotas(), 4);
  EXPECT_TRUE(has_half_approx_certificate(m, *inst->weights));
  EXPECT_TRUE(is_valid_bmatching(m));
}

}  // namespace
}  // namespace overmatch::matching
