#include "graph/graph.hpp"

#include <gtest/gtest.h>

namespace overmatch::graph {
namespace {

TEST(GraphBuilder, EmptyGraph) {
  const Graph g = GraphBuilder(0).build();
  EXPECT_EQ(g.num_nodes(), 0u);
  EXPECT_EQ(g.num_edges(), 0u);
}

TEST(GraphBuilder, NodesWithoutEdges) {
  const Graph g = GraphBuilder(5).build();
  EXPECT_EQ(g.num_nodes(), 5u);
  for (NodeId v = 0; v < 5; ++v) EXPECT_EQ(g.degree(v), 0u);
}

TEST(GraphBuilder, AddEdgeReturnsSequentialIds) {
  GraphBuilder b(4);
  EXPECT_EQ(b.add_edge(0, 1), 0u);
  EXPECT_EQ(b.add_edge(2, 3), 1u);
  EXPECT_EQ(b.add_edge(1, 2), 2u);
}

TEST(GraphBuilder, EdgeEndpointsNormalized) {
  GraphBuilder b(3);
  b.add_edge(2, 0);  // reversed input
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.edge(0).u, 0u);
  EXPECT_EQ(g.edge(0).v, 2u);
}

TEST(GraphBuilder, HasEdgeSeesBothDirections) {
  GraphBuilder b(3);
  b.add_edge(0, 2);
  EXPECT_TRUE(b.has_edge(0, 2));
  EXPECT_TRUE(b.has_edge(2, 0));
  EXPECT_FALSE(b.has_edge(0, 1));
}

TEST(GraphBuilderDeathTest, SelfLoopAborts) {
  GraphBuilder b(3);
  EXPECT_DEATH(b.add_edge(1, 1), "self-loop");
}

TEST(GraphBuilderDeathTest, DuplicateEdgeAborts) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_DEATH(b.add_edge(1, 0), "duplicate");
}

TEST(Graph, AdjacencySortedByNeighbor) {
  GraphBuilder b(5);
  b.add_edge(2, 4);
  b.add_edge(2, 0);
  b.add_edge(2, 3);
  const Graph g = std::move(b).build();
  const auto adj = g.neighbors(2);
  ASSERT_EQ(adj.size(), 3u);
  EXPECT_EQ(adj[0].neighbor, 0u);
  EXPECT_EQ(adj[1].neighbor, 3u);
  EXPECT_EQ(adj[2].neighbor, 4u);
}

TEST(Graph, AdjacencyEdgeIdsMatch) {
  GraphBuilder b(3);
  const EdgeId e01 = b.add_edge(0, 1);
  const EdgeId e12 = b.add_edge(1, 2);
  const Graph g = std::move(b).build();
  for (const auto& a : g.neighbors(1)) {
    if (a.neighbor == 0) EXPECT_EQ(a.edge, e01);
    if (a.neighbor == 2) EXPECT_EQ(a.edge, e12);
  }
}

TEST(Graph, FindEdge) {
  GraphBuilder b(4);
  const EdgeId e = b.add_edge(1, 3);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.find_edge(1, 3), e);
  EXPECT_EQ(g.find_edge(3, 1), e);
  EXPECT_EQ(g.find_edge(0, 1), kInvalidEdge);
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_TRUE(g.has_edge(1, 3));
}

TEST(Graph, DegreeAndMaxDegree) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(0, 2);
  b.add_edge(0, 3);
  const Graph g = std::move(b).build();
  EXPECT_EQ(g.degree(0), 3u);
  EXPECT_EQ(g.degree(1), 1u);
  EXPECT_EQ(g.max_degree(), 3u);
}

TEST(Edge, OtherEndpoint) {
  const Edge e{2, 7};
  EXPECT_EQ(e.other(2), 7u);
  EXPECT_EQ(e.other(7), 2u);
}

TEST(EdgeDeathTest, OtherWithForeignNodeAborts) {
  const Edge e{2, 7};
  EXPECT_DEATH((void)e.other(3), "");
}

}  // namespace
}  // namespace overmatch::graph
