#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "graph/generators.hpp"

namespace overmatch::graph {
namespace {

TEST(ConnectedComponents, SingleComponent) {
  const auto comp = connected_components(cycle(5));
  EXPECT_EQ(comp.count, 1u);
}

TEST(ConnectedComponents, CountsIsolatedNodes) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  const auto comp = connected_components(std::move(b).build());
  EXPECT_EQ(comp.count, 3u);
  EXPECT_EQ(comp.label[0], comp.label[1]);
  EXPECT_NE(comp.label[2], comp.label[3]);
}

TEST(ConnectedComponents, EmptyGraph) {
  const auto comp = connected_components(GraphBuilder(0).build());
  EXPECT_EQ(comp.count, 0u);
}

TEST(IsConnected, Basics) {
  EXPECT_TRUE(is_connected(path(6)));
  EXPECT_TRUE(is_connected(GraphBuilder(0).build()));
  GraphBuilder b(3);
  b.add_edge(0, 1);
  EXPECT_FALSE(is_connected(std::move(b).build()));
}

TEST(DegreeStats, Path) {
  const auto s = degree_stats(path(4));
  EXPECT_EQ(s.min, 1u);
  EXPECT_EQ(s.max, 2u);
  EXPECT_DOUBLE_EQ(s.mean, 6.0 / 4.0);
}

TEST(ClusteringCoefficient, TriangleIsOne) {
  EXPECT_DOUBLE_EQ(clustering_coefficient(complete(3)), 1.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(complete(6)), 1.0);
}

TEST(ClusteringCoefficient, TreeIsZero) {
  EXPECT_DOUBLE_EQ(clustering_coefficient(star(8)), 0.0);
  EXPECT_DOUBLE_EQ(clustering_coefficient(path(8)), 0.0);
}

TEST(ClusteringCoefficient, NoWedges) {
  GraphBuilder b(4);
  b.add_edge(0, 1);
  b.add_edge(2, 3);
  EXPECT_DOUBLE_EQ(clustering_coefficient(std::move(b).build()), 0.0);
}

TEST(BfsDistances, PathDistances) {
  const auto d = bfs_distances(path(5), 0);
  for (std::size_t v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(BfsDistances, UnreachableIsMax) {
  GraphBuilder b(3);
  b.add_edge(0, 1);
  const auto d = bfs_distances(std::move(b).build(), 0);
  EXPECT_EQ(d[2], std::numeric_limits<std::size_t>::max());
}

TEST(MeanPathLength, CompleteGraphIsOne) {
  EXPECT_DOUBLE_EQ(mean_path_length(complete(8), 8, 1), 1.0);
}

TEST(MeanPathLength, PathGraphKnownValue) {
  // P3: distances 0-1:1, 0-2:2, 1-2:1 → mean over ordered pairs = (1+2+1+1+2+1)/6.
  EXPECT_NEAR(mean_path_length(path(3), 3, 1), 8.0 / 6.0, 1e-12);
}

TEST(MeanPathLength, SampledCloseToExact) {
  util::Rng rng(4);
  const Graph g = erdos_renyi(80, 0.15, rng);
  const double exact = mean_path_length(g, 80, 2);
  const double sampled = mean_path_length(g, 30, 3);
  EXPECT_NEAR(sampled, exact, exact * 0.2);
}

TEST(MeanPathLength, TinyGraphs) {
  EXPECT_DOUBLE_EQ(mean_path_length(GraphBuilder(1).build(), 4, 1), 0.0);
  EXPECT_DOUBLE_EQ(mean_path_length(GraphBuilder(0).build(), 4, 1), 0.0);
}

}  // namespace
}  // namespace overmatch::graph
