#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "graph/properties.hpp"

namespace overmatch::graph {
namespace {

TEST(ErdosRenyi, EdgeCountNearExpectation) {
  util::Rng rng(1);
  const std::size_t n = 100;
  const double p = 0.1;
  const Graph g = erdos_renyi(n, p, rng);
  const double expected = p * static_cast<double>(n * (n - 1) / 2);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.25);
}

TEST(ErdosRenyi, SparseSkipSamplerMatchesExpectation) {
  // Exercises the Batagelj–Brandes geometric-skip path at bench-like sparsity
  // (avg degree 8): edge count concentrates tightly around p·C(n,2), edges are
  // unique, and endpoints stay in range.
  util::Rng rng(21);
  const std::size_t n = 20000;
  const double p = 8.0 / static_cast<double>(n - 1);
  const Graph g = erdos_renyi(n, p, rng);
  const double expected = p * static_cast<double>(n) * static_cast<double>(n - 1) / 2.0;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.05);
  std::unordered_set<std::uint64_t> seen;
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    const auto& ed = g.edge(e);
    ASSERT_LT(ed.u, n);
    ASSERT_LT(ed.v, n);
    ASSERT_NE(ed.u, ed.v);
    const auto a = std::min(ed.u, ed.v);
    const auto b = std::max(ed.u, ed.v);
    ASSERT_TRUE(seen.insert((static_cast<std::uint64_t>(a) << 32) | b).second);
  }
}

TEST(ErdosRenyi, ExtremeProbabilities) {
  util::Rng rng(2);
  EXPECT_EQ(erdos_renyi(20, 0.0, rng).num_edges(), 0u);
  EXPECT_EQ(erdos_renyi(20, 1.0, rng).num_edges(), 190u);
}

TEST(Gnm, ExactEdgeCount) {
  util::Rng rng(3);
  const Graph g = gnm(30, 50, rng);
  EXPECT_EQ(g.num_nodes(), 30u);
  EXPECT_EQ(g.num_edges(), 50u);
}

TEST(Gnm, MaximumEdges) {
  util::Rng rng(4);
  const Graph g = gnm(8, 28, rng);
  EXPECT_EQ(g.num_edges(), 28u);
}

TEST(BarabasiAlbert, SizeAndMinDegree) {
  util::Rng rng(5);
  const Graph g = barabasi_albert(50, 3, rng);
  EXPECT_EQ(g.num_nodes(), 50u);
  // Seed clique K4 + 46 nodes × 3 edges.
  EXPECT_EQ(g.num_edges(), 6u + 46u * 3u);
  for (NodeId v = 0; v < 50; ++v) EXPECT_GE(g.degree(v), 3u);
}

TEST(BarabasiAlbert, ProducesHubs) {
  util::Rng rng(6);
  const Graph g = barabasi_albert(300, 2, rng);
  // Preferential attachment should yield a hub well above the mean degree.
  EXPECT_GE(g.max_degree(), 15u);
}

TEST(WattsStrogatz, RegularLatticeWhenNoRewiring) {
  util::Rng rng(7);
  const Graph g = watts_strogatz(20, 4, 0.0, rng);
  EXPECT_EQ(g.num_edges(), 40u);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(WattsStrogatz, RewiringPreservesEdgeCount) {
  util::Rng rng(8);
  const Graph g = watts_strogatz(40, 6, 0.5, rng);
  EXPECT_EQ(g.num_edges(), 120u);
}

TEST(RandomGeometric, RadiusControlsDensity) {
  util::Rng rng1(9);
  util::Rng rng2(9);
  const Graph sparse = random_geometric(60, 0.1, rng1);
  const Graph dense = random_geometric(60, 0.4, rng2);
  EXPECT_LT(sparse.num_edges(), dense.num_edges());
}

TEST(RandomGeometric, ExportsCoordinates) {
  util::Rng rng(10);
  std::vector<double> coords;
  const Graph g = random_geometric(15, 0.3, rng, &coords);
  ASSERT_EQ(coords.size(), 30u);
  for (const double c : coords) {
    EXPECT_GE(c, 0.0);
    EXPECT_LE(c, 1.0);
  }
  (void)g;
}

TEST(Grid, StructureOfThreeByFour) {
  const Graph g = grid(3, 4);
  EXPECT_EQ(g.num_nodes(), 12u);
  // 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8.
  EXPECT_EQ(g.num_edges(), 17u);
  EXPECT_TRUE(is_connected(g));
  EXPECT_EQ(g.degree(0), 2u);   // corner
  EXPECT_EQ(g.degree(5), 4u);   // interior
}

TEST(Complete, AllPairs) {
  const Graph g = complete(7);
  EXPECT_EQ(g.num_edges(), 21u);
  for (NodeId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 6u);
}

TEST(CompleteBipartite, Structure) {
  const Graph g = complete_bipartite(3, 4);
  EXPECT_EQ(g.num_nodes(), 7u);
  EXPECT_EQ(g.num_edges(), 12u);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.degree(v), 4u);
  for (NodeId v = 3; v < 7; ++v) EXPECT_EQ(g.degree(v), 3u);
  EXPECT_FALSE(g.has_edge(0, 1));  // no intra-side edges
}

TEST(PathCycleStar, Shapes) {
  EXPECT_EQ(path(5).num_edges(), 4u);
  EXPECT_EQ(cycle(5).num_edges(), 5u);
  const Graph s = star(6);
  EXPECT_EQ(s.num_edges(), 5u);
  EXPECT_EQ(s.degree(0), 5u);
}

TEST(RandomRegular, DegreesExact) {
  util::Rng rng(11);
  const Graph g = random_regular(20, 4, rng);
  for (NodeId v = 0; v < 20; ++v) EXPECT_EQ(g.degree(v), 4u);
}

TEST(ByName, AllGeneratorsProduceReasonableDegree) {
  for (const char* name : {"er", "ba", "ws", "geo", "regular"}) {
    util::Rng rng(12);
    const Graph g = by_name(name, 64, 6.0, rng);
    EXPECT_GE(g.num_nodes(), 64u) << name;
    const auto stats = degree_stats(g);
    EXPECT_GT(stats.mean, 2.0) << name;
    EXPECT_LT(stats.mean, 14.0) << name;
  }
}

TEST(ByName, GridIgnoresDegreeParameter) {
  util::Rng rng(13);
  const Graph g = by_name("grid", 25, 99.0, rng);
  EXPECT_EQ(g.num_nodes(), 25u);
  EXPECT_LE(g.max_degree(), 4u);
}

TEST(ConnectComponents, MakesGraphConnected) {
  // Two disjoint triangles.
  GraphBuilder b(6);
  b.add_edge(0, 1);
  b.add_edge(1, 2);
  b.add_edge(0, 2);
  b.add_edge(3, 4);
  b.add_edge(4, 5);
  b.add_edge(3, 5);
  const Graph g = std::move(b).build();
  EXPECT_FALSE(is_connected(g));
  const Graph c = connect_components(g);
  EXPECT_TRUE(is_connected(c));
  EXPECT_EQ(c.num_edges(), 7u);  // one bridge added
}

TEST(ConnectComponents, NoOpWhenConnected) {
  const Graph g = cycle(6);
  const Graph c = connect_components(g);
  EXPECT_EQ(c.num_edges(), g.num_edges());
}

TEST(Generators, DeterministicGivenSeed) {
  util::Rng a(99);
  util::Rng b(99);
  const Graph g1 = erdos_renyi(40, 0.2, a);
  const Graph g2 = erdos_renyi(40, 0.2, b);
  ASSERT_EQ(g1.num_edges(), g2.num_edges());
  for (EdgeId e = 0; e < g1.num_edges(); ++e) {
    EXPECT_EQ(g1.edge(e).u, g2.edge(e).u);
    EXPECT_EQ(g1.edge(e).v, g2.edge(e).v);
  }
}

}  // namespace
}  // namespace overmatch::graph
