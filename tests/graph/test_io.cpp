#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "graph/generators.hpp"

namespace overmatch::graph {
namespace {

TEST(EdgeListIo, StreamRoundTrip) {
  util::Rng rng(1);
  const Graph g = erdos_renyi(25, 0.2, rng);
  std::stringstream ss;
  write_edge_list(ss, g);
  const Graph h = read_edge_list(ss);
  ASSERT_EQ(h.num_nodes(), g.num_nodes());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (EdgeId e = 0; e < g.num_edges(); ++e) {
    EXPECT_EQ(h.edge(e).u, g.edge(e).u);
    EXPECT_EQ(h.edge(e).v, g.edge(e).v);
  }
}

TEST(EdgeListIo, EmptyGraph) {
  std::stringstream ss;
  write_edge_list(ss, GraphBuilder(0).build());
  const Graph h = read_edge_list(ss);
  EXPECT_EQ(h.num_nodes(), 0u);
  EXPECT_EQ(h.num_edges(), 0u);
}

TEST(EdgeListIo, HeaderFormat) {
  GraphBuilder b(3);
  b.add_edge(0, 2);
  std::stringstream ss;
  write_edge_list(ss, std::move(b).build());
  EXPECT_EQ(ss.str(), "3 1\n0 2\n");
}

TEST(EdgeListIo, FileRoundTrip) {
  const Graph g = cycle(9);
  const std::string tmp = ::testing::TempDir() + "/overmatch_io_test.edges";
  save_edge_list(tmp, g);
  const Graph h = load_edge_list(tmp);
  EXPECT_EQ(h.num_edges(), 9u);
  EXPECT_TRUE(h.has_edge(0, 8));
  std::remove(tmp.c_str());
}

TEST(EdgeListIoDeathTest, TruncatedInputAborts) {
  std::stringstream ss("5 3\n0 1\n");
  EXPECT_DEATH((void)read_edge_list(ss), "truncated");
}

TEST(EdgeListIoDeathTest, BadHeaderAborts) {
  std::stringstream ss("nonsense");
  EXPECT_DEATH((void)read_edge_list(ss), "header");
}

}  // namespace
}  // namespace overmatch::graph
