#include "overlay/peer.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace overmatch::overlay {
namespace {

TEST(Population, SizesAndRanges) {
  util::Rng rng(1);
  const auto pop = Population::random(50, 8, rng);
  EXPECT_EQ(pop.size(), 50u);
  for (NodeId v = 0; v < 50; ++v) {
    const auto& p = pop.peer(v);
    EXPECT_GE(p.x, 0.0);
    EXPECT_LT(p.x, 1.0);
    EXPECT_GE(p.y, 0.0);
    EXPECT_LT(p.y, 1.0);
    EXPECT_EQ(p.interests.size(), 8u);
    EXPECT_GT(p.bandwidth, 0.0);
    EXPECT_GT(p.uptime, 0.0);
    EXPECT_LE(p.uptime, 1.0);
  }
}

TEST(Population, InterestVectorsUnitNorm) {
  util::Rng rng(2);
  const auto pop = Population::random(20, 5, rng);
  for (NodeId v = 0; v < 20; ++v) {
    double n2 = 0.0;
    for (const double c : pop.peer(v).interests) n2 += c * c;
    EXPECT_NEAR(n2, 1.0, 1e-9);
  }
}

TEST(Population, TransactionsSymmetric) {
  util::Rng rng(3);
  auto pop = Population::random(30, 4, rng);
  for (NodeId a = 0; a < 30; ++a) {
    for (NodeId b = 0; b < 30; ++b) {
      EXPECT_DOUBLE_EQ(pop.transactions(a, b), pop.transactions(b, a));
    }
  }
}

TEST(Population, SetTransactionsRoundTrip) {
  util::Rng rng(4);
  auto pop = Population::random(10, 4, rng);
  pop.set_transactions(2, 7, 0.66);
  EXPECT_DOUBLE_EQ(pop.transactions(2, 7), 0.66);
  EXPECT_DOUBLE_EQ(pop.transactions(7, 2), 0.66);
}

TEST(Population, SomeHistoryExists) {
  util::Rng rng(5);
  const auto pop = Population::random(40, 4, rng);
  std::size_t nonzero = 0;
  for (NodeId a = 0; a < 40; ++a) {
    for (NodeId b = a + 1; b < 40; ++b) {
      if (pop.transactions(a, b) > 0.0) ++nonzero;
    }
  }
  EXPECT_GT(nonzero, 10u);
}

TEST(Population, DeterministicPerSeed) {
  util::Rng r1(6);
  util::Rng r2(6);
  const auto p1 = Population::random(15, 3, r1);
  const auto p2 = Population::random(15, 3, r2);
  for (NodeId v = 0; v < 15; ++v) {
    EXPECT_DOUBLE_EQ(p1.peer(v).x, p2.peer(v).x);
    EXPECT_DOUBLE_EQ(p1.peer(v).bandwidth, p2.peer(v).bandwidth);
  }
}

}  // namespace
}  // namespace overmatch::overlay
