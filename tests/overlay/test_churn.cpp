#include "overlay/churn.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/verify.hpp"

namespace overmatch::overlay {
namespace {

struct ChurnFixture {
  graph::Graph g;
  std::unique_ptr<prefs::PreferenceProfile> profile;
  std::unique_ptr<prefs::EdgeWeights> weights;

  explicit ChurnFixture(std::uint64_t seed, std::size_t n = 30) {
    util::Rng rng(seed);
    g = graph::erdos_renyi(n, 0.3, rng);
    profile = std::make_unique<prefs::PreferenceProfile>(
        prefs::PreferenceProfile::random(g, prefs::uniform_quotas(g, 3), rng));
    weights = std::make_unique<prefs::EdgeWeights>(prefs::paper_weights(*profile));
  }
};

TEST(Churn, InitialBuildIsGreedyMatching) {
  ChurnFixture f(1);
  ChurnSimulator sim(*f.profile, *f.weights);
  EXPECT_TRUE(matching::is_valid_bmatching(sim.matching()));
  EXPECT_TRUE(sim.matching().is_maximal());
  // Incremental == from-scratch at time zero → disruption of first event is
  // meaningful; here just check every node alive.
  for (NodeId v = 0; v < f.g.num_nodes(); ++v) EXPECT_TRUE(sim.alive(v));
}

TEST(Churn, LeaveRemovesAllConnectionsOfNode) {
  ChurnFixture f(2);
  ChurnSimulator sim(*f.profile, *f.weights);
  const NodeId victim = 5;
  const auto before = sim.matching().load(victim);
  const auto ev = sim.leave(victim);
  EXPECT_EQ(ev.edges_removed, before);
  EXPECT_EQ(sim.matching().load(victim), 0u);
  EXPECT_FALSE(sim.alive(victim));
  EXPECT_TRUE(matching::is_valid_bmatching(sim.matching()));
}

TEST(Churn, RepairNeverMatchesDeadNodes) {
  ChurnFixture f(3);
  ChurnSimulator sim(*f.profile, *f.weights);
  sim.leave(0);
  sim.leave(1);
  sim.leave(2);
  for (const NodeId dead : {0u, 1u, 2u}) {
    EXPECT_EQ(sim.matching().load(dead), 0u);
  }
}

TEST(Churn, JoinRestoresParticipation) {
  ChurnFixture f(4);
  ChurnSimulator sim(*f.profile, *f.weights);
  const NodeId node = 7;
  sim.leave(node);
  const auto ev = sim.join(node);
  EXPECT_TRUE(sim.alive(node));
  EXPECT_TRUE(ev.join);
  // A node with neighbours and spare capacity around it generally reconnects;
  // at minimum the matching stays valid and maximal over alive edges.
  EXPECT_TRUE(matching::is_valid_bmatching(sim.matching()));
}

TEST(Churn, EventReportsAreConsistent) {
  ChurnFixture f(5);
  ChurnSimulator sim(*f.profile, *f.weights);
  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const auto v = static_cast<NodeId>(rng.index(f.g.num_nodes()));
    const auto ev = sim.alive(v) ? sim.leave(v) : sim.join(v);
    EXPECT_GE(ev.satisfaction_total, 0.0);
    EXPECT_GT(ev.incremental_weight, 0.0);
    EXPECT_GT(ev.recompute_weight, 0.0);
    // Zero disruption means the incremental and recomputed matchings are the
    // same edge set, hence the same weight.
    if (ev.disruption == 0) {
      EXPECT_NEAR(ev.incremental_weight, ev.recompute_weight, 1e-9);
    }
    // Incremental keeps within a factor of the recompute in both directions —
    // it is still a maximal matching over the same alive edges.
    EXPECT_GT(ev.incremental_weight, 0.4 * ev.recompute_weight);
  }
}

TEST(Churn, LeaveThenJoinOfIsolatedEventIsStableState) {
  ChurnFixture f(6);
  ChurnSimulator sim(*f.profile, *f.weights);
  const auto ev1 = sim.leave(9);
  const auto ev2 = sim.join(9);
  // After rejoin, weight is at least what the leave left behind. (It may even
  // exceed the original from-scratch greedy weight: repairs can keep edges
  // that steer the greedy completion past its usual myopic picks.)
  EXPECT_GE(ev2.incremental_weight, ev1.incremental_weight - 1e-9);
}

TEST(ChurnDeathTest, DoubleLeaveAborts) {
  ChurnFixture f(7);
  ChurnSimulator sim(*f.profile, *f.weights);
  sim.leave(3);
  EXPECT_DEATH((void)sim.leave(3), "offline");
}

TEST(ChurnDeathTest, JoinOnlineAborts) {
  ChurnFixture f(8);
  ChurnSimulator sim(*f.profile, *f.weights);
  EXPECT_DEATH((void)sim.join(3), "online");
}

}  // namespace
}  // namespace overmatch::overlay
