#include "overlay/churn.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "matching/bsuitor.hpp"
#include "matching/verify.hpp"

namespace overmatch::overlay {
namespace {

struct ChurnFixture {
  graph::Graph g;
  std::unique_ptr<prefs::PreferenceProfile> profile;
  std::unique_ptr<prefs::EdgeWeights> weights;

  explicit ChurnFixture(std::uint64_t seed, std::size_t n = 30) {
    util::Rng rng(seed);
    g = graph::erdos_renyi(n, 0.3, rng);
    profile = std::make_unique<prefs::PreferenceProfile>(
        prefs::PreferenceProfile::random(g, prefs::uniform_quotas(g, 3), rng));
    weights = std::make_unique<prefs::EdgeWeights>(prefs::paper_weights(*profile));
  }
};

constexpr ChurnMode kAllModes[] = {ChurnMode::kIncremental,
                                   ChurnMode::kGreedyKeep, ChurnMode::kScratch};

TEST(Churn, ModeNamesRoundTrip) {
  for (const ChurnMode m : kAllModes) {
    EXPECT_EQ(churn_mode_by_name(churn_mode_name(m)), m);
  }
}

TEST(Churn, InitialBuildIsGreedyMatchingInAllModes) {
  ChurnFixture f(1);
  const auto batch = matching::b_suitor(*f.weights, f.profile->quotas());
  for (const ChurnMode mode : kAllModes) {
    ChurnSimulator sim(*f.profile, *f.weights, {.mode = mode});
    EXPECT_TRUE(matching::is_valid_bmatching(sim.matching()));
    EXPECT_TRUE(sim.matching().is_maximal());
    // All three engines start from the same greedy (= b-Suitor) matching.
    EXPECT_TRUE(sim.matching().same_edges(batch)) << churn_mode_name(mode);
    for (NodeId v = 0; v < f.g.num_nodes(); ++v) EXPECT_TRUE(sim.alive(v));
  }
}

TEST(Churn, LeaveRemovesAllConnectionsOfNode) {
  for (const ChurnMode mode : kAllModes) {
    ChurnFixture f(2);
    ChurnSimulator sim(*f.profile, *f.weights, {.mode = mode});
    const NodeId victim = 5;
    const auto before = sim.matching().load(victim);
    const auto ev = sim.leave(victim);
    // edges_removed counts the victim's torn connections plus any collateral
    // removals made by the repair cascade, so it can only exceed `before`.
    EXPECT_GE(ev.edges_removed, before) << churn_mode_name(mode);
    EXPECT_EQ(sim.matching().load(victim), 0u);
    EXPECT_FALSE(sim.alive(victim));
    EXPECT_TRUE(matching::is_valid_bmatching(sim.matching()));
  }
}

TEST(Churn, RepairNeverMatchesDeadNodes) {
  for (const ChurnMode mode : kAllModes) {
    ChurnFixture f(3);
    ChurnSimulator sim(*f.profile, *f.weights, {.mode = mode});
    sim.leave(0);
    sim.leave(1);
    sim.leave(2);
    for (const NodeId dead : {0u, 1u, 2u}) {
      EXPECT_EQ(sim.matching().load(dead), 0u) << churn_mode_name(mode);
    }
  }
}

TEST(Churn, JoinRestoresParticipation) {
  for (const ChurnMode mode : kAllModes) {
    ChurnFixture f(4);
    ChurnSimulator sim(*f.profile, *f.weights, {.mode = mode});
    const NodeId node = 7;
    sim.leave(node);
    const auto ev = sim.join(node);
    EXPECT_TRUE(sim.alive(node));
    EXPECT_TRUE(ev.join);
    // A node with neighbours and spare capacity around it generally
    // reconnects; at minimum the matching stays valid.
    EXPECT_TRUE(matching::is_valid_bmatching(sim.matching()));
  }
}

TEST(Churn, OracleFieldsAreZeroWithoutOracle) {
  ChurnFixture f(5);
  ChurnSimulator sim(*f.profile, *f.weights);  // incremental, oracle off
  const auto ev = sim.leave(5);
  EXPECT_EQ(ev.recompute_weight, 0.0);
  EXPECT_EQ(ev.disruption, 0u);
  EXPECT_GT(ev.incremental_weight, 0.0);
}

TEST(Churn, EventReportsAreConsistent) {
  ChurnFixture f(5);
  ChurnSimulator sim(*f.profile, *f.weights, {.oracle = true});
  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const auto v = static_cast<NodeId>(rng.index(f.g.num_nodes()));
    const auto ev = sim.alive(v) ? sim.leave(v) : sim.join(v);
    EXPECT_GE(ev.satisfaction_total, 0.0);
    EXPECT_GT(ev.incremental_weight, 0.0);
    EXPECT_GT(ev.recompute_weight, 0.0);
    // The incremental engine restores the suitor fixed point after every
    // event, and for a strict total weight order that fixed point is the
    // unique greedy matching of the alive subgraph — so the oracle sees zero
    // gap and zero disruption.
    EXPECT_EQ(ev.disruption, 0u);
    EXPECT_NEAR(ev.incremental_weight, ev.recompute_weight, 1e-9);
  }
}

TEST(Churn, GreedyKeepStaysWithinHalfOfOracle) {
  ChurnFixture f(5);
  ChurnSimulator sim(*f.profile, *f.weights,
                     {.mode = ChurnMode::kGreedyKeep, .oracle = true});
  util::Rng rng(5);
  for (int i = 0; i < 10; ++i) {
    const auto v = static_cast<NodeId>(rng.index(f.g.num_nodes()));
    const auto ev = sim.alive(v) ? sim.leave(v) : sim.join(v);
    // Stability-first repair drifts from the greedy matching but stays a
    // maximal matching over the same alive edges.
    EXPECT_GT(ev.incremental_weight, 0.4 * ev.recompute_weight);
    if (ev.disruption == 0) {
      EXPECT_NEAR(ev.incremental_weight, ev.recompute_weight, 1e-9);
    }
  }
}

TEST(Churn, ScratchModeAlwaysEqualsOracle) {
  ChurnFixture f(9);
  ChurnSimulator sim(*f.profile, *f.weights, {.mode = ChurnMode::kScratch});
  util::Rng rng(9);
  for (int i = 0; i < 10; ++i) {
    const auto v = static_cast<NodeId>(rng.index(f.g.num_nodes()));
    const auto ev = sim.alive(v) ? sim.leave(v) : sim.join(v);
    EXPECT_EQ(ev.disruption, 0u);
    EXPECT_NEAR(ev.incremental_weight, ev.recompute_weight, 1e-9);
  }
}

TEST(Churn, IncrementalTracksScratchEdgeForEdge) {
  ChurnFixture f(10);
  ChurnSimulator inc(*f.profile, *f.weights, {.mode = ChurnMode::kIncremental});
  ChurnSimulator scr(*f.profile, *f.weights, {.mode = ChurnMode::kScratch});
  util::Rng rng(10);
  for (int i = 0; i < 40; ++i) {
    const auto v = static_cast<NodeId>(rng.index(f.g.num_nodes()));
    if (inc.alive(v)) {
      inc.leave(v);
      scr.leave(v);
    } else {
      inc.join(v);
      scr.join(v);
    }
    EXPECT_TRUE(inc.matching().same_edges(scr.matching())) << "event " << i;
  }
}

TEST(Churn, LeaveThenJoinOfIsolatedEventIsStableState) {
  ChurnFixture f(6);
  ChurnSimulator sim(*f.profile, *f.weights);
  const auto ev1 = sim.leave(9);
  const auto ev2 = sim.join(9);
  // After rejoin the alive set is back to the full graph, so the incremental
  // engine (which equals from-scratch greedy) restores at least the weight
  // the leave left behind.
  EXPECT_GE(ev2.incremental_weight, ev1.incremental_weight - 1e-9);
}

TEST(Churn, ArrivalNamesRoundTrip) {
  for (const ChurnArrival a : {ChurnArrival::kUniform, ChurnArrival::kPoisson,
                               ChurnArrival::kFlashCrowd}) {
    const auto back = try_churn_arrival_by_name(churn_arrival_name(a));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
  }
  EXPECT_FALSE(try_churn_arrival_by_name("bogus").has_value());
  EXPECT_FALSE(try_churn_mode_by_name("bogus").has_value());
}

TEST(Churn, TrafficBurstsAreSequentiallyValidAndDeterministic) {
  for (const ChurnArrival a : {ChurnArrival::kUniform, ChurnArrival::kPoisson,
                               ChurnArrival::kFlashCrowd}) {
    ChurnTraffic t1(50, a, 8.0, 99);
    ChurnTraffic t2(50, a, 8.0, 99);
    std::vector<std::uint8_t> alive(50, 1);
    for (int b = 0; b < 20; ++b) {
      const auto burst = t1.next_burst();
      const auto twin = t2.next_burst();
      ASSERT_EQ(burst.size(), twin.size());
      ASSERT_FALSE(burst.empty());
      for (std::size_t k = 0; k < burst.size(); ++k) {
        const auto& ev = burst[k];
        ASSERT_TRUE(ev.is_node_event());
        ASSERT_EQ(ev.kind, twin[k].kind);
        ASSERT_EQ(ev.u, twin[k].u);
        // Valid in order: leave of an online node, join of an offline one.
        if (ev.kind == matching::ChurnEvent::Kind::kLeave) {
          ASSERT_EQ(alive[ev.u], 1) << "burst " << b << " event " << k;
          alive[ev.u] = 0;
        } else {
          ASSERT_EQ(alive[ev.u], 0) << "burst " << b << " event " << k;
          alive[ev.u] = 1;
        }
      }
    }
    // The generator's own alive view matches the replayed one.
    for (NodeId v = 0; v < 50; ++v) EXPECT_EQ(t1.alive(v), alive[v] != 0);
  }
}

TEST(Churn, ApplyBatchMatchesPerEventReplayInIncrementalMode) {
  ChurnFixture f(21, 60);
  ChurnSimulator batched(*f.profile, *f.weights, {});
  ChurnSimulator byone(*f.profile, *f.weights, {});
  ChurnTraffic traffic(f.g.num_nodes(), ChurnArrival::kPoisson, 12.0, 7);
  for (int b = 0; b < 10; ++b) {
    const auto burst = traffic.next_burst();
    const auto rep = batched.apply_batch(burst);
    double sat = 0.0;
    for (const auto& ev : burst) {
      const auto done = ev.kind == matching::ChurnEvent::Kind::kJoin
                            ? byone.join(ev.u)
                            : byone.leave(ev.u);
      sat = done.satisfaction_total;
    }
    EXPECT_EQ(rep.events, burst.size());
    ASSERT_TRUE(batched.matching().same_edges(byone.matching())) << "burst " << b;
    EXPECT_NEAR(rep.incremental_weight,
                byone.matching().total_weight(*f.weights), 1e-9);
    EXPECT_NEAR(rep.satisfaction_total, sat, 1e-9);
    for (NodeId v = 0; v < f.g.num_nodes(); ++v) {
      ASSERT_EQ(batched.alive(v), byone.alive(v)) << "node " << v;
    }
  }
}

TEST(Churn, ApplyBatchFallsBackToPerEventReplayInOtherModes) {
  ChurnFixture f(22, 40);
  ChurnSimulator greedy(*f.profile, *f.weights, {.mode = ChurnMode::kGreedyKeep});
  ChurnSimulator twin(*f.profile, *f.weights, {.mode = ChurnMode::kGreedyKeep});
  const std::vector<matching::ChurnEvent> burst = {
      matching::ChurnEvent::leave(3), matching::ChurnEvent::leave(9),
      matching::ChurnEvent::join(3)};
  const auto rep = greedy.apply_batch(burst);
  twin.leave(3);
  twin.leave(9);
  twin.join(3);
  EXPECT_EQ(rep.events, 3u);
  EXPECT_EQ(rep.coalesced, 0u);  // no batch path: nothing nets out
  EXPECT_TRUE(greedy.matching().same_edges(twin.matching()));
}

TEST(ChurnDeathTest, ApplyBatchEdgeEventsRequireIncrementalMode) {
  ChurnFixture f(23);
  ChurnSimulator sim(*f.profile, *f.weights, {.mode = ChurnMode::kScratch});
  const auto& [i, j] = f.g.edge(0);
  const std::vector<matching::ChurnEvent> burst = {
      matching::ChurnEvent::edge_down(i, j)};
  EXPECT_DEATH((void)sim.apply_batch(burst), "kIncremental");
}

TEST(ChurnDeathTest, DoubleLeaveAborts) {
  ChurnFixture f(7);
  ChurnSimulator sim(*f.profile, *f.weights);
  sim.leave(3);
  EXPECT_DEATH((void)sim.leave(3), "offline");
}

TEST(ChurnDeathTest, JoinOnlineAborts) {
  ChurnFixture f(8);
  ChurnSimulator sim(*f.profile, *f.weights);
  EXPECT_DEATH((void)sim.join(3), "online");
}

}  // namespace
}  // namespace overmatch::overlay
