#include "overlay/builder.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "matching/lic.hpp"
#include "matching/verify.hpp"

namespace overmatch::overlay {
namespace {

std::unique_ptr<Overlay> small_overlay(std::uint64_t seed, std::uint32_t quota = 3) {
  util::Rng rng(seed);
  auto g = graph::erdos_renyi(30, 0.25, rng);
  auto pop = Population::random(30, 6, rng);
  const auto metrics = random_metrics(30, rng);
  BuildOptions opt;
  opt.quota = quota;
  opt.seed = seed;
  return build_overlay(std::move(g), pop, metrics, opt);
}

TEST(BuildOverlay, ProducesValidMatching) {
  const auto ov = small_overlay(1);
  EXPECT_TRUE(matching::is_valid_bmatching(ov->matching()));
  EXPECT_TRUE(ov->matching().is_maximal());
  EXPECT_GT(ov->stats().total_sent, 0u);
}

TEST(BuildOverlay, MatchesCentralizedLic) {
  const auto ov = small_overlay(2);
  const auto lic = matching::lic_global(ov->weights(), ov->profile().quotas());
  EXPECT_TRUE(lic.same_edges(ov->matching()));
}

TEST(BuildOverlay, QuotasRespectOption) {
  const auto ov = small_overlay(3, 2);
  for (NodeId v = 0; v < ov->potential().num_nodes(); ++v) {
    EXPECT_LE(ov->matching().load(v), 2u);
  }
}

TEST(BuildOverlay, DeterministicPerSeed) {
  const auto a = small_overlay(4);
  const auto b = small_overlay(4);
  EXPECT_TRUE(a->matching().same_edges(b->matching()));
  EXPECT_EQ(a->stats().total_sent, b->stats().total_sent);
}

TEST(MatchedSubgraph, MirrorsMatching) {
  const auto ov = small_overlay(5);
  const auto sub = matched_subgraph(ov->matching());
  EXPECT_EQ(sub.num_nodes(), ov->potential().num_nodes());
  EXPECT_EQ(sub.num_edges(), ov->matching().size());
  for (const auto e : ov->matching().edges()) {
    const auto& edge = ov->potential().edge(e);
    EXPECT_TRUE(sub.has_edge(edge.u, edge.v));
  }
}

TEST(MatchedSubgraph, DegreesEqualLoads) {
  const auto ov = small_overlay(6);
  const auto sub = matched_subgraph(ov->matching());
  for (NodeId v = 0; v < sub.num_nodes(); ++v) {
    EXPECT_EQ(sub.degree(v), ov->matching().load(v));
  }
}

TEST(BuildOverlay, WeightsMatchProfile) {
  const auto ov = small_overlay(7);
  const auto expected = prefs::paper_weights(ov->profile());
  for (graph::EdgeId e = 0; e < ov->potential().num_edges(); ++e) {
    EXPECT_DOUBLE_EQ(ov->weights().weight(e), expected.weight(e));
  }
}

}  // namespace
}  // namespace overmatch::overlay
