#include "overlay/quality.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace overmatch::overlay {
namespace {

std::unique_ptr<Overlay> overlay_for(std::uint64_t seed, double density,
                                     std::uint32_t quota) {
  util::Rng rng(seed);
  auto g = graph::erdos_renyi(40, density, rng);
  auto pop = Population::random(40, 6, rng);
  const auto metrics = random_metrics(40, rng);
  BuildOptions opt;
  opt.quota = quota;
  opt.seed = seed;
  return build_overlay(std::move(g), pop, metrics, opt);
}

TEST(Quality, ReportFieldsConsistent) {
  const auto ov = overlay_for(1, 0.3, 3);
  const auto r = analyze(*ov);
  EXPECT_GE(r.satisfaction_mean, 0.0);
  EXPECT_LE(r.satisfaction_mean, 1.0 + 1e-9);
  EXPECT_GE(r.satisfaction_min, 0.0);
  EXPECT_LE(r.satisfaction_min, r.satisfaction_p10 + 1e-9);
  EXPECT_LE(r.satisfaction_p10, r.satisfaction_mean + 1e-9);
  EXPECT_NEAR(r.satisfaction_total, r.satisfaction_mean * 40.0, 1e-6);
  EXPECT_EQ(r.connections, ov->matching().size());
  EXPECT_GT(r.quota_utilization, 0.0);
  EXPECT_LE(r.quota_utilization, 1.0 + 1e-9);
  EXPECT_GT(r.messages, 0u);
  EXPECT_GE(r.components, 1u);
}

TEST(Quality, DenserPotentialRaisesModifiedObjective) {
  // Mean eq.-1 satisfaction is degree-normalized (L_i grows with density), so
  // it is NOT monotone in density. The modified objective — what the protocol
  // optimizes — is: longer lists make top-b picks relatively better, so the
  // achieved total weight grows with density.
  const auto sparse = overlay_for(3, 0.1, 3);
  const auto dense = overlay_for(3, 0.6, 3);
  EXPECT_GT(dense->matching().total_weight(dense->weights()),
            sparse->matching().total_weight(sparse->weights()));
  // Utilization is also at least as good on the dense overlay.
  EXPECT_GE(analyze(*dense).quota_utilization + 1e-9,
            analyze(*sparse).quota_utilization);
}

TEST(Quality, UtilizationNearOneOnDenseGraph) {
  const auto r = analyze(*overlay_for(4, 0.8, 2));
  EXPECT_GT(r.quota_utilization, 0.85);
}

TEST(Quality, ToStringMentionsKeyNumbers) {
  const auto ov = overlay_for(5, 0.3, 2);
  const auto r = analyze(*ov);
  const auto s = to_string(r);
  EXPECT_NE(s.find("satisfaction"), std::string::npos);
  EXPECT_NE(s.find("messages"), std::string::npos);
  EXPECT_NE(s.find("components"), std::string::npos);
}

}  // namespace
}  // namespace overmatch::overlay
