#include "overlay/discovery.hpp"

#include <gtest/gtest.h>

#include "graph/properties.hpp"

namespace overmatch::overlay {
namespace {

DiscoveryOptions opts(std::size_t rounds, std::uint64_t seed) {
  DiscoveryOptions o;
  o.bootstrap_contacts = 3;
  o.view_size = 10;
  o.rounds = rounds;
  o.gossip_sample = 4;
  o.seed = seed;
  return o;
}

TEST(Discovery, ViewsBoundedAndValid) {
  const auto r = discover_candidates(50, opts(5, 1));
  EXPECT_EQ(r.candidates.num_nodes(), 50u);
  // Degree can exceed view_size (in-knowledge counts), but every node's own
  // view contributed at most view_size edges; total edges ≤ n · view_size.
  EXPECT_LE(r.candidates.num_edges(), 50u * 10u);
  for (graph::NodeId v = 0; v < 50; ++v) {
    EXPECT_FALSE(r.candidates.has_edge(v, v));
  }
}

TEST(Discovery, BootstrapAloneGivesRing) {
  // Zero rounds: candidate graph = bootstrap contacts only, which include the
  // ring, so it is connected.
  const auto r = discover_candidates(40, opts(0, 2));
  EXPECT_TRUE(graph::is_connected(r.candidates));
  EXPECT_EQ(r.stats.total_sent, 0u);
}

TEST(Discovery, GossipGrowsKnowledge) {
  const auto few = discover_candidates(60, opts(1, 3));
  const auto many = discover_candidates(60, opts(8, 3));
  EXPECT_GT(many.candidates.num_edges(), few.candidates.num_edges());
  EXPECT_GT(many.stats.total_sent, few.stats.total_sent);
}

TEST(Discovery, StaysConnected) {
  for (const std::size_t rounds : {1u, 4u, 8u}) {
    const auto r = discover_candidates(48, opts(rounds, 4));
    EXPECT_TRUE(graph::is_connected(r.candidates)) << rounds;
  }
}

TEST(Discovery, DeterministicPerSeed) {
  const auto a = discover_candidates(30, opts(4, 7));
  const auto b = discover_candidates(30, opts(4, 7));
  ASSERT_EQ(a.candidates.num_edges(), b.candidates.num_edges());
  for (graph::EdgeId e = 0; e < a.candidates.num_edges(); ++e) {
    EXPECT_EQ(a.candidates.edge(e).u, b.candidates.edge(e).u);
    EXPECT_EQ(a.candidates.edge(e).v, b.candidates.edge(e).v);
  }
}

TEST(Discovery, DifferentSeedsDiffer) {
  const auto a = discover_candidates(30, opts(4, 8));
  const auto b = discover_candidates(30, opts(4, 9));
  bool differ = a.candidates.num_edges() != b.candidates.num_edges();
  if (!differ) {
    for (graph::EdgeId e = 0; e < a.candidates.num_edges(); ++e) {
      if (!(a.candidates.edge(e) == b.candidates.edge(e))) {
        differ = true;
        break;
      }
    }
  }
  EXPECT_TRUE(differ);
}

TEST(Discovery, TrafficLinearInRoundsAndSample) {
  const auto r = discover_candidates(40, opts(6, 10));
  // Per round per peer: 1 PULL + ≤ sample PUSH, answered by ≤ sample PUSH.
  const std::size_t bound = 40 * 6 * (1 + 2 * 4);
  EXPECT_LE(r.stats.total_sent, bound);
  EXPECT_GT(r.stats.total_sent, 40u * 6u / 2u);
}

}  // namespace
}  // namespace overmatch::overlay
