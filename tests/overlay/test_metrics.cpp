#include "overlay/metrics.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.hpp"

namespace overmatch::overlay {
namespace {

TEST(MetricNames, RoundTrip) {
  for (const Metric m : {Metric::kProximity, Metric::kInterests, Metric::kBandwidth,
                         Metric::kUptime, Metric::kTransactions, Metric::kHybrid}) {
    EXPECT_EQ(metric_by_name(metric_name(m)), m);
  }
}

TEST(MetricNamesDeathTest, UnknownAborts) {
  EXPECT_DEATH((void)metric_by_name("nope"), "unknown");
}

TEST(MetricScore, ProximityPrefersCloserPeers) {
  util::Rng rng(1);
  auto pop = Population::random(3, 4, rng);
  // Scores are negative distances: closer → larger.
  const double s01 = metric_score(pop, Metric::kProximity, 0, 1);
  const auto& p0 = pop.peer(0);
  const auto& p1 = pop.peer(1);
  const double d01 = std::hypot(p0.x - p1.x, p0.y - p1.y);
  EXPECT_NEAR(s01, -d01, 1e-12);
}

TEST(MetricScore, InterestsIsSymmetricCosine) {
  util::Rng rng(2);
  auto pop = Population::random(5, 6, rng);
  for (NodeId a = 0; a < 5; ++a) {
    for (NodeId b = 0; b < 5; ++b) {
      if (a == b) continue;
      EXPECT_NEAR(metric_score(pop, Metric::kInterests, a, b),
                  metric_score(pop, Metric::kInterests, b, a), 1e-12);
      EXPECT_LE(metric_score(pop, Metric::kInterests, a, b), 1.0 + 1e-9);
      EXPECT_GE(metric_score(pop, Metric::kInterests, a, b), -1.0 - 1e-9);
    }
  }
}

TEST(MetricScore, BandwidthLooksAtTargetOnly) {
  util::Rng rng(3);
  auto pop = Population::random(4, 4, rng);
  EXPECT_DOUBLE_EQ(metric_score(pop, Metric::kBandwidth, 0, 2),
                   metric_score(pop, Metric::kBandwidth, 1, 2));
  EXPECT_DOUBLE_EQ(metric_score(pop, Metric::kBandwidth, 0, 2), pop.peer(2).bandwidth);
}

TEST(MetricScore, HybridBounded) {
  util::Rng rng(4);
  auto pop = Population::random(10, 4, rng);
  for (NodeId a = 0; a < 10; ++a) {
    for (NodeId b = 0; b < 10; ++b) {
      if (a == b) continue;
      const double s = metric_score(pop, Metric::kHybrid, a, b);
      EXPECT_GE(s, -0.1);
      EXPECT_LE(s, 1.1);
    }
  }
}

TEST(BuildProfile, RanksFollowChosenMetric) {
  util::Rng rng(5);
  const auto g = graph::complete(6);
  auto pop = Population::random(6, 4, rng);
  const auto metrics = homogeneous_metrics(6, Metric::kBandwidth);
  auto p = build_profile(g, pop, metrics, prefs::uniform_quotas(g, 2));
  // Every node's top choice is the highest-bandwidth neighbour.
  for (NodeId v = 0; v < 6; ++v) {
    const auto list = p.list(v);
    for (std::size_t k = 0; k + 1 < list.size(); ++k) {
      EXPECT_GE(pop.peer(list[k]).bandwidth, pop.peer(list[k + 1]).bandwidth);
    }
  }
}

TEST(BuildProfile, HeterogeneousMetricsDiffer) {
  util::Rng rng(6);
  const auto g = graph::complete(8);
  auto pop = Population::random(8, 4, rng);
  auto p_bw = build_profile(g, pop, homogeneous_metrics(8, Metric::kBandwidth),
                            prefs::uniform_quotas(g, 2));
  auto p_prox = build_profile(g, pop, homogeneous_metrics(8, Metric::kProximity),
                              prefs::uniform_quotas(g, 2));
  // With random attributes the two orderings almost surely differ somewhere.
  bool any_diff = false;
  for (NodeId v = 0; v < 8 && !any_diff; ++v) {
    const auto lb = p_bw.list(v);
    const auto lp = p_prox.list(v);
    for (std::size_t k = 0; k < lb.size(); ++k) {
      if (lb[k] != lp[k]) {
        any_diff = true;
        break;
      }
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(RandomMetrics, CoversSeveralKinds) {
  util::Rng rng(7);
  const auto ms = random_metrics(100, rng);
  std::set<Metric> kinds(ms.begin(), ms.end());
  EXPECT_GE(kinds.size(), 3u);
}

}  // namespace
}  // namespace overmatch::overlay
