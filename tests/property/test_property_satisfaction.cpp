// Property sweeps over the satisfaction metric (eq. 1): range, monotonicity
// and exchange properties that the optimization arguments rely on.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.hpp"
#include "prefs/satisfaction.hpp"

namespace overmatch::prefs {
namespace {

using graph::Graph;
using graph::NodeId;

struct SatParams {
  std::size_t n;
  std::uint32_t quota;
  std::uint64_t seed;
};

class SatisfactionProperties : public ::testing::TestWithParam<SatParams> {
 protected:
  void SetUp() override {
    util::Rng rng(GetParam().seed);
    g_ = graph::complete(GetParam().n);
    profile_ = std::make_unique<PreferenceProfile>(
        PreferenceProfile::random(g_, uniform_quotas(g_, GetParam().quota), rng));
    rng_ = std::make_unique<util::Rng>(GetParam().seed ^ 0xbeef);
  }

  std::vector<NodeId> random_conns(NodeId v, std::size_t count) {
    std::vector<NodeId> nbrs;
    for (const auto& a : g_.neighbors(v)) nbrs.push_back(a.neighbor);
    rng_->shuffle(nbrs);
    nbrs.resize(std::min(count, nbrs.size()));
    return nbrs;
  }

  Graph g_;
  std::unique_ptr<PreferenceProfile> profile_;
  std::unique_ptr<util::Rng> rng_;
};

TEST_P(SatisfactionProperties, RangeAndOrderInvariance) {
  const auto& p = *profile_;
  for (NodeId v = 0; v < g_.num_nodes(); ++v) {
    for (std::uint32_t c = 0; c <= p.quota(v); ++c) {
      auto conns = random_conns(v, c);
      const double s = satisfaction(p, v, conns);
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0 + 1e-12);
      // Permuting the span leaves the value unchanged.
      std::reverse(conns.begin(), conns.end());
      EXPECT_DOUBLE_EQ(s, satisfaction(p, v, conns));
      // Modified satisfaction never exceeds the original.
      EXPECT_LE(satisfaction_modified(p, v, conns), s + 1e-12);
    }
  }
}

TEST_P(SatisfactionProperties, AddingAConnectionStrictlyHelps) {
  // ΔS_ij > 0 always (eq. 4 with R ≤ L−1): more connections → more satisfied.
  const auto& p = *profile_;
  for (NodeId v = 0; v < std::min<std::size_t>(g_.num_nodes(), 6); ++v) {
    auto conns = random_conns(v, p.quota(v) > 1 ? p.quota(v) - 1 : 0);
    const double before = satisfaction(p, v, conns);
    for (const auto& a : g_.neighbors(v)) {
      if (std::find(conns.begin(), conns.end(), a.neighbor) != conns.end()) continue;
      auto grown = conns;
      grown.push_back(a.neighbor);
      if (grown.size() > p.quota(v)) break;
      EXPECT_GT(satisfaction(p, v, grown), before);
    }
  }
}

TEST_P(SatisfactionProperties, SwappingForBetterRankHelps) {
  const auto& p = *profile_;
  for (NodeId v = 0; v < std::min<std::size_t>(g_.num_nodes(), 6); ++v) {
    const auto list = p.list(v);
    if (list.size() < 2 || p.quota(v) < 1) continue;
    // Connect to the worst neighbour, then swap for the best.
    const std::vector<NodeId> worst{list.back()};
    const std::vector<NodeId> best{list.front()};
    EXPECT_GT(satisfaction(p, v, best), satisfaction(p, v, worst));
  }
}

TEST_P(SatisfactionProperties, PartsDecomposeExactly) {
  const auto& p = *profile_;
  for (NodeId v = 0; v < g_.num_nodes(); ++v) {
    const auto conns = random_conns(v, p.quota(v));
    const auto parts = satisfaction_parts(p, v, conns);
    EXPECT_NEAR(parts.total(), satisfaction(p, v, conns), 1e-12);
    EXPECT_NEAR(parts.static_part, satisfaction_modified(p, v, conns), 1e-12);
    EXPECT_GE(parts.dynamic_part, 0.0);
  }
}

TEST_P(SatisfactionProperties, IncrementalAdditionMatchesClosedForm) {
  const auto& p = *profile_;
  for (NodeId v = 0; v < std::min<std::size_t>(g_.num_nodes(), 5); ++v) {
    auto conns = random_conns(v, p.quota(v));
    // Sort best-first so Q ranks follow insertion order.
    std::sort(conns.begin(), conns.end(),
              [&](NodeId a, NodeId b) { return p.rank(v, a) < p.rank(v, b); });
    double acc = 0.0;
    for (std::uint32_t c = 0; c < conns.size(); ++c) {
      acc += delta_s(p, v, conns[c], c);
    }
    EXPECT_NEAR(acc, satisfaction(p, v, conns), 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SatisfactionProperties,
    ::testing::Values(SatParams{6, 1, 1}, SatParams{6, 2, 2}, SatParams{8, 3, 3},
                      SatParams{10, 4, 4}, SatParams{12, 2, 5}, SatParams{12, 6, 6},
                      SatParams{16, 8, 7}),
    [](const ::testing::TestParamInfo<SatParams>& info) {
      return "n" + std::to_string(info.param.n) + "_b" +
             std::to_string(info.param.quota) + "_s" + std::to_string(info.param.seed);
    });

}  // namespace
}  // namespace overmatch::prefs
