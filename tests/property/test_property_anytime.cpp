// Anytime monotonicity (DESIGN.md §14). Under the FIFO schedule a budget-R
// LID run delivers exactly the round-<=R prefix of the full run, and LID
// locks are permanent — so the extracted mutual-lock matching grows with R.
// That makes every quality metric monotone in the budget: Σ S_i and matched
// weight non-decreasing, the blocking-edge count non-increasing, converging
// bit-identically to the unbudgeted fixed point. b-suitor's drain rounds
// give validity per budget plus the same bit-identical convergence (its
// mid-run weight is not monotone: a displaced bid can transiently lower it).
#include <gtest/gtest.h>

#include "core/solvers.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::core {
namespace {

using matching::testing::Instance;

struct AnytimeParams {
  const char* topology;
  std::uint32_t quota;  ///< 0 = heterogeneous quotas in [1, 4]
};

std::unique_ptr<Instance> make_instance(const AnytimeParams& p,
                                        std::uint64_t seed) {
  return p.quota == 0
             ? Instance::random_quotas(p.topology, 36, 6.0, 4, seed)
             : Instance::random(p.topology, 36, 6.0, p.quota, seed);
}

class AnytimeMonotonicity : public ::testing::TestWithParam<AnytimeParams> {};

TEST_P(AnytimeMonotonicity, LidQualityClimbsWithTheRoundBudget) {
  const auto& p = GetParam();
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    auto inst = make_instance(p, seed * 101 + 7);
    SolveOptions opt;
    opt.seed = seed;
    opt.schedule = sim::Schedule::kFifo;
    const auto full = solve(*inst->profile, Algorithm::kLidDes, opt,
                            inst->weights.get());
    ASSERT_FALSE(full.truncated);
    ASSERT_GT(full.rounds_used, 0u);

    double prev_sat = -1.0;
    double prev_weight = -1.0;
    std::size_t prev_blocking = inst->g.num_edges() + 1;
    for (std::size_t rounds = 0; rounds <= full.rounds_used; ++rounds) {
      SolveOptions bopt = opt;
      bopt.budget.max_rounds = rounds;
      const auto r = solve(*inst->profile, Algorithm::kLidDes, bopt,
                           inst->weights.get());
      ASSERT_TRUE(matching::is_valid_bmatching(r.matching))
          << "rounds=" << rounds << " seed=" << seed;
      const std::size_t blocking =
          matching::count_blocking_edges(r.matching, *inst->weights);
      EXPECT_GE(r.satisfaction, prev_sat - 1e-12)
          << "rounds=" << rounds << " seed=" << seed;
      EXPECT_GE(r.weight, prev_weight - 1e-12)
          << "rounds=" << rounds << " seed=" << seed;
      EXPECT_LE(blocking, prev_blocking)
          << "rounds=" << rounds << " seed=" << seed;
      prev_sat = r.satisfaction;
      prev_weight = r.weight;
      prev_blocking = blocking;
      if (rounds == full.rounds_used) {
        // The budget that covers the full run converges bit-identically.
        EXPECT_TRUE(full.matching.same_edges(r.matching)) << "seed=" << seed;
        EXPECT_FALSE(r.truncated);
        EXPECT_EQ(blocking, 0u);
        EXPECT_NEAR(r.satisfaction, full.satisfaction, 1e-12);
      }
    }
  }
}

TEST_P(AnytimeMonotonicity, BSuitorBudgetsStayValidAndConverge) {
  const auto& p = GetParam();
  for (std::uint64_t seed = 1; seed <= 2; ++seed) {
    auto inst = make_instance(p, seed * 59 + 3);
    SolveOptions opt;
    opt.seed = seed;
    const auto full =
        solve(*inst->profile, Algorithm::kBSuitor, opt, inst->weights.get());
    ASSERT_FALSE(full.truncated);
    ASSERT_GT(full.rounds_used, 0u);
    for (std::size_t rounds = 0; rounds <= full.rounds_used; ++rounds) {
      SolveOptions bopt = opt;
      bopt.budget.max_rounds = rounds;
      const auto r = solve(*inst->profile, Algorithm::kBSuitor, bopt,
                           inst->weights.get());
      EXPECT_TRUE(matching::is_valid_bmatching(r.matching))
          << "rounds=" << rounds << " seed=" << seed;
      EXPECT_LE(r.rounds_used, rounds == 0 ? 1u : rounds);
      if (rounds == full.rounds_used) {
        EXPECT_TRUE(full.matching.same_edges(r.matching)) << "seed=" << seed;
        EXPECT_FALSE(r.truncated);
        EXPECT_EQ(matching::count_blocking_edges(r.matching, *inst->weights),
                  0u);
      } else {
        EXPECT_TRUE(r.truncated) << "rounds=" << rounds << " seed=" << seed;
      }
    }
  }
}

std::string anytime_name(const ::testing::TestParamInfo<AnytimeParams>& info) {
  return std::string(info.param.topology) + "_b" +
         (info.param.quota == 0 ? std::string("mixed")
                                : std::to_string(info.param.quota));
}

INSTANTIATE_TEST_SUITE_P(Sweep, AnytimeMonotonicity,
                         ::testing::Values(AnytimeParams{"er", 1},
                                           AnytimeParams{"er", 3},
                                           AnytimeParams{"er", 0},
                                           AnytimeParams{"ba", 1},
                                           AnytimeParams{"ba", 3},
                                           AnytimeParams{"ba", 0},
                                           AnytimeParams{"ws", 1},
                                           AnytimeParams{"ws", 3},
                                           AnytimeParams{"ws", 0}),
                         anytime_name);

}  // namespace
}  // namespace overmatch::core
