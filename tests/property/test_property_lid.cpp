// Property sweeps over LID: schedule-independence, message bounds and
// LIC-equivalence across the full parameter grid.
#include <gtest/gtest.h>

#include "matching/lic.hpp"
#include "matching/lid.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"

namespace overmatch {
namespace {

using matching::testing::Instance;

struct LidParams {
  const char* topology;
  std::size_t n;
  std::uint32_t quota_max;
  sim::Schedule schedule;
};

class LidProperties : public ::testing::TestWithParam<LidParams> {};

TEST_P(LidProperties, EquivalenceAndBounds) {
  const auto& p = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto inst = Instance::random_quotas(p.topology, p.n, 5.0, p.quota_max,
                                        seed * 211 + 17);
    const auto lic = matching::lic_global(*inst->weights, inst->profile->quotas());
    matching::LidOptions opt;
    opt.seed = seed;
    opt.schedule = p.schedule;
    const auto r =
        matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
    // Equivalence (Lemmas 3,4,6).
    EXPECT_TRUE(lic.same_edges(r.matching)) << "seed=" << seed;
    // Validity and maximality.
    EXPECT_TRUE(matching::is_valid_bmatching(r.matching));
    EXPECT_TRUE(r.matching.is_maximal());
    // Message complexity: ≤ 2 PROP + 2 REJ per edge; everything delivered.
    EXPECT_LE(r.stats.kind_count(matching::kMsgProp), 2 * inst->g.num_edges());
    EXPECT_LE(r.stats.kind_count(matching::kMsgRej), 2 * inst->g.num_edges());
    EXPECT_EQ(r.stats.total_delivered, r.stats.total_sent);
    // At least one PROP per locked edge endpoint pair.
    EXPECT_GE(r.stats.kind_count(matching::kMsgProp), 2 * r.matching.size());
  }
}

std::string lid_name(const ::testing::TestParamInfo<LidParams>& info) {
  return std::string(info.param.topology) + "_n" + std::to_string(info.param.n) +
         "_b" + std::to_string(info.param.quota_max) + "_" +
         sim::schedule_name(info.param.schedule);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, LidProperties,
    ::testing::Values(
        LidParams{"er", 20, 1, sim::Schedule::kRandomOrder},
        LidParams{"er", 30, 3, sim::Schedule::kFifo},
        LidParams{"er", 30, 3, sim::Schedule::kRandomDelay},
        LidParams{"er", 30, 3, sim::Schedule::kAdversarialDelay},
        LidParams{"ba", 40, 2, sim::Schedule::kRandomOrder},
        LidParams{"ba", 40, 4, sim::Schedule::kAdversarialDelay},
        LidParams{"ws", 32, 2, sim::Schedule::kRandomDelay},
        LidParams{"geo", 32, 3, sim::Schedule::kRandomOrder},
        LidParams{"grid", 36, 2, sim::Schedule::kAdversarialDelay},
        LidParams{"complete", 14, 4, sim::Schedule::kRandomOrder}),
    lid_name);

class LidThreadSweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(LidThreadSweep, ThreadCountIrrelevantToOutcome) {
  const std::size_t threads = GetParam();
  auto inst = Instance::random("er", 36, 6.0, 3, 999);
  const auto reference = matching::lic_global(*inst->weights,
                                              inst->profile->quotas());
  matching::LidOptions opt;
  opt.threads = threads;
  opt.runtime = matching::LidRuntime::kThreaded;
  for (int repeat = 0; repeat < 3; ++repeat) {
    const auto r =
        matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
    EXPECT_TRUE(reference.same_edges(r.matching))
        << "threads=" << threads << " repeat=" << repeat;
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, LidThreadSweep,
                         ::testing::Values<std::size_t>(1, 2, 3, 4, 8));

}  // namespace
}  // namespace overmatch
