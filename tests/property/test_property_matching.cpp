// Property sweeps over the solver family: structural invariants that must
// hold for every topology × quota × seed combination.
#include <gtest/gtest.h>

#include "core/solvers.hpp"
#include "matching/lic.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"

namespace overmatch {
namespace {

using matching::testing::Instance;

struct Params {
  const char* topology;
  std::size_t n;
  double degree;
  std::uint32_t quota;
};

class MatchingProperties : public ::testing::TestWithParam<Params> {};

TEST_P(MatchingProperties, GreedyInvariants) {
  const auto& p = GetParam();
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    auto inst = Instance::random(p.topology, p.n, p.degree, p.quota, seed * 101);
    const auto m = matching::lic_global(*inst->weights, inst->profile->quotas());
    // Structure.
    EXPECT_TRUE(matching::is_valid_bmatching(m));
    EXPECT_TRUE(m.is_maximal());
    EXPECT_TRUE(matching::has_half_approx_certificate(m, *inst->weights));
    // Loads never exceed quota or degree.
    for (graph::NodeId v = 0; v < inst->g.num_nodes(); ++v) {
      EXPECT_LE(m.load(v), inst->profile->quota(v));
      EXPECT_LE(m.load(v), inst->g.degree(v));
    }
    // Weight is the sum of its edges and positive when edges exist.
    if (m.size() > 0) EXPECT_GT(m.total_weight(*inst->weights), 0.0);
  }
}

TEST_P(MatchingProperties, GreedyDominatesItsSubsets) {
  // Removing any single edge from the greedy matching and re-completing
  // greedily can never yield a heavier matching (local optimality witness).
  const auto& p = GetParam();
  auto inst = Instance::random(p.topology, p.n, p.degree, p.quota, 4242);
  const auto m = matching::lic_global(*inst->weights, inst->profile->quotas());
  const double w = m.total_weight(*inst->weights);
  for (std::size_t drop = 0; drop < std::min<std::size_t>(m.size(), 5); ++drop) {
    matching::Matching reduced(inst->g, inst->profile->quotas());
    for (std::size_t k = 0; k < m.edges().size(); ++k) {
      if (k != drop) reduced.add(m.edges()[k]);
    }
    // Greedy completion of the reduced matching.
    std::vector<graph::EdgeId> order(inst->g.num_edges());
    for (graph::EdgeId e = 0; e < inst->g.num_edges(); ++e) order[e] = e;
    std::sort(order.begin(), order.end(), [&](graph::EdgeId a, graph::EdgeId b) {
      return inst->weights->heavier(a, b);
    });
    for (const auto e : order) {
      if (reduced.can_add(e)) reduced.add(e);
    }
    EXPECT_LE(reduced.total_weight(*inst->weights), w + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MatchingProperties,
    ::testing::Values(Params{"er", 20, 4.0, 1}, Params{"er", 30, 6.0, 2},
                      Params{"er", 40, 8.0, 4}, Params{"ba", 30, 4.0, 2},
                      Params{"ba", 50, 6.0, 3}, Params{"ws", 30, 4.0, 2},
                      Params{"geo", 30, 5.0, 2}, Params{"grid", 36, 4.0, 2},
                      Params{"complete", 12, 11.0, 3}, Params{"regular", 24, 6.0, 2}),
    [](const ::testing::TestParamInfo<Params>& info) {
      return std::string(info.param.topology) + "_n" +
             std::to_string(info.param.n) + "_b" + std::to_string(info.param.quota);
    });

}  // namespace
}  // namespace overmatch
