#include "util/parallel_sort.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace overmatch::util {
namespace {

std::vector<std::uint64_t> random_keys(std::size_t n, std::uint64_t seed,
                                       std::uint64_t modulus = 0) {
  Rng rng(seed);
  std::vector<std::uint64_t> v(n);
  for (auto& x : v) x = modulus == 0 ? rng() : rng() % modulus;
  return v;
}

TEST(ParallelSort, MatchesStdSortWithoutPool) {
  auto v = random_keys(1000, 7);
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  parallel_sort(v);
  EXPECT_EQ(v, ref);
}

TEST(ParallelSort, MatchesStdSortAcrossPoolSizesAndSizes) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    for (const std::size_t n :
         {0u, 1u, 100u, (1u << 14) - 1, (1u << 14), 100000u, 500001u}) {
      auto v = random_keys(n, 31 * n + threads);
      auto ref = v;
      std::sort(ref.begin(), ref.end());
      parallel_sort(v, std::less<std::uint64_t>{}, &pool);
      ASSERT_EQ(v, ref) << "n=" << n << " threads=" << threads;
    }
  }
}

TEST(ParallelSort, CustomComparatorDescending) {
  ThreadPool pool(4);
  auto v = random_keys(200000, 11);
  auto ref = v;
  const auto desc = [](std::uint64_t a, std::uint64_t b) { return a > b; };
  std::sort(ref.begin(), ref.end(), desc);
  parallel_sort(v, desc, &pool);
  EXPECT_EQ(v, ref);
}

// The determinism contract: with a strict *total* order the sorted
// permutation is unique, so heavy duplication in the primary key must not
// change the result as long as a tie-break completes the order. This is the
// exact shape of the EdgeWeights (weight, u, v) key.
TEST(ParallelSort, TotalOrderWithDensePrimaryTiesIsDeterministic) {
  const std::size_t n = 300000;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> v(n);
  const auto primary = random_keys(n, 99, /*modulus=*/7);  // dense ties
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = {primary[i], static_cast<std::uint32_t>(i)};
  }
  auto ref = v;
  std::sort(ref.begin(), ref.end());
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    ThreadPool pool(threads);
    auto w = v;
    parallel_sort(w, std::less<std::pair<std::uint64_t, std::uint32_t>>{}, &pool);
    ASSERT_EQ(w, ref) << "threads=" << threads;
  }
}

TEST(ParallelSort, AlreadySortedAndReversed) {
  ThreadPool pool(4);
  std::vector<std::uint64_t> asc(120000);
  for (std::size_t i = 0; i < asc.size(); ++i) asc[i] = i;
  auto v = asc;
  parallel_sort(v, std::less<std::uint64_t>{}, &pool);
  EXPECT_EQ(v, asc);
  std::vector<std::uint64_t> rev(asc.rbegin(), asc.rend());
  parallel_sort(rev, std::less<std::uint64_t>{}, &pool);
  EXPECT_EQ(rev, asc);
}

}  // namespace
}  // namespace overmatch::util
