#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.hpp"

namespace overmatch::util {
namespace {

TEST(StreamingStats, EmptyIsZero) {
  StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.sum(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  StreamingStats s;
  s.add(4.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 4.5);
  EXPECT_DOUBLE_EQ(s.min(), 4.5);
  EXPECT_DOUBLE_EQ(s.max(), 4.5);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(StreamingStats, KnownMoments) {
  StreamingStats s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);  // sample variance
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(StreamingStats, MergeEqualsSequential) {
  Rng rng(1);
  StreamingStats whole;
  StreamingStats a;
  StreamingStats b;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.normal() * 3.0 + 1.0;
    whole.add(x);
    (i % 2 == 0 ? a : b).add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), whole.count());
  EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), whole.min());
  EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(StreamingStats, MergeWithEmpty) {
  StreamingStats a;
  a.add(1.0);
  a.add(3.0);
  StreamingStats empty;
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  StreamingStats b;
  b.merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(Percentile, Median) {
  EXPECT_DOUBLE_EQ(percentile({1.0, 2.0, 3.0, 4.0, 5.0}, 50.0), 3.0);
}

TEST(Percentile, Extremes) {
  const std::vector<double> xs{5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 5.0);
}

TEST(Percentile, Interpolates) {
  // 25th percentile of {0, 10}: rank 0.25 → 2.5.
  EXPECT_DOUBLE_EQ(percentile({0.0, 10.0}, 25.0), 2.5);
}

TEST(Percentile, SingleElement) {
  EXPECT_DOUBLE_EQ(percentile({42.0}, 99.0), 42.0);
}

TEST(Percentile, InputOrderIrrelevant) {
  EXPECT_DOUBLE_EQ(percentile({9.0, 1.0, 5.0, 3.0, 7.0}, 50.0),
                   percentile({1.0, 3.0, 5.0, 7.0, 9.0}, 50.0));
}

TEST(MeanOf, Basics) {
  EXPECT_DOUBLE_EQ(mean_of({}), 0.0);
  EXPECT_DOUBLE_EQ(mean_of({2.0, 4.0}), 3.0);
}

TEST(Histogram, CountsAndClamping) {
  Histogram h(0.0, 1.0, 4);
  h.add(0.1);   // bin 0
  h.add(0.3);   // bin 1
  h.add(0.8);   // bin 3
  h.add(-5.0);  // clamps to bin 0
  h.add(99.0);  // clamps to bin 3
  EXPECT_EQ(h.total(), 5u);
  EXPECT_EQ(h.bin_count(0), 2u);
  EXPECT_EQ(h.bin_count(1), 1u);
  EXPECT_EQ(h.bin_count(2), 0u);
  EXPECT_EQ(h.bin_count(3), 2u);
}

TEST(Histogram, BinEdges) {
  Histogram h(0.0, 2.0, 4);
  EXPECT_DOUBLE_EQ(h.bin_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bin_hi(0), 0.5);
  EXPECT_DOUBLE_EQ(h.bin_lo(3), 1.5);
  EXPECT_DOUBLE_EQ(h.bin_hi(3), 2.0);
}

TEST(Histogram, RenderMentionsCounts) {
  Histogram h(0.0, 1.0, 2);
  h.add(0.25);
  h.add(0.25);
  h.add(0.75);
  const auto s = h.render(10);
  EXPECT_NE(s.find('2'), std::string::npos);
  EXPECT_NE(s.find('#'), std::string::npos);
}

}  // namespace
}  // namespace overmatch::util
