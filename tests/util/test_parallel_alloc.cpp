// Allocation-count regression test for the ThreadPool fork-join fast path.
//
// The old ThreadPool::parallel_for wrapped the caller's std::function into a
// fresh heap-allocated task per chunk per call — on the matcher's hot path
// that is thousands of allocations per run. The fork-join fast path shares
// one type-erased pointer to the caller's callable, so a steady-state
// parallel_for performs zero heap allocations. This test pins that down by
// overriding global operator new and counting while a flag is armed.
//
// This file must be its own test binary: the operator new replacement is
// process-wide.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "util/thread_pool.hpp"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<std::size_t> g_allocs{0};

void note_alloc() {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace

void* operator new(std::size_t size) {
  note_alloc();
  if (void* p = std::malloc(size == 0 ? 1 : size)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace overmatch::util {
namespace {

TEST(ThreadPoolAlloc, ParallelForSteadyStateAllocatesNothing) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  const auto body = [&](std::size_t b, std::size_t e) {
    sum.fetch_add(static_cast<long>(e - b));
  };
  // Warm-up: thread stacks, lazy library init.
  for (int r = 0; r < 4; ++r) pool.parallel_for(100000, body, 256);

  g_allocs.store(0);
  g_counting.store(true);
  for (int r = 0; r < 100; ++r) pool.parallel_for(100000, body, 256);
  g_counting.store(false);

  EXPECT_EQ(g_allocs.load(), 0u)
      << "fork-join dispatch must not allocate per call or per chunk";
  EXPECT_EQ(sum.load(), 104L * 100000L);
}

TEST(ThreadPoolAlloc, InlineSmallLoopAllocatesNothing) {
  ThreadPool pool(2);
  long sum = 0;
  const auto body = [&](std::size_t b, std::size_t e) {
    sum += static_cast<long>(e - b);
  };
  pool.parallel_for(64, body);  // below min_chunk: inline path

  g_allocs.store(0);
  g_counting.store(true);
  for (int r = 0; r < 1000; ++r) pool.parallel_for(64, body);
  g_counting.store(false);

  EXPECT_EQ(g_allocs.load(), 0u);
  EXPECT_EQ(sum, 1001L * 64L);
}

}  // namespace
}  // namespace overmatch::util
