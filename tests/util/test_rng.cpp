#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace overmatch::util {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(42);
  SplitMix64 b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiverge) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameStream) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, ReseedResetsStream) {
  Rng a(7);
  const auto first = a();
  a.reseed(7);
  EXPECT_EQ(a(), first);
}

TEST(Rng, UniformIntStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    const auto x = rng.uniform_int(-5, 17);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 17);
  }
}

TEST(Rng, UniformIntSingletonRange) {
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_int(9, 9), 9);
}

TEST(Rng, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(Rng, UniformIntRoughlyUniform) {
  Rng rng(5);
  constexpr int kBuckets = 8;
  constexpr int kDraws = 80000;
  int counts[kBuckets] = {};
  for (int i = 0; i < kDraws; ++i) ++counts[rng.uniform_int(0, kBuckets - 1)];
  for (const int c : counts) {
    EXPECT_NEAR(c, kDraws / kBuckets, kDraws / kBuckets * 0.1);
  }
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanNearHalf) {
  Rng rng(17);
  double sum = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / kDraws, 0.5, 0.01);
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(19);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(2.0, 3.5);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 3.5);
  }
}

TEST(Rng, ChanceZeroAndOne) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(Rng, NormalMomentsAreSane) {
  Rng rng(29);
  double sum = 0.0;
  double sum2 = 0.0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / kDraws, 0.0, 0.02);
  EXPECT_NEAR(sum2 / kDraws, 1.0, 0.03);
}

TEST(Rng, ShufflePreservesMultiset) {
  Rng rng(31);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto w = v;
  rng.shuffle(w);
  std::sort(w.begin(), w.end());
  EXPECT_EQ(v, w);
}

TEST(Rng, ShuffleActuallyPermutes) {
  Rng rng(37);
  std::vector<int> v(100);
  for (int i = 0; i < 100; ++i) v[i] = i;
  auto w = v;
  rng.shuffle(w);
  EXPECT_NE(v, w);  // probability of identity ≈ 1/100!
}

TEST(Rng, SampleIndicesDistinctAndInRange) {
  Rng rng(41);
  for (const std::size_t k : {std::size_t{0}, std::size_t{1}, std::size_t{5},
                              std::size_t{50}, std::size_t{100}}) {
    const auto s = rng.sample_indices(100, k);
    EXPECT_EQ(s.size(), k);
    std::set<std::size_t> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), k);
    for (const auto x : s) EXPECT_LT(x, 100u);
  }
}

TEST(Rng, SampleAllIsPermutation) {
  Rng rng(43);
  const auto s = rng.sample_indices(20, 20);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 20u);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng a(47);
  Rng child = a.split();
  Rng fresh(47);
  bool any_differs = false;
  for (int i = 0; i < 16; ++i) {
    if (child() != fresh()) any_differs = true;
  }
  EXPECT_TRUE(any_differs);
}

TEST(Rng, IndexBounds) {
  Rng rng(53);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.index(7), 7u);
}

}  // namespace
}  // namespace overmatch::util
