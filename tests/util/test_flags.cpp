#include "util/flags.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace overmatch::util {
namespace {

Flags make(std::initializer_list<const char*> args) {
  std::vector<const char*> argv{"prog"};
  argv.insert(argv.end(), args.begin(), args.end());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, ParsesKeyValue) {
  const auto f = make({"--n=100", "--name=er"});
  EXPECT_EQ(f.get_int("n", 0), 100);
  EXPECT_EQ(f.get("name", ""), "er");
}

TEST(Flags, BareFlagIsTruthy) {
  const auto f = make({"--verbose"});
  EXPECT_TRUE(f.has("verbose"));
  EXPECT_TRUE(f.get_bool("verbose", false));
}

TEST(Flags, DefaultsWhenMissing) {
  const auto f = make({});
  EXPECT_FALSE(f.has("x"));
  EXPECT_EQ(f.get_int("x", -7), -7);
  EXPECT_DOUBLE_EQ(f.get_double("x", 2.5), 2.5);
  EXPECT_EQ(f.get("x", "d"), "d");
  EXPECT_TRUE(f.get_bool("x", true));
}

TEST(Flags, ParsesDoubles) {
  const auto f = make({"--p=0.25"});
  EXPECT_DOUBLE_EQ(f.get_double("p", 0.0), 0.25);
}

TEST(Flags, BoolSpellings) {
  EXPECT_TRUE(make({"--a=true"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=yes"}).get_bool("a", false));
  EXPECT_TRUE(make({"--a=1"}).get_bool("a", false));
  EXPECT_FALSE(make({"--a=0"}).get_bool("a", true));
  EXPECT_FALSE(make({"--a=false"}).get_bool("a", true));
}

TEST(Flags, IgnoresPositionals) {
  const auto f = make({"positional", "--k=3"});
  EXPECT_EQ(f.get_int("k", 0), 3);
}

TEST(Flags, EmptyValue) {
  const auto f = make({"--s="});
  EXPECT_TRUE(f.has("s"));
  EXPECT_EQ(f.get("s", "d"), "");
}

TEST(Flags, LastOccurrenceWins) {
  const auto f = make({"--k=1", "--k=2"});
  EXPECT_EQ(f.get_int("k", 0), 2);
}

}  // namespace
}  // namespace overmatch::util
