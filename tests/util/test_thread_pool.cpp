#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace overmatch::util {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItems) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleThreadMatchesSerial) {
  ThreadPool pool(1);
  std::vector<int> out(64, 0);
  pool.parallel_for(out.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) out[i] = static_cast<int>(i) * 2;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 2);
  }
}

TEST(ThreadPool, ReusableAcrossPhases) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int phase = 0; phase < 5; ++phase) {
    pool.parallel_for(100, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5 * (99 * 100 / 2));
}

TEST(ThreadPool, SizeReportsWorkers) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, TasksSubmittedFromTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    count.fetch_add(1);
    pool.submit([&] { count.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

TEST(ThreadPool, ForkJoinCoversLargeRangeOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(50000);
  pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) ASSERT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunkIndicesEachUsedOnce) {
  ThreadPool pool(4);
  const std::size_t n = 64;
  std::vector<std::atomic<int>> chunk_hits(pool.num_chunks(n, 1));
  pool.parallel_for_chunks(
      n,
      [&](std::size_t chunk, std::size_t, std::size_t) {
        chunk_hits[chunk].fetch_add(1);
      },
      /*min_chunk=*/1);
  for (const auto& h : chunk_hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, NumChunksIsMonotoneAndBounded) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_chunks(0), 0u);
  std::size_t prev = 0;
  for (std::size_t n = 1; n < (1u << 18); n *= 3) {
    const std::size_t c = pool.num_chunks(n);
    EXPECT_GE(c, 1u);
    EXPECT_LE(c, pool.size() * 4);
    EXPECT_GE(c, prev);
    prev = c;
  }
  // Small ranges collapse to a single (inline) chunk.
  EXPECT_EQ(pool.num_chunks(ThreadPool::kDefaultMinChunk - 1), 1u);
}

TEST(ThreadPool, NestedParallelForFromTaskRunsInline) {
  ThreadPool pool(2);
  std::atomic<long> sum{0};
  pool.submit([&] {
    // Issued from a worker: must fall back to an inline loop, not deadlock.
    pool.parallel_for(
        5000,
        [&](std::size_t b, std::size_t e) {
          for (std::size_t i = b; i < e; ++i) sum.fetch_add(1);
        },
        /*min_chunk=*/1);
  });
  pool.wait_idle();
  EXPECT_EQ(sum.load(), 5000);
}

TEST(ThreadPool, NestedParallelForFromChunkBodyRunsInline) {
  ThreadPool pool(3);
  std::atomic<long> sum{0};
  pool.parallel_for(
      8,
      [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          pool.parallel_for(
              100,
              [&](std::size_t ib, std::size_t ie) {
                sum.fetch_add(static_cast<long>(ie - ib));
              },
              /*min_chunk=*/1);
        }
      },
      /*min_chunk=*/1);
  EXPECT_EQ(sum.load(), 800);
}

TEST(ThreadPool, ConcurrentParallelForFromTwoExternalThreads) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  const auto loop = [&] {
    for (int r = 0; r < 20; ++r) {
      pool.parallel_for(
          4096,
          [&](std::size_t b, std::size_t e) {
            sum.fetch_add(static_cast<long>(e - b));
          },
          /*min_chunk=*/64);
    }
  };
  std::thread other(loop);
  loop();
  other.join();
  EXPECT_EQ(sum.load(), 2L * 20L * 4096L);
}

TEST(ThreadPool, ForkJoinInterleavesWithSubmittedTasks) {
  ThreadPool pool(2);
  std::atomic<int> tasks{0};
  for (int i = 0; i < 50; ++i) pool.submit([&] { tasks.fetch_add(1); });
  std::atomic<long> sum{0};
  pool.parallel_for(
      10000,
      [&](std::size_t b, std::size_t e) { sum.fetch_add(static_cast<long>(e - b)); },
      /*min_chunk=*/128);
  pool.wait_idle();
  EXPECT_EQ(tasks.load(), 50);
  EXPECT_EQ(sum.load(), 10000);
}

}  // namespace
}  // namespace overmatch::util
