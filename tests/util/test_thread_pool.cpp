#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace overmatch::util {
namespace {

TEST(ThreadPool, RunsAllSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.wait_idle();  // must not hang
  SUCCEED();
}

TEST(ThreadPool, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(hits.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ParallelForZeroItems) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(0, [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, ParallelForSingleThreadMatchesSerial) {
  ThreadPool pool(1);
  std::vector<int> out(64, 0);
  pool.parallel_for(out.size(), [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) out[i] = static_cast<int>(i) * 2;
  });
  for (std::size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i], static_cast<int>(i) * 2);
  }
}

TEST(ThreadPool, ReusableAcrossPhases) {
  ThreadPool pool(4);
  std::atomic<long> sum{0};
  for (int phase = 0; phase < 5; ++phase) {
    pool.parallel_for(100, [&](std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) sum.fetch_add(static_cast<long>(i));
    });
  }
  EXPECT_EQ(sum.load(), 5 * (99 * 100 / 2));
}

TEST(ThreadPool, SizeReportsWorkers) {
  ThreadPool pool(5);
  EXPECT_EQ(pool.size(), 5u);
}

TEST(ThreadPool, TasksSubmittedFromTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.submit([&] {
    count.fetch_add(1);
    pool.submit([&] { count.fetch_add(1); });
  });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 2);
}

}  // namespace
}  // namespace overmatch::util
