#include "util/table.hpp"

#include <gtest/gtest.h>

#include <algorithm>

namespace overmatch::util {
namespace {

TEST(Table, MarkdownShape) {
  Table t({"name", "value"});
  t.row().cell("alpha").cell(std::int64_t{42});
  t.row().cell("beta").cell(3.14159, 2);
  const auto md = t.markdown();
  EXPECT_NE(md.find("| name"), std::string::npos);
  EXPECT_NE(md.find("alpha"), std::string::npos);
  EXPECT_NE(md.find("42"), std::string::npos);
  EXPECT_NE(md.find("3.14"), std::string::npos);
  // Header + separator + 2 rows = 4 lines.
  EXPECT_EQ(std::count(md.begin(), md.end(), '\n'), 4);
}

TEST(Table, CsvShape) {
  Table t({"a", "b"});
  t.row().cell(std::int64_t{1}).cell(std::int64_t{2});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(Table, BoolCells) {
  Table t({"flag"});
  t.row().cell(true);
  t.row().cell(false);
  const auto md = t.markdown();
  EXPECT_NE(md.find("yes"), std::string::npos);
  EXPECT_NE(md.find("no"), std::string::npos);
}

TEST(Table, RowsCount) {
  Table t({"x"});
  EXPECT_EQ(t.rows(), 0u);
  t.row().cell("1");
  t.row().cell("2");
  EXPECT_EQ(t.rows(), 2u);
}

TEST(Table, ColumnsPadToWidestCell) {
  Table t({"h"});
  t.row().cell("wide-cell-content");
  const auto md = t.markdown();
  // The header row must be padded to the same width as the data row.
  const auto first_line_len = md.find('\n');
  const auto second_start = first_line_len + 1;
  const auto second_line_len = md.find('\n', second_start) - second_start;
  EXPECT_EQ(first_line_len, second_line_len);
}

TEST(Fmt, Precision) {
  EXPECT_EQ(fmt(1.23456, 2), "1.23");
  EXPECT_EQ(fmt(2.0, 0), "2");
}

TEST(TableDeathTest, TooManyCellsAborts) {
  Table t({"only"});
  t.row().cell("ok");
  EXPECT_DEATH(t.cell("overflow"), "cell");
}

TEST(TableDeathTest, CellWithoutRowAborts) {
  Table t({"only"});
  EXPECT_DEATH(t.cell("orphan"), "cell");
}

}  // namespace
}  // namespace overmatch::util
