#include "core/certificates.hpp"

#include <gtest/gtest.h>

#include "core/solvers.hpp"
#include "matching/exact.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::core {
namespace {

using matching::testing::Instance;

TEST(TheoremBounds, KnownValues) {
  EXPECT_DOUBLE_EQ(theorem1_bound(1), 1.0);
  EXPECT_DOUBLE_EQ(theorem1_bound(2), 0.75);
  EXPECT_DOUBLE_EQ(theorem1_bound(4), 0.625);
  EXPECT_DOUBLE_EQ(theorem2_bound(), 0.5);
  EXPECT_DOUBLE_EQ(theorem3_bound(1), 0.5);
  EXPECT_DOUBLE_EQ(theorem3_bound(2), 0.375);
  EXPECT_DOUBLE_EQ(theorem3_bound(4), 0.3125);
}

TEST(TheoremBounds, MonotoneDecreasingInQuota) {
  for (std::uint32_t b = 1; b < 16; ++b) {
    EXPECT_GT(theorem1_bound(b), theorem1_bound(b + 1));
    EXPECT_GT(theorem3_bound(b), theorem3_bound(b + 1));
  }
  // Limits: ½ and ¼.
  EXPECT_GT(theorem1_bound(1000), 0.5);
  EXPECT_GT(theorem3_bound(1000), 0.25);
}

TEST(Certify, GreedyGetsHalfCertificateAndSaneRatio) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto inst = Instance::random("er", 24, 5.0, 2, seed * 3 + 1);
    const auto r = solve(*inst->profile, Algorithm::kLicGlobal);
    const auto c = certify(*inst->profile, *inst->weights, r.matching);
    EXPECT_TRUE(c.half_certificate);
    EXPECT_GT(c.ratio_lower_bound, 0.0);
    EXPECT_LE(c.ratio_lower_bound, 1.0 + 1e-9);
    EXPECT_NEAR(c.weight, r.weight, 1e-12);
    EXPECT_GE(c.upper_bound, c.weight - 1e-9);
  }
}

TEST(Certify, UpperBoundDominatesExactOptimum) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto inst = Instance::random("er", 13, 4.0, 2, seed * 7 + 2);
    const auto opt = matching::exact_max_weight_bmatching(*inst->weights,
                                                          inst->profile->quotas());
    const auto c = certify(*inst->profile, *inst->weights, opt);
    EXPECT_GE(c.upper_bound, opt.total_weight(*inst->weights) - 1e-9);
  }
}

TEST(Certify, RandomGreedyMayLackCertificate) {
  int lacking = 0;
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    auto inst = Instance::random("er", 24, 6.0, 2, seed * 13 + 3);
    SolveOptions opt;
    opt.seed = seed;
    const auto r = solve(*inst->profile, Algorithm::kRandomGreedy, opt);
    const auto c = certify(*inst->profile, *inst->weights, r.matching);
    if (!c.half_certificate) ++lacking;
  }
  EXPECT_GT(lacking, 0);
}

TEST(Certify, Theorem3FieldMatchesInstanceQuota) {
  auto inst = Instance::random("er", 12, 4.0, 3, 5);
  const auto r = solve(*inst->profile, Algorithm::kLicGlobal);
  const auto c = certify(*inst->profile, *inst->weights, r.matching);
  EXPECT_DOUBLE_EQ(c.theorem3, theorem3_bound(inst->profile->max_quota()));
}

}  // namespace
}  // namespace overmatch::core
