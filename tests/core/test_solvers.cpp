#include "core/solvers.hpp"

#include <gtest/gtest.h>

#include "matching/metrics.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::core {
namespace {

using matching::testing::Instance;

TEST(AlgorithmNames, RoundTrip) {
  for (const Algorithm a : all_algorithms()) {
    EXPECT_EQ(algorithm_by_name(algorithm_name(a)), a);
  }
}

TEST(AlgorithmNamesDeathTest, UnknownAborts) {
  EXPECT_DEATH((void)algorithm_by_name("nope"), "unknown");
}

TEST(Solve, AllAlgorithmsProduceValidMatchings) {
  auto inst = Instance::random("er", 14, 4.0, 2, 3);
  for (const Algorithm a : all_algorithms()) {
    const auto r = solve(*inst->profile, a);
    EXPECT_TRUE(matching::is_valid_bmatching(r.matching)) << algorithm_name(a);
    EXPECT_GE(r.satisfaction, 0.0) << algorithm_name(a);
    EXPECT_GE(r.weight, 0.0) << algorithm_name(a);
  }
}

TEST(Solve, MetricsMatchManualComputation) {
  auto inst = Instance::random("ba", 16, 4.0, 2, 5);
  const auto r = solve(*inst->profile, Algorithm::kLicGlobal);
  EXPECT_NEAR(r.weight, r.matching.total_weight(*inst->weights), 1e-12);
  EXPECT_NEAR(r.satisfaction,
              matching::total_satisfaction(*inst->profile, r.matching), 1e-12);
  EXPECT_NEAR(r.satisfaction_modified,
              matching::total_satisfaction_modified(*inst->profile, r.matching),
              1e-12);
}

TEST(Solve, GreedyFamilyAllEquivalent) {
  auto inst = Instance::random("er", 20, 5.0, 3, 7);
  const auto reference = solve(*inst->profile, Algorithm::kLicGlobal);
  for (const Algorithm a :
       {Algorithm::kLicLocal, Algorithm::kParallelLocal, Algorithm::kBSuitor,
        Algorithm::kParallelBSuitor, Algorithm::kDynamicBSuitor,
        Algorithm::kLidDes, Algorithm::kLidThreaded}) {
    const auto r = solve(*inst->profile, a);
    EXPECT_TRUE(reference.matching.same_edges(r.matching)) << algorithm_name(a);
  }
}

TEST(Solve, LocalSearchVariantNeverWorseThanLid) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    auto inst = Instance::random("er", 24, 5.0, 3, seed * 31);
    SolveOptions opt;
    opt.seed = seed;
    const auto plain = solve(*inst->profile, Algorithm::kLidDes, opt);
    const auto refined = solve(*inst->profile, Algorithm::kLidLocalSearch, opt);
    EXPECT_GE(refined.satisfaction, plain.satisfaction - 1e-12);
  }
}

TEST(Solve, DistributedReportsMessages) {
  auto inst = Instance::random("er", 16, 4.0, 2, 9);
  EXPECT_GT(solve(*inst->profile, Algorithm::kLidDes).messages, 0u);
  EXPECT_GT(solve(*inst->profile, Algorithm::kLidThreaded).messages, 0u);
  EXPECT_EQ(solve(*inst->profile, Algorithm::kLicGlobal).messages, 0u);
}

TEST(Solve, ExactWeightDominatesGreedyWeight) {
  auto inst = Instance::random("geo", 14, 4.0, 2, 11);
  const auto greedy = solve(*inst->profile, Algorithm::kLicGlobal);
  const auto exact = solve(*inst->profile, Algorithm::kExactWeight);
  EXPECT_GE(exact.weight, greedy.weight - 1e-9);
}

TEST(Solve, ExactSatDominatesEveryoneOnSatisfaction) {
  auto inst = Instance::random("er", 10, 3.0, 2, 13);
  const auto best = solve(*inst->profile, Algorithm::kExactSat);
  for (const Algorithm a : {Algorithm::kLicGlobal, Algorithm::kRandomGreedy,
                            Algorithm::kMutualBest, Algorithm::kExactWeight}) {
    const auto r = solve(*inst->profile, a);
    EXPECT_GE(best.satisfaction, r.satisfaction - 1e-9) << algorithm_name(a);
  }
}

TEST(Solve, WithCustomWeights) {
  auto inst = Instance::random("er", 14, 4.0, 2, 17);
  util::Rng rng(3);
  const auto rw = prefs::random_weights(inst->g, rng);
  const auto r = solve(*inst->profile, Algorithm::kLicGlobal, {}, &rw);
  // Weight metric refers to the supplied weights; satisfaction to the profile.
  EXPECT_NEAR(r.weight, r.matching.total_weight(rw), 1e-12);
  EXPECT_TRUE(matching::is_valid_bmatching(r.matching));
}

TEST(Solve, OptionsSeedChangesRandomGreedy) {
  auto inst = Instance::random("complete", 10, 9.0, 2, 19);
  SolveOptions o1;
  o1.seed = 1;
  SolveOptions o2;
  o2.seed = 2;
  const auto r1 = solve(*inst->profile, Algorithm::kRandomGreedy, o1);
  const auto r2 = solve(*inst->profile, Algorithm::kRandomGreedy, o2);
  // Different orders usually give different matchings on a dense instance.
  EXPECT_FALSE(r1.matching.same_edges(r2.matching));
}

TEST(Solve, BestReplyCapReported) {
  auto inst = Instance::random("complete", 8, 7.0, 2, 23);
  SolveOptions opt;
  opt.best_reply_max_steps = 1;
  const auto r = solve(*inst->profile, Algorithm::kBestReply, opt);
  EXPECT_FALSE(r.converged);
}

}  // namespace
}  // namespace overmatch::core
