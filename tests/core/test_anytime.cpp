// Anytime budget contract (DESIGN.md §14): unlimited budgets are bit-identical
// to unbudgeted runs for every budget-honoring engine, degenerate budgets
// (zero rounds, already-expired deadlines) degrade to valid partial matchings
// instead of aborting, and the truncated/rounds_used report is honest.
#include <gtest/gtest.h>

#include "core/solvers.hpp"
#include "matching/lid.hpp"
#include "matching/verify.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::core {
namespace {

using matching::testing::Instance;

const Algorithm kBudgetedAlgos[] = {Algorithm::kLidDes, Algorithm::kLidThreaded,
                                    Algorithm::kBSuitor,
                                    Algorithm::kParallelBSuitor};

TEST(Anytime, NonBindingRoundCapIsBitIdenticalToUnbudgeted) {
  // A budget the run never hits must not perturb the engine: same edges, same
  // message/round accounting, truncated = false.
  auto inst = Instance::random_quotas("er", 40, 6.0, 3, 17);
  for (const Algorithm a : kBudgetedAlgos) {
    SolveOptions plain;
    plain.seed = 3;
    plain.schedule = sim::Schedule::kFifo;
    SolveOptions capped = plain;
    capped.budget.max_rounds = 1 << 20;
    const auto r0 = solve(*inst->profile, a, plain);
    const auto r1 = solve(*inst->profile, a, capped);
    EXPECT_TRUE(r0.matching.same_edges(r1.matching)) << algorithm_name(a);
    EXPECT_FALSE(r0.truncated) << algorithm_name(a);
    EXPECT_FALSE(r1.truncated) << algorithm_name(a);
    EXPECT_GT(r1.rounds_used, 0u) << algorithm_name(a);
    if (a == Algorithm::kLidDes) EXPECT_EQ(r0.messages, r1.messages);
  }
}

TEST(Anytime, ZeroRoundsReturnsEmptyValidMatching) {
  auto inst = Instance::random("er", 30, 5.0, 2, 5);
  for (const Algorithm a : kBudgetedAlgos) {
    SolveOptions opt;
    opt.budget.max_rounds = 0;
    const auto r = solve(*inst->profile, a, opt);
    EXPECT_TRUE(matching::is_valid_bmatching(r.matching)) << algorithm_name(a);
    EXPECT_EQ(r.matching.size(), 0u) << algorithm_name(a);
    EXPECT_TRUE(r.truncated) << algorithm_name(a);
  }
}

TEST(Anytime, ExpiredDeadlineStillReturnsValidMatching) {
  // A deadline that is (almost) already gone when the run starts: whatever
  // partial matching the first amortized check catches must be valid — the
  // engine must never abort or hang.
  auto inst = Instance::random("ba", 60, 6.0, 3, 7);
  for (const Algorithm a : kBudgetedAlgos) {
    SolveOptions opt;
    opt.budget.deadline_ms = 1e-4;
    const auto r = solve(*inst->profile, a, opt);
    EXPECT_TRUE(matching::is_valid_bmatching(r.matching)) << algorithm_name(a);
  }
}

TEST(Anytime, BindingCapTruncatesAndReportsRounds) {
  auto inst = Instance::random_quotas("ws", 40, 6.0, 3, 29);
  for (const Algorithm a : {Algorithm::kLidDes, Algorithm::kBSuitor}) {
    SolveOptions opt;
    opt.schedule = sim::Schedule::kFifo;
    opt.budget.max_rounds = 1;
    const auto r = solve(*inst->profile, a, opt);
    EXPECT_TRUE(r.truncated) << algorithm_name(a);
    EXPECT_EQ(r.rounds_used, 1u) << algorithm_name(a);
    EXPECT_TRUE(matching::is_valid_bmatching(r.matching)) << algorithm_name(a);
  }
}

TEST(Anytime, BudgetedMetricsCarryTheAnytimeGauges) {
  auto inst = Instance::random("er", 30, 5.0, 2, 11);
  SolveOptions opt;
  opt.schedule = sim::Schedule::kFifo;
  opt.budget.max_rounds = 2;
  const auto r = solve(*inst->profile, Algorithm::kLidDes, opt);
  EXPECT_TRUE(r.truncated);
  EXPECT_DOUBLE_EQ(r.metrics.gauge("anytime.rounds_used"),
                   static_cast<double>(r.rounds_used));
  EXPECT_DOUBLE_EQ(r.metrics.gauge("anytime.truncated"), 1.0);
  EXPECT_NEAR(r.metrics.gauge("anytime.satisfaction"), r.satisfaction, 1e-9);
  EXPECT_DOUBLE_EQ(r.metrics.gauge("anytime.blocking_edges"),
                   static_cast<double>(matching::count_blocking_edges(
                       r.matching, *inst->weights)));
}

TEST(Anytime, ThreadedLidBudgetedRunsStayValidAcrossWorkerCounts) {
  // The threaded runtime's truncation point is interleaving-dependent; the
  // contract is validity (only mutual locks extracted) and termination.
  auto inst = Instance::random_quotas("er", 36, 6.0, 3, 13);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const std::size_t rounds : {std::size_t{0}, std::size_t{2}}) {
      matching::LidOptions opt;
      opt.threads = threads;
      opt.runtime = matching::LidRuntime::kThreaded;
      opt.budget.max_rounds = rounds;
      const auto r =
          matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
      EXPECT_TRUE(matching::is_valid_bmatching(r.matching))
          << "threads=" << threads << " rounds=" << rounds;
      if (rounds == 0) EXPECT_EQ(r.matching.size(), 0u);
    }
  }
}

}  // namespace
}  // namespace overmatch::core
