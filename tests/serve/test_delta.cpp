// Delta snapshot capture (DESIGN.md §15): the page-sharing incremental
// capture must be observably *indistinguishable* from a full rebuild.
//
// The core instrument is the twin-capture matrix: two ServiceLoops over the
// same instance, fed the same burst stream, one forced to delta capture
// (DeltaPublish::kOn) and one to full rebuild (kOff). After every epoch the
// two published snapshots are compared field by field with exact equality —
// including the doubles (satisfaction, satisfaction_total, matched_weight):
// both paths fold the same values in the same order, so bit-identity is the
// contract, not an approximation.
//
// Alongside: page-reclamation leak checks against the process-wide live
// page counters, the 8-reader SnapshotHammer.DeltaPageSharing run for the
// tsan-hammer preset (stale readers pin shared pages while the writer keeps
// swapping dirty ones), and the hardware-gated DeltaSpeedup timing gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "prefs/satisfaction.hpp"
#include "serve/service_loop.hpp"
#include "serve/snapshot.hpp"
#include "tests/matching/common.hpp"
#include "util/stats.hpp"

namespace overmatch::serve {
namespace {

using matching::ChurnEvent;
using matching::testing::Instance;

/// Exact comparison of every reader-visible field of two snapshots. Doubles
/// are compared with ==: the delta path must be bit-identical to the full
/// path, not merely close (see snapshot.hpp file comment).
void expect_snapshots_identical(const MatchingSnapshot& a,
                                const MatchingSnapshot& b) {
  ASSERT_EQ(a.epoch(), b.epoch());
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  ASSERT_EQ(a.online_count(), b.online_count());
  ASSERT_EQ(a.matched_count(), b.matched_count());
  ASSERT_EQ(a.matched_weight(), b.matched_weight());
  ASSERT_EQ(a.satisfaction_total(), b.satisfaction_total());
  ASSERT_EQ(a.blocking_edges(), b.blocking_edges());
  ASSERT_EQ(a.matched_edges(), b.matched_edges());
  for (NodeId v = 0; v < a.num_nodes(); ++v) {
    ASSERT_EQ(a.alive(v), b.alive(v)) << "node " << v;
    ASSERT_EQ(a.load(v), b.load(v)) << "node " << v;
    ASSERT_EQ(a.satisfaction(v), b.satisfaction(v)) << "node " << v;
    const auto na = a.neighbors(v);
    const auto nb = b.neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()))
        << "node " << v;
  }
  for (EdgeId e = 0; e < a.num_edges(); ++e) {
    ASSERT_EQ(a.edge_enabled(e), b.edge_enabled(e)) << "edge " << e;
    ASSERT_EQ(a.edge_matched(e), b.edge_matched(e)) << "edge " << e;
  }
}

enum class ChurnKind { kNode, kEdge, kMixed };

/// Builds the next burst for the matrix: node events from `loop`'s traffic
/// source, edge toggles valid against the live configuration (deduped so a
/// burst never double-toggles an edge), or both.
std::vector<ChurnEvent> next_burst(ServiceLoop& loop, const Instance& inst,
                                   ChurnKind kind, std::size_t burst,
                                   util::Rng& rng,
                                   std::vector<std::uint8_t>& touched) {
  std::vector<ChurnEvent> events;
  if (kind != ChurnKind::kEdge) events = loop.traffic().next_burst();
  if (kind != ChurnKind::kNode) {
    std::fill(touched.begin(), touched.end(), std::uint8_t{0});
    const std::size_t toggles = std::min(burst, inst.g.num_edges() / 2);
    for (std::size_t j = 0; j < toggles; ++j) {
      const auto e = static_cast<EdgeId>(rng.index(inst.g.num_edges()));
      if (touched[e] != 0) continue;
      touched[e] = 1;
      const auto& [u, v] = inst.g.edge(e);
      events.push_back(loop.engine().edge_present(e)
                           ? ChurnEvent::edge_down(u, v)
                           : ChurnEvent::edge_up(u, v));
    }
  }
  return events;
}

// The tentpole's bit-identity contract, across the full matrix: er/ba/ws
// topologies × node-only / edge-only / mixed churn × burst sizes 1, 64 and
// 256, ≥ 100 epochs each. The kOn twin must publish a delta every epoch
// after the first and be exactly equal to the kOff twin's full rebuild.
TEST(DeltaEquivalence, TwinCaptureMatrix) {
  for (const char* topology : {"er", "ba", "ws"}) {
    for (const ChurnKind kind :
         {ChurnKind::kNode, ChurnKind::kEdge, ChurnKind::kMixed}) {
      for (const std::size_t burst : {std::size_t{1}, std::size_t{64},
                                      std::size_t{256}}) {
        auto inst = Instance::random_quotas(topology, 96, 5.0, 3, 707);
        ServeOptions on_opts;
        on_opts.seed = 31;
        on_opts.churn_batch_mean = static_cast<double>(burst);
        on_opts.delta_publish = DeltaPublish::kOn;
        ServeOptions off_opts = on_opts;
        off_opts.delta_publish = DeltaPublish::kOff;
        ServiceLoop on_loop(*inst->profile, *inst->weights, on_opts);
        ServiceLoop off_loop(*inst->profile, *inst->weights, off_opts);
        auto on_reader = on_loop.store().register_reader();
        auto off_reader = off_loop.store().register_reader();

        util::Rng rng(0xde17a ^ burst);
        std::vector<std::uint8_t> touched(inst->g.num_edges(), 0);
        for (int k = 0; k < 100; ++k) {
          // One burst, applied verbatim to both twins (their engines are in
          // identical states, so validity against one implies the other).
          const auto events =
              next_burst(on_loop, *inst, kind, burst, rng, touched);
          const auto on_st = on_loop.apply(events);
          const auto off_st = off_loop.apply(events);
          EXPECT_TRUE(on_st.delta) << "kOn must never fall back";
          EXPECT_FALSE(off_st.delta) << "kOff must never delta";
          SnapshotRef on_snap = on_loop.store().acquire(on_reader);
          SnapshotRef off_snap = off_loop.store().acquire(off_reader);
          // A burst with net effect must dirty at least one page; a fully
          // coalesced burst (e.g. leave+join of the same node) correctly
          // rebuilds nothing — the 0-page delta IS the win.
          if (events.size() > on_st.coalesced) {
            EXPECT_GT(on_snap->delta_pages(), 0u)
                << topology << " kind=" << static_cast<int>(kind)
                << " burst=" << burst << " epoch " << k;
          }
          EXPECT_EQ(off_snap->delta_pages(), 0u);
          ASSERT_NO_FATAL_FAILURE(
              expect_snapshots_identical(*on_snap, *off_snap))
              << topology << " kind=" << static_cast<int>(kind)
              << " burst=" << burst << " epoch " << k;
        }
      }
    }
  }
}

// kAuto may pick either path per epoch (its break-even estimate is a timing
// artifact); whatever it picks must still equal the full rebuild exactly.
TEST(DeltaEquivalence, AutoModeMatchesFullCapture) {
  auto inst = Instance::random_quotas("er", 120, 6.0, 3, 808);
  ServeOptions auto_opts;
  auto_opts.seed = 17;
  auto_opts.churn_batch_mean = 32.0;
  auto_opts.delta_publish = DeltaPublish::kAuto;
  ServeOptions off_opts = auto_opts;
  off_opts.delta_publish = DeltaPublish::kOff;
  ServiceLoop auto_loop(*inst->profile, *inst->weights, auto_opts);
  ServiceLoop off_loop(*inst->profile, *inst->weights, off_opts);
  auto auto_reader = auto_loop.store().register_reader();
  auto off_reader = off_loop.store().register_reader();

  util::Rng rng(4242);
  std::vector<std::uint8_t> touched(inst->g.num_edges(), 0);
  for (int k = 0; k < 100; ++k) {
    const auto events =
        next_burst(auto_loop, *inst, ChurnKind::kMixed, 8, rng, touched);
    auto_loop.apply(events);
    off_loop.apply(events);
    SnapshotRef a = auto_loop.store().acquire(auto_reader);
    SnapshotRef b = off_loop.store().acquire(off_reader);
    ASSERT_NO_FATAL_FAILURE(expect_snapshots_identical(*a, *b)) << "epoch " << k;
  }
}

// Satellite regression (the bug class delta capture is most exposed to):
// edge-only churn flips satisfaction for nodes no node-event ever touches.
// After bursts of pure edge toggles, every node's published S_i must equal
// a from-scratch recompute over its published neighbour list.
TEST(DeltaEquivalence, EdgeOnlyChurnSatisfactionMatchesRecompute) {
  auto inst = Instance::random_quotas("ba", 110, 5.0, 3, 909);
  ServeOptions opts;
  opts.delta_publish = DeltaPublish::kOn;
  ServiceLoop loop(*inst->profile, *inst->weights, opts);
  auto reader = loop.store().register_reader();
  util::Rng rng(31337);
  std::vector<std::uint8_t> touched(inst->g.num_edges(), 0);
  for (int k = 0; k < 60; ++k) {
    loop.apply(next_burst(loop, *inst, ChurnKind::kEdge, 16, rng, touched));
    SnapshotRef snap = loop.store().acquire(reader);
    for (NodeId v = 0; v < inst->g.num_nodes(); ++v) {
      const double want =
          snap->alive(v)
              ? prefs::satisfaction(*inst->profile, v, snap->neighbors(v))
              : 0.0;
      ASSERT_EQ(snap->satisfaction(v), want) << "node " << v << " epoch " << k;
    }
  }
}

// Page reclamation, end to end: when a store (and every snapshot it ever
// published) is torn down, the shared pages must all be freed — the
// process-wide live-page counters return to their pre-store baseline.
TEST(DeltaEquivalence, PageReclaimNoLeaksAfterStoreTeardown) {
  const std::size_t baseline = live_page_count();
  {
    auto inst = Instance::random_quotas("er", 130, 5.0, 3, 111);
    ServeOptions opts;
    opts.delta_publish = DeltaPublish::kOn;
    opts.churn_batch_mean = 24.0;
    ServiceLoop loop(*inst->profile, *inst->weights, opts);
    auto reader = loop.store().register_reader();
    EXPECT_GT(live_page_count(), baseline);
    // Hold a stale snapshot across several publishes so shared pages carry
    // refcounts > 1, then release and let the store reclaim.
    SnapshotRef pinned = loop.store().acquire(reader);
    for (int k = 0; k < 40; ++k) (void)loop.step();
    pinned.release();
    (void)loop.store().reclaim();
  }
  EXPECT_EQ(live_page_count(), baseline);
}

// Concurrency contract under page sharing, for the tsan-hammer preset: 8
// readers pin snapshots — deliberately holding each across several writer
// epochs so shared pages stay referenced by retired snapshots — and verify
// the greedy fixed point from scratch, while the writer publishes deltas.
TEST(SnapshotHammer, DeltaPageSharingEightReaders) {
  auto inst = Instance::random_quotas("er", 90, 5.0, 3, 515);
  ServeOptions opts;
  opts.seed = 13;
  opts.churn_batch_mean = 10.0;
  opts.delta_publish = DeltaPublish::kOn;
  ServiceLoop loop(*inst->profile, *inst->weights, opts);

  constexpr int kReaders = 8;
  constexpr int kBursts = 60;
  constexpr int kMinVerifies = 15;
  std::atomic<bool> done{false};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      auto handle = loop.store().register_reader();
      std::uint64_t last_epoch = 0;
      int checks = 0;
      while (!done.load(std::memory_order_acquire) || checks < kMinVerifies) {
        SnapshotRef snap = loop.store().acquire(handle);
        ASSERT_GE(snap->epoch(), last_epoch);
        last_epoch = snap->epoch();
        // From-scratch greedy on the snapshot's own configuration — the
        // published matching must be its unique fixed point even though
        // most of the pages backing it are shared with other epochs.
        const auto& g = inst->g;
        matching::Matching m(g, inst->profile->quotas());
        for (const EdgeId e : inst->weights->by_weight()) {
          if (!snap->edge_enabled(e)) continue;
          const auto& [u, v] = g.edge(e);
          if (!snap->alive(u) || !snap->alive(v)) continue;
          if (m.can_add(e)) m.add(e);
        }
        std::vector<EdgeId> scratch = m.edges();
        std::sort(scratch.begin(), scratch.end());
        ASSERT_EQ(snap->matched_edges(), scratch) << "epoch " << snap->epoch();
        double sat_total = 0.0;
        for (NodeId v = 0; v < g.num_nodes(); ++v) {
          const double want =
              snap->alive(v)
                  ? prefs::satisfaction(*inst->profile, v, snap->neighbors(v))
                  : 0.0;
          ASSERT_EQ(snap->satisfaction(v), want) << "node " << v;
          sat_total += want;
        }
        ASSERT_NEAR(snap->satisfaction_total(), sat_total, 1e-6);
        // Hold the ref a little so the epoch retires while pinned and the
        // writer keeps releasing dirty pages underneath shared ones.
        if ((checks & 3) == t % 4) std::this_thread::yield();
        ++checks;
      }
    });
  }

  util::Rng rng(99);
  std::vector<std::uint8_t> touched(inst->g.num_edges(), 0);
  for (int k = 0; k < kBursts; ++k) {
    loop.apply(next_burst(loop, *inst, ChurnKind::kMixed, 3, rng, touched));
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(loop.epoch(), 1u + kBursts);
  EXPECT_EQ(loop.store().reclaim(), 0u);
}

// The perf claim behind the tentpole, as a gate: at n = 10^5 / burst 64 the
// delta path's median publish must beat the full rebuild by ≥ 2× (the
// acceptance run on real hardware shows far more; the gate is conservative
// against CI noise). Timing needs the machine to itself — skip below 4
// hardware threads, like the other speedup gates.
TEST(DeltaSpeedup, MedianPublishBeatsFullRebuildAtScale) {
  if (std::thread::hardware_concurrency() < 4) {
    GTEST_SKIP() << "needs >= 4 hardware threads for stable timing";
  }
  auto inst = Instance::random_quotas("er", 100'000, 8.0, 3, 4242);
  const auto run = [&](DeltaPublish mode) {
    ServeOptions opts;
    opts.seed = 9;
    opts.churn_batch_mean = 64.0;
    opts.delta_publish = mode;
    ServiceLoop loop(*inst->profile, *inst->weights, opts);
    std::vector<double> pub_ms;
    pub_ms.reserve(60);
    for (int k = 0; k < 60; ++k) {
      pub_ms.push_back(static_cast<double>(loop.step().publish_ns) / 1e6);
    }
    return util::percentile(pub_ms, 50.0);
  };
  const double full_ms = run(DeltaPublish::kOff);
  const double delta_ms = run(DeltaPublish::kOn);
  EXPECT_LT(delta_ms * 2.0, full_ms)
      << "delta median " << delta_ms << " ms vs full median " << full_ms
      << " ms";
}

}  // namespace
}  // namespace overmatch::serve
