// ServiceLoop correctness: every published snapshot must be *the* greedy
// (b-suitor / LIC) fixed point of its own (alive, edge-enabled)
// configuration — checked from scratch per epoch — with consistent CSR
// neighbour lists, satisfaction cache, weight, and zero blocking edges.
// SnapshotHammer.EightReadersMixedChurnFixedPoint is the concurrent
// version (8 readers × 1 writer applying mixed node+edge churn) and the
// headline target of the `tsan-hammer` preset.
#include "serve/service_loop.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include "prefs/satisfaction.hpp"
#include "serve/snapshot.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::serve {
namespace {

using matching::ChurnEvent;
using matching::testing::Instance;

/// From-scratch greedy (locally heaviest first) on exactly the
/// configuration a snapshot says it is the fixed point of. Equals batch
/// b-suitor / LIC under the strict key order (DESIGN.md §10), so this is
/// the oracle the store's stale-reads-are-safe claim rests on.
std::vector<EdgeId> scratch_fixed_point(const prefs::EdgeWeights& w,
                                        const matching::Quotas& quotas,
                                        const MatchingSnapshot& snap) {
  const auto& g = w.graph();
  matching::Matching m(g, quotas);
  for (const EdgeId e : w.by_weight()) {
    if (!snap.edge_enabled(e)) continue;
    const auto& [u, v] = g.edge(e);
    if (!snap.alive(u) || !snap.alive(v)) continue;
    if (m.can_add(e)) m.add(e);
  }
  std::vector<EdgeId> edges = m.edges();
  std::sort(edges.begin(), edges.end());
  return edges;
}

/// Full audit of one snapshot against its instance: matched edges equal
/// the from-scratch fixed point, CSR lists agree with the edge set, the
/// satisfaction cache matches a recompute, and no blocking edge exists.
void expect_snapshot_consistent(const Instance& inst, const MatchingSnapshot& s) {
  const auto& quotas = inst.profile->quotas();
  const auto scratch = scratch_fixed_point(*inst.weights, quotas, s);
  ASSERT_EQ(s.matched_edges(), scratch);

  // CSR neighbour lists must be exactly the matched edge set, per node.
  std::vector<std::vector<NodeId>> adj(inst.g.num_nodes());
  double weight = 0.0;
  for (const EdgeId e : s.matched_edges()) {
    const auto& [u, v] = inst.g.edge(e);
    adj[u].push_back(v);
    adj[v].push_back(u);
    weight += inst.weights->weight(e);
  }
  double sat_total = 0.0;
  for (NodeId v = 0; v < inst.g.num_nodes(); ++v) {
    auto got = std::vector<NodeId>(s.neighbors(v).begin(), s.neighbors(v).end());
    std::sort(got.begin(), got.end());
    std::sort(adj[v].begin(), adj[v].end());
    ASSERT_EQ(got, adj[v]) << "node " << v;
    ASSERT_EQ(s.load(v), adj[v].size());
    const double want_sat =
        s.alive(v) ? prefs::satisfaction(*inst.profile, v, s.neighbors(v)) : 0.0;
    ASSERT_NEAR(s.satisfaction(v), want_sat, 1e-9) << "node " << v;
    sat_total += want_sat;
  }
  ASSERT_NEAR(s.matched_weight(), weight, 1e-6);
  ASSERT_NEAR(s.satisfaction_total(), sat_total, 1e-6);
  ASSERT_EQ(count_blocking_edges(*inst.weights, *inst.profile, s), 0u);
}

TEST(ServiceLoop, InitialSnapshotIsTheFullGraphFixedPoint) {
  auto inst = Instance::random_quotas("er", 60, 5.0, 3, 101);
  ServiceLoop loop(*inst->profile, *inst->weights, {});
  EXPECT_EQ(loop.epoch(), 1u);
  auto reader = loop.store().register_reader();
  SnapshotRef snap = loop.store().acquire(reader);
  EXPECT_EQ(snap->epoch(), 1u);
  EXPECT_EQ(snap->online_count(), inst->g.num_nodes());
  EXPECT_EQ(snap->num_nodes(), inst->g.num_nodes());
  expect_snapshot_consistent(*inst, *snap);
}

TEST(ServiceLoop, EveryStepPublishesTheFixedPointOfItsEpoch) {
  for (const char* topology : {"er", "ba"}) {
    auto inst = Instance::random_quotas(topology, 80, 5.0, 3, 202);
    ServeOptions opts;
    opts.seed = 9;
    opts.churn_batch_mean = 12.0;
    opts.count_blocking = true;  // per-publish audit aborts unless 0
    ServiceLoop loop(*inst->profile, *inst->weights, opts);
    auto reader = loop.store().register_reader();
    for (int k = 0; k < 40; ++k) {
      const auto st = loop.step();
      EXPECT_EQ(st.epoch, loop.epoch());
      SnapshotRef snap = loop.store().acquire(reader);
      EXPECT_EQ(snap->epoch(), loop.epoch());
      ASSERT_NO_FATAL_FAILURE(expect_snapshot_consistent(*inst, *snap))
          << topology << " step " << k;
    }
  }
}

TEST(ServiceLoop, MixedNodeAndEdgeBurstsStayAtFixedPoint) {
  auto inst = Instance::random_quotas("ws", 70, 6.0, 2, 303);
  ServiceLoop loop(*inst->profile, *inst->weights, {});
  auto reader = loop.store().register_reader();
  util::Rng rng(77);
  for (int k = 0; k < 30; ++k) {
    // Traffic burst (node events) + a few edge toggles valid against the
    // live configuration; dedup edges so a burst never double-toggles.
    std::vector<ChurnEvent> burst = loop.traffic().next_burst();
    std::vector<std::uint8_t> touched(inst->g.num_edges(), 0);
    for (int j = 0; j < 4; ++j) {
      const auto e = static_cast<EdgeId>(rng.index(inst->g.num_edges()));
      if (touched[e] != 0) continue;
      touched[e] = 1;
      const auto& [u, v] = inst->g.edge(e);
      burst.push_back(loop.engine().edge_present(e) ? ChurnEvent::edge_down(u, v)
                                                    : ChurnEvent::edge_up(u, v));
    }
    const auto st = loop.apply(burst);
    EXPECT_EQ(st.events, burst.size());
    SnapshotRef snap = loop.store().acquire(reader);
    ASSERT_NO_FATAL_FAILURE(expect_snapshot_consistent(*inst, *snap))
        << "burst " << k;
  }
}

TEST(ServiceLoop, RunForStopsAtDeadlineAndOnRequest) {
  auto inst = Instance::random_quotas("er", 40, 4.0, 2, 404);
  ServeOptions opts;
  opts.churn_batch_mean = 8.0;
  ServiceLoop loop(*inst->profile, *inst->weights, opts);

  const auto run = loop.run_for(std::chrono::milliseconds(50));
  EXPECT_GT(run.batches, 0u);
  EXPECT_GE(run.events, run.batches);  // bursts are non-empty on average
  EXPECT_GT(loop.epoch(), 1u);

  // request_stop() from another thread ends a long run early.
  std::thread stopper([&loop] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    loop.request_stop();
  });
  const auto t0 = std::chrono::steady_clock::now();
  (void)loop.run_for(std::chrono::seconds(30));
  stopper.join();
  EXPECT_LT(std::chrono::steady_clock::now() - t0, std::chrono::seconds(10));
}

// Anytime serving (DESIGN.md §14): with an effectively-expired per-epoch
// publish deadline every burst's repair is deferred, yet the epoch still
// publishes — a valid partial matching whose blocking-edge gauge is the
// honest from-scratch count, never a stalled or torn snapshot. Lifting the
// deadline and applying an empty burst drains the deferred repair and the
// next snapshot is the exact fixed point again.
TEST(ServiceLoop, TruncatedEpochPublishesPartialThenCatchesUp) {
  auto inst = Instance::random_quotas("er", 200, 6.0, 3, 606);
  ServeOptions opts;
  opts.seed = 21;
  opts.churn_batch_mean = 32.0;
  opts.epoch_deadline_ms = 1e-6;  // expired before the drain's first check
  ServiceLoop loop(*inst->profile, *inst->weights, opts);
  auto reader = loop.store().register_reader();

  bool saw_truncated = false;
  for (int k = 0; k < 20; ++k) {
    const auto st = loop.step();
    SnapshotRef snap = loop.store().acquire(reader);
    EXPECT_EQ(snap->epoch(), st.epoch);
    if (st.truncated) {
      saw_truncated = true;
      EXPECT_TRUE(loop.engine().truncated());
      EXPECT_GT(st.pending_repairs, 0u);
      EXPECT_EQ(st.pending_repairs, loop.engine().pending_repairs());
      // Readers are never stalled, and the gauge is honest: it equals an
      // independent O(m) recount on the published snapshot.
      EXPECT_EQ(snap->blocking_edges(),
                count_blocking_edges(*inst->weights, *inst->profile, *snap));
    } else {
      ASSERT_NO_FATAL_FAILURE(expect_snapshot_consistent(*inst, *snap))
          << "step " << k;
    }
  }
  EXPECT_TRUE(saw_truncated);

  // Catch-up: no deadline + empty burst = drain everything deferred.
  loop.set_epoch_deadline_ms(0.0);
  const auto st = loop.apply({});
  EXPECT_FALSE(st.truncated);
  EXPECT_EQ(st.pending_repairs, 0u);
  EXPECT_FALSE(loop.engine().truncated());
  SnapshotRef snap = loop.store().acquire(reader);
  EXPECT_EQ(snap->blocking_edges(), 0u);
  ASSERT_NO_FATAL_FAILURE(expect_snapshot_consistent(*inst, *snap));
}

// The tentpole's concurrency contract, end to end: one writer applies mixed
// node+edge churn bursts and publishes; 8 reader threads concurrently pin
// snapshots and verify — from scratch — that each one is the unique greedy
// fixed point of the configuration it carries, with zero blocking edges.
// Readers never see a torn state regardless of how stale their epoch is.
// Run under the `tsan` preset via the tsan-hammer ctest filter.
TEST(SnapshotHammer, EightReadersMixedChurnFixedPoint) {
  auto inst = Instance::random_quotas("er", 90, 5.0, 3, 505);
  ServeOptions opts;
  opts.seed = 13;
  opts.churn_batch_mean = 10.0;
  ServiceLoop loop(*inst->profile, *inst->weights, opts);

  constexpr int kReaders = 8;
  constexpr int kBursts = 60;
  constexpr int kMinVerifies = 20;  // per reader, before the writer may stop
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> verified{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&] {
      auto handle = loop.store().register_reader();
      std::uint64_t last_epoch = 0;
      int checks = 0;
      while (!done.load(std::memory_order_acquire) || checks < kMinVerifies) {
        SnapshotRef snap = loop.store().acquire(handle);
        ASSERT_GE(snap->epoch(), last_epoch);
        last_epoch = snap->epoch();
        ASSERT_NO_FATAL_FAILURE(expect_snapshot_consistent(*inst, *snap))
            << "epoch " << snap->epoch();
        ++checks;
        verified.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  util::Rng rng(99);
  std::vector<std::uint8_t> touched(inst->g.num_edges(), 0);
  for (int k = 0; k < kBursts; ++k) {
    std::vector<ChurnEvent> burst = loop.traffic().next_burst();
    std::fill(touched.begin(), touched.end(), std::uint8_t{0});
    for (int j = 0; j < 3; ++j) {
      const auto e = static_cast<EdgeId>(rng.index(inst->g.num_edges()));
      if (touched[e] != 0) continue;
      touched[e] = 1;
      const auto& [u, v] = inst->g.edge(e);
      burst.push_back(loop.engine().edge_present(e) ? ChurnEvent::edge_down(u, v)
                                                    : ChurnEvent::edge_up(u, v));
    }
    loop.apply(burst);
  }
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(loop.epoch(), 1u + kBursts);
  EXPECT_GE(verified.load(), std::uint64_t{kReaders * kMinVerifies});
  // All readers unregistered and released: retirees drain completely.
  EXPECT_EQ(loop.store().reclaim(), 0u);
}

}  // namespace
}  // namespace overmatch::serve
