// MatchingStore protocol tests: publish/acquire/release lifecycle, refcount
// + epoch-drain reclamation, reader-slot registration, the no-reader and
// no-writer edge cases, and a multi-threaded acquire/publish stress run
// (SnapshotHammer.* — the suite the tsan-hammer preset filters on).
#include "serve/store.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "matching/dynamic_bsuitor.hpp"
#include "serve/snapshot.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::serve {
namespace {

using matching::testing::Instance;

/// Snapshot factory for store-level tests: captures the (static) engine
/// state of a tiny instance under successive epochs, so every snapshot has
/// identical payload and only the epoch differs — any torn or reclaimed-
/// too-early read shows up as a payload mismatch or a sanitizer report.
struct SnapshotFactory {
  std::unique_ptr<Instance> inst;
  std::unique_ptr<matching::DynamicBSuitor> dyn;
  std::vector<double> sat;

  explicit SnapshotFactory(std::uint64_t seed = 7) {
    inst = Instance::random("er", 32, 4.0, 2, seed);
    dyn = std::make_unique<matching::DynamicBSuitor>(*inst->weights,
                                                     inst->profile->quotas());
    sat.assign(inst->g.num_nodes(), 0.0);
  }

  [[nodiscard]] std::unique_ptr<MatchingSnapshot> make(std::uint64_t epoch) {
    return MatchingSnapshot::capture(*dyn, sat, epoch, obs::Snapshot{});
  }
};

TEST(MatchingStore, PublishAcquireRelease) {
  SnapshotFactory f;
  MatchingStore store(4);
  EXPECT_EQ(store.current_epoch(), 0u);
  store.publish(f.make(1));
  EXPECT_EQ(store.current_epoch(), 1u);
  EXPECT_EQ(store.published_count(), 1u);

  auto reader = store.register_reader();
  {
    SnapshotRef ref = store.acquire(reader);
    ASSERT_TRUE(ref);
    EXPECT_EQ(ref->epoch(), 1u);
    EXPECT_EQ(ref->matched_edges().size(),
              f.dyn->matching().edges().size());
  }
  // Releasing the only outstanding ref leaves the store reclaimable.
  store.publish(f.make(2));
  EXPECT_EQ(store.current_epoch(), 2u);
  EXPECT_EQ(store.reclaim(), 0u);
}

TEST(MatchingStore, NoReadersRetiredSnapshotsDrainOnPublish) {
  SnapshotFactory f;
  MatchingStore store(2);
  for (std::uint64_t e = 1; e <= 16; ++e) {
    store.publish(f.make(e));
    // With nobody announced and no refs held, publish()'s opportunistic
    // reclaim frees the predecessor immediately.
    EXPECT_EQ(store.retired_count(), 0u) << "epoch " << e;
  }
  EXPECT_EQ(store.published_count(), 16u);
}

TEST(MatchingStore, HeldRefBlocksReclaimUntilRelease) {
  SnapshotFactory f;
  MatchingStore store(2);
  store.publish(f.make(1));
  auto reader = store.register_reader();

  SnapshotRef pinned = store.acquire(reader);
  store.publish(f.make(2));
  // Epoch 1 is retired but pinned: the refcount keeps it.
  EXPECT_EQ(store.retired_count(), 1u);
  EXPECT_EQ(store.reclaim(), 1u);
  EXPECT_EQ(pinned->epoch(), 1u);  // still readable while pinned

  pinned.release();
  EXPECT_EQ(store.reclaim(), 0u);
}

TEST(MatchingStore, ManyPinnedGenerationsReclaimInAnyReleaseOrder) {
  SnapshotFactory f;
  MatchingStore store(4);
  auto reader = store.register_reader();
  std::vector<SnapshotRef> pins;
  for (std::uint64_t e = 1; e <= 5; ++e) {
    store.publish(f.make(e));
    pins.push_back(store.acquire(reader));
  }
  EXPECT_EQ(store.retired_count(), 4u);  // epochs 1..4 retired, all pinned
  // Release out of order: middle, last, then the rest.
  pins[2].release();
  pins[4].release();
  EXPECT_EQ(store.reclaim(), 3u);
  for (auto& p : pins) p.release();
  EXPECT_EQ(store.reclaim(), 0u);
}

TEST(MatchingStore, NoWriterRepeatedAcquiresSeeSameEpoch) {
  SnapshotFactory f;
  MatchingStore store(4);
  store.publish(f.make(1));
  auto r1 = store.register_reader();
  auto r2 = store.register_reader();
  for (int i = 0; i < 100; ++i) {
    SnapshotRef a = store.acquire(r1);
    SnapshotRef b = store.acquire(r2);
    EXPECT_EQ(a.get(), b.get());
    EXPECT_EQ(a->epoch(), 1u);
  }
  EXPECT_EQ(store.retired_count(), 0u);
}

TEST(MatchingStore, ReaderHandlesRegisterUnregisterAndReuseSlots) {
  SnapshotFactory f;
  MatchingStore store(2);
  store.publish(f.make(1));
  auto a = store.register_reader();
  {
    auto b = store.register_reader();
    EXPECT_TRUE(b.valid());
    // Moving transfers the slot; the source no longer unregisters.
    MatchingStore::ReaderHandle c = std::move(b);
    EXPECT_TRUE(c.valid());
    EXPECT_FALSE(b.valid());  // NOLINT(bugprone-use-after-move)
    (void)store.acquire(c);
  }  // c's destructor frees the slot
  auto d = store.register_reader();  // reuses the freed slot
  EXPECT_TRUE(d.valid());
  (void)store.acquire(d);
}

TEST(MatchingStoreDeathTest, RegisterBeyondCapacityAborts) {
  MatchingStore store(1);
  auto only = store.register_reader();
  EXPECT_DEATH((void)store.register_reader(), "reader slots");
}

TEST(MatchingStoreDeathTest, AcquireBeforeFirstPublishAborts) {
  MatchingStore store(1);
  auto reader = store.register_reader();
  EXPECT_DEATH((void)store.acquire(reader), "publish");
}

// Store-level stress: 8 reader threads spin on acquire/validate/release
// while the writer publishes fresh snapshots as fast as it can. Payloads
// are identical across epochs (static engine), so any use-after-reclaim is
// a payload mismatch under this test and a hard report under TSan/ASan.
// Part of the SnapshotHammer suite the `tsan-hammer` preset runs.
TEST(SnapshotHammer, StoreAcquireReleaseStress) {
  SnapshotFactory f;
  const double ref_weight = f.dyn->matched_weight();
  const std::size_t ref_edges = f.dyn->matching().edges().size();

  MatchingStore store(8);
  store.publish(f.make(1));

  constexpr int kReaders = 8;
  constexpr std::uint64_t kPublishes = 400;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&store, &done, &reads, ref_weight, ref_edges] {
      auto handle = store.register_reader();
      std::uint64_t last_epoch = 0;
      // Keep reading until the writer is done AND this reader has done a
      // minimum amount of work — on few-core machines the writer can
      // finish all publishes before a reader is ever scheduled.
      constexpr std::uint64_t kMinReads = 50;
      std::uint64_t mine = 0;
      while (!done.load(std::memory_order_acquire) || mine < kMinReads) {
        SnapshotRef ref = store.acquire(handle);
        ASSERT_TRUE(ref);
        // Epochs are monotone per reader; payload never changes.
        ASSERT_GE(ref->epoch(), last_epoch);
        last_epoch = ref->epoch();
        ASSERT_EQ(ref->matched_edges().size(), ref_edges);
        ASSERT_DOUBLE_EQ(ref->matched_weight(), ref_weight);
        ++mine;
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (std::uint64_t e = 2; e <= kPublishes; ++e) store.publish(f.make(e));
  done.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();

  EXPECT_EQ(store.published_count(), kPublishes);
  EXPECT_GT(reads.load(), 0u);
  EXPECT_EQ(store.reclaim(), 0u);  // all readers gone: everything drains
}

}  // namespace
}  // namespace overmatch::serve
