#include "sim/reliable.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "sim/event_sim.hpp"

namespace overmatch::sim {
namespace {

/// Inner agent: node 0 streams `count` numbered messages to node 1, which
/// records what it received; exposes exactly-once expectations.
class StreamSender final : public Agent {
 public:
  explicit StreamSender(std::uint64_t count) : count_(count) {}
  void on_start(Outbox& out) override {
    for (std::uint64_t k = 0; k < count_; ++k) out.send(1, Message{5, k});
  }
  void on_message(NodeId, const Message&, Outbox&) override {}
  [[nodiscard]] bool terminated() const override { return true; }

 private:
  std::uint64_t count_;
};

class StreamReceiver final : public Agent {
 public:
  void on_start(Outbox&) override {}
  void on_message(NodeId, const Message& msg, Outbox&) override {
    received_.push_back(msg.data);
  }
  [[nodiscard]] bool terminated() const override { return true; }
  [[nodiscard]] const std::vector<std::uint64_t>& received() const {
    return received_;
  }

 private:
  std::vector<std::uint64_t> received_;
};

struct Harness {
  StreamSender sender;
  StreamReceiver receiver;
  ReliableAgent r0;
  ReliableAgent r1;

  explicit Harness(std::uint64_t count)
      : sender(count), r0(0, &sender, 4.0), r1(1, &receiver, 4.0) {}
};

TEST(ReliableAgent, ExactlyOnceWithoutLoss) {
  Harness h(20);
  EventSimulator sim({&h.r0, &h.r1}, Schedule::kRandomDelay, 1);
  const auto stats = sim.run();
  EXPECT_EQ(h.receiver.received().size(), 20u);
  EXPECT_EQ(stats.total_dropped, 0u);
  EXPECT_TRUE(h.r0.terminated());
  EXPECT_EQ(h.r0.retransmissions(), 0u);
}

TEST(ReliableAgent, ExactlyOnceUnderHeavyLoss) {
  for (const double loss : {0.1, 0.3, 0.6}) {
    Harness h(30);
    EventSimulator sim({&h.r0, &h.r1}, Schedule::kRandomDelay, 7);
    sim.set_loss_probability(loss);
    const auto stats = sim.run();
    // Every payload arrives exactly once despite drops.
    std::vector<std::uint64_t> got = h.receiver.received();
    std::sort(got.begin(), got.end());
    ASSERT_EQ(got.size(), 30u) << "loss=" << loss;
    for (std::uint64_t k = 0; k < 30; ++k) EXPECT_EQ(got[k], k);
    EXPECT_GT(stats.total_dropped, 0u);
    EXPECT_TRUE(h.r0.terminated());
    EXPECT_GT(h.r0.retransmissions(), 0u);
  }
}

TEST(ReliableAgent, NoTrafficNoTimers) {
  StreamSender quiet(0);
  StreamReceiver sink;
  ReliableAgent r0(0, &quiet, 4.0);
  ReliableAgent r1(1, &sink, 4.0);
  EventSimulator sim({&r0, &r1}, Schedule::kRandomDelay, 1);
  const auto stats = sim.run();
  EXPECT_EQ(stats.total_sent, 0u);
}

TEST(ReliableAgent, FreshSendNotImmediatelyRetransmitted) {
  // Regression: every tick used to retransmit *all* unacked entries, even
  // ones sent moments before the timer fired. Drive the adapter by hand:
  // message A arms the timer at send time (eligible at the first tick);
  // message B is sent while the timer is already armed, so the imminent tick
  // must skip it and only the tick after may retransmit it.
  class PokeSender final : public Agent {
   public:
    void on_start(Outbox& out) override { out.send(1, Message{5, 0}); }  // A
    void on_message(NodeId, const Message& msg, Outbox& out) override {
      if (msg.kind == 6) out.send(1, Message{5, 1});  // B, on poke
    }
    [[nodiscard]] bool terminated() const override { return true; }
  };
  PokeSender inner;
  ReliableAgent r0(0, &inner, 4.0);
  Outbox out;
  r0.on_start(out);  // sends A, arms the timer
  out.clear();
  r0.on_message(2, Message{6, 0}, out);  // poke from peer 2: B is sent fresh
  EXPECT_EQ(r0.retransmissions(), 0u);
  out.clear();
  r0.on_message(0, Message{kTickKind, 0}, out);  // tick 1: A only — B is fresh
  EXPECT_EQ(r0.retransmissions(), 1u);
  out.clear();
  r0.on_message(0, Message{kTickKind, 0}, out);  // tick 2: A again, and now B
  EXPECT_EQ(r0.retransmissions(), 3u);
}

TEST(ReliableAgentDeathTest, ReservedKindRejected) {
  class BadAgent final : public Agent {
   public:
    void on_start(Outbox& out) override { out.send(1, Message{kAckKind, 0}); }
    void on_message(NodeId, const Message&, Outbox&) override {}
    [[nodiscard]] bool terminated() const override { return true; }
  };
  BadAgent bad;
  StreamReceiver sink;
  ReliableAgent r0(0, &bad, 4.0);
  ReliableAgent r1(1, &sink, 4.0);
  EventSimulator sim({&r0, &r1}, Schedule::kRandomDelay, 1);
  EXPECT_DEATH((void)sim.run(), "reserved");
}

TEST(EventSimulatorDeathTest, LossRequiresDelaySchedule) {
  StreamSender s(1);
  StreamReceiver r;
  EventSimulator sim({&s, &r}, Schedule::kFifo, 1);
  EXPECT_DEATH(sim.set_loss_probability(0.5), "delay-based");
}

TEST(EventSimulator, LossDropsRoughlyTheRightFraction) {
  StreamSender s(2000);
  StreamReceiver r;
  EventSimulator sim({&s, &r}, Schedule::kRandomDelay, 3);
  sim.set_loss_probability(0.25);
  const auto stats = sim.run();
  // Sender is not wrapped: drops are permanent. Expect ≈ 25% of 2000.
  EXPECT_NEAR(static_cast<double>(stats.total_dropped), 500.0, 90.0);
  EXPECT_EQ(r.received().size(), 2000 - stats.total_dropped);
}

}  // namespace
}  // namespace overmatch::sim
