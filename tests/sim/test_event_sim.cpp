#include "sim/event_sim.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <numeric>

namespace overmatch::sim {
namespace {

/// Passes a token around the ring `laps` times, then stops.
class RingAgent final : public Agent {
 public:
  RingAgent(NodeId self, std::size_t n, std::uint64_t laps)
      : self_(self), n_(n), laps_(laps) {}

  void on_start(Outbox& out) override {
    if (self_ == 0) out.send(1 % static_cast<NodeId>(n_), Message{1, laps_ * n_});
  }

  void on_message(NodeId, const Message& msg, Outbox& out) override {
    ++received_;
    if (msg.data > 1) {
      out.send(static_cast<NodeId>((self_ + 1) % n_), Message{1, msg.data - 1});
    } else {
      done_ = true;
    }
  }

  [[nodiscard]] bool terminated() const override { return done_; }
  [[nodiscard]] std::size_t received() const noexcept { return received_; }

 private:
  NodeId self_;
  std::size_t n_;
  std::uint64_t laps_;
  std::size_t received_ = 0;
  bool done_ = false;
};

/// Replies to every received message forever (for the budget-guard test).
class EchoForeverAgent final : public Agent {
 public:
  explicit EchoForeverAgent(NodeId self) : self_(self) {}
  void on_start(Outbox& out) override {
    if (self_ == 0) out.send(1, Message{1, 0});
  }
  void on_message(NodeId from, const Message& msg, Outbox& out) override {
    out.send(from, msg);
  }
  [[nodiscard]] bool terminated() const override { return false; }

 private:
  NodeId self_;
};

std::vector<Agent*> raw(const std::vector<std::unique_ptr<RingAgent>>& v) {
  std::vector<Agent*> out;
  for (const auto& a : v) out.push_back(a.get());
  return out;
}

std::vector<std::unique_ptr<RingAgent>> ring(std::size_t n, std::uint64_t laps) {
  std::vector<std::unique_ptr<RingAgent>> agents;
  for (NodeId v = 0; v < n; ++v) agents.push_back(std::make_unique<RingAgent>(v, n, laps));
  return agents;
}

TEST(EventSimulator, TokenRingDeliversExactCount) {
  const std::size_t n = 5;
  const std::uint64_t laps = 3;
  auto agents = ring(n, laps);
  EventSimulator sim(raw(agents), Schedule::kFifo, 1);
  const auto stats = sim.run();
  EXPECT_EQ(stats.total_sent, n * laps);
  EXPECT_EQ(stats.total_delivered, n * laps);
  std::size_t received = 0;
  for (const auto& a : agents) received += a->received();
  EXPECT_EQ(received, n * laps);
}

TEST(EventSimulator, AllSchedulesDeliverEverything) {
  for (const Schedule s : {Schedule::kFifo, Schedule::kRandomOrder,
                           Schedule::kRandomDelay, Schedule::kAdversarialDelay}) {
    auto agents = ring(7, 2);
    EventSimulator sim(raw(agents), s, 99);
    const auto stats = sim.run();
    EXPECT_EQ(stats.total_delivered, stats.total_sent) << schedule_name(s);
    EXPECT_EQ(stats.total_sent, 14u);
  }
}

TEST(EventSimulator, KindAccounting) {
  auto agents = ring(4, 1);
  EventSimulator sim(raw(agents), Schedule::kFifo, 1);
  const auto stats = sim.run();
  EXPECT_EQ(stats.kind_count(1), 4u);
  EXPECT_EQ(stats.kind_count(2), 0u);
  EXPECT_EQ(stats.kind_count(99), 0u);
}

TEST(EventSimulator, DeterministicForFixedSeed) {
  for (const Schedule s : {Schedule::kRandomOrder, Schedule::kRandomDelay}) {
    auto a1 = ring(6, 4);
    auto a2 = ring(6, 4);
    EventSimulator s1(raw(a1), s, 1234);
    EventSimulator s2(raw(a2), s, 1234);
    const auto st1 = s1.run();
    const auto st2 = s2.run();
    EXPECT_EQ(st1.total_sent, st2.total_sent);
    EXPECT_DOUBLE_EQ(st1.completion_time, st2.completion_time);
    for (std::size_t v = 0; v < a1.size(); ++v) {
      EXPECT_EQ(a1[v]->received(), a2[v]->received());
    }
  }
}

TEST(EventSimulator, CompletionTimeAdvancesWithDelays) {
  auto agents = ring(5, 2);
  EventSimulator sim(raw(agents), Schedule::kRandomDelay, 7);
  const auto stats = sim.run();
  EXPECT_GT(stats.completion_time, 0.0);
}

TEST(EventSimulator, FifoKeepsZeroVirtualTime) {
  auto agents = ring(5, 2);
  EventSimulator sim(raw(agents), Schedule::kFifo, 7);
  const auto stats = sim.run();
  EXPECT_DOUBLE_EQ(stats.completion_time, 0.0);
}

TEST(EventSimulator, NoAgentsNoMessages) {
  EventSimulator sim({}, Schedule::kFifo, 1);
  const auto stats = sim.run();
  EXPECT_EQ(stats.total_sent, 0u);
}

TEST(EventSimulatorDeathTest, BudgetGuardFires) {
  EchoForeverAgent a0(0);
  EchoForeverAgent a1(1);
  EventSimulator sim({&a0, &a1}, Schedule::kFifo, 1);
  EXPECT_DEATH((void)sim.run(1000), "budget");
}

TEST(ScheduleNames, RoundTrip) {
  for (const Schedule s : {Schedule::kFifo, Schedule::kRandomOrder,
                           Schedule::kRandomDelay, Schedule::kAdversarialDelay}) {
    EXPECT_EQ(schedule_by_name(schedule_name(s)), s);
  }
}

TEST(ScheduleNamesDeathTest, UnknownNameAborts) {
  EXPECT_DEATH((void)schedule_by_name("bogus"), "unknown");
}

}  // namespace
}  // namespace overmatch::sim
