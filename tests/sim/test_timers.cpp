#include <gtest/gtest.h>

#include "sim/event_sim.hpp"

namespace overmatch::sim {
namespace {

/// Fires a chain of timers and records the virtual times implied by order.
class TimerAgent final : public Agent {
 public:
  explicit TimerAgent(int ticks) : remaining_(ticks) {}
  void on_start(Outbox& out) override {
    if (remaining_ > 0) out.send_timer(1.5, Message{1, 0});
  }
  void on_message(NodeId, const Message&, Outbox& out) override {
    ++fired_;
    if (--remaining_ > 0) out.send_timer(1.5, Message{1, 0});
  }
  [[nodiscard]] bool terminated() const override { return remaining_ == 0; }
  [[nodiscard]] int fired() const noexcept { return fired_; }

 private:
  int remaining_;
  int fired_ = 0;
};

TEST(Timers, ChainFiresExactly) {
  TimerAgent a(5);
  EventSimulator sim({&a}, Schedule::kRandomDelay, 1);
  const auto stats = sim.run();
  EXPECT_EQ(a.fired(), 5);
  EXPECT_TRUE(a.terminated());
  // 5 ticks of 1.5 each: completion time is exactly 7.5.
  EXPECT_DOUBLE_EQ(stats.completion_time, 7.5);
  // Timers are local bookkeeping, not network traffic: they appear as
  // deliveries (the agent was activated) but never as sent messages.
  EXPECT_EQ(stats.total_sent, 0u);
  EXPECT_EQ(stats.total_delivered, 5u);
}

TEST(Timers, InterleaveWithMessagesByVirtualTime) {
  // Node 0 arms a timer at t=1.5; node 1's message to node 0 has link delay
  // in [0.5, 1.5] — the message must arrive before or at the tick, never
  // after two ticks.
  class Probe final : public Agent {
   public:
    void on_start(Outbox& out) override { out.send_timer(1.5, Message{1, 0}); }
    void on_message(NodeId from, const Message& msg, Outbox&) override {
      order_.push_back(msg.kind * 100 + from);
    }
    [[nodiscard]] bool terminated() const override { return true; }
    std::vector<std::uint32_t> order_;
  };
  class Pinger final : public Agent {
   public:
    void on_start(Outbox& out) override { out.send(0, Message{2, 0}); }
    void on_message(NodeId, const Message&, Outbox&) override {}
    [[nodiscard]] bool terminated() const override { return true; }
  };
  Probe probe;
  Pinger pinger;
  EventSimulator sim({&probe, &pinger}, Schedule::kRandomDelay, 5);
  (void)sim.run();
  ASSERT_EQ(probe.order_.size(), 2u);
  // Ping (delay ≤ 1.5) arrives no later than the 1.5 timer; with equal times
  // the earlier-enqueued wins, which is the timer (armed at start). Both
  // orders are legal — assert only that both events happened, with the ping
  // from node 1 and the tick self-addressed.
  EXPECT_TRUE((probe.order_[0] == 201 && probe.order_[1] == 100) ||
              (probe.order_[0] == 100 && probe.order_[1] == 201));
}

TEST(TimersDeathTest, FifoScheduleRejectsTimers) {
  TimerAgent a(1);
  EventSimulator sim({&a}, Schedule::kFifo, 1);
  EXPECT_DEATH((void)sim.run(), "delay-based");
}

}  // namespace
}  // namespace overmatch::sim
