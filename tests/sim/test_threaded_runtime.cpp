#include "sim/threaded_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>

namespace overmatch::sim {
namespace {

/// Each node greets every other node once and counts greetings received.
/// Total traffic: n(n−1) messages, independent of scheduling.
class GossipAgent final : public Agent {
 public:
  GossipAgent(NodeId self, std::size_t n) : self_(self), n_(n) {}

  void on_start(Outbox& out) override {
    for (NodeId v = 0; v < n_; ++v) {
      if (v != self_) out.send(v, Message{7, self_});
    }
  }

  void on_message(NodeId, const Message&, Outbox&) override {
    received_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] bool terminated() const override {
    return received_.load(std::memory_order_relaxed) == n_ - 1;
  }
  [[nodiscard]] std::size_t received() const {
    return received_.load(std::memory_order_relaxed);
  }

 private:
  NodeId self_;
  std::size_t n_;
  std::atomic<std::size_t> received_{0};
};

/// Token ring on threads (messages chained across nodes).
class RingAgent final : public Agent {
 public:
  RingAgent(NodeId self, std::size_t n, std::uint64_t hops) : self_(self), n_(n), hops_(hops) {}
  void on_start(Outbox& out) override {
    if (self_ == 0) out.send(1 % static_cast<NodeId>(n_), Message{1, hops_});
  }
  void on_message(NodeId, const Message& msg, Outbox& out) override {
    ++received_;
    if (msg.data > 1) {
      out.send(static_cast<NodeId>((self_ + 1) % n_), Message{1, msg.data - 1});
    }
  }
  [[nodiscard]] bool terminated() const override { return true; }
  [[nodiscard]] std::size_t received() const noexcept { return received_; }

 private:
  NodeId self_;
  std::size_t n_;
  std::uint64_t hops_;
  std::size_t received_ = 0;
};

TEST(ThreadedRuntime, GossipAllDelivered) {
  const std::size_t n = 12;
  std::vector<std::unique_ptr<GossipAgent>> agents;
  std::vector<Agent*> raw;
  for (NodeId v = 0; v < n; ++v) {
    agents.push_back(std::make_unique<GossipAgent>(v, n));
    raw.push_back(agents.back().get());
  }
  ThreadedRuntime rt(std::move(raw), 4);
  const auto stats = rt.run();
  EXPECT_EQ(stats.total_sent, n * (n - 1));
  EXPECT_EQ(stats.total_delivered, n * (n - 1));
  for (const auto& a : agents) EXPECT_EQ(a->received(), n - 1);
}

TEST(ThreadedRuntime, WorksWithOneThread) {
  const std::size_t n = 6;
  std::vector<std::unique_ptr<GossipAgent>> agents;
  std::vector<Agent*> raw;
  for (NodeId v = 0; v < n; ++v) {
    agents.push_back(std::make_unique<GossipAgent>(v, n));
    raw.push_back(agents.back().get());
  }
  ThreadedRuntime rt(std::move(raw), 1);
  const auto stats = rt.run();
  EXPECT_EQ(stats.total_delivered, n * (n - 1));
}

TEST(ThreadedRuntime, MoreThreadsThanNodes) {
  const std::size_t n = 3;
  std::vector<std::unique_ptr<GossipAgent>> agents;
  std::vector<Agent*> raw;
  for (NodeId v = 0; v < n; ++v) {
    agents.push_back(std::make_unique<GossipAgent>(v, n));
    raw.push_back(agents.back().get());
  }
  ThreadedRuntime rt(std::move(raw), 8);
  const auto stats = rt.run();
  EXPECT_EQ(stats.total_delivered, n * (n - 1));
}

TEST(ThreadedRuntime, ChainedCausalityRing) {
  // Message k+1 only exists after message k was processed — exercises the
  // in-flight counter across threads.
  const std::size_t n = 5;
  const std::uint64_t hops = 50;
  std::vector<std::unique_ptr<RingAgent>> agents;
  std::vector<Agent*> raw;
  for (NodeId v = 0; v < n; ++v) {
    agents.push_back(std::make_unique<RingAgent>(v, n, hops));
    raw.push_back(agents.back().get());
  }
  ThreadedRuntime rt(std::move(raw), 3);
  const auto stats = rt.run();
  EXPECT_EQ(stats.total_sent, hops);
  std::size_t received = 0;
  for (const auto& a : agents) received += a->received();
  EXPECT_EQ(received, hops);
}

TEST(ThreadedRuntime, QuiescentWhenNobodySends) {
  class SilentAgent final : public Agent {
   public:
    void on_start(Outbox&) override {}
    void on_message(NodeId, const Message&, Outbox&) override {}
    [[nodiscard]] bool terminated() const override { return true; }
  };
  SilentAgent a;
  SilentAgent b;
  ThreadedRuntime rt({&a, &b}, 2);
  const auto stats = rt.run();
  EXPECT_EQ(stats.total_sent, 0u);
}

TEST(ThreadedRuntime, KindAccounting) {
  const std::size_t n = 4;
  std::vector<std::unique_ptr<GossipAgent>> agents;
  std::vector<Agent*> raw;
  for (NodeId v = 0; v < n; ++v) {
    agents.push_back(std::make_unique<GossipAgent>(v, n));
    raw.push_back(agents.back().get());
  }
  ThreadedRuntime rt(std::move(raw), 2);
  const auto stats = rt.run();
  EXPECT_EQ(stats.kind_count(7), n * (n - 1));
}

}  // namespace
}  // namespace overmatch::sim
