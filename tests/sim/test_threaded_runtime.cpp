#include "sim/threaded_runtime.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <vector>

#include "matching/lic.hpp"
#include "matching/lid.hpp"
#include "sim/reliable.hpp"
#include "tests/matching/common.hpp"

namespace overmatch::sim {
namespace {

/// Each node greets every other node once and counts greetings received.
/// Total traffic: n(n−1) messages, independent of scheduling.
class GossipAgent final : public Agent {
 public:
  GossipAgent(NodeId self, std::size_t n) : self_(self), n_(n) {}

  void on_start(Outbox& out) override {
    for (NodeId v = 0; v < n_; ++v) {
      if (v != self_) out.send(v, Message{7, self_});
    }
  }

  void on_message(NodeId, const Message&, Outbox&) override {
    received_.fetch_add(1, std::memory_order_relaxed);
  }

  [[nodiscard]] bool terminated() const override {
    return received_.load(std::memory_order_relaxed) == n_ - 1;
  }
  [[nodiscard]] std::size_t received() const {
    return received_.load(std::memory_order_relaxed);
  }

 private:
  NodeId self_;
  std::size_t n_;
  std::atomic<std::size_t> received_{0};
};

/// Token ring on threads (messages chained across nodes).
class RingAgent final : public Agent {
 public:
  RingAgent(NodeId self, std::size_t n, std::uint64_t hops) : self_(self), n_(n), hops_(hops) {}
  void on_start(Outbox& out) override {
    if (self_ == 0) out.send(1 % static_cast<NodeId>(n_), Message{1, hops_});
  }
  void on_message(NodeId, const Message& msg, Outbox& out) override {
    ++received_;
    if (msg.data > 1) {
      out.send(static_cast<NodeId>((self_ + 1) % n_), Message{1, msg.data - 1});
    }
  }
  [[nodiscard]] bool terminated() const override { return true; }
  [[nodiscard]] std::size_t received() const noexcept { return received_; }

 private:
  NodeId self_;
  std::size_t n_;
  std::uint64_t hops_;
  std::size_t received_ = 0;
};

TEST(ThreadedRuntime, GossipAllDelivered) {
  const std::size_t n = 12;
  std::vector<std::unique_ptr<GossipAgent>> agents;
  std::vector<Agent*> raw;
  for (NodeId v = 0; v < n; ++v) {
    agents.push_back(std::make_unique<GossipAgent>(v, n));
    raw.push_back(agents.back().get());
  }
  ThreadedRuntime rt(std::move(raw), 4);
  const auto stats = rt.run();
  EXPECT_EQ(stats.total_sent, n * (n - 1));
  EXPECT_EQ(stats.total_delivered, n * (n - 1));
  for (const auto& a : agents) EXPECT_EQ(a->received(), n - 1);
}

TEST(ThreadedRuntime, WorksWithOneThread) {
  const std::size_t n = 6;
  std::vector<std::unique_ptr<GossipAgent>> agents;
  std::vector<Agent*> raw;
  for (NodeId v = 0; v < n; ++v) {
    agents.push_back(std::make_unique<GossipAgent>(v, n));
    raw.push_back(agents.back().get());
  }
  ThreadedRuntime rt(std::move(raw), 1);
  const auto stats = rt.run();
  EXPECT_EQ(stats.total_delivered, n * (n - 1));
}

TEST(ThreadedRuntime, MoreThreadsThanNodes) {
  const std::size_t n = 3;
  std::vector<std::unique_ptr<GossipAgent>> agents;
  std::vector<Agent*> raw;
  for (NodeId v = 0; v < n; ++v) {
    agents.push_back(std::make_unique<GossipAgent>(v, n));
    raw.push_back(agents.back().get());
  }
  ThreadedRuntime rt(std::move(raw), 8);
  const auto stats = rt.run();
  EXPECT_EQ(stats.total_delivered, n * (n - 1));
}

TEST(ThreadedRuntime, ChainedCausalityRing) {
  // Message k+1 only exists after message k was processed — exercises the
  // in-flight counter across threads.
  const std::size_t n = 5;
  const std::uint64_t hops = 50;
  std::vector<std::unique_ptr<RingAgent>> agents;
  std::vector<Agent*> raw;
  for (NodeId v = 0; v < n; ++v) {
    agents.push_back(std::make_unique<RingAgent>(v, n, hops));
    raw.push_back(agents.back().get());
  }
  ThreadedRuntime rt(std::move(raw), 3);
  const auto stats = rt.run();
  EXPECT_EQ(stats.total_sent, hops);
  std::size_t received = 0;
  for (const auto& a : agents) received += a->received();
  EXPECT_EQ(received, hops);
}

TEST(ThreadedRuntime, QuiescentWhenNobodySends) {
  class SilentAgent final : public Agent {
   public:
    void on_start(Outbox&) override {}
    void on_message(NodeId, const Message&, Outbox&) override {}
    [[nodiscard]] bool terminated() const override { return true; }
  };
  SilentAgent a;
  SilentAgent b;
  ThreadedRuntime rt({&a, &b}, 2);
  const auto stats = rt.run();
  EXPECT_EQ(stats.total_sent, 0u);
}

TEST(ThreadedRuntime, KindAccounting) {
  const std::size_t n = 4;
  std::vector<std::unique_ptr<GossipAgent>> agents;
  std::vector<Agent*> raw;
  for (NodeId v = 0; v < n; ++v) {
    agents.push_back(std::make_unique<GossipAgent>(v, n));
    raw.push_back(agents.back().get());
  }
  ThreadedRuntime rt(std::move(raw), 2);
  const auto stats = rt.run();
  EXPECT_EQ(stats.kind_count(7), n * (n - 1));
}

/// Arms a chain of real-time timers; each firing re-arms until done.
class TimerChainAgent final : public Agent {
 public:
  explicit TimerChainAgent(int ticks) : remaining_(ticks) {}
  void on_start(Outbox& out) override {
    if (remaining_ > 0) out.send_timer(1.5, Message{1, 0});
  }
  void on_message(NodeId from, const Message& msg, Outbox& out) override {
    if (msg.kind != 1) return;  // a peer's message, not our tick
    EXPECT_EQ(from, self_);     // timers are self-deliveries
    ++fired_;
    if (--remaining_ > 0) out.send_timer(1.5, Message{1, 0});
  }
  [[nodiscard]] bool terminated() const override { return remaining_ == 0; }
  [[nodiscard]] int fired() const noexcept { return fired_; }

 private:
  NodeId self_ = 0;  // always placed at node 0 in these tests
  int remaining_;
  int fired_ = 0;
};

TEST(ThreadedRuntime, TimerChainFiresExactly) {
  TimerChainAgent a(5);
  ThreadedRuntime::Options opt;
  opt.time_unit = std::chrono::microseconds(200);
  ThreadedRuntime rt({&a}, 2, opt);
  const auto stats = rt.run();
  EXPECT_EQ(a.fired(), 5);
  EXPECT_TRUE(a.terminated());
  // Timers are local bookkeeping: they count as deliveries (the agent was
  // activated), never as sent messages.
  EXPECT_EQ(stats.total_sent, 0u);
  EXPECT_EQ(stats.total_delivered, 5u);
  // 5 chained ticks of 1.5 units × 200us cannot complete faster than 1.5ms.
  EXPECT_GE(stats.completion_time, 0.0015);
}

TEST(ThreadedRuntime, DeliveredCountsActualHandlerInvocations) {
  // Mixed workload: gossip messages plus a timer chain — delivered must equal
  // messages processed + timer firings, not a copy of total_sent.
  const std::size_t n = 6;
  std::vector<std::unique_ptr<GossipAgent>> agents;
  std::vector<Agent*> raw;
  for (NodeId v = 1; v < n; ++v) {
    agents.push_back(std::make_unique<GossipAgent>(v, n));
  }
  TimerChainAgent timers(3);
  raw.push_back(&timers);  // node 0 only runs timers
  for (auto& a : agents) raw.push_back(a.get());
  ThreadedRuntime rt(std::move(raw), 3);
  const auto stats = rt.run();
  // Gossipers greet everyone including node 0; node 0 sends nothing.
  EXPECT_EQ(stats.total_sent, (n - 1) * (n - 1));
  EXPECT_EQ(stats.total_delivered, stats.total_sent + 3);
}

TEST(ThreadedRuntime, LossyDeliveryWithReliableAdapter) {
  // A reliable-wrapped stream over a 30%-lossy threaded network: every
  // payload arrives exactly once and the accounting stays honest.
  class StreamSender final : public Agent {
   public:
    explicit StreamSender(std::uint64_t count) : count_(count) {}
    void on_start(Outbox& out) override {
      for (std::uint64_t k = 0; k < count_; ++k) out.send(1, Message{5, k});
    }
    void on_message(NodeId, const Message&, Outbox&) override {}
    [[nodiscard]] bool terminated() const override { return true; }

   private:
    std::uint64_t count_;
  };
  class StreamReceiver final : public Agent {
   public:
    void on_start(Outbox&) override {}
    void on_message(NodeId, const Message& msg, Outbox&) override {
      received_.push_back(msg.data);
    }
    [[nodiscard]] bool terminated() const override { return true; }
    std::vector<std::uint64_t> received_;
  };
  StreamSender sender(40);
  StreamReceiver receiver;
  ReliableAgent r0(0, &sender, 4.0);
  ReliableAgent r1(1, &receiver, 4.0);
  ThreadedRuntime::Options opt;
  opt.loss_probability = 0.3;
  opt.seed = 17;
  ThreadedRuntime rt({&r0, &r1}, 2, opt);
  const auto stats = rt.run();
  std::vector<std::uint64_t> got = receiver.received_;
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), 40u);
  for (std::uint64_t k = 0; k < 40; ++k) EXPECT_EQ(got[k], k);
  EXPECT_TRUE(r0.terminated());  // zero unacked at exit
  EXPECT_TRUE(r1.terminated());
  EXPECT_GT(stats.total_dropped, 0u);
  // Deliveries = undropped wire messages + timer firings, so at least every
  // surviving wire message was actually handled.
  EXPECT_GE(stats.total_delivered, stats.total_sent - stats.total_dropped);
}

TEST(ThreadedRuntimeDeathTest, RunIsSingleShot) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  class SilentAgent final : public Agent {
   public:
    void on_start(Outbox&) override {}
    void on_message(NodeId, const Message&, Outbox&) override {}
    [[nodiscard]] bool terminated() const override { return true; }
  };
  SilentAgent a;
  SilentAgent b;
  ThreadedRuntime rt({&a, &b}, 2);
  (void)rt.run();
  EXPECT_DEATH((void)rt.run(), "single-shot");
}

/// Tentpole stress: LID on >=10k nodes must produce, on real threads and for
/// adversarial worker counts, exactly the matching the deterministic
/// discrete-event schedule produces — with delivered == sent accounting
/// (LID uses no timers and the runtime is lossless here).
TEST(ThreadedRuntimeStress, LidTenThousandNodesMatchesEventSim) {
  const auto inst = matching::testing::Instance::random("er", 10000, 6.0, 3, 42);
  const auto reference =
      matching::run_lid(*inst->weights, inst->profile->quotas(),
                        {.schedule = Schedule::kFifo});
  EXPECT_EQ(reference.stats.total_delivered, reference.stats.total_sent);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    matching::LidOptions opt;
    opt.threads = threads;
    opt.runtime = matching::LidRuntime::kThreaded;
    const auto r =
        matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
    // Only the matching is schedule-invariant; message counts depend on the
    // interleaving, so assert honest accounting rather than an exact total.
    EXPECT_TRUE(reference.matching.same_edges(r.matching)) << "threads=" << threads;
    EXPECT_EQ(r.stats.total_delivered, r.stats.total_sent) << "threads=" << threads;
    EXPECT_EQ(r.stats.total_dropped, 0u);
  }
}

TEST(ThreadedRuntimeStress, MoreWorkersThanNodes) {
  // threads > nodes: most workers own nothing and must still initialize,
  // back off, and agree on quiescence.
  const auto inst = matching::testing::Instance::random("complete", 8, 7.0, 2, 7);
  const auto lic = matching::lic_global(*inst->weights, inst->profile->quotas());
  matching::LidOptions opt;
  opt.threads = 32;
  opt.runtime = matching::LidRuntime::kThreaded;
  const auto r =
      matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
  EXPECT_TRUE(lic.same_edges(r.matching));
  EXPECT_EQ(r.stats.total_delivered, r.stats.total_sent);
}

}  // namespace
}  // namespace overmatch::sim
