// overmatch_cli — command-line driver for the library.
//
// Generate (or load) a candidate graph, build preferences, run any algorithm
// in the registry, and print the matching plus its quality metrics and
// approximation certificate; optionally dump machine-readable CSV.
//
// Usage examples:
//   overmatch_cli --n=500 --topology=ba --degree=10 --quota=4 --algo=lid
//   overmatch_cli --graph=peers.edges --quota=3 --algo=lic --csv
//   overmatch_cli --n=200 --algo=lid --schedule=adversarial --seed=9
//   overmatch_cli --n=40 --algo=exact-weight        # small instances only
//   overmatch_cli --list-algos
#include <cstdio>
#include <string>

#include "core/certificates.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "graph/properties.hpp"
#include "matching/metrics.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "overlay/churn.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

#include <memory>

namespace {

void print_usage() {
  std::puts(
      "overmatch_cli — matching with preference lists (IPDPS'10 reproduction)\n"
      "\n"
      "instance:\n"
      "  --graph=FILE       load edge list (\"n m\" header, one \"u v\" per line)\n"
      "  --n=N              peers for generated graphs        [200]\n"
      "  --topology=NAME    er|ba|ws|geo|grid|complete|regular [er]\n"
      "  --degree=D         target average degree              [8]\n"
      "  --quota=B          connection quota per peer          [3]\n"
      "  --prefs=KIND       random | degree | id               [random]\n"
      "  --seed=S           RNG seed                           [1]\n"
      "solver:\n"
      "  --algo=NAME        see --list-algos                   [lid]\n"
      "  --weights=NAME     edge-weight design for the solve and the\n"
      "                     certificate: paper|min|product|ranksum [paper]\n"
      "  --schedule=NAME    fifo|random|delay|adversarial      [random]\n"
      "  --loss=P           wire-message drop probability for the LID\n"
      "                     runtimes (reliable-delivery adapter) [0]\n"
      "  --threads=T        threaded runtimes; when given explicitly, also\n"
      "                     parallelizes graph/preference/weight construction\n"
      "                     (default: single-threaded build)   [2]\n"
      "  --max-rounds=R     anytime budget: cap message/drain rounds for the\n"
      "                     lid and (parallel-)bsuitor engines; the partial\n"
      "                     matching is returned              [unlimited]\n"
      "  --deadline-ms=D    anytime budget: wall-clock deadline for the same\n"
      "                     engines (fractions allowed)          [0 = off]\n"
      "churn:\n"
      "  --churn-events=E   after solving, replay E random leave/join events\n"
      "                     and report events/s + per-event latency [0 = off]\n"
      "  --churn-mode=NAME  incremental|greedy-keep|scratch  [incremental]\n"
      "  --churn-batch=B    batch events into bursts of mean size B and repair\n"
      "                     each burst as one apply_batch (incremental mode;\n"
      "                     uses the --threads pool when given)     [0 = off]\n"
      "  --churn-arrival=A  burst-size arrival process for --churn-batch:\n"
      "                     uniform|poisson|flash-crowd          [poisson]\n"
      "  --churn-oracle     run the from-scratch comparator per event and\n"
      "                     report the weight gap (costs O(m) per event)\n"
      "output:\n"
      "  --csv              per-node CSV on stdout\n"
      "  --metrics-out=FILE write an overmatch-metrics-v1 JSON document\n"
      "                     (validate/diff with tools/metrics_diff.py)\n"
      "  --quiet            summary line only\n"
      "  --list-algos       list algorithm names and exit\n"
      "  --help             this text");
}

}  // namespace

int main(int argc, char** argv) {
  using namespace overmatch;
  const util::Flags flags(argc, argv);
  if (flags.has("help")) {
    print_usage();
    return 0;
  }
  if (flags.has("list-algos")) {
    for (const auto a : core::all_algorithms()) {
      std::printf("%s\n", core::algorithm_name(a));
    }
    return 0;
  }

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  util::Rng rng(seed);

  // Instance.
  graph::Graph g;
  if (flags.has("graph")) {
    g = graph::load_edge_list(flags.get("graph", ""));
  } else {
    const std::string topology = flags.get("topology", "er");
    auto built = graph::try_by_name(topology,
                                    static_cast<std::size_t>(flags.get_int("n", 200)),
                                    flags.get_double("degree", 8.0), rng);
    if (!built.has_value()) {
      std::fprintf(stderr, "overmatch_cli: unknown --topology '%s' (valid: %s)\n",
                   topology.c_str(), graph::topology_names());
      return 2;
    }
    g = *std::move(built);
  }
  const auto quota = static_cast<std::uint32_t>(flags.get_int("quota", 3));
  const auto quotas = prefs::uniform_quotas(g, quota);

  const std::string prefs_kind = flags.get("prefs", "random");
  auto profile = [&]() {
    if (prefs_kind == "degree") {
      // Peers prefer high-degree neighbours (hub-seeking overlays).
      return prefs::PreferenceProfile::from_scores(
          g, quotas, [&g](graph::NodeId, graph::NodeId j) {
            return static_cast<double>(g.degree(j));
          });
    }
    if (prefs_kind == "id") {
      return prefs::PreferenceProfile::from_scores(
          g, quotas,
          [](graph::NodeId, graph::NodeId j) { return -static_cast<double>(j); });
    }
    OM_CHECK_MSG(prefs_kind == "random", "unknown --prefs kind");
    return prefs::PreferenceProfile::random(g, quotas, rng);
  }();

  // Solve.
  core::SolveOptions opt;
  opt.seed = seed;
  opt.schedule = sim::schedule_by_name(flags.get("schedule", "random"));
  opt.threads = static_cast<std::size_t>(flags.get_int("threads", 2));
  opt.loss_rate = flags.get_double("loss", 0.0);
  // Anytime budget (DESIGN.md §14): round cap and/or wall-clock deadline.
  const auto max_rounds = flags.get_int("max-rounds", -1);
  if (max_rounds >= 0) opt.budget.max_rounds = static_cast<std::size_t>(max_rounds);
  opt.budget.deadline_ms = flags.get_double("deadline-ms", 0.0);
  obs::Registry registry;
  opt.registry = &registry;
  // Construction parallelism is opt-in: only an explicit --threads arms the
  // pool, so the default run keeps the original single-threaded build.
  std::unique_ptr<util::ThreadPool> pool;
  if (flags.has("threads") && opt.threads >= 1) {
    pool = std::make_unique<util::ThreadPool>(opt.threads);
    opt.pool = pool.get();
  }
  const std::string algo_name = flags.get("algo", "lid");
  const auto algo_opt = core::try_algorithm_by_name(algo_name);
  if (!algo_opt.has_value()) {
    std::fprintf(stderr, "overmatch_cli: unknown --algo '%s' (valid: %s)\n",
                 algo_name.c_str(), core::algorithm_names());
    return 2;
  }
  const auto algo = *algo_opt;
  registry.set_label("topology", flags.has("graph") ? "file" : flags.get("topology", "er"));
  registry.set_label("nodes", std::to_string(g.num_nodes()));
  registry.set_label("edges", std::to_string(g.num_edges()));
  registry.set_label("seed", std::to_string(seed));
  // Weight design: the eq.-9 paper weights by default; --weights swaps in an
  // ablation design for the solve, certificate, and churn session alike.
  const std::string weights_name = flags.get("weights", "paper");
  auto weights_opt = prefs::try_weights_by_name(weights_name, profile, opt.pool);
  if (!weights_opt.has_value()) {
    std::fprintf(stderr, "overmatch_cli: unknown --weights '%s' (valid: %s)\n",
                 weights_name.c_str(), prefs::weight_design_names());
    return 2;
  }
  const auto& weights = *weights_opt;

  util::WallTimer timer;
  const auto result = core::solve(profile, algo, opt, &weights);
  const double elapsed_ms = timer.millis();

  // Report.
  const auto cert = core::certify(profile, weights, result.matching);
  const auto sats = matching::node_satisfactions(profile, result.matching);
  util::StreamingStats ss;
  for (const double s : sats) ss.add(s);

  if (flags.has("csv")) {
    if (flags.has("metrics-out")) {
      obs::write_json_file(registry.snapshot(), "overmatch_cli",
                           flags.get("metrics-out", "metrics.json"));
    }
    std::printf("node,quota,load,satisfaction\n");
    for (graph::NodeId v = 0; v < g.num_nodes(); ++v) {
      std::printf("%u,%u,%u,%.6f\n", v, profile.quota(v), result.matching.load(v),
                  sats[v]);
    }
    return 0;
  }

  std::printf(
      "instance : %zu nodes, %zu candidate edges, quota %u, prefs %s, seed %llu\n",
      g.num_nodes(), g.num_edges(), quota, prefs_kind.c_str(),
      static_cast<unsigned long long>(seed));
  std::printf("algorithm: %s (%.2f ms)\n", core::algorithm_name(algo), elapsed_ms);
  std::printf("matching : %zu edges, weight %.4f\n", result.matching.size(),
              result.weight);
  std::printf("satisfct : total %.4f | mean %.4f | min %.4f\n", result.satisfaction,
              ss.mean(), ss.min());
  if (result.messages > 0) {
    std::printf("messages : %zu (%.2f per candidate edge)\n", result.messages,
                static_cast<double>(result.messages) /
                    static_cast<double>(g.num_edges()));
  }
  if (result.retransmissions > 0) {
    std::printf("retransm : %zu (loss %.2f)\n", result.retransmissions,
                opt.loss_rate);
  }
  if (!result.converged) std::printf("warning  : dynamics hit the step cap\n");
  if (opt.budget.limited()) {
    std::printf("anytime  : %s after %zu round%s (budget: %s)\n",
                result.truncated ? "truncated" : "converged",
                result.rounds_used, result.rounds_used == 1 ? "" : "s",
                opt.budget.has_deadline()
                    ? (opt.budget.limits_rounds() ? "rounds + deadline"
                                                  : "deadline")
                    : "rounds");
  }

  // Optional churn session: replay random leave/join events against the
  // selected repair engine and report throughput + per-event latency.
  const auto churn_events =
      static_cast<std::size_t>(flags.get_int("churn-events", 0));
  const auto churn_batch =
      static_cast<std::size_t>(flags.get_int("churn-batch", 0));
  if (churn_events > 0) {
    overlay::ChurnOptions copt;
    const std::string mode_name = flags.get("churn-mode", "incremental");
    const auto mode = overlay::try_churn_mode_by_name(mode_name);
    if (!mode.has_value()) {
      std::fprintf(stderr, "overmatch_cli: unknown --churn-mode '%s' (valid: %s)\n",
                   mode_name.c_str(), overlay::churn_mode_names());
      return 2;
    }
    copt.mode = *mode;
    const std::string arrival_name = flags.get("churn-arrival", "poisson");
    const auto arrival = overlay::try_churn_arrival_by_name(arrival_name);
    if (!arrival.has_value()) {
      std::fprintf(stderr,
                   "overmatch_cli: unknown --churn-arrival '%s' (valid: %s)\n",
                   arrival_name.c_str(), overlay::churn_arrival_names());
      return 2;
    }
    copt.oracle = flags.has("churn-oracle");
    copt.registry = &registry;
    copt.pool = pool.get();
    overlay::ChurnSimulator churn(profile, weights, copt);
    if (churn_batch > 0) {
      // Batched session: draw bursts from the arrival process and repair each
      // as one apply_batch (coalesced, frontier-parallel on the pool).
      overlay::ChurnTraffic traffic(g.num_nodes(), *arrival,
                                    static_cast<double>(churn_batch),
                                    seed ^ 0x9e3779b97f4a7c15ULL);
      std::size_t applied = 0, coalesced = 0, batches = 0;
      std::size_t workers = 1;
      util::StreamingStats burst_us;
      double final_weight = 0.0, final_sat = 0.0;
      util::WallTimer batch_timer;
      while (applied < churn_events) {
        const auto burst = traffic.next_burst();
        const auto rep = churn.apply_batch(burst);
        applied += rep.events;
        coalesced += rep.coalesced;
        ++batches;
        workers = rep.workers;
        burst_us.add(static_cast<double>(rep.repair_ns) / 1e3);
        final_weight = rep.incremental_weight;
        final_sat = rep.satisfaction_total;
      }
      const double batch_ms = batch_timer.millis();
      std::printf(
          "churn    : %zu events in %zu %s bursts (%s repair, %zu worker%s) "
          "in %.2f ms\n"
          "           — %.0f events/s, %zu coalesced away, per-burst repair "
          "mean %.1f us / max %.1f us\n"
          "           final weight %.4f, satisfaction %.4f\n",
          applied, batches, overlay::churn_arrival_name(*arrival),
          overlay::churn_mode_name(churn.mode()), workers,
          workers == 1 ? "" : "s", batch_ms,
          1000.0 * static_cast<double>(applied) / batch_ms, coalesced,
          burst_us.mean(), burst_us.max(), final_weight, final_sat);
    } else {
    util::Rng churn_rng(seed ^ 0x9e3779b97f4a7c15ULL);
    std::vector<graph::NodeId> offline;
    util::StreamingStats latency_us;
    util::StreamingStats gaps;
    double final_weight = 0.0;
    util::WallTimer churn_timer;
    for (std::size_t k = 0; k < churn_events; ++k) {
      overlay::ChurnEvent ev;
      if (!offline.empty() && churn_rng.chance(0.5)) {
        const auto idx = churn_rng.index(offline.size());
        ev = churn.join(offline[idx]);
        offline.erase(offline.begin() + static_cast<std::ptrdiff_t>(idx));
      } else {
        graph::NodeId v;
        do {
          v = static_cast<graph::NodeId>(churn_rng.index(g.num_nodes()));
        } while (!churn.alive(v));
        ev = churn.leave(v);
        offline.push_back(v);
      }
      latency_us.add(static_cast<double>(ev.repair_ns) / 1e3);
      if (copt.oracle && ev.recompute_weight > 0.0) {
        gaps.add(100.0 * (ev.recompute_weight - ev.incremental_weight) /
                 ev.recompute_weight);
      }
      final_weight = ev.incremental_weight;
    }
    const double churn_ms = churn_timer.millis();
    std::printf(
        "churn    : %zu events (%s repair) in %.2f ms — %.0f events/s,\n"
        "           per-event latency mean %.1f us / max %.1f us, final weight "
        "%.4f\n",
        churn_events, overlay::churn_mode_name(churn.mode()), churn_ms,
        1000.0 * static_cast<double>(churn_events) / churn_ms, latency_us.mean(),
        latency_us.max(), final_weight);
    if (copt.oracle) {
      std::printf("           weight gap to from-scratch: mean %.3f%% max %.3f%%\n",
                  gaps.mean(), gaps.max());
    }
    }
  }

  if (flags.has("metrics-out")) {
    // After the churn session, so the churn.*/dyn.* series are included.
    obs::write_json_file(registry.snapshot(), "overmatch_cli",
                         flags.get("metrics-out", "metrics.json"));
  }
  if (!flags.has("quiet")) {
    std::printf(
        "certify  : ratio ≥ %.3f of optimal weight (UB %.4f), ½-certificate %s,\n"
        "           satisfaction ≥ %.3f × optimum (Theorem 3, b_max = %u)\n",
        cert.ratio_lower_bound, cert.upper_bound,
        cert.half_certificate ? "present" : "absent", cert.theorem3,
        profile.max_quota());
  }
  return 0;
}
