// overmatch_serve — the epoch-snapshot overlay matching service, as a
// long-running daemon (DESIGN.md §13).
//
// One writer thread owns the live DynamicBSuitor and drives churn bursts
// through ServiceLoop (repair → satisfaction refresh → snapshot publish);
// R reader threads concurrently pin published MatchingSnapshots through the
// MatchingStore and serve a query mix (neighbour lists, per-node
// satisfaction, aggregate weight/epoch) without ever blocking on repair.
// On exit it reports writer throughput (events/s, publishes/s, publish
// latency) and reader throughput (queries/s, acquire+query p50/p99).
//
// Usage examples:
//   overmatch_serve --n=100000 --readers=8 --duration=10
//   overmatch_serve --churn-arrival=flash-crowd --churn-batch=256 --threads=4
//   overmatch_serve --duration=2 --metrics-out=serve_metrics.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "graph/generators.hpp"
#include "obs/json.hpp"
#include "obs/registry.hpp"
#include "prefs/weights.hpp"
#include "serve/service_loop.hpp"
#include "util/flags.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace {

void print_usage() {
  std::puts(
      "overmatch_serve — epoch-snapshot overlay matching service\n"
      "\n"
      "instance:\n"
      "  --n=N              peers                              [5000]\n"
      "  --topology=NAME    er|ba|ws|geo|grid|complete|regular [er]\n"
      "  --degree=D         target average degree              [8]\n"
      "  --quota=B          connection quota per peer          [3]\n"
      "  --seed=S           RNG seed                           [1]\n"
      "service:\n"
      "  --readers=R        concurrent reader threads          [4]\n"
      "  --churn-batch=B    mean churn burst size              [64]\n"
      "  --churn-arrival=A  uniform|poisson|flash-crowd        [poisson]\n"
      "  --duration=S       run length in seconds              [5]\n"
      "  --threads=T        frontier-parallel repair pool (0 = sequential\n"
      "                     repair on the writer thread)       [0]\n"
      "  --count-blocking   audit every published snapshot with an O(m)\n"
      "                     blocking-edge sweep (aborts unless 0)\n"
      "  --delta-publish=M  on|off|auto — O(touched) page-sharing delta\n"
      "                     snapshots; auto falls back to a full rebuild\n"
      "                     when the dirty-page fraction makes one cheaper\n"
      "                     (DESIGN.md 15)                      [auto]\n"
      "  --deadline-ms=D    per-epoch publish deadline; overrunning epochs\n"
      "                     publish the partial matching with its honest\n"
      "                     blocking-edge gauge instead of stalling readers\n"
      "                     (fractions allowed)                 [0 = off]\n"
      "output:\n"
      "  --metrics-out=FILE write an overmatch-metrics-v1 JSON document\n"
      "                     (validate/diff with tools/metrics_diff.py)\n"
      "  --quiet            summary line only\n"
      "  --help             this text");
}

/// Per-reader tally, written by the reader thread and read after join.
struct ReaderStats {
  std::uint64_t queries = 0;
  std::vector<double> sampled_us;  ///< acquire+query latency, every 16th op
};

}  // namespace

int main(int argc, char** argv) {
  using namespace overmatch;
  const util::Flags flags(argc, argv);
  if (flags.has("help")) {
    print_usage();
    return 0;
  }

  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  const auto n = static_cast<std::size_t>(flags.get_int("n", 5000));
  const auto quota = static_cast<std::uint32_t>(flags.get_int("quota", 3));
  const auto readers_n = static_cast<std::size_t>(flags.get_int("readers", 4));
  const double duration_s = flags.get_double("duration", 5.0);
  const auto threads = static_cast<std::size_t>(flags.get_int("threads", 0));
  const bool quiet = flags.has("quiet");

  const std::string topology = flags.get("topology", "er");
  util::Rng rng(seed);
  auto built =
      graph::try_by_name(topology, n, flags.get_double("degree", 8.0), rng);
  if (!built.has_value()) {
    std::fprintf(stderr, "overmatch_serve: unknown --topology '%s' (valid: %s)\n",
                 topology.c_str(), graph::topology_names());
    return 2;
  }
  const graph::Graph g = *std::move(built);

  const std::string arrival_name = flags.get("churn-arrival", "poisson");
  const auto arrival = overlay::try_churn_arrival_by_name(arrival_name);
  if (!arrival.has_value()) {
    std::fprintf(stderr,
                 "overmatch_serve: unknown --churn-arrival '%s' (valid: %s)\n",
                 arrival_name.c_str(), overlay::churn_arrival_names());
    return 2;
  }

  const auto profile = prefs::PreferenceProfile::random(
      g, prefs::uniform_quotas(g, quota), rng);
  std::unique_ptr<util::ThreadPool> pool;
  if (threads >= 1) pool = std::make_unique<util::ThreadPool>(threads);
  const auto weights = prefs::paper_weights(profile, pool.get());

  obs::Registry registry;
  registry.set_label("topology", topology);
  registry.set_label("nodes", std::to_string(g.num_nodes()));
  registry.set_label("edges", std::to_string(g.num_edges()));
  registry.set_label("seed", std::to_string(seed));
  registry.set_label("readers", std::to_string(readers_n));

  serve::ServeOptions sopt;
  sopt.arrival = *arrival;
  sopt.churn_batch_mean = flags.get_double("churn-batch", 64.0);
  sopt.seed = seed;
  sopt.pool = pool.get();
  sopt.registry = &registry;
  sopt.max_readers = std::max<std::size_t>(readers_n + 1,
                                           serve::MatchingStore::kDefaultMaxReaders);
  sopt.count_blocking = flags.has("count-blocking");
  sopt.epoch_deadline_ms = flags.get_double("deadline-ms", 0.0);
  const std::string delta_name = flags.get("delta-publish", "auto");
  if (delta_name == "off") {
    sopt.delta_publish = serve::DeltaPublish::kOff;
  } else if (delta_name == "on") {
    sopt.delta_publish = serve::DeltaPublish::kOn;
  } else if (delta_name == "auto") {
    sopt.delta_publish = serve::DeltaPublish::kAuto;
  } else {
    std::fprintf(stderr,
                 "overmatch_serve: unknown --delta-publish '%s' (valid: "
                 "on, off, auto)\n",
                 delta_name.c_str());
    return 2;
  }
  serve::ServiceLoop loop(profile, weights, sopt);

  if (!quiet) {
    std::printf(
        "serve    : %zu nodes, %zu candidate edges, quota %u, %s topology, "
        "seed %llu\n"
        "           writer bursts ~%.0f events (%s arrival), %zu repair "
        "thread%s, %zu readers, %.1f s\n",
        g.num_nodes(), g.num_edges(), quota, topology.c_str(),
        static_cast<unsigned long long>(seed), sopt.churn_batch_mean,
        arrival_name.c_str(), std::max<std::size_t>(threads, 1),
        threads > 1 ? "s" : "", readers_n, duration_s);
  }

  // Readers: each pins the current snapshot and serves a fixed query mix —
  // one neighbour-list scan + one satisfaction read per op, plus the
  // aggregate weight/epoch every 64th op. Latency (acquire through last
  // read) is sampled every 16th op to bound memory.
  std::atomic<bool> done{false};
  std::vector<ReaderStats> tallies(readers_n);
  std::vector<std::thread> reader_threads;
  reader_threads.reserve(readers_n);
  for (std::size_t t = 0; t < readers_n; ++t) {
    reader_threads.emplace_back([&loop, &done, &tallies, t, seed] {
      auto handle = loop.store().register_reader();
      util::Rng qrng(seed ^ (0xabcdef12345678ULL + t));
      ReaderStats& tally = tallies[t];
      double sink = 0.0;
      while (!done.load(std::memory_order_acquire)) {
        const auto t0 = std::chrono::steady_clock::now();
        {
          serve::SnapshotRef snap = loop.store().acquire(handle);
          const auto v =
              static_cast<graph::NodeId>(qrng.index(snap->num_nodes()));
          for (const graph::NodeId u : snap->neighbors(v)) {
            sink += static_cast<double>(u);
          }
          sink += snap->satisfaction(v);
          if (tally.queries % 64 == 0) {
            sink += snap->matched_weight() +
                    static_cast<double>(snap->epoch());
          }
        }
        if (tally.queries % 16 == 0) {
          const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
          tally.sampled_us.push_back(static_cast<double>(ns) / 1e3);
        }
        ++tally.queries;
      }
      // Keep the compiler honest about the reads without printing noise.
      if (sink == -1.0) std::puts("");
    });
  }

  // Writer: churn bursts until the deadline, tallying per-step latency.
  util::StreamingStats apply_us, publish_us;
  std::size_t batches = 0, events = 0, coalesced = 0;
  std::size_t truncated_epochs = 0;
  std::size_t delta_publishes = 0, dirty_pages = 0;
  util::WallTimer wall;
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::nanoseconds(static_cast<std::int64_t>(duration_s * 1e9));
  while (std::chrono::steady_clock::now() < deadline) {
    const auto st = loop.step();
    ++batches;
    events += st.events;
    coalesced += st.coalesced;
    if (st.truncated) ++truncated_epochs;
    if (st.delta) {
      ++delta_publishes;
      dirty_pages += st.dirty_pages;
    }
    apply_us.add(static_cast<double>(st.apply_ns) / 1e3);
    publish_us.add(static_cast<double>(st.publish_ns) / 1e3);
  }
  const double writer_ms = wall.millis();
  done.store(true, std::memory_order_release);
  for (auto& th : reader_threads) th.join();
  const double wall_ms = wall.millis();
  // With every reader gone the retired list drains; reclamation is normally
  // piggybacked on publish, so run one final pass before reporting.
  (void)loop.store().reclaim();

  std::uint64_t queries = 0;
  std::vector<double> samples;
  for (const ReaderStats& tally : tallies) {
    queries += tally.queries;
    samples.insert(samples.end(), tally.sampled_us.begin(),
                   tally.sampled_us.end());
  }
  std::sort(samples.begin(), samples.end());
  const auto pct = [&samples](double p) {
    if (samples.empty()) return 0.0;
    const auto idx = static_cast<std::size_t>(
        p * static_cast<double>(samples.size() - 1));
    return samples[idx];
  };

  const double events_per_s = 1000.0 * static_cast<double>(events) / writer_ms;
  const double queries_per_s = 1000.0 * static_cast<double>(queries) / wall_ms;
  std::printf(
      "writer   : %zu bursts, %zu events (%zu coalesced away) in %.2f s — "
      "%.0f events/s, %.1f publishes/s\n"
      "publish  : mean %.1f us, max %.1f us (epoch %llu, %zu retired "
      "unreclaimed)\n"
      "readers  : %llu queries — %.0f queries/s, acquire+query p50 %.1f us, "
      "p99 %.1f us\n",
      batches, events, coalesced, writer_ms / 1000.0, events_per_s,
      1000.0 * static_cast<double>(batches) / writer_ms, publish_us.mean(),
      publish_us.max(), static_cast<unsigned long long>(loop.epoch()),
      loop.store().retired_count(), static_cast<unsigned long long>(queries),
      queries_per_s, pct(0.50), pct(0.99));
  if (sopt.delta_publish != serve::DeltaPublish::kOff) {
    std::printf(
        "delta    : %zu/%zu epochs published as deltas (%.1f dirty pages per "
        "delta, %zu full rebuilds)\n",
        delta_publishes, batches,
        delta_publishes > 0
            ? static_cast<double>(dirty_pages) /
                  static_cast<double>(delta_publishes)
            : 0.0,
        batches - delta_publishes);
  }
  if (sopt.epoch_deadline_ms > 0.0) {
    std::printf("anytime  : %zu/%zu epochs truncated by the %.3f ms publish "
                "deadline (%zu repairs still pending)\n",
                truncated_epochs, batches, sopt.epoch_deadline_ms,
                loop.engine().pending_repairs());
  }

  if (flags.has("metrics-out")) {
    obs::write_json_file(registry.snapshot(), "overmatch_serve",
                         flags.get("metrics-out", "serve_metrics.json"));
  }
  return 0;
}
