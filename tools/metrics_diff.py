#!/usr/bin/env python3
"""Validate and diff overmatch-metrics-v1 JSON documents.

Usage:
    metrics_diff.py FILE.json                      # validate one document
    metrics_diff.py BASE.json CURRENT.json [opts]  # validate both and diff

Options:
    --fail-if-changed   non-zero exit if any counter value differs
    --all               also list unchanged counters

Validation checks the full overmatch-metrics-v1 envelope: schema tag, typed
sections (counters: non-negative ints; gauges: numbers; timers: name/count/
total_ms/min_ms/max_ms with count >= 0 and min <= max when count > 0;
histograms: strictly ascending bounds with len(counts) == len(bounds) + 1;
trace: emitted >= retained >= len(events), events carry ring/seq/kind/a/b).

Diffing reports counter deltas (added, removed, changed) between two
documents. Exit status is the number of validation errors, plus — under
--fail-if-changed — the number of changed/added/removed counters, so the
script slots directly into CI or ctest like bench_diff.py.
"""

import json
import numbers
import sys

SCHEMA = "overmatch-metrics-v1"


def _is_int(x):
    return isinstance(x, int) and not isinstance(x, bool)


def _is_num(x):
    return isinstance(x, numbers.Real) and not isinstance(x, bool)


def validate(path):
    """Returns (doc, [error strings])."""
    errors = []

    def err(msg):
        errors.append(f"{path}: {msg}")

    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        return None, [f"{path}: {e}"]

    if doc.get("schema") != SCHEMA:
        err(f"schema is {doc.get('schema')!r}, expected {SCHEMA!r}")
    if not isinstance(doc.get("source"), str):
        err("missing or non-string 'source'")

    labels = doc.get("labels", {})
    if not isinstance(labels, dict) or not all(
        isinstance(k, str) and isinstance(v, str) for k, v in labels.items()
    ):
        err("'labels' must map strings to strings")

    counters = doc.get("counters")
    if not isinstance(counters, dict):
        err("missing 'counters' object")
    else:
        for name, value in counters.items():
            if not _is_int(value) or value < 0:
                err(f"counter {name!r}: {value!r} is not a non-negative integer")

    gauges = doc.get("gauges")
    if not isinstance(gauges, dict):
        err("missing 'gauges' object")
    else:
        for name, value in gauges.items():
            if not _is_num(value):
                err(f"gauge {name!r}: {value!r} is not a number")

    timers = doc.get("timers")
    if not isinstance(timers, list):
        err("missing 'timers' array")
    else:
        for t in timers:
            name = t.get("name") if isinstance(t, dict) else None
            if not isinstance(t, dict) or not isinstance(name, str):
                err(f"timer entry {t!r} lacks a string 'name'")
                continue
            if not _is_int(t.get("count")) or t["count"] < 0:
                err(f"timer {name!r}: bad 'count'")
            for field in ("total_ms", "min_ms", "max_ms"):
                if not _is_num(t.get(field)):
                    err(f"timer {name!r}: bad {field!r}")
            if (
                _is_int(t.get("count"))
                and t["count"] > 0
                and _is_num(t.get("min_ms"))
                and _is_num(t.get("max_ms"))
                and t["min_ms"] > t["max_ms"]
            ):
                err(f"timer {name!r}: min_ms > max_ms")

    histograms = doc.get("histograms")
    if not isinstance(histograms, list):
        err("missing 'histograms' array")
    else:
        for h in histograms:
            name = h.get("name") if isinstance(h, dict) else None
            if not isinstance(h, dict) or not isinstance(name, str):
                err(f"histogram entry {h!r} lacks a string 'name'")
                continue
            bounds = h.get("bounds")
            counts = h.get("counts")
            if not isinstance(bounds, list) or not all(_is_num(b) for b in bounds):
                err(f"histogram {name!r}: bad 'bounds'")
                continue
            if any(a >= b for a, b in zip(bounds, bounds[1:])):
                err(f"histogram {name!r}: bounds not strictly ascending")
            if not isinstance(counts, list) or not all(
                _is_int(c) and c >= 0 for c in counts
            ):
                err(f"histogram {name!r}: bad 'counts'")
            elif len(counts) != len(bounds) + 1:
                err(
                    f"histogram {name!r}: {len(counts)} counts for "
                    f"{len(bounds)} bounds (want bounds + 1)"
                )

    trace = doc.get("trace")
    if not isinstance(trace, dict):
        err("missing 'trace' object")
    else:
        emitted, retained = trace.get("emitted"), trace.get("retained")
        events = trace.get("events")
        if not _is_int(emitted) or emitted < 0:
            err("trace: bad 'emitted'")
        if not _is_int(retained) or retained < 0:
            err("trace: bad 'retained'")
        if not isinstance(events, list):
            err("trace: missing 'events' array")
        else:
            if _is_int(emitted) and _is_int(retained):
                if retained > emitted:
                    err("trace: retained > emitted")
                if len(events) > retained:
                    err("trace: more events embedded than retained")
            for ev in events:
                if not isinstance(ev, dict) or not isinstance(ev.get("kind"), str):
                    err(f"trace event {ev!r} lacks a string 'kind'")
                    continue
                for field in ("ring", "seq", "a", "b"):
                    if not _is_int(ev.get(field)) or ev[field] < 0:
                        err(f"trace event (seq {ev.get('seq')!r}): bad {field!r}")
    return doc, errors


def diff_counters(base, cur, show_all):
    """Returns the number of differing counters; prints the delta report."""
    bc = base.get("counters", {}) if isinstance(base.get("counters"), dict) else {}
    cc = cur.get("counters", {}) if isinstance(cur.get("counters"), dict) else {}
    changed, unchanged, added, removed = [], [], [], []
    for name in sorted(set(bc) | set(cc)):
        if name not in cc:
            removed.append(f"  - {name} (was {bc[name]})")
        elif name not in bc:
            added.append(f"  + {name} = {cc[name]}")
        elif bc[name] != cc[name]:
            delta = cc[name] - bc[name]
            changed.append(f"  {name}: {bc[name]} -> {cc[name]} ({delta:+d})")
        else:
            unchanged.append(f"  {name}: {cc[name]}")

    print(f"compared {len(set(bc) | set(cc))} counters")
    for title, lines in (
        ("changed", changed),
        ("added", added),
        ("removed", removed),
    ):
        if lines:
            print(f"\n{title} ({len(lines)}):")
            print("\n".join(lines))
    if show_all and unchanged:
        print(f"\nunchanged ({len(unchanged)}):")
        print("\n".join(unchanged))
    if not (changed or added or removed):
        print("\nno counter changes")
    return len(changed) + len(added) + len(removed)


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    opts = [a for a in argv[1:] if a.startswith("--")]
    if len(args) not in (1, 2):
        sys.exit(__doc__.strip())
    unknown = [o for o in opts if o not in ("--fail-if-changed", "--all")]
    if unknown:
        sys.exit(f"unknown option(s): {', '.join(unknown)}")

    docs, error_count = [], 0
    for path in args:
        doc, errors = validate(path)
        docs.append(doc)
        if errors:
            print(f"INVALID {path}:")
            print("\n".join(f"  {e}" for e in errors))
            error_count += len(errors)
        else:
            print(f"valid   {path}")
    if error_count or len(args) == 1:
        return error_count

    differing = diff_counters(docs[0], docs[1], "--all" in opts)
    return differing if "--fail-if-changed" in opts else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
