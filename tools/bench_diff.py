#!/usr/bin/env python3
"""Compare two overmatch-bench-v1 JSON files and flag regressions.

Usage:
    bench_diff.py BASELINE.json CURRENT.json [--threshold=0.15] [--all]
                  [--require-name=NAME ...]

Records are keyed by (name, params, threads). For every key present in both
files the median wall-clock time is compared; keys whose current median
exceeds the baseline by more than the threshold (default 15%) are reported
as regressions. Exit status is the number of regressions (0 = clean), so the
script slots directly into CI or ctest.

Records without timing samples (median_ms < 0) and keys present in only one
file are listed for information but never counted as regressions — a bench
gaining or losing a series is a review matter, not a perf failure.

A top-level "env" object (host/run properties such as hardware_concurrency
and threads_max) is compared key by key: differences are printed as a
warning, since timings from different environments are not directly
comparable, but they never count as regressions.

--require-name=NAME (repeatable) asserts that the CURRENT file contains at
least one record with that series name; each missing name counts as a
failure. This lets a gate pin the columns a bench must keep emitting (e.g.
bench_churn's event_repair and batch_throughput series) so a refactor that
silently drops a series fails instead of "self-diffing clean".
"""

import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "overmatch-bench-v1":
        sys.exit(f"{path}: not an overmatch-bench-v1 file")
    out = {}
    for rec in doc.get("records", []):
        key = (
            rec["name"],
            tuple(sorted(rec.get("params", {}).items())),
            rec.get("threads", 1),
        )
        if key in out:
            sys.exit(f"{path}: duplicate record key {key}")
        out[key] = rec
    return doc.get("env", {}), out


def fmt_key(key):
    name, params, threads = key
    ps = ", ".join(f"{k}={v}" for k, v in params)
    return f"{name} [{ps}] t={threads}"


def main(argv):
    args = [a for a in argv[1:] if not a.startswith("--")]
    opts = [a for a in argv[1:] if a.startswith("--")]
    if len(args) != 2:
        sys.exit(__doc__.strip())
    threshold = 0.15
    show_all = "--all" in opts
    required_names = []
    for o in opts:
        if o.startswith("--threshold="):
            threshold = float(o.split("=", 1)[1])
        elif o.startswith("--require-name="):
            required_names.append(o.split("=", 1)[1])

    base_env, base = load(args[0])
    cur_env, cur = load(args[1])

    env_diffs = []
    for k in sorted(set(base_env) | set(cur_env)):
        b, c = base_env.get(k, "<absent>"), cur_env.get(k, "<absent>")
        if b != c:
            env_diffs.append(f"  env {k}: {b} -> {c}")
    if env_diffs:
        print(f"WARNING: environment differs ({len(env_diffs)} keys) — "
              "timings may not be comparable:")
        print("\n".join(env_diffs))

    # Oversubscription check: a run whose thread ladder exceeds the host's
    # hardware concurrency timeshared its workers on too few cores, so its
    # multi-thread rows measure scheduling, not parallel speedup. Warn
    # loudly for either side (the baseline may be the unreliable one).
    for label, env in (("baseline", base_env), ("current", cur_env)):
        try:
            hw = int(env.get("hardware_concurrency", "0"))
            tmax = int(env.get("threads_max", "0"))
        except ValueError:
            continue
        if 0 < hw < tmax:
            print("=" * 64)
            print(f"WARNING: {label} run is OVERSUBSCRIBED — "
                  f"hardware_concurrency {hw} < threads_max {tmax}.")
            print("  Its multi-thread records timeshared workers on too few")
            print("  cores; treat their timings (and any speedup derived")
            print("  from them) as unreliable.")
            print("=" * 64)

    regressions, improvements, compared = [], [], 0
    for key in sorted(set(base) & set(cur)):
        b, c = base[key]["median_ms"], cur[key]["median_ms"]
        if b < 0 or c < 0:
            continue  # counter-only record: no timing to compare
        compared += 1
        ratio = (c / b - 1.0) if b > 0 else (0.0 if c == 0 else float("inf"))
        line = f"  {fmt_key(key)}: {b:.3f} ms -> {c:.3f} ms ({ratio:+.1%})"
        if ratio > threshold:
            regressions.append(line)
        elif ratio < -threshold:
            improvements.append(line)
        elif show_all:
            improvements.append(line)

    only_base = sorted(set(base) - set(cur))
    only_cur = sorted(set(cur) - set(base))

    print(f"compared {compared} records (threshold {threshold:.0%})")
    if regressions:
        print(f"\nREGRESSIONS ({len(regressions)}):")
        print("\n".join(regressions))
    if improvements:
        title = "other" if show_all else "improvements"
        print(f"\n{title} ({len(improvements)}):")
        print("\n".join(improvements))
    for label, keys in (("only in baseline", only_base), ("only in current", only_cur)):
        if keys:
            print(f"\n{label} ({len(keys)}):")
            print("\n".join(f"  {fmt_key(k)}" for k in keys))
    cur_names = {name for name, _, _ in cur}
    missing = [n for n in required_names if n not in cur_names]
    if missing:
        print(f"\nMISSING required series ({len(missing)}):")
        print("\n".join(f"  {n}" for n in missing))
    if not regressions and not missing:
        print("\nno regressions")
    return len(regressions) + len(missing)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
