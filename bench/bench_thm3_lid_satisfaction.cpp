// E4 — Theorem 3: LID total satisfaction ≥ ¼(1 + 1/b_max) of the
// satisfaction-optimal b-matching.
//
// The satisfaction optimum is not edge-separable, so the exact solver is run
// only on tiny instances (n ≤ 10). The chain of inequalities in the paper is
// also reported stage by stage: LID equals the weight-greedy (Lemmas 3-6),
// which is ½ of the weight optimum (Thm 2), which is ½(1+1/b) of the
// satisfaction optimum (Thm 1).
#include "bench/bench_common.hpp"
#include "core/certificates.hpp"
#include "core/solvers.hpp"
#include "matching/exact.hpp"
#include "matching/metrics.hpp"

namespace overmatch {
namespace {

void ratio_table() {
  util::Table t({"n", "b_max", "seeds", "min S(LID)/S*", "mean S(LID)/S*",
                 "bound ¼(1+1/b)", "min S(OPT_w)/S*", "thm1 bound"});
  for (const std::size_t n : {8u, 10u}) {
    for (const std::uint32_t b : {1u, 2u, 3u}) {
      util::StreamingStats lid_ratio;
      util::StreamingStats w_ratio;
      std::uint32_t bmax_seen = 1;
      for (std::uint64_t seed = 1; seed <= bench::seeds(12); ++seed) {
        auto inst = bench::Instance::make_mixed_quotas("er", n, 3.0, b,
                                                       seed * 17 + b * 3);
        bmax_seen = std::max(bmax_seen, inst->profile->max_quota());
        const auto lid = core::solve(*inst->profile, core::Algorithm::kLidDes);
        const auto opt_w = core::solve(*inst->profile, core::Algorithm::kExactWeight);
        const auto opt_s = matching::exact_max_satisfaction(*inst->profile);
        const double best = matching::total_satisfaction(*inst->profile, opt_s);
        if (best <= 0) continue;
        lid_ratio.add(lid.satisfaction / best);
        w_ratio.add(opt_w.satisfaction / best);
      }
      t.row()
          .cell(std::int64_t{static_cast<std::int64_t>(n)})
          .cell(std::int64_t{bmax_seen})
          .cell(std::uint64_t{lid_ratio.count()})
          .cell(lid_ratio.min(), 4)
          .cell(lid_ratio.mean(), 4)
          .cell(core::theorem3_bound(bmax_seen), 4)
          .cell(w_ratio.min(), 4)
          .cell(core::theorem1_bound(bmax_seen), 4);
    }
  }
  t.print("Satisfaction ratios vs. exact satisfaction optimum S*:");
}

void chain_example() {
  // One instance, all four quantities of the approximation chain printed.
  auto inst = bench::Instance::make("er", 10, 3.0, 2, 424242);
  const auto lid = core::solve(*inst->profile, core::Algorithm::kLidDes);
  const auto opt_w = core::solve(*inst->profile, core::Algorithm::kExactWeight);
  const auto opt_s = core::solve(*inst->profile, core::Algorithm::kExactSat);
  util::Table t({"matching", "total weight", "total satisfaction (eq. 1)",
                 "modified satisfaction (eq. 6)"});
  t.row().cell("LID (= LIC)").cell(lid.weight, 4).cell(lid.satisfaction, 4)
      .cell(lid.satisfaction_modified, 4);
  t.row().cell("OPT weight").cell(opt_w.weight, 4).cell(opt_w.satisfaction, 4)
      .cell(opt_w.satisfaction_modified, 4);
  t.row().cell("OPT satisfaction").cell(opt_s.weight, 4).cell(opt_s.satisfaction, 4)
      .cell(opt_s.satisfaction_modified, 4);
  t.print("Approximation chain on one instance (seed 424242, n=10, b=2):");
  std::printf(
      "Chain check: S(LID)=%.4f ≥ ¼(1+1/b)·S* = %.4f  [S* = %.4f]\n",
      lid.satisfaction,
      core::theorem3_bound(inst->profile->max_quota()) * opt_s.satisfaction,
      opt_s.satisfaction);
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E4", "Theorem 3",
      "LID is a 1/4(1+1/b_max)-approximation of maximizing-satisfaction "
      "b-matching.");
  overmatch::ratio_table();
  overmatch::chain_example();
  return 0;
}
