// E8 — Topology sensitivity: satisfaction and certified approximation ratio
// of the LID overlay across candidate-graph families.
//
// "ratio ≥" is the *certified lower bound* w(M)/UB — the true ratio against
// the (unavailable at this scale) optimum is at least this; the Theorem 2
// floor of 0.5 holds regardless.
#include "bench/bench_common.hpp"
#include "core/certificates.hpp"
#include "core/solvers.hpp"
#include "graph/properties.hpp"
#include "matching/metrics.hpp"
#include "overlay/builder.hpp"

namespace overmatch {
namespace {

void topology_table() {
  util::Table t({"topology", "n", "mean deg", "S mean", "S p10", "S min",
                 "utilization", "ratio ≥", "components", "msgs/edge"});
  for (const char* topology : {"er", "ba", "ws", "geo", "grid", "regular"}) {
    util::StreamingStats s_mean;
    util::StreamingStats s_p10;
    util::StreamingStats s_min;
    util::StreamingStats util_stat;
    util::StreamingStats ratio;
    util::StreamingStats comps;
    util::StreamingStats mpe;
    util::StreamingStats deg;
    for (std::uint64_t seed = 1; seed <= bench::seeds(6); ++seed) {
      auto inst = bench::Instance::make(topology, 144, 8.0, 3, seed * 41 + 5);
      deg.add(graph::degree_stats(inst->g).mean);
      const auto r = core::solve(*inst->profile, core::Algorithm::kLidDes);
      const auto sats = matching::node_satisfactions(*inst->profile, r.matching);
      util::StreamingStats ss;
      for (const double s : sats) ss.add(s);
      s_mean.add(ss.mean());
      s_p10.add(util::percentile(sats, 10.0));
      s_min.add(ss.min());
      std::size_t cap = 0;
      std::size_t load = 0;
      for (graph::NodeId v = 0; v < inst->g.num_nodes(); ++v) {
        cap += inst->profile->quota(v);
        load += r.matching.load(v);
      }
      util_stat.add(static_cast<double>(load) / static_cast<double>(cap));
      const auto cert = core::certify(*inst->profile, *inst->weights, r.matching);
      ratio.add(cert.ratio_lower_bound);
      const auto sub = overlay::matched_subgraph(r.matching);
      comps.add(static_cast<double>(graph::connected_components(sub).count));
      mpe.add(static_cast<double>(r.messages) /
              static_cast<double>(inst->g.num_edges()));
    }
    t.row()
        .cell(topology)
        .cell(std::int64_t{144})
        .cell(deg.mean(), 1)
        .cell(s_mean.mean(), 4)
        .cell(s_p10.mean(), 4)
        .cell(s_min.mean(), 4)
        .cell(util_stat.mean(), 3)
        .cell(ratio.mean(), 3)
        .cell(comps.mean(), 1)
        .cell(mpe.mean(), 3);
  }
  t.print("LID overlay quality across topologies (n = 144, b = 3, 6 seeds):");
}

void quota_sensitivity() {
  util::Table t({"b", "S mean", "utilization", "ratio ≥", "msgs/edge"});
  for (const std::uint32_t b : {1u, 2u, 3u, 4u, 6u, 8u}) {
    util::StreamingStats s_mean;
    util::StreamingStats util_stat;
    util::StreamingStats ratio;
    util::StreamingStats mpe;
    for (std::uint64_t seed = 1; seed <= bench::seeds(6); ++seed) {
      auto inst = bench::Instance::make("er", 144, 12.0, b, seed * 43 + b);
      const auto r = core::solve(*inst->profile, core::Algorithm::kLidDes);
      const auto sats = matching::node_satisfactions(*inst->profile, r.matching);
      s_mean.add(util::mean_of(sats));
      std::size_t cap = 0;
      std::size_t load = 0;
      for (graph::NodeId v = 0; v < inst->g.num_nodes(); ++v) {
        cap += inst->profile->quota(v);
        load += r.matching.load(v);
      }
      util_stat.add(static_cast<double>(load) / static_cast<double>(cap));
      ratio.add(core::certify(*inst->profile, *inst->weights, r.matching)
                    .ratio_lower_bound);
      mpe.add(static_cast<double>(r.messages) /
              static_cast<double>(inst->g.num_edges()));
    }
    t.row()
        .cell(std::int64_t{b})
        .cell(s_mean.mean(), 4)
        .cell(util_stat.mean(), 3)
        .cell(ratio.mean(), 3)
        .cell(mpe.mean(), 3);
  }
  t.print("Quota sensitivity (ER, n = 144, avg degree 12):");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E8", "Topology sensitivity",
      "Overlay quality of the LID matching across candidate-graph families.");
  overmatch::topology_table();
  overmatch::quota_sensitivity();
  return 0;
}
