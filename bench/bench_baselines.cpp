// E9 — Baseline comparison: LID/LIC vs. random-order greedy, rank mutual-best
// (acyclic-preference dynamics, Gai et al.) and blocking-pair best-reply
// dynamics (Mathieu).
//
// Expected shape: LID wins on weight (it maximizes it greedily) and total
// satisfaction; best-reply, when it converges, wins on blocking pairs
// (zero, by definition of stability) at much higher step/message cost and
// with no convergence guarantee under cyclic preferences.
#include "bench/bench_common.hpp"
#include "core/solvers.hpp"
#include "matching/metrics.hpp"
#include "prefs/cycles.hpp"

namespace overmatch {
namespace {

void comparison_table() {
  const core::Algorithm algos[] = {
      core::Algorithm::kLidDes, core::Algorithm::kRandomGreedy,
      core::Algorithm::kMutualBest, core::Algorithm::kBestReply};
  util::Table t({"algorithm", "weight", "% of LID", "satisfaction", "S mean/node",
                 "blocking pairs", "messages", "converged"});
  const std::size_t seeds = bench::seeds(8);
  const std::size_t n = 96;
  // Aggregates per algorithm.
  struct Agg {
    util::StreamingStats weight, sat, blocking, msgs;
    std::size_t converged = 0;
  };
  std::vector<Agg> agg(std::size(algos));
  double lid_weight_total = 0.0;
  for (std::uint64_t seed = 1; seed <= seeds; ++seed) {
    auto inst = bench::Instance::make_mixed_quotas("er", n, 8.0, 4, seed * 59 + 3);
    for (std::size_t a = 0; a < std::size(algos); ++a) {
      core::SolveOptions opt;
      opt.seed = seed;
      opt.best_reply_max_steps = 20000;
      const auto r = core::solve(*inst->profile, algos[a], opt);
      agg[a].weight.add(r.weight);
      agg[a].sat.add(r.satisfaction);
      agg[a].blocking.add(static_cast<double>(
          matching::count_blocking_pairs(*inst->profile, r.matching)));
      agg[a].msgs.add(static_cast<double>(r.messages));
      if (r.converged) ++agg[a].converged;
      if (algos[a] == core::Algorithm::kLidDes) lid_weight_total += r.weight;
    }
  }
  for (std::size_t a = 0; a < std::size(algos); ++a) {
    t.row()
        .cell(core::algorithm_name(algos[a]))
        .cell(agg[a].weight.mean(), 4)
        .cell(100.0 * agg[a].weight.sum() / lid_weight_total, 1)
        .cell(agg[a].sat.mean(), 4)
        .cell(agg[a].sat.mean() / static_cast<double>(n), 4)
        .cell(agg[a].blocking.mean(), 1)
        .cell(agg[a].msgs.mean(), 1)
        .cell(std::uint64_t{agg[a].converged});
  }
  t.print("Baselines on ER n=96, avg degree 8, mixed quotas ≤ 4 (8 seeds):");
}

void cyclic_stress_table() {
  // Random complete-graph preferences are almost always cyclic; best-reply
  // dynamics may then fail to converge while LID always terminates.
  util::Table t({"instance", "rank cycle?", "LID msgs", "LID S", "best-reply edges",
                 "best-reply converged", "mutual-best locked/cap"});
  for (std::uint64_t seed = 1; seed <= bench::seeds(6); ++seed) {
    auto inst = bench::Instance::make("complete", 14, 13.0, 2, seed * 67 + 9);
    const bool cyclic = prefs::find_rank_cycle(*inst->profile).has_value();
    const auto lid = core::solve(*inst->profile, core::Algorithm::kLidDes);
    core::SolveOptions opt;
    opt.seed = seed;
    opt.best_reply_max_steps = 3000;
    const auto br = core::solve(*inst->profile, core::Algorithm::kBestReply, opt);
    const auto mb = core::solve(*inst->profile, core::Algorithm::kMutualBest);
    std::size_t cap = 0;
    for (graph::NodeId v = 0; v < inst->g.num_nodes(); ++v) {
      cap += inst->profile->quota(v);
    }
    t.row()
        .cell("seed " + std::to_string(seed * 67 + 9))
        .cell(cyclic)
        .cell(std::uint64_t{lid.messages})
        .cell(lid.satisfaction, 3)
        .cell(std::uint64_t{br.matching.size()})  // proxy: final size
        .cell(br.converged)
        .cell(util::fmt(2.0 * static_cast<double>(mb.matching.size()) /
                            static_cast<double>(cap),
                        2));
  }
  t.print("Cyclic-preference stress (K14, b = 2): LID always terminates");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E9", "Baseline comparison",
      "LID vs. random-order greedy, mutual-best dynamics, best-reply dynamics.");
  overmatch::comparison_table();
  overmatch::cyclic_stress_table();
  return 0;
}
