// E16 — Extension: partial knowledge. The paper assumes peers already know
// their candidate neighbours; this bench produces that knowledge with the
// gossip peer-sampling substrate and measures how overlay quality converges
// toward the full-knowledge baseline as gossip rounds increase.
#include "bench/bench_common.hpp"
#include "core/solvers.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "matching/metrics.hpp"
#include "overlay/discovery.hpp"
#include "overlay/metrics.hpp"

namespace overmatch {
namespace {

void rounds_sweep() {
  const std::size_t n = 96;
  const std::uint32_t quota = 3;
  util::Table t({"gossip rounds", "candidate edges", "mean deg", "gossip msgs",
                 "match msgs", "S mean/node", "utilization"});
  util::Rng attr_rng(99);
  const auto pop = overlay::Population::random(n, 8, attr_rng);
  const auto metrics = overlay::homogeneous_metrics(n, overlay::Metric::kHybrid);
  for (const std::size_t rounds : {0u, 1u, 2u, 4u, 8u, 16u}) {
    overlay::DiscoveryOptions d;
    d.rounds = rounds;
    d.seed = 5;
    d.view_size = 16;
    const auto disc = overlay::discover_candidates(n, d);
    const auto profile = overlay::build_profile(disc.candidates, pop, metrics,
                                                prefs::uniform_quotas(disc.candidates,
                                                                      quota));
    const auto r = core::solve(profile, core::Algorithm::kLidDes);
    const auto sats = matching::node_satisfactions(profile, r.matching);
    std::size_t cap = 0;
    std::size_t load = 0;
    for (graph::NodeId v = 0; v < n; ++v) {
      cap += profile.quota(v);
      load += r.matching.load(v);
    }
    t.row()
        .cell(std::int64_t{static_cast<std::int64_t>(rounds)})
        .cell(std::uint64_t{disc.candidates.num_edges()})
        .cell(graph::degree_stats(disc.candidates).mean, 1)
        .cell(std::uint64_t{disc.stats.total_sent})
        .cell(std::uint64_t{r.messages})
        .cell(util::mean_of(sats), 4)
        .cell(static_cast<double>(load) / static_cast<double>(cap), 3);
  }
  // Full-knowledge baseline: everyone knows everyone.
  {
    const auto full = graph::complete(n);
    const auto profile = overlay::build_profile(full, pop, metrics,
                                                prefs::uniform_quotas(full, quota));
    const auto r = core::solve(profile, core::Algorithm::kLidDes);
    const auto sats = matching::node_satisfactions(profile, r.matching);
    t.row()
        .cell("full knowledge")
        .cell(std::uint64_t{full.num_edges()})
        .cell(static_cast<double>(n - 1), 1)
        .cell("-")
        .cell(std::uint64_t{r.messages})
        .cell(util::mean_of(sats), 4)
        .cell(1.0, 3);
  }
  t.print("Overlay quality vs. gossip-discovery effort (n=96, hybrid metric, b=3):");
  std::printf(
      "note: mean eq.-1 satisfaction is normalized by list length L_i, so it\n"
      "is not monotone in knowledge; utilization and absolute weight are.\n");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E16", "Partial-knowledge extension",
      "Gossip peer sampling feeding the matching layer, vs. full knowledge.");
  overmatch::rounds_sweep();
  return 0;
}
