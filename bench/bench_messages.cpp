// E6 — Lemma 5 companions: termination cost. Message complexity of LID as a
// function of network size, density and quota (the figure a distributed-
// algorithms venue expects).
//
// Upper bound printed alongside: every ordered neighbour pair accounts for at
// most one PROP and one REJ, i.e. ≤ 4m messages total; observed counts run
// well below it.
#include "bench/bench_common.hpp"
#include <thread>

#include "matching/lid.hpp"

namespace overmatch {
namespace {

void series_vs_n(bench::JsonReport& json) {
  util::Table t({"n", "m (mean)", "PROP", "REJ", "total", "msgs/edge", "bound 4m"});
  for (const std::size_t n : {32u, 64u, 128u, 256u, 512u}) {
    if (!bench::keep(n, 64)) continue;
    util::StreamingStats m_edges;
    util::StreamingStats prop;
    util::StreamingStats rej;
    util::StreamingStats total;
    std::vector<double> run_ms;
    for (std::uint64_t seed = 1; seed <= bench::seeds(5); ++seed) {
      auto inst = bench::Instance::make("er", n, 8.0, 3, seed * 7 + n);
      matching::LidOptions opt;
      opt.seed = seed;
      util::WallTimer timer;
      const auto r =
          matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
      run_ms.push_back(timer.millis());
      m_edges.add(static_cast<double>(inst->g.num_edges()));
      prop.add(static_cast<double>(r.stats.kind_count(matching::kMsgProp)));
      rej.add(static_cast<double>(r.stats.kind_count(matching::kMsgRej)));
      total.add(static_cast<double>(r.stats.total_sent));
    }
    json.add("lid_des",
             {{"n", std::to_string(n)},
              {"m_mean", util::fmt(m_edges.mean(), 0)},
              {"msgs_total_mean", util::fmt(total.mean(), 1)},
              {"msgs_per_edge", util::fmt(total.mean() / m_edges.mean(), 3)}},
             run_ms, 1);
    t.row()
        .cell(std::int64_t{static_cast<std::int64_t>(n)})
        .cell(m_edges.mean(), 0)
        .cell(prop.mean(), 1)
        .cell(rej.mean(), 1)
        .cell(total.mean(), 1)
        .cell(total.mean() / m_edges.mean(), 3)
        .cell(4.0 * m_edges.mean(), 0);
  }
  t.print("Message complexity vs. network size (ER, avg degree 8, b = 3):");
}

void series_vs_degree() {
  util::Table t({"avg degree", "m (mean)", "total msgs", "msgs/edge", "msgs/node"});
  for (const double d : {4.0, 8.0, 16.0, 32.0}) {
    util::StreamingStats m_edges;
    util::StreamingStats total;
    for (std::uint64_t seed = 1; seed <= bench::seeds(5); ++seed) {
      auto inst = bench::Instance::make("er", 128, d, 3, seed * 11 + 1);
      matching::LidOptions opt;
      opt.seed = seed;
      const auto r =
          matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
      m_edges.add(static_cast<double>(inst->g.num_edges()));
      total.add(static_cast<double>(r.stats.total_sent));
    }
    t.row()
        .cell(d, 0)
        .cell(m_edges.mean(), 0)
        .cell(total.mean(), 1)
        .cell(total.mean() / m_edges.mean(), 3)
        .cell(total.mean() / 128.0, 1);
  }
  t.print("Message complexity vs. density (ER, n = 128, b = 3):");
}

void series_vs_quota() {
  util::Table t({"b", "total msgs", "msgs/edge", "locked edges", "locked/Σb⁄2"});
  for (const std::uint32_t b : {1u, 2u, 4u, 8u, 16u}) {
    util::StreamingStats total;
    util::StreamingStats per_edge;
    util::StreamingStats locked;
    util::StreamingStats capacity_frac;
    for (std::uint64_t seed = 1; seed <= bench::seeds(5); ++seed) {
      auto inst = bench::Instance::make("er", 128, 16.0, b, seed * 13 + b);
      matching::LidOptions opt;
      opt.seed = seed;
      const auto r =
          matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
      total.add(static_cast<double>(r.stats.total_sent));
      per_edge.add(static_cast<double>(r.stats.total_sent) /
                   static_cast<double>(inst->g.num_edges()));
      locked.add(static_cast<double>(r.matching.size()));
      std::size_t cap = 0;
      for (graph::NodeId v = 0; v < inst->g.num_nodes(); ++v) {
        cap += inst->profile->quota(v);
      }
      capacity_frac.add(2.0 * static_cast<double>(r.matching.size()) /
                        static_cast<double>(cap));
    }
    t.row()
        .cell(std::int64_t{b})
        .cell(total.mean(), 1)
        .cell(per_edge.mean(), 3)
        .cell(locked.mean(), 1)
        .cell(capacity_frac.mean(), 3);
  }
  t.print("Message complexity vs. quota (ER, n = 128, avg degree 16):");
}

void schedule_spread() {
  util::Table t({"schedule", "mean msgs", "min", "max", "matching weight"});
  for (const auto schedule :
       {sim::Schedule::kFifo, sim::Schedule::kRandomOrder, sim::Schedule::kRandomDelay,
        sim::Schedule::kAdversarialDelay}) {
    util::StreamingStats msgs;
    double weight = 0.0;
    for (std::uint64_t seed = 1; seed <= bench::seeds(8); ++seed) {
      auto inst = bench::Instance::make("er", 96, 8.0, 3, 555);  // same instance
      matching::LidOptions opt;
      opt.seed = seed;
      opt.schedule = schedule;
      const auto r =
          matching::run_lid(*inst->weights, inst->profile->quotas(), opt);
      msgs.add(static_cast<double>(r.stats.total_sent));
      weight = r.matching.total_weight(*inst->weights);  // identical across runs
    }
    t.row()
        .cell(sim::schedule_name(schedule))
        .cell(msgs.mean(), 1)
        .cell(msgs.min(), 0)
        .cell(msgs.max(), 0)
        .cell(weight, 4);
  }
  t.print("Same instance, 8 scheduler seeds each: message spread, identical result");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E6", "Lemma 5 (termination) — protocol cost series",
      "PROP/REJ message complexity of LID across size, density, quota, schedule.");
  overmatch::bench::JsonReport json("messages");
  // LID under the DES is single-threaded; the env block still records the
  // host so bench_diff.py can flag cross-machine comparisons.
  json.set_env("threads_max", "1");
  json.set_env("hardware_concurrency",
               std::to_string(std::thread::hardware_concurrency()));
  overmatch::series_vs_n(json);
  overmatch::series_vs_degree();
  overmatch::series_vs_quota();
  overmatch::schedule_spread();
  json.write();
  return 0;
}
