// E1 — Figure 1: worked satisfaction computation.
//
// The paper's figure shows a node i with quota b_i = 4 whose connection list
// is (2, 5, 32, 28) and whose satisfaction evaluates to 0.893, with the hint
// that node "32" sits at preference rank 3 but connection rank Q_i = 2.
// The unique small instance consistent with every number in the figure is
// L_i = 7 with connections at preference ranks (0, 1, 3, 5):
// S = 1 − (0+0+1+2)/(4·7) = 25/28 ≈ 0.893. This bench reconstructs that
// instance, prints the per-connection penalty table, and sweeps the deviation
// penalty structure around it.
#include "bench/bench_common.hpp"
#include "prefs/satisfaction.hpp"

namespace overmatch {
namespace {

void figure1_table() {
  // Hub node with a 7-entry preference list; "names" follow the paper.
  static graph::Graph g = graph::star(8);
  std::vector<std::vector<graph::NodeId>> lists(8, std::vector<graph::NodeId>{0});
  lists[0] = {1, 2, 3, 4, 5, 6, 7};  // rank r ↦ leaf r+1
  prefs::Quotas q(8, 1);
  q[0] = 4;
  auto p = prefs::PreferenceProfile::from_lists(g, q, std::move(lists));

  // Paper connection list (2, 5, 32, 28) at preference ranks (0, 1, 3, 5).
  const char* names[] = {"2", "5", "32", "28"};
  const graph::NodeId conns[] = {1, 2, 4, 6};

  util::Table t({"connection", "pref rank R_i", "conn rank Q_i", "penalty (R−Q)/(b·L)"});
  double total_penalty = 0.0;
  for (int k = 0; k < 4; ++k) {
    const auto r = p.rank(0, conns[k]);
    const double penalty = (static_cast<double>(r) - k) / (4.0 * 7.0);
    total_penalty += penalty;
    t.row().cell(names[k]).cell(std::int64_t{r}).cell(std::int64_t{k}).cell(penalty, 4);
  }
  t.print("Figure 1 reconstruction (b_i = 4, L_i = 7):");

  const double s =
      prefs::satisfaction(p, 0, std::vector<graph::NodeId>(conns, conns + 4));
  std::printf("S_i = c_i/b_i − Σ penalties = 1 − %.4f = %.4f  (paper: 0.893)\n",
              total_penalty, s);
  OM_CHECK(std::abs(s - 25.0 / 28.0) < 1e-12);
}

void deviation_sweep() {
  // How satisfaction degrades as the four connections slide down the list:
  // shift d means connecting ranks (d, d+1, d+2, d+3) of a 12-entry list.
  static graph::Graph g = graph::star(13);
  std::vector<std::vector<graph::NodeId>> lists(13, std::vector<graph::NodeId>{0});
  lists[0] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  prefs::Quotas q(13, 1);
  q[0] = 4;
  auto p = prefs::PreferenceProfile::from_lists(g, q, std::move(lists));

  util::Table t({"shift d", "connected ranks", "S_i (eq. 1)", "S̄_i (eq. 6)"});
  for (std::uint32_t d = 0; d <= 8; ++d) {
    std::vector<graph::NodeId> conns;
    std::string ranks;
    for (std::uint32_t k = 0; k < 4; ++k) {
      conns.push_back(static_cast<graph::NodeId>(1 + d + k));
      ranks += std::to_string(d + k) + (k < 3 ? "," : "");
    }
    t.row()
        .cell(std::int64_t{d})
        .cell(ranks)
        .cell(prefs::satisfaction(p, 0, conns), 4)
        .cell(prefs::satisfaction_modified(p, 0, conns), 4);
  }
  t.print("Deviation sweep (b = 4, L = 12): satisfaction vs. connection quality");
}

void partial_fill_sweep() {
  // c_i < b_i : the c/b term dominates — being connected matters more than
  // being connected well.
  static graph::Graph g = graph::star(13);
  std::vector<std::vector<graph::NodeId>> lists(13, std::vector<graph::NodeId>{0});
  lists[0] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  prefs::Quotas q(13, 1);
  q[0] = 6;
  auto p = prefs::PreferenceProfile::from_lists(g, q, std::move(lists));

  util::Table t({"c (top-ranked conns)", "S_i", "c/b baseline"});
  for (std::uint32_t c = 0; c <= 6; ++c) {
    std::vector<graph::NodeId> conns;
    for (std::uint32_t k = 0; k < c; ++k) conns.push_back(static_cast<graph::NodeId>(k + 1));
    t.row()
        .cell(std::int64_t{c})
        .cell(prefs::satisfaction(p, 0, conns), 4)
        .cell(c / 6.0, 4);
  }
  t.print("Partial quota fill (b = 6, L = 12, best-possible picks)");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E1", "Figure 1",
      "Satisfaction computation example: reconstruction and penalty sweeps.");
  overmatch::figure1_table();
  overmatch::deviation_sweep();
  overmatch::partial_fill_sweep();
  return 0;
}
