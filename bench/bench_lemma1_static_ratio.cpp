// E2 — Lemma 1 / eq. 8: the static share of satisfaction is ≥ ½(1 + 1/b).
//
// Two tables: (a) the paper's worst-case construction, where the measured
// ratio must match the bound exactly; (b) random instances, where the
// *minimum observed* per-node static share must sit at or above the bound
// (usually well above — the bound is worst-case).
#include "bench/bench_common.hpp"
#include "core/certificates.hpp"
#include "core/solvers.hpp"
#include "prefs/satisfaction.hpp"

namespace overmatch {
namespace {

void worst_case_table() {
  util::Table t({"b", "L", "measured S_s/(S_s+S_d)", "bound ½(1+1/b)", "gap"});
  for (const std::uint32_t b : {1u, 2u, 3u, 4u, 6u, 8u, 12u, 16u}) {
    const std::size_t L = 2 * b + 5;
    static graph::Graph g;
    g = graph::star(L + 1);
    std::vector<std::vector<graph::NodeId>> lists(L + 1, std::vector<graph::NodeId>{0});
    lists[0].clear();
    for (graph::NodeId leaf = 1; leaf <= L; ++leaf) lists[0].push_back(leaf);
    prefs::Quotas q(L + 1, 1);
    q[0] = b;
    auto p = prefs::PreferenceProfile::from_lists(g, q, std::move(lists));
    std::vector<graph::NodeId> bottom;
    for (std::size_t k = L - b + 1; k <= L; ++k) {
      bottom.push_back(static_cast<graph::NodeId>(k));
    }
    const auto parts = prefs::satisfaction_parts(p, 0, bottom);
    const double measured = parts.static_part / parts.total();
    const double bound = core::theorem1_bound(b);
    t.row()
        .cell(std::int64_t{b})
        .cell(std::int64_t{L})
        .cell(measured, 6)
        .cell(bound, 6)
        .cell(measured - bound, 6);
  }
  t.print("Worst case (quota-b node connected to the bottom b of its list):");
}

void random_instance_table() {
  util::Table t({"topology", "n", "b", "min node ratio", "mean node ratio",
                 "bound", "nodes"});
  for (const char* topology : {"er", "ba", "geo"}) {
    for (const std::uint32_t b : {1u, 2u, 4u, 8u}) {
      util::StreamingStats ratio;
      for (std::uint64_t seed = 1; seed <= bench::seeds(10); ++seed) {
        auto inst = bench::Instance::make(topology, 48, 10.0, b, seed * 7 + b);
        const auto r = core::solve(*inst->profile, core::Algorithm::kLicGlobal);
        for (graph::NodeId v = 0; v < inst->g.num_nodes(); ++v) {
          const auto conns = r.matching.connections(v);
          if (conns.empty()) continue;
          const auto parts = prefs::satisfaction_parts(*inst->profile, v, conns);
          ratio.add(parts.static_part / parts.total());
        }
      }
      t.row()
          .cell(topology)
          .cell(std::int64_t{48})
          .cell(std::int64_t{b})
          .cell(ratio.min(), 4)
          .cell(ratio.mean(), 4)
          .cell(core::theorem1_bound(b), 4)
          .cell(std::uint64_t{ratio.count()});
    }
  }
  t.print("Random instances (10 seeds each): per-node static share vs. bound");
}

}  // namespace
}  // namespace overmatch

int main(int argc, char** argv) {
  const overmatch::bench::Env env(argc, argv);  // --smoke support
  (void)env;
  overmatch::bench::print_header(
      "E2", "Lemma 1 / eq. 8",
      "Static share of satisfaction vs. the proven lower bound 1/2 (1 + 1/b).");
  overmatch::worst_case_table();
  overmatch::random_instance_table();
  return 0;
}
